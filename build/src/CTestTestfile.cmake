# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("isa")
subdirs("dram")
subdirs("noc")
subdirs("sim")
subdirs("energy")
subdirs("compiler")
subdirs("runtime")
subdirs("baseline")
subdirs("apps")
