file(REMOVE_RECURSE
  "libipim_isa.a"
)
