# Empty compiler generated dependencies file for ipim_isa.
# This may be replaced when dependencies are built.
