file(REMOVE_RECURSE
  "CMakeFiles/ipim_isa.dir/alu.cc.o"
  "CMakeFiles/ipim_isa.dir/alu.cc.o.d"
  "CMakeFiles/ipim_isa.dir/assembler.cc.o"
  "CMakeFiles/ipim_isa.dir/assembler.cc.o.d"
  "CMakeFiles/ipim_isa.dir/encoding.cc.o"
  "CMakeFiles/ipim_isa.dir/encoding.cc.o.d"
  "CMakeFiles/ipim_isa.dir/instruction.cc.o"
  "CMakeFiles/ipim_isa.dir/instruction.cc.o.d"
  "CMakeFiles/ipim_isa.dir/opcodes.cc.o"
  "CMakeFiles/ipim_isa.dir/opcodes.cc.o.d"
  "libipim_isa.a"
  "libipim_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipim_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
