file(REMOVE_RECURSE
  "CMakeFiles/ipim_apps.dir/benchmarks.cc.o"
  "CMakeFiles/ipim_apps.dir/benchmarks.cc.o.d"
  "libipim_apps.a"
  "libipim_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipim_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
