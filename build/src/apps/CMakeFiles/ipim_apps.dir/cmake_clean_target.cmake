file(REMOVE_RECURSE
  "libipim_apps.a"
)
