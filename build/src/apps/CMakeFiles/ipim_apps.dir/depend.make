# Empty dependencies file for ipim_apps.
# This may be replaced when dependencies are built.
