file(REMOVE_RECURSE
  "CMakeFiles/ipim_common.dir/config.cc.o"
  "CMakeFiles/ipim_common.dir/config.cc.o.d"
  "CMakeFiles/ipim_common.dir/image.cc.o"
  "CMakeFiles/ipim_common.dir/image.cc.o.d"
  "CMakeFiles/ipim_common.dir/stats.cc.o"
  "CMakeFiles/ipim_common.dir/stats.cc.o.d"
  "libipim_common.a"
  "libipim_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipim_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
