# Empty compiler generated dependencies file for ipim_common.
# This may be replaced when dependencies are built.
