file(REMOVE_RECURSE
  "libipim_common.a"
)
