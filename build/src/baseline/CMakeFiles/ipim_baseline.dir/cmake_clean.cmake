file(REMOVE_RECURSE
  "CMakeFiles/ipim_baseline.dir/gpu_model.cc.o"
  "CMakeFiles/ipim_baseline.dir/gpu_model.cc.o.d"
  "libipim_baseline.a"
  "libipim_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipim_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
