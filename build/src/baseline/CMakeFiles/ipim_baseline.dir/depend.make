# Empty dependencies file for ipim_baseline.
# This may be replaced when dependencies are built.
