file(REMOVE_RECURSE
  "libipim_baseline.a"
)
