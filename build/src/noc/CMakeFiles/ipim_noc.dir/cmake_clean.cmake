file(REMOVE_RECURSE
  "CMakeFiles/ipim_noc.dir/mesh.cc.o"
  "CMakeFiles/ipim_noc.dir/mesh.cc.o.d"
  "libipim_noc.a"
  "libipim_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipim_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
