# Empty dependencies file for ipim_noc.
# This may be replaced when dependencies are built.
