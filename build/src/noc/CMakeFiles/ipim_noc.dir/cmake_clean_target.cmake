file(REMOVE_RECURSE
  "libipim_noc.a"
)
