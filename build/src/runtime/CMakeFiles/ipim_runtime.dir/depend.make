# Empty dependencies file for ipim_runtime.
# This may be replaced when dependencies are built.
