file(REMOVE_RECURSE
  "CMakeFiles/ipim_runtime.dir/runtime.cc.o"
  "CMakeFiles/ipim_runtime.dir/runtime.cc.o.d"
  "libipim_runtime.a"
  "libipim_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipim_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
