file(REMOVE_RECURSE
  "libipim_runtime.a"
)
