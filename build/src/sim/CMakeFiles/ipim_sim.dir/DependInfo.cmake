
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cube.cc" "src/sim/CMakeFiles/ipim_sim.dir/cube.cc.o" "gcc" "src/sim/CMakeFiles/ipim_sim.dir/cube.cc.o.d"
  "/root/repo/src/sim/device.cc" "src/sim/CMakeFiles/ipim_sim.dir/device.cc.o" "gcc" "src/sim/CMakeFiles/ipim_sim.dir/device.cc.o.d"
  "/root/repo/src/sim/hazards.cc" "src/sim/CMakeFiles/ipim_sim.dir/hazards.cc.o" "gcc" "src/sim/CMakeFiles/ipim_sim.dir/hazards.cc.o.d"
  "/root/repo/src/sim/pe.cc" "src/sim/CMakeFiles/ipim_sim.dir/pe.cc.o" "gcc" "src/sim/CMakeFiles/ipim_sim.dir/pe.cc.o.d"
  "/root/repo/src/sim/process_group.cc" "src/sim/CMakeFiles/ipim_sim.dir/process_group.cc.o" "gcc" "src/sim/CMakeFiles/ipim_sim.dir/process_group.cc.o.d"
  "/root/repo/src/sim/vault.cc" "src/sim/CMakeFiles/ipim_sim.dir/vault.cc.o" "gcc" "src/sim/CMakeFiles/ipim_sim.dir/vault.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ipim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/ipim_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/ipim_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/ipim_noc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
