# Empty dependencies file for ipim_sim.
# This may be replaced when dependencies are built.
