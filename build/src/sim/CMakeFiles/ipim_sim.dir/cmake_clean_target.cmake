file(REMOVE_RECURSE
  "libipim_sim.a"
)
