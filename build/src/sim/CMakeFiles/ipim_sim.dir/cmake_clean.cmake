file(REMOVE_RECURSE
  "CMakeFiles/ipim_sim.dir/cube.cc.o"
  "CMakeFiles/ipim_sim.dir/cube.cc.o.d"
  "CMakeFiles/ipim_sim.dir/device.cc.o"
  "CMakeFiles/ipim_sim.dir/device.cc.o.d"
  "CMakeFiles/ipim_sim.dir/hazards.cc.o"
  "CMakeFiles/ipim_sim.dir/hazards.cc.o.d"
  "CMakeFiles/ipim_sim.dir/pe.cc.o"
  "CMakeFiles/ipim_sim.dir/pe.cc.o.d"
  "CMakeFiles/ipim_sim.dir/process_group.cc.o"
  "CMakeFiles/ipim_sim.dir/process_group.cc.o.d"
  "CMakeFiles/ipim_sim.dir/vault.cc.o"
  "CMakeFiles/ipim_sim.dir/vault.cc.o.d"
  "libipim_sim.a"
  "libipim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
