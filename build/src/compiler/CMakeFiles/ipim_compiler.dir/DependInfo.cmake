
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/analysis.cc" "src/compiler/CMakeFiles/ipim_compiler.dir/analysis.cc.o" "gcc" "src/compiler/CMakeFiles/ipim_compiler.dir/analysis.cc.o.d"
  "/root/repo/src/compiler/builder.cc" "src/compiler/CMakeFiles/ipim_compiler.dir/builder.cc.o" "gcc" "src/compiler/CMakeFiles/ipim_compiler.dir/builder.cc.o.d"
  "/root/repo/src/compiler/codegen.cc" "src/compiler/CMakeFiles/ipim_compiler.dir/codegen.cc.o" "gcc" "src/compiler/CMakeFiles/ipim_compiler.dir/codegen.cc.o.d"
  "/root/repo/src/compiler/expr.cc" "src/compiler/CMakeFiles/ipim_compiler.dir/expr.cc.o" "gcc" "src/compiler/CMakeFiles/ipim_compiler.dir/expr.cc.o.d"
  "/root/repo/src/compiler/func.cc" "src/compiler/CMakeFiles/ipim_compiler.dir/func.cc.o" "gcc" "src/compiler/CMakeFiles/ipim_compiler.dir/func.cc.o.d"
  "/root/repo/src/compiler/layout.cc" "src/compiler/CMakeFiles/ipim_compiler.dir/layout.cc.o" "gcc" "src/compiler/CMakeFiles/ipim_compiler.dir/layout.cc.o.d"
  "/root/repo/src/compiler/passes.cc" "src/compiler/CMakeFiles/ipim_compiler.dir/passes.cc.o" "gcc" "src/compiler/CMakeFiles/ipim_compiler.dir/passes.cc.o.d"
  "/root/repo/src/compiler/reference.cc" "src/compiler/CMakeFiles/ipim_compiler.dir/reference.cc.o" "gcc" "src/compiler/CMakeFiles/ipim_compiler.dir/reference.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ipim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/ipim_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ipim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/ipim_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/ipim_noc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
