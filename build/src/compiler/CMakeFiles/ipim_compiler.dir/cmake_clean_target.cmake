file(REMOVE_RECURSE
  "libipim_compiler.a"
)
