file(REMOVE_RECURSE
  "CMakeFiles/ipim_compiler.dir/analysis.cc.o"
  "CMakeFiles/ipim_compiler.dir/analysis.cc.o.d"
  "CMakeFiles/ipim_compiler.dir/builder.cc.o"
  "CMakeFiles/ipim_compiler.dir/builder.cc.o.d"
  "CMakeFiles/ipim_compiler.dir/codegen.cc.o"
  "CMakeFiles/ipim_compiler.dir/codegen.cc.o.d"
  "CMakeFiles/ipim_compiler.dir/expr.cc.o"
  "CMakeFiles/ipim_compiler.dir/expr.cc.o.d"
  "CMakeFiles/ipim_compiler.dir/func.cc.o"
  "CMakeFiles/ipim_compiler.dir/func.cc.o.d"
  "CMakeFiles/ipim_compiler.dir/layout.cc.o"
  "CMakeFiles/ipim_compiler.dir/layout.cc.o.d"
  "CMakeFiles/ipim_compiler.dir/passes.cc.o"
  "CMakeFiles/ipim_compiler.dir/passes.cc.o.d"
  "CMakeFiles/ipim_compiler.dir/reference.cc.o"
  "CMakeFiles/ipim_compiler.dir/reference.cc.o.d"
  "libipim_compiler.a"
  "libipim_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipim_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
