# Empty compiler generated dependencies file for ipim_compiler.
# This may be replaced when dependencies are built.
