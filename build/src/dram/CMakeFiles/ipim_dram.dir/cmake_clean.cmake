file(REMOVE_RECURSE
  "CMakeFiles/ipim_dram.dir/bank.cc.o"
  "CMakeFiles/ipim_dram.dir/bank.cc.o.d"
  "CMakeFiles/ipim_dram.dir/memory_controller.cc.o"
  "CMakeFiles/ipim_dram.dir/memory_controller.cc.o.d"
  "libipim_dram.a"
  "libipim_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipim_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
