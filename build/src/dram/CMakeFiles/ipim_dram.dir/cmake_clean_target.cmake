file(REMOVE_RECURSE
  "libipim_dram.a"
)
