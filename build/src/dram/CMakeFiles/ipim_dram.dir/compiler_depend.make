# Empty compiler generated dependencies file for ipim_dram.
# This may be replaced when dependencies are built.
