file(REMOVE_RECURSE
  "CMakeFiles/ipim_energy.dir/area_model.cc.o"
  "CMakeFiles/ipim_energy.dir/area_model.cc.o.d"
  "CMakeFiles/ipim_energy.dir/energy_model.cc.o"
  "CMakeFiles/ipim_energy.dir/energy_model.cc.o.d"
  "libipim_energy.a"
  "libipim_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipim_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
