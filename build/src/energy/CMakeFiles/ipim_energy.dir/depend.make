# Empty dependencies file for ipim_energy.
# This may be replaced when dependencies are built.
