file(REMOVE_RECURSE
  "libipim_energy.a"
)
