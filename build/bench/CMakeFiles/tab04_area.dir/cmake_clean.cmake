file(REMOVE_RECURSE
  "CMakeFiles/tab04_area.dir/tab04_area.cc.o"
  "CMakeFiles/tab04_area.dir/tab04_area.cc.o.d"
  "tab04_area"
  "tab04_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab04_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
