# Empty dependencies file for tab04_area.
# This may be replaced when dependencies are built.
