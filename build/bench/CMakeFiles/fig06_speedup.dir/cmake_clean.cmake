file(REMOVE_RECURSE
  "CMakeFiles/fig06_speedup.dir/fig06_speedup.cc.o"
  "CMakeFiles/fig06_speedup.dir/fig06_speedup.cc.o.d"
  "fig06_speedup"
  "fig06_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
