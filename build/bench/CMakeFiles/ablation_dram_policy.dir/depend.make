# Empty dependencies file for ablation_dram_policy.
# This may be replaced when dependencies are built.
