file(REMOVE_RECURSE
  "CMakeFiles/ablation_dram_policy.dir/ablation_dram_policy.cc.o"
  "CMakeFiles/ablation_dram_policy.dir/ablation_dram_policy.cc.o.d"
  "ablation_dram_policy"
  "ablation_dram_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dram_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
