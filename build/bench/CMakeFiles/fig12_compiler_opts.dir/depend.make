# Empty dependencies file for fig12_compiler_opts.
# This may be replaced when dependencies are built.
