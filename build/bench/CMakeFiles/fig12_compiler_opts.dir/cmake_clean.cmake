file(REMOVE_RECURSE
  "CMakeFiles/fig12_compiler_opts.dir/fig12_compiler_opts.cc.o"
  "CMakeFiles/fig12_compiler_opts.dir/fig12_compiler_opts.cc.o.d"
  "fig12_compiler_opts"
  "fig12_compiler_opts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_compiler_opts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
