file(REMOVE_RECURSE
  "CMakeFiles/fig13_ipc_util.dir/fig13_ipc_util.cc.o"
  "CMakeFiles/fig13_ipc_util.dir/fig13_ipc_util.cc.o.d"
  "fig13_ipc_util"
  "fig13_ipc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_ipc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
