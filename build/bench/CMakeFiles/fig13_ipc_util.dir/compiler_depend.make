# Empty compiler generated dependencies file for fig13_ipc_util.
# This may be replaced when dependencies are built.
