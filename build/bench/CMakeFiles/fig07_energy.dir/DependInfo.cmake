
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig07_energy.cc" "bench/CMakeFiles/fig07_energy.dir/fig07_energy.cc.o" "gcc" "bench/CMakeFiles/fig07_energy.dir/fig07_energy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/ipim_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/ipim_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ipim_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/ipim_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/ipim_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ipim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/ipim_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/ipim_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/ipim_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/ipim_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ipim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
