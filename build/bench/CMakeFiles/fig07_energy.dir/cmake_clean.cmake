file(REMOVE_RECURSE
  "CMakeFiles/fig07_energy.dir/fig07_energy.cc.o"
  "CMakeFiles/fig07_energy.dir/fig07_energy.cc.o.d"
  "fig07_energy"
  "fig07_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
