file(REMOVE_RECURSE
  "libipim_bench_common.a"
)
