# Empty dependencies file for ipim_bench_common.
# This may be replaced when dependencies are built.
