file(REMOVE_RECURSE
  "CMakeFiles/ipim_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/ipim_bench_common.dir/bench_common.cc.o.d"
  "libipim_bench_common.a"
  "libipim_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipim_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
