file(REMOVE_RECURSE
  "CMakeFiles/fig01_gpu_profiling.dir/fig01_gpu_profiling.cc.o"
  "CMakeFiles/fig01_gpu_profiling.dir/fig01_gpu_profiling.cc.o.d"
  "fig01_gpu_profiling"
  "fig01_gpu_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_gpu_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
