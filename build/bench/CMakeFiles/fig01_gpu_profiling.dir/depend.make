# Empty dependencies file for fig01_gpu_profiling.
# This may be replaced when dependencies are built.
