# Empty compiler generated dependencies file for fig08_ponb.
# This may be replaced when dependencies are built.
