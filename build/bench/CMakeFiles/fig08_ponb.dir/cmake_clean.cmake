file(REMOVE_RECURSE
  "CMakeFiles/fig08_ponb.dir/fig08_ponb.cc.o"
  "CMakeFiles/fig08_ponb.dir/fig08_ponb.cc.o.d"
  "fig08_ponb"
  "fig08_ponb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_ponb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
