file(REMOVE_RECURSE
  "CMakeFiles/fig09_energy_breakdown.dir/fig09_energy_breakdown.cc.o"
  "CMakeFiles/fig09_energy_breakdown.dir/fig09_energy_breakdown.cc.o.d"
  "fig09_energy_breakdown"
  "fig09_energy_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_energy_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
