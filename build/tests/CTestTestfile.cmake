# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_dram[1]_include.cmake")
include("/root/repo/build/tests/test_noc[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_compiler[1]_include.cmake")
include("/root/repo/build/tests/test_backend[1]_include.cmake")
include("/root/repo/build/tests/test_e2e[1]_include.cmake")
include("/root/repo/build/tests/test_energy[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_layout[1]_include.cmake")
include("/root/repo/build/tests/test_codegen[1]_include.cmake")
