# Empty dependencies file for ipim.
# This may be replaced when dependencies are built.
