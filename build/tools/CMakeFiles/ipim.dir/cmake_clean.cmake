file(REMOVE_RECURSE
  "CMakeFiles/ipim.dir/ipim_cli.cc.o"
  "CMakeFiles/ipim.dir/ipim_cli.cc.o.d"
  "ipim"
  "ipim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
