file(REMOVE_RECURSE
  "CMakeFiles/denoise_pipeline.dir/denoise_pipeline.cpp.o"
  "CMakeFiles/denoise_pipeline.dir/denoise_pipeline.cpp.o.d"
  "denoise_pipeline"
  "denoise_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/denoise_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
