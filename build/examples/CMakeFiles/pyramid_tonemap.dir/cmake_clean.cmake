file(REMOVE_RECURSE
  "CMakeFiles/pyramid_tonemap.dir/pyramid_tonemap.cpp.o"
  "CMakeFiles/pyramid_tonemap.dir/pyramid_tonemap.cpp.o.d"
  "pyramid_tonemap"
  "pyramid_tonemap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pyramid_tonemap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
