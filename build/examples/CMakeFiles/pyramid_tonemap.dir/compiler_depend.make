# Empty compiler generated dependencies file for pyramid_tonemap.
# This may be replaced when dependencies are built.
