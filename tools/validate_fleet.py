#!/usr/bin/env python3
"""Validate fleet serving JSON snapshots (schema ipim-serve-fleet-v1)
and fleet decision event logs (schema ipim-fleet-events-v1, JSONL).

Report checks — the invariants the fleet layer promises (DESIGN.md
Sec. 17):

  * the document parses, carries the right schema tag, and has the
    fleet/summary/per_device/per_tenant/requests sections;
  * request accounting is exact: admitted + shed == requests_total,
    completed == admitted, per-tenant and per-device sums match the
    fleet totals, shed == sum of per-tenant shed_breach + shed_backlog;
  * shed requests were never executed: no start/finish/exec fields, a
    shed_reason from the known set;
  * completed requests have finish >= start >= arrival, a device inside
    the fleet, and batch ids that group >= 2 members;
  * batched_requests counts exactly the records with a batch id, and
    batches counts the distinct ids;
  * latency histogram counts equal the number of completed requests and
    p50 <= p95 <= p99 <= max.

Event-log checks (DESIGN.md Sec. 19, `serve --devices N --events`):

  * the first line is the "log" header carrying the right schema tag
    and the fleet shape (devices, slots_per_device, backend, router,
    policy);
  * every line parses as one JSON object with the per-type required
    fields, and timestamps never decrease (the log is written in
    decision order on the virtual timeline);
  * referential integrity: routed and shed request-id sets are
    disjoint, every dispatch/preempt/complete and every batch member
    references a routed (admitted) request, and every routed request
    completes;
  * per-request consistency: preempt events == resume dispatches ==
    the preemptions count on the request's complete record.

When both a report and an event log are given, their accounting is
cross-checked: route events == admitted, shed events == shed, complete
events == completed, batch events == batches, preempt events ==
preemptions, and the header's fleet shape matches the report.

Usage: validate_fleet.py [REPORT.json ...] [EVENTS.jsonl ...]
Files ending in .jsonl are validated as event logs, everything else as
report snapshots.  Exits 0 when every file (and the cross-check, when
one of each is present) passes, 1 otherwise.
"""

import json
import sys

SHED_REASONS = ("p99_breach", "backlog")
EXEC_FIELDS = ("start", "finish", "exec_cycles", "compile_cycles",
               "overhead_cycles", "device", "slot", "batch")

EVENTS_SCHEMA = "ipim-fleet-events-v1"
HEADER_FIELDS = ("schema", "devices", "slots_per_device", "backend",
                 "router", "policy")
EVENT_FIELDS = {
    "route": ("req", "tenant", "priority", "pipeline", "arrival",
              "policy", "device", "cache_hit", "candidates"),
    "shed": ("req", "tenant", "priority", "pipeline", "arrival",
             "reason", "shed_level", "window_p99"),
    "batch": ("device", "batch", "pipeline", "members", "window_cycles",
              "exec_start", "fill"),
    "dispatch": ("req", "device", "slot", "kernel", "resume", "batch",
                 "launch_start", "exec_start", "compile_cycles",
                 "held_cycles"),
    "preempt": ("req", "device", "slot", "kernel", "done_exec_cycles",
                "ckpt_bytes", "higher_pending"),
    "complete": ("req", "device", "slot", "batch", "exec_cycles",
                 "queue_cycles", "total_cycles", "preemptions"),
}
BATCH_FILLS = ("full", "compile", "resume", "slots", "window")


def check_latency(errors, name, block, expect_count):
    if not isinstance(block, dict):
        errors.append(f"{name}: missing latency block")
        return
    count = block.get("count")
    if count != expect_count:
        errors.append(f"{name}: count {count} != {expect_count}")
    if expect_count == 0:
        return
    p50, p95, p99 = (block.get(k) for k in ("p50", "p95", "p99"))
    mx = block.get("max")
    if not (p50 <= p95 <= p99 <= mx):
        errors.append(
            f"{name}: percentiles not ordered ({p50}, {p95}, {p99}, {mx})"
        )


def check_fleet(doc):
    errors = []
    if doc.get("schema") != "ipim-serve-fleet-v1":
        return [f"schema {doc.get('schema')!r} != ipim-serve-fleet-v1"]
    for section in ("fleet", "per_device", "per_tenant", "requests",
                    "slo", "total_latency"):
        if section not in doc:
            errors.append(f"missing section {section!r}")
    if errors:
        return errors

    total = doc["requests_total"]
    admitted = doc["admitted"]
    completed = doc["completed"]
    shed = doc["shed"]
    if admitted + shed != total:
        errors.append(
            f"admitted {admitted} + shed {shed} != total {total}"
        )
    if completed != admitted:
        errors.append(f"completed {completed} != admitted {admitted}")

    records = doc["requests"]
    if len(records) != total:
        errors.append(f"{len(records)} records for total {total}")
    n_devices = doc["fleet"]["devices"]
    batch_members = {}
    shed_records = 0
    for r in records:
        rid = r["id"]
        if r["shed"]:
            shed_records += 1
            if r.get("shed_reason") not in SHED_REASONS:
                errors.append(
                    f"request {rid}: bad shed_reason "
                    f"{r.get('shed_reason')!r}"
                )
            leaked = [f for f in EXEC_FIELDS if f in r]
            if leaked:
                errors.append(
                    f"request {rid}: shed but has execution fields "
                    f"{leaked} (partial execution?)"
                )
            continue
        if not (r["finish"] > r["start"] >= r["arrival"]):
            errors.append(
                f"request {rid}: finish {r['finish']} / start "
                f"{r['start']} / arrival {r['arrival']} out of order"
            )
        if r["exec_cycles"] <= 0:
            errors.append(f"request {rid}: no execution cycles")
        if not 0 <= r["device"] < n_devices:
            errors.append(f"request {rid}: device {r['device']} "
                          f"outside fleet of {n_devices}")
        if r["batch"] >= 0:
            batch_members.setdefault(r["batch"], []).append(rid)
    if shed_records != shed:
        errors.append(
            f"{shed_records} shed records but shed counter {shed}"
        )

    for bid, members in batch_members.items():
        if len(members) < 2:
            errors.append(f"batch {bid}: only {members} (need >= 2)")
    if doc["batches"] != len(batch_members):
        errors.append(
            f"batches {doc['batches']} != {len(batch_members)} "
            f"distinct batch ids"
        )
    batched = sum(len(m) for m in batch_members.values())
    if doc["batched_requests"] != batched:
        errors.append(
            f"batched_requests {doc['batched_requests']} != {batched}"
        )

    dev_requests = sum(d["requests"] for d in doc["per_device"])
    if dev_requests != completed:
        errors.append(
            f"per-device requests {dev_requests} != completed "
            f"{completed}"
        )
    for d in doc["per_device"]:
        cache = d["cache"]
        for key in ("hits", "compiles", "evictions", "entries"):
            if cache[key] < 0:
                errors.append(f"device {d['device']}: cache {key} < 0")

    t_admitted = sum(t["admitted"] for t in doc["per_tenant"])
    t_completed = sum(t["completed"] for t in doc["per_tenant"])
    t_shed = sum(t["shed"] for t in doc["per_tenant"])
    if (t_admitted, t_completed, t_shed) != (admitted, completed, shed):
        errors.append(
            f"per-tenant sums ({t_admitted}, {t_completed}, {t_shed}) "
            f"!= fleet ({admitted}, {completed}, {shed})"
        )
    for t in doc["per_tenant"]:
        if t["shed"] != t["shed_breach"] + t["shed_backlog"]:
            errors.append(
                f"tenant {t['name']!r}: shed {t['shed']} != breach "
                f"{t['shed_breach']} + backlog {t['shed_backlog']}"
            )

    check_latency(errors, "total_latency", doc["total_latency"],
                  completed)
    check_latency(errors, "queue_latency", doc["queue_latency"],
                  completed)
    return errors


def check_events(lines):
    """Validate one decision event log; returns (errors, stats).

    stats carries the per-type counts and the header for the optional
    cross-check against a report snapshot.
    """
    errors = []
    events = []
    for n, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            errors.append(f"line {n}: empty line")
            continue
        try:
            ev = json.loads(line)
        except ValueError as e:
            errors.append(f"line {n}: unparseable: {e}")
            continue
        if not isinstance(ev, dict) or "type" not in ev or "ts" not in ev:
            errors.append(f"line {n}: not an event object")
            continue
        events.append((n, ev))
    if not events:
        return ["no events (empty log?)"], {}

    n, header = events[0]
    if header["type"] != "log":
        errors.append(f"line {n}: first record must be the log header")
    for k in HEADER_FIELDS:
        if k not in header:
            errors.append(f"header: missing field {k!r}")
    if header.get("schema") != EVENTS_SCHEMA:
        errors.append(
            f"header: schema {header.get('schema')!r} != {EVENTS_SCHEMA}"
        )
    n_devices = header.get("devices", 0)

    counts = {t: 0 for t in EVENT_FIELDS}
    routed = set()
    shed_ids = set()
    completes = {}  # req -> preemptions on the complete record
    preempts = {}   # req -> preempt event count
    resumes = {}    # req -> resume-dispatch count
    batch_ids = set()
    last_ts = events[0][1]["ts"]
    for n, ev in events[1:]:
        t = ev["type"]
        if t not in EVENT_FIELDS:
            errors.append(f"line {n}: unknown event type {t!r}")
            continue
        counts[t] += 1
        missing = [k for k in EVENT_FIELDS[t] if k not in ev]
        if missing:
            errors.append(f"line {n}: {t}: missing fields {missing}")
            continue
        if ev["ts"] < last_ts:
            errors.append(
                f"line {n}: ts {ev['ts']} < previous {last_ts} "
                f"(log must be in decision order)"
            )
        last_ts = ev["ts"]
        if "device" in ev and not 0 <= ev["device"] < n_devices:
            errors.append(
                f"line {n}: device {ev['device']} outside fleet "
                f"of {n_devices}"
            )
        if t == "route":
            if ev["req"] in routed:
                errors.append(f"line {n}: request {ev['req']} routed twice")
            routed.add(ev["req"])
        elif t == "shed":
            if ev["reason"] not in SHED_REASONS:
                errors.append(
                    f"line {n}: bad shed reason {ev['reason']!r}"
                )
            if ev["reason"] == "backlog":
                for k in ("device", "wait_est_cycles", "own_est_cycles",
                          "target_cycles"):
                    if k not in ev:
                        errors.append(
                            f"line {n}: backlog shed missing {k!r}"
                        )
            shed_ids.add(ev["req"])
        elif t == "batch":
            members = ev["members"]
            if not isinstance(members, list) or len(members) < 2:
                errors.append(
                    f"line {n}: batch {ev['batch']} has members "
                    f"{members!r} (need >= 2)"
                )
                members = []
            if ev["batch"] in batch_ids:
                errors.append(f"line {n}: batch id {ev['batch']} reused")
            batch_ids.add(ev["batch"])
            if ev["fill"] not in BATCH_FILLS:
                errors.append(f"line {n}: bad fill {ev['fill']!r}")
            for m in members:
                if m not in routed:
                    errors.append(
                        f"line {n}: batch member {m} was never routed"
                    )
        elif t == "dispatch":
            if ev["req"] not in routed:
                errors.append(
                    f"line {n}: dispatch of unrouted request {ev['req']}"
                )
            if ev["exec_start"] < ev["launch_start"]:
                errors.append(
                    f"line {n}: exec_start {ev['exec_start']} < "
                    f"launch_start {ev['launch_start']}"
                )
            if ev["resume"]:
                resumes[ev["req"]] = resumes.get(ev["req"], 0) + 1
        elif t == "preempt":
            if ev["req"] not in routed:
                errors.append(
                    f"line {n}: preempt of unrouted request {ev['req']}"
                )
            preempts[ev["req"]] = preempts.get(ev["req"], 0) + 1
        elif t == "complete":
            if ev["req"] not in routed:
                errors.append(
                    f"line {n}: completion of unrouted request "
                    f"{ev['req']}"
                )
            if ev["req"] in completes:
                errors.append(
                    f"line {n}: request {ev['req']} completed twice"
                )
            completes[ev["req"]] = ev["preemptions"]

    overlap = routed & shed_ids
    if overlap:
        errors.append(f"requests both routed and shed: {sorted(overlap)}")
    unfinished = routed - set(completes)
    if unfinished:
        errors.append(
            f"routed requests never completed: {sorted(unfinished)}"
        )
    for req, count in completes.items():
        if preempts.get(req, 0) != count:
            errors.append(
                f"request {req}: {preempts.get(req, 0)} preempt events "
                f"but complete says {count}"
            )
        if resumes.get(req, 0) != preempts.get(req, 0):
            errors.append(
                f"request {req}: {resumes.get(req, 0)} resume dispatches "
                f"but {preempts.get(req, 0)} preempt events"
            )

    stats = dict(counts)
    stats["header"] = header
    stats["batch_ids"] = len(batch_ids)
    return errors, stats


def cross_check(doc, stats):
    """Events-vs-report accounting; both inputs already validated."""
    errors = []
    header = stats["header"]
    fleet = doc["fleet"]
    for k in ("devices", "slots_per_device", "backend", "router",
              "policy"):
        if header.get(k) != fleet[k]:
            errors.append(
                f"header {k} {header.get(k)!r} != report {fleet[k]!r}"
            )
    for ev_count, rep_key in (
        (stats["route"], "admitted"),
        (stats["shed"], "shed"),
        (stats["complete"], "completed"),
        (stats["batch_ids"], "batches"),
        (stats["preempt"], "preemptions"),
    ):
        if ev_count != doc[rep_key]:
            errors.append(
                f"{ev_count} events vs report {rep_key} {doc[rep_key]}"
            )
    return errors


def main(paths):
    if not paths:
        print(__doc__, file=sys.stderr)
        return 1
    failed = False
    report = None
    event_stats = None
    for path in paths:
        is_events = path.endswith(".jsonl")
        try:
            with open(path, encoding="utf-8") as f:
                if is_events:
                    errors, stats = check_events(f.readlines())
                else:
                    doc = json.load(f)
                    errors = check_fleet(doc)
        except (OSError, ValueError) as e:
            print(f"{path}: unreadable: {e}")
            failed = True
            continue
        if errors:
            failed = True
            print(f"{path}: FAIL")
            for e in errors:
                print(f"  - {e}")
        elif is_events:
            event_stats = stats
            print(f"{path}: OK "
                  f"({stats['route']} routed, {stats['shed']} shed, "
                  f"{stats['batch_ids']} batches, "
                  f"{stats['preempt']} preemptions, "
                  f"{stats['complete']} completed)")
        else:
            report = doc
            print(f"{path}: OK "
                  f"({doc['requests_total']} requests, "
                  f"{doc['completed']} completed, {doc['shed']} shed)")
    if report is not None and event_stats is not None:
        errors = cross_check(report, event_stats)
        if errors:
            failed = True
            print("cross-check: FAIL")
            for e in errors:
                print(f"  - {e}")
        else:
            print("cross-check: OK (events match report accounting)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
