#!/usr/bin/env python3
"""Validate fleet serving JSON snapshots (schema ipim-serve-fleet-v1).

Checks the invariants the fleet layer promises (DESIGN.md Sec. 17):

  * the document parses, carries the right schema tag, and has the
    fleet/summary/per_device/per_tenant/requests sections;
  * request accounting is exact: admitted + shed == requests_total,
    completed == admitted, per-tenant and per-device sums match the
    fleet totals, shed == sum of per-tenant shed_breach + shed_backlog;
  * shed requests were never executed: no start/finish/exec fields, a
    shed_reason from the known set;
  * completed requests have finish >= start >= arrival, a device inside
    the fleet, and batch ids that group >= 2 members;
  * batched_requests counts exactly the records with a batch id, and
    batches counts the distinct ids;
  * latency histogram counts equal the number of completed requests and
    p50 <= p95 <= p99 <= max.

Usage: validate_fleet.py FILE.json [FILE2.json ...]
Exits 0 when every file passes, 1 otherwise.
"""

import json
import sys

SHED_REASONS = ("p99_breach", "backlog")
EXEC_FIELDS = ("start", "finish", "exec_cycles", "compile_cycles",
               "overhead_cycles", "device", "slot", "batch")


def check_latency(errors, name, block, expect_count):
    if not isinstance(block, dict):
        errors.append(f"{name}: missing latency block")
        return
    count = block.get("count")
    if count != expect_count:
        errors.append(f"{name}: count {count} != {expect_count}")
    if expect_count == 0:
        return
    p50, p95, p99 = (block.get(k) for k in ("p50", "p95", "p99"))
    mx = block.get("max")
    if not (p50 <= p95 <= p99 <= mx):
        errors.append(
            f"{name}: percentiles not ordered ({p50}, {p95}, {p99}, {mx})"
        )


def check_fleet(doc):
    errors = []
    if doc.get("schema") != "ipim-serve-fleet-v1":
        return [f"schema {doc.get('schema')!r} != ipim-serve-fleet-v1"]
    for section in ("fleet", "per_device", "per_tenant", "requests",
                    "slo", "total_latency"):
        if section not in doc:
            errors.append(f"missing section {section!r}")
    if errors:
        return errors

    total = doc["requests_total"]
    admitted = doc["admitted"]
    completed = doc["completed"]
    shed = doc["shed"]
    if admitted + shed != total:
        errors.append(
            f"admitted {admitted} + shed {shed} != total {total}"
        )
    if completed != admitted:
        errors.append(f"completed {completed} != admitted {admitted}")

    records = doc["requests"]
    if len(records) != total:
        errors.append(f"{len(records)} records for total {total}")
    n_devices = doc["fleet"]["devices"]
    batch_members = {}
    shed_records = 0
    for r in records:
        rid = r["id"]
        if r["shed"]:
            shed_records += 1
            if r.get("shed_reason") not in SHED_REASONS:
                errors.append(
                    f"request {rid}: bad shed_reason "
                    f"{r.get('shed_reason')!r}"
                )
            leaked = [f for f in EXEC_FIELDS if f in r]
            if leaked:
                errors.append(
                    f"request {rid}: shed but has execution fields "
                    f"{leaked} (partial execution?)"
                )
            continue
        if not (r["finish"] > r["start"] >= r["arrival"]):
            errors.append(
                f"request {rid}: finish {r['finish']} / start "
                f"{r['start']} / arrival {r['arrival']} out of order"
            )
        if r["exec_cycles"] <= 0:
            errors.append(f"request {rid}: no execution cycles")
        if not 0 <= r["device"] < n_devices:
            errors.append(f"request {rid}: device {r['device']} "
                          f"outside fleet of {n_devices}")
        if r["batch"] >= 0:
            batch_members.setdefault(r["batch"], []).append(rid)
    if shed_records != shed:
        errors.append(
            f"{shed_records} shed records but shed counter {shed}"
        )

    for bid, members in batch_members.items():
        if len(members) < 2:
            errors.append(f"batch {bid}: only {members} (need >= 2)")
    if doc["batches"] != len(batch_members):
        errors.append(
            f"batches {doc['batches']} != {len(batch_members)} "
            f"distinct batch ids"
        )
    batched = sum(len(m) for m in batch_members.values())
    if doc["batched_requests"] != batched:
        errors.append(
            f"batched_requests {doc['batched_requests']} != {batched}"
        )

    dev_requests = sum(d["requests"] for d in doc["per_device"])
    if dev_requests != completed:
        errors.append(
            f"per-device requests {dev_requests} != completed "
            f"{completed}"
        )
    for d in doc["per_device"]:
        cache = d["cache"]
        for key in ("hits", "compiles", "evictions", "entries"):
            if cache[key] < 0:
                errors.append(f"device {d['device']}: cache {key} < 0")

    t_admitted = sum(t["admitted"] for t in doc["per_tenant"])
    t_completed = sum(t["completed"] for t in doc["per_tenant"])
    t_shed = sum(t["shed"] for t in doc["per_tenant"])
    if (t_admitted, t_completed, t_shed) != (admitted, completed, shed):
        errors.append(
            f"per-tenant sums ({t_admitted}, {t_completed}, {t_shed}) "
            f"!= fleet ({admitted}, {completed}, {shed})"
        )
    for t in doc["per_tenant"]:
        if t["shed"] != t["shed_breach"] + t["shed_backlog"]:
            errors.append(
                f"tenant {t['name']!r}: shed {t['shed']} != breach "
                f"{t['shed_breach']} + backlog {t['shed_backlog']}"
            )

    check_latency(errors, "total_latency", doc["total_latency"],
                  completed)
    check_latency(errors, "queue_latency", doc["queue_latency"],
                  completed)
    return errors


def main(paths):
    if not paths:
        print(__doc__, file=sys.stderr)
        return 1
    failed = False
    for path in paths:
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, ValueError) as e:
            print(f"{path}: unreadable: {e}")
            failed = True
            continue
        errors = check_fleet(doc)
        if errors:
            failed = True
            print(f"{path}: FAIL")
            for e in errors:
                print(f"  - {e}")
        else:
            print(f"{path}: OK "
                  f"({doc['requests_total']} requests, "
                  f"{doc['completed']} completed, {doc['shed']} shed)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
