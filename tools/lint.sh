#!/usr/bin/env bash
# Run clang-tidy (config: .clang-tidy) over every source file in src/.
#
# Usage: tools/lint.sh [build-dir] [-- extra clang-tidy args]
#   build-dir defaults to ./build and must contain compile_commands.json
#   (the top-level CMakeLists.txt exports it automatically).
#
# Exits 0 when clean, 1 on findings, 2 when clang-tidy is unavailable.
set -u

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"
shift $(( $# > 0 ? 1 : 0 )) || true
[ "${1:-}" = "--" ] && shift

tidy="${CLANG_TIDY:-}"
if [ -z "$tidy" ]; then
    for cand in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 \
                clang-tidy-16 clang-tidy-15 clang-tidy-14; do
        if command -v "$cand" > /dev/null 2>&1; then
            tidy="$cand"
            break
        fi
    done
fi
if [ -z "$tidy" ]; then
    echo "lint.sh: clang-tidy not found (set CLANG_TIDY to override)" >&2
    exit 2
fi
if [ ! -f "$build/compile_commands.json" ]; then
    echo "lint.sh: $build/compile_commands.json missing;" \
         "configure with: cmake -B $build -S $repo" >&2
    exit 2
fi

# shellcheck disable=SC2046  # file list is intentionally word-split
"$tidy" -p "$build" --quiet "$@" \
    $(find "$repo/src" "$repo/tools" -name '*.cc' | sort)
status=$?
if [ $status -eq 0 ]; then
    echo "lint.sh: clean"
fi
exit $status
