/**
 * ipim — command-line driver for the iPIM simulator.
 *
 * Compile and run any Table II benchmark (or list them), on any device
 * geometry, with any compiler-optimization setting, and report cycles,
 * throughput, instruction mix, DRAM behaviour, energy, and (optionally)
 * the disassembled kernels.  The `verify` subcommand runs the static
 * SIMB program verifier (src/verify) instead of the simulator.
 *
 * The `serve` subcommand runs the multi-tenant serving layer
 * (src/service): an open-loop Poisson request stream scheduled onto the
 * device through the compiled-program cache.
 *
 * Examples:
 *   ipim --list
 *   ipim --bench Blur --width 384 --height 216
 *   ipim --bench Histogram --ponb --sched fcfs --page close
 *   ipim --bench Shift --opts baseline1 --verify
 *   ipim --bench Brighten --dump-asm | less
 *   ipim --bench Blur --vaults 4 --pgs 2 --pes 2   # scaled-down device
 *   ipim --bench Blur --json           # machine-readable result
 *   ipim verify --all                  # statically check all benchmarks
 *   ipim verify --bench Blur --werror
 *   ipim verify --asm kernel.s         # check a hand-written program
 *   ipim verify --all --json           # machine-readable findings
 *   ipim analyze --bench Blur          # CFG/conflict/cost analysis
 *   ipim analyze --all --json
 *   ipim analyze --bench Blur --dot cfg-   # cfg-<stage>.dot per kernel
 *   ipim serve --bench Blur,Brighten --rate 40000 --requests 200 \
 *              --sched sjf             # space-shared serving run
 */
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analysis.h"
#include "analysis/conflict.h"
#include "analysis/cost.h"
#include "apps/benchmarks.h"
#include "baseline/gpu_model.h"
#include "common/json.h"
#include "compiler/reference.h"
#include "energy/energy_model.h"
#include "func/func_runtime.h"
#include "isa/assembler.h"
#include "metrics/metrics.h"
#include "metrics/profile.h"
#include "runtime/runtime.h"
#include "fleet/events.h"
#include "fleet/fleet.h"
#include "fleet/observer.h"
#include "service/server.h"
#include "trace/report.h"
#include "trace/trace.h"
#include "verify/verifier.h"

using namespace ipim;

namespace {

struct Options
{
    std::string bench = "Blur";
    int width = 256;
    int height = 128;
    u32 cubes = 1;
    u32 vaults = 16;
    u32 pgs = 8;
    u32 pes = 4;
    bool ponb = false;
    std::string sched = "frfcfs";
    std::string page = "open";
    std::string opts = "opt";
    bool verify = false;
    bool dumpAsm = false;
    bool list = false;
    bool gpu = false;
    bool json = false;
    bool fastForward = true; ///< --no-fast-forward densely ticks
    u32 threads = 1;         ///< --threads N simulation worker threads
    /// Execution backend: "cycle" (cycle-accurate simulation) or
    /// "func" (functional interpreter + latency estimate).
    std::string backend = "cycle";
    // verify-subcommand only:
    bool verifyCmd = false;
    bool allBenches = false;
    bool werror = false;
    std::string asmFile;
    // analyze-subcommand only:
    bool analyzeCmd = false;
    std::string dotPrefix; ///< --dot PREFIX writes PREFIX<stage>.dot
    // tracing:
    std::string traceFile; ///< --trace FILE on run/serve
    bool traceCmd = false;
    std::string traceOut = "trace.json";
    std::string traceCsv;
    u32 traceWindows = 16;
    // profile-subcommand only:
    bool profileCmd = false;
    u64 metricsInterval = 1024; ///< --interval N (sampling period)
    // serve-subcommand only:
    bool serveCmd = false;
    std::string promFile; ///< --prom FILE (Prometheus snapshot)
    f64 rate = 20000.0; ///< requests per second of virtual time
    u32 requests = 200;
    u64 seed = 1;
    std::string servePolicy = "fifo";
    std::string share = "cube";
    u32 cubesPerReq = 1;
    // fleet serving (serve --devices N routes to the fleet layer):
    u32 fleetDevices = 0; ///< 0 = single-device Server path
    std::string routerPolicy = "rr";
    bool batch = false;
    u32 maxBatch = 0;
    u64 batchWindow = 2000; ///< --batch-window CYCLES
    bool preempt = true;  ///< --no-preempt disables
    f64 shedP99Ms = 0.0;  ///< --shed-p99-ms X (0 = no shedding)
    std::string tenants;  ///< --tenants name:weight:prio[:share],...
    std::string traceShape = "poisson";
    f64 burstDuty = 0.25;
    f64 burstOnMs = 0.5;
    f64 diurnalPeriodMs = 10.0;
    f64 diurnalAmplitude = 0.8;
    u32 cacheCap = 0;          ///< per-device program-cache entries
    u64 launchOverhead = 1000; ///< dispatcher cycles per launch
    // fleet observability (DESIGN.md Sec. 19):
    std::string eventsFile;  ///< --events FILE (decision log JSONL)
    std::string metricsFile; ///< --metrics FILE (sampled series JSON)
    // explain-subcommand only:
    bool explainCmd = false;
    u64 explainReq = ~u64(0); ///< --req ID (required)
};

void
usage()
{
    std::printf(
        "usage: ipim [--list] [--bench NAME] [--width N] [--height N]\n"
        "            [--cubes N] [--vaults N] [--pgs N] [--pes N]\n"
        "            [--ponb] [--sched frfcfs|fcfs] [--page open|close]\n"
        "            [--opts opt|baseline1..baseline4] [--verify]\n"
        "            [--gpu] [--dump-asm] [--json] [--trace FILE]\n"
        "            [--no-fast-forward] [--backend cycle|func]\n"
        "            [--threads N]\n"
        "       ipim verify [--bench NAME | --all | --asm FILE]\n"
        "            [--werror] [--json] [device/compiler flags as above]\n"
        "       ipim analyze [--bench NAME | --all | --asm FILE]\n"
        "            [--json] [--dot PREFIX]\n"
        "            [device/compiler flags as above]\n"
        "       ipim serve [--bench NAME[,NAME...]] [--rate R]\n"
        "            [--requests N] [--sched fifo|sjf]\n"
        "            [--share cube|whole] [--cubes-per-req K] [--seed S]\n"
        "            [--json] [--trace FILE] [--prom FILE]\n"
        "            [--backend cycle|func]\n"
        "            [--devices N] [--router rr|least|hash|affinity]\n"
        "            [--batch] [--max-batch N] [--batch-window CYCLES]\n"
        "            [--no-preempt]\n"
        "            [--shed-p99-ms X] [--cache-cap N]\n"
        "            [--launch-overhead CYCLES]\n"
        "            [--events FILE] [--metrics FILE]\n"
        "            [--tenants NAME:WEIGHT:PRIO[:SHARE],...]\n"
        "            [--trace-shape poisson|bursty|diurnal]\n"
        "            [--burst-duty F] [--burst-on-ms X]\n"
        "            [--diurnal-period-ms X] [--diurnal-amplitude F]\n"
        "            [device/compiler flags as above]\n"
        "       ipim explain --req ID --events FILE\n"
        "       ipim trace [--bench NAME] [--out FILE] [--csv FILE]\n"
        "            [--windows N] [device/compiler flags as above]\n"
        "       ipim profile [--bench NAME] [--interval N] [--json]\n"
        "            [device/compiler flags as above]\n"
        "  serve defaults to a 2-cube 4x2x2 device at 128x64 unless\n"
        "  geometry/size flags are given; --rate is requests per second\n"
        "  of virtual time (1 cycle == 1 ns).\n"
        "  --trace / `ipim trace` write Chrome trace_event JSON; open it\n"
        "  in chrome://tracing or https://ui.perfetto.dev.\n"
        "  --no-fast-forward ticks every cycle densely instead of\n"
        "  skipping quiescent intervals; results are bit-exact either\n"
        "  way (DESIGN.md Sec. 13), it is only slower.\n"
        "  --threads N simulates cubes on N worker threads (clamped to\n"
        "  the cube count); cycles, stats, pixels, and traces are\n"
        "  bit-identical for every N (DESIGN.md Sec. 18) -- it is\n"
        "  purely a wall-clock knob.\n"
        "  --backend func runs the functional interpreter instead of\n"
        "  the cycle simulator: pixels are bit-exact with cycle mode,\n"
        "  cycle counts come from the static cost model's estimate\n"
        "  (DESIGN.md Sec. 16), and serving-scale runs go orders of\n"
        "  magnitude faster.\n"
        "  `ipim profile` runs one benchmark with the metrics sampler\n"
        "  attached and prints the per-vault cycle-accounting table,\n"
        "  the roofline check, and the inferred bottleneck; --json adds\n"
        "  the sampled time series (DESIGN.md Sec. 14).\n"
        "  serve --prom FILE writes a Prometheus text-exposition\n"
        "  snapshot of the serving SLOs.\n"
        "  serve --devices N runs the fleet layer (DESIGN.md Sec. 17):\n"
        "  N independent devices behind a router, with per-tenant\n"
        "  weighted fair share, priority preemption at kernel\n"
        "  boundaries, optional cross-request batching (--batch), and\n"
        "  p99-driven load shedding (--shed-p99-ms); --json emits the\n"
        "  ipim-serve-fleet-v1 schema.\n"
        "  Fleet observability (DESIGN.md Sec. 19): with --devices,\n"
        "  --trace FILE writes one merged multi-process Chrome trace\n"
        "  (pid 0 = fleet, pid 1+d = device d), --events FILE writes\n"
        "  the ipim-fleet-events-v1 decision log (JSONL: routing, shed,\n"
        "  batch, dispatch, preempt, complete records), and\n"
        "  --metrics FILE writes the per-slot sampled time series on\n"
        "  the fleet virtual timeline (cycle backend).  All three are\n"
        "  byte-deterministic for a fixed (config, seed) -- across\n"
        "  processes and every --threads value.\n"
        "  `ipim explain --req ID --events FILE` replays one request's\n"
        "  story from the decision log: admission, routing, batching or\n"
        "  shedding, preemptions, completion.\n"
        "  `ipim analyze` builds the CFG/dataflow analyses\n"
        "  (src/analysis), runs the cross-vault conflict proof, and\n"
        "  prints the static cost estimate per kernel; exit 3 when any\n"
        "  conflict is found.  --dot PREFIX writes the vault-0 CFG of\n"
        "  each kernel to PREFIX<stage>.dot.  verify/analyze --json\n"
        "  emit the stable schemas ipim-verify-v1 / ipim-analyze-v1\n"
        "  (documented in README.md).\n");
}

CompilerOptions
parseOpts(const std::string &name)
{
    if (name == "opt")
        return CompilerOptions::opt();
    if (name == "baseline1")
        return CompilerOptions::baseline1();
    if (name == "baseline2")
        return CompilerOptions::baseline2();
    if (name == "baseline3")
        return CompilerOptions::baseline3();
    if (name == "baseline4")
        return CompilerOptions::baseline4();
    fatal("unknown --opts value '", name, "'");
}

HardwareConfig
buildConfig(const Options &o)
{
    HardwareConfig cfg;
    cfg.cubes = o.cubes;
    cfg.vaultsPerCube = o.vaults;
    cfg.pgsPerVault = o.pgs;
    cfg.pesPerPg = o.pes;
    cfg.meshCols = o.vaults >= 4 ? 4 : o.vaults;
    cfg.processOnBaseDie = o.ponb;
    cfg.schedPolicy = o.sched == "fcfs" ? SchedPolicy::kFcfs
                                        : SchedPolicy::kFrFcfs;
    cfg.pagePolicy = o.page == "close" ? PagePolicy::kClosePage
                                       : PagePolicy::kOpenPage;
    cfg.validate();
    return cfg;
}

/** Print @p rep and return true when it passes. */
bool
reportResult(const VerifyReport &rep, bool werror)
{
    if (!rep.empty())
        std::printf("%s", rep.toString().c_str());
    return rep.pass(werror);
}

void
deviceJson(JsonWriter &j, const HardwareConfig &cfg)
{
    j.key("device").beginObject();
    j.field("cubes", cfg.cubes)
        .field("vaults", cfg.vaultsPerCube)
        .field("pgs", cfg.pgsPerVault)
        .field("pes", cfg.pesPerPg);
    j.endObject();
}

/**
 * One program entry of the ipim-verify-v1 schema: name, sizes, counts,
 * and the findings array (stable fields: rule, severity, vault, index,
 * message).
 */
void
verifyProgramJson(JsonWriter &j, const std::string &name, u64 insts,
                  size_t vaults, const VerifyReport &rep, bool werror)
{
    j.beginObject();
    j.field("name", name)
        .field("instructions", insts)
        .field("vaults", u64(vaults))
        .field("errors", u64(rep.errorCount()))
        .field("warnings", u64(rep.warningCount()))
        .field("pass", rep.pass(werror));
    j.key("findings").beginArray();
    for (const Diagnostic &d : rep.diagnostics()) {
        j.beginObject();
        j.field("rule", ruleId(d.rule))
            .field("severity", severityName(d.severity))
            .field("vault", d.vault)
            .field("index", d.index)
            .field("message", d.message);
        j.endObject();
    }
    j.endArray();
    j.endObject();
}

/** The `ipim verify` subcommand: static checks, no simulation. */
int
runVerifyCommand(const Options &o)
{
    HardwareConfig cfg = buildConfig(o);
    VerifierOptions vopts;
    vopts.warningsAsErrors = o.werror;

    JsonWriter j;
    if (o.json) {
        j.field("schema", "ipim-verify-v1").field("werror", o.werror);
        deviceJson(j, cfg);
        j.key("programs").beginArray();
    }
    bool allOk = true;

    if (!o.asmFile.empty()) {
        std::ifstream in(o.asmFile);
        if (!in)
            fatal("cannot open ", o.asmFile);
        std::ostringstream text;
        text << in.rdbuf();
        std::vector<Instruction> prog = assemble(text.str());
        VerifyReport rep = verifyProgram(cfg, prog, vopts);
        allOk = rep.pass(o.werror);
        if (o.json) {
            verifyProgramJson(j, o.asmFile, prog.size(), 1, rep,
                              o.werror);
        } else {
            reportResult(rep, o.werror);
            std::printf("%s: %zu instructions -> %s\n",
                        o.asmFile.c_str(), prog.size(),
                        allOk ? "OK" : "REJECTED");
        }
    } else {
        std::vector<std::string> benches;
        if (o.allBenches)
            benches = allBenchmarkNames();
        else
            benches.push_back(o.bench);

        CompilerOptions copts = parseOpts(o.opts);
        for (const std::string &name : benches) {
            BenchmarkApp app = makeBenchmark(name, o.width, o.height);
            CompiledPipeline cp = compilePipeline(app.def, cfg, copts);
            for (const CompiledKernel &k : cp.kernels) {
                VerifyReport rep = verifyDevice(cfg, k.perVault, vopts);
                bool ok = rep.pass(o.werror);
                allOk = allOk && ok;
                if (o.json) {
                    verifyProgramJson(j, name + "/" + k.stage,
                                      k.backend.instructions,
                                      k.perVault.size(), rep, o.werror);
                    continue;
                }
                reportResult(rep, o.werror);
                std::printf("%s/%s: %llu insts over %zu vaults -> %s "
                            "(%zu errors, %zu warnings)\n",
                            name.c_str(), k.stage.c_str(),
                            (unsigned long long)k.backend.instructions,
                            k.perVault.size(), ok ? "OK" : "REJECTED",
                            rep.errorCount(), rep.warningCount());
            }
        }
    }
    if (o.json) {
        j.endArray();
        j.field("pass", allOk);
        std::printf("%s\n", j.finish().c_str());
    }
    return allOk ? 0 : 3;
}

/**
 * The `ipim analyze` subcommand: CFG construction, cross-vault
 * conflict proof, and the static cost model over compiled kernels (or
 * one assembled program), without simulating.
 */
int
runAnalyzeCommand(const Options &o)
{
    HardwareConfig cfg = buildConfig(o);

    JsonWriter j;
    if (o.json) {
        j.field("schema", "ipim-analyze-v1");
        deviceJson(j, cfg);
        j.key("programs").beginArray();
    }

    size_t totalFindings = 0;
    auto emitDot = [&](const std::string &stage, const Cfg &g) {
        if (o.dotPrefix.empty())
            return;
        std::string path = o.dotPrefix + stage + ".dot";
        std::ofstream out(path, std::ios::binary);
        if (!out)
            fatal("cannot open ", path);
        out << g.toDot(stage);
        if (!out)
            fatal("failed writing CFG dot to ", path);
        if (!o.json)
            std::printf("  cfg -> %s\n", path.c_str());
    };

    // Shared per-program reporting over (name, analyses, report, cost).
    auto report = [&](const std::string &name, u64 insts, size_t vaults,
                      const ProgramAnalysis &pa0,
                      const ConflictReport &rep, const CostEstimate &c) {
        totalFindings += rep.findings.size();
        const Cfg &g = *pa0.cfg;
        size_t nLoops = g.loops().size();
        if (o.json) {
            j.beginObject();
            j.field("name", name)
                .field("instructions", insts)
                .field("vaults", u64(vaults));
            j.key("cfg").beginObject();
            j.field("blocks", g.numBlocks())
                .field("loops", u64(nLoops))
                .field("segments", pa0.numSegments())
                .field("segmentable", pa0.segmentable);
            j.endObject();
            j.key("conflicts").beginObject();
            j.field("complete", rep.complete)
                .field("independent", rep.independent())
                .field("pairs_checked", rep.stats.pairsChecked)
                .field("proven_disjoint", rep.stats.provenDisjoint)
                .field("unproved", rep.stats.unproved)
                .field("segments", rep.stats.segments);
            j.key("findings").beginArray();
            for (const ConflictFinding &f : rep.findings) {
                j.beginObject();
                j.field("kind", conflictKindName(f.kind))
                    .field("vault", f.vault)
                    .field("index", f.index)
                    .field("other_vault", f.otherVault)
                    .field("other_index", f.otherIndex)
                    .field("segment", f.segment)
                    .field("message", f.message);
                j.endObject();
            }
            j.endArray();
            j.endObject();
            j.key("cost").beginObject();
            j.field("cycles", c.cycles)
                .field("dynamic_insts", c.dynamicInsts)
                .field("complete", c.complete);
            j.endObject();
            j.endObject();
            return;
        }
        std::printf("%s: %llu insts over %zu vaults | %d blocks, %zu "
                    "loops, %d segments | est %.0f cycles%s\n",
                    name.c_str(), (unsigned long long)insts, vaults,
                    g.numBlocks(), nLoops, pa0.numSegments(), c.cycles,
                    c.complete ? "" : " (lower bound)");
        std::printf("  conflicts: %zu findings | %llu pairs, %llu "
                    "disjoint, %llu unproved -> %s\n",
                    rep.findings.size(),
                    (unsigned long long)rep.stats.pairsChecked,
                    (unsigned long long)rep.stats.provenDisjoint,
                    (unsigned long long)rep.stats.unproved,
                    rep.independent() ? "independent"
                    : rep.complete    ? "NOT PROVEN"
                                      : "INCOMPLETE");
        for (const ConflictFinding &f : rep.findings)
            std::printf("  [%s] vault %d inst %d: %s\n",
                        conflictKindName(f.kind), f.vault, f.index,
                        f.message.c_str());
    };

    if (!o.asmFile.empty()) {
        std::ifstream in(o.asmFile);
        if (!in)
            fatal("cannot open ", o.asmFile);
        std::ostringstream text;
        text << in.rdbuf();
        std::vector<Instruction> prog = assemble(text.str());
        ProgramAnalysis pa = analyzeProgram(cfg, prog);
        ConflictReport rep = checkProgramConflicts(pa);
        CostEstimate c = estimateProgramCost(cfg, pa);
        report(o.asmFile, prog.size(), 1, pa, rep, c);
        emitDot("program", *pa.cfg);
    } else {
        std::vector<std::string> benches;
        if (o.allBenches)
            benches = allBenchmarkNames();
        else
            benches.push_back(o.bench);

        CompilerOptions copts = parseOpts(o.opts);
        for (const std::string &name : benches) {
            BenchmarkApp app = makeBenchmark(name, o.width, o.height);
            CompiledPipeline cp = compilePipeline(app.def, cfg, copts);
            for (const CompiledKernel &k : cp.kernels) {
                std::vector<ProgramAnalysis> pas;
                pas.reserve(k.perVault.size());
                std::vector<const ProgramAnalysis *> ptrs;
                for (size_t v = 0; v < k.perVault.size(); ++v) {
                    pas.push_back(analyzeProgram(
                        cfg, k.perVault[v],
                        int(v / cfg.vaultsPerCube),
                        int(v % cfg.vaultsPerCube)));
                    ptrs.push_back(&pas.back());
                }
                ConflictReport rep = analyzeDeviceConflicts(cfg, ptrs);
                CostEstimate worst;
                for (const ProgramAnalysis &pa : pas) {
                    CostEstimate c = estimateProgramCost(cfg, pa);
                    if (c.cycles > worst.cycles)
                        worst = c;
                }
                report(name + "/" + k.stage, k.backend.instructions,
                       k.perVault.size(), pas[0], rep, worst);
                emitDot(k.stage, *pas[0].cfg);
            }
        }
    }

    if (o.json) {
        j.endArray();
        j.field("pass", totalFindings == 0);
        std::printf("%s\n", j.finish().c_str());
    }
    return totalFindings == 0 ? 0 : 3;
}

/** Write @p tracer's Chrome trace_event JSON to @p path. */
void
writeChromeTrace(const Tracer &tracer, const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fatal("cannot open trace output file ", path);
    tracer.exportChromeJson(out);
    if (!out)
        fatal("failed writing trace to ", path);
}

/**
 * The `ipim trace` subcommand: run one benchmark with tracing enabled,
 * write the Chrome trace (and optionally the counter CSV), and print
 * the windowed utilization report.
 */
int
runTraceCommand(const Options &o)
{
    HardwareConfig cfg = buildConfig(o);
    BenchmarkApp app = makeBenchmark(o.bench, o.width, o.height);
    CompilerOptions copts = parseOpts(o.opts);
    CompiledPipeline cp = compilePipeline(app.def, cfg, copts);

    Tracer tracer;
    tracer.setEnabled(true);
    Device dev(cfg, &tracer);
    dev.setFastForward(o.fastForward);
    dev.setThreads(o.threads);
    Runtime rt(dev, cp);
    for (const auto &[name, img] : app.inputs)
        rt.bindInput(name, img);
    LaunchResult res = rt.run();

    writeChromeTrace(tracer, o.traceOut);
    if (!o.traceCsv.empty()) {
        std::ofstream csv(o.traceCsv, std::ios::binary);
        if (!csv)
            fatal("cannot open ", o.traceCsv);
        tracer.exportCsv(csv);
    }

    std::printf("bench %s %dx%d | device %ux%ux%ux%u | %llu cycles\n",
                o.bench.c_str(), o.width, o.height, cfg.cubes,
                cfg.vaultsPerCube, cfg.pgsPerVault, cfg.pesPerPg,
                (unsigned long long)res.cycles);
    TraceReport trep = buildTraceReport(tracer, res.cycles,
                                        o.traceWindows);
    std::printf("%s", trep.toString().c_str());
    std::printf("%llu events (%llu dropped) -> %s\n",
                (unsigned long long)tracer.recorded(),
                (unsigned long long)tracer.dropped(),
                o.traceOut.c_str());
    if (!o.traceCsv.empty())
        std::printf("counter CSV -> %s\n", o.traceCsv.c_str());
    return 0;
}

/**
 * The `ipim profile` subcommand: run one benchmark with the metrics
 * sampler attached, then print the bottleneck profiler's report
 * (DESIGN.md Sec. 14).
 */
int
runProfileCommand(const Options &o)
{
    HardwareConfig cfg = buildConfig(o);
    BenchmarkApp app = makeBenchmark(o.bench, o.width, o.height);
    CompilerOptions copts = parseOpts(o.opts);
    CompiledPipeline cp = compilePipeline(app.def, cfg, copts);

    MetricsSampler::Config mcfg;
    mcfg.interval = o.metricsInterval;
    MetricsSampler sampler(mcfg);

    Device dev(cfg);
    dev.setFastForward(o.fastForward);
    dev.setThreads(o.threads);
    dev.setProbe(&sampler);
    Runtime rt(dev, cp);
    for (const auto &[name, img] : app.inputs)
        rt.bindInput(name, img);
    LaunchResult res = rt.run();

    ProfileReport prep = buildProfileReport(cfg, dev.stats(),
                                            res.vaultAccounting,
                                            res.cycles);

    if (o.json) {
        JsonWriter j;
        j.field("bench", o.bench)
            .field("width", o.width)
            .field("height", o.height);
        j.key("device").beginObject();
        j.field("cubes", cfg.cubes)
            .field("vaults", cfg.vaultsPerCube)
            .field("pgs", cfg.pgsPerVault)
            .field("pes", cfg.pesPerPg);
        j.endObject();
        j.field("opts", o.opts).field("cycles", u64(res.cycles));
        j.key("profile");
        prep.toJson(j);
        j.key("metrics");
        sampler.toJson(j);
        j.statsObject("stats", dev.stats());
        std::printf("%s\n", j.finish().c_str());
        return 0;
    }

    std::printf("profile %s %dx%d | device %ux%ux%ux%u | opts %s\n",
                o.bench.c_str(), o.width, o.height, cfg.cubes,
                cfg.vaultsPerCube, cfg.pgsPerVault, cfg.pesPerPg,
                o.opts.c_str());
    std::printf("%s", prep.toString().c_str());
    std::printf("\nsampler: %llu samples (%u retained) at interval %llu "
                "cycles\n",
                (unsigned long long)sampler.samplesTotal(),
                sampler.samplesRetained(),
                (unsigned long long)sampler.interval());
    return 0;
}

/** Split a comma-separated --bench list. */
std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> parts;
    std::string cur;
    for (char c : s) {
        if (c == ',') {
            if (!cur.empty())
                parts.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        parts.push_back(cur);
    return parts;
}

/** Parse --tenants NAME:WEIGHT:PRIO[:SHARE],... (empty input -> {}). */
std::vector<TenantSpec>
parseTenants(const std::string &arg)
{
    std::vector<TenantSpec> tenants;
    for (const std::string &tok : splitList(arg)) {
        std::vector<std::string> parts;
        size_t pos = 0;
        while (pos <= tok.size()) {
            size_t colon = tok.find(':', pos);
            if (colon == std::string::npos) {
                parts.push_back(tok.substr(pos));
                break;
            }
            parts.push_back(tok.substr(pos, colon - pos));
            pos = colon + 1;
        }
        if (parts.size() < 3 || parts.size() > 4 || parts[0].empty())
            fatal("--tenants entry '", tok,
                  "' wants NAME:WEIGHT:PRIO[:SHARE]");
        TenantSpec t;
        t.name = parts[0];
        t.weight = std::stod(parts[1]);
        t.priority = u32(std::stoul(parts[2]));
        t.rateShare = parts.size() == 4 ? std::stod(parts[3]) : 1.0;
        tenants.push_back(std::move(t));
    }
    return tenants;
}

/** Build the load-generator spec shared by both serve paths. */
WorkloadSpec
buildWorkload(const Options &o)
{
    WorkloadSpec spec;
    spec.pipelines = splitList(o.bench);
    if (spec.pipelines.empty())
        fatal("--bench needs at least one pipeline name");
    spec.ratePerSec = o.rate;
    spec.requests = o.requests;
    spec.seed = o.seed;
    spec.tenants = parseTenants(o.tenants);
    spec.shape = parseTraceShape(o.traceShape);
    spec.burstDuty = o.burstDuty;
    spec.burstOnSec = o.burstOnMs * 1e-3;
    spec.diurnalPeriodSec = o.diurnalPeriodMs * 1e-3;
    spec.diurnalAmplitude = o.diurnalAmplitude;
    return spec;
}

/** The `ipim serve --devices N` path: the src/fleet layer. */
int
runServeFleetCommand(const Options &o)
{
    FleetConfig fc;
    fc.hw = buildConfig(o);
    fc.devices = o.fleetDevices;
    fc.width = o.width;
    fc.height = o.height;
    fc.copts = parseOpts(o.opts);
    fc.backend = o.backend;
    fc.policy = o.servePolicy;
    fc.router = o.routerPolicy;
    fc.cubesPerRequest = o.cubesPerReq;
    fc.batching = o.batch;
    fc.maxBatch = o.maxBatch;
    fc.batchWindowCycles = o.batchWindow;
    fc.preempt = o.preempt;
    // 1 cycle == 1 ns, so ms -> cycles is a factor of 1e6.
    fc.shedP99Cycles = Cycle(o.shedP99Ms * 1e6);
    fc.fastForward = o.fastForward;
    fc.threads = o.threads;
    fc.cacheCapacity = o.cacheCap;
    fc.launchOverheadCycles = o.launchOverhead;

    WorkloadSpec spec = buildWorkload(o);
    fc.tenants = spec.tenants;
    std::vector<ServeRequest> reqs = generateWorkload(spec);

    // Observability (DESIGN.md Sec. 19): each feed switches on only
    // when its output file is requested; the observer must outlive the
    // FleetServer it is attached to.
    FleetObserverConfig oc;
    oc.tracing = !o.traceFile.empty();
    oc.events = !o.eventsFile.empty();
    oc.sampling = !o.metricsFile.empty();
    oc.sampleInterval = o.metricsInterval;
    std::unique_ptr<FleetObserver> obs;
    if (oc.tracing || oc.events || oc.sampling) {
        if (oc.sampling && o.backend != "cycle")
            fatal("--metrics needs the cycle backend (the functional "
                  "backend has no device counters to sample)");
        obs = std::make_unique<FleetObserver>(oc);
        fc.observer = obs.get();
    }

    FleetServer fleet(fc);
    FleetReport rep = fleet.run(reqs);

    if (!o.traceFile.empty()) {
        std::ofstream out(o.traceFile, std::ios::binary);
        if (!out)
            fatal("cannot open trace output file ", o.traceFile);
        obs->exportChromeJson(out);
        if (!out)
            fatal("failed writing trace to ", o.traceFile);
    }
    if (!o.eventsFile.empty()) {
        std::ofstream out(o.eventsFile, std::ios::binary);
        if (!out)
            fatal("cannot open events output file ", o.eventsFile);
        obs->writeEvents(out);
        if (!out)
            fatal("failed writing events to ", o.eventsFile);
    }
    if (!o.metricsFile.empty()) {
        std::ofstream out(o.metricsFile, std::ios::binary);
        if (!out)
            fatal("cannot open metrics output file ", o.metricsFile);
        JsonWriter mj;
        mj.field("schema", "ipim-fleet-metrics-v1");
        mj.key("metrics");
        obs->metricsJson(mj);
        out << mj.finish() << '\n';
        if (!out)
            fatal("failed writing metrics to ", o.metricsFile);
    }

    if (!o.promFile.empty()) {
        std::ofstream prom(o.promFile, std::ios::binary);
        if (!prom)
            fatal("cannot open ", o.promFile);
        prom << rep.prometheusText();
        if (obs)
            prom << obs->prometheusText();
        if (!prom)
            fatal("failed writing Prometheus snapshot to ", o.promFile);
    }

    if (o.json) {
        JsonWriter j;
        j.key("config").beginObject();
        j.field("width", fc.width)
            .field("height", fc.height)
            .field("cubes", fc.hw.cubes)
            .field("vaults", fc.hw.vaultsPerCube)
            .field("pgs", fc.hw.pgsPerVault)
            .field("pes", fc.hw.pesPerPg)
            .field("cubes_per_request", fc.cubesPerRequest)
            .field("rate_rps", spec.ratePerSec)
            .field("requests", u64(spec.requests))
            .field("seed", spec.seed)
            .field("opts", o.opts)
            .field("trace_shape", o.traceShape)
            .field("tenants", o.tenants);
        j.endObject();
        rep.toJson(j, fleet.config());
        std::printf("%s\n", j.finish().c_str());
        return 0;
    }

    std::printf("serve %s | fleet %ux (%ux%ux%ux%u, %u slot%s each) | "
                "backend %s | router %s | policy %s | rate %.0f req/s | "
                "shape %s | seed %llu\n",
                o.bench.c_str(), fleet.devices(), fc.hw.cubes,
                fc.hw.vaultsPerCube, fc.hw.pgsPerVault, fc.hw.pesPerPg,
                fleet.slotsPerDevice(),
                fleet.slotsPerDevice() == 1 ? "" : "s",
                fc.backend.c_str(), fc.router.c_str(), fc.policy.c_str(),
                spec.ratePerSec, o.traceShape.c_str(),
                (unsigned long long)spec.seed);
    std::printf("%s", rep.summary().c_str());
    if (!o.traceFile.empty())
        std::printf("fleet trace -> %s\n", o.traceFile.c_str());
    if (!o.eventsFile.empty())
        std::printf("%llu decision events -> %s\n",
                    (unsigned long long)obs->eventCount(),
                    o.eventsFile.c_str());
    if (!o.metricsFile.empty())
        std::printf("sampled metrics -> %s\n", o.metricsFile.c_str());
    if (!o.promFile.empty())
        std::printf("Prometheus snapshot -> %s\n", o.promFile.c_str());
    return 0;
}

/** The `ipim explain` subcommand: replay one request's story from a
 *  fleet decision event log (src/fleet/events). */
int
runExplainCommand(const Options &o)
{
    if (o.explainReq == ~u64(0))
        fatal("explain needs --req ID");
    if (o.eventsFile.empty())
        fatal("explain needs --events FILE (written by "
              "`ipim serve --devices N --events FILE`)");
    std::ifstream in(o.eventsFile, std::ios::binary);
    if (!in)
        fatal("cannot open events file ", o.eventsFile);
    std::vector<FleetEvent> events = loadFleetEvents(in);
    std::printf("%s", explainRequest(events, o.explainReq).c_str());
    return 0;
}

/** The `ipim serve` subcommand: the src/service event loop. */
int
runServeCommand(const Options &o)
{
    if (o.fleetDevices > 0)
        return runServeFleetCommand(o);
    ServerConfig scfg;
    scfg.hw = buildConfig(o);
    scfg.width = o.width;
    scfg.height = o.height;
    scfg.copts = parseOpts(o.opts);
    scfg.policy = o.servePolicy;
    if (o.share == "cube")
        scfg.share = ShareMode::kPerCube;
    else if (o.share == "whole")
        scfg.share = ShareMode::kWholeDevice;
    else
        fatal("unknown --share value '", o.share, "' (want cube|whole)");
    scfg.cubesPerRequest = o.cubesPerReq;
    scfg.fastForward = o.fastForward;
    scfg.threads = o.threads;
    scfg.backend = o.backend;

    WorkloadSpec spec = buildWorkload(o);
    std::vector<ServeRequest> reqs = generateWorkload(spec);

    std::unique_ptr<Tracer> tracer;
    if (!o.traceFile.empty()) {
        tracer = std::make_unique<Tracer>();
        tracer->setEnabled(true);
        scfg.tracer = tracer.get();
    }

    Server server(scfg);
    ServeReport rep = server.run(reqs);

    if (tracer)
        writeChromeTrace(*tracer, o.traceFile);

    if (!o.promFile.empty()) {
        std::ofstream prom(o.promFile, std::ios::binary);
        if (!prom)
            fatal("cannot open ", o.promFile);
        prom << rep.prometheusText();
        if (!prom)
            fatal("failed writing Prometheus snapshot to ", o.promFile);
    }

    if (o.json) {
        JsonWriter j;
        j.key("config").beginObject();
        j.field("policy", scfg.policy)
            .field("backend", scfg.backend)
            .field("share", o.share)
            .field("cubes", scfg.hw.cubes)
            .field("cubes_per_request", scfg.cubesPerRequest)
            .field("slots", server.slots())
            .field("vaults", scfg.hw.vaultsPerCube)
            .field("pgs", scfg.hw.pgsPerVault)
            .field("pes", scfg.hw.pesPerPg)
            .field("width", scfg.width)
            .field("height", scfg.height)
            .field("rate_rps", spec.ratePerSec)
            .field("requests", u64(spec.requests))
            .field("seed", spec.seed)
            .field("opts", o.opts);
        j.endObject();
        j.field("throughput_rps", rep.throughputRps());
        j.field("makespan_cycles", u64(rep.makespan));
        auto lat = [&](const char *k, const LatencyHistogram &h) {
            j.key(k).beginObject();
            j.field("p50", h.percentile(50))
                .field("p95", h.percentile(95))
                .field("p99", h.percentile(99))
                .field("mean", h.mean())
                .field("max", h.max());
            j.endObject();
        };
        j.key("latency_cycles").beginObject();
        lat("total", rep.totalLatency);
        lat("queue", rep.queueLatency);
        lat("exec", rep.execLatency);
        j.endObject();
        j.key("cache").beginObject();
        j.field("compiles", u64(rep.stats.get("serve.cache.miss")))
            .field("hits", u64(rep.stats.get("serve.cache.hit")));
        j.endObject();
        // Rolling-window SLO metrics (DESIGN.md Sec. 14).
        j.key("slo");
        rep.slo.toJson(j, rep.makespan);
        // Static-estimator accuracy vs measured cycles (cycle backend
        // only; the functional backend has no measurement to compare).
        j.key("estimator").beginObject();
        j.field("samples", rep.estimatorSamples)
            .field("mean_abs_rel_err", rep.estimatorMeanAbsRelErr)
            .field("max_abs_rel_err", rep.estimatorMaxAbsRelErr);
        j.endObject();
        // Derived device telemetry over the merged per-request stats
        // (no trace parsing needed; see also `ipim trace`).
        j.key("telemetry").beginObject();
        f64 rowHit = rep.stats.get("dram.rowHit");
        f64 rowMiss = rep.stats.get("dram.rowMiss");
        j.field("row_hit_rate",
                rowHit / std::max(1.0, rowHit + rowMiss));
        f64 devCycles = rep.stats.get("sim.cycles");
        j.field("noc_moves_per_cycle",
                (rep.stats.get("noc.hops") +
                 rep.stats.get("noc.delivered")) /
                    std::max(1.0, devCycles));
        j.field("avg_vault_ipc", rep.stats.get("core.issued") /
                                     std::max(1.0,
                                              rep.stats.get("core.cycles")));
        j.field("device_busy_cycles", u64(devCycles));
        j.endObject();
        j.key("fast_forward").beginObject();
        j.field("enabled", o.fastForward)
            .field("skipped_cycles", rep.ffwdSkippedCycles)
            .field("jumps", rep.ffwdJumps);
        j.endObject();
        j.field("threads", o.threads);
        j.key("requests").beginArray();
        for (const RequestRecord &r : rep.records) {
            j.beginObject();
            j.field("id", r.id)
                .field("pipeline", r.pipeline)
                .field("arrival", u64(r.arrival))
                .field("start", u64(r.start))
                .field("finish", u64(r.finish))
                .field("exec_cycles", u64(r.execCycles))
                .field("compile_cycles", u64(r.compileCycles))
                .field("first_cube", r.firstCube)
                .field("num_cubes", r.numCubes)
                .field("cache_hit", r.cacheHit);
            j.endObject();
        }
        j.endArray();
        j.statsObject("stats", rep.stats);
        std::printf("%s\n", j.finish().c_str());
        return 0;
    }

    std::printf("serve %s | device %ux%ux%ux%u | backend %s | policy %s "
                "| share %s (%u slot%s) | rate %.0f req/s | seed %llu\n",
                o.bench.c_str(), scfg.hw.cubes, scfg.hw.vaultsPerCube,
                scfg.hw.pgsPerVault, scfg.hw.pesPerPg,
                scfg.backend.c_str(), scfg.policy.c_str(),
                o.share.c_str(), server.slots(),
                server.slots() == 1 ? "" : "s", spec.ratePerSec,
                (unsigned long long)spec.seed);
    std::printf("%s", rep.summary().c_str());
    if (!o.promFile.empty())
        std::printf("Prometheus snapshot -> %s\n", o.promFile.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options o;
    int first = 1;
    if (argc > 1 && std::strcmp(argv[1], "verify") == 0) {
        o.verifyCmd = true;
        first = 2;
    } else if (argc > 1 && std::strcmp(argv[1], "analyze") == 0) {
        o.analyzeCmd = true;
        first = 2;
    } else if (argc > 1 && std::strcmp(argv[1], "trace") == 0) {
        o.traceCmd = true;
        first = 2;
    } else if (argc > 1 && std::strcmp(argv[1], "explain") == 0) {
        o.explainCmd = true;
        first = 2;
    } else if (argc > 1 && std::strcmp(argv[1], "profile") == 0) {
        o.profileCmd = true;
        first = 2;
    } else if (argc > 1 && std::strcmp(argv[1], "serve") == 0) {
        o.serveCmd = true;
        first = 2;
        // Serving default: a 2-cube scaled-down device at 128x64 keeps a
        // 200-request run fast while still exercising space sharing.
        // Explicit flags below override.
        o.bench = "Blur,Brighten";
        o.cubes = 2;
        o.vaults = 4;
        o.pgs = 2;
        o.pes = 2;
        o.width = 128;
        o.height = 64;
    }
    for (int i = first; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value after ", a);
            return argv[++i];
        };
        if (a == "--list")
            o.list = true;
        else if (a == "--bench")
            o.bench = next();
        else if (a == "--width")
            o.width = std::stoi(next());
        else if (a == "--height")
            o.height = std::stoi(next());
        else if (a == "--cubes")
            o.cubes = u32(std::stoul(next()));
        else if (a == "--vaults")
            o.vaults = u32(std::stoul(next()));
        else if (a == "--pgs")
            o.pgs = u32(std::stoul(next()));
        else if (a == "--pes")
            o.pes = u32(std::stoul(next()));
        else if (a == "--ponb")
            o.ponb = true;
        else if (a == "--sched") {
            // In serve mode --sched selects the request scheduler; for
            // run/verify it selects the DRAM scheduling policy.
            if (o.serveCmd)
                o.servePolicy = next();
            else
                o.sched = next();
        } else if (a == "--page")
            o.page = next();
        else if (a == "--opts")
            o.opts = next();
        else if (a == "--verify")
            o.verify = true;
        else if (a == "--all")
            o.allBenches = true;
        else if (a == "--werror")
            o.werror = true;
        else if (a == "--asm")
            o.asmFile = next();
        else if (a == "--dot")
            o.dotPrefix = next();
        else if (a == "--gpu")
            o.gpu = true;
        else if (a == "--dump-asm")
            o.dumpAsm = true;
        else if (a == "--json")
            o.json = true;
        else if (a == "--rate")
            o.rate = std::stod(next());
        else if (a == "--requests")
            o.requests = u32(std::stoul(next()));
        else if (a == "--seed")
            o.seed = std::stoull(next());
        else if (a == "--share")
            o.share = next();
        else if (a == "--cubes-per-req")
            o.cubesPerReq = u32(std::stoul(next()));
        else if (a == "--devices")
            o.fleetDevices = u32(std::stoul(next()));
        else if (a == "--router")
            o.routerPolicy = next();
        else if (a == "--batch")
            o.batch = true;
        else if (a == "--max-batch")
            o.maxBatch = u32(std::stoul(next()));
        else if (a == "--batch-window")
            o.batchWindow = std::stoull(next());
        else if (a == "--no-preempt")
            o.preempt = false;
        else if (a == "--shed-p99-ms")
            o.shedP99Ms = std::stod(next());
        else if (a == "--tenants")
            o.tenants = next();
        else if (a == "--trace-shape")
            o.traceShape = next();
        else if (a == "--burst-duty")
            o.burstDuty = std::stod(next());
        else if (a == "--burst-on-ms")
            o.burstOnMs = std::stod(next());
        else if (a == "--diurnal-period-ms")
            o.diurnalPeriodMs = std::stod(next());
        else if (a == "--diurnal-amplitude")
            o.diurnalAmplitude = std::stod(next());
        else if (a == "--cache-cap")
            o.cacheCap = u32(std::stoul(next()));
        else if (a == "--launch-overhead")
            o.launchOverhead = std::stoull(next());
        else if (a == "--no-fast-forward")
            o.fastForward = false;
        else if (a == "--threads")
            o.threads = u32(std::stoul(next()));
        else if (a == "--backend")
            o.backend = next();
        else if (a == "--interval")
            o.metricsInterval = std::stoull(next());
        else if (a == "--prom")
            o.promFile = next();
        else if (a == "--trace")
            o.traceFile = next();
        else if (a == "--events")
            o.eventsFile = next();
        else if (a == "--metrics")
            o.metricsFile = next();
        else if (a == "--req")
            o.explainReq = std::stoull(next());
        else if (a == "--out")
            o.traceOut = next();
        else if (a == "--csv")
            o.traceCsv = next();
        else if (a == "--windows")
            o.traceWindows = u32(std::stoul(next()));
        else if (a == "--help" || a == "-h") {
            usage();
            return 0;
        } else {
            usage();
            fatal("unknown option ", a);
        }
    }

    try {
        if (o.list) {
            for (const std::string &n : allBenchmarkNames())
                std::printf("%s\n", n.c_str());
            return 0;
        }
        if (o.verifyCmd)
            return runVerifyCommand(o);
        if (o.analyzeCmd)
            return runAnalyzeCommand(o);
        if (o.serveCmd)
            return runServeCommand(o);
        if (o.explainCmd)
            return runExplainCommand(o);
        if (o.traceCmd)
            return runTraceCommand(o);
        if (o.profileCmd)
            return runProfileCommand(o);

        HardwareConfig cfg = buildConfig(o);

        BenchmarkApp app = makeBenchmark(o.bench, o.width, o.height);
        CompilerOptions copts = parseOpts(o.opts);
        CompiledPipeline cp = compilePipeline(app.def, cfg, copts);

        if (!o.json) {
            std::printf(
                "bench %s %dx%d | device %ux%ux%ux%u%s | opts %s\n",
                o.bench.c_str(), o.width, o.height, cfg.cubes,
                cfg.vaultsPerCube, cfg.pgsPerVault, cfg.pesPerPg,
                o.ponb ? " (PonB)" : "", o.opts.c_str());
            std::printf("compiled %zu kernels, %llu static instructions\n",
                        cp.kernels.size(),
                        (unsigned long long)cp.totalInstructions());
        }

        if (o.dumpAsm) {
            for (const CompiledKernel &k : cp.kernels) {
                std::printf("; ================ kernel %s (vault 0) "
                            "================\n",
                            k.stage.c_str());
                std::printf("%s", disassemble(k.perVault[0]).c_str());
            }
            return 0;
        }

        if (o.backend != "cycle" && o.backend != "func")
            fatal("unknown backend '", o.backend, "' (cycle | func)");

        if (o.backend == "func") {
            FuncDevice fdev(cfg);
            FuncLaunchResult fres =
                funcLaunchOnDevice(fdev, cp, app.inputs);
            f64 px = f64(o.width) * o.height;
            if (o.json) {
                JsonWriter j;
                j.field("bench", o.bench)
                    .field("width", o.width)
                    .field("height", o.height)
                    .field("backend", "func");
                j.key("device").beginObject();
                j.field("cubes", cfg.cubes)
                    .field("vaults", cfg.vaultsPerCube)
                    .field("pgs", cfg.pgsPerVault)
                    .field("pes", cfg.pesPerPg)
                    .field("ponb", cfg.processOnBaseDie);
                j.endObject();
                j.field("opts", o.opts)
                    .field("static_instructions", cp.totalInstructions())
                    .field("estimated_cycles", fres.estimatedCycles)
                    .field("estimate_calibrated", fres.calibrated)
                    .field("executed_instructions", fres.executedInsts)
                    .field("mpix_per_s",
                           px / (fres.estimatedCycles * 1e-9) / 1e6);
                j.key("kernels").beginArray();
                for (size_t k = 0; k < fres.kernelEstimates.size(); ++k) {
                    j.beginObject();
                    j.field("stage", cp.kernels[k].stage)
                        .field("estimated_cycles",
                               fres.kernelEstimates[k]);
                    j.endObject();
                }
                j.endArray();
                if (o.verify) {
                    Image ref = referenceRun(app.def, app.inputs);
                    f32 diff = ref.maxAbsDiff(fres.output);
                    j.field("verify_max_abs_diff", f64(diff));
                    j.field("verify_pass", diff == 0.0f);
                    std::printf("%s\n", j.finish().c_str());
                    return diff == 0.0f ? 0 : 2;
                }
                std::printf("%s\n", j.finish().c_str());
                return 0;
            }
            std::printf("backend: functional (estimated cycles from the "
                        "static cost model)\n");
            std::printf("estimated cycles: %.0f (%.3f ms) | %.1f Mpx/s | "
                        "%llu instructions interpreted\n",
                        fres.estimatedCycles,
                        fres.estimatedCycles * 1e-6,
                        px / (fres.estimatedCycles * 1e-9) / 1e6,
                        (unsigned long long)fres.executedInsts);
            for (size_t k = 0; k < fres.kernelEstimates.size(); ++k)
                std::printf("  kernel %-18s %10.0f cycles (est)\n",
                            cp.kernels[k].stage.c_str(),
                            fres.kernelEstimates[k]);
            if (o.verify) {
                Image ref = referenceRun(app.def, app.inputs);
                f32 diff = ref.maxAbsDiff(fres.output);
                std::printf("verify: max|diff| = %g -> %s\n", diff,
                            diff == 0.0f ? "BIT-EXACT" : "MISMATCH");
                return diff == 0.0f ? 0 : 2;
            }
            return 0;
        }

        std::unique_ptr<Tracer> tracer;
        if (!o.traceFile.empty()) {
            tracer = std::make_unique<Tracer>();
            tracer->setEnabled(true);
        }
        Device dev(cfg, tracer.get());
        dev.setFastForward(o.fastForward);
        dev.setThreads(o.threads);
        Runtime rt(dev, cp);
        for (const auto &[name, img] : app.inputs)
            rt.bindInput(name, img);
        LaunchResult res = rt.run();
        if (tracer)
            writeChromeTrace(*tracer, o.traceFile);

        if (o.json) {
            EnergyBreakdown e =
                computeEnergy(cfg, dev.stats(), res.cycles);
            f64 px = f64(o.width) * o.height;
            JsonWriter j;
            j.field("bench", o.bench)
                .field("width", o.width)
                .field("height", o.height)
                .field("backend", "cycle");
            j.key("device").beginObject();
            j.field("cubes", cfg.cubes)
                .field("vaults", cfg.vaultsPerCube)
                .field("pgs", cfg.pgsPerVault)
                .field("pes", cfg.pesPerPg)
                .field("ponb", cfg.processOnBaseDie);
            j.endObject();
            j.field("opts", o.opts)
                .field("static_instructions", cp.totalInstructions())
                .field("cycles", u64(res.cycles))
                .field("mpix_per_s",
                       px / (f64(res.cycles) * 1e-9) / 1e6);
            j.key("kernels").beginArray();
            for (size_t k = 0; k < res.kernelCycles.size(); ++k) {
                j.beginObject();
                j.field("stage", cp.kernels[k].stage)
                    .field("cycles", u64(res.kernelCycles[k]));
                j.endObject();
            }
            j.endArray();
            j.key("energy_mj").beginObject();
            j.field("total", e.total() * 1e3)
                .field("dram", e.dram * 1e3)
                .field("simd_unit", e.simdUnit * 1e3)
                .field("addr_rf", e.addrRf * 1e3)
                .field("data_rf", e.dataRf * 1e3)
                .field("pgsm", e.pgsm * 1e3)
                .field("others", e.others * 1e3);
            j.endObject();
            // Derived telemetry (no trace parsing; see `ipim trace`).
            {
                const StatsRegistry &st = dev.stats();
                f64 rowHit = st.get("dram.rowHit");
                f64 rowMiss = st.get("dram.rowMiss");
                j.key("telemetry").beginObject();
                j.field("row_hit_rate",
                        rowHit / std::max(1.0, rowHit + rowMiss));
                j.field("noc_moves_per_cycle",
                        (st.get("noc.hops") + st.get("noc.delivered")) /
                            std::max(1.0, f64(res.cycles)));
                // Issue counts come from the LaunchResult: per-vault
                // counters restart at each program load, and the
                // runtime accumulates them across the kernels.
                j.field("total_issued", res.totalIssued);
                j.field("avg_vault_ipc",
                        f64(res.totalIssued) /
                            std::max(1.0, f64(res.cycles) *
                                              dev.totalVaults()));
                j.key("vault_ipc").beginArray();
                for (u64 n : res.vaultIssued)
                    j.value(f64(n) / std::max(1.0, f64(res.cycles)));
                j.endArray();
                j.endObject();
                j.key("fast_forward").beginObject();
                j.field("enabled", dev.fastForward())
                    .field("skipped_cycles", dev.ffwdSkippedCycles())
                    .field("jumps", dev.ffwdJumps());
                j.endObject();
                j.field("threads", dev.threads());
            }
            if (o.verify) {
                Image ref = referenceRun(app.def, app.inputs);
                f32 diff = ref.maxAbsDiff(res.output);
                j.field("verify_max_abs_diff", f64(diff));
                j.field("verify_pass", diff == 0.0f);
                j.statsObject("stats", dev.stats());
                std::printf("%s\n", j.finish().c_str());
                return diff == 0.0f ? 0 : 2;
            }
            j.statsObject("stats", dev.stats());
            std::printf("%s\n", j.finish().c_str());
            return 0;
        }

        f64 px = f64(o.width) * o.height;
        std::printf("cycles: %llu (%.3f ms) | %.1f Mpx/s\n",
                    (unsigned long long)res.cycles,
                    f64(res.cycles) * 1e-6,
                    px / (f64(res.cycles) * 1e-9) / 1e6);
        for (size_t k = 0; k < res.kernelCycles.size(); ++k)
            std::printf("  kernel %-18s %10llu cycles\n",
                        cp.kernels[k].stage.c_str(),
                        (unsigned long long)res.kernelCycles[k]);

        const StatsRegistry &s = dev.stats();
        f64 issued = s.get("core.issued");
        std::printf("issued %.0f | IPC/vault %.3f | mix: comp %.1f%% "
                    "idx %.1f%% intra %.1f%% inter %.2f%% ctrl %.1f%%\n",
                    issued, issued / s.get("core.cycles"),
                    100 * s.get("inst.computation") / issued,
                    100 * s.get("inst.index_calc") / issued,
                    100 * s.get("inst.intra_vault") / issued,
                    100 * s.get("inst.inter_vault") / issued,
                    100 * s.get("inst.control_flow") / issued);
        std::printf("DRAM: rd %.0f wr %.0f act %.0f ref %.0f | row hits "
                    "%.1f%%\n",
                    s.get("dram.rd"), s.get("dram.wr"), s.get("dram.act"),
                    s.get("dram.ref"),
                    100 * s.get("dram.rowHit") /
                        std::max(1.0, s.get("dram.rowHit") +
                                          s.get("dram.rowMiss")));
        EnergyBreakdown e = computeEnergy(cfg, s, res.cycles);
        std::printf("energy: %.4f mJ (%s)\n", e.total() * 1e3,
                    e.toString().c_str());

        if (o.gpu) {
            GpuRunEstimate gpu = estimateGpu(analyzePipeline(app.def));
            std::printf("GPU model: %.3f ms, %.3f mJ -> speedup %.2fx "
                        "(this device, unscaled)\n",
                        gpu.seconds * 1e3, gpu.joules * 1e3,
                        gpu.seconds / (f64(res.cycles) * 1e-9));
        }

        if (o.verify) {
            Image ref = referenceRun(app.def, app.inputs);
            f32 diff = ref.maxAbsDiff(res.output);
            std::printf("verify: max|diff| = %g -> %s\n", diff,
                        diff == 0.0f ? "BIT-EXACT" : "MISMATCH");
            return diff == 0.0f ? 0 : 2;
        }
        return 0;
    } catch (const std::exception &ex) {
        std::fprintf(stderr, "error: %s\n", ex.what());
        return 1;
    }
}
