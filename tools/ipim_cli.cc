/**
 * ipim — command-line driver for the iPIM simulator.
 *
 * Compile and run any Table II benchmark (or list them), on any device
 * geometry, with any compiler-optimization setting, and report cycles,
 * throughput, instruction mix, DRAM behaviour, energy, and (optionally)
 * the disassembled kernels.  The `verify` subcommand runs the static
 * SIMB program verifier (src/verify) instead of the simulator.
 *
 * Examples:
 *   ipim --list
 *   ipim --bench Blur --width 384 --height 216
 *   ipim --bench Histogram --ponb --sched fcfs --page close
 *   ipim --bench Shift --opts baseline1 --verify
 *   ipim --bench Brighten --dump-asm | less
 *   ipim --bench Blur --vaults 4 --pgs 2 --pes 2   # scaled-down device
 *   ipim verify --all                  # statically check all benchmarks
 *   ipim verify --bench Blur --werror
 *   ipim verify --asm kernel.s         # check a hand-written program
 */
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "apps/benchmarks.h"
#include "baseline/gpu_model.h"
#include "compiler/reference.h"
#include "energy/energy_model.h"
#include "isa/assembler.h"
#include "runtime/runtime.h"
#include "verify/verifier.h"

using namespace ipim;

namespace {

struct Options
{
    std::string bench = "Blur";
    int width = 256;
    int height = 128;
    u32 cubes = 1;
    u32 vaults = 16;
    u32 pgs = 8;
    u32 pes = 4;
    bool ponb = false;
    std::string sched = "frfcfs";
    std::string page = "open";
    std::string opts = "opt";
    bool verify = false;
    bool dumpAsm = false;
    bool list = false;
    bool gpu = false;
    // verify-subcommand only:
    bool verifyCmd = false;
    bool allBenches = false;
    bool werror = false;
    std::string asmFile;
};

void
usage()
{
    std::printf(
        "usage: ipim [--list] [--bench NAME] [--width N] [--height N]\n"
        "            [--cubes N] [--vaults N] [--pgs N] [--pes N]\n"
        "            [--ponb] [--sched frfcfs|fcfs] [--page open|close]\n"
        "            [--opts opt|baseline1..baseline4] [--verify]\n"
        "            [--gpu] [--dump-asm]\n"
        "       ipim verify [--bench NAME | --all | --asm FILE]\n"
        "            [--werror] [device/compiler flags as above]\n");
}

CompilerOptions
parseOpts(const std::string &name)
{
    if (name == "opt")
        return CompilerOptions::opt();
    if (name == "baseline1")
        return CompilerOptions::baseline1();
    if (name == "baseline2")
        return CompilerOptions::baseline2();
    if (name == "baseline3")
        return CompilerOptions::baseline3();
    if (name == "baseline4")
        return CompilerOptions::baseline4();
    fatal("unknown --opts value '", name, "'");
}

HardwareConfig
buildConfig(const Options &o)
{
    HardwareConfig cfg;
    cfg.cubes = o.cubes;
    cfg.vaultsPerCube = o.vaults;
    cfg.pgsPerVault = o.pgs;
    cfg.pesPerPg = o.pes;
    cfg.meshCols = o.vaults >= 4 ? 4 : o.vaults;
    cfg.processOnBaseDie = o.ponb;
    cfg.schedPolicy = o.sched == "fcfs" ? SchedPolicy::kFcfs
                                        : SchedPolicy::kFrFcfs;
    cfg.pagePolicy = o.page == "close" ? PagePolicy::kClosePage
                                       : PagePolicy::kOpenPage;
    cfg.validate();
    return cfg;
}

/** Print @p rep and return true when it passes. */
bool
reportResult(const VerifyReport &rep, bool werror)
{
    if (!rep.empty())
        std::printf("%s", rep.toString().c_str());
    return rep.pass(werror);
}

/** The `ipim verify` subcommand: static checks, no simulation. */
int
runVerifyCommand(const Options &o)
{
    HardwareConfig cfg = buildConfig(o);
    VerifierOptions vopts;
    vopts.warningsAsErrors = o.werror;

    if (!o.asmFile.empty()) {
        std::ifstream in(o.asmFile);
        if (!in)
            fatal("cannot open ", o.asmFile);
        std::ostringstream text;
        text << in.rdbuf();
        std::vector<Instruction> prog = assemble(text.str());
        bool ok = reportResult(verifyProgram(cfg, prog, vopts), o.werror);
        std::printf("%s: %zu instructions -> %s\n", o.asmFile.c_str(),
                    prog.size(), ok ? "OK" : "REJECTED");
        return ok ? 0 : 3;
    }

    std::vector<std::string> benches;
    if (o.allBenches)
        benches = allBenchmarkNames();
    else
        benches.push_back(o.bench);

    CompilerOptions copts = parseOpts(o.opts);
    bool allOk = true;
    for (const std::string &name : benches) {
        BenchmarkApp app = makeBenchmark(name, o.width, o.height);
        CompiledPipeline cp = compilePipeline(app.def, cfg, copts);
        for (const CompiledKernel &k : cp.kernels) {
            VerifyReport rep = verifyDevice(cfg, k.perVault, vopts);
            bool ok = reportResult(rep, o.werror);
            allOk = allOk && ok;
            std::printf("%s/%s: %llu insts over %zu vaults -> %s "
                        "(%zu errors, %zu warnings)\n",
                        name.c_str(), k.stage.c_str(),
                        (unsigned long long)k.backend.instructions,
                        k.perVault.size(), ok ? "OK" : "REJECTED",
                        rep.errorCount(), rep.warningCount());
        }
    }
    return allOk ? 0 : 3;
}

} // namespace

int
main(int argc, char **argv)
{
    Options o;
    int first = 1;
    if (argc > 1 && std::strcmp(argv[1], "verify") == 0) {
        o.verifyCmd = true;
        first = 2;
    }
    for (int i = first; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value after ", a);
            return argv[++i];
        };
        if (a == "--list")
            o.list = true;
        else if (a == "--bench")
            o.bench = next();
        else if (a == "--width")
            o.width = std::stoi(next());
        else if (a == "--height")
            o.height = std::stoi(next());
        else if (a == "--cubes")
            o.cubes = u32(std::stoul(next()));
        else if (a == "--vaults")
            o.vaults = u32(std::stoul(next()));
        else if (a == "--pgs")
            o.pgs = u32(std::stoul(next()));
        else if (a == "--pes")
            o.pes = u32(std::stoul(next()));
        else if (a == "--ponb")
            o.ponb = true;
        else if (a == "--sched")
            o.sched = next();
        else if (a == "--page")
            o.page = next();
        else if (a == "--opts")
            o.opts = next();
        else if (a == "--verify")
            o.verify = true;
        else if (a == "--all")
            o.allBenches = true;
        else if (a == "--werror")
            o.werror = true;
        else if (a == "--asm")
            o.asmFile = next();
        else if (a == "--gpu")
            o.gpu = true;
        else if (a == "--dump-asm")
            o.dumpAsm = true;
        else if (a == "--help" || a == "-h") {
            usage();
            return 0;
        } else {
            usage();
            fatal("unknown option ", a);
        }
    }

    try {
        if (o.list) {
            for (const std::string &n : allBenchmarkNames())
                std::printf("%s\n", n.c_str());
            return 0;
        }
        if (o.verifyCmd)
            return runVerifyCommand(o);

        HardwareConfig cfg = buildConfig(o);

        BenchmarkApp app = makeBenchmark(o.bench, o.width, o.height);
        CompilerOptions copts = parseOpts(o.opts);
        CompiledPipeline cp = compilePipeline(app.def, cfg, copts);

        std::printf("bench %s %dx%d | device %ux%ux%ux%u%s | opts %s\n",
                    o.bench.c_str(), o.width, o.height, cfg.cubes,
                    cfg.vaultsPerCube, cfg.pgsPerVault, cfg.pesPerPg,
                    o.ponb ? " (PonB)" : "", o.opts.c_str());
        std::printf("compiled %zu kernels, %llu static instructions\n",
                    cp.kernels.size(),
                    (unsigned long long)cp.totalInstructions());

        if (o.dumpAsm) {
            for (const CompiledKernel &k : cp.kernels) {
                std::printf("; ================ kernel %s (vault 0) "
                            "================\n",
                            k.stage.c_str());
                std::printf("%s", disassemble(k.perVault[0]).c_str());
            }
            return 0;
        }

        Device dev(cfg);
        Runtime rt(dev, cp);
        for (const auto &[name, img] : app.inputs)
            rt.bindInput(name, img);
        LaunchResult res = rt.run();

        f64 px = f64(o.width) * o.height;
        std::printf("cycles: %llu (%.3f ms) | %.1f Mpx/s\n",
                    (unsigned long long)res.cycles,
                    f64(res.cycles) * 1e-6,
                    px / (f64(res.cycles) * 1e-9) / 1e6);
        for (size_t k = 0; k < res.kernelCycles.size(); ++k)
            std::printf("  kernel %-18s %10llu cycles\n",
                        cp.kernels[k].stage.c_str(),
                        (unsigned long long)res.kernelCycles[k]);

        const StatsRegistry &s = dev.stats();
        f64 issued = s.get("core.issued");
        std::printf("issued %.0f | IPC/vault %.3f | mix: comp %.1f%% "
                    "idx %.1f%% intra %.1f%% inter %.2f%% ctrl %.1f%%\n",
                    issued, issued / s.get("core.cycles"),
                    100 * s.get("inst.computation") / issued,
                    100 * s.get("inst.index_calc") / issued,
                    100 * s.get("inst.intra_vault") / issued,
                    100 * s.get("inst.inter_vault") / issued,
                    100 * s.get("inst.control_flow") / issued);
        std::printf("DRAM: rd %.0f wr %.0f act %.0f ref %.0f | row hits "
                    "%.1f%%\n",
                    s.get("dram.rd"), s.get("dram.wr"), s.get("dram.act"),
                    s.get("dram.ref"),
                    100 * s.get("dram.rowHit") /
                        std::max(1.0, s.get("dram.rowHit") +
                                          s.get("dram.rowMiss")));
        EnergyBreakdown e = computeEnergy(cfg, s, res.cycles);
        std::printf("energy: %.4f mJ (%s)\n", e.total() * 1e3,
                    e.toString().c_str());

        if (o.gpu) {
            GpuRunEstimate gpu = estimateGpu(analyzePipeline(app.def));
            std::printf("GPU model: %.3f ms, %.3f mJ -> speedup %.2fx "
                        "(this device, unscaled)\n",
                        gpu.seconds * 1e3, gpu.joules * 1e3,
                        gpu.seconds / (f64(res.cycles) * 1e-9));
        }

        if (o.verify) {
            Image ref = referenceRun(app.def, app.inputs);
            f32 diff = ref.maxAbsDiff(res.output);
            std::printf("verify: max|diff| = %g -> %s\n", diff,
                        diff == 0.0f ? "BIT-EXACT" : "MISMATCH");
            return diff == 0.0f ? 0 : 2;
        }
        return 0;
    } catch (const std::exception &ex) {
        std::fprintf(stderr, "error: %s\n", ex.what());
        return 1;
    }
}
