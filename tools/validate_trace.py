#!/usr/bin/env python3
"""Validate a Chrome trace_event JSON file produced by `ipim --trace`.

Checks (stdlib only, no third-party deps):
  * the file parses as JSON and has a `traceEvents` array;
  * every event carries the fields its phase requires;
  * phases are limited to the ones the exporter emits (M/X/i/C/b/e);
  * non-metadata timestamps are monotonically non-decreasing per
    (pid, tid) track in file order (Perfetto relies on this);
  * "X" durations are non-negative;
  * async begin/end events balance per (cat, id) with no end-before-begin.

Usage: validate_trace.py TRACE.json [TRACE2.json ...]
Exits 0 when every file passes, 1 otherwise.
"""

import json
import sys

REQUIRED = {
    "M": ("name", "ph", "pid", "tid", "args"),
    "X": ("name", "ph", "pid", "tid", "ts", "dur"),
    "i": ("name", "ph", "pid", "tid", "ts", "s"),
    "C": ("name", "ph", "pid", "tid", "ts", "args"),
    "b": ("name", "ph", "pid", "tid", "ts", "cat", "id"),
    "e": ("name", "ph", "pid", "tid", "ts", "cat", "id"),
}


def validate(path):
    errors = []
    with open(path, "r", encoding="utf-8") as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            return [f"not valid JSON: {e}"]

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["missing traceEvents array"]

    last_ts = {}  # (pid, tid) -> last seen ts
    async_open = {}  # (cat, id) -> open-begin depth
    counts = {}
    for i, ev in enumerate(events):
        where = f"event {i}"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in REQUIRED:
            errors.append(f"{where}: unexpected phase {ph!r}")
            continue
        counts[ph] = counts.get(ph, 0) + 1
        missing = [k for k in REQUIRED[ph] if k not in ev]
        if missing:
            errors.append(f"{where} (ph={ph}): missing {missing}")
            continue
        if ph == "M":
            continue
        ts = ev["ts"]
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"{where}: bad ts {ts!r}")
            continue
        track = (ev["pid"], ev["tid"])
        if track in last_ts and ts < last_ts[track]:
            errors.append(
                f"{where}: ts {ts} goes backwards on track {track} "
                f"(last {last_ts[track]})"
            )
        last_ts[track] = ts
        if ph == "X" and ev["dur"] < 0:
            errors.append(f"{where}: negative dur {ev['dur']}")
        if ph == "b":
            key = (ev["cat"], ev["id"])
            async_open[key] = async_open.get(key, 0) + 1
        elif ph == "e":
            key = (ev["cat"], ev["id"])
            if async_open.get(key, 0) <= 0:
                errors.append(f"{where}: async end without begin {key}")
            else:
                async_open[key] -= 1

    for key, depth in sorted(async_open.items()):
        if depth != 0:
            errors.append(f"unbalanced async span {key}: {depth} open")

    if not any(p in counts for p in ("X", "i", "C", "b")):
        errors.append("trace contains no data events")

    summary = " ".join(f"{p}:{n}" for p, n in sorted(counts.items()))
    print(f"{path}: {len(events)} events ({summary})")
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    failed = False
    for path in argv[1:]:
        for err in validate(path):
            print(f"{path}: ERROR: {err}", file=sys.stderr)
            failed = True
    if failed:
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
