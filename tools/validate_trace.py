#!/usr/bin/env python3
"""Validate iPIM JSON artifacts: Chrome traces and metrics snapshots.

Two document kinds are auto-detected:

Chrome trace_event files (`ipim --trace`, top-level `traceEvents`):
  * the file parses as JSON and has a `traceEvents` array;
  * every event carries the fields its phase requires;
  * phases are limited to the ones the exporter emits (M/X/i/C/b/e);
  * non-metadata timestamps are monotonically non-decreasing per
    (pid, tid) track in file order (Perfetto relies on this);
  * "X" durations are non-negative;
  * async begin/end events balance per (cat, id) with no end-before-begin.

Metrics snapshots (`ipim profile --json`, top-level `metrics`):
  * timestamps are strictly increasing and spaced by `interval`;
  * every counter/gauge series has one value per timestamp;
  * counter deltas and gauges are finite and non-negative;
  * samples_retained matches the retained window count and capacity;
  * a `profile` block, when present, has per-vault categories that sum
    to that vault's cycles and rooflines with utilization in [0, 1].

Usage: validate_trace.py FILE.json [FILE2.json ...]
Exits 0 when every file passes, 1 otherwise.
"""

import json
import math
import sys

REQUIRED = {
    "M": ("name", "ph", "pid", "tid", "args"),
    "X": ("name", "ph", "pid", "tid", "ts", "dur"),
    "i": ("name", "ph", "pid", "tid", "ts", "s"),
    "C": ("name", "ph", "pid", "tid", "ts", "args"),
    "b": ("name", "ph", "pid", "tid", "ts", "cat", "id"),
    "e": ("name", "ph", "pid", "tid", "ts", "cat", "id"),
}


CATEGORIES = ("issued", "bubble", "barrier", "drain", "struct", "hazard")


def check_series(errors, kind, name, series, n_ts, gauge):
    """One counter/gauge series: right length, finite, non-negative."""
    if not isinstance(series, list):
        errors.append(f"{kind} {name!r}: not an array")
        return
    if len(series) != n_ts:
        errors.append(
            f"{kind} {name!r}: {len(series)} values for {n_ts} timestamps"
        )
    for i, v in enumerate(series):
        if not isinstance(v, (int, float)) or v is True or v is False:
            errors.append(f"{kind} {name!r}[{i}]: non-numeric {v!r}")
            return
        if not math.isfinite(v):
            errors.append(f"{kind} {name!r}[{i}]: non-finite {v!r}")
            return
        if v < 0:
            errors.append(f"{kind} {name!r}[{i}]: negative value {v}")
            return
        if gauge and name.startswith(("peBusy", "dram.rowHitRate")) and v > 1:
            errors.append(f"{kind} {name!r}[{i}]: rate/fraction {v} > 1")
            return


def validate_metrics(doc):
    """Checks for an `ipim profile --json` snapshot (see module doc)."""
    errors = []
    m = doc["metrics"]
    if not isinstance(m, dict):
        return ["metrics: not an object"]

    interval = m.get("interval")
    ts = m.get("timestamps")
    if not isinstance(interval, int) or interval <= 0:
        errors.append(f"metrics: bad interval {interval!r}")
        interval = None
    if not isinstance(ts, list):
        return errors + ["metrics: missing timestamps array"]
    for i, t in enumerate(ts):
        if not isinstance(t, int) or t < 0:
            errors.append(f"timestamps[{i}]: bad value {t!r}")
            break
        if i > 0 and t <= ts[i - 1]:
            errors.append(
                f"timestamps[{i}]: {t} not after {ts[i - 1]}"
            )
            break
        if interval and t % interval != 0:
            errors.append(
                f"timestamps[{i}]: {t} not on a {interval}-cycle boundary"
            )
            break

    retained = m.get("samples_retained")
    total = m.get("samples_total")
    capacity = m.get("capacity")
    if retained != len(ts):
        errors.append(
            f"metrics: samples_retained {retained!r} != {len(ts)} timestamps"
        )
    if isinstance(total, int) and isinstance(retained, int):
        if retained > total:
            errors.append(
                f"metrics: samples_retained {retained} > samples_total {total}"
            )
    if isinstance(capacity, int) and isinstance(retained, int):
        if retained > capacity:
            errors.append(
                f"metrics: samples_retained {retained} > capacity {capacity}"
            )

    n_series = 0
    for kind, gauge in (("counters", False), ("gauges", True)):
        block = m.get(kind, {})
        if not isinstance(block, dict):
            errors.append(f"metrics: {kind} is not an object")
            continue
        for name, series in block.items():
            check_series(errors, kind[:-1], name, series, len(ts), gauge)
            n_series += 1

    # A profile block rides along in `ipim profile --json` output: the
    # per-vault issue-slot categories must tile each vault's cycles.
    prof = doc.get("profile")
    if isinstance(prof, dict):
        vaults = prof.get("vaults", [])
        for i, a in enumerate(vaults + [prof.get("total", {})]):
            label = f"profile vault {i}" if i < len(vaults) else "profile total"
            parts = sum(a.get(c, 0) for c in CATEGORIES) + a.get("halted", 0)
            if parts != a.get("cycles"):
                errors.append(
                    f"{label}: categories sum {parts} != cycles "
                    f"{a.get('cycles')!r}"
                )
        for r in prof.get("rooflines", []):
            util = r.get("utilization", 0.0)
            if not (0.0 <= util <= 1.0 + 1e-9):
                errors.append(
                    f"roofline {r.get('name')!r}: utilization {util} "
                    "outside [0, 1]"
                )
        if not prof.get("bottleneck"):
            errors.append("profile: empty bottleneck")

    return errors, len(ts), n_series


def validate(path):
    errors = []
    with open(path, "r", encoding="utf-8") as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            return [f"not valid JSON: {e}"]

    if isinstance(doc, dict) and "metrics" in doc:
        result = validate_metrics(doc)
        if isinstance(result, list):  # shape error before counting
            return result
        errors, n_ts, n_series = result
        print(f"{path}: metrics snapshot ({n_ts} samples, {n_series} series)")
        return errors

    events = doc.get("traceEvents") if isinstance(doc, dict) else None
    if not isinstance(events, list):
        return ["missing traceEvents array (and no metrics block)"]

    last_ts = {}  # (pid, tid) -> last seen ts
    async_open = {}  # (cat, id) -> open-begin depth
    counts = {}
    for i, ev in enumerate(events):
        where = f"event {i}"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in REQUIRED:
            errors.append(f"{where}: unexpected phase {ph!r}")
            continue
        counts[ph] = counts.get(ph, 0) + 1
        missing = [k for k in REQUIRED[ph] if k not in ev]
        if missing:
            errors.append(f"{where} (ph={ph}): missing {missing}")
            continue
        if ph == "M":
            continue
        ts = ev["ts"]
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"{where}: bad ts {ts!r}")
            continue
        track = (ev["pid"], ev["tid"])
        if track in last_ts and ts < last_ts[track]:
            errors.append(
                f"{where}: ts {ts} goes backwards on track {track} "
                f"(last {last_ts[track]})"
            )
        last_ts[track] = ts
        if ph == "X" and ev["dur"] < 0:
            errors.append(f"{where}: negative dur {ev['dur']}")
        if ph == "b":
            key = (ev["cat"], ev["id"])
            async_open[key] = async_open.get(key, 0) + 1
        elif ph == "e":
            key = (ev["cat"], ev["id"])
            if async_open.get(key, 0) <= 0:
                errors.append(f"{where}: async end without begin {key}")
            else:
                async_open[key] -= 1

    for key, depth in sorted(async_open.items()):
        if depth != 0:
            errors.append(f"unbalanced async span {key}: {depth} open")

    if not any(p in counts for p in ("X", "i", "C", "b")):
        errors.append("trace contains no data events")

    summary = " ".join(f"{p}:{n}" for p, n in sorted(counts.items()))
    print(f"{path}: {len(events)} events ({summary})")
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    failed = False
    for path in argv[1:]:
        for err in validate(path):
            print(f"{path}: ERROR: {err}", file=sys.stderr)
            failed = True
    if failed:
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
