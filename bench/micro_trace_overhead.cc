/**
 * Overhead budget check for the tracing subsystem (DESIGN.md Sec. 12):
 * with tracing compiled in but *disabled*, every instrumentation site
 * must cost only a null/bool branch, so an end-to-end simulation with a
 * present-but-disabled Tracer has to stay within 2% of the same run
 * with no tracer attached at all (the hot path a build configured with
 * -DIPIM_ENABLE_TRACING=OFF would take unconditionally).
 *
 * Exits non-zero when the budget is blown, so CI can gate on it.
 */
#include <algorithm>
#include <chrono>
#include <cstdio>

#include "apps/benchmarks.h"
#include "runtime/runtime.h"
#include "trace/trace.h"

using namespace ipim;

namespace {

using Clock = std::chrono::steady_clock;

f64
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<f64>(Clock::now() - t0).count();
}

/** One full compile-free simulation; returns wall-clock seconds. */
f64
simulateOnce(const CompiledPipeline &cp, const BenchmarkApp &app,
             const HardwareConfig &cfg, Tracer *tracer)
{
    Device dev(cfg, tracer);
    Runtime rt(dev, cp);
    for (const auto &[name, img] : app.inputs)
        rt.bindInput(name, img);
    Clock::time_point t0 = Clock::now();
    rt.run();
    return secondsSince(t0);
}

} // namespace

int
main()
{
    HardwareConfig cfg = HardwareConfig::tiny();
    BenchmarkApp app = makeBenchmark("Blur", 128, 64);
    CompiledPipeline cp = compilePipeline(app.def, cfg);

    Tracer disabled; // present but never enabled: the guarded hot path

    // Warm up caches/allocator before timing.
    simulateOnce(cp, app, cfg, nullptr);
    simulateOnce(cp, app, cfg, &disabled);

    // Interleave the two variants and keep the minimum of several reps:
    // the min is the least noise-contaminated estimate of true cost.
    // External load only ever inflates a measurement, so one round that
    // lands within budget proves the code path is cheap; retry a couple
    // of times before declaring failure.
    constexpr int kReps = 7;
    constexpr int kRounds = 3;
    f64 baseline = 1e30, guarded = 1e30, overhead = 0.0;
    for (int round = 0; round < kRounds; ++round) {
        for (int i = 0; i < kReps; ++i) {
            f64 a = simulateOnce(cp, app, cfg, nullptr);
            f64 b = simulateOnce(cp, app, cfg, &disabled);
            baseline = std::min(baseline, a);
            guarded = std::min(guarded, b);
        }
        overhead = guarded / baseline - 1.0;
        if (guarded <= baseline * 1.02 + 50e-6)
            break;
    }

    // Per-site guard cost in isolation (reported, not gated): this is
    // the branch every instrumentation point pays while disabled.
    volatile u64 sink = 0;
    Clock::time_point t0 = Clock::now();
    constexpr u64 kCalls = 200'000'000;
    for (u64 i = 0; i < kCalls; ++i)
        sink = sink + (Tracer::active(&disabled) ? 1 : 0);
    f64 perCallNs = secondsSince(t0) / f64(kCalls) * 1e9;

    std::printf("disabled-tracing overhead: baseline %.3f ms | guarded "
                "%.3f ms | overhead %+.2f%% (budget +2%%)\n",
                baseline * 1e3, guarded * 1e3, overhead * 100.0);
    std::printf("guard cost: %.3f ns/site-visit (%llu checks)\n",
                perCallNs, (unsigned long long)(sink ? kCalls : kCalls));

    // Allow 50us absolute slack so sub-millisecond runs don't turn
    // scheduler jitter into a spurious failure.
    if (guarded > baseline * 1.02 + 50e-6) {
        std::printf("FAIL: disabled tracing exceeds the 2%% budget\n");
        return 3;
    }
    std::printf("PASS\n");
    return 0;
}
