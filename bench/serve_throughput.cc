/**
 * Serving-layer throughput study (DESIGN.md Sec. 11): sweeps arrival
 * rate x {scheduler} x {sharing mode} over a mixed open-loop Poisson
 * workload and reports tail latency, throughput, and makespan.
 *
 * Expected shape: cube-granular space sharing beats whole-device
 * serialization on total completion time because per-benchmark cube
 * scaling is sublinear (a 2-cube Blur is ~1.7x faster than 1-cube, so
 * two 1-cube requests in parallel finish sooner than two serialized
 * 2-cube runs); SJF beats FIFO on mean/tail latency once queues form,
 * with the gap widening as the arrival rate approaches saturation.
 */
#include "bench_common.h"
#include "service/server.h"

using namespace ipim;
using namespace ipim::bench;

namespace {

struct Setting
{
    const char *name;
    const char *policy;
    ShareMode share;
};

HardwareConfig
serveDevice()
{
    HardwareConfig cfg;
    cfg.cubes = 2;
    cfg.vaultsPerCube = 4;
    cfg.pgsPerVault = 2;
    cfg.pesPerPg = 2;
    cfg.meshCols = 4;
    cfg.validate();
    return cfg;
}

} // namespace

int
main()
{
    printHeader("Serve", "request scheduling x device sharing");

    const Setting settings[] = {
        {"fifo+whole", "fifo", ShareMode::kWholeDevice},
        {"sjf+whole", "sjf", ShareMode::kWholeDevice},
        {"fifo+cube", "fifo", ShareMode::kPerCube},
        {"sjf+cube", "sjf", ShareMode::kPerCube},
    };
    // Low rates are arrival-bound (makespan == last arrival + service);
    // the interesting regime is near/over saturation (~100k req/s for
    // this device), where makespan measures sustainable capacity.
    const f64 rates[] = {20000, 80000, 160000, 320000};

    WorkloadSpec spec;
    spec.pipelines = {"Blur", "Brighten", "Shift", "Downsample"};
    spec.requests = 120;
    spec.seed = 7;

    std::printf("(2-cube 4x2x2 device, 128x64 images, %u-request "
                "Blur/Brighten/Shift/Downsample mix, seed %llu)\n",
                spec.requests, (unsigned long long)spec.seed);
    std::printf("%-8s %-11s %12s %12s %12s %12s %12s\n", "rate",
                "setting", "p50(ms)", "p95(ms)", "p99(ms)",
                "makespan(ms)", "req/s");

    for (f64 rate : rates) {
        spec.ratePerSec = rate;
        std::vector<ServeRequest> reqs = generatePoissonWorkload(spec);
        f64 fifoWholeMakespan = 0, sjfCubeMakespan = 0;
        for (const Setting &s : settings) {
            ServerConfig cfg;
            cfg.hw = serveDevice();
            cfg.width = 128;
            cfg.height = 64;
            cfg.policy = s.policy;
            cfg.share = s.share;
            Server server(cfg);
            ServeReport rep = server.run(reqs);
            f64 mk = f64(rep.makespan) * 1e-6;
            if (std::string(s.name) == "fifo+whole")
                fifoWholeMakespan = mk;
            if (std::string(s.name) == "sjf+cube")
                sjfCubeMakespan = mk;
            std::printf("%-8.0f %-11s %12.3f %12.3f %12.3f %12.3f "
                        "%12.0f\n",
                        rate, s.name,
                        rep.totalLatency.percentile(50) * 1e-6,
                        rep.totalLatency.percentile(95) * 1e-6,
                        rep.totalLatency.percentile(99) * 1e-6, mk,
                        rep.throughputRps());
        }
        f64 ratio = fifoWholeMakespan / sjfCubeMakespan;
        const char *verdict = ratio > 1.005
                                  ? "WIN"
                                  : (ratio < 0.995 ? "LOSS"
                                                   : "TIE (arrival-bound)");
        std::printf("  -> space-shared SJF vs whole-device FIFO total "
                    "completion: %.3f ms vs %.3f ms (%s, %.2fx)\n",
                    sjfCubeMakespan, fifoWholeMakespan, verdict,
                    fifoWholeMakespan / sjfCubeMakespan);
    }
    return 0;
}
