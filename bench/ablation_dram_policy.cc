/**
 * Design-choice ablation (DESIGN.md Sec. 7): the paper fixes open-page +
 * FR-FCFS for its in-DRAM memory controllers (Table III); this harness
 * quantifies that choice by sweeping both page policies and both
 * scheduling policies over a representative benchmark subset.
 *
 * Expected shape: open-page + FR-FCFS wins wherever the compiler's
 * memory-order enforcement produces tile-sequential row-buffer locality;
 * close-page hurts streaming kernels most; FCFS costs little because the
 * issue order is already row-friendly (which is itself evidence for the
 * paper's memory-order pass).
 */
#include "bench_common.h"

using namespace ipim;
using namespace ipim::bench;

int
main()
{
    printHeader("Ablation", "DRAM page policy x scheduling policy");
    int w = benchWidth() / 2, h = benchHeight() / 2;
    const std::vector<std::string> subset = {"Brighten", "Blur",
                                             "Histogram", "Interpolate"};
    struct Setting
    {
        const char *name;
        PagePolicy page;
        SchedPolicy sched;
    };
    const Setting settings[] = {
        {"open+frfcfs", PagePolicy::kOpenPage, SchedPolicy::kFrFcfs},
        {"open+fcfs", PagePolicy::kOpenPage, SchedPolicy::kFcfs},
        {"close+frfcfs", PagePolicy::kClosePage, SchedPolicy::kFrFcfs},
        {"close+fcfs", PagePolicy::kClosePage, SchedPolicy::kFcfs},
    };

    std::printf("(image %dx%d; cycles, normalized to open+frfcfs)\n", w,
                h);
    std::printf("%-13s", "benchmark");
    for (const Setting &s : settings)
        std::printf(" %13s", s.name);
    std::printf("   rowHit%%(open+frfcfs)\n");

    for (const std::string &name : subset) {
        f64 base = 0;
        f64 baseRowHit = 0;
        std::printf("%-13s", name.c_str());
        for (const Setting &s : settings) {
            HardwareConfig cfg = HardwareConfig::benchCube();
            cfg.pagePolicy = s.page;
            cfg.schedPolicy = s.sched;
            IpimRun run = runIpim(name, w, h, cfg);
            if (base == 0) {
                base = f64(run.cycles);
                f64 hits = run.stats.get("dram.rowHit");
                f64 misses = run.stats.get("dram.rowMiss");
                baseRowHit = 100.0 * hits / std::max(1.0, hits + misses);
            }
            std::printf(" %13.3f", f64(run.cycles) / base);
        }
        std::printf("   %.1f\n", baseRowHit);
    }
    std::printf("\nTable III picks open-page + FR-FCFS; a ratio > 1.0 in "
                "any other column confirms the choice.\n");
    return 0;
}
