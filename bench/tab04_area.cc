/**
 * Regenerates Table IV: area of the iPIM execution components on one
 * DRAM die (with the 2x DRAM-process penalty), the control core's fit on
 * the base logic die, and the naive per-bank-core counterfactual.
 * Paper reference: 10.28 mm^2 total, 10.71% overhead; naive 122.36%.
 */
#include <cstdio>

#include "energy/area_model.h"

using namespace ipim;

int
main()
{
    std::printf("=================================================\n");
    std::printf("iPIM reproduction | Table IV: area on the DRAM die\n");
    std::printf("=================================================\n");
    AreaReport rep = computeArea(HardwareConfig::paper());
    std::printf("%s", rep.toString().c_str());
    std::printf("\npaper reference: total 10.28 mm^2 (10.71%%); naive "
                "per-bank cores 122.36%% (10.42x worse)\n");
    return 0;
}
