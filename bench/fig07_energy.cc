/**
 * Regenerates Fig. 7: energy of iPIM vs the GPU per benchmark and the
 * average energy saving.  Paper reference: 79.49% average saving
 * (89.26% single-stage, 66.81% multi-stage).
 */
#include "bench_common.h"

using namespace ipim;
using namespace ipim::bench;

int
main()
{
    printHeader("Fig. 7", "energy comparison iPIM vs GPU");
    HardwareConfig cfg = HardwareConfig::benchCube();
    std::printf("%-15s %12s %12s %9s\n", "benchmark", "GPU(mJ)",
                "iPIM(mJ)", "saving%");
    f64 savingSum = 0, singleSum = 0, multiSum = 0;
    int n = 0, nSingle = 0, nMulti = 0;
    for (const std::string &name : allBenchmarkNames()) {
        BenchmarkApp app = makeBenchmark(name, benchWidth(),
                                         benchHeight());
        IpimRun run = runIpim(name, benchWidth(), benchHeight(), cfg);
        GpuRunEstimate gpu = runGpu(name, benchWidth(), benchHeight());
        f64 saving = 100.0 * (1.0 - run.energy.total() / gpu.joules);
        std::printf("%-15s %12.3f %12.3f %9.2f\n", name.c_str(),
                    gpu.joules * 1e3, run.energy.total() * 1e3, saving);
        savingSum += saving;
        (app.multiStage ? multiSum : singleSum) += saving;
        (app.multiStage ? nMulti : nSingle) += 1;
        ++n;
    }
    std::printf("%-15s %12s %12s %9.2f\n", "average", "", "",
                savingSum / n);
    std::printf("%-15s %12s %12s %9.2f / %.2f\n", "single/multi", "", "",
                singleSum / nSingle, multiSum / nMulti);
    std::printf("%-15s %12s %12s %9.2f   (paper; 89.26/66.81)\n",
                "paper", "", "", 79.49);
    return 0;
}
