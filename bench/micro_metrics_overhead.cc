/**
 * Overhead budget check for the metrics sampler (DESIGN.md Sec. 14): a
 * MetricsSampler attached at the default 1024-cycle interval must keep
 * an end-to-end simulation within 2% of the same run with no probe
 * attached — the hot-path cost per dense cycle is one cached
 * pointer/compare, and each sample only reads a bounded set of counters
 * and gauges.
 *
 * Exits non-zero when the budget is blown, so CI can gate on it.
 */
#include <algorithm>
#include <chrono>
#include <cstdio>

#include "apps/benchmarks.h"
#include "metrics/metrics.h"
#include "runtime/runtime.h"

using namespace ipim;

namespace {

using Clock = std::chrono::steady_clock;

f64
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<f64>(Clock::now() - t0).count();
}

/** One full compile-free simulation; returns wall-clock seconds. */
f64
simulateOnce(const CompiledPipeline &cp, const BenchmarkApp &app,
             const HardwareConfig &cfg, MetricsSampler *sampler)
{
    Device dev(cfg);
    if (sampler != nullptr)
        dev.setProbe(sampler);
    Runtime rt(dev, cp);
    for (const auto &[name, img] : app.inputs)
        rt.bindInput(name, img);
    Clock::time_point t0 = Clock::now();
    rt.run();
    return secondsSince(t0);
}

} // namespace

int
main()
{
    HardwareConfig cfg = HardwareConfig::tiny();
    BenchmarkApp app = makeBenchmark("Blur", 128, 64);
    CompiledPipeline cp = compilePipeline(app.def, cfg);

    MetricsSampler sampler; // default interval (1024) and capacity

    // Warm up caches/allocator before timing.
    simulateOnce(cp, app, cfg, nullptr);
    simulateOnce(cp, app, cfg, &sampler);

    // Interleave the two variants and keep the minimum of several reps:
    // the min is the least noise-contaminated estimate of true cost.
    // External load only ever inflates a measurement, so one round that
    // lands within budget proves the code path is cheap; retry a couple
    // of times before declaring failure.
    constexpr int kReps = 7;
    constexpr int kRounds = 3;
    f64 baseline = 1e30, probed = 1e30, overhead = 0.0;
    for (int round = 0; round < kRounds; ++round) {
        for (int i = 0; i < kReps; ++i) {
            f64 a = simulateOnce(cp, app, cfg, nullptr);
            f64 b = simulateOnce(cp, app, cfg, &sampler);
            baseline = std::min(baseline, a);
            probed = std::min(probed, b);
        }
        overhead = probed / baseline - 1.0;
        if (probed <= baseline * 1.02 + 50e-6)
            break;
    }

    std::printf("metrics-sampler overhead: baseline %.3f ms | sampled "
                "%.3f ms | overhead %+.2f%% (budget +2%%) | %llu "
                "samples/run at interval %llu\n",
                baseline * 1e3, probed * 1e3, overhead * 100.0,
                (unsigned long long)sampler.samplesTotal(),
                (unsigned long long)sampler.interval());

    // Allow 50us absolute slack so sub-millisecond runs don't turn
    // scheduler jitter into a spurious failure.
    if (probed > baseline * 1.02 + 50e-6) {
        std::printf("FAIL: metrics sampling exceeds the 2%% budget\n");
        return 3;
    }
    std::printf("PASS\n");
    return 0;
}
