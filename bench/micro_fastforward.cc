/**
 * Wall-clock benefit of next-event fast-forward (DESIGN.md Sec. 13).
 *
 * Runs hand-written SIMB workloads chosen to be dominated by long
 * quiescent intervals — barrier parking behind a sync, RAW-serialized
 * SIMD chains, and DRAM refresh windows — once with dense per-cycle
 * ticking and once with fast-forward, and reports simulated cycles per
 * wall-second for both along with the speedup.
 *
 * Bit-exactness is checked first (final cycle count and the full stats
 * registry must match between the two modes); a divergence exits
 * non-zero so CI can gate on it.  The speedup itself is reported, not
 * gated — machine load must not fail the build — but the emitted
 * BENCH_hotloop.json records it for the README table.
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>

#include "common/json.h"
#include "sim/device.h"

using namespace ipim;

namespace {

using Clock = std::chrono::steady_clock;

struct Prog
{
    std::vector<Instruction> v;

    Prog &
    operator<<(Instruction i)
    {
        v.push_back(i);
        return *this;
    }

    std::vector<Instruction>
    done()
    {
        v.push_back(Instruction::halt());
        return v;
    }
};

struct Workload
{
    std::string name;
    HardwareConfig cfg;
    std::vector<std::vector<Instruction>> progs; ///< one per vault
};

u32
fullMask(const HardwareConfig &cfg)
{
    return (1u << cfg.pesPerVault()) - 1;
}

/**
 * Wrap @p body in a CRF countdown loop executed @p iters times
 * (test_sim.cc idiom: crf0 counts down, crf1 holds the loop head).
 */
void
emitLoop(Prog &p, u32 iters, const std::vector<Instruction> &body)
{
    p << Instruction::setiCrf(0, i32(iters));
    p << Instruction::setiCrf(1, i32(p.v.size() + 1));
    for (const Instruction &i : body)
        p << i;
    p << Instruction::calcCrfImm(AluOp::kAdd, 0, 0, -1);
    p << Instruction::cjump(0, 1);
}

/**
 * Vault 0 grinds a RAW-serialized MAC chain while every other vault
 * parks at a sync barrier: almost every cycle device-wide is a stall
 * the fast-forward layer can skip (the paper's kernels end the same
 * way — all vaults but the straggler waiting at the kernel sync).
 */
Workload
makeSyncStall()
{
    Workload w;
    w.name = "sync_stall";
    w.cfg = HardwareConfig::tiny();
    u32 mask = fullMask(w.cfg);

    Prog master;
    // d2 += d1 * d1 back to back: each MAC must wait out the previous
    // one's full SIMD latency before it can issue.
    std::vector<Instruction> chain;
    for (int i = 0; i < 8; ++i)
        chain.push_back(Instruction::comp(AluOp::kMac, DType::kF32,
                                          CompMode::kVecVec, 2, 1, 1,
                                          kFullVecMask, mask));
    emitLoop(master, 400, chain);
    master << Instruction::sync(1);

    Prog parked;
    parked << Instruction::sync(1);

    w.progs.assign(w.cfg.vaultsPerCube, parked.done());
    w.progs[0] = master.done();
    return w;
}

/**
 * Dependent DRAM loads under an aggressive refresh schedule: tREFI is
 * shrunk so the banks spend a large share of time inside tRFC, during
 * which the only pending event device-wide is the refresh completing.
 */
Workload
makeRefreshStorm()
{
    Workload w;
    w.name = "refresh_storm";
    w.cfg = HardwareConfig::tiny();
    w.cfg.timing.tREFI = 400; // refresh-dominated on purpose
    u32 mask = fullMask(w.cfg);

    Prog p;
    // Load into d1, then consume d1: the comp's RAW hazard serializes
    // each iteration behind the full DRAM access (and any refresh the
    // load queues behind).
    emitLoop(p, 300,
             {Instruction::memRf(false, MemOperand::direct(128), 1, mask),
              Instruction::comp(AluOp::kAdd, DType::kF32,
                                CompMode::kVecVec, 2, 1, 1, kFullVecMask,
                                mask)});
    w.progs.assign(w.cfg.vaultsPerCube, p.done());
    return w;
}

struct RunResult
{
    Cycle cycles = 0;
    std::string stats;
    u64 skipped = 0;
    u64 jumps = 0;
    f64 seconds = 0.0;
};

RunResult
runOnce(const Workload &w, bool fastForward)
{
    Device dev(w.cfg);
    dev.setFastForward(fastForward);
    dev.loadPrograms(w.progs);
    Clock::time_point t0 = Clock::now();
    RunResult r;
    r.cycles = dev.run();
    r.seconds = std::chrono::duration<f64>(Clock::now() - t0).count();
    r.stats = dev.stats().toString();
    r.skipped = dev.ffwdSkippedCycles();
    r.jumps = dev.ffwdJumps();
    return r;
}

} // namespace

int
main()
{
    std::vector<Workload> workloads = {makeSyncStall(),
                                       makeRefreshStorm()};

    bool allExact = true;
    JsonWriter jw;
    jw.field("bench", "micro_fastforward");
    jw.key("workloads");
    jw.beginArray();

    for (const Workload &w : workloads) {
        // Correctness first: one dense + one fast-forward run must agree
        // on the final cycle count and on every stats counter.
        RunResult dense = runOnce(w, false);
        RunResult ff = runOnce(w, true);
        bool exact =
            dense.cycles == ff.cycles && dense.stats == ff.stats;
        allExact = allExact && exact;

        // Then timing: interleave the two variants and keep the minimum
        // of several reps (external load only ever inflates a sample).
        constexpr int kReps = 5;
        for (int i = 0; i < kReps; ++i) {
            dense.seconds =
                std::min(dense.seconds, runOnce(w, false).seconds);
            ff.seconds = std::min(ff.seconds, runOnce(w, true).seconds);
        }

        f64 denseCps = f64(dense.cycles) / dense.seconds;
        f64 ffCps = f64(ff.cycles) / ff.seconds;
        f64 speedup = dense.seconds / ff.seconds;
        f64 skipFrac = f64(ff.skipped) / f64(ff.cycles);

        std::printf("%-14s %9llu cycles | dense %8.3f ms (%6.1f "
                    "Mcyc/s) | ffwd %8.3f ms (%6.1f Mcyc/s) | "
                    "speedup %5.2fx | %4.1f%% skipped in %llu jumps | "
                    "%s\n",
                    w.name.c_str(), (unsigned long long)dense.cycles,
                    dense.seconds * 1e3, denseCps * 1e-6,
                    ff.seconds * 1e3, ffCps * 1e-6, speedup,
                    skipFrac * 100.0, (unsigned long long)ff.jumps,
                    exact ? "bit-exact" : "DIVERGED");

        jw.beginObject();
        jw.field("name", w.name);
        jw.field("cycles", u64(dense.cycles));
        jw.field("dense_wall_ms", dense.seconds * 1e3);
        jw.field("ffwd_wall_ms", ff.seconds * 1e3);
        jw.field("dense_cycles_per_sec", denseCps);
        jw.field("ffwd_cycles_per_sec", ffCps);
        jw.field("speedup", speedup);
        jw.field("skipped_cycles", ff.skipped);
        jw.field("jumps", ff.jumps);
        jw.field("skipped_fraction", skipFrac);
        jw.field("bit_exact", exact);
        jw.endObject();
    }

    jw.endArray();
    jw.field("bit_exact", allExact);
    std::ofstream("BENCH_hotloop.json") << jw.finish() << "\n";

    if (!allExact) {
        std::printf("FAIL: fast-forward diverged from dense ticking\n");
        return 3;
    }
    std::printf("PASS\n");
    return 0;
}
