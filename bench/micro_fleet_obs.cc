/**
 * Overhead budget check for fleet observability (DESIGN.md Sec. 19): a
 * FleetObserver attached with every feed DISABLED must keep an
 * end-to-end fleet serving run within 2% of the same run with no
 * observer at all — the hot path pays exactly one pointer test per
 * decision site, and a disabled observer records nothing.
 *
 * Exits non-zero when the budget is blown, so CI can gate on it.
 */
#include <algorithm>
#include <chrono>
#include <cstdio>

#include "fleet/fleet.h"
#include "fleet/observer.h"

using namespace ipim;

namespace {

using Clock = std::chrono::steady_clock;

f64
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<f64>(Clock::now() - t0).count();
}

FleetConfig
fleetConfig()
{
    FleetConfig cfg;
    cfg.hw = HardwareConfig::tiny();
    cfg.hw.cubes = 2;
    cfg.devices = 2;
    cfg.width = 64;
    cfg.height = 32;
    // The functional backend makes the run decision-site dominated:
    // per-request bookkeeping (the instrumented path) is a large
    // fraction of wall-clock, so the pointer tests cannot hide behind
    // cycle-simulation time.
    cfg.backend = "func";
    cfg.batching = true;
    return cfg;
}

std::vector<ServeRequest>
workload(const FleetConfig &cfg)
{
    WorkloadSpec spec;
    spec.pipelines = {"Blur", "Brighten", "Shift"};
    spec.ratePerSec = 2e6;
    spec.requests = 400;
    spec.seed = 7;
    spec.tenants = cfg.tenants;
    return generateWorkload(spec);
}

/** One full fleet run; returns wall-clock seconds. */
f64
serveOnce(const FleetConfig &base,
          const std::vector<ServeRequest> &reqs, FleetObserver *obs)
{
    FleetConfig cfg = base;
    cfg.observer = obs;
    FleetServer fleet(cfg);
    Clock::time_point t0 = Clock::now();
    fleet.run(reqs);
    return secondsSince(t0);
}

} // namespace

int
main()
{
    FleetConfig cfg = fleetConfig();
    std::vector<ServeRequest> reqs = workload(cfg);

    // Every feed off: the observer is attached but records nothing.
    FleetObserverConfig oc;

    // Warm up caches/allocator before timing.
    serveOnce(cfg, reqs, nullptr);
    {
        FleetObserver warm(oc);
        serveOnce(cfg, reqs, &warm);
    }

    // Interleave the two variants and keep the minimum of several reps:
    // the min is the least noise-contaminated estimate of true cost.
    // External load only ever inflates a measurement, so one round that
    // lands within budget proves the code path is cheap; retry a couple
    // of times before declaring failure.
    constexpr int kReps = 7;
    constexpr int kRounds = 3;
    f64 baseline = 1e30, probed = 1e30, overhead = 0.0;
    for (int round = 0; round < kRounds; ++round) {
        for (int i = 0; i < kReps; ++i) {
            f64 a = serveOnce(cfg, reqs, nullptr);
            FleetObserver obs(oc); // fresh: attach is once per fleet
            f64 b = serveOnce(cfg, reqs, &obs);
            baseline = std::min(baseline, a);
            probed = std::min(probed, b);
        }
        overhead = probed / baseline - 1.0;
        if (probed <= baseline * 1.02 + 50e-6)
            break;
    }

    std::printf("fleet-observer overhead (all feeds disabled): baseline "
                "%.3f ms | observed %.3f ms | overhead %+.2f%% "
                "(budget +2%%) over %zu requests\n",
                baseline * 1e3, probed * 1e3, overhead * 100.0,
                reqs.size());

    // Allow 50us absolute slack so sub-millisecond runs don't turn
    // scheduler jitter into a spurious failure.
    if (probed > baseline * 1.02 + 50e-6) {
        std::printf("FAIL: disabled observer exceeds the 2%% budget\n");
        return 3;
    }
    std::printf("PASS\n");
    return 0;
}
