/**
 * Fleet serving study (DESIGN.md Sec. 17): sweeps the multi-device
 * router/scheduler stack over open-loop multi-tenant workloads and
 * emits BENCH_fleet.json for the CI perf-smoke artifact.
 *
 * Three experiments, each with a hard gate (non-zero exit on failure):
 *
 *  1. Device scaling: the same saturating trace over 1/2/4 devices.
 *     Gate: >= 3x completed-request throughput at 4 devices vs 1.
 *  2. Router frontier: {rr, least, hash, affinity} x arrival rates over
 *     an 8-pipeline mix with capacity-bounded per-device program
 *     caches.  Gate: cache-affinity routing dominates round-robin on
 *     the throughput-vs-p99 frontier (no worse on both axes at every
 *     rate, strictly better p99 somewhere).
 *  3. Load shedding: a flood far over fleet capacity with a p99
 *     target.  Gate: the shedder keeps admitted p99 within the target
 *     while every shed request is accounted per tenant.
 *
 * The functional backend keeps this fast enough for CI; the fleet is
 * deterministic, so every number here replays byte-identically.
 */
#include <fstream>

#include "bench_common.h"
#include "fleet/fleet.h"

using namespace ipim;
using namespace ipim::bench;

namespace {

/** Each fleet device: 2 cubes of 4x2x2 (two 1-cube slots). */
HardwareConfig
fleetDevice()
{
    HardwareConfig cfg;
    cfg.cubes = 2;
    cfg.vaultsPerCube = 4;
    cfg.pgsPerVault = 2;
    cfg.pesPerPg = 2;
    cfg.meshCols = 4;
    cfg.validate();
    return cfg;
}

FleetConfig
baseConfig(u32 devices)
{
    FleetConfig cfg;
    cfg.hw = fleetDevice();
    cfg.devices = devices;
    cfg.width = 128;
    cfg.height = 64;
    cfg.backend = "func";
    cfg.policy = "sjf";
    return cfg;
}

f64
p99Ms(const FleetReport &rep)
{
    return rep.totalLatency.percentile(99) * 1e-6;
}

} // namespace

int
main()
{
    printHeader("Fleet", "devices x router x load shedding");
    JsonWriter jw;
    jw.field("schema", "ipim-bench-fleet-v1");
    bool pass = true;

    // ---- 1. Device scaling on one saturating trace ------------------
    WorkloadSpec scalingSpec;
    scalingSpec.pipelines = {"Blur", "Brighten", "Shift", "Downsample"};
    scalingSpec.ratePerSec = 4e6; // far over 1-device capacity
    scalingSpec.requests = 480;
    scalingSpec.seed = 7;
    std::vector<ServeRequest> scalingReqs = generateWorkload(scalingSpec);

    std::printf("\n-- device scaling (saturating %u-request mix) --\n",
                scalingSpec.requests);
    std::printf("%-8s %12s %12s %12s\n", "devices", "makespan(ms)",
                "req/s", "p99(ms)");
    jw.key("scaling").beginArray();
    f64 tput1 = 0, tput4 = 0;
    for (u32 devices : {1u, 2u, 4u}) {
        FleetConfig cfg = baseConfig(devices);
        cfg.router = "least";
        FleetReport rep = FleetServer(cfg).run(scalingReqs);
        f64 tput = rep.throughputRps();
        if (devices == 1)
            tput1 = tput;
        if (devices == 4)
            tput4 = tput;
        std::printf("%-8u %12.3f %12.0f %12.3f\n", devices,
                    f64(rep.makespan) * 1e-6, tput, p99Ms(rep));
        jw.beginObject();
        jw.field("devices", u64(devices));
        jw.field("completed", rep.completed);
        jw.field("makespan_cycles", u64(rep.makespan));
        jw.field("throughput_rps", tput);
        jw.field("p99_ms", p99Ms(rep));
        jw.endObject();
    }
    jw.endArray();
    f64 scalingX = tput4 / tput1;
    bool scalingPass = scalingX >= 3.0;
    pass = pass && scalingPass;
    std::printf("  -> 4-device speedup %.2fx (target >= 3x): %s\n",
                scalingX, scalingPass ? "PASS" : "FAIL");
    jw.field("scaling_4x_over_1", scalingX);

    // ---- 2. Router frontier: throughput vs p99 ----------------------
    // 8 pipelines through 2-entry per-device caches: a router that
    // ignores residency recompiles constantly; affinity pins each
    // pipeline where it is already hot.
    WorkloadSpec mixSpec;
    mixSpec.pipelines = {"Blur",     "Brighten",  "Shift",
                         "Downsample", "Upsample", "Histogram",
                         "Interpolate", "StencilChain"};
    mixSpec.requests = 160;
    mixSpec.seed = 21;

    std::printf("\n-- router frontier (4 devices, 8 pipelines, "
                "2-entry caches) --\n");
    std::printf("%-9s %-9s %12s %12s %10s\n", "rate", "router", "req/s",
                "p99(ms)", "compiles");
    jw.key("frontier").beginArray();
    bool affinityNoWorse = true;
    bool affinityStrictlyBetter = false;
    for (f64 rate : {100000.0, 200000.0, 400000.0}) {
        mixSpec.ratePerSec = rate;
        std::vector<ServeRequest> reqs = generateWorkload(mixSpec);
        f64 rrTput = 0, rrP99 = 0, affTput = 0, affP99 = 0;
        for (const char *router : {"rr", "least", "hash", "affinity"}) {
            FleetConfig cfg = baseConfig(4);
            cfg.router = router;
            cfg.cacheCapacity = 2;
            cfg.compileCyclesPerInst = 100; // compiles hurt the tail
            FleetReport rep = FleetServer(cfg).run(reqs);
            u64 compiles = 0;
            for (const FleetReport::DeviceReport &d : rep.devices)
                compiles += d.cacheCompiles;
            f64 tput = rep.throughputRps();
            if (std::string(router) == "rr") {
                rrTput = tput;
                rrP99 = p99Ms(rep);
            }
            if (std::string(router) == "affinity") {
                affTput = tput;
                affP99 = p99Ms(rep);
            }
            std::printf("%-9.0f %-9s %12.0f %12.3f %10llu\n", rate,
                        router, tput, p99Ms(rep),
                        (unsigned long long)compiles);
            jw.beginObject();
            jw.field("rate_rps", rate);
            jw.field("router", router);
            jw.field("throughput_rps", tput);
            jw.field("p99_ms", p99Ms(rep));
            jw.field("cache_compiles", compiles);
            jw.endObject();
        }
        affinityNoWorse = affinityNoWorse && affP99 <= rrP99 * 1.001 &&
                          affTput >= rrTput * 0.999;
        affinityStrictlyBetter =
            affinityStrictlyBetter || affP99 < rrP99 * 0.99;
    }
    jw.endArray();
    bool frontierPass = affinityNoWorse && affinityStrictlyBetter;
    pass = pass && frontierPass;
    std::printf("  -> affinity dominates rr on the frontier: %s\n",
                frontierPass ? "PASS" : "FAIL");
    jw.field("affinity_dominates_rr", frontierPass);

    // ---- 3. Load shedding under overload ----------------------------
    FleetConfig shedCfg = baseConfig(4);
    shedCfg.router = "least";
    shedCfg.shedP99Cycles = 200'000; // 0.2 ms admitted-p99 target
    shedCfg.sloWindowCycles = 100'000;
    shedCfg.tenants = {{"batch", 1.0, 0, 2.0}, {"inter", 2.0, 1, 1.0}};
    WorkloadSpec floodSpec;
    floodSpec.pipelines = {"Blur", "Brighten", "Shift", "Downsample"};
    floodSpec.ratePerSec = 8e6; // far over 4-device capacity
    floodSpec.requests = 400;
    floodSpec.seed = 33;
    floodSpec.tenants = shedCfg.tenants;
    std::vector<ServeRequest> flood = generateWorkload(floodSpec);
    FleetReport shedRep = FleetServer(shedCfg).run(flood);

    f64 targetMs = f64(shedCfg.shedP99Cycles) * 1e-6;
    f64 admittedP99 = p99Ms(shedRep);
    u64 tenantShed = 0;
    for (const FleetReport::TenantReport &t : shedRep.tenants)
        tenantShed += t.shed;
    bool shedPass = shedRep.shedTotal > 0 &&
                    shedRep.admitted + shedRep.shedTotal ==
                        shedRep.records.size() &&
                    tenantShed == shedRep.shedTotal &&
                    admittedP99 <= targetMs;
    pass = pass && shedPass;
    std::printf("\n-- load shedding (8 Mrps flood, %.2f ms target) --\n",
                targetMs);
    std::printf("offered %zu  admitted %llu  shed %llu  admitted-p99 "
                "%.3f ms: %s\n",
                shedRep.records.size(),
                (unsigned long long)shedRep.admitted,
                (unsigned long long)shedRep.shedTotal, admittedP99,
                shedPass ? "PASS" : "FAIL");
    jw.key("shed").beginObject();
    jw.field("offered", u64(shedRep.records.size()));
    jw.field("admitted", shedRep.admitted);
    jw.field("shed", shedRep.shedTotal);
    jw.field("target_p99_ms", targetMs);
    jw.field("admitted_p99_ms", admittedP99);
    jw.key("per_tenant").beginArray();
    for (const FleetReport::TenantReport &t : shedRep.tenants) {
        jw.beginObject();
        jw.field("name", t.name);
        jw.field("admitted", t.admitted);
        jw.field("shed", t.shed);
        jw.field("shed_breach", t.shedBreach);
        jw.field("shed_backlog", t.shedBacklog);
        jw.endObject();
    }
    jw.endArray();
    jw.endObject();

    jw.field("pass", pass);
    std::ofstream("BENCH_fleet.json") << jw.finish() << "\n";
    std::printf("\n%s\n", pass ? "PASS" : "FAIL");
    return pass ? 0 : 4;
}
