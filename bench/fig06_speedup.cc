/**
 * Regenerates Fig. 6: throughput and speedup of iPIM over the V100 GPU
 * for all Table II benchmarks.  Paper reference: 11.02x average speedup
 * (with Brighten ~21x, Histogram ~44x, Blur/StencilChain ~4.3x).
 */
#include "bench_common.h"

using namespace ipim;
using namespace ipim::bench;

int
main()
{
    printHeader("Fig. 6", "iPIM vs GPU throughput and speedup");
    HardwareConfig cfg = HardwareConfig::benchCube();
    std::printf("%-15s %12s %12s %9s\n", "benchmark", "GPU(Mpx/s)",
                "iPIM(Mpx/s)", "speedup");
    std::vector<f64> speedups;
    for (const std::string &name : allBenchmarkNames()) {
        IpimRun run = runIpim(name, benchWidth(), benchHeight(), cfg);
        GpuRunEstimate gpu = runGpu(name, benchWidth(), benchHeight());
        f64 px = f64(run.pixels);
        f64 gpuTput = px / gpu.seconds / 1e6;
        f64 ipimSeconds = run.scaledSeconds();
        f64 ipimTput = px / ipimSeconds / 1e6;
        f64 speedup = gpu.seconds / ipimSeconds;
        speedups.push_back(speedup);
        std::printf("%-15s %12.1f %12.1f %8.2fx\n", name.c_str(),
                    gpuTput, ipimTput, speedup);
    }
    std::printf("%-15s %12s %12s %8.2fx\n", "geomean", "", "",
                geomean(speedups));
    std::printf("%-15s %12s %12s %8.2fx   (paper)\n", "paper", "", "",
                11.02);
    return 0;
}
