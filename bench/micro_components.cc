/**
 * google-benchmark microbenchmarks of the simulator substrates and the
 * compiler backend: DRAM controller service rate under both schedulers
 * and page policies, mesh saturation throughput, PE SIMD issue, and
 * compiler pass cost on a real kernel.
 */
#include <benchmark/benchmark.h>

#include "apps/benchmarks.h"
#include "compiler/codegen.h"
#include "dram/memory_controller.h"
#include "noc/mesh.h"
#include "runtime/runtime.h"

namespace ipim {
namespace {

void
BM_DramController(benchmark::State &state)
{
    HardwareConfig cfg = HardwareConfig::paper();
    cfg.schedPolicy =
        state.range(0) ? SchedPolicy::kFrFcfs : SchedPolicy::kFcfs;
    cfg.pagePolicy =
        state.range(1) ? PagePolicy::kOpenPage : PagePolicy::kClosePage;
    StatsRegistry stats;
    ActivationLimiter lim(cfg.timing);
    MemoryController mc(cfg, 0, &lim, &stats);
    u64 id = 1;
    Cycle now = 0;
    u64 served = 0;
    for (auto _ : state) {
        if (mc.canAccept()) {
            MemRequest r;
            r.id = id;
            r.peInPg = u32(id % cfg.pesPerPg);
            // Mix of row hits and misses.
            r.addr = (id % 8) * 16 + (id % 3) * cfg.dramRowBytes;
            r.write = id % 4 == 0;
            mc.enqueue(r);
            ++id;
        }
        mc.tick(now++);
        served += mc.completions().size();
        mc.completions().clear();
    }
    state.counters["reqPerKcycle"] =
        benchmark::Counter(f64(served) / f64(now) * 1000.0);
}
BENCHMARK(BM_DramController)
    ->Args({1, 1})
    ->Args({1, 0})
    ->Args({0, 1})
    ->Args({0, 0});

void
BM_MeshSaturation(benchmark::State &state)
{
    StatsRegistry stats;
    Mesh m(4, 4, &stats);
    u64 delivered = 0;
    u64 tag = 0;
    for (auto _ : state) {
        Packet p;
        p.srcVault = u32(tag % 16);
        p.dstVault = u32((tag * 7) % 16);
        p.tag = tag++;
        m.inject(p);
        m.tick();
        for (u32 v = 0; v < 16; ++v) {
            delivered += m.delivered(v).size();
            m.delivered(v).clear();
        }
    }
    state.counters["pktPerCycle"] =
        benchmark::Counter(f64(delivered), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MeshSaturation);

void
BM_VaultSimdIssue(benchmark::State &state)
{
    // Dependent-free comp stream: measures simulator cycles/sec and the
    // core's best-case issue behavior.
    HardwareConfig cfg = HardwareConfig::tiny();
    Device dev(cfg);
    std::vector<Instruction> prog;
    u32 mask = (1u << cfg.pesPerVault()) - 1;
    for (int i = 0; i < 32; ++i)
        prog.push_back(Instruction::comp(
            AluOp::kAdd, DType::kF32, CompMode::kVecVec, u16(i % 48),
            u16((i + 7) % 48), u16((i + 13) % 48), kFullVecMask, mask));
    prog.push_back(Instruction::halt());
    for (auto _ : state) {
        dev.loadProgramAll(prog);
        benchmark::DoNotOptimize(dev.run());
    }
}
BENCHMARK(BM_VaultSimdIssue);

void
BM_CompileBlurKernel(benchmark::State &state)
{
    BenchmarkApp app = makeBenchmark("Blur", 256, 128);
    HardwareConfig cfg = HardwareConfig::benchCube();
    for (auto _ : state) {
        CompiledPipeline cp = compilePipeline(app.def, cfg);
        benchmark::DoNotOptimize(cp.totalInstructions());
    }
}
BENCHMARK(BM_CompileBlurKernel)->Unit(benchmark::kMillisecond);

void
BM_EndToEndBrighten(benchmark::State &state)
{
    BenchmarkApp app = makeBenchmark("Brighten", 128, 64);
    HardwareConfig cfg = HardwareConfig::tiny();
    for (auto _ : state) {
        LaunchResult res = runPipeline(app.def, cfg, app.inputs);
        benchmark::DoNotOptimize(res.cycles);
    }
}
BENCHMARK(BM_EndToEndBrighten)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace ipim

BENCHMARK_MAIN();
