/**
 * Wall-clock benefit of the functional backend (DESIGN.md Sec. 16).
 *
 * Runs the ten paper benchmarks under three execution modes — the
 * functional interpreter, dense per-cycle simulation, and next-event
 * fast-forward simulation — and reports wall time per mode plus the
 * functional backend's speedup over fast-forward (the issue's target is
 * a >= 50x geomean).
 *
 * Pixel-exactness is checked first: the functional output must match
 * the cycle simulator's bit for bit on every benchmark, and a
 * divergence exits non-zero so CI can gate on it.  The speedups are
 * reported, not gated — machine load must not fail the build — but the
 * emitted BENCH_func.json records them.
 */
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <functional>

#include "apps/benchmarks.h"
#include "common/json.h"
#include "func/func_runtime.h"
#include "runtime/runtime.h"

using namespace ipim;

namespace {

using Clock = std::chrono::steady_clock;

constexpr int kWidth = 96;
constexpr int kHeight = 48;
constexpr int kReps = 5;

f64
timeOnce(const std::function<void()> &fn)
{
    Clock::time_point t0 = Clock::now();
    fn();
    return std::chrono::duration<f64>(Clock::now() - t0).count();
}

bool
bitExact(const Image &a, const Image &b)
{
    if (a.width() != b.width() || a.height() != b.height())
        return false;
    for (int y = 0; y < a.height(); ++y)
        for (int x = 0; x < a.width(); ++x)
            if (f32AsLane(a.at(x, y)) != f32AsLane(b.at(x, y)))
                return false;
    return true;
}

} // namespace

int
main()
{
    HardwareConfig cfg = HardwareConfig::tiny();

    bool allExact = true;
    f64 logSpeedupFf = 0.0, logSpeedupDense = 0.0;
    int n = 0;

    JsonWriter jw;
    jw.field("bench", "micro_func");
    jw.field("width", kWidth);
    jw.field("height", kHeight);
    jw.key("benchmarks");
    jw.beginArray();

    std::printf("%-14s | %10s | %10s | %10s | %9s | %s\n", "benchmark",
                "func ms", "dense ms", "ffwd ms", "func/ffwd", "pixels");
    for (const std::string &name : allBenchmarkNames()) {
        BenchmarkApp app = makeBenchmark(name, kWidth, kHeight);
        CompiledPipeline cp = compilePipeline(app.def, cfg);

        // Devices and the estimator are constructed once and reused
        // across launches — the serving pattern this backend exists
        // for (Server slots hold a long-lived device; every launch
        // still power-cycles it).
        FuncDevice fdev(cfg);
        LatencyEstimator est;
        Device ffDev(cfg);
        Device denseDev(cfg);
        denseDev.setFastForward(false);

        // Correctness first: functional output must be bit-identical
        // to the cycle simulator's.
        Image funcOut, cycleOut;
        Cycle cycles = 0;
        f64 tFunc = timeOnce([&] {
            funcOut = funcLaunchOnDevice(fdev, cp, app.inputs, &est)
                          .output;
        });
        f64 tFf = timeOnce([&] {
            LaunchResult res = launchOnDevice(ffDev, cp, app.inputs);
            cycleOut = res.output;
            cycles = res.cycles;
        });
        f64 tDense = timeOnce(
            [&] { launchOnDevice(denseDev, cp, app.inputs); });
        bool exact = bitExact(funcOut, cycleOut);
        allExact = allExact && exact;

        // Then timing: keep the minimum of several interleaved reps
        // (external load only ever inflates a sample).
        for (int i = 0; i < kReps; ++i) {
            tFunc = std::min(tFunc, timeOnce([&] {
                                 funcLaunchOnDevice(fdev, cp,
                                                    app.inputs, &est);
                             }));
            tFf = std::min(tFf, timeOnce([&] {
                               launchOnDevice(ffDev, cp, app.inputs);
                           }));
            tDense = std::min(tDense, timeOnce([&] {
                                  launchOnDevice(denseDev, cp,
                                                 app.inputs);
                              }));
        }

        f64 speedupFf = tFf / tFunc;
        f64 speedupDense = tDense / tFunc;
        logSpeedupFf += std::log(speedupFf);
        logSpeedupDense += std::log(speedupDense);
        ++n;

        std::printf("%-14s | %10.3f | %10.3f | %10.3f | %8.1fx | %s\n",
                    name.c_str(), tFunc * 1e3, tDense * 1e3, tFf * 1e3,
                    speedupFf, exact ? "bit-exact" : "DIVERGED");

        jw.beginObject();
        jw.field("name", name);
        jw.field("cycles", u64(cycles));
        jw.field("func_wall_ms", tFunc * 1e3);
        jw.field("dense_wall_ms", tDense * 1e3);
        jw.field("ffwd_wall_ms", tFf * 1e3);
        jw.field("speedup_vs_ffwd", speedupFf);
        jw.field("speedup_vs_dense", speedupDense);
        jw.field("bit_exact", exact);
        jw.endObject();
    }
    jw.endArray();

    f64 geoFf = std::exp(logSpeedupFf / n);
    f64 geoDense = std::exp(logSpeedupDense / n);
    std::printf("geomean speedup: %.1fx vs fast-forward, %.1fx vs "
                "dense (target >= 50x vs fast-forward)\n",
                geoFf, geoDense);

    jw.field("geomean_speedup_vs_ffwd", geoFf);
    jw.field("geomean_speedup_vs_dense", geoDense);
    jw.field("bit_exact", allExact);
    std::ofstream("BENCH_func.json") << jw.finish() << "\n";

    if (!allExact) {
        std::printf(
            "FAIL: functional output diverged from the cycle simulator\n");
        return 3;
    }
    std::printf("PASS\n");
    return 0;
}
