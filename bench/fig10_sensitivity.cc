/**
 * Regenerates Fig. 10: sensitivity of execution time to (a) the number
 * of DataRF registers per PE (16..128, normalized to 128) and (b) the
 * PGSM size (2..8 KiB, normalized to 8 KiB).  Paper reference drops:
 * RF=16/32/64 -> 46.8%/26.8%/9.5%; PGSM=2K/4K -> 58.9%/39.0%.
 *
 * Small DataRFs force the register allocator to spill to DRAM; small
 * PGSMs force smaller tiles (more halo refetch and loop overhead).
 */
#include "bench_common.h"

using namespace ipim;
using namespace ipim::bench;

namespace {

/** Benchmarks with enough register/scratchpad pressure to react. */
const std::vector<std::string> kSubset = {"Blur", "StencilChain",
                                          "LocalLaplacian"};

f64
avgCycles(const HardwareConfig &cfg, int w, int h, int tile)
{
    f64 total = 0;
    for (const std::string &name : kSubset) {
        BenchmarkApp app = makeBenchmark(name, w, h);
        // Re-tile every PGSM stage so the footprint fits the swept
        // scratchpad size.
        if (tile > 0) {
            PipelineAnalysis pa = analyzePipeline(app.def);
            for (const StageInfo &s : pa.stages)
                if (!s.func->isInput() && s.func->usesPgsm())
                    s.func->ipimTile(tile, tile);
        }
        StatsRegistry stats;
        LaunchResult res =
            runPipeline(app.def, cfg, app.inputs, {}, &stats);
        total += f64(res.cycles);
    }
    return total;
}

} // namespace

int
main()
{
    printHeader("Fig. 10", "sensitivity to DataRF size and PGSM size");
    int w = benchWidth() / 2, h = benchHeight() / 2;
    std::printf("subset: Blur, StencilChain, LocalLaplacian @ %dx%d\n\n",
                w, h);

    std::printf("(a) registers per PE (normalized time, RF=128 = 1.0)\n");
    std::printf("%8s %12s %12s\n", "RF", "cycles", "norm");
    f64 base = 0;
    std::vector<std::pair<int, f64>> rf;
    for (int regs : {128, 64, 32, 16}) {
        HardwareConfig cfg = HardwareConfig::benchCube();
        cfg.dataRfBytes = u32(regs) * kVectorBytes;
        f64 c = avgCycles(cfg, w, h, 0);
        if (regs == 128)
            base = c;
        rf.push_back({regs, c});
    }
    for (auto &[regs, c] : rf)
        std::printf("%8d %12.0f %12.3f\n", regs, c, c / base);
    std::printf("paper drops vs RF=128: 16:+46.8%% 32:+26.8%% "
                "64:+9.5%%\n\n");

    std::printf("(b) PGSM size (normalized time, 8KiB = 1.0)\n");
    std::printf("%8s %8s %12s %12s\n", "PGSM", "tile", "cycles", "norm");
    // Smaller scratchpads force smaller tiles (more redundant halo).
    struct P
    {
        u32 bytes;
        int tile;
    };
    f64 base8 = 0;
    std::vector<std::pair<P, f64>> pg;
    for (P p : {P{8u << 10, 8}, P{4u << 10, 4}, P{2u << 10, 4}}) {
        HardwareConfig cfg = HardwareConfig::benchCube();
        cfg.pgsmBytes = p.bytes;
        f64 c = avgCycles(cfg, w, h, p.tile);
        if (p.bytes == (8u << 10))
            base8 = c;
        pg.push_back({p, c});
    }
    for (auto &[p, c] : pg)
        std::printf("%7uK %8d %12.0f %12.3f\n", p.bytes >> 10, p.tile, c,
                    c / base8);
    std::printf("paper drops vs 8K: 2K:+58.9%% 4K:+39.0%%\n");
    return 0;
}
