/**
 * Regenerates Fig. 8: iPIM's near-bank design vs the process-on-base-die
 * (PonB) solution, where all bank traffic is serialized over the shared
 * per-vault TSVs.  Paper reference: 3.61x speedup, 56.71% energy saving.
 */
#include "bench_common.h"

using namespace ipim;
using namespace ipim::bench;

int
main()
{
    printHeader("Fig. 8", "near-bank iPIM vs process-on-base-die");
    HardwareConfig nearCfg = HardwareConfig::benchCube();
    HardwareConfig ponbCfg = HardwareConfig::benchCube();
    ponbCfg.processOnBaseDie = true;

    std::printf("%-15s %11s %11s %9s %9s\n", "benchmark", "iPIM(ms)",
                "PonB(ms)", "speedup", "energy-sv%");
    std::vector<f64> speedups;
    f64 savingSum = 0;
    int n = 0;
    for (const std::string &name : allBenchmarkNames()) {
        IpimRun a = runIpim(name, benchWidth(), benchHeight(), nearCfg);
        IpimRun b = runIpim(name, benchWidth(), benchHeight(), ponbCfg);
        f64 speedup = f64(b.cycles) / f64(a.cycles);
        f64 saving =
            100.0 * (1.0 - a.energy.total() / b.energy.total());
        speedups.push_back(speedup);
        savingSum += saving;
        ++n;
        std::printf("%-15s %11.3f %11.3f %8.2fx %9.2f\n", name.c_str(),
                    a.seconds() * 1e3, b.seconds() * 1e3, speedup,
                    saving);
    }
    std::printf("%-15s %11s %11s %8.2fx %9.2f\n", "geomean/avg", "", "",
                geomean(speedups), savingSum / n);
    std::printf("%-15s %11s %11s %8.2fx %9.2f   (paper)\n", "paper", "",
                "", 3.61, 56.71);
    return 0;
}
