/**
 * Regenerates Fig. 1: GPU profiling of the Table II benchmarks — DRAM
 * bandwidth/utilization, ALU utilization, and the index-calculation
 * share of ALU work.  Paper reference averages: 518 GB/s (57.55% DRAM
 * utilization), 3.43% ALU utilization, 58.71% index-calc share.
 */
#include "bench_common.h"

using namespace ipim;
using namespace ipim::bench;

int
main()
{
    // The GPU side is analytical, so this figure runs at the paper's
    // DIV8K resolution regardless of IPIM_BENCH_W/H (kernel-launch
    // overhead would otherwise distort utilization at small sizes).
    constexpr int kW = 7680, kH = 4320;
    printHeader("Fig. 1", "GPU profiling of image processing workloads");
    std::printf("(modeled at DIV8K %dx%d)\n", kW, kH);
    std::printf("%-15s %10s %10s %9s %10s\n", "benchmark", "BW(GB/s)",
                "DRAMutil%", "ALUutil%", "idxShare%");
    f64 bwSum = 0, dramSum = 0, aluSum = 0, idxSum = 0;
    int n = 0;
    for (const std::string &name : allBenchmarkNames()) {
        GpuRunEstimate est = runGpu(name, kW, kH);
        std::printf("%-15s %10.1f %10.2f %9.3f %10.2f\n", name.c_str(),
                    est.dramBandwidthBytesPerSec / 1e9,
                    100.0 * est.dramUtilization,
                    100.0 * est.aluUtilization,
                    100.0 * est.indexAluShare);
        bwSum += est.dramBandwidthBytesPerSec / 1e9;
        dramSum += 100.0 * est.dramUtilization;
        aluSum += 100.0 * est.aluUtilization;
        idxSum += 100.0 * est.indexAluShare;
        ++n;
    }
    std::printf("%-15s %10.1f %10.2f %9.3f %10.2f\n", "average",
                bwSum / n, dramSum / n, aluSum / n, idxSum / n);
    std::printf("%-15s %10s %10.2f %9.3f %10.2f   (V100, DIV8K)\n",
                "paper", "518", 57.55, 3.43, 58.71);
    return 0;
}
