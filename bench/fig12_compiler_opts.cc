/**
 * Regenerates Fig. 12: effectiveness of the backend optimizations.
 * Normalized speedup of the fully optimized compiler over:
 *   baseline1 = min regalloc, no reordering, no memory-order (paper 3.19x)
 *   baseline2 = opt with min regalloc                        (paper 2.59x)
 *   baseline3 = opt without instruction reordering           (paper 2.74x)
 *   baseline4 = opt without memory-order enforcement         (paper 1.30x)
 */
#include "bench_common.h"

using namespace ipim;
using namespace ipim::bench;

int
main()
{
    printHeader("Fig. 12", "effectiveness of compiler optimizations");
    HardwareConfig cfg = HardwareConfig::benchCube();
    int w = benchWidth() / 2, h = benchHeight() / 2;
    std::printf("(image %dx%d for the 5-way sweep)\n", w, h);
    std::printf("%-15s %9s %9s %9s %9s\n", "benchmark", "vs base1",
                "vs base2", "vs base3", "vs base4");
    const CompilerOptions baselines[] = {
        CompilerOptions::baseline1(), CompilerOptions::baseline2(),
        CompilerOptions::baseline3(), CompilerOptions::baseline4()};
    std::vector<f64> speedups[4];
    for (const std::string &name : allBenchmarkNames()) {
        IpimRun opt = runIpim(name, w, h, cfg, CompilerOptions::opt());
        f64 s[4];
        for (int b = 0; b < 4; ++b) {
            IpimRun base = runIpim(name, w, h, cfg, baselines[b]);
            s[b] = f64(base.cycles) / f64(opt.cycles);
            speedups[b].push_back(s[b]);
        }
        std::printf("%-15s %8.2fx %8.2fx %8.2fx %8.2fx\n", name.c_str(),
                    s[0], s[1], s[2], s[3]);
    }
    std::printf("%-15s %8.2fx %8.2fx %8.2fx %8.2fx\n", "geomean",
                geomean(speedups[0]), geomean(speedups[1]),
                geomean(speedups[2]), geomean(speedups[3]));
    std::printf("%-15s %8.2fx %8.2fx %8.2fx %8.2fx   (paper)\n",
                "paper", 3.19, 2.59, 2.74, 1.30);
    return 0;
}
