#include "bench_common.h"

#include <cmath>
#include <cstdlib>

namespace ipim {
namespace bench {

namespace {

int
envInt(const char *name, int fallback)
{
    const char *v = std::getenv(name);
    return v ? std::atoi(v) : fallback;
}

} // namespace

int
benchWidth()
{
    return envInt("IPIM_BENCH_W", 384);
}

int
benchHeight()
{
    return envInt("IPIM_BENCH_H", 216);
}

IpimRun
runIpim(const std::string &name, int w, int h, const HardwareConfig &cfg,
        const CompilerOptions &opts)
{
    BenchmarkApp app = makeBenchmark(name, w, h);
    IpimRun run;
    run.bench = name;
    run.pixels = u64(w) * u64(h);
    LaunchResult res =
        runPipeline(app.def, cfg, app.inputs, opts, &run.stats);
    run.cycles = res.cycles;
    run.energy = computeEnergy(cfg, run.stats, run.cycles);
    return run;
}

GpuRunEstimate
runGpu(const std::string &name, int w, int h)
{
    BenchmarkApp app = makeBenchmark(name, w, h);
    PipelineAnalysis pa = analyzePipeline(app.def);
    return estimateGpu(pa);
}

f64
geomean(const std::vector<f64> &v)
{
    if (v.empty())
        return 0;
    f64 s = 0;
    for (f64 x : v)
        s += std::log(x);
    return std::exp(s / f64(v.size()));
}

void
printHeader(const char *fig, const char *what)
{
    std::printf("==================================================\n");
    std::printf("iPIM reproduction | %s: %s\n", fig, what);
    std::printf("image %dx%d | 1 cube simulated, %u-cube device "
                "extrapolated\n",
                benchWidth(), benchHeight(), kPaperCubes);
    std::printf("==================================================\n");
}

} // namespace bench
} // namespace ipim
