/**
 * Regenerates Fig. 11: dynamic instruction breakdown of iPIM programs by
 * SIMB ISA category.  Paper reference: index calculation averages 23.25%
 * of the instruction count; inter-vault movement is only 1.44%.
 */
#include "bench_common.h"

using namespace ipim;
using namespace ipim::bench;

int
main()
{
    printHeader("Fig. 11", "instruction breakdown of iPIM programs");
    HardwareConfig cfg = HardwareConfig::benchCube();
    std::printf("%-15s %7s %7s %7s %7s %7s %7s\n", "benchmark", "comp%",
                "idx%", "intra%", "inter%", "ctrl%", "sync%");
    f64 idxSum = 0, interSum = 0;
    int n = 0;
    for (const std::string &name : allBenchmarkNames()) {
        IpimRun run = runIpim(name, benchWidth(), benchHeight(), cfg);
        f64 total = run.stats.get("core.issued");
        auto pct = [&](const char *cat) {
            return 100.0 * run.stats.get(std::string("inst.") + cat) /
                   total;
        };
        std::printf("%-15s %7.2f %7.2f %7.2f %7.2f %7.2f %7.2f\n",
                    name.c_str(), pct("computation"), pct("index_calc"),
                    pct("intra_vault"), pct("inter_vault"),
                    pct("control_flow"), pct("sync"));
        idxSum += pct("index_calc");
        interSum += pct("inter_vault");
        ++n;
    }
    std::printf("%-15s %7s %7.2f %7s %7.2f %7s %7s\n", "average", "",
                idxSum / n, "", interSum / n, "", "");
    std::printf("%-15s %7s %7.2f %7s %7.2f %7s %7s   (paper)\n",
                "paper", "", 23.25, "", 1.44, "", "");
    return 0;
}
