/**
 * @file
 * Shared harness for the per-figure benchmark binaries.
 *
 * Each bench_figNN binary regenerates one table/figure of the paper's
 * evaluation (Sec. VII).  The iPIM side cycle-simulates one cube (16
 * vaults, full NoC and synchronization) and extrapolates the 8-cube
 * device linearly — the workloads are SPMD over disjoint image strips
 * (DESIGN.md, substitutions).  The GPU side is the analytical V100
 * roofline of src/baseline driven by the same pipeline IR.
 */
#ifndef IPIM_BENCH_BENCH_COMMON_H_
#define IPIM_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>
#include <vector>

#include "apps/benchmarks.h"
#include "baseline/gpu_model.h"
#include "energy/energy_model.h"
#include "runtime/runtime.h"

namespace ipim {
namespace bench {

/** Paper's device scale vs. what we cycle-simulate. */
inline constexpr u32 kPaperCubes = 8;

/** Default benchmark resolution (overridable via IPIM_BENCH_W/H). */
int benchWidth();
int benchHeight();

struct IpimRun
{
    std::string bench;
    u64 pixels = 0;
    Cycle cycles = 0;
    StatsRegistry stats;
    EnergyBreakdown energy;

    /** Simulated single-cube wall time. */
    f64 seconds() const { return f64(cycles) * 1e-9; }

    /** Extrapolated paper-scale (8-cube) wall time. */
    f64
    scaledSeconds(u32 simulatedCubes = 1) const
    {
        return seconds() * f64(simulatedCubes) / f64(kPaperCubes);
    }

    f64 mpixPerSec() const { return f64(pixels) / seconds() / 1e6; }
};

/** Run one benchmark on the iPIM simulator. */
IpimRun runIpim(const std::string &name, int w, int h,
                const HardwareConfig &cfg,
                const CompilerOptions &opts = {});

/** GPU estimate for the same benchmark/pixels. */
GpuRunEstimate runGpu(const std::string &name, int w, int h);

/** Geometric mean helper. */
f64 geomean(const std::vector<f64> &v);

/** Short header naming the binary and the figure it regenerates. */
void printHeader(const char *fig, const char *what);

} // namespace bench
} // namespace ipim

#endif // IPIM_BENCH_BENCH_COMMON_H_
