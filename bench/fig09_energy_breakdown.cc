/**
 * Regenerates Fig. 9: the energy breakdown of iPIM programs into DRAM,
 * SIMD unit, AddrRF, DataRF, PGSM, and Others (data movement + control
 * core).  Paper reference: 89.17% of energy is spent on the PIM dies.
 */
#include "bench_common.h"

using namespace ipim;
using namespace ipim::bench;

int
main()
{
    printHeader("Fig. 9", "energy breakdown of iPIM programs");
    HardwareConfig cfg = HardwareConfig::benchCube();
    std::printf("%-15s %7s %7s %7s %7s %7s %7s %8s\n", "benchmark",
                "DRAM%", "SIMD%", "ARF%", "DRF%", "PGSM%", "Other%",
                "PIMdie%");
    f64 pimSum = 0;
    int n = 0;
    for (const std::string &name : allBenchmarkNames()) {
        IpimRun run = runIpim(name, benchWidth(), benchHeight(), cfg);
        const EnergyBreakdown &e = run.energy;
        f64 t = e.total();
        std::printf("%-15s %7.2f %7.2f %7.2f %7.2f %7.2f %7.2f %8.2f\n",
                    name.c_str(), 100 * e.dram / t, 100 * e.simdUnit / t,
                    100 * e.addrRf / t, 100 * e.dataRf / t,
                    100 * e.pgsm / t, 100 * e.others / t,
                    100 * e.pimDieFraction());
        pimSum += 100 * e.pimDieFraction();
        ++n;
    }
    std::printf("%-15s %7s %7s %7s %7s %7s %7s %8.2f\n", "average", "",
                "", "", "", "", "", pimSum / n);
    std::printf("%-15s %7s %7s %7s %7s %7s %7s %8.2f   (paper)\n",
                "paper", "", "", "", "", "", "", 89.17);
    return 0;
}
