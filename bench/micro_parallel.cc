/**
 * Wall-clock scaling of thread-per-cube parallel simulation
 * (DESIGN.md Sec. 18).
 *
 * Runs Table II pipelines on the full 8-cube device geometry at
 * 1/2/4/8 simulation threads and reports the wall time and speedup
 * over the single-threaded run.
 *
 * Bit-exactness is checked first, in both dense and fast-forward
 * mode: every thread count must reproduce the single-threaded cycle
 * count, the full stats registry, and the output image; a divergence
 * exits non-zero so CI can gate on it.  The speedup itself is
 * reported, not gated — it depends on the physical cores available
 * (a single-core host can only show the engine's overhead, not its
 * scaling) — but the emitted BENCH_parallel.json records it along
 * with the host core count for the README table.
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>

#include "apps/benchmarks.h"
#include "bench_common.h"
#include "common/json.h"
#include "runtime/runtime.h"

using namespace ipim;
using namespace ipim::bench;

namespace {

using Clock = std::chrono::steady_clock;

struct RunResult
{
    Cycle cycles = 0;
    f64 seconds = 0;
    std::string stats;
    Image output;
};

RunResult
runOnce(const BenchmarkApp &app, const CompiledPipeline &cp,
        const HardwareConfig &cfg, u32 threads, bool fastForward)
{
    Device dev(cfg);
    dev.setThreads(threads);
    dev.setFastForward(fastForward);
    Clock::time_point t0 = Clock::now();
    LaunchResult res = launchOnDevice(dev, cp, app.inputs);
    RunResult r;
    r.seconds = std::chrono::duration<f64>(Clock::now() - t0).count();
    r.cycles = res.cycles;
    r.stats = dev.stats().toString();
    r.output = res.output;
    return r;
}

bool
sameImage(const Image &a, const Image &b)
{
    if (a.width() != b.width() || a.height() != b.height())
        return false;
    for (int y = 0; y < a.height(); ++y)
        for (int x = 0; x < a.width(); ++x)
            if (f32AsLane(a.at(x, y)) != f32AsLane(b.at(x, y)))
                return false;
    return true;
}

} // namespace

int
main()
{
    HardwareConfig cfg; // full-size device: 8 cubes x 16 vaults
    const int w = benchWidth(), h = benchHeight();
    const u32 cores = std::max(1u, std::thread::hardware_concurrency());
    const std::vector<std::string> pipelines = {"Blur", "Downsample"};
    const u32 threadCounts[] = {1, 2, 4, 8};
    constexpr int kReps = 2;

    std::printf("Micro: thread-per-cube parallel simulation scaling\n"
                "(image %dx%d, full %u-cube device, %u host cores)\n",
                w, h, cfg.cubes, cores);

    bool allExact = true;
    JsonWriter jw;
    jw.field("bench", "micro_parallel");
    jw.field("cubes", cfg.cubes);
    jw.field("width", w);
    jw.field("height", h);
    jw.field("host_cores", cores);
    jw.key("runs");
    jw.beginArray();

    for (const std::string &name : pipelines) {
        BenchmarkApp app = makeBenchmark(name, w, h);
        CompiledPipeline cp = compilePipeline(app.def, cfg);

        // Correctness first: every thread count must byte-match the
        // single-threaded reference, densely ticked and fast-forwarded.
        RunResult ffRef = runOnce(app, cp, cfg, 1, true);
        for (bool ffwd : {true, false}) {
            RunResult ref =
                ffwd ? ffRef : runOnce(app, cp, cfg, 1, false);
            if (!ffwd && (ref.cycles != ffRef.cycles ||
                          ref.stats != ffRef.stats)) {
                std::printf("DIVERGED: %s dense vs fast-forward\n",
                            name.c_str());
                allExact = false;
            }
            for (u32 threads : {2u, 4u, 8u}) {
                RunResult r = runOnce(app, cp, cfg, threads, ffwd);
                if (r.cycles != ref.cycles || r.stats != ref.stats ||
                    !sameImage(r.output, ref.output)) {
                    std::printf("DIVERGED: %s ffwd=%d threads=%u\n",
                                name.c_str(), int(ffwd), threads);
                    allExact = false;
                }
            }
        }

        // Then timing (fast-forward, the default mode): interleave the
        // thread counts and keep the minimum of several reps (external
        // load only ever inflates a sample).
        f64 wall[4] = {ffRef.seconds, 1e300, 1e300, 1e300};
        for (int rep = 0; rep < kReps; ++rep)
            for (int i = 0; i < 4; ++i)
                wall[i] = std::min(
                    wall[i],
                    runOnce(app, cp, cfg, threadCounts[i], true)
                        .seconds);

        std::printf("%-12s %9llu cycles |", name.c_str(),
                    (unsigned long long)ffRef.cycles);
        for (int i = 0; i < 4; ++i)
            std::printf(" %ut %7.1f ms (%4.2fx)", threadCounts[i],
                        wall[i] * 1e3, wall[0] / wall[i]);
        std::printf("\n");

        jw.beginObject();
        jw.field("name", name);
        jw.field("cycles", u64(ffRef.cycles));
        for (int i = 0; i < 4; ++i) {
            std::string t = std::to_string(threadCounts[i]);
            jw.field("wall_ms_t" + t, wall[i] * 1e3);
            jw.field("speedup_t" + t, wall[0] / wall[i]);
        }
        jw.endObject();
    }

    jw.endArray();
    jw.field("bit_exact", allExact);
    std::ofstream("BENCH_parallel.json") << jw.finish() << "\n";

    if (!allExact) {
        std::printf(
            "FAIL: threaded run diverged from single-threaded\n");
        return 5;
    }
    std::printf("PASS\n");
    return 0;
}
