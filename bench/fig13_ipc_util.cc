/**
 * Regenerates Fig. 13: IPC of the control cores and utilization of the
 * key PE components.  Paper reference: average IPC 0.63; benchmarks with
 * heavy index calculation exceed 40% AddrRF utilization.
 */
#include "bench_common.h"

using namespace ipim;
using namespace ipim::bench;

int
main()
{
    printHeader("Fig. 13", "IPC and component utilization");
    HardwareConfig cfg = HardwareConfig::benchCube();
    std::printf("%-15s %6s %8s %8s %8s %8s\n", "benchmark", "IPC",
                "SIMD%", "IntALU%", "AddrRF%", "DRAMbw%");
    f64 ipcSum = 0;
    int n = 0;
    for (const std::string &name : allBenchmarkNames()) {
        IpimRun run = runIpim(name, benchWidth(), benchHeight(), cfg);
        const StatsRegistry &s = run.stats;
        f64 coreCycles = s.get("core.cycles");
        f64 ipc = s.get("core.issued") / coreCycles;
        f64 numPes = f64(cfg.pesPerCube()) * cfg.cubes;
        f64 peCycles = f64(run.cycles) * numPes;
        // Busy-cycle estimates from event counts and unit latencies.
        f64 simdUtil = s.get("pe.simdOp") * cfg.latency.addSub / peCycles;
        f64 aluUtil = s.get("pe.intAluOp") *
                      (cfg.latency.intAlu + cfg.latency.addrRf) /
                      peCycles;
        f64 arfUtil = s.get("pe.arfAccess") * cfg.latency.addrRf /
                      peCycles;
        // Achieved bank bandwidth vs peak (every bank can move 16B per
        // tCCD cycles).
        f64 peakBeats = peCycles / cfg.timing.tCCD;
        f64 bwUtil =
            (s.get("dram.rd") + s.get("dram.wr")) / peakBeats;
        std::printf("%-15s %6.2f %8.2f %8.2f %8.2f %8.2f\n",
                    name.c_str(), ipc, 100 * simdUtil, 100 * aluUtil,
                    100 * arfUtil, 100 * bwUtil);
        ipcSum += ipc;
        ++n;
    }
    std::printf("%-15s %6.2f\n", "average", ipcSum / n);
    std::printf("%-15s %6.2f   (paper)\n", "paper", 0.63);
    return 0;
}
