/**
 * @file
 * Host-side runtime for the standalone iPIM accelerator (Sec. VI):
 * scatters input images into the banks according to the compiled layout,
 * uploads and runs each kernel program, and gathers the output.
 */
#ifndef IPIM_RUNTIME_RUNTIME_H_
#define IPIM_RUNTIME_RUNTIME_H_

#include <map>
#include <string>

#include "common/image.h"
#include "compiler/codegen.h"
#include "sim/device.h"

namespace ipim {

/** Result of executing a compiled pipeline on a device. */
struct LaunchResult
{
    Image output;
    Cycle cycles = 0;          ///< total simulated cycles
    std::vector<Cycle> kernelCycles; ///< per stage
    /// Instructions issued, summed over all kernels (Vault::issuedCount
    /// restarts at every program load, so the runtime accumulates).
    u64 totalIssued = 0;
    std::vector<u64> vaultIssued; ///< per vault, chip-major, all kernels
    /// Issue-slot cycle accounting per vault (chip-major), accumulated
    /// across kernels like vaultIssued; feeds the bottleneck profiler.
    std::vector<IssueAccounting> vaultAccounting;
};

class Runtime
{
  public:
    Runtime(Device &dev, const CompiledPipeline &pipeline);

    /** Bind an input image by func name. */
    void bindInput(const std::string &name, const Image &img);

    /** Scatter inputs, execute all kernels, gather the output. */
    LaunchResult run();

    /** Scatter one image into the banks per @p layout (also used by
     *  tests to place arbitrary data). */
    void scatterImage(const Layout &layout, const Image &img);

    /** Gather a func's realized values over a window (tests/debug). */
    Image gather(const Layout &layout, int width, int height);

  private:
    Device &dev_;
    const CompiledPipeline &pipe_;
    std::map<std::string, const Image *> inputs_;
};

/**
 * Launch a compiled pipeline on a (possibly reused) device.
 *
 * The device is power-cycled first (Device::reset()), so back-to-back
 * launches on one device are bit-exact with fresh-device runs; the
 * serving layer (src/service) relies on this to keep one simulated
 * device per cube partition instead of constructing a new one per
 * request.  @p pipeline must have been compiled for @p dev's geometry.
 */
LaunchResult launchOnDevice(Device &dev, const CompiledPipeline &pipeline,
                            const std::map<std::string, Image> &inputs);

/** Compile + run in one call on a fresh device; convenience for tests. */
LaunchResult runPipeline(const PipelineDef &def, const HardwareConfig &cfg,
                         const std::map<std::string, Image> &inputs,
                         const CompilerOptions &opts = {},
                         StatsRegistry *statsOut = nullptr);

} // namespace ipim

#endif // IPIM_RUNTIME_RUNTIME_H_
