/**
 * @file
 * Host-side runtime for the standalone iPIM accelerator (Sec. VI):
 * scatters input images into the banks according to the compiled layout,
 * uploads and runs each kernel program, and gathers the output.
 */
#ifndef IPIM_RUNTIME_RUNTIME_H_
#define IPIM_RUNTIME_RUNTIME_H_

#include <map>
#include <string>

#include "common/image.h"
#include "compiler/codegen.h"
#include "sim/device.h"

namespace ipim {

/** Result of executing a compiled pipeline on a device. */
struct LaunchResult
{
    Image output;
    Cycle cycles = 0;          ///< total simulated cycles
    std::vector<Cycle> kernelCycles; ///< per stage
};

class Runtime
{
  public:
    Runtime(Device &dev, const CompiledPipeline &pipeline);

    /** Bind an input image by func name. */
    void bindInput(const std::string &name, const Image &img);

    /** Scatter inputs, execute all kernels, gather the output. */
    LaunchResult run();

    /** Scatter one image into the banks per @p layout (also used by
     *  tests to place arbitrary data). */
    void scatterImage(const Layout &layout, const Image &img);

    /** Gather a func's realized values over a window (tests/debug). */
    Image gather(const Layout &layout, int width, int height);

  private:
    Device &dev_;
    const CompiledPipeline &pipe_;
    std::map<std::string, const Image *> inputs_;
};

/** Compile + run in one call on a fresh device; convenience for tests. */
LaunchResult runPipeline(const PipelineDef &def, const HardwareConfig &cfg,
                         const std::map<std::string, Image> &inputs,
                         const CompilerOptions &opts = {},
                         StatsRegistry *statsOut = nullptr);

} // namespace ipim

#endif // IPIM_RUNTIME_RUNTIME_H_
