#include "runtime/runtime.h"

#include "common/logging.h"
#include "runtime/transfer.h"
#include "verify/verifier.h"

namespace ipim {

Runtime::Runtime(Device &dev, const CompiledPipeline &pipeline)
    : dev_(dev), pipe_(pipeline)
{
}

void
Runtime::bindInput(const std::string &name, const Image &img)
{
    inputs_[name] = &img;
}

void
Runtime::scatterImage(const Layout &layout, const Image &img)
{
    scatterImageTo(dev_, layout, img);
}

Image
Runtime::gather(const Layout &layout, int width, int height)
{
    return gatherImageFrom(dev_, layout, width, height);
}

LaunchResult
Runtime::run()
{
    // Scatter every input over its inferred (grown) region.
    for (const StageInfo &s : pipe_.analysis->stages) {
        if (!s.func->isInput())
            continue;
        auto it = inputs_.find(s.func->name());
        if (it == inputs_.end())
            fatal("input '", s.func->name(), "' not bound");
        scatterImage(pipe_.layouts->of(s.func), *it->second);
    }

    // Host-side kernel spans: one per pipeline stage, stamped on the
    // device's virtual timeline (run() resumes the device clock, so the
    // cumulative base tracks across kernels).
    Tracer *tr = dev_.tracer();
    u32 hostTrack = 0;
    if (Tracer::active(tr))
        hostTrack = tr->track(dev_.trackPrefix() + "host");

    LaunchResult res;
    res.vaultIssued.assign(dev_.totalVaults(), 0);
    res.vaultAccounting.assign(dev_.totalVaults(), IssueAccounting{});
    Cycle kernelBase = dev_.now();
    for (const CompiledKernel &k : pipe_.kernels) {
        // Launch-time gate (opt-in via CompilerOptions::verify): a
        // CompiledPipeline can be assembled or patched by hand, so the
        // runtime re-checks right before upload, not just at compile.
        if (pipe_.options.verify) {
            VerifyReport rep = verifyDevice(dev_.cfg(), k.perVault);
            if (!rep.pass())
                fatal("kernel '", k.stage,
                      "' rejected before simulation (",
                      rep.errorCount(), " errors):\n", rep.toString());
        }
        dev_.loadPrograms(k.perVault);
        Cycle c = dev_.run();
        if (Tracer::active(tr))
            tr->span(hostTrack, TraceEv::kKernel, kernelBase,
                     kernelBase + c, tr->label(k.stage));
        kernelBase += c;
        res.kernelCycles.push_back(c);
        res.cycles += c;
        size_t vi = 0;
        for (u32 chip = 0; chip < dev_.cfg().cubes; ++chip) {
            for (u32 v = 0; v < dev_.cfg().vaultsPerCube; ++v) {
                const Vault &vt = dev_.vault(chip, v);
                u64 n = vt.issuedCount();
                res.vaultAccounting[vi].accumulate(vt.accounting());
                res.vaultIssued[vi++] += n;
                res.totalIssued += n;
            }
        }
    }

    const Layout &outL = pipe_.layouts->of(pipe_.def.output);
    int h = pipe_.def.output->dims() == 2 ? pipe_.def.height : 1;
    res.output = gather(outL, pipe_.def.width, h);
    return res;
}

LaunchResult
launchOnDevice(Device &dev, const CompiledPipeline &pipeline,
               const std::map<std::string, Image> &inputs)
{
    dev.reset();
    Runtime rt(dev, pipeline);
    for (const auto &[name, img] : inputs)
        rt.bindInput(name, img);
    return rt.run();
}

LaunchResult
runPipeline(const PipelineDef &def, const HardwareConfig &cfg,
            const std::map<std::string, Image> &inputs,
            const CompilerOptions &opts, StatsRegistry *statsOut)
{
    CompiledPipeline cp = compilePipeline(def, cfg, opts);
    Device dev(cfg);
    Runtime rt(dev, cp);
    for (const auto &[name, img] : inputs)
        rt.bindInput(name, img);
    LaunchResult res = rt.run();
    if (statsOut)
        *statsOut = dev.stats();
    return res;
}

} // namespace ipim
