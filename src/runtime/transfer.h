/**
 * @file
 * Host-side image scatter/gather over a device's bank backing store.
 *
 * Templated on the device type so the cycle-accurate Device (sim/) and
 * the functional FuncDevice (func/) share one implementation — both
 * expose `cfg()` and `bank(chip, vault, pg, pe)`.  Keeping the layout
 * walk in one place is what makes "functional output == cycle output"
 * a statement about the interpreters alone, not about two scatter
 * routines agreeing.
 */
#ifndef IPIM_RUNTIME_TRANSFER_H_
#define IPIM_RUNTIME_TRANSFER_H_

#include <algorithm>
#include <vector>

#include "common/image.h"
#include "compiler/layout.h"

namespace ipim {

/**
 * Scatter @p img into the banks per @p layout (border-clamped).
 *
 * For tiled layouts, pixels of one image row inside one tile live at
 * contiguous bank addresses in one PE (homeOf advances by 4 bytes per
 * x until the tile boundary), so the walk resolves homeOf once per
 * such run and issues a single bulk write — the placement is pixel-
 * for-pixel identical to resolving every pixel individually.
 */
template <typename DeviceT>
void
scatterImageTo(DeviceT &dev, const Layout &layout, const Image &img)
{
    const Rect &r = layout.region();
    auto clampedBits = [&](i64 x, i64 y) {
        f32 v =
            img.clampedAt(int(std::clamp<i64>(x, 0, img.width() - 1)),
                          int(std::clamp<i64>(y, 0, img.height() - 1)));
        return f32AsLane(v);
    };
    if (layout.kind() == LayoutKind::kTiled) {
        const i64 tx = layout.tx();
        std::vector<u32> run;
        for (i64 y = r.y.lo; y <= r.y.hi; ++y) {
            for (i64 x = r.x.lo; x <= r.x.hi;) {
                i64 runLen = std::min(tx - (x - r.x.lo) % tx,
                                      r.x.hi - x + 1);
                run.resize(size_t(runLen));
                for (i64 i = 0; i < runLen; ++i)
                    run[size_t(i)] = clampedBits(x + i, y);
                PixelHome h = layout.homeOf(x, y);
                dev.bank(h.chip, h.vault, h.pg, h.pe)
                    .write(h.addr,
                           reinterpret_cast<const u8 *>(run.data()),
                           u32(runLen) * 4);
                x += runLen;
            }
        }
        return;
    }
    // Replicated: every PE gets a copy.
    for (i64 y = r.y.lo; y <= r.y.hi; ++y) {
        for (i64 x = r.x.lo; x <= r.x.hi; ++x) {
            u32 bits = clampedBits(x, y);
            u64 addr = layout.baseAddr() + layout.linearAddr(x, y);
            for (u32 c = 0; c < dev.cfg().cubes; ++c)
                for (u32 v2 = 0; v2 < dev.cfg().vaultsPerCube; ++v2)
                    for (u32 pg = 0; pg < dev.cfg().pgsPerVault; ++pg)
                        for (u32 pe = 0; pe < dev.cfg().pesPerPg; ++pe)
                            dev.bank(c, v2, pg, pe)
                                .write(addr,
                                       reinterpret_cast<u8 *>(&bits),
                                       4);
        }
    }
}

/** Gather a func's realized values over a width x height window. */
template <typename DeviceT>
Image
gatherImageFrom(DeviceT &dev, const Layout &layout, int width, int height)
{
    Image out(width, height);
    if (layout.kind() == LayoutKind::kTiled) {
        const Rect &r = layout.region();
        const i64 tx = layout.tx();
        std::vector<u32> run;
        for (i64 y = 0; y < height; ++y) {
            for (i64 x = 0; x < width;) {
                i64 runLen = std::min(tx - (x - r.x.lo) % tx,
                                      i64(width) - x);
                run.resize(size_t(runLen));
                PixelHome h = layout.homeOf(x, y);
                dev.bank(h.chip, h.vault, h.pg, h.pe)
                    .read(h.addr, reinterpret_cast<u8 *>(run.data()),
                          u32(runLen) * 4);
                for (i64 i = 0; i < runLen; ++i)
                    out.at(int(x + i), int(y)) =
                        laneAsF32(run[size_t(i)]);
                x += runLen;
            }
        }
        return out;
    }
    for (i64 y = 0; y < height; ++y) {
        for (i64 x = 0; x < width; ++x) {
            PixelHome h = layout.homeOf(x, y);
            u32 bits = 0;
            dev.bank(h.chip, h.vault, h.pg, h.pe)
                .read(h.addr, reinterpret_cast<u8 *>(&bits), 4);
            out.at(int(x), int(y)) = laneAsF32(bits);
        }
    }
    return out;
}

} // namespace ipim

#endif // IPIM_RUNTIME_TRANSFER_H_
