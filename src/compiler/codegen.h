/**
 * @file
 * Kernel code generation: turns one analyzed pipeline stage into a
 * per-vault SIMB program (Sec. V-B, Fig. 3).
 *
 * Pointwise/stencil/resampling stages lower to:
 *   1. a halo push phase (boundary rows owned by sibling PGs of the same
 *      vault are staged into the VSM),
 *   2. a remote pull phase (rows owned by other vaults are fetched with
 *      req instructions into the same VSM staging slots),
 *   3. a main loop: for every owned tile row (unrolled) and slot column
 *      (CRF loop), fill the PGSM with the required input region (local
 *      rows via ld_pgsm, staged rows via rd_vsm+wr_pgsm), then compute
 *      the tile's output vectors and store them with st_rf.
 *
 * Reduction stages (Histogram) lower to the paper's parallel partial
 * reduction: per-PE private accumulation with indirect addressing, then
 * PG/vault/device-level reduction trees joined by sync barriers.
 */
#ifndef IPIM_COMPILER_CODEGEN_H_
#define IPIM_COMPILER_CODEGEN_H_

#include <memory>

#include "compiler/layout.h"
#include "compiler/passes.h"

namespace ipim {

/** One stage's compiled programs, one per global vault. */
struct CompiledKernel
{
    std::string stage;
    std::vector<std::vector<Instruction>> perVault;
    BackendStats backend; ///< aggregated over vaults
};

struct CompiledPipeline
{
    PipelineDef def;
    HardwareConfig cfg;
    CompilerOptions options;
    std::shared_ptr<PipelineAnalysis> analysis;
    std::shared_ptr<LayoutMap> layouts;
    std::vector<CompiledKernel> kernels;
    u64 scratchBase = 0; ///< per-PE reduction partials area
    u64 spillBase = 0;   ///< register spill area

    /** Total static instructions over all kernels and vaults. */
    u64 totalInstructions() const;
};

/** Compile a pipeline for the given device configuration. */
CompiledPipeline compilePipeline(const PipelineDef &def,
                                 const HardwareConfig &cfg,
                                 const CompilerOptions &opts = {});

} // namespace ipim

#endif // IPIM_COMPILER_CODEGEN_H_
