/**
 * @file
 * Expression AST of the Halide-like frontend (Sec. V-A).
 *
 * An Expr is a pure function of the loop variables (x, y) and of calls
 * into other Funcs.  Index expressions inside calls may be affine
 * ((cx*x + cy*y + c0) / div, floor semantics) or data-dependent
 * ("dynamic"), in which case they must be wrapped in clamp() so bounds
 * inference can bound the accessed region.
 */
#ifndef IPIM_COMPILER_EXPR_H_
#define IPIM_COMPILER_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/interval.h"
#include "common/types.h"

namespace ipim {

class Func;
using FuncPtr = std::shared_ptr<Func>;

/** A named loop variable. Identity is by name. */
struct Var
{
    std::string name;

    explicit Var(std::string n) : name(std::move(n)) {}
    bool operator==(const Var &o) const { return name == o.name; }
};

enum class ExprKind : u8 {
    kConstF,  ///< FP32 literal
    kConstI,  ///< INT32 literal
    kVar,     ///< loop variable reference
    kCall,    ///< call into another Func at index expressions
    kAdd,
    kSub,
    kMul,
    kDiv,
    kMin,
    kMax,
    kClamp,   ///< clamp(a, lo, hi) == min(max(a, lo), hi)
    kCastI,   ///< float -> int (truncate toward -inf, matches floor)
    kCastF,   ///< int -> float
};

struct ExprNode;
using ExprNodePtr = std::shared_ptr<const ExprNode>;

/** Value-semantic handle to an immutable expression tree. */
class Expr
{
  public:
    Expr() = default;
    /*implicit*/ Expr(f32 v);
    /*implicit*/ Expr(int v);
    /*implicit*/ Expr(const Var &v);

    explicit Expr(ExprNodePtr n) : node_(std::move(n)) {}

    bool defined() const { return node_ != nullptr; }
    const ExprNode &node() const;

    static Expr constF(f32 v);
    static Expr constI(i32 v);
    static Expr var(const std::string &name);
    static Expr call(FuncPtr f, std::vector<Expr> args);
    static Expr binary(ExprKind k, Expr a, Expr b);
    static Expr clamp(Expr v, Expr lo, Expr hi);
    static Expr castI(Expr v);
    static Expr castF(Expr v);

  private:
    ExprNodePtr node_;
};

struct ExprNode
{
    ExprKind kind;
    f32 fval = 0;
    i32 ival = 0;
    std::string varName;
    FuncPtr callee;          ///< kCall
    std::vector<Expr> args;  ///< kCall index expressions
    std::vector<Expr> kids;  ///< operands of arithmetic nodes
};

Expr operator+(Expr a, Expr b);
Expr operator-(Expr a, Expr b);
Expr operator*(Expr a, Expr b);
Expr operator/(Expr a, Expr b);
Expr min(Expr a, Expr b);
Expr max(Expr a, Expr b);
Expr clamp(Expr v, Expr lo, Expr hi);

/**
 * Affine view of an index expression:
 *
 *   postMul * floorDiv(cx*x + cy*y + c0, div) + post0
 *
 * with div >= 1.  The postMul/post0 extension covers pyramid and plane-
 * interleaved patterns like 8*(y/8)+dy and (y/8)*NZ+z.  valid==false
 * means the index is dynamic (data-dependent).
 */
struct AffineIndex
{
    bool valid = false;
    i64 cx = 0;
    i64 cy = 0;
    i64 c0 = 0;
    i64 div = 1;
    i64 postMul = 1;
    i64 post0 = 0;

    i64
    eval(i64 x, i64 y) const
    {
        return postMul * floorDiv(cx * x + cy * y + c0, div) + post0;
    }

    bool isPureAffine() const { return div == 1; }
};

/** Try to view @p e as an affine index over variables @p xv / @p yv. */
AffineIndex toAffine(const Expr &e, const std::string &xv,
                     const std::string &yv);

/**
 * Interval of an index expression when x/y range over @p xr / @p yr.
 * Works for dynamic indices too as long as every data-dependent leaf is
 * bounded by a clamp; throws FatalError otherwise.
 */
Interval indexInterval(const Expr &e, const std::string &xv,
                       const std::string &yv, const Interval &xr,
                       const Interval &yr);

/** Pretty-printer for diagnostics. */
std::string exprToString(const Expr &e);

} // namespace ipim

#endif // IPIM_COMPILER_EXPR_H_
