/**
 * @file
 * Physical data layout of a realized Func across the iPIM hierarchy
 * (Fig. 3(a)): vaults own contiguous strips of tile rows, process groups
 * own sub-strips, and within a PG consecutive tile columns interleave
 * across the four PEs so adjacent tiles can share data through the PGSM.
 *
 * The same Layout object is used by the compiler (address generation),
 * the runtime (image scatter/gather), and the halo-exchange planner, so
 * every party agrees on where a pixel lives.
 */
#ifndef IPIM_COMPILER_LAYOUT_H_
#define IPIM_COMPILER_LAYOUT_H_

#include <map>

#include "common/config.h"
#include "compiler/analysis.h"

namespace ipim {

/** Physical placement of one pixel. */
struct PixelHome
{
    u32 chip = 0;
    u32 vault = 0;   ///< vault within the chip
    u32 pg = 0;
    u32 pe = 0;      ///< PE within the PG
    u64 addr = 0;    ///< byte address in that PE's bank
};

enum class LayoutKind : u8 {
    kTiled,      ///< distributed tiles (Fig. 3(a))
    kReplicated, ///< full copy in every PE
    kSingleton,  ///< single copy on chip0/vault0/pg0/pe0 (reduction out)
};

class Layout
{
  public:
    Layout() = default;

    static Layout tiled(const HardwareConfig &cfg, const Rect &region,
                        i32 tx, i32 ty, u64 baseAddr);
    static Layout replicated(const Rect &region, u64 baseAddr);
    static Layout singleton(const Rect &region, u64 baseAddr);

    LayoutKind kind() const { return kind_; }
    const Rect &region() const { return region_; }
    u64 baseAddr() const { return base_; }
    i32 tx() const { return tx_; }
    i32 ty() const { return ty_; }

    /** Bank bytes this layout occupies in every PE. */
    u64 bytesPerPe() const { return bytesPerPe_; }

    // ---- Tiled-layout geometry ----
    i64 tilesX() const { return tilesX_; }
    i64 tilesY() const { return tilesY_; }
    i64 slotCols() const { return slotCols_; }           ///< per PE
    i64 tileRowsPerVault() const { return tileRowsPerVault_; }
    i64 tileRowsPerPg() const { return tileRowsPerPg_; } ///< max per PG
    u64 tileBytes() const { return u64(tx_) * ty_ * 4; }

    i64 tileColOfX(i64 x) const { return (x - region_.x.lo) / tx_; }
    i64 tileRowOfY(i64 y) const { return (y - region_.y.lo) / ty_; }

    /** Total PG strips and their proportional tile-row boundaries. */
    i64 numStrips() const;
    i64 stripOfTileRow(i64 tr) const;
    i64 stripFirstRow(i64 strip) const;

    /** Global vault (chip*vaultsPerCube+vault) owning tile row @p tr. */
    u32 vaultOfTileRow(i64 tr) const;
    /** PG within the vault owning tile row @p tr. */
    u32 pgOfTileRow(i64 tr) const;
    /** Tile row index local to its PG (0-based). */
    i64 localTileRow(i64 tr) const;

    /** Number of tile rows PG (vault, pg) actually owns. */
    i64 tileRowsOwned(u32 globalVault, u32 pg) const;
    /** First global tile row of PG (globalVault, pg). */
    i64 firstTileRow(u32 globalVault, u32 pg) const;

    /** Rows of pixels [first, last] owned by a PG; empty if none. */
    Interval pixelRowsOfPg(u32 globalVault, u32 pg) const;

    /** Slot index of tile (tileCol, tileRow) in its owner PE's bank. */
    i64 slotOf(i64 tileCol, i64 tileRow) const;

    /** Placement of pixel (x, y); must be inside the region. */
    PixelHome homeOf(i64 x, i64 y) const;

    /** Byte address of (x, y) in a replicated/singleton buffer. */
    u64 linearAddr(i64 x, i64 y) const;

    /** For tiled: byte offset of (x,y) inside its tile's slot. */
    u64 inTileOffset(i64 x, i64 y) const;

  private:
    LayoutKind kind_ = LayoutKind::kTiled;
    Rect region_;
    u64 base_ = 0;
    i32 tx_ = 8;
    i32 ty_ = 8;
    u64 bytesPerPe_ = 0;

    u32 pesPerPg_ = 4;
    u32 totalVaults_ = 1;
    u32 pgsPerVault_ = 1;
    u32 vaultsPerCube_ = 1;
    i64 tilesX_ = 0;
    i64 tilesY_ = 0;
    i64 slotCols_ = 0;
    i64 tileRowsPerVault_ = 0;
    i64 tileRowsPerPg_ = 0;
};

/** Assigns bank addresses to all stages of an analyzed pipeline. */
class LayoutMap
{
  public:
    LayoutMap(const HardwareConfig &cfg, const PipelineAnalysis &pa);

    const Layout &of(const FuncPtr &f) const;
    const Layout &of(const Func *f) const;

    /** First free byte of the per-PE bank heap (spill area starts here). */
    u64 heapEnd() const { return heapEnd_; }

  private:
    std::map<const Func *, Layout> layouts_;
    u64 heapEnd_ = 0;
};

} // namespace ipim

#endif // IPIM_COMPILER_LAYOUT_H_
