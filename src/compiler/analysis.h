/**
 * @file
 * Pipeline analysis: stage collection, inlining of non-root Funcs into
 * their consumers (Halide's default schedule; Listing 1's blurx), and
 * interval-based bounds inference that computes the region each root Func
 * must be realized over (Sec. V-B).
 */
#ifndef IPIM_COMPILER_ANALYSIS_H_
#define IPIM_COMPILER_ANALYSIS_H_

#include <map>
#include <vector>

#include "compiler/func.h"

namespace ipim {

/** Rectangular realization region of a Func (y == [0,0] for 1D). */
struct Rect
{
    Interval x;
    Interval y;

    bool operator==(const Rect &o) const = default;
};

/** One call from a root stage into another root/input Func. */
struct CallSite
{
    FuncPtr callee;
    AffineIndex ax; ///< x index as affine form (valid or dynamic)
    AffineIndex ay;
    Expr rawX;
    Expr rawY;
};

/** One compute_root stage after inlining. */
struct StageInfo
{
    FuncPtr func;
    Expr rhs;              ///< pure definition with inline funcs folded
    std::vector<UpdateDef> updates; ///< reduction updates, inlined
    Rect region;           ///< realization region
    std::vector<CallSite> calls; ///< calls in rhs (not updates)
    bool isReduction = false;
};

/** Analyzed pipeline: stages in producer-to-consumer order. */
struct PipelineAnalysis
{
    PipelineDef def;
    std::vector<StageInfo> stages; ///< topological, inputs first

    StageInfo &stageOf(const FuncPtr &f);
    const StageInfo &stageOf(const FuncPtr &f) const;
    bool hasStage(const FuncPtr &f) const;
};

/**
 * Substitute every call to an inline (non-root, non-input) Func by its
 * definition with arguments substituted; recurses until only root/input
 * callees remain.
 */
Expr inlineExpr(const Expr &e);

/** Run the full analysis; throws FatalError on schedule errors. */
PipelineAnalysis analyzePipeline(const PipelineDef &def);

} // namespace ipim

#endif // IPIM_COMPILER_ANALYSIS_H_
