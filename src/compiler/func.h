/**
 * @file
 * Func: one stage of an image pipeline, plus its iPIM schedule.
 *
 * Mirrors the paper's programming interface (Listing 1): an algorithm is
 * a set of Funcs; the schedule picks compute_root / ipim_tile / load_pgsm
 * / vectorize.  Additional schedule directives used by this repo:
 *
 *  - computeReplicated(): the (small) Func is computed redundantly by
 *    every PE into its own bank, so consumers gather from the local bank
 *    (used for lookup tables, e.g. the Local Laplacian remap curve);
 *  - reductions (RDom) are expressed as an update definition and lower to
 *    the parallel partial-reduction scheme the paper describes for
 *    Histogram (Sec. VII-B).
 */
#ifndef IPIM_COMPILER_FUNC_H_
#define IPIM_COMPILER_FUNC_H_

#include <memory>
#include <string>
#include <vector>

#include "compiler/expr.h"

namespace ipim {

/** Reduction domain: r.x in [0, extentX), r.y in [0, extentY). */
struct RDom
{
    i64 extentX = 0;
    i64 extentY = 0;

    Var x{"r__x"};
    Var y{"r__y"};

    RDom(i64 ex, i64 ey) : extentX(ex), extentY(ey) {}
};

/**
 * Update definition: f(idx) <- f(idx) + value, iterated over an RDom.
 * idx/value are expressions over the RDom variables.
 */
struct UpdateDef
{
    Expr idxX;   ///< scatter x index (over r.x/r.y)
    Expr idxY;   ///< scatter y index; undefined for 1D funcs
    Expr value;  ///< accumulated value
    RDom dom;
};

/** How a root Func is realized on the device. */
enum class StorageKind : u8 {
    kTiled,      ///< distributed over all PEs per ipim_tile
    kReplicated, ///< full copy in every PE's bank
    kInline,     ///< not stored; substituted into consumers
};

class Func : public std::enable_shared_from_this<Func>
{
  public:
    static FuncPtr
    make(std::string name, int dims = 2)
    {
        return std::shared_ptr<Func>(new Func(std::move(name), dims));
    }

    /** An external input image bound by the runtime. */
    static FuncPtr
    input(std::string name, int dims = 2)
    {
        FuncPtr f = make(std::move(name), dims);
        f->isInput_ = true;
        f->storage_ = StorageKind::kTiled;
        return f;
    }

    const std::string &name() const { return name_; }
    int dims() const { return dims_; }
    bool isInput() const { return isInput_; }

    /** Pure definition f(x, y) = rhs. */
    void define(Var x, Var y, Expr rhs);
    void define(Var x, Expr rhs); ///< 1D form

    bool hasDefinition() const { return rhs_.defined(); }
    const Expr &rhs() const { return rhs_; }
    const std::string &varX() const { return varX_; }
    const std::string &varY() const { return varY_; }

    /** Reduction update (after an initializing pure definition). */
    void defineUpdate(UpdateDef update);
    bool hasUpdate() const { return !updates_.empty(); }
    const std::vector<UpdateDef> &updates() const { return updates_; }

    // ---- Schedule ----
    Func &computeRoot();
    Func &computeReplicated();
    Func &ipimTile(int tx, int ty);
    Func &loadPgsm();
    Func &vectorize(int factor);

    StorageKind storage() const { return storage_; }
    bool isRoot() const { return storage_ != StorageKind::kInline; }
    int tileX() const { return tileX_; }
    int tileY() const { return tileY_; }
    bool usesPgsm() const { return loadPgsm_; }

    /** Convenience call builders: f(x, y), f(x). */
    Expr operator()(Expr ix, Expr iy);
    Expr operator()(Expr ix);

  private:
    Func(std::string name, int dims) : name_(std::move(name)), dims_(dims)
    {
    }

    std::string name_;
    int dims_;
    bool isInput_ = false;

    Expr rhs_;
    std::string varX_ = "x";
    std::string varY_ = "y";
    std::vector<UpdateDef> updates_;

    StorageKind storage_ = StorageKind::kInline;
    int tileX_ = 8;
    int tileY_ = 8;
    bool loadPgsm_ = false;
};

/** Call helper usable on FuncPtr: at(f, x, y). */
Expr at(const FuncPtr &f, Expr ix, Expr iy);
Expr at(const FuncPtr &f, Expr ix);

/** The whole pipeline: one output Func plus its extent. */
struct PipelineDef
{
    std::string name;
    FuncPtr output;
    int width = 0;
    int height = 0;
    std::vector<FuncPtr> inputs;
};

} // namespace ipim

#endif // IPIM_COMPILER_FUNC_H_
