#include "compiler/codegen.h"

#include <algorithm>
#include <functional>
#include <numeric>

#include "analysis/analysis.h"
#include "analysis/conflict.h"
#include "common/logging.h"
#include "compiler/codegen_internal.h"
#include "verify/verifier.h"

namespace ipim {

using namespace codegen;

namespace {

/** Static expression type (int vs float); mixed arithmetic is an error. */
bool
isIntExpr(const Expr &e)
{
    const ExprNode &n = e.node();
    switch (n.kind) {
      case ExprKind::kConstF: return false;
      case ExprKind::kConstI: return true;
      case ExprKind::kVar: return true;
      case ExprKind::kCall: return false;
      case ExprKind::kCastI: return true;
      case ExprKind::kCastF: return false;
      default: {
        bool first = isIntExpr(n.kids[0]);
        for (size_t i = 1; i < n.kids.size(); ++i)
            if (isIntExpr(n.kids[i]) != first)
                fatal("mixed int/float arithmetic without a cast: ",
                      exprToString(e));
        return first;
      }
    }
}

/**
 * Emits the kernels of one stage: a per-vault program implementing the
 * halo exchange and the tile computation described in codegen.h.
 */
class StageEmitter
{
  public:
    StageEmitter(const HardwareConfig &cfg, const PipelineAnalysis &pa,
                 const LayoutMap &lay, const StageInfo &stage,
                 u64 scratchBase)
        : cfg_(cfg), pa_(pa), lay_(lay), stage_(stage),
          scratchBase_(scratchBase), L_(lay.of(stage.func))
    {
        buildPlans();
    }

    /** Emit the program for one global vault. */
    BuilderProgram
    emitVault(u32 globalVault)
    {
        V_ = globalVault;
        b_ = std::make_unique<CodeBuilder>(cfg_);
        resetCaches();
        if (stage_.isReduction)
            emitReduction();
        else if (stage_.func->storage() == StorageKind::kReplicated)
            emitReplicated();
        else
            emitPointwise();
        return b_->finish(1);
    }

  private:
    // ---------------- common helpers ----------------

    void
    resetCaches()
    {
        peTimesCache_.clear();
        pgTimesCache_.clear();
        pgTableCache_.clear();
        sumCache_.clear();
    }

    u32 P() const { return cfg_.pesPerPg; }
    u32 fullPeMask() const { return (1u << P()) - 1; }

    /** ARF register holding A0 * k. */
    u16
    peTimes(i64 k)
    {
        auto it = peTimesCache_.find(k);
        if (it != peTimesCache_.end())
            return it->second;
        u16 r = b_->newArf();
        b_->emit(Instruction::calcArfImm(AluOp::kMul, r,
                                         CodeBuilder::peId(), i32(k),
                                         b_->fullMask()));
        peTimesCache_[k] = r;
        return r;
    }

    /** ARF register holding A1 * k. */
    u16
    pgTimes(i64 k)
    {
        auto it = pgTimesCache_.find(k);
        if (it != pgTimesCache_.end())
            return it->second;
        u16 r = b_->newArf();
        b_->emit(Instruction::calcArfImm(AluOp::kMul, r,
                                         CodeBuilder::pgId(), i32(k),
                                         b_->fullMask()));
        pgTimesCache_[k] = r;
        return r;
    }

    /**
     * ARF register holding a per-PG value: the core writes a small table
     * into the VSM and every PE reads its own PG's entry (indexed by the
     * A1 identity register).  Used where per-PG constants are not affine
     * in the PG id (proportional strip boundaries).
     */
    u16
    pgTableArf(const std::vector<i32> &perPg)
    {
        auto it = pgTableCache_.find(perPg);
        if (it != pgTableCache_.end())
            return it->second;
        u32 base = b_->vsmAlloc(u32(perPg.size()) * 4 + 16);
        for (size_t p = 0; p < perPg.size(); ++p)
            b_->emit(Instruction::setiVsm(base + u32(p) * 4, perPg[p]));
        u32 all = b_->fullMask();
        u16 tmp = b_->newDrf();
        Instruction rd = Instruction::vsmRf(
            true, MemOperand::basePlus(pgTimes(4), i64(base)), tmp, all);
        rd.vecMask = 0x1; // lane 0 carries this PG's entry
        b_->emit(rd);
        u16 reg = b_->newArf();
        b_->emit(Instruction::movDrfArf(true, reg, tmp, 0, all));
        pgTableCache_[perPg] = reg;
        return reg;
    }

    /** ARF register holding ra + rb (cached). */
    u16
    arfSum(u16 ra, u16 rb)
    {
        auto key = std::minmax(ra, rb);
        auto it = sumCache_.find(key);
        if (it != sumCache_.end())
            return it->second;
        u16 r = b_->newArf();
        b_->emit(Instruction::calcArf(AluOp::kAdd, r, ra, rb,
                                      b_->fullMask()));
        sumCache_[key] = r;
        return r;
    }

    /** Fresh ARF temp = reg + imm (one calc_arf). */
    u16
    arfAddImm(u16 reg, i64 imm, u32 mask)
    {
        u16 r = b_->newArf();
        b_->emit(Instruction::calcArfImm(AluOp::kAdd, r, reg, i32(imm),
                                         mask));
        return r;
    }

    u32
    activeMask(u32 pgMask, u32 peMask) const
    {
        return b_->maskFor(pgMask, peMask);
    }

    // ---------------- planning ----------------

    void buildPlans();
    void planCallee(const Func *g, const std::vector<CallSite> &calls);
    void buildVaultHaloPlan();

    /** Rows a PGSM buffer needs for one output tile row. */
    Interval
    calleeRowHull(const CalleePlan &cp, i64 outY0) const
    {
        Interval out;
        for (const CallSite &cs : calleeCalls_.at(cp.g)) {
            Interval yr{outY0, outY0 + L_.ty() - 1};
            Interval v = indexInterval(cs.rawY, stage_.func->varX(),
                                       stage_.func->varY(),
                                       {0, 0} /*x irrelevant*/, yr);
            out = out.hull(v);
        }
        if (cp.g->dims() == 1)
            return {0, 0};
        return out;
    }

    // ---------------- pointwise emission ----------------

    void emitPointwise();
    void emitHaloPush();
    void emitRemotePull();
    std::vector<PgIter> buildIters(u32 iter) const;

    /** True if two PG iterations share all compute-body row constants. */
    bool
    samePhase(const PgIter &a, const PgIter &b) const
    {
        for (const CalleePlan &cp : plans_) {
            if (cp.replicated)
                continue;
            i64 loA = calleeRowHull(cp, a.outY0).lo;
            i64 loB = calleeRowHull(cp, b.outY0).lo;
            for (const CallSite &cs : calleeCalls_.at(cp.g)) {
                for (i64 yi = 0; yi < L_.ty(); ++yi) {
                    if (cs.ay.eval(0, a.outY0 + yi) - loA !=
                        cs.ay.eval(0, b.outY0 + yi) - loB)
                        return false;
                }
            }
        }
        return true;
    }
    void emitFill(const CalleePlan &cp, size_t cpIdx,
                  const std::vector<RowFill> &rows, u32 pgMask,
                  const SRange &sr, i64 tcCountUse);
    void emitComputeBody(u32 pgMaskAll, const SRange &sr, i64 iterLocal,
                         i64 outY0ref);
    u16 emitExpr(const Expr &e, const SRange &sr, i64 outY0ref, i64 yi,
                 i64 chunk, u32 mask,
                 std::map<std::string, u16> &loadCache);
    u16 emitCallLoad(const ExprNode &call, const SRange &sr, i64 outY0ref,
                     i64 yi, i64 chunk, u32 mask,
                     std::map<std::string, u16> &loadCache);

    void prematerialize(const Expr &e);

    /** scratchBank hint of the current sub-body (0 when not buffered). */
    u8
    bankHint() const
    {
        return doubleBuf_ ? u8(1 + (subK_ & 1)) : 0;
    }

    /** PGSM byte offset of the current sub-body's buffer instance. */
    i64
    pgsmBufOff() const
    {
        return doubleBuf_ && (subK_ & 1) ? i64(pgsmHalf_) : 0;
    }

    // Sub-group phase geometry (see CalleePlan::unroll).
    i64
    tcFirstK(const CalleePlan &cp, i64 k) const
    {
        return floorDiv(cp.inLo0 - cp.gl.region().x.lo + k * cp.advPx,
                        cp.gl.tx());
    }

    i64
    originPxK(const CalleePlan &cp, i64 k) const
    {
        return tcFirstK(cp, k) * cp.gl.tx();
    }

    i64
    slotBaseOffK(const CalleePlan &cp, i64 k) const
    {
        return floorDiv(tcFirstK(cp, k), i64(P())) -
               floorDiv(tcFirstK(cp, 0), i64(P()));
    }

    i64
    tcCountK(const CalleePlan &cp, i64 k, i64 widthPx) const
    {
        if (cp.replicated)
            return 0;
        Interval outX{L_.region().x.lo, L_.region().x.lo + widthPx - 1};
        Interval inHull;
        for (const CallSite &cs : calleeCalls_.at(cp.g)) {
            Interval v = indexInterval(cs.rawX, stage_.func->varX(),
                                       stage_.func->varY(), outX, {0, 0});
            inHull = inHull.hull(v);
        }
        i64 tcLast = floorDiv(inHull.hi - cp.gl.region().x.lo +
                                  k * cp.advPx,
                              cp.gl.tx());
        return tcLast - tcFirstK(cp, k) + 1;
    }

    // ---------------- reduction / replicated ----------------

    void emitReduction();
    void emitReplicated();

    // ---------------- members ----------------

    const HardwareConfig &cfg_;
    const PipelineAnalysis &pa_;
    const LayoutMap &lay_;
    const StageInfo &stage_;
    u64 scratchBase_;
    Layout L_;

    std::vector<CalleePlan> plans_;
    std::map<const Func *, std::vector<CallSite>> calleeCalls_;
    std::map<const Func *, size_t> planIdx_;

    u32 V_ = 0;
    std::unique_ptr<CodeBuilder> b_;

    std::map<i64, u16> peTimesCache_;
    std::map<i64, u16> pgTimesCache_;
    std::map<std::vector<i32>, u16> pgTableCache_;
    std::map<std::pair<u16, u16>, u16> sumCache_;

    // Per-iteration loop registers (valid while emitting the main loop).
    std::map<size_t, u16> sColByte_; ///< per plan index
    std::map<size_t, u16> sVsmX_;    ///< per plan index
    u16 sOut_ = 0;
    u16 sXpx_ = 0;  ///< first output x of the current slot group
    std::map<size_t, u16> sIn_; ///< non-PGSM direct input base per plan
    i64 iterLocal_ = 0;
    bool usesVarX_ = false;
    i64 subK_ = 0; ///< sub-group phase of the body being emitted
    bool doubleBuf_ = false; ///< PGSM double buffering enabled
    u32 pgsmHalf_ = 0;       ///< bytes per PGSM buffer instance

    // Reduction/replicated expression context: variable and source-call
    // overrides used instead of the tile addressing of emitCallLoad.
    bool redActive_ = false;
    std::string redX_, redY_;
    u16 redXReg_ = 0, redYReg_ = 0;
    const Func *redSrc_ = nullptr;
    u16 redSrcReg_ = 0;
};

void
StageEmitter::planCallee(const Func *g, const std::vector<CallSite> &calls)
{
    CalleePlan cp;
    cp.g = g;
    cp.gl = lay_.of(g);
    cp.replicated = cp.gl.kind() == LayoutKind::kReplicated;
    calleeCalls_[g] = calls;

    // Common x scale across all calls to g.  Data-dependent (dynamic)
    // indices are supported for replicated 1D callees (lookup tables):
    // each lane's index moves through the AddrRF (mov_drf_arf) into an
    // indirect PGSM read, exactly the DataRF->AddrRF path of Sec. IV-C.
    bool first = true;
    for (const CallSite &cs : calls) {
        if (!cs.ax.valid || !cs.ay.valid) {
            if (cp.replicated && g->dims() == 1 &&
                stage_.func->usesPgsm())
                continue;
            fatal(stage_.func->name(), ": dynamic index into ",
                  g->name(), " requires a compute_replicated 1D callee "
                  "and a load_pgsm schedule");
        }
        if (cs.ax.cy != 0 || cs.ay.cx != 0)
            fatal(stage_.func->name(), ": mixed x/y index into ",
                  g->name());
        i64 cx = cs.ax.cx * cs.ax.postMul;
        i64 div = cs.ax.div;
        if (first) {
            cp.cx = cx;
            cp.div = div;
            first = false;
        } else if (cp.cx * div != cx * cp.div) {
            fatal(stage_.func->name(), ": calls into ", g->name(),
                  " use different x scales");
        }
        if (cx < 0)
            fatal(stage_.func->name(), ": negative x scale into ",
                  g->name(), " is not supported");
    }

    if (cp.replicated) {
        i64 w = cp.gl.region().x.extent();
        i64 paddedW = (w + kSimdLanes - 1) / kSimdLanes * kSimdLanes;
        cp.rowStride = paddedW * 4;
        cp.maxRows = cp.gl.region().y.extent();
        plans_.push_back(cp);
        planIdx_[g] = plans_.size() - 1;
        return;
    }

    // x geometry for one slot-column group.
    i64 groupW = i64(P()) * L_.tx();
    Interval outX{L_.region().x.lo, L_.region().x.lo + groupW - 1};
    Interval inHull;
    for (const CallSite &cs : calls) {
        Interval v = indexInterval(cs.rawX, stage_.func->varX(),
                                   stage_.func->varY(), outX, {0, 0});
        inHull = inHull.hull(v);
    }
    i64 gx0 = cp.gl.region().x.lo;
    i64 gtx = cp.gl.tx();
    cp.inLo0 = inHull.lo;
    cp.inHi0 = inHull.hi;
    cp.tcFirst0 = floorDiv(inHull.lo - gx0, gtx);
    // Worst-case tile-column count over sub-group phases (the window can
    // straddle one extra producer tile depending on alignment).
    cp.tcCount = floorDiv(inHull.hi - gx0, gtx) - cp.tcFirst0 + 2;
    // Advance of the input window per slot-column group, and the number
    // of groups after which the bank/PE ownership pattern repeats.
    i64 adv = cp.cx * groupW;
    if (adv % cp.div != 0)
        fatal(stage_.func->name(), "->", g->name(),
              ": group advance not divisible by the index divisor; "
              "choose a different ipim_tile width");
    cp.advPx = adv / cp.div;
    i64 period = gtx * i64(P());
    i64 gcdv = std::gcd(cp.advPx, period);
    cp.unroll = cp.advPx == 0 ? 1 : period / gcdv;
    if (cp.unroll > 16)
        fatal(stage_.func->name(), "->", g->name(),
              ": sub-group unroll factor ", cp.unroll,
              " is too large; adjust tile sizes");
    cp.rowStride = cp.tcCount * gtx * 4;

    // Rows per iteration (constant shape).
    Interval rows = calleeRowHull(cp, L_.region().y.lo);
    cp.maxRows = rows.extent();
    // Resampled y indices (div > 1) can shift the PGSM row window by one
    // depending on the tile row's phase; reserve one slack row.  The
    // compute body is emitted per fill-signature group, so differing
    // phases across PGs are handled by separate bodies.
    for (const CallSite &cs : calls)
        if (cs.ay.div > 1) {
            cp.maxRows += 1;
            break;
        }


    cp.stageRowBytes = cp.gl.tilesX() * gtx * 4;
    plans_.push_back(cp);
    planIdx_[g] = plans_.size() - 1;
}

void
StageEmitter::buildPlans()
{
    if (stage_.func->isInput())
        panic("emitting a kernel for an input func");

    // Group call sites by callee.  Callees are planned in first-
    // appearance order (not map order, which would iterate by heap
    // address and make pgsmBase assignment — and therefore the emitted
    // bytes — vary across compile() calls; DESIGN.md Sec. 13).
    std::map<const Func *, std::vector<CallSite>> byCallee;
    std::vector<const Func *> calleeOrder;
    auto addCall = [&](const Func *g, const CallSite &cs) {
        auto [it, fresh] = byCallee.try_emplace(g);
        if (fresh)
            calleeOrder.push_back(g);
        it->second.push_back(cs);
    };
    for (const CallSite &cs : stage_.calls)
        addCall(cs.callee.get(), cs);
    for (const UpdateDef &u : stage_.updates) {
        std::vector<CallSite> calls;
        auto collect = [&](const Expr &e) {
            std::vector<CallSite> cc;
            // Reuse analysis helper semantics: calls with RDom vars.
            std::function<void(const Expr &)> walk = [&](const Expr &x) {
                const ExprNode &n = x.node();
                if (n.kind == ExprKind::kCall) {
                    CallSite cs;
                    cs.callee = n.callee;
                    cs.rawX = n.args[0];
                    cs.rawY = n.args.size() > 1 ? n.args[1]
                                                : Expr::constI(0);
                    cs.ax = toAffine(cs.rawX, u.dom.x.name, u.dom.y.name);
                    cs.ay = toAffine(cs.rawY, u.dom.x.name, u.dom.y.name);
                    addCall(n.callee.get(), cs);
                }
                for (const Expr &k : n.kids)
                    walk(k);
                if (n.kind == ExprKind::kCall)
                    for (const Expr &a : n.args)
                        walk(a);
            };
            walk(e);
            return cc;
        };
        collect(u.value);
        collect(u.idxX);
        if (u.idxY.defined())
            collect(u.idxY);
        (void)calls;
    }

    if (stage_.isReduction)
        return; // the reduction emitter does its own simpler planning

    for (const Func *g : calleeOrder)
        planCallee(g, byCallee.at(g));

    // PGSM budget.
    u64 pgsmNeed = 0;
    for (CalleePlan &cp : plans_) {
        cp.pgsmBase = u32(pgsmNeed);
        pgsmNeed += u64(cp.rowStride) * cp.maxRows;
        pgsmNeed = (pgsmNeed + 15) & ~u64(15);
    }
    if (stage_.func->usesPgsm() && pgsmNeed > cfg_.pgsmBytes)
        fatal(stage_.func->name(), ": PGSM needs ", pgsmNeed,
              " bytes but has ", cfg_.pgsmBytes,
              "; use smaller ipim_tile");

    // When half the PGSM suffices, double-buffer it: the fill of one
    // slot group overlaps the compute of the previous one (the
    // scratchBank hint keeps the issue-time interlock out of the way).
    doubleBuf_ = stage_.func->usesPgsm() && !plans_.empty() &&
                 pgsmNeed * 2 <= cfg_.pgsmBytes;
    pgsmHalf_ = u32(pgsmNeed);
}

// ====================== vault halo planning =======================

void
StageEmitter::buildVaultHaloPlan()
{
    for (CalleePlan &cp : plans_) {
        cp.stageSlotOf.clear();
        if (cp.replicated)
            continue;
        std::set<i64> ext;
        for (u32 p = 0; p < cfg_.pgsPerVault; ++p) {
            i64 rows = L_.tileRowsOwned(V_, p);
            Interval own = cp.gl.pixelRowsOfPg(V_, p);
            for (i64 i = 0; i < rows; ++i) {
                i64 tr = L_.firstTileRow(V_, p) + i;
                i64 outY0 = L_.region().y.lo + tr * L_.ty();
                Interval hull = calleeRowHull(cp, outY0);
                for (i64 gy = hull.lo;
                     gy <= std::min(hull.hi, cp.gl.region().y.hi); ++gy) {
                    if (!own.contains(gy))
                        ext.insert(gy);
                }
            }
        }
        i64 k = 0;
        for (i64 gy : ext)
            cp.stageSlotOf[gy] = k++;
        cp.stageBase =
            ext.empty() ? 0
                        : b_->vsmAlloc(u32(u64(k) * cp.stageRowBytes));
    }
}

// ====================== halo push / remote pull ====================

void
StageEmitter::emitHaloPush()
{
    for (CalleePlan &cp : plans_) {
        if (cp.replicated)
            continue;
        i64 gtx = cp.gl.tx();
        i64 segs = gtx / 4;
        {
            for (const auto &[gy, stageIdx] : cp.stageSlotOf) {
                i64 trG = cp.gl.tileRowOfY(gy);
                u32 gvOwner = cp.gl.vaultOfTileRow(trG);
                if (gvOwner != V_)
                    continue; // remote rows are pulled with req
                u32 pgOwner = cp.gl.pgOfTileRow(trG);
                i64 lTR = cp.gl.localTileRow(trG);
                i64 inTileRow = (gy - cp.gl.region().y.lo) % cp.gl.ty();
                u64 rowBankBase = cp.gl.baseAddr() +
                                  u64(lTR * cp.gl.slotCols()) *
                                      cp.gl.tileBytes() +
                                  u64(inTileRow) * gtx * 4;
                u64 stageRowBase = cp.stageBase +
                                   u64(stageIdx) * cp.stageRowBytes;

                i64 fullCols = cp.gl.tilesX() / P();
                i64 tailPes = cp.gl.tilesX() % P();
                u32 ownerAll = activeMask(1u << pgOwner, fullPeMask());

                u16 sB = b_->newArf();
                b_->arfLoadImm(sB, i32(rowBankBase), ownerAll);
                u16 sV = b_->newArf();
                b_->arfLoadImm(sV, i32(stageRowBase), ownerAll);

                auto body = [&](u32 mask) {
                    u16 tv = b_->newArf();
                    b_->emit(Instruction::calcArf(
                        AluOp::kAdd, tv, sV, peTimes(gtx * 4), mask));
                    for (i64 k2 = 0; k2 < segs; ++k2) {
                        u16 v = b_->newDrf();
                        b_->emit(Instruction::memRf(
                            false, MemOperand::basePlus(sB, k2 * 16), v,
                            mask));
                        b_->emit(Instruction::vsmRf(
                            false, MemOperand::basePlus(tv, k2 * 16), v,
                            mask));
                    }
                };
                auto step = [&](u32 mask) {
                    b_->emit(Instruction::calcArfImm(
                        AluOp::kAdd, sB, sB, i32(cp.gl.tileBytes()),
                        mask));
                    b_->emit(Instruction::calcArfImm(
                        AluOp::kAdd, sV, sV, i32(P() * gtx * 4), mask));
                };
                if (fullCols > 0) {
                    auto loop = b_->loopBegin(fullCols);
                    body(ownerAll);
                    step(ownerAll);
                    b_->loopEnd(loop);
                }
                if (tailPes > 0) {
                    body(activeMask(1u << pgOwner,
                                    (1u << tailPes) - 1));
                }
            }
        }
    }
}

void
StageEmitter::emitRemotePull()
{
    for (CalleePlan &cp : plans_) {
        if (cp.replicated)
            continue;
        i64 gtx = cp.gl.tx();
        i64 segs = gtx / 4;
        {
            for (const auto &[gy, stageIdx] : cp.stageSlotOf) {
                i64 trG = cp.gl.tileRowOfY(gy);
                u32 gvOwner = cp.gl.vaultOfTileRow(trG);
                if (gvOwner == V_)
                    continue;
                u32 pgOwner = cp.gl.pgOfTileRow(trG);
                i64 lTR = cp.gl.localTileRow(trG);
                i64 inTileRow = (gy - cp.gl.region().y.lo) % cp.gl.ty();
                u16 ownerChip = u16(gvOwner / cfg_.vaultsPerCube);
                u16 ownerVault = u16(gvOwner % cfg_.vaultsPerCube);

                for (u32 e = 0; e < P(); ++e) {
                    i64 count = (cp.gl.tilesX() - i64(e) + P() - 1) /
                                i64(P());
                    if (count <= 0)
                        continue;
                    u64 bank0 = cp.gl.baseAddr() +
                                u64(lTR * cp.gl.slotCols()) *
                                    cp.gl.tileBytes() +
                                u64(inTileRow) * gtx * 4;
                    u64 vsm0 = cp.stageBase +
                               u64(stageIdx) * cp.stageRowBytes +
                               u64(e) * gtx * 4;
                    u16 cA = b_->newCrf();
                    b_->emit(Instruction::setiCrf(cA, i32(bank0)));
                    u16 cV = b_->newCrf();
                    b_->emit(Instruction::setiCrf(cV, i32(vsm0)));
                    auto loop = b_->loopBegin(count);
                    for (i64 k2 = 0; k2 < segs; ++k2) {
                        u16 tA = b_->newCrf();
                        b_->emit(Instruction::calcCrfImm(
                            AluOp::kAdd, tA, cA, i32(k2 * 16)));
                        u16 tV = b_->newCrf();
                        b_->emit(Instruction::calcCrfImm(
                            AluOp::kAdd, tV, cV, i32(k2 * 16)));
                        Instruction rq = Instruction::req(
                            ownerChip, ownerVault, u16(pgOwner), u16(e),
                            MemOperand::viaArf(tA), 0);
                        rq.vsmAddr = MemOperand::viaArf(tV);
                        b_->emit(rq);
                    }
                    b_->emit(Instruction::calcCrfImm(
                        AluOp::kAdd, cA, cA, i32(cp.gl.tileBytes())));
                    b_->emit(Instruction::calcCrfImm(
                        AluOp::kAdd, cV, cV, i32(P() * gtx * 4)));
                    b_->loopEnd(loop);
                }
            }
        }
    }
}

// ====================== main-loop fill =============================

std::vector<PgIter>
StageEmitter::buildIters(u32 iter) const
{
    std::vector<PgIter> out;
    for (u32 p = 0; p < cfg_.pgsPerVault; ++p) {
        if (i64(iter) >= L_.tileRowsOwned(V_, p))
            continue;
        PgIter it;
        it.pg = p;
        it.tileRow = L_.firstTileRow(V_, p) + iter;
        it.outY0 = L_.region().y.lo + it.tileRow * L_.ty();
        for (const CalleePlan &cp : plans_) {
            std::vector<RowFill> rows;
            if (!cp.replicated) {
                Interval hull = calleeRowHull(cp, it.outY0);
                Interval own = cp.gl.pixelRowsOfPg(V_, p);
                for (i64 gy = hull.lo; gy <= hull.hi; ++gy) {
                    RowFill rf;
                    rf.rowRel = gy - hull.lo;
                    if (gy > cp.gl.region().y.hi ||
                        gy < cp.gl.region().y.lo) {
                        rf.src = RowSrc::kSkip;
                    } else if (own.contains(gy)) {
                        rf.src = RowSrc::kLocalBank;
                        i64 trG = cp.gl.tileRowOfY(gy);
                        rf.lTR = cp.gl.localTileRow(trG);
                        rf.inTileRow =
                            (gy - cp.gl.region().y.lo) % cp.gl.ty();
                    } else {
                        rf.src = RowSrc::kVsm;
                        rf.stageRow = cp.stageSlotOf.at(gy);
                    }
                    rows.push_back(rf);
                }
            } else {
                for (i64 gy = cp.gl.region().y.lo;
                     gy <= cp.gl.region().y.hi; ++gy) {
                    RowFill rf;
                    rf.rowRel = gy - cp.gl.region().y.lo;
                    rf.src = RowSrc::kLocalBank;
                    rf.inTileRow = rf.rowRel;
                    rows.push_back(rf);
                }
            }
            it.fills.push_back(std::move(rows));
        }
        out.push_back(std::move(it));
    }
    return out;
}

void
StageEmitter::emitFill(const CalleePlan &cp, size_t cpIdx,
                       const std::vector<RowFill> &rows, u32 pgMask,
                       const SRange &sr, i64 tcCountUse)
{
    (void)sr;
    i64 gtx = cp.replicated ? kSimdLanes : cp.gl.tx();
    if (cp.replicated) {
        // One PE per PG loads the shared copy from its own bank.
        u32 mask = activeMask(pgMask, 0x1);
        for (const RowFill &rf : rows) {
            for (i64 c = 0; c * 16 < cp.rowStride; ++c) {
                u64 bank = cp.gl.baseAddr() +
                           cp.gl.linearAddr(cp.gl.region().x.lo,
                                            cp.gl.region().y.lo +
                                                rf.rowRel) +
                           u64(c) * 16;
                u32 dst = u32(cp.pgsmBase + pgsmBufOff() +
                              rf.rowRel * cp.rowStride + c * 16);
                Instruction ld = Instruction::memPgsmBank(
                    false, MemOperand::direct(u32(bank)),
                    MemOperand::direct(dst), mask);
                ld.scratchBank = bankHint();
                b_->emit(ld);
            }
        }
        return;
    }

    i64 segs = gtx / 4;
    i64 a0 = floorMod(tcFirstK(cp, subK_), P());
    i64 slotOffK = slotBaseOffK(cp, subK_);

    for (const RowFill &rf : rows) {
        if (rf.src == RowSrc::kSkip)
            continue;
        if (rf.src == RowSrc::kLocalBank) {
            // Group needed tile columns by slot delta; within a chunk
            // rel = delta*P + pe - a0, so the PGSM destination is affine
            // in the PE id.
            std::map<i64, u32> chunks; // slot delta -> PE mask
            for (i64 rel = 0; rel < tcCountUse; ++rel) {
                i64 pe = (a0 + rel) % P();
                i64 delta = (a0 + rel) / P();
                chunks[delta] |= 1u << pe;
            }
            for (const auto &[delta, peM] : chunks) {
                {
                    i64 relBase = delta * P() - a0;
                    u32 mask = activeMask(pgMask, peM);
                    for (i64 k2 = 0; k2 < segs; ++k2) {
                        i64 bankConst =
                            i64(cp.gl.baseAddr()) +
                            (rf.lTR * cp.gl.slotCols() + delta +
                             slotOffK) *
                                i64(cp.gl.tileBytes()) +
                            rf.inTileRow * gtx * 4 + k2 * 16;
                        i64 pgsmConst = cp.pgsmBase + pgsmBufOff() +
                                        rf.rowRel * cp.rowStride +
                                        relBase * gtx * 4 + k2 * 16;
                        Instruction ld = Instruction::memPgsmBank(
                            false,
                            MemOperand::basePlus(sColByte_.at(cpIdx),
                                                 bankConst),
                            MemOperand::basePlus(peTimes(gtx * 4),
                                                 pgsmConst),
                            mask);
                        ld.scratchBank = bankHint();
                        b_->emit(ld);
                    }
                }
            }
        } else { // kVsm
            u16 stagePeA = peTimes(16);
            i64 widthBytes = tcCountUse * gtx * 4;
            i64 nChunks = (widthBytes + i64(P()) * 16 - 1) / (i64(P()) * 16);
            for (i64 c = 0; c < nChunks; ++c) {
                u32 peM = 0;
                for (u32 pe = 0; pe < P(); ++pe)
                    if ((c * P() + pe) * 16 < widthBytes)
                        peM |= 1u << pe;
                u32 mask = activeMask(pgMask, peM);
                // Fresh per chunk: sVsmX is a loop register, so the
                // sum must be recomputed inside the loop body.
                u16 t = b_->newArf();
                b_->emit(Instruction::calcArf(AluOp::kAdd, t, stagePeA,
                                              sVsmX_.at(cpIdx), mask));
                u16 v = b_->newDrf();
                b_->emit(Instruction::vsmRf(
                    true,
                    MemOperand::basePlus(
                        t, i64(cp.stageBase) +
                               rf.stageRow * cp.stageRowBytes +
                               (originPxK(cp, subK_) -
                                originPxK(cp, 0)) *
                                   4 +
                               c * i64(P()) * 16),
                    v, mask));
                Instruction wr = Instruction::pgsmRf(
                    false,
                    MemOperand::basePlus(peTimes(16),
                                         cp.pgsmBase + pgsmBufOff() +
                                             rf.rowRel * cp.rowStride +
                                             c * i64(P()) * 16),
                    v, mask);
                wr.scratchBank = bankHint();
                b_->emit(wr);
            }
        }
    }
}

// ====================== expression compilation =====================

u16
StageEmitter::emitCallLoad(const ExprNode &call, const SRange &sr,
                           i64 outY0ref, i64 yi, i64 chunk, u32 mask,
                           std::map<std::string, u16> &loadCache)
{
    (void)sr;
    const Func *g = call.callee.get();
    size_t cpIdx = planIdx_.at(g);
    const CalleePlan &cp = plans_[cpIdx];
    const std::string &xv = stage_.func->varX();
    const std::string &yv = stage_.func->varY();
    AffineIndex ax = toAffine(call.args[0], xv, yv);
    AffineIndex ay = call.args.size() > 1
                         ? toAffine(call.args[1], xv, yv)
                         : toAffine(Expr::constI(0), xv, yv);
    if (!ax.valid || !ay.valid) {
        if (!(cp.replicated && g->dims() == 1 &&
              stage_.func->usesPgsm()))
            fatal("dynamic index into ", g->name(),
                  " requires a compute_replicated 1D callee and a "
                  "load_pgsm schedule");
        // Data-dependent gather: per-lane DataRF -> AddrRF -> indirect
        // PGSM read (Sec. IV-C).  The clamp in the index expression
        // bounds the accessed region, so the whole table is resident.
        u16 idxVec = emitExpr(call.args[0], sr, outY0ref, yi, chunk,
                              mask, loadCache);
        i64 base = cp.pgsmBase + pgsmBufOff() -
                   cp.gl.region().x.lo * 4;
        u16 v = b_->newDrf();
        for (int lane = 0; lane < kSimdLanes; ++lane) {
            u16 aIdx = b_->newArf();
            b_->emit(Instruction::movDrfArf(true, aIdx, idxVec,
                                            u8(lane), mask));
            u16 aOff = b_->newArf();
            b_->emit(Instruction::calcArfImm(AluOp::kShl, aOff, aIdx, 2,
                                             mask));
            Instruction ld = Instruction::pgsmRf(
                true, MemOperand::basePlus(aOff, base), v, mask, 0);
            ld.vecMask = u8(1u << lane);
            ld.scratchBank = bankHint();
            b_->emit(ld);
        }
        return v;
    }

    if (!stage_.func->usesPgsm()) {
        // Direct own-bank access: identity index, congruent layouts.
        u16 v = b_->newDrf();
        b_->emit(Instruction::memRf(
            false,
            MemOperand::basePlus(sIn_.at(cpIdx),
                                 subK_ * i64(cp.gl.tileBytes()) +
                                     (yi * cp.gl.tx() + chunk * 4) * 4),
            v, mask));
        return v;
    }

    // Row within the callee's PGSM buffer.
    i64 rowVal = ay.eval(0, outY0ref + yi);
    i64 gyLo;
    if (cp.replicated) {
        gyLo = cp.gl.region().y.lo;
    } else {
        gyLo = calleeRowHull(cp, outY0ref).lo;
    }
    i64 rowRel = rowVal - gyLo;
    if (rowRel < 0 || rowRel >= cp.maxRows)
        panic("computed PGSM row ", rowRel, " outside buffer of ",
              g->name());

    i64 originPx = cp.replicated
                       ? cp.gl.region().x.lo
                       : cp.gl.region().x.lo + originPxK(cp, subK_);
    i64 outXBase = L_.region().x.lo + subK_ * i64(P()) * L_.tx() +
                   chunk * 4;

    bool singleLoad = ax.cx % ax.div == 0;
    i64 coefA0; // bytes per PE id
    {
        i64 num = ax.cx * ax.postMul * i64(L_.tx()) * 4;
        if (num % ax.div != 0)
            fatal(stage_.func->name(), "->", g->name(),
                  ": per-PE x offset not exact; adjust tile sizes");
        coefA0 = num / ax.div;
    }

    char key[128];
    std::snprintf(key, sizeof(key),
                  "%s/%lld/%lld/%lld/%lld/%lld/%lld/%u",
                  g->name().c_str(), (long long)rowRel, (long long)ax.cx,
                  (long long)ax.div, (long long)ax.c0 + ax.post0 * 131071,
                  (long long)chunk, (long long)subK_, mask);
    if (auto it = loadCache.find(key); it != loadCache.end())
        return it->second;

    u16 v = b_->newDrf();
    if (singleLoad) {
        i64 stride = (ax.cx / ax.div) * ax.postMul * 4;
        if (stride < 0 || stride > 0xFFFF)
            fatal("unsupported PGSM stride ", stride);
        i64 inPx = ax.eval(outXBase, 0);
        i64 off = cp.pgsmBase + pgsmBufOff() + rowRel * cp.rowStride +
                  (inPx - originPx) * 4;
        Instruction rd = Instruction::pgsmRf(
            true, MemOperand::basePlus(peTimes(coefA0), off), v, mask,
            u16(stride));
        rd.scratchBank = bankHint();
        b_->emit(rd);
    } else {
        // Per-lane loads for fractional strides (e.g. upsample x/2).
        for (int lane = 0; lane < kSimdLanes; ++lane) {
            i64 inPx = ax.eval(outXBase + lane, 0);
            i64 off = cp.pgsmBase + pgsmBufOff() + rowRel * cp.rowStride +
                      (inPx - originPx) * 4;
            Instruction ld = Instruction::pgsmRf(
                true, MemOperand::basePlus(peTimes(coefA0), off), v,
                mask, 0);
            ld.vecMask = u8(1u << lane);
            ld.scratchBank = bankHint();
            b_->emit(ld);
        }
    }
    loadCache[key] = v;
    return v;
}

u16
StageEmitter::emitExpr(const Expr &e, const SRange &sr, i64 outY0ref,
                       i64 yi, i64 chunk, u32 mask,
                       std::map<std::string, u16> &loadCache)
{
    const ExprNode &n = e.node();
    switch (n.kind) {
      case ExprKind::kConstF:
        return b_->floatConst(n.fval);
      case ExprKind::kConstI:
        return b_->intConst(n.ival);
      case ExprKind::kCall:
        if (redActive_) {
            if (n.callee.get() != redSrc_)
                fatal("reduction update may only read its source func");
            return redSrcReg_;
        }
        return emitCallLoad(n, sr, outY0ref, yi, chunk, mask, loadCache);
      case ExprKind::kVar: {
        if (redActive_) {
            if (n.varName == redX_)
                return redXReg_;
            if (n.varName == redY_)
                return redYReg_;
            fatal("unbound variable ", n.varName, " in reduction");
        }
        u16 scalarArf;
        if (n.varName == stage_.func->varX()) {
            // x = sXpx + A0*tx + 4*chunk  (+ per-lane ramp below)
            u16 t = b_->newArf();
            b_->emit(Instruction::calcArf(AluOp::kAdd, t, sXpx_,
                                          peTimes(L_.tx()), mask));
            scalarArf = arfAddImm(
                t, subK_ * i64(P()) * L_.tx() + chunk * 4, mask);
        } else if (n.varName == stage_.func->varY()) {
            // Per-PG strip base from a VSM table (strip boundaries are
            // proportional, not affine in the PG id).
            std::vector<i32> firstRowPx(cfg_.pgsPerVault);
            for (u32 p = 0; p < cfg_.pgsPerVault; ++p)
                firstRowPx[p] =
                    i32(L_.firstTileRow(V_, p) * L_.ty());
            u16 yBase = pgTableArf(firstRowPx);
            scalarArf = arfAddImm(
                yBase,
                L_.region().y.lo + iterLocal_ * L_.ty() + yi, mask);
        } else {
            fatal("unbound variable ", n.varName, " in ",
                  stage_.func->name());
        }
        u16 d0 = b_->newDrf();
        Instruction mv = Instruction::movDrfArf(false, scalarArf, d0, 0,
                                                mask);
        b_->emit(mv);
        // Splat lane 0 then add the lane ramp for x.
        u16 splat = b_->newDrf();
        Instruction sp = Instruction::comp(AluOp::kAdd, DType::kI32,
                                           CompMode::kScalarVec, splat,
                                           d0, b_->intConst(0),
                                           kFullVecMask, mask);
        b_->emit(sp);
        if (n.varName == stage_.func->varX()) {
            u16 withRamp = b_->newDrf();
            b_->emit(Instruction::comp(AluOp::kAdd, DType::kI32,
                                       CompMode::kVecVec, withRamp, splat,
                                       b_->laneRampI(), kFullVecMask,
                                       mask));
            return withRamp;
        }
        return splat;
      }
      case ExprKind::kCastI: {
        u16 v = emitExpr(n.kids[0], sr, outY0ref, yi, chunk, mask,
                         loadCache);
        if (isIntExpr(n.kids[0]))
            return v;
        u16 d = b_->newDrf();
        b_->emit(Instruction::comp(AluOp::kCvtF2I, DType::kI32,
                                   CompMode::kVecVec, d, v, v,
                                   kFullVecMask, mask));
        return d;
      }
      case ExprKind::kCastF: {
        u16 v = emitExpr(n.kids[0], sr, outY0ref, yi, chunk, mask,
                         loadCache);
        if (!isIntExpr(n.kids[0]))
            return v;
        u16 d = b_->newDrf();
        b_->emit(Instruction::comp(AluOp::kCvtI2F, DType::kF32,
                                   CompMode::kVecVec, d, v, v,
                                   kFullVecMask, mask));
        return d;
      }
      case ExprKind::kClamp: {
        bool isInt = isIntExpr(n.kids[0]);
        DType dt = isInt ? DType::kI32 : DType::kF32;
        u16 v = emitExpr(n.kids[0], sr, outY0ref, yi, chunk, mask,
                         loadCache);
        u16 lo = emitExpr(n.kids[1], sr, outY0ref, yi, chunk, mask,
                          loadCache);
        u16 hi = emitExpr(n.kids[2], sr, outY0ref, yi, chunk, mask,
                          loadCache);
        u16 t = b_->newDrf();
        b_->emit(Instruction::comp(AluOp::kMax, dt, CompMode::kVecVec, t,
                                   v, lo, kFullVecMask, mask));
        u16 d = b_->newDrf();
        b_->emit(Instruction::comp(AluOp::kMin, dt, CompMode::kVecVec, d,
                                   t, hi, kFullVecMask, mask));
        return d;
      }
      default:
        break;
    }

    AluOp op;
    switch (n.kind) {
      case ExprKind::kAdd: op = AluOp::kAdd; break;
      case ExprKind::kSub: op = AluOp::kSub; break;
      case ExprKind::kMul: op = AluOp::kMul; break;
      case ExprKind::kDiv: op = AluOp::kDiv; break;
      case ExprKind::kMin: op = AluOp::kMin; break;
      case ExprKind::kMax: op = AluOp::kMax; break;
      default: panic("emitExpr: unhandled expr kind");
    }
    bool isInt = isIntExpr(e);
    u16 a = emitExpr(n.kids[0], sr, outY0ref, yi, chunk, mask, loadCache);
    u16 bb = emitExpr(n.kids[1], sr, outY0ref, yi, chunk, mask,
                      loadCache);
    u16 d = b_->newDrf();
    b_->emit(Instruction::comp(op, isInt ? DType::kI32 : DType::kF32,
                               CompMode::kVecVec, d, a, bb, kFullVecMask,
                               mask));
    return d;
}

// ====================== pointwise main =============================

void
StageEmitter::emitComputeBody(u32 pgMaskAll, const SRange &sr,
                              i64 iterLocal, i64 outY0ref)
{
    iterLocal_ = iterLocal;
    u32 mask = activeMask(pgMaskAll, sr.peMask);
    i64 chunksX = L_.tx() / kSimdLanes;
    // One load cache for the whole body: vertical stencil taps hit the
    // same PGSM words on consecutive rows, so keeping loaded vectors
    // live across yi iterations removes most reloads.  The cap bounds
    // DataRF pressure (beyond it the allocator would start spilling).
    std::map<std::string, u16> loadCache;
    for (i64 yi = 0; yi < L_.ty(); ++yi) {
        for (i64 c = 0; c < chunksX; ++c) {
            if (loadCache.size() > 40)
                loadCache.clear();
            u16 v = emitExpr(stage_.rhs, sr, outY0ref, yi, c, mask,
                             loadCache);
            if (isIntExpr(stage_.rhs)) {
                u16 d = b_->newDrf();
                b_->emit(Instruction::comp(AluOp::kCvtI2F, DType::kF32,
                                           CompMode::kVecVec, d, v, v,
                                           kFullVecMask, mask));
                v = d;
            }
            b_->emit(Instruction::memRf(
                true,
                MemOperand::basePlus(sOut_,
                                     subK_ * i64(L_.tileBytes()) +
                                         (yi * L_.tx() + c * 4) * 4),
                v, mask));
        }
    }
}

void
StageEmitter::prematerialize(const Expr &e)
{
    const ExprNode &n = e.node();
    switch (n.kind) {
      case ExprKind::kConstF:
        b_->floatConst(n.fval);
        return;
      case ExprKind::kConstI:
        b_->intConst(n.ival);
        return;
      case ExprKind::kVar:
        b_->intConst(0);
        b_->laneRampI();
        usesVarX_ = usesVarX_ || n.varName == stage_.func->varX();
        return;
      case ExprKind::kCall:
        for (const Expr &a : n.args)
            prematerialize(a);
        return;
      default:
        for (const Expr &k : n.kids)
            prematerialize(k);
        return;
    }
}

void
StageEmitter::emitPointwise()
{
    buildVaultHaloPlan();
    usesVarX_ = false;
    prematerialize(stage_.rhs);

    // Congruence check for the direct (no-PGSM) path.
    if (!stage_.func->usesPgsm()) {
        for (const CalleePlan &cp : plans_) {
            bool congruent =
                !cp.replicated && cp.gl.region() == L_.region() &&
                cp.gl.tx() == L_.tx() && cp.gl.ty() == L_.ty();
            bool identity = cp.cx == 1 && cp.div == 1;
            for (const CallSite &cs : calleeCalls_.at(cp.g)) {
                if (cs.ax.eval(5, 0) != 5 || cs.ay.eval(0, 7) != 7)
                    identity = false;
            }
            if (!congruent || !identity)
                fatal(stage_.func->name(), ": reads ", cp.g->name(),
                      " non-locally; schedule load_pgsm()");
        }
    }

    emitHaloPush();
    emitRemotePull();

    i64 maxIters = 0;
    for (u32 p = 0; p < cfg_.pgsPerVault; ++p)
        maxIters = std::max(maxIters, L_.tileRowsOwned(V_, p));

    i64 fullGroups = L_.tilesX() / P();
    i64 tailPes = L_.tilesX() % P();
    i64 unroll = 1;
    for (const CalleePlan &cp : plans_)
        unroll = std::lcm(unroll, cp.unroll);
    if (doubleBuf_)
        unroll = std::lcm<i64>(unroll, 2);
    if (unroll > 64)
        fatal(stage_.func->name(), ": combined sub-group unroll ",
              unroll, " too large; adjust tile sizes");

    for (i64 i = 0; i < maxIters; ++i) {
        std::vector<PgIter> iters = buildIters(u32(i));
        if (iters.empty())
            continue;
        u32 pgMaskAll = 0;
        for (const PgIter &it : iters)
            pgMaskAll |= 1u << it.pg;
        u32 allMask = activeMask(pgMaskAll, fullPeMask());

        // Signature groups: PGs whose fill plans are identical share one
        // fill emission.
        std::vector<std::pair<u32, const PgIter *>> groups;
        for (const PgIter &it : iters) {
            bool merged = false;
            for (auto &[m, rep] : groups) {
                if (rep->sameFillAs(it) &&
                    samePhase(*rep, it)) {
                    m |= 1u << it.pg;
                    merged = true;
                    break;
                }
            }
            if (!merged)
                groups.push_back({1u << it.pg, &it});
        }

        // Iteration-scoped address registers.
        sOut_ = b_->newArf();
        b_->arfLoadImm(sOut_,
                       i32(L_.baseAddr() +
                           u64(i) * L_.slotCols() * L_.tileBytes()),
                       allMask);
        sColByte_.clear();
        sVsmX_.clear();
        sIn_.clear();
        for (size_t ci = 0; ci < plans_.size(); ++ci) {
            const CalleePlan &cp = plans_[ci];
            if (!stage_.func->usesPgsm()) {
                sIn_[ci] = b_->newArf();
                b_->arfLoadImm(
                    sIn_[ci],
                    i32(cp.gl.baseAddr() +
                        u64(i) * cp.gl.slotCols() * cp.gl.tileBytes()),
                    allMask);
                continue;
            }
            if (cp.replicated)
                continue;
            sColByte_[ci] = b_->newArf();
            b_->arfLoadImm(sColByte_[ci],
                           i32(floorDiv(cp.tcFirst0, P()) *
                               i64(cp.gl.tileBytes())),
                           allMask);
            sVsmX_[ci] = b_->newArf();
            b_->arfLoadImm(sVsmX_[ci], i32(cp.tcFirst0 * cp.gl.tx() * 4),
                           allMask);
        }
        if (usesVarX_) {
            sXpx_ = b_->newArf();
            b_->arfLoadImm(sXpx_, i32(L_.region().x.lo), allMask);
        }

        auto stepRegs = [&]() {
            // One step covers `unroll` slot-column groups.
            b_->emit(Instruction::calcArfImm(
                AluOp::kAdd, sOut_, sOut_,
                i32(unroll * i64(L_.tileBytes())), allMask));
            for (auto &[ci, reg] : sColByte_) {
                const CalleePlan &cp = plans_[ci];
                i64 adv = unroll * cp.advPx / cp.gl.tx() / i64(P());
                b_->emit(Instruction::calcArfImm(
                    AluOp::kAdd, reg, reg,
                    i32(adv * i64(cp.gl.tileBytes())), allMask));
            }
            for (auto &[ci, reg] : sVsmX_) {
                const CalleePlan &cp = plans_[ci];
                b_->emit(Instruction::calcArfImm(
                    AluOp::kAdd, reg, reg, i32(unroll * cp.advPx * 4),
                    allMask));
            }
            for (auto &[ci, reg] : sIn_) {
                const CalleePlan &cp = plans_[ci];
                b_->emit(Instruction::calcArfImm(
                    AluOp::kAdd, reg, reg,
                    i32(unroll * i64(cp.gl.tileBytes())), allMask));
            }
            if (usesVarX_)
                b_->emit(Instruction::calcArfImm(
                    AluOp::kAdd, sXpx_, sXpx_,
                    i32(unroll * i64(P()) * L_.tx()), allMask));
        };

        auto emitBody = [&](const SRange &sr, i64 subK) {
            subK_ = subK;
            // Fill and compute are emitted per fill-signature group:
            // PGs whose halo classification or resampling phase differs
            // get their own (masked) instruction stream.
            for (const auto &[pgM, rep] : groups) {
                if (stage_.func->usesPgsm()) {
                    for (size_t ci = 0; ci < plans_.size(); ++ci) {
                        i64 widthPx =
                            i64(std::popcount(sr.peMask)) * L_.tx();
                        i64 tcUse = tcCountK(plans_[ci], subK, widthPx);
                        emitFill(plans_[ci], ci, rep->fills[ci], pgM, sr,
                                 tcUse);
                    }
                }
                emitComputeBody(pgM, sr, i, rep->outY0);
            }
            subK_ = 0;
        };

        i64 fullSupers = fullGroups / unroll;
        i64 remGroups = fullGroups % unroll;
        if (fullSupers > 0) {
            auto loop = b_->loopBegin(fullSupers);
            for (i64 k = 0; k < unroll; ++k)
                emitBody({0, fullSupers, fullPeMask()}, k);
            stepRegs();
            b_->loopEnd(loop);
        }
        for (i64 k = 0; k < remGroups; ++k)
            emitBody({fullSupers, 1, fullPeMask()}, k);
        if (tailPes > 0) {
            emitBody({fullSupers, 1, (1u << tailPes) - 1}, remGroups);
        }
    }
}

// ====================== reduction ==================================

void
StageEmitter::emitReduction()
{
    if (stage_.updates.size() != 1)
        fatal(stage_.func->name(), ": exactly one update is supported");
    const UpdateDef &u = stage_.updates[0];
    if (stage_.func->dims() != 1 || u.idxY.defined())
        fatal(stage_.func->name(), ": only 1D reductions are supported");

    // The single tiled source read at identity indices.
    const Func *src = nullptr;
    std::function<void(const Expr &)> findSrc = [&](const Expr &x) {
        const ExprNode &n = x.node();
        if (n.kind == ExprKind::kCall) {
            AffineIndex ax = toAffine(n.args[0], u.dom.x.name,
                                      u.dom.y.name);
            AffineIndex ay = n.args.size() > 1
                                 ? toAffine(n.args[1], u.dom.x.name,
                                            u.dom.y.name)
                                 : AffineIndex{};
            if (!ax.valid || !ay.valid || ax.eval(3, 0) != 3 ||
                ay.eval(0, 9) != 9)
                fatal(stage_.func->name(),
                      ": reduction source must be read at (r.x, r.y)");
            if (src && src != n.callee.get())
                fatal(stage_.func->name(),
                      ": reductions may read one source func");
            src = n.callee.get();
        }
        for (const Expr &k : n.kids)
            findSrc(k);
        if (n.kind == ExprKind::kCall)
            for (const Expr &a : n.args)
                findSrc(a);
    };
    findSrc(u.value);
    findSrc(u.idxX);
    if (!src)
        fatal(stage_.func->name(), ": reduction reads no source");

    const Layout &SL = lay_.of(src);
    if (SL.region().x.extent() != u.dom.extentX ||
        SL.region().y.extent() != std::max<i64>(u.dom.extentY, 1))
        fatal(stage_.func->name(), ": the RDom must cover exactly the "
              "source region");
    if (SL.region().x.extent() % (i64(P()) * SL.tx()) != 0 ||
        SL.region().y.extent() % SL.ty() != 0)
        fatal(stage_.func->name(), ": reduction source extents must be "
              "multiples of the tile geometry (no padded pixels)");

    i64 bins = L_.region().x.extent();
    u32 all = b_->fullMask();
    u64 scratch2 = scratchBase_ + u64(bins) * 16;

    prematerialize(u.value);
    prematerialize(u.idxX);
    b_->intConst(0);
    b_->laneRampI();

    // ---- Phase 0: zero the per-PE partial array ----
    u16 zeroD = b_->newDrf();
    b_->emit(Instruction::reset(zeroD, all));
    {
        u16 a = b_->newArf();
        b_->arfLoadImm(a, i32(scratchBase_), all);
        auto loop = b_->loopBegin(bins);
        b_->emit(Instruction::memRf(true, MemOperand::viaArf(a), zeroD,
                                    all));
        b_->emit(Instruction::calcArfImm(AluOp::kAdd, a, a, 16, all));
        b_->loopEnd(loop);
    }

    // ---- Phase 1: per-PE accumulation over owned source pixels ----
    const ExprNode *valConst =
        u.value.node().kind == ExprKind::kConstF ? &u.value.node()
                                                 : nullptr;
    i64 maxIters = 0;
    for (u32 p = 0; p < cfg_.pgsPerVault; ++p)
        maxIters = std::max(maxIters, SL.tileRowsOwned(V_, p));
    i64 fullGroups = SL.tilesX() / P(); // aligned by the check above
    i64 chunksX = SL.tx() / kSimdLanes;

    for (i64 i = 0; i < maxIters; ++i) {
        u32 pgMask = 0;
        for (u32 p = 0; p < cfg_.pgsPerVault; ++p)
            if (i64(i) < SL.tileRowsOwned(V_, p))
                pgMask |= 1u << p;
        if (pgMask == 0)
            continue;
        u32 mask = activeMask(pgMask, fullPeMask());

        u16 sSrc = b_->newArf();
        b_->arfLoadImm(sSrc,
                       i32(SL.baseAddr() +
                           u64(i) * SL.slotCols() * SL.tileBytes()),
                       mask);
        u16 sX = b_->newArf();
        b_->arfLoadImm(sX, i32(SL.region().x.lo), mask);

        auto loop = b_->loopBegin(fullGroups);
        for (i64 yi = 0; yi < SL.ty(); ++yi) {
            // r.y splat for this row; the per-PG strip base comes from
            // a VSM table (proportional strip boundaries).
            std::vector<i32> firstRowPx(cfg_.pgsPerVault);
            for (u32 p = 0; p < cfg_.pgsPerVault; ++p)
                firstRowPx[p] =
                    i32(SL.firstTileRow(V_, p) * SL.ty());
            u16 yA = arfAddImm(
                pgTableArf(firstRowPx),
                SL.region().y.lo + i * SL.ty() + yi, mask);
            u16 y0 = b_->newDrf();
            b_->emit(Instruction::movDrfArf(false, yA, y0, 0, mask));
            u16 ySplat = b_->newDrf();
            b_->emit(Instruction::comp(AluOp::kAdd, DType::kI32,
                                       CompMode::kScalarVec, ySplat, y0,
                                       b_->intConst(0), kFullVecMask,
                                       mask));
            for (i64 c = 0; c < chunksX; ++c) {
                // r.x vector.
                u16 t = b_->newArf();
                b_->emit(Instruction::calcArf(AluOp::kAdd, t, sX,
                                              peTimes(SL.tx()), mask));
                u16 t2 = arfAddImm(t, c * 4, mask);
                u16 x0 = b_->newDrf();
                b_->emit(Instruction::movDrfArf(false, t2, x0, 0, mask));
                u16 xSplat = b_->newDrf();
                b_->emit(Instruction::comp(
                    AluOp::kAdd, DType::kI32, CompMode::kScalarVec,
                    xSplat, x0, b_->intConst(0), kFullVecMask, mask));
                u16 xVec = b_->newDrf();
                b_->emit(Instruction::comp(
                    AluOp::kAdd, DType::kI32, CompMode::kVecVec, xVec,
                    xSplat, b_->laneRampI(), kFullVecMask, mask));

                // Load the source vector.
                u16 srcV = b_->newDrf();
                b_->emit(Instruction::memRf(
                    false,
                    MemOperand::basePlus(sSrc,
                                         (yi * SL.tx() + c * 4) * 4),
                    srcV, mask));

                // Bin and value vectors.
                redActive_ = true;
                redX_ = u.dom.x.name;
                redY_ = u.dom.y.name;
                redXReg_ = xVec;
                redYReg_ = ySplat;
                redSrc_ = src;
                redSrcReg_ = srcV;
                std::map<std::string, u16> lc;
                u16 binV = emitExpr(u.idxX, {}, 0, 0, 0, mask, lc);
                u16 valV = 0;
                if (!valConst)
                    valV = emitExpr(u.value, {}, 0, 0, 0, mask, lc);
                redActive_ = false;

                // Per-lane indirect read-modify-write.
                for (int lane = 0; lane < kSimdLanes; ++lane) {
                    u16 aBin = b_->newArf();
                    b_->emit(Instruction::movDrfArf(true, aBin, binV,
                                                    u8(lane), mask));
                    u16 aOff = b_->newArf();
                    b_->emit(Instruction::calcArfImm(
                        AluOp::kMul, aOff, aBin, 16, mask));
                    MemOperand slot =
                        MemOperand::basePlus(aOff, i64(scratchBase_));
                    u16 cur = b_->newDrf();
                    b_->emit(Instruction::memRf(false, slot, cur, mask));
                    if (valConst) {
                        b_->emit(Instruction::comp(
                            AluOp::kAdd, DType::kF32, CompMode::kVecVec,
                            cur, cur, b_->floatConst(valConst->fval),
                            0x1, mask));
                    } else {
                        u16 aV = b_->newArf();
                        b_->emit(Instruction::movDrfArf(
                            true, aV, valV, u8(lane), mask));
                        u16 vd = b_->newDrf();
                        b_->emit(Instruction::movDrfArf(false, aV, vd, 0,
                                                        mask));
                        b_->emit(Instruction::comp(
                            AluOp::kAdd, DType::kF32, CompMode::kVecVec,
                            cur, cur, vd, 0x1, mask));
                    }
                    b_->emit(Instruction::memRf(true, slot, cur, mask));
                }
            }
        }
        b_->emit(Instruction::calcArfImm(AluOp::kAdd, sSrc, sSrc,
                                         i32(SL.tileBytes()), mask));
        b_->emit(Instruction::calcArfImm(AluOp::kAdd, sX, sX,
                                         i32(i64(P()) * SL.tx()), mask));
        b_->loopEnd(loop);
    }

    // ---- Phase 2: vault-level reduction onto pg0/pe0 ----
    u32 numPes = cfg_.pesPerVault();
    u32 redStage = b_->vsmAlloc(numPes * 16);
    u32 m0 = activeMask(0x1, 0x1);
    {
        u16 aP = b_->newArf();
        b_->arfLoadImm(aP, i32(scratchBase_), all);
        u16 aVP = b_->newArf();
        b_->arfLoadImm(aVP, i32(scratch2), m0);
        u16 gpe = arfSum(pgTimes(i64(P()) * 16), peTimes(16));
        auto loop = b_->loopBegin(bins);
        u16 part = b_->newDrf();
        b_->emit(Instruction::memRf(false, MemOperand::viaArf(aP), part,
                                    all));
        b_->emit(Instruction::vsmRf(
            false, MemOperand::basePlus(gpe, redStage), part, all));
        u16 acc = b_->newDrf();
        b_->emit(Instruction::reset(acc, m0));
        for (u32 g = 0; g < numPes; ++g) {
            u16 w = b_->newDrf();
            b_->emit(Instruction::vsmRf(
                true, MemOperand::direct(redStage + g * 16), w, m0));
            b_->emit(Instruction::comp(AluOp::kAdd, DType::kF32,
                                       CompMode::kVecVec, acc, acc, w,
                                       kFullVecMask, m0));
        }
        b_->emit(Instruction::memRf(true, MemOperand::viaArf(aVP), acc,
                                    m0));
        b_->emit(Instruction::calcArfImm(AluOp::kAdd, aP, aP, 16, all));
        b_->emit(Instruction::calcArfImm(AluOp::kAdd, aVP, aVP, 16, m0));
        b_->loopEnd(loop);
    }

    // ---- Phase 3: device-level gather on chip0/vault0 ----
    b_->emit(Instruction::sync(7));
    u32 totalVaults = cfg_.cubes * cfg_.vaultsPerCube;
    if (V_ == 0 && totalVaults > 1) {
        u32 batch = std::min<u32>(totalVaults - 1, 16);
        u32 gatherStage = b_->vsmAlloc(batch * u32(bins) * 16);
        u32 done = 0;
        bool firstBatch = true;
        while (done < totalVaults - 1) {
            u32 count = std::min(batch, totalVaults - 1 - done);
            for (u32 s = 0; s < count; ++s) {
                u32 gv = 1 + done + s;
                u16 cA = b_->newCrf();
                b_->emit(Instruction::setiCrf(cA, i32(scratch2)));
                u16 cV = b_->newCrf();
                b_->emit(Instruction::setiCrf(
                    cV, i32(gatherStage + s * u32(bins) * 16)));
                auto loop = b_->loopBegin(bins);
                Instruction rq = Instruction::req(
                    u16(gv / cfg_.vaultsPerCube),
                    u16(gv % cfg_.vaultsPerCube), 0, 0,
                    MemOperand::viaArf(cA), 0);
                rq.vsmAddr = MemOperand::viaArf(cV);
                b_->emit(rq);
                b_->emit(Instruction::calcCrfImm(AluOp::kAdd, cA, cA, 16));
                b_->emit(Instruction::calcCrfImm(AluOp::kAdd, cV, cV, 16));
                b_->loopEnd(loop);
            }
            // Accumulate this batch into the output storage.
            u16 aOut = b_->newArf();
            b_->arfLoadImm(aOut, i32(L_.baseAddr()), m0);
            u16 aOwn = b_->newArf();
            b_->arfLoadImm(aOwn, i32(scratch2), m0);
            std::vector<u16> aStage(count);
            for (u32 s = 0; s < count; ++s) {
                aStage[s] = b_->newArf();
                b_->arfLoadImm(aStage[s],
                               i32(gatherStage + s * u32(bins) * 16), m0);
            }
            auto loop = b_->loopBegin(bins);
            u16 acc = b_->newDrf();
            b_->emit(Instruction::memRf(
                false,
                MemOperand::viaArf(firstBatch ? aOwn : aOut), acc, m0));
            for (u32 s = 0; s < count; ++s) {
                u16 w = b_->newDrf();
                b_->emit(Instruction::vsmRf(
                    true, MemOperand::viaArf(aStage[s]), w, m0));
                b_->emit(Instruction::comp(AluOp::kAdd, DType::kF32,
                                           CompMode::kVecVec, acc, acc,
                                           w, kFullVecMask, m0));
            }
            b_->emit(Instruction::memRf(true, MemOperand::viaArf(aOut),
                                        acc, m0));
            b_->emit(Instruction::calcArfImm(AluOp::kAdd, aOut, aOut, 16,
                                             m0));
            b_->emit(Instruction::calcArfImm(AluOp::kAdd, aOwn, aOwn, 16,
                                             m0));
            for (u32 s = 0; s < count; ++s)
                b_->emit(Instruction::calcArfImm(AluOp::kAdd, aStage[s],
                                                 aStage[s], 16, m0));
            b_->loopEnd(loop);
            done += count;
            firstBatch = false;
        }
    }
}

// ====================== replicated =================================

void
StageEmitter::emitReplicated()
{
    if (stage_.func->dims() != 1)
        fatal(stage_.func->name(),
              ": compute_replicated supports 1D funcs only");
    if (!stage_.calls.empty())
        fatal(stage_.func->name(),
              ": compute_replicated funcs must not call other funcs");
    prematerialize(stage_.rhs);
    b_->intConst(0);
    b_->laneRampI();
    u32 all = b_->fullMask();
    i64 extent = L_.region().x.extent();
    i64 vecs = (extent + kSimdLanes - 1) / kSimdLanes;
    for (i64 v = 0; v < vecs; ++v) {
        u16 xVec = b_->newDrf();
        b_->emit(Instruction::comp(
            AluOp::kAdd, DType::kI32, CompMode::kVecVec, xVec,
            b_->intConst(i32(L_.region().x.lo + v * kSimdLanes)),
            b_->laneRampI(), kFullVecMask, all));
        redActive_ = true;
        redX_ = stage_.func->varX();
        redY_ = stage_.func->varY();
        redXReg_ = xVec;
        redYReg_ = xVec;
        redSrc_ = nullptr;
        std::map<std::string, u16> lc;
        u16 val = emitExpr(stage_.rhs, {}, 0, 0, 0, all, lc);
        redActive_ = false;
        if (isIntExpr(stage_.rhs)) {
            u16 d = b_->newDrf();
            b_->emit(Instruction::comp(AluOp::kCvtI2F, DType::kF32,
                                       CompMode::kVecVec, d, val, val,
                                       kFullVecMask, all));
            val = d;
        }
        b_->emit(Instruction::memRf(
            true,
            MemOperand::direct(u32(L_.baseAddr() + u64(v) * 16)), val,
            all));
    }
}

} // namespace

u64
CompiledPipeline::totalInstructions() const
{
    u64 n = 0;
    for (const CompiledKernel &k : kernels)
        for (const auto &p : k.perVault)
            n += p.size();
    return n;
}

CompiledPipeline
compilePipeline(const PipelineDef &def, const HardwareConfig &cfg,
                const CompilerOptions &opts)
{
    CompiledPipeline out;
    out.def = def;
    out.cfg = cfg;
    out.options = opts;
    out.analysis = std::make_shared<PipelineAnalysis>(analyzePipeline(def));
    out.layouts = std::make_shared<LayoutMap>(cfg, *out.analysis);
    out.scratchBase = (out.layouts->heapEnd() + 63) & ~u64(63);

    // Reserve scratch (reduction partials) and spill windows after the
    // data heap: an eighth of the bank each, like a linker script would.
    u64 scratchBytes = cfg.bankBytes / 8;
    out.spillBase = out.scratchBase + scratchBytes;
    if (out.spillBase + cfg.bankBytes / 8 > cfg.bankBytes)
        fatal("bank too small: data heap ends at ", out.scratchBase,
              " of ", cfg.bankBytes, " bytes");

    u32 totalVaults = cfg.cubes * cfg.vaultsPerCube;
    for (const StageInfo &s : out.analysis->stages) {
        if (s.func->isInput())
            continue;
        StageEmitter emitter(cfg, *out.analysis, *out.layouts, s,
                             out.scratchBase);
        CompiledKernel kern;
        kern.stage = s.func->name();
        kern.perVault.resize(totalVaults);
        for (u32 gv = 0; gv < totalVaults; ++gv) {
            BuilderProgram bp = emitter.emitVault(gv);
            BackendStats bs;
            kern.perVault[gv] =
                runBackend(cfg, std::move(bp), opts, out.spillBase, &bs);
            kern.backend.spilledRegs += bs.spilledRegs;
            kern.backend.physicalDrfUsed = std::max(
                kern.backend.physicalDrfUsed, bs.physicalDrfUsed);
            kern.backend.instructions += bs.instructions;
        }
        out.kernels.push_back(std::move(kern));
    }

    // Opt-in compile-time gate: refuse to hand the simulator a program
    // the static verifier rejects (Sec. IV-B's issue logic assumes
    // well-formed programs; malformed ones hang or corrupt silently).
    if (opts.verify) {
        for (const CompiledKernel &k : out.kernels) {
            VerifyReport rep = verifyDevice(cfg, k.perVault);
            if (!rep.pass())
                fatal("kernel '", k.stage, "' failed verification (",
                      rep.errorCount(), " errors):\n", rep.toString());
        }
    }

    // Opt-in conflict gate: prove the per-vault programs touch
    // disjoint memory between barriers (V14-V18) before the simulator
    // runs them concurrently.
    if (opts.analyze) {
        for (const CompiledKernel &k : out.kernels) {
            std::vector<ProgramAnalysis> pas;
            pas.reserve(k.perVault.size());
            std::vector<const ProgramAnalysis *> ptrs;
            for (size_t v = 0; v < k.perVault.size(); ++v) {
                pas.push_back(analyzeProgram(
                    cfg, k.perVault[v], int(v / cfg.vaultsPerCube),
                    int(v % cfg.vaultsPerCube)));
                ptrs.push_back(&pas.back());
            }
            ConflictReport rep = analyzeDeviceConflicts(cfg, ptrs);
            if (!rep.findings.empty()) {
                std::string msgs;
                for (const ConflictFinding &f : rep.findings) {
                    msgs += conflictKindName(f.kind);
                    msgs += ": ";
                    msgs += f.message;
                    msgs += '\n';
                }
                fatal("kernel '", k.stage, "' failed conflict analysis "
                      "(", rep.findings.size(), " findings):\n", msgs);
            }
        }
    }
    return out;
}

} // namespace ipim
