#include "compiler/layout.h"

#include "common/logging.h"

namespace ipim {

Layout
Layout::tiled(const HardwareConfig &cfg, const Rect &region, i32 tx,
              i32 ty, u64 baseAddr)
{
    if (tx <= 0 || ty <= 0 || tx % kSimdLanes != 0)
        fatal("tile width must be a positive multiple of ", kSimdLanes);
    Layout l;
    l.kind_ = LayoutKind::kTiled;
    l.region_ = region;
    l.base_ = baseAddr;
    l.tx_ = tx;
    l.ty_ = ty;
    l.pesPerPg_ = cfg.pesPerPg;
    l.totalVaults_ = cfg.cubes * cfg.vaultsPerCube;
    l.pgsPerVault_ = cfg.pgsPerVault;
    l.vaultsPerCube_ = cfg.vaultsPerCube;
    // Auto-split the tile height while process groups would sit idle:
    // every PG owns whole rows of tiles, so more tile rows use more of
    // the device — but thinner tiles refetch more vertical halo.  Stop
    // splitting once at least half the PG strips have work; past that
    // point the halo overhead outweighs the extra parallelism.
    i64 totalPgs = i64(l.totalVaults_) * cfg.pgsPerVault;
    while (l.ty_ > 1 &&
           2 * ((region.y.extent() + l.ty_ - 1) / l.ty_) < totalPgs)
        l.ty_ = std::max<i32>(1, l.ty_ / 2);
    ty = l.ty_;
    l.tilesX_ = (region.x.extent() + tx - 1) / tx;
    l.tilesY_ = (region.y.extent() + ty - 1) / ty;
    l.slotCols_ = (l.tilesX_ + cfg.pesPerPg - 1) / cfg.pesPerPg;
    l.tileRowsPerVault_ =
        (l.tilesY_ + l.totalVaults_ - 1) / l.totalVaults_;
    l.tileRowsPerPg_ =
        (l.tileRowsPerVault_ + cfg.pgsPerVault - 1) / cfg.pgsPerVault;
    l.bytesPerPe_ =
        u64(l.tileRowsPerPg_) * l.slotCols_ * l.tileBytes();
    return l;
}

Layout
Layout::replicated(const Rect &region, u64 baseAddr)
{
    Layout l;
    l.kind_ = LayoutKind::kReplicated;
    l.region_ = region;
    l.base_ = baseAddr;
    u64 paddedW = u64((region.x.extent() + kSimdLanes - 1) / kSimdLanes) *
                  kSimdLanes;
    l.bytesPerPe_ = paddedW * u64(region.y.extent()) * 4;
    return l;
}

Layout
Layout::singleton(const Rect &region, u64 baseAddr)
{
    // Reduction outputs keep one value per 128b vector (lane 0) so the
    // read-modify-write loop of the accumulation phase can use whole
    // CAS accesses without lane shuffles.
    Layout l = replicated(region, baseAddr);
    l.kind_ = LayoutKind::kSingleton;
    l.bytesPerPe_ = u64(region.x.extent()) * region.y.extent() *
                    kVectorBytes;
    return l;
}

i64
Layout::numStrips() const
{
    return i64(totalVaults_) * pgsPerVault_;
}

i64
Layout::stripOfTileRow(i64 tr) const
{
    // Proportional assignment: strip boundaries sit at the same image
    // fraction for every realized func, so producer and consumer strips
    // (and pyramid levels) stay aligned and halo exchange stays local.
    return tr * numStrips() / tilesY_;
}

i64
Layout::stripFirstRow(i64 strip) const
{
    return (strip * tilesY_ + numStrips() - 1) / numStrips();
}

u32
Layout::vaultOfTileRow(i64 tr) const
{
    return u32(stripOfTileRow(tr) / pgsPerVault_);
}

u32
Layout::pgOfTileRow(i64 tr) const
{
    return u32(stripOfTileRow(tr) % pgsPerVault_);
}

i64
Layout::localTileRow(i64 tr) const
{
    return tr - stripFirstRow(stripOfTileRow(tr));
}

i64
Layout::tileRowsOwned(u32 globalVault, u32 pg) const
{
    i64 strip = i64(globalVault) * pgsPerVault_ + pg;
    i64 first = stripFirstRow(strip);
    i64 next = strip + 1 >= numStrips() ? tilesY_
                                        : stripFirstRow(strip + 1);
    return std::max<i64>(0, std::min(next, tilesY_) - first);
}

i64
Layout::firstTileRow(u32 globalVault, u32 pg) const
{
    return stripFirstRow(i64(globalVault) * pgsPerVault_ + pg);
}

Interval
Layout::pixelRowsOfPg(u32 globalVault, u32 pg) const
{
    i64 rows = tileRowsOwned(globalVault, pg);
    if (rows == 0)
        return {};
    i64 tr0 = firstTileRow(globalVault, pg);
    i64 y0 = region_.y.lo + tr0 * ty_;
    i64 y1 = std::min(region_.y.hi, y0 + rows * ty_ - 1);
    return {y0, y1};
}

i64
Layout::slotOf(i64 tileCol, i64 tileRow) const
{
    return localTileRow(tileRow) * slotCols_ + tileCol / pesPerPg_;
}

u64
Layout::inTileOffset(i64 x, i64 y) const
{
    i64 inX = (x - region_.x.lo) % tx_;
    i64 inY = (y - region_.y.lo) % ty_;
    return u64(inY) * tx_ * 4 + u64(inX) * 4;
}

PixelHome
Layout::homeOf(i64 x, i64 y) const
{
    if (!region_.x.contains(x) || !region_.y.contains(y))
        panic("homeOf(", x, ",", y, ") outside region");
    PixelHome h;
    if (kind_ != LayoutKind::kTiled) {
        // Replicated: every PE holds a copy; report the canonical one.
        h.addr = base_ + linearAddr(x, y);
        return h;
    }
    i64 tc = tileColOfX(x);
    i64 tr = tileRowOfY(y);
    u32 gv = vaultOfTileRow(tr);
    h.chip = gv / vaultsPerCube_;
    h.vault = gv % vaultsPerCube_;
    h.pg = pgOfTileRow(tr);
    h.pe = u32(tc % pesPerPg_);
    h.addr = base_ + u64(slotOf(tc, tr)) * tileBytes() +
             inTileOffset(x, y);
    return h;
}

u64
Layout::linearAddr(i64 x, i64 y) const
{
    if (kind_ == LayoutKind::kSingleton) {
        return (u64(y - region_.y.lo) * region_.x.extent() +
                u64(x - region_.x.lo)) *
               kVectorBytes;
    }
    u64 paddedW = u64((region_.x.extent() + kSimdLanes - 1) / kSimdLanes) *
                  kSimdLanes;
    return u64(y - region_.y.lo) * paddedW * 4 + u64(x - region_.x.lo) * 4;
}

const Layout &
LayoutMap::of(const FuncPtr &f) const
{
    return of(f.get());
}

const Layout &
LayoutMap::of(const Func *f) const
{
    auto it = layouts_.find(f);
    if (it == layouts_.end())
        panic("no layout for func ", f->name());
    return it->second;
}

LayoutMap::LayoutMap(const HardwareConfig &cfg, const PipelineAnalysis &pa)
{
    u64 heap = 0;
    auto align16 = [](u64 v) { return (v + 15) & ~u64(15); };
    for (const StageInfo &s : pa.stages) {
        Layout l;
        StorageKind sk = s.func->storage();
        if (s.func->isInput())
            sk = StorageKind::kTiled;
        if (s.isReduction) {
            l = Layout::singleton(s.region, heap);
        } else if (sk == StorageKind::kReplicated) {
            l = Layout::replicated(s.region, heap);
        } else {
            l = Layout::tiled(cfg, s.region, s.func->tileX(),
                              s.func->tileY(), heap);
        }
        heap = align16(heap + l.bytesPerPe());
        if (heap > cfg.bankBytes)
            fatal("pipeline needs ", heap,
                  " bytes per bank; banks have ", cfg.bankBytes);
        layouts_.emplace(s.func.get(), l);
    }
    heapEnd_ = heap;
}

} // namespace ipim
