#include "compiler/func.h"

#include "common/logging.h"

namespace ipim {

void
Func::define(Var x, Var y, Expr rhs)
{
    if (dims_ != 2)
        fatal("2D definition of ", name_, " which has ", dims_, " dims");
    if (rhs_.defined())
        fatal("redefinition of ", name_);
    varX_ = x.name;
    varY_ = y.name;
    rhs_ = std::move(rhs);
}

void
Func::define(Var x, Expr rhs)
{
    if (dims_ != 1)
        fatal("1D definition of ", name_, " which has ", dims_, " dims");
    if (rhs_.defined())
        fatal("redefinition of ", name_);
    varX_ = x.name;
    varY_ = "__none";
    rhs_ = std::move(rhs);
}

void
Func::defineUpdate(UpdateDef update)
{
    if (!rhs_.defined())
        fatal("update of ", name_, " before its pure definition");
    if (!update.idxX.defined())
        fatal("update of ", name_, " needs a scatter index");
    if (dims_ == 2 && !update.idxY.defined())
        fatal("2D update of ", name_, " needs both scatter indices");
    updates_.push_back(std::move(update));
}

Func &
Func::computeRoot()
{
    storage_ = StorageKind::kTiled;
    return *this;
}

Func &
Func::computeReplicated()
{
    storage_ = StorageKind::kReplicated;
    return *this;
}

Func &
Func::ipimTile(int tx, int ty)
{
    if (tx <= 0 || ty <= 0 || tx % kSimdLanes != 0)
        fatal("ipim_tile of ", name_, ": tile width must be a positive "
              "multiple of the SIMD length");
    tileX_ = tx;
    tileY_ = ty;
    return *this;
}

Func &
Func::loadPgsm()
{
    loadPgsm_ = true;
    return *this;
}

Func &
Func::vectorize(int factor)
{
    if (factor != kSimdLanes)
        fatal("vectorize(", factor, "): iPIM's SIMD length is ",
              kSimdLanes);
    return *this;
}

Expr
Func::operator()(Expr ix, Expr iy)
{
    return Expr::call(shared_from_this(), {std::move(ix), std::move(iy)});
}

Expr
Func::operator()(Expr ix)
{
    return Expr::call(shared_from_this(), {std::move(ix)});
}

Expr
at(const FuncPtr &f, Expr ix, Expr iy)
{
    return Expr::call(f, {std::move(ix), std::move(iy)});
}

Expr
at(const FuncPtr &f, Expr ix)
{
    return Expr::call(f, {std::move(ix)});
}

} // namespace ipim
