/**
 * @file
 * CodeBuilder: emission of SIMB instructions over virtual registers,
 * with labels and counted-loop helpers.  The backend passes
 * (register allocation, memory-order enforcement, instruction
 * reordering) consume its output (Sec. V-C, Fig. 4).
 *
 * Virtual register spaces: DRF/CRF indices are all virtual; ARF indices
 * 0..3 are the pre-colored identity registers A0-A3 and virtual numbering
 * starts above them.
 */
#ifndef IPIM_COMPILER_BUILDER_H_
#define IPIM_COMPILER_BUILDER_H_

#include <map>
#include <vector>

#include "common/config.h"
#include "isa/instruction.h"
#include "sim/pe.h"

namespace ipim {

/** Builder output: instructions + label binding positions. */
struct BuilderProgram
{
    std::vector<Instruction> insts;
    std::map<i32, size_t> labelPos; ///< label id -> instruction index
};

class CodeBuilder
{
  public:
    explicit CodeBuilder(const HardwareConfig &cfg);

    // ---- virtual registers ----
    u16 newDrf() { return nextDrf_++; }
    u16 newArf() { return nextArf_++; }
    u16 newCrf() { return nextCrf_++; }

    /** Pre-colored identity ARF registers. */
    static u16 peId() { return kArfPeId; }
    static u16 pgId() { return kArfPgId; }
    static u16 vaultIdReg() { return kArfVaultId; }
    static u16 chipIdReg() { return kArfChipId; }

    /** Full simb mask for the configured vault. */
    u32 fullMask() const;

    /** simb mask of one PE slot across a set of PGs. */
    u32 maskFor(u32 pgMask, u32 peMask) const;

    void emit(Instruction inst) { prog_.insts.push_back(inst); }

    // ---- labels & loops ----
    i32 newLabel() { return nextLabel_++; }
    void bind(i32 label);

    /**
     * A counted loop executing @p count times (count must be >= 1 and is
     * a compile-time constant).  Usage:
     *   auto l = b.loopBegin(n); ... body ...; b.loopEnd(l);
     */
    struct Loop
    {
        u16 counter;
        u16 target;
        i32 headLabel;
    };
    Loop loopBegin(i64 count);
    void loopEnd(const Loop &l);

    // ---- common idioms ----
    /** ARF dst = immediate (via the zero register trick). */
    void arfLoadImm(u16 dst, i32 imm, u32 mask);

    /** A virtual ARF register that always holds zero (per mask). */
    u16 zeroArf(u32 mask);

    /**
     * A DRF register with all four lanes holding float @p v (materialized
     * once through the VSM constant pool).
     */
    u16 floatConst(f32 v);

    /** A DRF register with lanes [0, 1, 2, 3] as floats. */
    u16 laneRampF();

    /** A DRF register with lanes [0, 1, 2, 3] as INT32. */
    u16 laneRampI();

    /** A DRF register with all lanes holding int @p v. */
    u16 intConst(i32 v);

    /** Allocate @p bytes in the VSM (16B aligned); returns offset. */
    u32 vsmAlloc(u32 bytes);

    const HardwareConfig &cfg() const { return cfg_; }

    /** Finish: appends sync+halt, returns the program. */
    BuilderProgram finish(u32 syncPhase);

    size_t size() const { return prog_.insts.size(); }

  private:
    u16 materializeConst(const VecWord &v, u8 lanesUsed);

    const HardwareConfig &cfg_;
    BuilderProgram prog_;
    u16 nextDrf_ = 0;
    u16 nextArf_ = kNumReservedArf;
    u16 nextCrf_ = 0;
    i32 nextLabel_ = 0;
    u32 vsmTop_ = 0;

    u16 zeroArfReg_ = 0xFFFF;
    std::map<u32, u16> floatConsts_; ///< bit pattern -> DRF virtual
    std::map<i32, u16> intConsts_;
    u16 laneRampReg_ = 0xFFFF;
    u16 laneRampIReg_ = 0xFFFF;
};

} // namespace ipim

#endif // IPIM_COMPILER_BUILDER_H_
