#include "compiler/passes.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/logging.h"

namespace ipim {

namespace {

/** Combined virtual-register key: file in the high bits. */
u32
regKey(RegFile f, u16 idx)
{
    return (u32(f) << 16) | idx;
}

RegFile
keyFile(u32 k)
{
    return RegFile(k >> 16);
}

/**
 * Visit every register field of an instruction with its role, mirroring
 * Instruction::accessSet().  The callback may rewrite the field.
 */
template <typename Fn>
void
visitRegFields(Instruction &inst, Fn &&fn)
{
    auto mem = [&](MemOperand &m) {
        if (m.indirect) {
            u16 v = u16(m.value);
            fn(RegFile::kArf, v, true, false);
            m.value = v;
        }
    };
    switch (inst.op) {
      case Opcode::kComp:
        fn(RegFile::kDrf, inst.src1, true, false);
        fn(RegFile::kDrf, inst.src2, true, false);
        fn(RegFile::kDrf, inst.dst, inst.aluOp == AluOp::kMac, true);
        break;
      case Opcode::kCalcArf:
        fn(RegFile::kArf, inst.src1, true, false);
        if (!inst.srcImm)
            fn(RegFile::kArf, inst.src2, true, false);
        fn(RegFile::kArf, inst.dst, false, true);
        break;
      case Opcode::kStRf:
        fn(RegFile::kDrf, inst.dst, true, false);
        mem(inst.dramAddr);
        break;
      case Opcode::kLdRf:
        mem(inst.dramAddr);
        fn(RegFile::kDrf, inst.dst, false, true);
        break;
      case Opcode::kStPgsm:
      case Opcode::kLdPgsm:
        mem(inst.dramAddr);
        mem(inst.pgsmAddr);
        break;
      case Opcode::kRdPgsm:
        mem(inst.pgsmAddr);
        fn(RegFile::kDrf, inst.dst, false, true);
        break;
      case Opcode::kWrPgsm:
        mem(inst.pgsmAddr);
        fn(RegFile::kDrf, inst.dst, true, false);
        break;
      case Opcode::kRdVsm:
        mem(inst.vsmAddr);
        fn(RegFile::kDrf, inst.dst, false, true);
        break;
      case Opcode::kWrVsm:
        mem(inst.vsmAddr);
        fn(RegFile::kDrf, inst.dst, true, false);
        break;
      case Opcode::kMovDrfToArf:
        fn(RegFile::kDrf, inst.src1, true, false);
        fn(RegFile::kArf, inst.dst, false, true);
        break;
      case Opcode::kMovArfToDrf:
        fn(RegFile::kArf, inst.src1, true, false);
        fn(RegFile::kDrf, inst.dst, false, true);
        break;
      case Opcode::kReset:
        fn(RegFile::kDrf, inst.dst, false, true);
        break;
      case Opcode::kJump:
        fn(RegFile::kCrf, inst.dst, true, false);
        break;
      case Opcode::kCjump:
        fn(RegFile::kCrf, inst.src1, true, false);
        fn(RegFile::kCrf, inst.dst, true, false);
        break;
      case Opcode::kCalcCrf:
        fn(RegFile::kCrf, inst.src1, true, false);
        if (!inst.srcImm)
            fn(RegFile::kCrf, inst.src2, true, false);
        fn(RegFile::kCrf, inst.dst, false, true);
        break;
      case Opcode::kSetiCrf:
        fn(RegFile::kCrf, inst.dst, false, true);
        break;
      case Opcode::kReq: {
        // Core-side indirection resolves through the CtrlRF.
        if (inst.dramAddr.indirect) {
            u16 v = u16(inst.dramAddr.value);
            fn(RegFile::kCrf, v, true, false);
            inst.dramAddr.value = v;
        }
        if (inst.vsmAddr.indirect) {
            u16 v = u16(inst.vsmAddr.value);
            fn(RegFile::kCrf, v, true, false);
            inst.vsmAddr.value = v;
        }
        break;
      }
      default:
        break; // seti_vsm, sync, halt, nop: no register fields
    }
}

bool
isBlockEnder(Opcode op)
{
    return op == Opcode::kJump || op == Opcode::kCjump ||
           op == Opcode::kSync || op == Opcode::kHalt;
}

struct Block
{
    size_t begin = 0; ///< index into the instruction vector
    size_t end = 0;   ///< one past the last instruction
    std::vector<int> succs;
};

struct Cfg
{
    std::vector<Block> blocks;
    std::map<i32, int> labelBlock; ///< label id -> block index
};

Cfg
buildCfg(const BuilderProgram &prog)
{
    std::set<size_t> starts;
    starts.insert(0);
    for (const auto &[label, pos] : prog.labelPos)
        starts.insert(pos);
    for (size_t i = 0; i < prog.insts.size(); ++i)
        if (isBlockEnder(prog.insts[i].op))
            starts.insert(i + 1);
    starts.erase(prog.insts.size());

    Cfg cfg;
    std::map<size_t, int> blockAt;
    for (auto it = starts.begin(); it != starts.end(); ++it) {
        Block b;
        b.begin = *it;
        auto next = std::next(it);
        b.end = next == starts.end() ? prog.insts.size() : *next;
        blockAt[b.begin] = int(cfg.blocks.size());
        cfg.blocks.push_back(b);
    }
    for (const auto &[label, pos] : prog.labelPos)
        cfg.labelBlock[label] = blockAt.at(pos);

    // Map branch-target CRF registers to labels via their seti_crf.
    std::map<u16, i32> targetRegLabel;
    for (const Instruction &inst : prog.insts)
        if (inst.op == Opcode::kSetiCrf && inst.label >= 0)
            targetRegLabel[inst.dst] = inst.label;

    for (size_t bi = 0; bi < cfg.blocks.size(); ++bi) {
        Block &b = cfg.blocks[bi];
        if (b.begin == b.end)
            continue;
        const Instruction &last = prog.insts[b.end - 1];
        auto labelSucc = [&](u16 reg) {
            auto it = targetRegLabel.find(reg);
            if (it == targetRegLabel.end())
                fatal("branch target register c", reg,
                      " has no label-bearing seti_crf");
            b.succs.push_back(cfg.labelBlock.at(it->second));
        };
        switch (last.op) {
          case Opcode::kJump:
            labelSucc(last.dst);
            break;
          case Opcode::kCjump:
            labelSucc(last.dst);
            if (bi + 1 < cfg.blocks.size())
                b.succs.push_back(int(bi + 1));
            break;
          case Opcode::kHalt:
            break;
          default:
            if (bi + 1 < cfg.blocks.size())
                b.succs.push_back(int(bi + 1));
            break;
        }
    }
    return cfg;
}

struct UseDef
{
    std::vector<u32> uses;
    std::vector<u32> defs;
};

UseDef
useDef(const Instruction &inst)
{
    UseDef ud;
    visitRegFields(const_cast<Instruction &>(inst),
                   [&](RegFile f, u16 &idx, bool r, bool w) {
                       if (r)
                           ud.uses.push_back(regKey(f, idx));
                       if (w)
                           ud.defs.push_back(regKey(f, idx));
                   });
    return ud;
}

/** Global backward liveness; returns liveOut per instruction index. */
std::vector<std::set<u32>>
liveness(const BuilderProgram &prog, const Cfg &cfg)
{
    size_t n = prog.insts.size();
    std::vector<UseDef> ud(n);
    for (size_t i = 0; i < n; ++i)
        ud[i] = useDef(prog.insts[i]);

    std::vector<std::set<u32>> liveIn(cfg.blocks.size());
    std::vector<std::set<u32>> liveOutB(cfg.blocks.size());
    bool changed = true;
    while (changed) {
        changed = false;
        for (int bi = int(cfg.blocks.size()) - 1; bi >= 0; --bi) {
            const Block &b = cfg.blocks[bi];
            std::set<u32> out;
            for (int s : b.succs)
                out.insert(liveIn[s].begin(), liveIn[s].end());
            std::set<u32> live = out;
            for (size_t i = b.end; i-- > b.begin;) {
                for (u32 d : ud[i].defs)
                    live.erase(d);
                for (u32 u : ud[i].uses)
                    live.insert(u);
            }
            if (out != liveOutB[bi]) {
                liveOutB[bi] = out;
                changed = true;
            }
            if (live != liveIn[bi]) {
                liveIn[bi] = std::move(live);
                changed = true;
            }
        }
    }

    std::vector<std::set<u32>> liveOut(n);
    for (size_t bi = 0; bi < cfg.blocks.size(); ++bi) {
        const Block &b = cfg.blocks[bi];
        std::set<u32> live = liveOutB[bi];
        for (size_t i = b.end; i-- > b.begin;) {
            liveOut[i] = live;
            for (u32 d : ud[i].defs)
                live.erase(d);
            for (u32 u : ud[i].uses)
                live.insert(u);
        }
    }
    return liveOut;
}

/** Result of a coloring attempt. */
struct Coloring
{
    std::map<u32, u16> color;    ///< virtual key -> physical index
    std::vector<u32> spills;     ///< uncolorable DRF virtuals
    u32 maxDrfColor = 0;
};

Coloring
colorRegisters(const HardwareConfig &cfg, const BuilderProgram &prog,
               const Cfg &cfgBlocks, bool maxPolicy,
               const std::set<u32> &spillTemps)
{
    auto liveOut = liveness(prog, cfgBlocks);

    // Interference graph.
    std::map<u32, std::set<u32>> interf;
    std::vector<u32> order; // coloring order = first-def order
    std::set<u32> seen;
    for (size_t i = 0; i < prog.insts.size(); ++i) {
        UseDef ud = useDef(prog.insts[i]);
        for (u32 d : ud.defs) {
            if (keyFile(d) == RegFile::kArf && (d & 0xFFFF) < 4)
                fatal("program writes reserved identity register A",
                      d & 0xFFFF);
            if (!seen.count(d)) {
                seen.insert(d);
                order.push_back(d);
            }
            for (u32 l : liveOut[i]) {
                if (l != d && keyFile(l) == keyFile(d)) {
                    interf[d].insert(l);
                    interf[l].insert(d);
                }
            }
            for (u32 d2 : ud.defs)
                if (d2 != d && keyFile(d2) == keyFile(d)) {
                    interf[d].insert(d2);
                    interf[d2].insert(d);
                }
        }
        // Registers only ever read (constants pre-set by the runtime or
        // identity regs) still need slots.
        for (u32 u : ud.uses) {
            if (keyFile(u) == RegFile::kArf && (u & 0xFFFF) < 4)
                continue;
            if (!seen.count(u)) {
                seen.insert(u);
                order.push_back(u);
            }
        }
    }

    u32 drfColors = cfg.dataRfEntries();
    u32 arfColors = cfg.addrRfEntries();
    u32 crfColors = cfg.ctrlRfEntries;

    Coloring result;
    // Per-file recency stamps for the max policy.
    std::map<RegFile, std::vector<u64>> lastAssign;
    lastAssign[RegFile::kDrf].assign(drfColors, 0);
    lastAssign[RegFile::kArf].assign(arfColors, 0);
    lastAssign[RegFile::kCrf].assign(crfColors, 0);
    u64 stamp = 1;

    for (u32 v : order) {
        RegFile f = keyFile(v);
        u32 numColors = f == RegFile::kDrf   ? drfColors
                        : f == RegFile::kArf ? arfColors
                                             : crfColors;
        u32 firstColor = f == RegFile::kArf ? kNumReservedArf : 0;
        std::set<u16> taken;
        if (auto it = interf.find(v); it != interf.end())
            for (u32 nb : it->second)
                if (auto c = result.color.find(nb);
                    c != result.color.end())
                    taken.insert(c->second);

        i64 best = -1;
        if (maxPolicy) {
            // Least-recently-assigned free color: scatters registers and
            // avoids anti/output dependences on the in-order core.
            u64 bestStamp = ~0ull;
            for (u32 c = firstColor; c < numColors; ++c) {
                if (taken.count(u16(c)))
                    continue;
                if (lastAssign[f][c] < bestStamp) {
                    bestStamp = lastAssign[f][c];
                    best = c;
                }
            }
        } else {
            for (u32 c = firstColor; c < numColors; ++c) {
                if (!taken.count(u16(c))) {
                    best = c;
                    break;
                }
            }
        }

        if (best < 0) {
            if (f != RegFile::kDrf)
                fatal("out of ", f == RegFile::kArf ? "AddrRF" : "CtrlRF",
                      " registers (", numColors, ") and spilling is only "
                      "supported for the DataRF");
            // Pick a spill victim with the widest interference that is
            // not itself a reload/store temp from a previous round —
            // re-spilling temps would live-lock the allocator.
            u32 victim = v;
            size_t bestDegree =
                spillTemps.count(v) ? 0 : interf[v].size();
            if (auto it = interf.find(v); it != interf.end()) {
                for (u32 nb : it->second) {
                    if (spillTemps.count(nb) || !result.color.count(nb))
                        continue;
                    size_t deg = interf[nb].size();
                    if (deg > bestDegree) {
                        bestDegree = deg;
                        victim = nb;
                    }
                }
            }
            if (spillTemps.count(victim))
                fatal("DataRF too small even for spill temporaries (",
                      numColors, " registers)");
            result.spills.push_back(victim);
            if (victim != v) {
                // Free the victim's color and give it to v.
                u16 c = result.color.at(victim);
                result.color.erase(victim);
                result.color[v] = c;
                lastAssign[f][c] = stamp++;
                if (f == RegFile::kDrf)
                    result.maxDrfColor =
                        std::max(result.maxDrfColor, u32(c));
            }
            continue;
        }
        result.color[v] = u16(best);
        lastAssign[f][size_t(best)] = stamp++;
        if (f == RegFile::kDrf)
            result.maxDrfColor = std::max(result.maxDrfColor, u32(best));
    }
    return result;
}

/** Rewrite the program to spill the given DRF virtuals to DRAM. */
BuilderProgram
insertSpills(const BuilderProgram &prog, const std::vector<u32> &spills,
             u64 spillBase, u16 &nextVirtual, u32 fullMask,
             std::map<u32, u32> &spillSlots)
{
    std::set<u32> spillSet(spills.begin(), spills.end());
    for (u32 v : spills)
        if (!spillSlots.count(v))
            spillSlots[v] = u32(spillSlots.size());

    BuilderProgram out;
    // Recompute label positions while copying.
    std::map<size_t, std::vector<i32>> labelsAt;
    for (const auto &[label, pos] : prog.labelPos)
        labelsAt[pos].push_back(label);

    for (size_t i = 0; i < prog.insts.size(); ++i) {
        if (auto it = labelsAt.find(i); it != labelsAt.end())
            for (i32 l : it->second)
                out.labelPos[l] = out.insts.size();

        Instruction inst = prog.insts[i];
        bool reads = false, writes = false;
        std::map<u16, u16> replacement;
        visitRegFields(inst, [&](RegFile f, u16 &idx, bool r, bool w) {
            if (f != RegFile::kDrf)
                return;
            u32 key = regKey(f, idx);
            if (!spillSet.count(key))
                return;
            auto rep = replacement.find(idx);
            u16 fresh;
            if (rep == replacement.end()) {
                fresh = nextVirtual++;
                replacement[idx] = fresh;
            } else {
                fresh = rep->second;
            }
            if (r)
                reads = true;
            if (w)
                writes = true;
            idx = fresh;
        });

        if (reads) {
            for (const auto &[oldIdx, fresh] : replacement) {
                u64 addr = spillBase +
                           u64(spillSlots.at(regKey(RegFile::kDrf,
                                                    oldIdx))) *
                               kVectorBytes;
                out.insts.push_back(Instruction::memRf(
                    false, MemOperand::direct(u32(addr)), fresh,
                    fullMask));
            }
        }
        out.insts.push_back(inst);
        if (writes) {
            for (const auto &[oldIdx, fresh] : replacement) {
                u64 addr = spillBase +
                           u64(spillSlots.at(regKey(RegFile::kDrf,
                                                    oldIdx))) *
                               kVectorBytes;
                out.insts.push_back(Instruction::memRf(
                    true, MemOperand::direct(u32(addr)), fresh,
                    fullMask));
            }
        }
    }
    // Labels bound at the very end.
    for (const auto &[label, pos] : prog.labelPos)
        if (pos == prog.insts.size())
            out.labelPos[label] = out.insts.size();
    return out;
}

/** Estimated execution latency for the reordering priority function. */
u32
estLatency(const HardwareConfig &cfg, const Instruction &inst)
{
    switch (inst.op) {
      case Opcode::kComp:
        switch (inst.aluOp) {
          case AluOp::kAdd:
          case AluOp::kSub: return cfg.latency.addSub;
          case AluOp::kMul: return cfg.latency.mul;
          case AluOp::kMac: return cfg.latency.mac;
          case AluOp::kDiv: return 2 * cfg.latency.mul;
          default: return cfg.latency.logic;
        }
      case Opcode::kCalcArf:
        return cfg.latency.intAlu + cfg.latency.addrRf;
      case Opcode::kLdRf:
      case Opcode::kStRf:
      case Opcode::kLdPgsm:
      case Opcode::kStPgsm:
        return cfg.timing.tRCD + cfg.timing.tCL;
      case Opcode::kRdPgsm:
      case Opcode::kWrPgsm:
        return cfg.latency.peBus + cfg.latency.pgsm + cfg.latency.dataRf;
      case Opcode::kRdVsm:
      case Opcode::kWrVsm:
        return cfg.latency.tsv + cfg.latency.vsm + cfg.latency.dataRf;
      case Opcode::kReq:
        return 40;
      default:
        return 1;
    }
}

bool
isBankOp(const Instruction &inst)
{
    return accessesBank(inst.op);
}

bool
isLoadOp(const Instruction &inst)
{
    return inst.op == Opcode::kLdRf || inst.op == Opcode::kLdPgsm;
}

/** May two bank accesses touch the same bank address on some PE? */
bool
banksMayAlias(const Instruction &a, const Instruction &b)
{
    if ((a.simbMask & b.simbMask) == 0)
        return false;
    const AccessSet sa = a.accessSet();
    const AccessSet sb = b.accessSet();
    if (!sa.writesBank && !sb.writesBank)
        return false;
    if (a.dramAddr.indirect || b.dramAddr.indirect)
        return true;
    return a.dramAddr.value == b.dramAddr.value;
}

/**
 * Dependence graph of one block, then Algorithm 1 list scheduling.
 * The final instruction (a block ender, if any) is pinned last.
 */
std::vector<Instruction>
scheduleBlock(const HardwareConfig &cfg,
              const std::vector<Instruction> &insts,
              const CompilerOptions &opts)
{
    size_t n = insts.size();
    if (n == 0)
        return {};
    size_t m = n;
    bool pinned = isBlockEnder(insts[n - 1].op);
    if (pinned)
        m = n - 1;
    if (m <= 1) {
        return insts;
    }

    // Edges carry whether data flows along them: true data dependences
    // propagate the producer's latency into T(v); pure ordering edges
    // (anti/output, scratchpad, memory-order) only constrain sequence.
    struct Edge
    {
        int to;
        bool data;
    };
    std::vector<std::vector<Edge>> succ(m);
    std::vector<int> indeg(m, 0);
    std::vector<AccessSet> acc(m);
    std::vector<UseDef> ud(m);
    for (size_t i = 0; i < m; ++i) {
        acc[i] = insts[i].accessSet();
        ud[i] = useDef(insts[i]);
    }

    auto addEdge = [&](size_t from, size_t to, bool data = false) {
        if (from == to)
            return;
        succ[from].push_back({int(to), data});
        ++indeg[to];
    };

    // Last-writer / readers-since-write tracking gives the register
    // edges in near-linear time.  Scratchpad (PGSM/VSM) ordering is kept
    // fully conservative — every reader is ordered against every prior
    // writer and vice versa — matching the hardware's issue-time rule.
    std::map<u32, int> lastWrite;
    std::map<u32, std::vector<int>> readsSince;
    std::vector<std::pair<int, u8>> pgsmWrites, pgsmReads;
    std::vector<int> vsmWrites, vsmReads;
    std::vector<int> bankOps;
    int lastBankLoad = -1, lastBankStore = -1;

    for (size_t j = 0; j < m; ++j) {
        for (u32 u : ud[j].uses) {
            if (auto it = lastWrite.find(u); it != lastWrite.end())
                addEdge(size_t(it->second), j, true); // RAW
            readsSince[u].push_back(int(j));
        }
        for (u32 d : ud[j].defs) {
            if (auto it = lastWrite.find(d); it != lastWrite.end())
                addEdge(size_t(it->second), j); // WAW
            for (int r : readsSince[d])
                addEdge(size_t(r), j); // WAR
            readsSince[d].clear();
            lastWrite[d] = int(j);
        }

        const AccessSet &aj = acc[j];
        if (aj.readsPgsm) {
            for (auto &[w, m] : pgsmWrites)
                if (m & aj.pgsmReadMask)
                    addEdge(size_t(w), j);
            pgsmReads.push_back({int(j), aj.pgsmReadMask});
        }
        if (aj.writesPgsm) {
            for (auto &[r, m] : pgsmReads)
                if (m & aj.pgsmWriteMask)
                    addEdge(size_t(r), j);
            pgsmWrites.push_back({int(j), aj.pgsmWriteMask});
        }
        if (aj.readsVsm) {
            for (int w : vsmWrites)
                addEdge(size_t(w), j);
            vsmReads.push_back(int(j));
        }
        if (aj.writesVsm) {
            for (int r : vsmReads)
                addEdge(size_t(r), j);
            vsmWrites.push_back(int(j));
        }

        if (isBankOp(insts[j])) {
            // Bank aliasing correctness edges (read-modify-write chains).
            for (int i : bankOps)
                if (banksMayAlias(insts[size_t(i)], insts[j]))
                    addEdge(size_t(i), j);
            // Memory-order enforcement: keep each DRAM access stream
            // (loads, stores) in program order so the scheduler cannot
            // destroy the tile-sequential row-buffer locality of the
            // lowered code, while still letting the load stream batch
            // ahead of the store stream (Sec. V-C, Fig. 5).
            if (opts.memOrder) {
                bool isLoad = isLoadOp(insts[j]);
                int prev = isLoad ? lastBankLoad : lastBankStore;
                if (prev >= 0)
                    addEdge(size_t(prev), j);
                (isLoad ? lastBankLoad : lastBankStore) = int(j);
            }
            bankOps.push_back(int(j));
        }
    }

    if (!opts.reorder) {
        return insts;
    }

    // Algorithm 1.
    std::vector<u64> T(m, 0);
    std::vector<int> remaining(indeg);
    std::vector<char> scheduled(m, 0);
    std::vector<size_t> ready;
    for (size_t i = 0; i < m; ++i)
        if (remaining[i] == 0)
            ready.push_back(i);

    std::vector<Instruction> out;
    out.reserve(n);
    for (size_t step = 1; step <= m; ++step) {
        if (ready.empty())
            panic("reorder: dependency cycle in block");
        // Priority: a ready load whose T <= step, else smallest T
        // (ties: original order).
        size_t pick = SIZE_MAX;
        for (size_t idx : ready) {
            if (isLoadOp(insts[idx]) && T[idx] <= step) {
                if (pick == SIZE_MAX || idx < pick)
                    pick = idx;
            }
        }
        if (pick == SIZE_MAX) {
            u64 bestT = ~0ull;
            for (size_t idx : ready) {
                if (T[idx] < bestT ||
                    (T[idx] == bestT && idx < pick)) {
                    bestT = T[idx];
                    pick = idx;
                }
            }
        }
        ready.erase(std::find(ready.begin(), ready.end(), pick));
        scheduled[pick] = 1;
        out.push_back(insts[pick]);
        u64 done = std::max<u64>(T[pick], step) +
                   estLatency(cfg, insts[pick]);
        for (const Edge &e : succ[pick]) {
            size_t s2 = size_t(e.to);
            u64 avail = e.data ? done : std::max<u64>(T[pick], step) + 1;
            T[s2] = std::max(T[s2], avail);
            if (--remaining[s2] == 0)
                ready.push_back(s2);
        }
    }
    if (pinned)
        out.push_back(insts[n - 1]);
    return out;
}

} // namespace

std::vector<Instruction>
runBackend(const HardwareConfig &cfg, BuilderProgram prog,
           const CompilerOptions &opts, u64 spillBase, BackendStats *stats)
{
    // Find the next free virtual id for spill temporaries.
    u16 nextVirtual = 0;
    for (Instruction &inst : prog.insts) {
        visitRegFields(inst, [&](RegFile f, u16 &idx, bool, bool) {
            if (f == RegFile::kDrf)
                nextVirtual = std::max<u16>(nextVirtual, u16(idx + 1));
        });
    }

    // Iterate coloring + spilling to a fixed point.
    std::map<u32, u32> spillSlots;
    std::set<u32> spillTemps;
    Coloring coloring;
    for (int round = 0;; ++round) {
        if (round > 64)
            fatal("register allocation did not converge; the DataRF is "
                  "too small for this kernel");
        Cfg cfgBlocks = buildCfg(prog);
        coloring = colorRegisters(cfg, prog, cfgBlocks,
                                  opts.maxRegAlloc, spillTemps);
        if (coloring.spills.empty())
            break;
        u16 firstFresh = nextVirtual;
        prog = insertSpills(prog, coloring.spills, spillBase, nextVirtual,
                            (cfg.pesPerVault() >= 32)
                                ? 0xFFFFFFFFu
                                : ((1u << cfg.pesPerVault()) - 1),
                            spillSlots);
        for (u16 t = firstFresh; t < nextVirtual; ++t)
            spillTemps.insert(regKey(RegFile::kDrf, t));
    }

    // Apply the coloring.
    for (Instruction &inst : prog.insts) {
        visitRegFields(inst, [&](RegFile f, u16 &idx, bool, bool) {
            if (f == RegFile::kArf && idx < kNumReservedArf)
                return;
            auto it = coloring.color.find(regKey(f, idx));
            if (it == coloring.color.end())
                fatal("virtual register without a color: file ", int(f),
                      " idx ", idx);
            idx = it->second;
        });
    }

    // Per-block dependence graph + memory-order edges + reordering.
    Cfg cfgBlocks = buildCfg(prog);
    std::vector<Instruction> final;
    std::map<int, size_t> blockStart;
    for (size_t bi = 0; bi < cfgBlocks.blocks.size(); ++bi) {
        const Block &b = cfgBlocks.blocks[bi];
        blockStart[int(bi)] = final.size();
        std::vector<Instruction> blockInsts(prog.insts.begin() + b.begin,
                                            prog.insts.begin() + b.end);
        auto scheduledBlock = scheduleBlock(cfg, blockInsts, opts);
        final.insert(final.end(), scheduledBlock.begin(),
                     scheduledBlock.end());
    }

    // Resolve labels into seti_crf immediates.
    for (Instruction &inst : final) {
        if (inst.op == Opcode::kSetiCrf && inst.label >= 0) {
            auto it = cfgBlocks.labelBlock.find(inst.label);
            if (it == cfgBlocks.labelBlock.end())
                fatal("unbound label L", inst.label);
            inst.imm = i32(blockStart.at(it->second));
            inst.label = -1;
        }
    }

    if (stats) {
        stats->spilledRegs = u32(spillSlots.size());
        stats->physicalDrfUsed = coloring.maxDrfColor + 1;
        stats->instructions = u32(final.size());
    }
    return final;
}

} // namespace ipim
