#include "compiler/expr.h"

#include <sstream>

#include "common/logging.h"
#include "compiler/func.h"

namespace ipim {

Expr::Expr(f32 v) { *this = constF(v); }
Expr::Expr(int v) { *this = constI(v); }
Expr::Expr(const Var &v) { *this = var(v.name); }

const ExprNode &
Expr::node() const
{
    if (!node_)
        panic("use of an undefined Expr");
    return *node_;
}

Expr
Expr::constF(f32 v)
{
    auto n = std::make_shared<ExprNode>();
    n->kind = ExprKind::kConstF;
    n->fval = v;
    return Expr(n);
}

Expr
Expr::constI(i32 v)
{
    auto n = std::make_shared<ExprNode>();
    n->kind = ExprKind::kConstI;
    n->ival = v;
    return Expr(n);
}

Expr
Expr::var(const std::string &name)
{
    auto n = std::make_shared<ExprNode>();
    n->kind = ExprKind::kVar;
    n->varName = name;
    return Expr(n);
}

Expr
Expr::call(FuncPtr f, std::vector<Expr> args)
{
    if (!f)
        panic("call of a null Func");
    if (int(args.size()) != f->dims())
        fatal("call of ", f->name(), " with ", args.size(),
              " indices; it has ", f->dims(), " dimensions");
    auto n = std::make_shared<ExprNode>();
    n->kind = ExprKind::kCall;
    n->callee = std::move(f);
    n->args = std::move(args);
    return Expr(n);
}

Expr
Expr::binary(ExprKind k, Expr a, Expr b)
{
    auto n = std::make_shared<ExprNode>();
    n->kind = k;
    n->kids = {std::move(a), std::move(b)};
    return Expr(n);
}

Expr
Expr::clamp(Expr v, Expr lo, Expr hi)
{
    auto n = std::make_shared<ExprNode>();
    n->kind = ExprKind::kClamp;
    n->kids = {std::move(v), std::move(lo), std::move(hi)};
    return Expr(n);
}

Expr
Expr::castI(Expr v)
{
    auto n = std::make_shared<ExprNode>();
    n->kind = ExprKind::kCastI;
    n->kids = {std::move(v)};
    return Expr(n);
}

Expr
Expr::castF(Expr v)
{
    auto n = std::make_shared<ExprNode>();
    n->kind = ExprKind::kCastF;
    n->kids = {std::move(v)};
    return Expr(n);
}

Expr operator+(Expr a, Expr b) { return Expr::binary(ExprKind::kAdd, a, b); }
Expr operator-(Expr a, Expr b) { return Expr::binary(ExprKind::kSub, a, b); }
Expr operator*(Expr a, Expr b) { return Expr::binary(ExprKind::kMul, a, b); }
Expr operator/(Expr a, Expr b) { return Expr::binary(ExprKind::kDiv, a, b); }
Expr min(Expr a, Expr b) { return Expr::binary(ExprKind::kMin, a, b); }
Expr max(Expr a, Expr b) { return Expr::binary(ExprKind::kMax, a, b); }
Expr clamp(Expr v, Expr lo, Expr hi) { return Expr::clamp(v, lo, hi); }

AffineIndex
toAffine(const Expr &e, const std::string &xv, const std::string &yv)
{
    const ExprNode &n = e.node();
    AffineIndex r;
    switch (n.kind) {
      case ExprKind::kConstI:
        r.valid = true;
        r.c0 = n.ival;
        return r;
      case ExprKind::kVar:
        if (n.varName == xv) {
            r.valid = true;
            r.cx = 1;
        } else if (n.varName == yv) {
            r.valid = true;
            r.cy = 1;
        }
        return r;
      case ExprKind::kAdd:
      case ExprKind::kSub: {
        AffineIndex a = toAffine(n.kids[0], xv, yv);
        AffineIndex b = toAffine(n.kids[1], xv, yv);
        if (!a.valid || !b.valid)
            return {};
        i64 sign = n.kind == ExprKind::kAdd ? 1 : -1;
        auto isConst = [](const AffineIndex &i) {
            return i.cx == 0 && i.cy == 0 && i.div == 1;
        };
        if (a.div == 1 && b.div == 1) {
            r.valid = true;
            r.cx = a.cx + sign * b.cx;
            r.cy = a.cy + sign * b.cy;
            r.c0 = a.c0 + sign * b.c0;
            return r;
        }
        if (isConst(b)) {
            r = a;
            i64 k = sign * (b.c0 + b.post0); // b is a constant overall
            if (r.postMul == 1 && r.post0 == 0) {
                // p/d + k == (p + k*d)/d  (exact for floor division)
                r.c0 += k * r.div;
            } else {
                r.post0 += k;
            }
            return r;
        }
        if (isConst(a) && n.kind == ExprKind::kAdd) {
            r = b;
            i64 k = a.c0 + a.post0;
            if (r.postMul == 1 && r.post0 == 0)
                r.c0 += k * r.div;
            else
                r.post0 += k;
            return r;
        }
        return {};
      }
      case ExprKind::kMul: {
        AffineIndex a = toAffine(n.kids[0], xv, yv);
        AffineIndex b = toAffine(n.kids[1], xv, yv);
        if (!a.valid || !b.valid)
            return {};
        auto isConst = [](const AffineIndex &i) {
            return i.cx == 0 && i.cy == 0 && i.div == 1;
        };
        const AffineIndex *k = nullptr, *v = nullptr;
        if (isConst(a)) {
            k = &a;
            v = &b;
        } else if (isConst(b)) {
            k = &b;
            v = &a;
        } else {
            return {};
        }
        i64 kc = k->c0 + k->post0;
        if (v->div == 1) {
            r.valid = true;
            r.cx = v->cx * kc;
            r.cy = v->cy * kc;
            r.c0 = v->c0 * kc;
            return r;
        }
        // k * (postMul*(p/d) + post0) = (k*postMul)*(p/d) + k*post0
        r = *v;
        r.postMul *= kc;
        r.post0 *= kc;
        return r;
      }
      case ExprKind::kDiv: {
        AffineIndex a = toAffine(n.kids[0], xv, yv);
        AffineIndex b = toAffine(n.kids[1], xv, yv);
        if (!a.valid || !b.valid)
            return {};
        if (b.cx != 0 || b.cy != 0 || b.div != 1 || b.c0 + b.post0 <= 0)
            return {};
        i64 k = b.c0 + b.post0;
        if (a.postMul != 1 || a.post0 != 0)
            return {};
        // (p/d1)/k == p/(d1*k) for floor division with positive divisors.
        r = a;
        r.div = a.div * k;
        return r;
      }
      default:
        return {};
    }
}

namespace {

Interval
intervalRec(const Expr &e, const std::string &xv, const std::string &yv,
            const Interval &xr, const Interval &yr)
{
    const ExprNode &n = e.node();
    switch (n.kind) {
      case ExprKind::kConstI:
        return Interval::point(n.ival);
      case ExprKind::kConstF:
        return Interval::point(i64(n.fval));
      case ExprKind::kVar:
        if (n.varName == xv)
            return xr;
        if (n.varName == yv)
            return yr;
        fatal("index expression references unknown variable ", n.varName);
      case ExprKind::kAdd:
        return intervalRec(n.kids[0], xv, yv, xr, yr) +
               intervalRec(n.kids[1], xv, yv, xr, yr);
      case ExprKind::kSub:
        return intervalRec(n.kids[0], xv, yv, xr, yr) -
               intervalRec(n.kids[1], xv, yv, xr, yr);
      case ExprKind::kMul:
        return intervalRec(n.kids[0], xv, yv, xr, yr) *
               intervalRec(n.kids[1], xv, yv, xr, yr);
      case ExprKind::kDiv: {
        Interval b = intervalRec(n.kids[1], xv, yv, xr, yr);
        if (b.lo != b.hi || b.lo == 0)
            fatal("index division must be by a nonzero constant");
        return divConst(intervalRec(n.kids[0], xv, yv, xr, yr), b.lo);
      }
      case ExprKind::kMin:
        return minInterval(intervalRec(n.kids[0], xv, yv, xr, yr),
                           intervalRec(n.kids[1], xv, yv, xr, yr));
      case ExprKind::kMax:
        return maxInterval(intervalRec(n.kids[0], xv, yv, xr, yr),
                           intervalRec(n.kids[1], xv, yv, xr, yr));
      case ExprKind::kClamp: {
        Interval lo = intervalRec(n.kids[1], xv, yv, xr, yr);
        Interval hi = intervalRec(n.kids[2], xv, yv, xr, yr);
        // The clamp output is within [lo.lo, hi.hi] regardless of the
        // (possibly data-dependent) value operand.
        return {lo.lo, hi.hi};
      }
      case ExprKind::kCastI:
      case ExprKind::kCastF:
        return intervalRec(n.kids[0], xv, yv, xr, yr);
      case ExprKind::kCall:
        // Data-dependent leaf: unbounded unless clamped above.
        fatal("data-dependent index must be wrapped in clamp() for "
              "bounds inference");
      default:
        panic("intervalRec: bad expr kind");
    }
}

} // namespace

Interval
indexInterval(const Expr &e, const std::string &xv, const std::string &yv,
              const Interval &xr, const Interval &yr)
{
    return intervalRec(e, xv, yv, xr, yr);
}

std::string
exprToString(const Expr &e)
{
    const ExprNode &n = e.node();
    std::ostringstream os;
    switch (n.kind) {
      case ExprKind::kConstF: os << n.fval << "f"; break;
      case ExprKind::kConstI: os << n.ival; break;
      case ExprKind::kVar: os << n.varName; break;
      case ExprKind::kCall: {
        os << n.callee->name() << "(";
        for (size_t i = 0; i < n.args.size(); ++i)
            os << (i ? ", " : "") << exprToString(n.args[i]);
        os << ")";
        break;
      }
      case ExprKind::kAdd:
      case ExprKind::kSub:
      case ExprKind::kMul:
      case ExprKind::kDiv: {
        const char *op = n.kind == ExprKind::kAdd   ? " + "
                         : n.kind == ExprKind::kSub ? " - "
                         : n.kind == ExprKind::kMul ? " * "
                                                    : " / ";
        os << "(" << exprToString(n.kids[0]) << op
           << exprToString(n.kids[1]) << ")";
        break;
      }
      case ExprKind::kMin:
      case ExprKind::kMax:
        os << (n.kind == ExprKind::kMin ? "min(" : "max(")
           << exprToString(n.kids[0]) << ", " << exprToString(n.kids[1])
           << ")";
        break;
      case ExprKind::kClamp:
        os << "clamp(" << exprToString(n.kids[0]) << ", "
           << exprToString(n.kids[1]) << ", " << exprToString(n.kids[2])
           << ")";
        break;
      case ExprKind::kCastI:
        os << "i32(" << exprToString(n.kids[0]) << ")";
        break;
      case ExprKind::kCastF:
        os << "f32(" << exprToString(n.kids[0]) << ")";
        break;
    }
    return os.str();
}

} // namespace ipim
