/**
 * @file
 * Golden CPU reference interpreter for pipelines.
 *
 * Evaluates the pipeline's pure-functional semantics in FP32 with the
 * exact operation set and rounding of the PE SIMD unit (src/isa/alu.h),
 * so device results can be compared bit-for-bit (up to the documented
 * reduction-order caveat for RDom stages).
 *
 * Semantics: input Funcs clamp their coordinates to the image (border
 * replicate); every other Func is a pure function defined on all of Z^2.
 */
#ifndef IPIM_COMPILER_REFERENCE_H_
#define IPIM_COMPILER_REFERENCE_H_

#include <map>
#include <string>

#include "common/image.h"
#include "compiler/func.h"

namespace ipim {

class ReferenceInterpreter
{
  public:
    ReferenceInterpreter(const PipelineDef &def,
                         const std::map<std::string, Image> &inputs);

    /** Evaluate the output over [0,W)x[0,H). */
    Image run();

    /** Evaluate an arbitrary func value (tests). */
    f32 value(const FuncPtr &f, i64 x, i64 y = 0);

  private:
    struct TypedValue
    {
        bool isInt = false;
        f32 f = 0;
        i32 i = 0;
    };

    TypedValue eval(const Expr &e, i64 x, i64 y, const FuncPtr &owner);
    TypedValue evalWithVars(const Expr &e, const std::string &xv,
                            const std::string &yv, i64 x, i64 y,
                            const FuncPtr &owner);
    f32 funcValue(const FuncPtr &f, i64 x, i64 y);
    void materializeReduction(const FuncPtr &f);

    const PipelineDef &def_;
    const std::map<std::string, Image> &inputs_;

    std::map<std::pair<const Func *, std::pair<i64, i64>>, f32> memo_;

    struct ReductionBuf
    {
        Interval xr, yr;
        std::vector<f32> data;
    };
    std::map<const Func *, ReductionBuf> reductions_;
};

/** Convenience one-shot evaluation. */
Image referenceRun(const PipelineDef &def,
                   const std::map<std::string, Image> &inputs);

} // namespace ipim

#endif // IPIM_COMPILER_REFERENCE_H_
