#include "compiler/builder.h"

#include "common/logging.h"

namespace ipim {

CodeBuilder::CodeBuilder(const HardwareConfig &cfg) : cfg_(cfg)
{
}

u32
CodeBuilder::fullMask() const
{
    u32 n = cfg_.pesPerVault();
    return n >= 32 ? 0xFFFFFFFFu : ((1u << n) - 1);
}

u32
CodeBuilder::maskFor(u32 pgMask, u32 peMask) const
{
    u32 mask = 0;
    for (u32 pg = 0; pg < cfg_.pgsPerVault; ++pg) {
        if (!(pgMask & (1u << pg)))
            continue;
        for (u32 pe = 0; pe < cfg_.pesPerPg; ++pe) {
            if (peMask & (1u << pe))
                mask |= 1u << (pg * cfg_.pesPerPg + pe);
        }
    }
    return mask;
}

void
CodeBuilder::bind(i32 label)
{
    if (prog_.labelPos.count(label))
        panic("label ", label, " bound twice");
    prog_.labelPos[label] = prog_.insts.size();
}

CodeBuilder::Loop
CodeBuilder::loopBegin(i64 count)
{
    if (count < 1)
        panic("loopBegin with count ", count);
    Loop l;
    l.counter = newCrf();
    l.target = newCrf();
    l.headLabel = newLabel();
    emit(Instruction::setiCrf(l.counter, i32(count)));
    Instruction target = Instruction::setiCrf(l.target, 0);
    target.label = l.headLabel;
    emit(target);
    bind(l.headLabel);
    return l;
}

void
CodeBuilder::loopEnd(const Loop &l)
{
    emit(Instruction::calcCrfImm(AluOp::kAdd, l.counter, l.counter, -1));
    emit(Instruction::cjump(l.counter, l.target));
}

u16
CodeBuilder::zeroArf(u32 mask)
{
    if (zeroArfReg_ == 0xFFFF) {
        zeroArfReg_ = newArf();
        emit(Instruction::calcArf(AluOp::kXor, zeroArfReg_, peId(),
                                  peId(), fullMask()));
    }
    (void)mask;
    return zeroArfReg_;
}

void
CodeBuilder::arfLoadImm(u16 dst, i32 imm, u32 mask)
{
    emit(Instruction::calcArfImm(AluOp::kAdd, dst, zeroArf(mask), imm,
                                 mask));
}

u32
CodeBuilder::vsmAlloc(u32 bytes)
{
    u32 off = vsmTop_;
    vsmTop_ += (bytes + 15u) & ~15u;
    if (vsmTop_ > cfg_.vsmBytes)
        fatal("VSM exhausted: kernel needs ", vsmTop_, " bytes of ",
              cfg_.vsmBytes);
    return off;
}

u16
CodeBuilder::materializeConst(const VecWord &v, u8 lanesUsed)
{
    u32 off = vsmAlloc(kVectorBytes);
    for (int l = 0; l < kSimdLanes; ++l) {
        if (lanesUsed & (1u << l))
            emit(Instruction::setiVsm(off + 4 * l, i32(v.lanes[l])));
    }
    u16 reg = newDrf();
    emit(Instruction::vsmRf(true, MemOperand::direct(off), reg,
                            fullMask()));
    return reg;
}

u16
CodeBuilder::floatConst(f32 v)
{
    u32 bits = f32AsLane(v);
    auto it = floatConsts_.find(bits);
    if (it != floatConsts_.end())
        return it->second;
    u16 reg = materializeConst(VecWord::splatF32(v), 0xF);
    floatConsts_[bits] = reg;
    return reg;
}

u16
CodeBuilder::intConst(i32 v)
{
    auto it = intConsts_.find(v);
    if (it != intConsts_.end())
        return it->second;
    u16 reg = materializeConst(VecWord::splatI32(v), 0xF);
    intConsts_[v] = reg;
    return reg;
}

u16
CodeBuilder::laneRampF()
{
    if (laneRampReg_ != 0xFFFF)
        return laneRampReg_;
    VecWord v;
    for (int l = 0; l < kSimdLanes; ++l)
        v.lanes[l] = f32AsLane(f32(l));
    laneRampReg_ = materializeConst(v, 0xF);
    return laneRampReg_;
}

u16
CodeBuilder::laneRampI()
{
    if (laneRampIReg_ != 0xFFFF)
        return laneRampIReg_;
    VecWord v;
    for (int l = 0; l < kSimdLanes; ++l)
        v.lanes[l] = i32AsLane(l);
    laneRampIReg_ = materializeConst(v, 0xF);
    return laneRampIReg_;
}

BuilderProgram
CodeBuilder::finish(u32 syncPhase)
{
    emit(Instruction::sync(syncPhase));
    emit(Instruction::halt());
    return std::move(prog_);
}

} // namespace ipim
