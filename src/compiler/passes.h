/**
 * @file
 * Compiler backend passes (Sec. V-C, Fig. 4):
 *
 *  - register allocation: graph coloring over virtual DRF/ARF/CRF
 *    registers with two policies — "min" (fewest physical registers,
 *    the classic objective) and "max" (scatter registers to avoid
 *    anti/output dependences that stall the in-order core) — plus
 *    DRAM spilling when the DataRF is too small (Fig. 10);
 *  - memory-order enforcement: extra dependence edges that keep DRAM
 *    accesses in program order (row-buffer locality) and spread request
 *    bursts (DRAM request queue contention);
 *  - instruction reordering: Algorithm 1's topological list scheduler
 *    that exposes ILP to the single-issue core.
 */
#ifndef IPIM_COMPILER_PASSES_H_
#define IPIM_COMPILER_PASSES_H_

#include <string>

#include "compiler/builder.h"

namespace ipim {

/** Backend optimization switches (Fig. 12's ablation knobs). */
struct CompilerOptions
{
    bool maxRegAlloc = true; ///< max (true) vs min (false) policy
    bool reorder = true;     ///< instruction reordering
    bool memOrder = true;    ///< memory-order enforcement edges

    /// Run the static verifier (src/verify) over every compiled kernel
    /// and reject programs with errors before they reach the simulator.
    bool verify = false;

    /// Run the cross-vault conflict analysis (src/analysis) over every
    /// compiled kernel and reject programs with provable memory
    /// conflicts (V14-V18).  Strictly stronger than `verify` for the
    /// conflict rules; independent of it otherwise.
    bool analyze = false;

    CompilerOptions
    withVerify() const
    {
        CompilerOptions o = *this;
        o.verify = true;
        return o;
    }

    CompilerOptions
    withAnalyze() const
    {
        CompilerOptions o = *this;
        o.analyze = true;
        return o;
    }

    /**
     * Canonical key fragment for compiled-program caching (src/service):
     * two option values compare equal iff their cache keys are equal.
     * Every switch that changes generated code must appear here.
     */
    std::string
    cacheKey() const
    {
        std::string k = "ra=";
        k += maxRegAlloc ? "max" : "min";
        k += ";reorder=";
        k += reorder ? '1' : '0';
        k += ";memorder=";
        k += memOrder ? '1' : '0';
        // `verify` and `analyze` are deliberately excluded: they gate
        // compilation but do not change the emitted program.
        return k;
    }

    static CompilerOptions
    opt()
    {
        return {};
    }

    /** Fig. 12 baseline1: min regalloc, no reordering. */
    static CompilerOptions
    baseline1()
    {
        return {false, false, false};
    }

    static CompilerOptions
    baseline2()
    {
        return {false, true, true};
    }

    static CompilerOptions
    baseline3()
    {
        return {true, false, true};
    }

    static CompilerOptions
    baseline4()
    {
        return {true, true, false};
    }
};

/** Static (compile-time) program statistics. */
struct BackendStats
{
    u32 spilledRegs = 0;
    u32 physicalDrfUsed = 0;
    u32 instructions = 0;
};

/**
 * Run the backend: allocate registers (spilling to the bank scratch area
 * at @p spillBase), apply memory-order enforcement and reordering per
 * @p opts, resolve labels, and return an executable program.
 */
std::vector<Instruction> runBackend(const HardwareConfig &cfg,
                                    BuilderProgram prog,
                                    const CompilerOptions &opts,
                                    u64 spillBase,
                                    BackendStats *stats = nullptr);

} // namespace ipim

#endif // IPIM_COMPILER_PASSES_H_
