#include "compiler/reference.h"

#include <cmath>

#include "common/logging.h"
#include "isa/alu.h"

namespace ipim {

ReferenceInterpreter::ReferenceInterpreter(
    const PipelineDef &def, const std::map<std::string, Image> &inputs)
    : def_(def), inputs_(inputs)
{
    if (!def.output)
        fatal("pipeline has no output func");
}

Image
ReferenceInterpreter::run()
{
    Image out(def_.width, def_.height);
    for (i64 y = 0; y < def_.height; ++y)
        for (i64 x = 0; x < def_.width; ++x)
            out.at(int(x), int(y)) = funcValue(def_.output, x, y);
    return out;
}

f32
ReferenceInterpreter::value(const FuncPtr &f, i64 x, i64 y)
{
    return funcValue(f, x, y);
}

f32
ReferenceInterpreter::funcValue(const FuncPtr &f, i64 x, i64 y)
{
    if (f->isInput()) {
        auto it = inputs_.find(f->name());
        if (it == inputs_.end())
            fatal("input image '", f->name(), "' not bound");
        const Image &img = it->second;
        if (f->dims() == 1)
            y = 0;
        return img.clampedAt(int(std::clamp<i64>(x, 0, img.width() - 1)),
                             int(std::clamp<i64>(y, 0, img.height() - 1)));
    }

    if (f->hasUpdate()) {
        materializeReduction(f);
        const ReductionBuf &buf = reductions_.at(f.get());
        if (!buf.xr.contains(x) || !buf.yr.contains(y))
            fatal("reduction func ", f->name(), " read at (", x, ",", y,
                  ") outside its scatter range");
        i64 w = buf.xr.extent();
        return buf.data[size_t((y - buf.yr.lo) * w + (x - buf.xr.lo))];
    }

    if (!f->hasDefinition())
        fatal("func ", f->name(), " used before definition");

    bool memoize = f->isRoot();
    std::pair<const Func *, std::pair<i64, i64>> key{f.get(), {x, y}};
    if (memoize) {
        auto it = memo_.find(key);
        if (it != memo_.end())
            return it->second;
    }
    TypedValue v = eval(f->rhs(), x, y, f);
    f32 result = v.isInt ? f32(v.i) : v.f;
    if (memoize)
        memo_[key] = result;
    return result;
}

void
ReferenceInterpreter::materializeReduction(const FuncPtr &f)
{
    if (reductions_.count(f.get()))
        return;

    // Scatter range from the clamp bounds of the update index exprs.
    Interval xr(0, 0), yr(0, 0);
    for (const UpdateDef &u : f->updates()) {
        Interval rx(0, u.dom.extentX - 1);
        Interval ry(0, u.dom.extentY > 0 ? u.dom.extentY - 1 : 0);
        xr = xr.hull(indexInterval(u.idxX, u.dom.x.name, u.dom.y.name,
                                   rx, ry));
        if (u.idxY.defined())
            yr = yr.hull(indexInterval(u.idxY, u.dom.x.name, u.dom.y.name,
                                       rx, ry));
    }

    ReductionBuf buf;
    buf.xr = xr;
    buf.yr = yr;
    buf.data.assign(size_t(xr.extent() * yr.extent()), 0.0f);

    // Initialize from the pure definition.
    for (i64 y = yr.lo; y <= yr.hi; ++y) {
        for (i64 x = xr.lo; x <= xr.hi; ++x) {
            TypedValue v = eval(f->rhs(), x, y, f);
            buf.data[size_t((y - yr.lo) * xr.extent() + (x - xr.lo))] =
                v.isInt ? f32(v.i) : v.f;
        }
    }

    reductions_.emplace(f.get(), std::move(buf));
    ReductionBuf &b = reductions_.at(f.get());

    // Apply the updates over the reduction domain.
    for (const UpdateDef &u : f->updates()) {
        i64 ey = u.dom.extentY > 0 ? u.dom.extentY : 1;
        for (i64 ry = 0; ry < ey; ++ry) {
            for (i64 rx = 0; rx < u.dom.extentX; ++rx) {
                // Reuse eval() with the RDom variables as the loop vars.
                FuncPtr owner = f;
                // Temporarily alias the variable names.
                TypedValue ixv = evalWithVars(u.idxX, u.dom.x.name,
                                              u.dom.y.name, rx, ry, owner);
                i64 ix = ixv.isInt ? ixv.i : i64(ixv.f);
                i64 iy = 0;
                if (u.idxY.defined()) {
                    TypedValue iyv = evalWithVars(
                        u.idxY, u.dom.x.name, u.dom.y.name, rx, ry, owner);
                    iy = iyv.isInt ? iyv.i : i64(iyv.f);
                }
                TypedValue val = evalWithVars(u.value, u.dom.x.name,
                                              u.dom.y.name, rx, ry, owner);
                f32 add = val.isInt ? f32(val.i) : val.f;
                if (!b.xr.contains(ix) || !b.yr.contains(iy))
                    fatal("reduction ", f->name(),
                          " scatters outside its clamp-derived range");
                b.data[size_t((iy - b.yr.lo) * b.xr.extent() +
                              (ix - b.xr.lo))] += add;
            }
        }
    }
}

ReferenceInterpreter::TypedValue
ReferenceInterpreter::eval(const Expr &e, i64 x, i64 y,
                           const FuncPtr &owner)
{
    return evalWithVars(e, owner->varX(), owner->varY(), x, y, owner);
}

ReferenceInterpreter::TypedValue
ReferenceInterpreter::evalWithVars(const Expr &e, const std::string &xv,
                                   const std::string &yv, i64 x, i64 y,
                                   const FuncPtr &owner)
{
    const ExprNode &n = e.node();
    TypedValue r;
    switch (n.kind) {
      case ExprKind::kConstF:
        r.f = n.fval;
        return r;
      case ExprKind::kConstI:
        r.isInt = true;
        r.i = i32(n.ival);
        return r;
      case ExprKind::kVar:
        r.isInt = true;
        if (n.varName == xv)
            r.i = i32(x);
        else if (n.varName == yv)
            r.i = i32(y);
        else
            fatal("unbound variable ", n.varName, " in ", owner->name());
        return r;
      case ExprKind::kCall: {
        TypedValue ix = evalWithVars(n.args[0], xv, yv, x, y, owner);
        i64 cx = ix.isInt ? ix.i : i64(ix.f);
        i64 cy = 0;
        if (n.args.size() > 1) {
            TypedValue iy = evalWithVars(n.args[1], xv, yv, x, y, owner);
            cy = iy.isInt ? iy.i : i64(iy.f);
        }
        r.f = funcValue(n.callee, cx, cy);
        return r;
      }
      case ExprKind::kCastI: {
        TypedValue v = evalWithVars(n.kids[0], xv, yv, x, y, owner);
        r.isInt = true;
        r.i = v.isInt ? v.i : i32(std::floor(v.f));
        return r;
      }
      case ExprKind::kCastF: {
        TypedValue v = evalWithVars(n.kids[0], xv, yv, x, y, owner);
        r.f = v.isInt ? f32(v.i) : v.f;
        return r;
      }
      case ExprKind::kClamp: {
        TypedValue v = evalWithVars(n.kids[0], xv, yv, x, y, owner);
        TypedValue lo = evalWithVars(n.kids[1], xv, yv, x, y, owner);
        TypedValue hi = evalWithVars(n.kids[2], xv, yv, x, y, owner);
        if (v.isInt != lo.isInt || v.isInt != hi.isInt)
            fatal("clamp with mixed int/float operands in ",
                  owner->name());
        r.isInt = v.isInt;
        if (v.isInt)
            r.i = std::min(std::max(v.i, lo.i), hi.i);
        else
            r.f = std::min(std::max(v.f, lo.f), hi.f);
        return r;
      }
      default:
        break;
    }

    // Binary arithmetic.
    TypedValue a = evalWithVars(n.kids[0], xv, yv, x, y, owner);
    TypedValue b = evalWithVars(n.kids[1], xv, yv, x, y, owner);
    if (a.isInt != b.isInt)
        fatal("mixed int/float arithmetic without an explicit cast in ",
              owner->name(), ": ", exprToString(e));
    r.isInt = a.isInt;
    AluOp op;
    switch (n.kind) {
      case ExprKind::kAdd: op = AluOp::kAdd; break;
      case ExprKind::kSub: op = AluOp::kSub; break;
      case ExprKind::kMul: op = AluOp::kMul; break;
      case ExprKind::kDiv: op = AluOp::kDiv; break;
      case ExprKind::kMin: op = AluOp::kMin; break;
      case ExprKind::kMax: op = AluOp::kMax; break;
      default: panic("eval: unhandled expr kind");
    }
    if (r.isInt) {
        r.i = aluEvalI32(op, a.i, b.i);
    } else {
        u32 lane = aluEvalLaneF32(op, f32AsLane(a.f), f32AsLane(b.f), 0);
        r.f = laneAsF32(lane);
    }
    return r;
}

Image
referenceRun(const PipelineDef &def,
             const std::map<std::string, Image> &inputs)
{
    ReferenceInterpreter interp(def, inputs);
    return interp.run();
}

} // namespace ipim
