#include "compiler/analysis.h"

#include <algorithm>
#include <set>

#include "common/logging.h"

namespace ipim {

namespace {

/** Substitute variable references by expressions. */
Expr
substituteVars(const Expr &e, const std::map<std::string, Expr> &subst)
{
    const ExprNode &n = e.node();
    switch (n.kind) {
      case ExprKind::kConstF:
      case ExprKind::kConstI:
        return e;
      case ExprKind::kVar: {
        auto it = subst.find(n.varName);
        if (it == subst.end())
            fatal("unbound variable '", n.varName,
                  "' while inlining; pipelines may only use the "
                  "function's own loop variables");
        return it->second;
      }
      case ExprKind::kCall: {
        std::vector<Expr> args;
        for (const Expr &a : n.args)
            args.push_back(substituteVars(a, subst));
        return Expr::call(n.callee, std::move(args));
      }
      default: {
        auto copy = std::make_shared<ExprNode>(n);
        copy->kids.clear();
        for (const Expr &k : n.kids)
            copy->kids.push_back(substituteVars(k, subst));
        return Expr(copy);
      }
    }
}

Expr
inlineRec(const Expr &e, int depth)
{
    if (depth > 100000)
        fatal("inlining recursion too deep (cyclic pipeline?)");
    const ExprNode &n = e.node();
    if (n.kind == ExprKind::kCall) {
        FuncPtr f = n.callee;
        std::vector<Expr> args;
        for (const Expr &a : n.args)
            args.push_back(inlineRec(a, depth + 1));
        if (f->isRoot() || f->isInput())
            return Expr::call(f, std::move(args));
        if (!f->hasDefinition())
            fatal("func ", f->name(), " called before definition");
        if (f->hasUpdate())
            fatal("reduction func ", f->name(),
                  " must be scheduled compute_root");
        std::map<std::string, Expr> subst;
        subst[f->varX()] = args[0];
        if (f->dims() == 2)
            subst[f->varY()] = args[1];
        return inlineRec(substituteVars(f->rhs(), subst), depth + 1);
    }
    auto copy = std::make_shared<ExprNode>(n);
    copy->kids.clear();
    for (const Expr &k : n.kids)
        copy->kids.push_back(inlineRec(k, depth + 1));
    return Expr(copy);
}

void
collectCalls(const Expr &e, std::vector<CallSite> &out,
             const std::string &xv, const std::string &yv)
{
    const ExprNode &n = e.node();
    if (n.kind == ExprKind::kCall) {
        CallSite cs;
        cs.callee = n.callee;
        cs.rawX = n.args[0];
        cs.ax = toAffine(n.args[0], xv, yv);
        if (n.args.size() > 1) {
            cs.rawY = n.args[1];
            cs.ay = toAffine(n.args[1], xv, yv);
        } else {
            cs.rawY = Expr::constI(0);
            cs.ay = toAffine(cs.rawY, xv, yv);
        }
        out.push_back(cs);
        for (const Expr &a : n.args)
            collectCalls(a, out, xv, yv);
        return;
    }
    for (const Expr &k : n.kids)
        collectCalls(k, out, xv, yv);
}

/** DFS collecting root funcs reachable from @p f (including f). */
void
collectRoots(const FuncPtr &f, std::vector<FuncPtr> &order,
             std::set<const Func *> &seen)
{
    if (seen.count(f.get()))
        return;
    seen.insert(f.get());

    auto visitExpr = [&](const Expr &e, auto &&self) -> void {
        const ExprNode &n = e.node();
        if (n.kind == ExprKind::kCall) {
            if (n.callee->isRoot() || n.callee->isInput())
                collectRoots(n.callee, order, seen);
            for (const Expr &a : n.args)
                self(a, self);
            return;
        }
        for (const Expr &k : n.kids)
            self(k, self);
    };

    if (!f->isInput()) {
        // Producers referenced from the inlined body and updates.
        Expr body = inlineRec(f->rhs(), 0);
        visitExpr(body, visitExpr);
        for (const UpdateDef &u : f->updates()) {
            visitExpr(inlineRec(u.value, 0), visitExpr);
            visitExpr(inlineRec(u.idxX, 0), visitExpr);
            if (u.idxY.defined())
                visitExpr(inlineRec(u.idxY, 0), visitExpr);
        }
    }
    order.push_back(f);
}

} // namespace

Expr
inlineExpr(const Expr &e)
{
    return inlineRec(e, 0);
}

StageInfo &
PipelineAnalysis::stageOf(const FuncPtr &f)
{
    for (StageInfo &s : stages)
        if (s.func == f)
            return s;
    panic("no stage for func ", f->name());
}

const StageInfo &
PipelineAnalysis::stageOf(const FuncPtr &f) const
{
    return const_cast<PipelineAnalysis *>(this)->stageOf(f);
}

bool
PipelineAnalysis::hasStage(const FuncPtr &f) const
{
    for (const StageInfo &s : stages)
        if (s.func == f)
            return true;
    return false;
}

PipelineAnalysis
analyzePipeline(const PipelineDef &def)
{
    if (!def.output)
        fatal("pipeline '", def.name, "' has no output");
    if (!def.output->isRoot())
        fatal("output func ", def.output->name(),
              " must be scheduled compute_root");
    if (def.width <= 0 || def.height <= 0)
        fatal("pipeline '", def.name, "' needs positive output extents");

    PipelineAnalysis pa;
    pa.def = def;

    std::vector<FuncPtr> order;
    std::set<const Func *> seen;
    collectRoots(def.output, order, seen);

    for (const FuncPtr &f : order) {
        StageInfo s;
        s.func = f;
        if (!f->isInput()) {
            s.rhs = inlineExpr(f->rhs());
            for (const UpdateDef &u : f->updates()) {
                UpdateDef iu = u;
                iu.value = inlineExpr(u.value);
                iu.idxX = inlineExpr(u.idxX);
                if (u.idxY.defined())
                    iu.idxY = inlineExpr(u.idxY);
                s.updates.push_back(iu);
            }
            s.isReduction = f->hasUpdate();
            collectCalls(s.rhs, s.calls, f->varX(), f->varY());
        }
        s.region = {{0, -1}, {0, -1}}; // empty until inference
        pa.stages.push_back(std::move(s));
    }

    // Bounds inference, consumers before producers.
    StageInfo &outStage = pa.stageOf(def.output);
    outStage.region = {{0, def.width - 1},
                       def.output->dims() == 2 ? Interval{0, def.height - 1}
                                               : Interval{0, 0}};
    if (outStage.isReduction) {
        // A reduction output's region comes from its scatter bounds.
        Interval xr(0, 0), yr(0, 0);
        for (const UpdateDef &u : outStage.updates) {
            Interval rx(0, u.dom.extentX - 1);
            Interval ry(0, std::max<i64>(u.dom.extentY - 1, 0));
            xr = xr.hull(indexInterval(u.idxX, u.dom.x.name, u.dom.y.name,
                                       rx, ry));
            if (u.idxY.defined())
                yr = yr.hull(indexInterval(u.idxY, u.dom.x.name,
                                           u.dom.y.name, rx, ry));
        }
        outStage.region = {xr, yr};
    }

    for (auto it = pa.stages.rbegin(); it != pa.stages.rend(); ++it) {
        StageInfo &consumer = *it;
        if (consumer.func->isInput())
            continue;
        if (consumer.region.x.empty())
            fatal("stage ", consumer.func->name(),
                  " has no consumers and is not the output");

        auto require = [&](const FuncPtr &callee, const Interval &xr,
                           const Interval &yr) {
            StageInfo &prod = pa.stageOf(callee);
            prod.region.x = prod.region.x.hull(xr);
            prod.region.y = callee->dims() == 2
                                ? prod.region.y.hull(yr)
                                : Interval{0, 0};
        };

        const std::string &xv = consumer.func->varX();
        const std::string &yv = consumer.func->varY();
        for (const CallSite &cs : consumer.calls) {
            Interval xr = indexInterval(cs.rawX, xv, yv,
                                        consumer.region.x,
                                        consumer.region.y);
            Interval yr = indexInterval(cs.rawY, xv, yv,
                                        consumer.region.x,
                                        consumer.region.y);
            require(cs.callee, xr, yr);
        }
        for (const UpdateDef &u : consumer.updates) {
            Interval rx(0, u.dom.extentX - 1);
            Interval ry(0, std::max<i64>(u.dom.extentY - 1, 0));
            std::vector<CallSite> calls;
            collectCalls(u.value, calls, u.dom.x.name, u.dom.y.name);
            collectCalls(u.idxX, calls, u.dom.x.name, u.dom.y.name);
            if (u.idxY.defined())
                collectCalls(u.idxY, calls, u.dom.x.name, u.dom.y.name);
            for (const CallSite &cs : calls) {
                Interval xr = indexInterval(cs.rawX, u.dom.x.name,
                                            u.dom.y.name, rx, ry);
                Interval yr = indexInterval(cs.rawY, u.dom.x.name,
                                            u.dom.y.name, rx, ry);
                require(cs.callee, xr, yr);
            }
        }
    }

    for (StageInfo &s : pa.stages) {
        if (s.region.x.empty())
            fatal("stage ", s.func->name(), " ended up with an empty "
                  "region; is it disconnected from the output?");
    }
    return pa;
}

} // namespace ipim
