/**
 * @file
 * Internal structures shared by the pointwise and reduction kernel
 * emitters.  Not part of the public compiler API.
 */
#ifndef IPIM_COMPILER_CODEGEN_INTERNAL_H_
#define IPIM_COMPILER_CODEGEN_INTERNAL_H_

#include <map>
#include <set>
#include <vector>

#include "compiler/builder.h"
#include "compiler/codegen.h"

namespace ipim {
namespace codegen {

/** How one PGSM-region row is sourced during the fill phase. */
enum class RowSrc : u8 {
    kLocalBank, ///< owned by this PG: ld_pgsm from own banks
    kVsm,       ///< staged in the VSM (pushed by a sibling PG or req'd)
    kSkip,      ///< outside the producer's region (never consumed)
};

/** Fill descriptor of one PGSM row for a given (pg, iteration). */
struct RowFill
{
    i64 rowRel = 0;    ///< PGSM row index within the callee's buffer
    RowSrc src = RowSrc::kSkip;
    // kLocalBank:
    i64 lTR = 0;       ///< callee-local tile row (bank addressing)
    i64 inTileRow = 0; ///< row within the tile
    // kVsm:
    i64 stageRow = 0;  ///< row index within this PG's staging block

    bool operator==(const RowFill &o) const = default;
    auto operator<=>(const RowFill &o) const = default;
};

/** Per-callee PGSM plan (geometry is identical for all vaults). */
struct CalleePlan
{
    const Func *g = nullptr;
    Layout gl;
    bool replicated = false;
    i64 cx = 1, div = 1;   ///< common x scale of all calls to g
    i64 inLo0 = 0;         ///< input-x hull low at slot group 0 (abs)
    i64 inHi0 = 0;         ///< input-x hull high at slot group 0 (abs)
    i64 advPx = 0;         ///< input-x advance per slot group, in pixels
    i64 unroll = 1;        ///< slot groups per uniform super-iteration
    i64 tcFirst0 = 0;      ///< first needed g tile col at slot group 0
    i64 tcCount = 0;       ///< max needed g tile cols per group
    i64 rowStride = 0;     ///< PGSM bytes per region row
    u32 pgsmBase = 0;      ///< PGSM byte offset of this callee's buffer
    i64 maxRows = 0;       ///< PGSM rows reserved
    // VSM staging: one deduplicated slot per producer row any PG of the
    // current vault needs from outside its own banks.
    u32 stageBase = 0;     ///< VSM byte offset
    i64 stageRowBytes = 0; ///< bytes per staged row (full padded width)
    std::map<i64, i64> stageSlotOf; ///< producer row -> staging slot
};

/** Static description of one unrolled tile-row iteration for one PG. */
struct PgIter
{
    u32 pg = 0;
    i64 tileRow = 0;   ///< global tile row of the output layout
    i64 outY0 = 0;     ///< first output pixel row of the tile
    /// Per callee (parallel to the plan vector): fill rows.
    std::vector<std::vector<RowFill>> fills;

    bool
    sameFillAs(const PgIter &o) const
    {
        return fills == o.fills;
    }
};

/** The s-range a body instantiation covers. */
struct SRange
{
    i64 sStart = 0;
    i64 sCount = 0;
    u32 peMask = 0xF; ///< PEs active in the (possibly partial) group
};

} // namespace codegen
} // namespace ipim

#endif // IPIM_COMPILER_CODEGEN_INTERNAL_H_
