#include "metrics/prometheus.h"

#include <cmath>
#include <cstdio>

namespace ipim {

std::string
PrometheusWriter::sanitizeName(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (u32 i = 0; i < s.size(); ++i) {
        char c = s[i];
        bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                     c == '_' || c == ':';
        bool digit = c >= '0' && c <= '9';
        out += alpha || (digit && i > 0) ? c : '_';
    }
    return out.empty() ? "_" : out;
}

std::string
PrometheusWriter::formatValue(f64 v)
{
    if (std::isnan(v))
        return "NaN";
    if (std::isinf(v))
        return v > 0 ? "+Inf" : "-Inf";
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

std::string
PrometheusWriter::escapeLabel(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '"')
            out += "\\\"";
        else if (c == '\n')
            out += "\\n";
        else
            out += c;
    }
    return out;
}

void
PrometheusWriter::help(const std::string &name, const std::string &text)
{
    out_ += "# HELP " + sanitizeName(name) + " " + text + "\n";
}

void
PrometheusWriter::type(const std::string &name, const std::string &t)
{
    out_ += "# TYPE " + sanitizeName(name) + " " + t + "\n";
}

void
PrometheusWriter::metric(const std::string &name, f64 value,
                         const Labels &labels)
{
    out_ += sanitizeName(name);
    if (!labels.empty()) {
        out_ += "{";
        for (u32 i = 0; i < labels.size(); ++i) {
            if (i > 0)
                out_ += ",";
            out_ += sanitizeName(labels[i].first) + "=\"" +
                    escapeLabel(labels[i].second) + "\"";
        }
        out_ += "}";
    }
    out_ += " " + formatValue(value) + "\n";
}

void
PrometheusWriter::summary(const std::string &name,
                          const LatencyHistogram &h,
                          const std::string &helpText,
                          const Labels &labels)
{
    help(name, helpText);
    type(name, "summary");
    if (h.count() > 0) {
        const f64 qs[] = {50.0, 95.0, 99.0};
        const char *qlabel[] = {"0.5", "0.95", "0.99"};
        for (u32 i = 0; i < 3; ++i) {
            Labels l = labels;
            l.emplace_back("quantile", qlabel[i]);
            metric(name, h.percentile(qs[i]), l);
        }
    }
    metric(name + "_sum", h.sum(), labels);
    metric(name + "_count", f64(h.count()), labels);
}

} // namespace ipim
