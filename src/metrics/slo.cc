#include "metrics/slo.h"

#include "common/logging.h"

namespace ipim {

SloTracker::SloTracker(Cycle windowCycles) : windowCycles_(windowCycles)
{
    if (windowCycles_ == 0)
        fatal("SloTracker window must be at least 1 cycle");
}

SloTracker::Window &
SloTracker::windowFor(Cycle finish)
{
    u64 idx = finish / windowCycles_;
    if (windows_.empty()) {
        Window w;
        w.index = idx;
        windows_.push_back(std::move(w));
        return windows_.back();
    }
    u64 first = windows_.front().index;
    u64 last = windows_.back().index;
    if (idx > last) {
        for (u64 i = last + 1; i <= idx; ++i) {
            Window w;
            w.index = i;
            windows_.push_back(std::move(w));
        }
        return windows_.back();
    }
    if (idx < first) {
        // Out-of-order completion before the first window; keep the
        // vector contiguous by prepending the gap.
        std::vector<Window> pre(first - idx);
        for (u64 i = 0; i < pre.size(); ++i)
            pre[i].index = idx + i;
        windows_.insert(windows_.begin(),
                        std::make_move_iterator(pre.begin()),
                        std::make_move_iterator(pre.end()));
        return windows_.front();
    }
    return windows_[idx - first];
}

void
SloTracker::record(Cycle finish, Cycle totalLatency, Cycle queueLatency,
                   bool cacheHit)
{
    Window &w = windowFor(finish);
    ++w.requests;
    w.cacheHits += cacheHit ? 1 : 0;
    w.totalLatency.add(f64(totalLatency));
    w.queueLatency.add(f64(queueLatency));

    ++requests_;
    cacheHits_ += cacheHit ? 1 : 0;
    total_.add(f64(totalLatency));
    queue_.add(f64(queueLatency));
}

void
SloTracker::merge(const SloTracker &other)
{
    if (other.windowCycles_ != windowCycles_)
        fatal("SloTracker merge window mismatch: ", windowCycles_,
              " vs ", other.windowCycles_);
    for (const Window &ow : other.windows_) {
        // windowFor materializes any gap; the representative finish
        // time of window i is i * windowCycles.
        Window &w = windowFor(Cycle(ow.index) * windowCycles_);
        w.requests += ow.requests;
        w.cacheHits += ow.cacheHits;
        w.totalLatency.merge(ow.totalLatency);
        w.queueLatency.merge(ow.queueLatency);
    }
    requests_ += other.requests_;
    cacheHits_ += other.cacheHits_;
    total_.merge(other.total_);
    queue_.merge(other.queue_);
}

f64
SloTracker::throughputRps(Cycle makespan) const
{
    if (makespan == 0)
        return 0.0;
    return f64(requests_) / (f64(makespan) * 1e-9);
}

void
SloTracker::exportTo(StatsRegistry &reg) const
{
    reg.set("slo.requests", f64(requests_));
    reg.set("slo.cacheHitRate", cacheHitRate());
    reg.set("slo.windows", f64(windows_.size()));
    total_.exportTo(reg, "slo.total");
    queue_.exportTo(reg, "slo.queue");
}

void
SloTracker::toJson(JsonWriter &w, Cycle makespan) const
{
    auto summary = [&](const LatencyHistogram &h) {
        w.beginObject();
        w.field("count", h.count());
        if (h.count() > 0) {
            w.field("mean", h.mean());
            w.field("p50", h.percentile(50));
            w.field("p95", h.percentile(95));
            w.field("p99", h.percentile(99));
        }
        w.endObject();
    };

    w.beginObject();
    w.field("window_cycles", u64(windowCycles_));
    w.field("requests", requests_);
    w.field("cache_hit_rate", cacheHitRate());
    w.field("throughput_rps", throughputRps(makespan));
    w.key("total_latency");
    summary(total_);
    w.key("queue_latency");
    summary(queue_);
    w.key("windows").beginArray();
    for (const Window &win : windows_) {
        w.beginObject();
        w.field("index", win.index);
        w.field("start_cycle", win.index * u64(windowCycles_));
        w.field("requests", win.requests);
        w.field("cache_hits", win.cacheHits);
        w.key("total_latency");
        summary(win.totalLatency);
        w.key("queue_latency");
        summary(win.queueLatency);
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

std::string
SloTracker::prometheusText(Cycle makespan) const
{
    PrometheusWriter pw;
    pw.help("ipim_serve_requests_total", "Requests served");
    pw.type("ipim_serve_requests_total", "counter");
    pw.metric("ipim_serve_requests_total", f64(requests_));

    pw.help("ipim_serve_cache_hit_rate",
            "Program-cache hit rate over all requests");
    pw.type("ipim_serve_cache_hit_rate", "gauge");
    pw.metric("ipim_serve_cache_hit_rate", cacheHitRate());

    pw.help("ipim_serve_throughput_rps",
            "Requests per second of virtual time");
    pw.type("ipim_serve_throughput_rps", "gauge");
    pw.metric("ipim_serve_throughput_rps", throughputRps(makespan));

    pw.summary("ipim_serve_latency_cycles", total_,
               "End-to-end request latency in device cycles");
    pw.summary("ipim_serve_queue_cycles", queue_,
               "Queue wait in device cycles");
    return pw.str();
}

} // namespace ipim
