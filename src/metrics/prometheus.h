/**
 * @file
 * Prometheus text-exposition (version 0.0.4) writer for the serving
 * layer's SLO metrics (DESIGN.md Sec. 14).  Write-only, like the JSON
 * emitter: the repo never parses the format, it only produces snapshots
 * for scraping/diffing.
 */
#ifndef IPIM_METRICS_PROMETHEUS_H_
#define IPIM_METRICS_PROMETHEUS_H_

#include <string>
#include <utility>
#include <vector>

#include "common/histogram.h"

namespace ipim {

/** Streaming writer for the Prometheus text exposition format. */
class PrometheusWriter
{
  public:
    using Labels = std::vector<std::pair<std::string, std::string>>;

    /** Emit "# HELP <name> <text>". */
    void help(const std::string &name, const std::string &text);
    /** Emit "# TYPE <name> <type>" (counter | gauge | summary). */
    void type(const std::string &name, const std::string &t);
    /** Emit one sample line, with optional labels. */
    void metric(const std::string &name, f64 value,
                const Labels &labels = {});

    /**
     * Emit a full summary family from @p h: quantile-labelled lines for
     * p50/p95/p99 plus <name>_sum and <name>_count.  Empty histograms
     * emit only _sum/_count (matching LatencyHistogram::exportTo's
     * "absent means no samples" convention).
     */
    void summary(const std::string &name, const LatencyHistogram &h,
                 const std::string &helpText, const Labels &labels = {});

    /** Map an arbitrary string to a legal metric name
     *  ([a-zA-Z_:][a-zA-Z0-9_:]*; everything else becomes '_'). */
    static std::string sanitizeName(const std::string &s);

    const std::string &str() const { return out_; }

  private:
    static std::string formatValue(f64 v); ///< +Inf/-Inf/NaN aware
    static std::string escapeLabel(const std::string &s);

    std::string out_;
};

} // namespace ipim

#endif // IPIM_METRICS_PROMETHEUS_H_
