/**
 * @file
 * Time-series metrics sampling (DESIGN.md Sec. 14).
 *
 * MetricsSampler is a DeviceProbe that, every `interval` cycles, records
 * one row into a fixed-capacity ring buffer: the *delta* of each tracked
 * StatsRegistry counter over the window just ended, plus instantaneous
 * gauges read from the live device (per-vault IIQ occupancy, PE busy
 * fraction, memory-controller queue depth, per-cube mesh occupancy, and
 * the windowed DRAM row-hit rate).
 *
 * The series are bit-identical between dense and fast-forward runs: the
 * device drives sample() on exactly the interval boundaries in dense
 * mode, and around a fast-forward jump over [from, to) the sampler
 * snapshots the pre-credit counters (beforeJump) and back-fills every
 * elided boundary by exact linear interpolation (afterJump).  Inside a
 * skip window only bulk-credited counters change, at constant integer
 * per-cycle rates, and gauges are frozen, so the interpolated rows equal
 * the dense rows bit for bit (pinned by tests/test_metrics.cc).
 */
#ifndef IPIM_METRICS_METRICS_H_
#define IPIM_METRICS_METRICS_H_

#include <string>
#include <vector>

#include "common/json.h"
#include "sim/device.h"

namespace ipim {

class MetricsSampler : public DeviceProbe
{
  public:
    struct Config
    {
        /** Sampling period in cycles; 0 disables sampling entirely. */
        Cycle interval = 1024;
        /** Ring-buffer capacity; the oldest rows are evicted first. */
        u32 capacity = 4096;
        /**
         * StatsRegistry counters to track (windowed deltas).  Empty
         * selects the default set (core/dram/noc/tsv/pe counters).
         */
        std::vector<std::string> counters;
    };

    MetricsSampler(); ///< default Config (1024-cycle interval)
    explicit MetricsSampler(Config cfg);

    /** The default tracked-counter set (Config::counters empty). */
    static std::vector<std::string> defaultCounters();

    // --- DeviceProbe ---
    Cycle nextSampleAt(Cycle now) const override;
    void sample(Device &dev, Cycle now) override;
    void beforeJump(Device &dev, Cycle from, Cycle to) override;
    void afterJump(Device &dev, Cycle from, Cycle to) override;
    void onDeviceReset(Device &dev) override;

    Cycle interval() const { return cfg_.interval; }
    u32 capacity() const { return cfg_.capacity; }

    /**
     * Added to every recorded row timestamp.  The fleet layer maps each
     * occupancy's device-local clock (restarting at 0 after
     * Device::reset()) onto the fleet virtual timeline by setting this
     * to the occupancy's exec-start cycle before launching — the same
     * contract as Tracer::setTimeOffset.
     */
    void setTimeOffset(Cycle offset) { offset_ = offset; }
    Cycle timeOffset() const { return offset_; }

    /**
     * Keep the recorded rows across Device::reset() (fleet mode: one
     * reset per occupancy, but the series spans the whole run).  Only
     * the delta baseline is rezeroed — device counters restart at 0
     * after a reset, so the first post-reset row deltas from zero.
     */
    void setRetainOnReset(bool on) { retainOnReset_ = on; }

    /** Drop all recorded rows and rezero the delta baseline (a fresh
     *  run on the same schema; works in either reset mode). */
    void clear();

    /** Samples taken since construction/reset (including evicted). */
    u64 samplesTotal() const { return samplesTotal_; }
    /** Samples currently retained in the ring. */
    u32 samplesRetained() const { return u32(rows_.size()); }

    /** Timestamps of the retained rows, oldest first. */
    std::vector<Cycle> timestamps() const;
    /** Tracked counter names, in column order. */
    const std::vector<std::string> &counterNames() const
    {
        return counterNames_;
    }
    /** Gauge names (fixed at the first sample, from the geometry). */
    const std::vector<std::string> &gaugeNames() const
    {
        return gaugeNames_;
    }
    /** Retained series (windowed deltas) for counter @p name. */
    std::vector<f64> counterSeries(const std::string &name) const;
    /** Retained series for gauge @p name. */
    std::vector<f64> gaugeSeries(const std::string &name) const;

    /**
     * Emit the retained time series as one JSON object value (the
     * caller supplies the key): interval, capacity, samples_total,
     * samples_retained, timestamps, counters{name: [...]},
     * gauges{name: [...]}.  tools/validate_trace.py checks this shape.
     */
    void toJson(JsonWriter &w) const;

  private:
    struct Row
    {
        Cycle t = 0;
        std::vector<f64> counters; ///< windowed deltas, column order
        std::vector<f64> gauges;
    };

    void initSchema(const Device &dev);
    std::vector<f64> readCounters(const Device &dev) const;
    std::vector<f64> readGauges(const Device &dev) const;
    void pushRow(Cycle t, const std::vector<f64> &absCounters,
                 std::vector<f64> gauges);

    Config cfg_;
    Cycle offset_ = 0;
    bool retainOnReset_ = false;
    std::vector<std::string> counterNames_;
    std::vector<std::string> gaugeNames_;
    bool schemaReady_ = false;
    u32 rowHitIdx_ = ~0u;  ///< column of dram.rowHit (row-hit-rate gauge)
    u32 rowMissIdx_ = ~0u; ///< column of dram.rowMiss

    std::vector<f64> prev_; ///< absolute counter values at the last row

    // Fast-forward back-fill state (valid between before/afterJump).
    std::vector<f64> jumpPre_;   ///< pre-credit absolute counters
    std::vector<f64> jumpGauge_; ///< gauges (frozen through the window)

    std::vector<Row> rows_; ///< ring buffer, oldest at rowsHead_
    u32 rowsHead_ = 0;
    u64 samplesTotal_ = 0;
};

} // namespace ipim

#endif // IPIM_METRICS_METRICS_H_
