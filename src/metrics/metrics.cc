#include "metrics/metrics.h"

#include "common/logging.h"

namespace ipim {

MetricsSampler::MetricsSampler() : MetricsSampler(Config()) {}

MetricsSampler::MetricsSampler(Config cfg) : cfg_(cfg)
{
    if (cfg_.capacity == 0)
        fatal("MetricsSampler capacity must be at least 1");
}

std::vector<std::string>
MetricsSampler::defaultCounters()
{
    return {
        "core.cycles",   "core.issued",       "core.bubble",
        "core.barrierStall", "core.drainStall", "core.structStall",
        "core.hazardStall", "core.retired",    "sim.cycles",
        "dram.rd",       "dram.wr",           "dram.act",
        "dram.ref",      "dram.rowHit",       "dram.rowMiss",
        "noc.hops",      "noc.delivered",     "noc.injected",
        "tsv.beats",     "tsv.broadcasts",    "pe.simdOp",
        "pe.intAluOp",
    };
}

Cycle
MetricsSampler::nextSampleAt(Cycle now) const
{
    if (cfg_.interval == 0)
        return kNeverCycle;
    Cycle rem = now % cfg_.interval;
    return rem == 0 ? now : now + (cfg_.interval - rem);
}

void
MetricsSampler::initSchema(const Device &dev)
{
    counterNames_ =
        cfg_.counters.empty() ? defaultCounters() : cfg_.counters;
    for (u32 i = 0; i < counterNames_.size(); ++i) {
        if (counterNames_[i] == "dram.rowHit")
            rowHitIdx_ = i;
        if (counterNames_[i] == "dram.rowMiss")
            rowMissIdx_ = i;
    }

    const HardwareConfig &cfg = dev.cfg();
    gaugeNames_.clear();
    for (u32 c = 0; c < cfg.cubes; ++c) {
        for (u32 v = 0; v < cfg.vaultsPerCube; ++v) {
            std::string suffix =
                ".c" + std::to_string(c) + ".v" + std::to_string(v);
            gaugeNames_.push_back("iiq" + suffix);
            gaugeNames_.push_back("peBusy" + suffix);
            gaugeNames_.push_back("mcQueue" + suffix);
        }
        gaugeNames_.push_back("noc.c" + std::to_string(c));
    }
    if (rowHitIdx_ != ~0u && rowMissIdx_ != ~0u)
        gaugeNames_.push_back("dram.rowHitRate");

    prev_.assign(counterNames_.size(), 0.0);
    schemaReady_ = true;
}

std::vector<f64>
MetricsSampler::readCounters(const Device &dev) const
{
    std::vector<f64> abs(counterNames_.size());
    const StatsRegistry &stats = dev.stats();
    for (u32 i = 0; i < counterNames_.size(); ++i)
        abs[i] = stats.get(counterNames_[i]);
    return abs;
}

std::vector<f64>
MetricsSampler::readGauges(const Device &dev) const
{
    // One slot per gauge name except the delta-derived row-hit rate,
    // which pushRow appends.
    std::vector<f64> g;
    g.reserve(gaugeNames_.size());
    const HardwareConfig &cfg = dev.cfg();
    // Device only exposes non-const traversal; gauge reads are
    // side-effect free (Vault doc: "cheap, side-effect free").
    Device &d = const_cast<Device &>(dev);
    for (u32 c = 0; c < cfg.cubes; ++c) {
        for (u32 v = 0; v < cfg.vaultsPerCube; ++v) {
            const Vault &vt = d.vault(c, v);
            g.push_back(f64(vt.iiqDepth()));
            g.push_back(f64(vt.busyPes()) / f64(cfg.pesPerVault()));
            g.push_back(f64(vt.mcQueueDepth()));
        }
        g.push_back(f64(d.cube(c).nocQueuedPackets()));
    }
    return g;
}

void
MetricsSampler::pushRow(Cycle t, const std::vector<f64> &absCounters,
                        std::vector<f64> gauges)
{
    Row row;
    row.t = t + offset_;
    row.counters.resize(absCounters.size());
    for (u32 i = 0; i < absCounters.size(); ++i)
        row.counters[i] = absCounters[i] - prev_[i];
    prev_ = absCounters;

    if (rowHitIdx_ != ~0u && rowMissIdx_ != ~0u) {
        f64 hits = row.counters[rowHitIdx_];
        f64 total = hits + row.counters[rowMissIdx_];
        gauges.push_back(total > 0.0 ? hits / total : 0.0);
    }
    row.gauges = std::move(gauges);

    ++samplesTotal_;
    if (rows_.size() < cfg_.capacity) {
        rows_.push_back(std::move(row));
    } else {
        rows_[rowsHead_] = std::move(row);
        rowsHead_ = (rowsHead_ + 1) % cfg_.capacity;
    }
}

void
MetricsSampler::sample(Device &dev, Cycle now)
{
    if (!schemaReady_)
        initSchema(dev);
    pushRow(now, readCounters(dev), readGauges(dev));
}

void
MetricsSampler::beforeJump(Device &dev, Cycle from, Cycle to)
{
    (void)from;
    (void)to;
    if (!schemaReady_)
        initSchema(dev);
    // State here is "after cycles [0, from)" — exactly what a dense
    // loop-top sample at cycle `from` would see.  Gauges cannot change
    // inside the quiescent window, so one snapshot serves every
    // back-filled boundary.
    jumpPre_ = readCounters(dev);
    jumpGauge_ = readGauges(dev);
}

void
MetricsSampler::afterJump(Device &dev, Cycle from, Cycle to)
{
    std::vector<f64> post = readCounters(dev);
    f64 skipped = f64(to - from);
    std::vector<f64> abs(post.size());
    for (Cycle b = nextSampleAt(from); b < to; b += cfg_.interval) {
        // Bulk-credited counters grow at a constant integer per-cycle
        // rate through the window, so rate and rate*(b-from) are exact
        // in f64 (all quantities < 2^53) and the row equals the dense
        // sample bit for bit.
        for (u32 i = 0; i < post.size(); ++i) {
            f64 rate = (post[i] - jumpPre_[i]) / skipped;
            abs[i] = jumpPre_[i] + rate * f64(b - from);
        }
        pushRow(b, abs, jumpGauge_);
    }
}

void
MetricsSampler::onDeviceReset(Device &dev)
{
    (void)dev;
    // Device counters restart at zero after a reset, so the delta
    // baseline always rezeroes; in retain mode the recorded series
    // survives (the fleet resets a slot device once per occupancy).
    prev_.assign(prev_.size(), 0.0);
    if (retainOnReset_)
        return;
    rows_.clear();
    rowsHead_ = 0;
    samplesTotal_ = 0;
}

void
MetricsSampler::clear()
{
    rows_.clear();
    rowsHead_ = 0;
    samplesTotal_ = 0;
    prev_.assign(prev_.size(), 0.0);
}

std::vector<Cycle>
MetricsSampler::timestamps() const
{
    std::vector<Cycle> ts;
    ts.reserve(rows_.size());
    for (u32 i = 0; i < rows_.size(); ++i)
        ts.push_back(rows_[(rowsHead_ + i) % rows_.size()].t);
    return ts;
}

std::vector<f64>
MetricsSampler::counterSeries(const std::string &name) const
{
    std::vector<f64> s;
    for (u32 col = 0; col < counterNames_.size(); ++col) {
        if (counterNames_[col] != name)
            continue;
        s.reserve(rows_.size());
        for (u32 i = 0; i < rows_.size(); ++i)
            s.push_back(
                rows_[(rowsHead_ + i) % rows_.size()].counters[col]);
        return s;
    }
    return s;
}

std::vector<f64>
MetricsSampler::gaugeSeries(const std::string &name) const
{
    std::vector<f64> s;
    for (u32 col = 0; col < gaugeNames_.size(); ++col) {
        if (gaugeNames_[col] != name)
            continue;
        s.reserve(rows_.size());
        for (u32 i = 0; i < rows_.size(); ++i)
            s.push_back(rows_[(rowsHead_ + i) % rows_.size()].gauges[col]);
        return s;
    }
    return s;
}

void
MetricsSampler::toJson(JsonWriter &w) const
{
    w.beginObject();
    w.field("interval", u64(cfg_.interval));
    w.field("capacity", u64(cfg_.capacity));
    w.field("samples_total", samplesTotal_);
    w.field("samples_retained", u64(rows_.size()));
    w.key("timestamps").beginArray();
    for (u32 i = 0; i < rows_.size(); ++i)
        w.value(u64(rows_[(rowsHead_ + i) % rows_.size()].t));
    w.endArray();
    w.key("counters").beginObject();
    for (u32 col = 0; col < counterNames_.size(); ++col) {
        w.key(counterNames_[col]).beginArray();
        for (u32 i = 0; i < rows_.size(); ++i)
            w.value(rows_[(rowsHead_ + i) % rows_.size()].counters[col]);
        w.endArray();
    }
    w.endObject();
    w.key("gauges").beginObject();
    for (u32 col = 0; col < gaugeNames_.size(); ++col) {
        w.key(gaugeNames_[col]).beginArray();
        for (u32 i = 0; i < rows_.size(); ++i)
            w.value(rows_[(rowsHead_ + i) % rows_.size()].gauges[col]);
        w.endArray();
    }
    w.endObject();
    w.endObject();
}

} // namespace ipim
