/**
 * @file
 * Bottleneck profiler (DESIGN.md Sec. 14): folds the per-vault
 * issue-slot cycle accounting (Vault's IssueAccounting, accumulated
 * across kernels by the runtime) into a cycle-accounting report, and
 * checks the achieved TSV / DRAM / SIMD rates against the Table III
 * peaks (roofline).  Surfaced by the `ipim profile` subcommand.
 */
#ifndef IPIM_METRICS_PROFILE_H_
#define IPIM_METRICS_PROFILE_H_

#include <string>
#include <vector>

#include "common/json.h"
#include "sim/vault.h"

namespace ipim {

/** One roofline line: achieved vs. peak rate, both per device cycle. */
struct RooflineEntry
{
    std::string name; ///< "tsv-bandwidth" | "dram-bandwidth" | ...
    std::string unit; ///< e.g. "bytes/cycle"
    f64 achieved = 0.0;
    f64 peak = 0.0;

    f64 utilization() const { return peak > 0.0 ? achieved / peak : 0.0; }
};

struct ProfileReport
{
    u32 cubes = 0;
    u32 vaultsPerCube = 0;
    Cycle deviceCycles = 0; ///< total simulated cycles of the launch

    std::vector<IssueAccounting> vaults; ///< chip-major, all kernels
    IssueAccounting total;               ///< sum over vaults

    std::vector<RooflineEntry> rooflines;

    /**
     * Dominant limiter: "<roofline>-bound" when some roofline runs at
     * >= 50% of peak (highest utilization wins), otherwise
     * "core:<category>" for the issue-slot category (issued, halted, or
     * a stall reason) that consumes the largest cycle share.
     */
    std::string bottleneck;

    /** Human-readable table + roofline summary. */
    std::string toString() const;

    /** Emit as one JSON object value (caller supplies the key). */
    void toJson(JsonWriter &w) const;
};

/**
 * Build the report for one finished launch.  @p vaultAccounting is
 * LaunchResult::vaultAccounting (chip-major, accumulated over kernels);
 * @p deviceCycles is LaunchResult::cycles; @p stats the device stats.
 */
ProfileReport buildProfileReport(const HardwareConfig &cfg,
                                 const StatsRegistry &stats,
                                 const std::vector<IssueAccounting>
                                     &vaultAccounting,
                                 Cycle deviceCycles);

} // namespace ipim

#endif // IPIM_METRICS_PROFILE_H_
