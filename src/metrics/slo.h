/**
 * @file
 * Serving SLO metrics (DESIGN.md Sec. 14): rolling-window latency
 * percentiles, throughput, queue wait, and program-cache hit rate for
 * the multi-tenant server.  Windows are tumbling (request with finish
 * time t lands in window t / windowCycles) so the aggregation is
 * deterministic and independent of record order.
 */
#ifndef IPIM_METRICS_SLO_H_
#define IPIM_METRICS_SLO_H_

#include <vector>

#include "common/histogram.h"
#include "common/json.h"
#include "metrics/prometheus.h"

namespace ipim {

class SloTracker
{
  public:
    /** One tumbling window: [index*windowCycles, (index+1)*windowCycles). */
    struct Window
    {
        u64 index = 0;
        u64 requests = 0;
        u64 cacheHits = 0;
        LatencyHistogram totalLatency;
        LatencyHistogram queueLatency;
    };

    explicit SloTracker(Cycle windowCycles = 1'000'000);

    /** Record one completed request. */
    void record(Cycle finish, Cycle totalLatency, Cycle queueLatency,
                bool cacheHit);

    /**
     * Fold @p other into this tracker (fleet aggregation, DESIGN.md
     * Sec. 17): windows with the same index combine sample-exactly
     * (LatencyHistogram::merge), gaps are materialized so the merged
     * series stays contiguous, and the aggregate percentiles come from
     * the pooled samples — never from averaged per-shard percentiles.
     * Both trackers must use the same window size (fatal otherwise).
     */
    void merge(const SloTracker &other);

    Cycle windowCycles() const { return windowCycles_; }
    u64 requests() const { return requests_; }
    u64 cacheHits() const { return cacheHits_; }
    f64 cacheHitRate() const
    {
        return requests_ == 0 ? 0.0 : f64(cacheHits_) / f64(requests_);
    }

    /** All windows between the first and last finish, gaps included
     *  (empty windows are materialized so series are contiguous). */
    const std::vector<Window> &windows() const { return windows_; }

    const LatencyHistogram &totalLatency() const { return total_; }
    const LatencyHistogram &queueLatency() const { return queue_; }

    /** Requests per second of virtual time (1 cycle == 1 ns). */
    f64 throughputRps(Cycle makespan) const;

    /**
     * Export slo.* keys into @p reg: slo.requests, slo.cacheHitRate,
     * slo.windows, plus slo.total/slo.queue latency summaries
     * (LatencyHistogram::exportTo semantics).
     */
    void exportTo(StatsRegistry &reg) const;

    /** Emit as one JSON object value (caller supplies the key). */
    void toJson(JsonWriter &w, Cycle makespan) const;

    /** Prometheus text-exposition snapshot of the aggregate SLOs. */
    std::string prometheusText(Cycle makespan) const;

  private:
    Window &windowFor(Cycle finish);

    Cycle windowCycles_;
    std::vector<Window> windows_; ///< sorted by index, contiguous
    LatencyHistogram total_;
    LatencyHistogram queue_;
    u64 requests_ = 0;
    u64 cacheHits_ = 0;
};

} // namespace ipim

#endif // IPIM_METRICS_SLO_H_
