#include "metrics/profile.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"

namespace ipim {

namespace {

/** The issue-slot categories, in display order. */
struct Category
{
    const char *name;
    u64 IssueAccounting::*field;
};

constexpr Category kCategories[] = {
    {"issued", &IssueAccounting::issued},
    {"bubble", &IssueAccounting::bubble},
    {"barrier", &IssueAccounting::barrier},
    {"drain", &IssueAccounting::drain},
    {"struct", &IssueAccounting::structStall},
    {"hazard", &IssueAccounting::hazard},
};

f64
pct(u64 part, u64 whole)
{
    return whole == 0 ? 0.0 : 100.0 * f64(part) / f64(whole);
}

} // namespace

ProfileReport
buildProfileReport(const HardwareConfig &cfg, const StatsRegistry &stats,
                   const std::vector<IssueAccounting> &vaultAccounting,
                   Cycle deviceCycles)
{
    ProfileReport rep;
    rep.cubes = cfg.cubes;
    rep.vaultsPerCube = cfg.vaultsPerCube;
    rep.deviceCycles = deviceCycles;
    rep.vaults = vaultAccounting;
    for (const IssueAccounting &a : rep.vaults)
        rep.total.accumulate(a);

    f64 cycles = f64(deviceCycles);
    u64 totalVaults = u64(cfg.cubes) * cfg.vaultsPerCube;
    u64 totalPgs = totalVaults * cfg.pgsPerVault;
    u64 totalPes = totalPgs * cfg.pesPerPg;

    // Table III peaks, per device cycle (1 cycle == 1 ns at 1 GHz).
    // TSV: each vault's shared bus moves one 128b beat per cycle.
    RooflineEntry tsv;
    tsv.name = "tsv-bandwidth";
    tsv.unit = "bytes/cycle";
    tsv.peak = f64(totalVaults) * kVectorBytes / f64(cfg.latency.tsv);
    tsv.achieved =
        cycles > 0 ? stats.get("tsv.beats") * kVectorBytes / cycles : 0.0;
    rep.rooflines.push_back(tsv);

    // DRAM: each process group's controller sustains one 128b CAS per
    // tCCD cycles.
    RooflineEntry dram;
    dram.name = "dram-bandwidth";
    dram.unit = "bytes/cycle";
    dram.peak = f64(totalPgs) * kVectorBytes / f64(cfg.timing.tCCD);
    dram.achieved =
        cycles > 0
            ? (stats.get("dram.rd") + stats.get("dram.wr")) *
                  kVectorBytes / cycles
            : 0.0;
    rep.rooflines.push_back(dram);

    // SIMD: every PE retires at most one SIMD operation per cycle.
    RooflineEntry simd;
    simd.name = "simd-throughput";
    simd.unit = "ops/cycle";
    simd.peak = f64(totalPes);
    simd.achieved = cycles > 0 ? stats.get("pe.simdOp") / cycles : 0.0;
    rep.rooflines.push_back(simd);

    // Bottleneck: a roofline running at >= 50% of peak dominates;
    // otherwise blame the largest issue-slot cycle share.
    const RooflineEntry *top = &rep.rooflines[0];
    for (const RooflineEntry &r : rep.rooflines)
        if (r.utilization() > top->utilization())
            top = &r;
    if (top->utilization() >= 0.5) {
        rep.bottleneck = top->name + "-bound";
    } else {
        const char *best = "halted";
        u64 bestCycles = rep.total.halted();
        for (const Category &c : kCategories) {
            if (rep.total.*c.field > bestCycles) {
                bestCycles = rep.total.*c.field;
                best = c.name;
            }
        }
        rep.bottleneck = std::string("core:") + best;
    }
    return rep;
}

std::string
ProfileReport::toString() const
{
    std::string out;
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "cycle accounting (%u cube(s) x %u vault(s), %llu "
                  "device cycles)\n",
                  cubes, vaultsPerCube,
                  (unsigned long long)deviceCycles);
    out += buf;
    std::snprintf(buf, sizeof buf,
                  "%-8s %12s %8s %8s %8s %8s %8s %8s %8s\n", "vault",
                  "cycles", "issued%", "bubble%", "barrier%", "drain%",
                  "struct%", "hazard%", "halted%");
    out += buf;

    auto row = [&](const std::string &label, const IssueAccounting &a) {
        std::snprintf(buf, sizeof buf,
                      "%-8s %12llu %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f "
                      "%8.2f\n",
                      label.c_str(), (unsigned long long)a.cycles,
                      pct(a.issued, a.cycles), pct(a.bubble, a.cycles),
                      pct(a.barrier, a.cycles), pct(a.drain, a.cycles),
                      pct(a.structStall, a.cycles),
                      pct(a.hazard, a.cycles),
                      pct(a.halted(), a.cycles));
        out += buf;
    };
    for (u32 i = 0; i < vaults.size(); ++i) {
        u32 chip = i / vaultsPerCube;
        u32 v = i % vaultsPerCube;
        row("c" + std::to_string(chip) + ".v" + std::to_string(v),
            vaults[i]);
    }
    row("total", total);

    out += "\nroofline (achieved / peak)\n";
    for (const RooflineEntry &r : rooflines) {
        std::snprintf(buf, sizeof buf,
                      "%-16s %12.3f / %-12.3f %-12s %6.2f%%\n",
                      r.name.c_str(), r.achieved, r.peak, r.unit.c_str(),
                      100.0 * r.utilization());
        out += buf;
    }
    out += "\nbottleneck: " + bottleneck + "\n";
    return out;
}

void
ProfileReport::toJson(JsonWriter &w) const
{
    w.beginObject();
    w.field("cubes", u64(cubes));
    w.field("vaults_per_cube", u64(vaultsPerCube));
    w.field("device_cycles", u64(deviceCycles));
    w.field("bottleneck", bottleneck);

    auto acct = [&](const IssueAccounting &a) {
        w.beginObject();
        w.field("cycles", a.cycles);
        w.field("issued", a.issued);
        w.field("bubble", a.bubble);
        w.field("barrier", a.barrier);
        w.field("drain", a.drain);
        w.field("struct", a.structStall);
        w.field("hazard", a.hazard);
        w.field("halted", a.halted());
        w.endObject();
    };
    w.key("total");
    acct(total);
    w.key("vaults").beginArray();
    for (const IssueAccounting &a : vaults)
        acct(a);
    w.endArray();

    w.key("rooflines").beginArray();
    for (const RooflineEntry &r : rooflines) {
        w.beginObject();
        w.field("name", r.name);
        w.field("unit", r.unit);
        w.field("achieved", r.achieved);
        w.field("peak", r.peak);
        w.field("utilization", r.utilization());
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

} // namespace ipim
