#include "noc/mesh.h"

#include "common/logging.h"

namespace ipim {

Mesh::Mesh(u32 cols, u32 rows, StatsRegistry *stats, u32 queueDepth,
           Tracer *trace, const std::string &traceTrack)
    : cols_(cols), rows_(rows), queueDepth_(queueDepth), stats_(stats),
      trace_(trace), routers_(cols * rows), delivered_(cols * rows)
{
    if (cols == 0 || rows == 0)
        fatal("mesh dimensions must be nonzero");
    if (trace_ != nullptr)
        traceTrack_ = trace_->track(traceTrack);
}

int
Mesh::routePort(u32 v, const Packet &p) const
{
    if (p.dstVault >= nodes())
        panic("packet destination vault ", p.dstVault, " outside mesh");
    u32 x = xOf(v), y = yOf(v);
    u32 dx = xOf(p.dstVault), dy = yOf(p.dstVault);
    if (x < dx)
        return 0; // east
    if (x > dx)
        return 1; // west
    if (y < dy)
        return 3; // south (increasing y)
    if (y > dy)
        return 2; // north
    return -1;    // arrived
}

u32
Mesh::neighbor(u32 v, int port) const
{
    u32 x = xOf(v), y = yOf(v);
    switch (port) {
      case 0: return y * cols_ + (x + 1);
      case 1: return y * cols_ + (x - 1);
      case 2: return (y - 1) * cols_ + x;
      case 3: return (y + 1) * cols_ + x;
      default: panic("neighbor of non-directional port");
    }
}

int
Mesh::oppositePort(int outPort)
{
    switch (outPort) {
      case 0: return 1;
      case 1: return 0;
      case 2: return 3;
      case 3: return 2;
      default: panic("oppositePort of non-directional port");
    }
}

bool
Mesh::inject(const Packet &p)
{
    if (p.srcVault >= nodes())
        panic("packet source vault ", p.srcVault, " outside mesh");
    return injectAt(p.srcVault, p);
}

bool
Mesh::injectAt(u32 router, const Packet &p)
{
    if (router >= nodes())
        panic("injection router ", router, " outside mesh");
    Router &r = routers_[router];
    if (r.in[kLocalPort].size() >= queueDepth_) {
        stats_->inc("noc.injectStall");
        return false;
    }
    r.in[kLocalPort].push_back(p);
    stats_->inc("noc.injected");
    ++injected_;
    return true;
}

void
Mesh::tick()
{
    // Two-phase update: compute moves against the current queue state,
    // then apply, so a packet moves at most one hop per cycle.
    moves_.clear();

    for (u32 v = 0; v < nodes(); ++v) {
        Router &r = routers_[v];
        bool outputUsed[kPorts] = {false, false, false, false, false};
        // Round-robin over input ports for fairness.
        for (int k = 0; k < kPorts; ++k) {
            int inPort = int((r.rrNext + k) % kPorts);
            if (r.in[inPort].empty())
                continue;
            const Packet &p = r.in[inPort].front();
            int outPort = routePort(v, p);
            int outIdx = outPort < 0 ? kLocalPort : outPort;
            if (outputUsed[outIdx])
                continue;
            if (outPort >= 0) {
                // Need space in the downstream input queue *now*; this is
                // the simple flow control of the paper's router.
                const Router &nbr = routers_[neighbor(v, outPort)];
                if (nbr.in[oppositePort(outPort)].size() >= queueDepth_) {
                    stats_->inc("noc.blocked");
                    continue;
                }
            }
            outputUsed[outIdx] = true;
            moves_.push_back({v, inPort, outPort});
        }
        r.rrNext = (r.rrNext + 1) % kPorts;
    }

    for (const Move &m : moves_) {
        Router &r = routers_[m.node];
        Packet p = r.in[m.inPort].front();
        r.in[m.inPort].pop_front();
        if (m.outPort < 0) {
            delivered_[m.node].push_back(p);
            stats_->inc("noc.delivered");
        } else {
            routers_[neighbor(m.node, m.outPort)]
                .in[oppositePort(m.outPort)]
                .push_back(p);
            stats_->inc("noc.hops");
        }
        ++moved_;
    }
}

u32
Mesh::queuedPackets() const
{
    u32 n = 0;
    for (const Router &r : routers_)
        for (const auto &q : r.in)
            n += u32(q.size());
    return n;
}

void
Mesh::sampleTrace(Cycle now)
{
    if (!Tracer::sampleDue(trace_, now))
        return;
    trace_->counter(traceTrack_, TraceEv::kNocQueued, now,
                    f64(queuedPackets()));
    trace_->counter(traceTrack_, TraceEv::kNocMoved, now, f64(moved_));
    trace_->counter(traceTrack_, TraceEv::kNocInjected, now,
                    f64(injected_));
}

bool
Mesh::idle() const
{
    for (const Router &r : routers_)
        for (const auto &q : r.in)
            if (!q.empty())
                return false;
    return true;
}

Cycle
Mesh::nextEventAt(Cycle now) const
{
    if (!idle())
        return now;
    for (const auto &d : delivered_)
        if (!d.empty())
            return now;
    return kNeverCycle;
}

void
Mesh::creditSkipped(u64 skipped)
{
    u32 delta = u32(skipped % kPorts);
    if (delta == 0)
        return;
    for (Router &r : routers_)
        r.rrNext = (r.rrNext + delta) % kPorts;
}

void
Mesh::reset()
{
    for (Router &r : routers_) {
        for (auto &q : r.in)
            q.clear();
        r.rrNext = 0;
    }
    for (auto &d : delivered_)
        d.clear();
    moved_ = 0;
    injected_ = 0;
}

} // namespace ipim
