/**
 * @file
 * The on-chip interconnect of one iPIM cube: a 2D mesh of input-queued
 * routers with dimension-order (X-Y) routing and round-robin output
 * arbitration (Sec. IV-E, "On/off-chip Network").
 *
 * One packet carries one 128b payload (a remote-access request/response or
 * a synchronization message) and advances one hop per cycle.
 */
#ifndef IPIM_NOC_MESH_H_
#define IPIM_NOC_MESH_H_

#include <deque>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/stats.h"
#include "common/types.h"
#include "trace/trace.h"

namespace ipim {

/** Message kinds carried by the vault network. */
enum class PacketKind : u8 {
    kReqRead,     ///< remote bank read request (from a req instruction)
    kReqResponse, ///< 128b of data returning to the requester's VSM
    kSyncArrive,  ///< slave -> master: reached the barrier
    kSyncProceed, ///< master -> slaves: proceed past the barrier
};

/** One network packet (one flit in this model). */
struct Packet
{
    PacketKind kind = PacketKind::kReqRead;
    u32 srcChip = 0;
    u32 dstChip = 0;
    u32 srcVault = 0;
    u32 dstVault = 0;
    u64 tag = 0;       ///< opaque requester bookkeeping
    u32 pg = 0;        ///< target PG (kReqRead)
    u32 pe = 0;        ///< target PE within the PG (kReqRead)
    u64 dramAddr = 0;  ///< remote bank byte address (kReqRead)
    u32 vsmAddr = 0;   ///< requester VSM byte offset for the response
    VecWord data;      ///< payload (kReqResponse)
    u32 phaseId = 0;   ///< barrier phase (sync messages)

    /** Approximate wire size for energy accounting. */
    u32
    sizeBits() const
    {
        return kind == PacketKind::kReqResponse ? 128 + 64 : 96;
    }
};

/**
 * A cols x rows mesh; vault v sits at (v % cols, v / cols).
 *
 * inject() may fail when the local input queue is full (backpressure);
 * the caller retries next cycle.
 */
class Mesh
{
  public:
    /**
     * @p trace (optional) receives queue-occupancy and cumulative-move
     * counter samples on the @p traceTrack track via sampleTrace().
     */
    Mesh(u32 cols, u32 rows, StatsRegistry *stats, u32 queueDepth = 8,
         Tracer *trace = nullptr, const std::string &traceTrack = "");

    u32 nodes() const { return cols_ * rows_; }

    /** Try to inject @p p at its source vault; false if full. */
    bool inject(const Packet &p);

    /** Inject at an explicit router (off-chip gateway traffic), leaving
     *  the packet's srcVault (the reply address) untouched. */
    bool injectAt(u32 router, const Packet &p);

    /** Advance one cycle (all routers move at most 1 packet per output). */
    void tick();

    /** Packets that arrived at @p vault; caller drains. */
    std::vector<Packet> &delivered(u32 vault) { return delivered_[vault]; }

    /** True if no packet is queued anywhere. */
    bool idle() const;

    /** Packets buffered in any input queue right now. */
    u32 queuedPackets() const;

    /** Emit counter samples when the tracer's cadence is due. */
    void sampleTrace(Cycle now);

    /**
     * Earliest future cycle this mesh can change state (DESIGN.md
     * Sec. 13): @p now while any packet is queued in a router or sits
     * undrained in a delivery buffer (it can move/be consumed on the
     * very next tick), kNeverCycle when completely empty — routers
     * only ever move packets that are already inside the mesh.
     */
    Cycle nextEventAt(Cycle now) const;

    /**
     * Account for @p skipped elided ticks: dense ticking rotates every
     * router's round-robin pointer once per cycle even when idle, so
     * fast-forward must rotate them the same amount for arbitration
     * decisions after the skip to stay bit-exact.
     */
    void creditSkipped(u64 skipped);

    /** Drop all queued/delivered packets and rewind the arbiters. */
    void reset();

  private:
    // Port order: 0=east 1=west 2=north 3=south 4=local-inject.
    static constexpr int kPorts = 5;
    static constexpr int kLocalPort = 4;

    struct Router
    {
        std::deque<Packet> in[kPorts];
        u32 rrNext = 0; ///< round-robin arbitration pointer
    };

    struct Move
    {
        u32 node;
        int inPort;
        int outPort; ///< -1 => deliver locally
    };

    u32 xOf(u32 v) const { return v % cols_; }
    u32 yOf(u32 v) const { return v / cols_; }

    /** Output port a packet at node @p v takes next (X-Y), or -1=local. */
    int routePort(u32 v, const Packet &p) const;

    /** Neighbor node id in direction of output port @p port. */
    u32 neighbor(u32 v, int port) const;

    /** Input port at the neighbor that receives from @p outPort. */
    static int oppositePort(int outPort);

    u32 cols_, rows_;
    u32 queueDepth_;
    StatsRegistry *stats_;
    Tracer *trace_;
    u32 traceTrack_ = 0;
    u64 moved_ = 0;    ///< cumulative hop + delivery moves
    u64 injected_ = 0; ///< cumulative accepted injections
    std::vector<Router> routers_;
    std::vector<std::vector<Packet>> delivered_;
    std::vector<Move> moves_; ///< tick() scratch, hoisted off the hot path
};

} // namespace ipim

#endif // IPIM_NOC_MESH_H_
