/**
 * @file
 * The image processing benchmarks of Table II, written against the
 * Halide-like frontend with iPIM schedules (Listing 1 style).
 *
 * Single-stage: Brighten, Blur (GaussianBlur), Downsample, Upsample,
 * Shift, Histogram.  Multi-stage: Bilateral Grid (5 stages), Interpolate
 * (12 stages), Local Laplacian (23 stages), Stencil Chain (32 stages).
 * DESIGN.md documents where a multi-stage pipeline is a structural
 * approximation of the original algorithm.
 */
#ifndef IPIM_APPS_BENCHMARKS_H_
#define IPIM_APPS_BENCHMARKS_H_

#include <map>
#include <string>
#include <vector>

#include "common/image.h"
#include "compiler/func.h"

namespace ipim {

/** One ready-to-run benchmark: pipeline + synthetic inputs. */
struct BenchmarkApp
{
    std::string name;
    PipelineDef def;
    std::map<std::string, Image> inputs;
    bool multiStage = false;
};

BenchmarkApp makeBrighten(int w, int h, u64 seed = 1);
BenchmarkApp makeBlur(int w, int h, u64 seed = 1);
BenchmarkApp makeDownsample(int w, int h, u64 seed = 1);
BenchmarkApp makeUpsample(int w, int h, u64 seed = 1);
BenchmarkApp makeShift(int w, int h, u64 seed = 1);
BenchmarkApp makeHistogram(int w, int h, u64 seed = 1);
BenchmarkApp makeBilateralGrid(int w, int h, u64 seed = 1);
BenchmarkApp makeInterpolate(int w, int h, u64 seed = 1);
BenchmarkApp makeLocalLaplacian(int w, int h, u64 seed = 1);
BenchmarkApp makeStencilChain(int w, int h, u64 seed = 1);

/** Table II order. */
const std::vector<std::string> &allBenchmarkNames();

/** Factory by name; throws FatalError for unknown names. */
BenchmarkApp makeBenchmark(const std::string &name, int w, int h,
                           u64 seed = 1);

} // namespace ipim

#endif // IPIM_APPS_BENCHMARKS_H_
