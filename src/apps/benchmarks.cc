#include "apps/benchmarks.h"

#include "common/logging.h"

namespace ipim {

namespace {

Var vx("x"), vy("y");

BenchmarkApp
wrap(const std::string &name, FuncPtr out, int w, int h,
     std::map<std::string, Image> inputs, bool multi)
{
    BenchmarkApp app;
    app.name = name;
    app.def.name = name;
    app.def.output = out;
    app.def.width = w;
    app.def.height = h;
    app.inputs = std::move(inputs);
    app.multiStage = multi;
    return app;
}

} // namespace

BenchmarkApp
makeBrighten(int w, int h, u64 seed)
{
    FuncPtr in = Func::input("in");
    FuncPtr out = Func::make("brighten");
    out->define(vx, vy, Expr(1.2f) * (*in)(vx, vy));
    out->computeRoot().ipimTile(8, 8).vectorize(4);
    return wrap("Brighten", out, w, h,
                {{"in", Image::synthetic(w, h, seed)}}, false);
}

BenchmarkApp
makeBlur(int w, int h, u64 seed)
{
    FuncPtr in = Func::input("in");
    FuncPtr bx = Func::make("blur_x"); // inline (fused into blur_y)
    bx->define(vx, vy,
               ((*in)(vx, vy) + (*in)(vx + 1, vy) + (*in)(vx + 2, vy)) /
                   3.0f);
    FuncPtr out = Func::make("blur_y");
    out->define(vx, vy,
                ((*bx)(vx, vy) + (*bx)(vx, vy + 1) + (*bx)(vx, vy + 2)) /
                    3.0f);
    out->computeRoot().ipimTile(8, 8).loadPgsm().vectorize(4);
    return wrap("Blur", out, w, h,
                {{"in", Image::synthetic(w, h, seed)}}, false);
}

BenchmarkApp
makeDownsample(int w, int h, u64 seed)
{
    FuncPtr in = Func::input("in");
    FuncPtr d = Func::make("down_x"); // inline
    d->define(vx, vy,
              ((*in)(vx * 2 - 1, vy) + (*in)(vx * 2, vy) * 2.0f +
               (*in)(vx * 2 + 1, vy)) /
                  4.0f);
    FuncPtr out = Func::make("down_y");
    out->define(vx, vy,
                ((*d)(vx, vy * 2 - 1) + (*d)(vx, vy * 2) * 2.0f +
                 (*d)(vx, vy * 2 + 1)) /
                    4.0f);
    out->computeRoot().ipimTile(8, 8).loadPgsm().vectorize(4);
    // Input is 2x the output in each dimension.
    return wrap("Downsample", out, w, h,
                {{"in", Image::synthetic(2 * w, 2 * h, seed)}}, false);
}

BenchmarkApp
makeUpsample(int w, int h, u64 seed)
{
    FuncPtr in = Func::input("in");
    FuncPtr u = Func::make("up_x"); // inline
    u->define(vx, vy,
              ((*in)(vx / 2, vy) + (*in)((vx + 1) / 2, vy)) / 2.0f);
    FuncPtr out = Func::make("up_y");
    out->define(vx, vy,
                ((*u)(vx, vy / 2) + (*u)(vx, (vy + 1) / 2)) / 2.0f);
    out->computeRoot().ipimTile(16, 8).loadPgsm().vectorize(4);
    return wrap("Upsample", out, w, h,
                {{"in", Image::synthetic(w / 2, h / 2, seed)}}, false);
}

BenchmarkApp
makeShift(int w, int h, u64 seed)
{
    FuncPtr in = Func::input("in");
    FuncPtr out = Func::make("shift");
    out->define(vx, vy, (*in)(vx - 4, vy - 4));
    out->computeRoot().ipimTile(8, 8).loadPgsm().vectorize(4);
    return wrap("Shift", out, w, h,
                {{"in", Image::synthetic(w, h, seed)}}, false);
}

BenchmarkApp
makeHistogram(int w, int h, u64 seed)
{
    constexpr int kBins = 256;
    FuncPtr in = Func::input("in");
    FuncPtr hist = Func::make("histogram", 1);
    Var b("b");
    hist->define(b, Expr(0.0f));
    RDom r(w, h);
    UpdateDef u{.idxX = clamp(Expr::castI((*in)(r.x, r.y) *
                                          f32(kBins)),
                              Expr(0), Expr(kBins - 1)),
                .idxY = Expr(),
                .value = Expr(1.0f),
                .dom = r};
    hist->defineUpdate(u);
    hist->computeRoot();
    BenchmarkApp app = wrap("Histogram", hist, kBins, 1,
                            {{"in", Image::synthetic(w, h, seed)}},
                            false);
    return app;
}

BenchmarkApp
makeStencilChain(int w, int h, u64 seed)
{
    constexpr int kStages = 32;
    FuncPtr in = Func::input("in");
    FuncPtr prev = in;
    FuncPtr out;
    for (int s = 0; s < kStages; ++s) {
        FuncPtr f = Func::make("stencil" + std::to_string(s));
        // 3x3 box-ish stencil with a center weight.
        Expr sum = (*prev)(vx, vy) * 2.0f;
        for (int dy = -1; dy <= 1; ++dy)
            for (int dx = -1; dx <= 1; ++dx)
                sum = sum + (*prev)(vx + dx, vy + dy);
        f->define(vx, vy, sum / 10.0f);
        f->computeRoot().ipimTile(8, 8).loadPgsm().vectorize(4);
        prev = f;
        out = f;
    }
    return wrap("StencilChain", out, w, h,
                {{"in", Image::synthetic(w, h, seed)}}, true);
}

BenchmarkApp
makeInterpolate(int w, int h, u64 seed)
{
    // 12 stages: a 3-level separable down pyramid (6 root stages) and a
    // coarse-to-fine separable up/blend chain (6 root stages).
    FuncPtr in = Func::input("in");

    auto downX = [&](FuncPtr src, const std::string &name) {
        FuncPtr f = Func::make(name);
        f->define(vx, vy,
                  ((*src)(vx * 2 - 1, vy) + (*src)(vx * 2, vy) * 2.0f +
                   (*src)(vx * 2 + 1, vy)) /
                      4.0f);
        f->computeRoot().ipimTile(8, 8).loadPgsm().vectorize(4);
        return f;
    };
    auto downY = [&](FuncPtr src, const std::string &name) {
        FuncPtr f = Func::make(name);
        f->define(vx, vy,
                  ((*src)(vx, vy * 2 - 1) + (*src)(vx, vy * 2) * 2.0f +
                   (*src)(vx, vy * 2 + 1)) /
                      4.0f);
        f->computeRoot().ipimTile(8, 8).loadPgsm().vectorize(4);
        return f;
    };
    auto upX = [&](FuncPtr src, const std::string &name) {
        FuncPtr f = Func::make(name);
        f->define(vx, vy,
                  ((*src)(vx / 2, vy) + (*src)((vx + 1) / 2, vy)) / 2.0f);
        f->computeRoot().ipimTile(16, 8).loadPgsm().vectorize(4);
        return f;
    };
    auto upYBlend = [&](FuncPtr coarse, FuncPtr fine,
                        const std::string &name) {
        FuncPtr f = Func::make(name);
        Expr up = ((*coarse)(vx, vy / 2) + (*coarse)(vx, (vy + 1) / 2)) /
                  2.0f;
        f->define(vx, vy, up * 0.6f + (*fine)(vx, vy) * 0.4f);
        f->computeRoot().ipimTile(16, 8).loadPgsm().vectorize(4);
        return f;
    };

    FuncPtr d1x = downX(in, "d1x");
    FuncPtr d1 = downY(d1x, "d1");
    FuncPtr d2x = downX(d1, "d2x");
    FuncPtr d2 = downY(d2x, "d2");
    FuncPtr d3x = downX(d2, "d3x");
    FuncPtr d3 = downY(d3x, "d3");

    FuncPtr u2x = upX(d3, "u2x");
    FuncPtr u2 = upYBlend(u2x, d2, "u2");
    FuncPtr u1x = upX(u2, "u1x");
    FuncPtr u1 = upYBlend(u1x, d1, "u1");
    FuncPtr u0x = upX(u1, "u0x");
    FuncPtr out = upYBlend(u0x, in, "interp_out");

    return wrap("Interpolate", out, w, h,
                {{"in", Image::synthetic(w, h, seed)}}, true);
}

BenchmarkApp
makeBilateralGrid(int w, int h, u64 seed)
{
    // Scatter-free bilateral grid with sigma_s = 8 and NZ = 8 intensity
    // planes, stored plane-interleaved: grid(xc, yc*NZ + z).
    constexpr int kS = 8;
    constexpr int kNz = 8;

    FuncPtr in = Func::input("in");
    in->ipimTile(8, 8);

    auto tent = [&](Expr val, Expr z) {
        // max(0, 1 - |val*(NZ-1) - z|)
        Expr d = val * f32(kNz - 1) - z;
        Expr ad = max(d, Expr(0.0f) - d);
        return max(Expr(0.0f), Expr(1.0f) - ad);
    };

    auto makeGrid = [&](bool weighted, const std::string &name) {
        FuncPtr g = Func::make(name);
        Expr zc = Expr::castF(vy - (vy / kNz) * kNz); // y mod NZ
        Expr sum = Expr(0.0f);
        for (int dy = 0; dy < kS; ++dy) {
            for (int dx = 0; dx < kS; ++dx) {
                Expr v = (*in)(vx * kS + dx, (vy / kNz) * kS + dy);
                Expr wgt = tent(v, zc);
                sum = sum + (weighted ? wgt * v : wgt);
            }
        }
        g->define(vx, vy, sum);
        g->computeRoot().ipimTile(4, 4).loadPgsm().vectorize(4);
        return g;
    };

    FuncPtr gridW = makeGrid(false, "grid_w");
    FuncPtr gridV = makeGrid(true, "grid_v");

    auto blur = [&](FuncPtr src, const std::string &name) {
        FuncPtr f = Func::make(name);
        // 3x3 over (xc, yc): yc +- 1 is yp +- NZ in plane-interleaved
        // storage; z is untouched.
        Expr sum = (*src)(vx, vy) * 4.0f;
        sum = sum + (*src)(vx - 1, vy) + (*src)(vx + 1, vy);
        sum = sum + (*src)(vx, vy - kNz) + (*src)(vx, vy + kNz);
        f->define(vx, vy, sum / 8.0f);
        f->computeRoot().ipimTile(4, 4).loadPgsm().vectorize(4);
        return f;
    };

    FuncPtr gridWb = blur(gridW, "grid_w_blur");
    FuncPtr gridVb = blur(gridV, "grid_v_blur");

    FuncPtr out = Func::make("bilateral_out");
    {
        Expr val = (*in)(vx, vy);
        Expr num = Expr(0.0f);
        Expr den = Expr(1e-4f);
        for (int z = 0; z < kNz; ++z) {
            Expr wz = tent(val, Expr(f32(z)));
            num = num + wz * (*gridVb)(vx / kS, (vy / kS) * kNz + z);
            den = den + wz * (*gridWb)(vx / kS, (vy / kS) * kNz + z);
        }
        out->define(vx, vy, num / den);
        out->computeRoot().ipimTile(32, 8).loadPgsm().vectorize(4);
    }

    return wrap("BilateralGrid", out, w, h,
                {{"in", Image::synthetic(w, h, seed)}}, true);
}

BenchmarkApp
makeLocalLaplacian(int w, int h, u64 seed)
{
    // A 23-root-stage local-Laplacian-style tone mapper: a 2-level
    // Gaussian pyramid of the input, K=4 remapped copies with their own
    // pyramids, per-level tent-weighted Laplacian blending, and a
    // collapse.  Structurally faithful to Paris et al.; see DESIGN.md.
    constexpr int kK = 4;

    FuncPtr in = Func::input("in");

    auto downX = [&](FuncPtr src, const std::string &name) {
        FuncPtr f = Func::make(name);
        f->define(vx, vy,
                  ((*src)(vx * 2 - 1, vy) + (*src)(vx * 2, vy) * 2.0f +
                   (*src)(vx * 2 + 1, vy)) /
                      4.0f);
        f->computeRoot().ipimTile(8, 8).loadPgsm().vectorize(4);
        return f;
    };
    auto downY = [&](FuncPtr src, const std::string &name) {
        FuncPtr f = Func::make(name);
        f->define(vx, vy,
                  ((*src)(vx, vy * 2 - 1) + (*src)(vx, vy * 2) * 2.0f +
                   (*src)(vx, vy * 2 + 1)) /
                      4.0f);
        f->computeRoot().ipimTile(8, 8).loadPgsm().vectorize(4);
        return f;
    };

    auto tentK = [&](Expr g, int k) {
        Expr d = g * f32(kK - 1) - Expr(f32(k));
        Expr ad = max(d, Expr(0.0f) - d);
        return max(Expr(0.0f), Expr(1.0f) - ad);
    };

    // Gaussian pyramid of the input: 2 stages (separable -> 2 roots).
    FuncPtr g1x = downX(in, "llf_g1x");
    FuncPtr g1 = downY(g1x, "llf_g1");

    // K remapped images (4 roots) and their level-1 pyramids (8 roots).
    std::vector<FuncPtr> rk, rk1;
    for (int k = 0; k < kK; ++k) {
        FuncPtr r = Func::make("llf_remap" + std::to_string(k));
        // Contrast-boosting remap around the level value k/(K-1).
        Expr v = (*in)(vx, vy);
        Expr ref = Expr(f32(k) / f32(kK - 1));
        r->define(vx, vy, ref + (v - ref) * 1.5f);
        r->computeRoot().ipimTile(8, 8).loadPgsm().vectorize(4);
        rk.push_back(r);
        FuncPtr rx = downX(r, "llf_r" + std::to_string(k) + "x");
        FuncPtr r1 = downY(rx, "llf_r" + std::to_string(k) + "1");
        rk1.push_back(r1);
    }

    // Level-0 Laplacian blend (1 root): lap0_k = rk - up(rk1).
    FuncPtr blend0 = Func::make("llf_blend0");
    {
        Expr g = (*in)(vx, vy);
        Expr sum = Expr(0.0f);
        for (int k = 0; k < kK; ++k) {
            Expr up = ((*rk1[k])(vx / 2, vy / 2) +
                       (*rk1[k])((vx + 1) / 2, (vy + 1) / 2)) /
                      2.0f;
            Expr lap = (*rk[k])(vx, vy) - up;
            sum = sum + tentK(g, k) * lap;
        }
        blend0->define(vx, vy, sum);
        // Nine PGSM-resident inputs (in, 4 remaps, 4 level-1 pyramids):
        // narrow tiles keep the scratchpad footprint under 8 KiB.
        blend0->computeRoot().ipimTile(4, 8).loadPgsm().vectorize(4);
    }

    // Level-1 blend of the remapped gaussians (1 root).
    FuncPtr blend1 = Func::make("llf_blend1");
    {
        Expr g = (*g1)(vx, vy);
        Expr sum = Expr(0.0f);
        for (int k = 0; k < kK; ++k)
            sum = sum + tentK(g, k) * (*rk1[k])(vx, vy);
        blend1->define(vx, vy, sum);
        blend1->computeRoot().ipimTile(8, 8).loadPgsm().vectorize(4);
    }

    // Level-2: downsample the level-1 blend (2 roots), tone-remap the
    // coarsest level (1 root), upsample it back (1 root), and fold it
    // into the level-1 result (1 root).
    FuncPtr d2x = downX(blend1, "llf_d2x");
    FuncPtr d2 = downY(d2x, "llf_d2");
    FuncPtr blend2 = Func::make("llf_blend2");
    blend2->define(vx, vy,
                   (*d2)(vx, vy) / ((*d2)(vx, vy) + Expr(0.8f)) * 1.6f);
    blend2->computeRoot().ipimTile(8, 8).loadPgsm().vectorize(4);
    FuncPtr up2x = Func::make("llf_up2x");
    up2x->define(vx, vy,
                 ((*blend2)(vx / 2, vy) + (*blend2)((vx + 1) / 2, vy)) /
                     2.0f);
    up2x->computeRoot().ipimTile(16, 8).loadPgsm().vectorize(4);
    FuncPtr level1 = Func::make("llf_level1");
    {
        Expr up2 = ((*up2x)(vx, vy / 2) + (*up2x)(vx, (vy + 1) / 2)) /
                   2.0f;
        level1->define(vx, vy, (*blend1)(vx, vy) * 0.6f + up2 * 0.4f);
        level1->computeRoot().ipimTile(16, 8).loadPgsm().vectorize(4);
    }

    // Separable upsample of the level-1 result (2 roots).
    FuncPtr upx = Func::make("llf_upx");
    upx->define(vx, vy,
                ((*level1)(vx / 2, vy) + (*level1)((vx + 1) / 2, vy)) /
                    2.0f);
    upx->computeRoot().ipimTile(16, 8).loadPgsm().vectorize(4);

    // Collapse (1 root): out = blend0 + up_y(upx) * 0.5 (tone scale).
    FuncPtr out = Func::make("llf_out");
    {
        Expr up = ((*upx)(vx, vy / 2) + (*upx)(vx, (vy + 1) / 2)) / 2.0f;
        out->define(vx, vy, (*blend0)(vx, vy) * 0.5f + up * 0.5f);
        out->computeRoot().ipimTile(16, 8).loadPgsm().vectorize(4);
    }

    return wrap("LocalLaplacian", out, w, h,
                {{"in", Image::synthetic(w, h, seed)}}, true);
}

const std::vector<std::string> &
allBenchmarkNames()
{
    static const std::vector<std::string> names = {
        "Brighten",      "Blur",        "Downsample", "Upsample",
        "Shift",         "Histogram",   "BilateralGrid",
        "Interpolate",   "LocalLaplacian", "StencilChain",
    };
    return names;
}

BenchmarkApp
makeBenchmark(const std::string &name, int w, int h, u64 seed)
{
    if (name == "Brighten")
        return makeBrighten(w, h, seed);
    if (name == "Blur")
        return makeBlur(w, h, seed);
    if (name == "Downsample")
        return makeDownsample(w, h, seed);
    if (name == "Upsample")
        return makeUpsample(w, h, seed);
    if (name == "Shift")
        return makeShift(w, h, seed);
    if (name == "Histogram")
        return makeHistogram(w, h, seed);
    if (name == "BilateralGrid")
        return makeBilateralGrid(w, h, seed);
    if (name == "Interpolate")
        return makeInterpolate(w, h, seed);
    if (name == "LocalLaplacian")
        return makeLocalLaplacian(w, h, seed);
    if (name == "StencilChain")
        return makeStencilChain(w, h, seed);
    fatal("unknown benchmark '", name, "'");
}

} // namespace ipim
