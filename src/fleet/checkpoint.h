/**
 * @file
 * Kernel-boundary device checkpoints for fleet preemption (DESIGN.md
 * Sec. 17).
 *
 * Between kernels, the only architectural state a pipeline carries
 * forward is DRAM bank contents plus the VSM/PGSM scratchpads: both
 * simulators soft-reset every register file at program load (re-seeding
 * the AddrRF identities), so registers never cross a kernel boundary.
 * A checkpoint therefore captures exactly banks + scratchpads, and
 * restoring it onto any power-cycled device of the same geometry
 * resumes the pipeline bit-exactly from the next kernel — the basis of
 * the fleet's preemption-at-kernel-boundary policy.
 *
 * Timing state (row buffers, activation history, queues) is *not*
 * captured: a resumed kernel starts from power-on timing, exactly like
 * the per-request Device::reset() the serving layer already performs.
 * Pixels are bit-exact either way; cycle counts of a preempted run are
 * deterministic but may differ from an unpreempted run of the same
 * request (the determinism contract, DESIGN.md Sec. 17).
 */
#ifndef IPIM_FLEET_CHECKPOINT_H_
#define IPIM_FLEET_CHECKPOINT_H_

#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace ipim {

class Device;
class FuncDevice;

/** Banks + scratchpads of one device at a kernel boundary. */
struct DeviceCheckpoint
{
    /// Sparse row images per bank, in (chip, vault, pg, pe) order.
    std::vector<std::unordered_map<u32, std::vector<u8>>> banks;
    /// Full VSM images per vault, chip-major.
    std::vector<std::vector<u8>> vsm;
    /// Full PGSM images per (chip, vault, pg).
    std::vector<std::vector<u8>> pgsm;
};

/** Capture the architectural state of a quiesced device (all kernels
 *  issued so far have completed). */
DeviceCheckpoint captureCheckpoint(Device &dev);
DeviceCheckpoint captureCheckpoint(FuncDevice &dev);

/** Restore @p cp onto a freshly reset() device of the same geometry
 *  the checkpoint was captured on. */
void restoreCheckpoint(Device &dev, const DeviceCheckpoint &cp);
void restoreCheckpoint(FuncDevice &dev, const DeviceCheckpoint &cp);

/** Payload size of @p cp in bytes (sparse bank rows + scratchpads) —
 *  the cost figure the fleet event log attaches to a preemption. */
u64 checkpointBytes(const DeviceCheckpoint &cp);

} // namespace ipim

#endif // IPIM_FLEET_CHECKPOINT_H_
