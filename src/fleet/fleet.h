/**
 * @file
 * Fleet-scale serving (DESIGN.md Sec. 17): N independent devices behind
 * a Router, with per-tenant weighted fair share, priority preemption at
 * kernel boundaries, cross-request batching, and p99-driven load
 * shedding — a layer above the single-device Server of src/service.
 *
 * Unlike Server (which executes a whole pipeline at dispatch time and
 * jumps the clock to its completion), the fleet interleaves execution
 * with virtual time at kernel granularity: a dispatched request
 * simulates one kernel at a time, and each kernel boundary is an event
 * at which the fleet may preempt the request in favour of a
 * higher-priority pending one (checkpoint.h captures banks +
 * scratchpads; the victim resumes bit-exactly on any slot of the same
 * geometry).
 *
 * Everything is deterministic: the event loop consumes no randomness,
 * ties break on (device, slot, tenant, arrival, id), and all state is
 * a pure function of (config, request trace).  Fixed-seed fleet runs
 * are byte-identical across processes — JSON and Prometheus output
 * included — which the fleet regression tests pin.
 */
#ifndef IPIM_FLEET_FLEET_H_
#define IPIM_FLEET_FLEET_H_

#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/image.h"
#include "common/json.h"
#include "fleet/checkpoint.h"
#include "fleet/router.h"
#include "func/estimator.h"
#include "func/func_device.h"
#include "metrics/slo.h"
#include "service/load_gen.h"
#include "service/program_cache.h"
#include "service/scheduler.h"
#include "sim/device.h"

namespace ipim {

class FleetObserver;

struct FleetConfig
{
    /** Geometry of EACH fleet device; hw.cubes is per-device. */
    HardwareConfig hw;
    u32 devices = 2;
    int width = 256;
    int height = 128;
    CompilerOptions copts;

    /** Execution backend per slot: "cycle" | "func" (Sec. 16). */
    std::string backend = "cycle";
    /** Intra-tenant queue order on each device: "fifo" | "sjf". */
    std::string policy = "fifo";
    /** Router policy: "rr" | "least" | "hash" | "affinity". */
    std::string router = "rr";
    /** Cube-granular partition width within each device (slots per
     *  device = hw.cubes / cubesPerRequest). */
    u32 cubesPerRequest = 1;

    /** Coalesce same-program pending requests into one launch over the
     *  free slots of a device (one launch overhead for the batch). */
    bool batching = false;
    /** Max requests per batch; 0 = bounded only by free slots. */
    u32 maxBatch = 0;
    /**
     * Batch-forming window: a growable (cache-hit, not-yet-full) group
     * waits up to this long for same-program companions before
     * launching, and launches early the instant it fills — the classic
     * latency-for-throughput trade, paid only with batching on.
     * Holding is always free while the device's launcher is busy.
     */
    Cycle batchWindowCycles = 2000;

    /** Allow priority preemption at kernel boundaries. */
    bool preempt = true;

    /**
     * Load-shedding target: shed requests at admission when the
     * previous SLO window's p99 breaches this many cycles (lowest
     * priority first) or when the routed device's estimated wait would
     * blow the target outright.  0 disables shedding.
     */
    Cycle shedP99Cycles = 0;

    Cycle sloWindowCycles = 1'000'000;
    /** Host compile latency charged per static instruction on a
     *  program-cache miss (same model as ServerConfig). */
    Cycle compileCyclesPerInst = 10;
    /**
     * Per-launch dispatcher occupancy: uploading a program broadcast
     * occupies the device's host link for this many cycles, and
     * launches on one device serialize through it.  A batch pays it
     * once for all members — the batching win.
     */
    Cycle launchOverheadCycles = 1000;

    bool fastForward = true;
    /** Simulation worker threads per slot device (DESIGN.md Sec. 18);
     *  bit-exact for every value, wall-clock only. */
    u32 threads = 1;
    /** Per-device ProgramCache capacity in entries (0 = unbounded). */
    size_t cacheCapacity = 0;

    /** Tenant table (index == ServeRequest::tenant); empty means one
     *  default tenant.  Weights drive fair share, priorities drive
     *  class ordering, preemption, and shed order. */
    std::vector<TenantSpec> tenants;

    /** Gather and retain each completed request's output image
     *  (pixel-exactness tests; large, so off by default). */
    bool keepOutputs = false;

    /**
     * Observability sink (DESIGN.md Sec. 19): distributed tracing,
     * decision event log, per-slot metrics sampling.  Null (the
     * default) costs one pointer test per decision site; the observer
     * must outlive the FleetServer and is attached at construction.
     */
    FleetObserver *observer = nullptr;
};

/** Everything recorded about one request entering the fleet. */
struct FleetRequestRecord
{
    u64 id = 0;
    std::string pipeline;
    u32 tenant = 0;
    u32 priority = 0;
    Cycle arrival = 0;

    bool shed = false;
    std::string shedReason; ///< "p99_breach" | "backlog" when shed

    u32 device = 0;
    u32 slot = 0; ///< slot of the final occupancy
    i64 batch = -1; ///< batch id, -1 = launched alone
    u32 preemptions = 0;

    Cycle start = 0;  ///< first dispatch (queueing ends)
    Cycle finish = 0;
    Cycle execCycles = 0;     ///< simulated device cycles, all kernels
    Cycle compileCycles = 0;  ///< charged on a program-cache miss
    Cycle overheadCycles = 0; ///< launch/dispatcher cycles charged
    bool cacheHit = false;

    /** Output pixels (only with FleetConfig::keepOutputs). */
    Image output;

    Cycle queueCycles() const { return shed ? 0 : start - arrival; }
    Cycle totalCycles() const { return shed ? 0 : finish - arrival; }
};

/** Aggregate results of one fleet serving run. */
struct FleetReport
{
    struct DeviceReport
    {
        u64 requests = 0; ///< completions on this device
        u64 batches = 0;
        u64 preemptions = 0;
        u64 cacheHits = 0;
        u64 cacheCompiles = 0;
        u64 cacheEvictions = 0;
        u64 cacheEntries = 0;
        Cycle busyCycles = 0; ///< exec cycles simulated here
        /// Fast-forward telemetry summed over this device's slots
        /// (cycle backend; satellite of the single-device fields).
        u64 ffwdSkippedCycles = 0;
        u64 ffwdJumps = 0;
        SloTracker slo;
        LatencyHistogram totalLatency;
    };

    struct TenantReport
    {
        std::string name;
        f64 weight = 1.0;
        u32 priority = 0;
        u64 admitted = 0;
        u64 completed = 0;
        u64 shed = 0;
        u64 shedBreach = 0;
        u64 shedBacklog = 0;
        Cycle servedCycles = 0; ///< device cycles executed for it
        LatencyHistogram totalLatency;
    };

    std::vector<FleetRequestRecord> records; ///< by id (shed included)
    Cycle makespan = 0;
    u64 admitted = 0;
    u64 completed = 0;
    u64 shedTotal = 0;
    u64 batches = 0;
    u64 batchedRequests = 0;
    u64 preemptions = 0;

    /** Admitted-request latency over the whole fleet: exact pooled
     *  samples (LatencyHistogram::merge), never averaged percentiles. */
    LatencyHistogram totalLatency;
    LatencyHistogram queueLatency;
    LatencyHistogram execLatency;

    /** Fleet-level SLO windows, merged sample-exactly from the
     *  per-device trackers (SloTracker::merge). */
    SloTracker slo;

    std::vector<DeviceReport> devices;
    std::vector<TenantReport> tenants;

    /** fleet.* counters plus merged per-occupancy device stats on the
     *  cycle backend. */
    StatsRegistry stats;

    /** Completed requests per second of virtual time. */
    f64 throughputRps() const;

    /** Human-readable multi-line summary. */
    std::string summary() const;

    /**
     * Emit the full report as one JSON object value (schema
     * "ipim-serve-fleet-v1"); @p cfg echoes the configuration.
     * Byte-deterministic for a fixed (cfg, trace).
     */
    void toJson(JsonWriter &w, const FleetConfig &cfg) const;

    /** Fleet-level Prometheus text exposition with per-device and
     *  per-tenant labelled families.  Byte-deterministic. */
    std::string prometheusText() const;
};

class FleetServer
{
  public:
    explicit FleetServer(const FleetConfig &cfg);
    ~FleetServer();

    /** Serve @p requests (any order; sorted internally by arrival). */
    FleetReport run(const std::vector<ServeRequest> &requests);

    u32 devices() const { return u32(devs_.size()); }
    u32 slotsPerDevice() const;
    const FleetConfig &config() const { return cfg_; }

  private:
    struct Slot
    {
        std::unique_ptr<Device> dev;      ///< cycle backend
        std::unique_ptr<FuncDevice> fdev; ///< functional backend
    };

    /** A request in a device queue (fresh or preempted-resumable). */
    struct Pending
    {
        ServeRequest req;
        std::shared_ptr<CachedProgram> program;
        bool cacheHit = false;
        Cycle compileCycles = 0; ///< still to charge (first launch)
        bool started = false;    ///< first dispatch already happened
        bool held = false;       ///< waiting in a batch-forming window
        Cycle heldSince = 0;     ///< window start (valid when held)
        u32 nextKernel = 0;
        Cycle doneExec = 0;      ///< exec cycles already simulated
        u32 preemptCount = 0;
        std::unique_ptr<DeviceCheckpoint> ckpt; ///< set when resuming
        size_t recIdx = 0;       ///< index into FleetReport::records
    };

    /** A request occupying a slot, between kernel-boundary events. */
    struct Running
    {
        Pending p;
        Cycle boundaryAt = 0;       ///< end of the current kernel
        Cycle curKernelCycles = 0;  ///< cycles of the current kernel
        i64 batchId = -1;
    };

    struct DeviceState
    {
        std::vector<Slot> slots;
        std::vector<std::unique_ptr<Running>> running; ///< per slot
        std::vector<Pending> pend;
        std::unique_ptr<ProgramCache> cache;
        StatsRegistry cacheStats;
        Cycle launcherFreeAt = 0; ///< host-link dispatcher occupancy
    };

    HardwareConfig slotConfig() const;

    FleetConfig cfg_;
    std::vector<TenantSpec> tenants_; ///< normalized, >= 1 entry
    u32 maxPriority_ = 0;
    std::vector<DeviceState> devs_;
    std::unique_ptr<Router> router_;
    std::unique_ptr<Scheduler> intra_;
    /// Host-side static-estimate memo shared by all devices.
    LatencyEstimator estimator_;
};

} // namespace ipim

#endif // IPIM_FLEET_FLEET_H_
