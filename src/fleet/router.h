/**
 * @file
 * Request routing across the devices of a fleet (DESIGN.md Sec. 17).
 *
 * The router runs once per admitted request, before the request enters
 * a device's queue: it sees a load snapshot of every device plus the
 * request's compiled-program cache key, and picks the device.  All
 * policies are deterministic functions of their inputs, so fleet runs
 * replay byte-identically.
 */
#ifndef IPIM_FLEET_ROUTER_H_
#define IPIM_FLEET_ROUTER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/types.h"

namespace ipim {

/** Router-visible load snapshot of one fleet device. */
struct DeviceLoadView
{
    u32 device = 0;
    u32 freeSlots = 0;       ///< idle partition slots right now
    u32 slots = 0;           ///< total partition slots
    u64 queueDepth = 0;      ///< requests queued on this device
    Cycle backlogCycles = 0; ///< estimated queued + in-flight work
    bool cacheHot = false;   ///< ProgramCache holds this request's key
};

class Router
{
  public:
    virtual ~Router() = default;

    virtual const char *name() const = 0;

    /** Pick the device for a request whose program cache key is
     *  @p programKey; @p devices is non-empty, indexed by device id. */
    virtual u32 route(const std::string &programKey,
                      const std::vector<DeviceLoadView> &devices) = 0;
};

/**
 * Factory by policy name: "rr" (round-robin), "least" (least estimated
 * backlog), "hash" (consistent hash of the program key over a
 * virtual-node ring), "affinity" (least-loaded among cache-hot
 * devices, falling back to least-loaded overall).  Fatal on unknown
 * names.  @p devices sizes the hash ring.
 */
std::unique_ptr<Router> makeRouter(const std::string &policy,
                                   u32 devices);

} // namespace ipim

#endif // IPIM_FLEET_ROUTER_H_
