#include "fleet/router.h"

#include <algorithm>
#include <tuple>

#include "common/logging.h"
#include "common/rng.h"

namespace ipim {

namespace {

/** Deterministic string hash: fold each byte through SplitMix64's
 *  finalizer.  Quality matters only for spreading ring positions, not
 *  for security. */
u64
stableHash(const std::string &s)
{
    u64 h = 0x9e3779b97f4a7c15ull;
    for (char c : s)
        h = splitMix64(h ^ u8(c));
    return h;
}

/** Least-backlog choice shared by "least" and "affinity": smallest
 *  estimated backlog, then shallowest queue, then lowest device id. */
u32
leastLoaded(const std::vector<const DeviceLoadView *> &candidates)
{
    const DeviceLoadView *best = nullptr;
    for (const DeviceLoadView *d : candidates) {
        if (!best ||
            std::make_tuple(d->backlogCycles, d->queueDepth, d->device) <
                std::make_tuple(best->backlogCycles, best->queueDepth,
                                best->device))
            best = d;
    }
    if (!best)
        fatal("router: empty device list");
    return best->device;
}

std::vector<const DeviceLoadView *>
allOf(const std::vector<DeviceLoadView> &devices)
{
    std::vector<const DeviceLoadView *> ptrs;
    ptrs.reserve(devices.size());
    for (const DeviceLoadView &d : devices)
        ptrs.push_back(&d);
    return ptrs;
}

class RoundRobinRouter final : public Router
{
  public:
    const char *name() const override { return "rr"; }

    u32
    route(const std::string & /*programKey*/,
          const std::vector<DeviceLoadView> &devices) override
    {
        return u32(next_++ % devices.size());
    }

  private:
    u64 next_ = 0;
};

class LeastLoadedRouter final : public Router
{
  public:
    const char *name() const override { return "least"; }

    u32
    route(const std::string & /*programKey*/,
          const std::vector<DeviceLoadView> &devices) override
    {
        return leastLoaded(allOf(devices));
    }
};

/**
 * Consistent hash over a virtual-node ring: each device owns
 * kVirtualNodes points, a key routes to the first point clockwise from
 * its hash.  Stable under key-set growth, and a given pipeline always
 * lands on the same device — cache locality without tracking state.
 */
class ConsistentHashRouter final : public Router
{
  public:
    static constexpr u32 kVirtualNodes = 16;

    explicit ConsistentHashRouter(u32 devices)
    {
        ring_.reserve(size_t(devices) * kVirtualNodes);
        for (u32 d = 0; d < devices; ++d)
            for (u32 r = 0; r < kVirtualNodes; ++r)
                ring_.emplace_back(
                    splitMix64((u64(d) << 32) | (u64(r) + 1)), d);
        std::sort(ring_.begin(), ring_.end());
    }

    const char *name() const override { return "hash"; }

    u32
    route(const std::string &programKey,
          const std::vector<DeviceLoadView> & /*devices*/) override
    {
        u64 h = stableHash(programKey);
        auto it = std::lower_bound(
            ring_.begin(), ring_.end(), std::make_pair(h, u32(0)));
        if (it == ring_.end())
            it = ring_.begin(); // wrap around the ring
        return it->second;
    }

  private:
    std::vector<std::pair<u64, u32>> ring_; ///< (point, device), sorted
};

/** Prefer devices whose ProgramCache already holds the program (no
 *  compile on the critical path, no cold cache entry evicting a hot
 *  one); among them, least-loaded.  Falls back to least-loaded overall
 *  when no device is hot, which is how a pipeline's home is chosen the
 *  first time it appears. */
class CacheAffinityRouter final : public Router
{
  public:
    const char *name() const override { return "affinity"; }

    u32
    route(const std::string & /*programKey*/,
          const std::vector<DeviceLoadView> &devices) override
    {
        std::vector<const DeviceLoadView *> hot;
        for (const DeviceLoadView &d : devices)
            if (d.cacheHot)
                hot.push_back(&d);
        return leastLoaded(hot.empty() ? allOf(devices) : hot);
    }
};

} // namespace

std::unique_ptr<Router>
makeRouter(const std::string &policy, u32 devices)
{
    if (devices == 0)
        fatal("router needs at least one device");
    if (policy == "rr")
        return std::make_unique<RoundRobinRouter>();
    if (policy == "least")
        return std::make_unique<LeastLoadedRouter>();
    if (policy == "hash")
        return std::make_unique<ConsistentHashRouter>(devices);
    if (policy == "affinity")
        return std::make_unique<CacheAffinityRouter>();
    fatal("unknown router policy '", policy,
          "' (rr | least | hash | affinity)");
}

} // namespace ipim
