#include "fleet/observer.h"

#include <ostream>

#include "common/logging.h"
#include "fleet/events.h"
#include "metrics/prometheus.h"

namespace ipim {

namespace {

/** Batch async ids live above the request-id space so a batch span can
 *  never collide with a request span in the Chrome (cat, id) keying. */
constexpr u64 kBatchIdBase = u64(1) << 32;

} // namespace

FleetObserver::FleetObserver(FleetObserverConfig cfg) : cfg_(cfg) {}

FleetObserver::~FleetObserver() = default;

void
FleetObserver::attach(u32 devices, u32 slotsPerDevice,
                      const std::string &backend,
                      const std::string &router,
                      const std::string &policy)
{
    if (attached())
        fatal("FleetObserver is already attached to a fleet");
    devices_ = devices;
    slotsPer_ = slotsPerDevice;
    backend_ = backend;
    router_ = router;
    policy_ = policy;

    if (cfg_.tracing) {
        fleet_ = std::make_unique<Tracer>(cfg_.traceCapacity);
        fleet_->setEnabled(true);
        fleetReqTrack_ = fleet_->track("requests");
        fleetRouterTrack_ = fleet_->track("router");
        for (u32 d = 0; d < devices_; ++d) {
            auto t = std::make_unique<Tracer>(cfg_.traceCapacity);
            t->setEnabled(true);
            devReqTrack_.push_back(t->track("requests"));
            devBatchTrack_.push_back(t->track("batches"));
            devs_.push_back(std::move(t));
        }
    }

    if (cfg_.sampling && backend_ == "cycle") {
        MetricsSampler::Config mc;
        mc.interval = cfg_.sampleInterval;
        mc.capacity = cfg_.sampleCapacity;
        for (u32 i = 0; i < devices_ * slotsPer_; ++i) {
            auto s = std::make_unique<MetricsSampler>(mc);
            s->setRetainOnReset(true);
            samplers_.push_back(std::move(s));
        }
    }

    beginRun();
}

void
FleetObserver::beginRun()
{
    if (fleet_) {
        fleet_->clear();
        fleet_->setTimeOffset(0);
    }
    for (auto &t : devs_) {
        t->clear();
        t->setTimeOffset(0);
    }
    for (auto &s : samplers_) {
        s->clear();
        s->setTimeOffset(0);
    }
    events_.clear();
    eventCount_ = 0;
    if (cfg_.events) {
        JsonWriter j;
        j.field("ts", u64(0));
        j.field("type", "log");
        j.field("schema", kFleetEventsSchema);
        j.field("devices", u64(devices_));
        j.field("slots_per_device", u64(slotsPer_));
        j.field("backend", backend_);
        j.field("router", router_);
        j.field("policy", policy_);
        events_ += j.finish();
        events_ += '\n';
    }
}

Tracer *
FleetObserver::deviceTracer(u32 d)
{
    return d < devs_.size() ? devs_[d].get() : nullptr;
}

Tracer *
FleetObserver::fleetTracer()
{
    return fleet_.get();
}

MetricsSampler *
FleetObserver::slotSampler(u32 d, u32 s)
{
    size_t i = size_t(d) * slotsPer_ + s;
    return i < samplers_.size() ? samplers_[i].get() : nullptr;
}

void
FleetObserver::appendEvent(JsonWriter &j)
{
    events_ += j.finish();
    events_ += '\n';
    ++eventCount_;
}

void
FleetObserver::onOffered(const ServeRequest &req,
                         const std::string &tenant)
{
    (void)tenant;
    if (Tracer::active(fleet_.get()))
        fleet_->asyncBegin(fleetReqTrack_, TraceEv::kRequest, req.arrival,
                           req.id, fleet_->label(req.pipeline));
}

void
FleetObserver::onShed(Cycle now, const ServeRequest &req,
                      const std::string &tenant, const char *reason,
                      u32 shedLevel, f64 windowP99, bool routed,
                      u32 device, Cycle waitEst, Cycle ownEst,
                      Cycle target)
{
    if (cfg_.events) {
        JsonWriter j;
        j.field("ts", u64(now));
        j.field("type", "shed");
        j.field("req", req.id);
        j.field("tenant", tenant);
        j.field("priority", u64(req.priority));
        j.field("pipeline", req.pipeline);
        j.field("arrival", u64(req.arrival));
        j.field("reason", reason);
        j.field("shed_level", u64(shedLevel));
        j.field("window_p99", windowP99);
        if (routed) {
            j.field("device", u64(device));
            j.field("wait_est_cycles", u64(waitEst));
            j.field("own_est_cycles", u64(ownEst));
            j.field("target_cycles", u64(target));
        }
        appendEvent(j);
    }
    if (Tracer::active(fleet_.get())) {
        fleet_->instantArg(fleetReqTrack_, TraceEv::kReqShed, now, req.id);
        fleet_->asyncEnd(fleetReqTrack_, TraceEv::kRequest, now, req.id);
    }
}

void
FleetObserver::onRoute(Cycle now, const ServeRequest &req,
                       const std::string &tenant,
                       const std::string &policy, u32 device,
                       bool cacheHit,
                       const std::vector<DeviceLoadView> &views)
{
    if (cfg_.events) {
        JsonWriter j;
        j.field("ts", u64(now));
        j.field("type", "route");
        j.field("req", req.id);
        j.field("tenant", tenant);
        j.field("priority", u64(req.priority));
        j.field("pipeline", req.pipeline);
        j.field("arrival", u64(req.arrival));
        j.field("policy", policy);
        j.field("device", u64(device));
        j.field("cache_hit", cacheHit);
        j.key("candidates").beginArray();
        for (const DeviceLoadView &v : views) {
            j.beginObject();
            j.field("device", u64(v.device));
            j.field("free_slots", u64(v.freeSlots));
            j.field("queue_depth", v.queueDepth);
            j.field("backlog_cycles", u64(v.backlogCycles));
            j.field("cache_hot", v.cacheHot);
            j.endObject();
        }
        j.endArray();
        appendEvent(j);
    }
    if (Tracer::active(fleet_.get()))
        fleet_->instantArg(fleetRouterTrack_, TraceEv::kFleetRoute, now,
                           req.id);
    Tracer *dt = deviceTracer(device);
    if (Tracer::active(dt))
        dt->asyncBegin(devReqTrack_[device], TraceEv::kReqQueued, now,
                       req.id);
}

void
FleetObserver::onBatch(Cycle now, u32 device, i64 batchId,
                       const std::string &pipeline,
                       const std::vector<u64> &members,
                       Cycle windowCycles, Cycle execStart,
                       const char *fill)
{
    if (cfg_.events) {
        JsonWriter j;
        j.field("ts", u64(now));
        j.field("type", "batch");
        j.field("device", u64(device));
        j.field("batch", u64(batchId));
        j.field("pipeline", pipeline);
        j.key("members").beginArray();
        for (u64 m : members)
            j.value(m);
        j.endArray();
        j.field("window_cycles", u64(windowCycles));
        j.field("exec_start", u64(execStart));
        j.field("fill", fill);
        appendEvent(j);
    }
    Tracer *dt = deviceTracer(device);
    if (Tracer::active(dt)) {
        u64 id = kBatchIdBase + u64(batchId);
        dt->asyncBegin(devBatchTrack_[device], TraceEv::kReqBatch,
                       now - windowCycles, id, dt->label(pipeline));
        dt->asyncEnd(devBatchTrack_[device], TraceEv::kReqBatch,
                     execStart, id);
    }
}

void
FleetObserver::onDispatch(Cycle now, u64 req, const std::string &pipeline,
                          u32 device, u32 slot, u32 kernel, bool resume,
                          i64 batchId, Cycle launchStart, Cycle execStart,
                          Cycle compileCycles, Cycle heldCycles)
{
    if (cfg_.events) {
        JsonWriter j;
        j.field("ts", u64(now));
        j.field("type", "dispatch");
        j.field("req", req);
        j.field("device", u64(device));
        j.field("slot", u64(slot));
        j.field("kernel", u64(kernel));
        j.field("resume", resume);
        j.field("batch", i64(batchId));
        j.field("launch_start", u64(launchStart));
        j.field("exec_start", u64(execStart));
        j.field("compile_cycles", u64(compileCycles));
        j.field("held_cycles", u64(heldCycles));
        appendEvent(j);
    }
    Tracer *dt = deviceTracer(device);
    if (Tracer::active(dt)) {
        u32 tr = devReqTrack_[device];
        dt->asyncEnd(tr, TraceEv::kReqQueued, now, req);
        if (compileCycles > 0) {
            dt->asyncBegin(tr, TraceEv::kReqCompile, now, req);
            dt->asyncEnd(tr, TraceEv::kReqCompile, now + compileCycles,
                         req);
        }
        if (resume)
            dt->instantArg(tr, TraceEv::kReqResume, now, req);
        dt->asyncBegin(tr, TraceEv::kReqExecute, execStart, req,
                       dt->label(pipeline));
    }
}

void
FleetObserver::onPreempt(Cycle now, u64 req, u32 device, u32 slot,
                         u32 nextKernel, Cycle doneExec, u64 ckptBytes,
                         u64 higherPending)
{
    if (cfg_.events) {
        JsonWriter j;
        j.field("ts", u64(now));
        j.field("type", "preempt");
        j.field("req", req);
        j.field("device", u64(device));
        j.field("slot", u64(slot));
        j.field("kernel", u64(nextKernel));
        j.field("done_exec_cycles", u64(doneExec));
        j.field("ckpt_bytes", ckptBytes);
        j.field("higher_pending", higherPending);
        appendEvent(j);
    }
    Tracer *dt = deviceTracer(device);
    if (Tracer::active(dt)) {
        u32 tr = devReqTrack_[device];
        dt->instantArg(tr, TraceEv::kReqPreempt, now, req);
        dt->asyncEnd(tr, TraceEv::kReqExecute, now, req);
        dt->asyncBegin(tr, TraceEv::kReqQueued, now, req);
    }
}

void
FleetObserver::onComplete(Cycle now, u64 req, u32 device, u32 slot,
                          i64 batchId, Cycle execCycles,
                          Cycle queueCycles, Cycle totalCycles,
                          u32 preemptions)
{
    if (cfg_.events) {
        JsonWriter j;
        j.field("ts", u64(now));
        j.field("type", "complete");
        j.field("req", req);
        j.field("device", u64(device));
        j.field("slot", u64(slot));
        j.field("batch", i64(batchId));
        j.field("exec_cycles", u64(execCycles));
        j.field("queue_cycles", u64(queueCycles));
        j.field("total_cycles", u64(totalCycles));
        j.field("preemptions", u64(preemptions));
        appendEvent(j);
    }
    Tracer *dt = deviceTracer(device);
    if (Tracer::active(dt))
        dt->asyncEnd(devReqTrack_[device], TraceEv::kReqExecute, now,
                     req);
    if (Tracer::active(fleet_.get()))
        fleet_->asyncEnd(fleetReqTrack_, TraceEv::kRequest, now, req);
}

void
FleetObserver::exportChromeJson(std::ostream &os) const
{
    if (!fleet_)
        fatal("fleet trace export requested but tracing is off");
    std::vector<TraceProcess> procs;
    procs.push_back({fleet_.get(), 0, "fleet"});
    for (u32 d = 0; d < devs_.size(); ++d)
        procs.push_back(
            {devs_[d].get(), 1 + d, "dev" + std::to_string(d)});
    exportChromeJsonMulti(os, procs);
}

void
FleetObserver::writeEvents(std::ostream &os) const
{
    os << events_;
}

void
FleetObserver::metricsJson(JsonWriter &w) const
{
    w.beginObject();
    w.field("interval", u64(cfg_.sampleInterval));
    w.field("capacity", u64(cfg_.sampleCapacity));
    w.field("backend", backend_);
    w.key("devices").beginArray();
    if (!samplers_.empty()) {
        for (u32 d = 0; d < devices_; ++d) {
            w.beginObject();
            w.field("device", u64(d));
            w.key("slots").beginArray();
            for (u32 s = 0; s < slotsPer_; ++s) {
                const MetricsSampler *ms =
                    samplers_[size_t(d) * slotsPer_ + s].get();
                w.beginObject();
                w.field("slot", u64(s));
                w.key("series");
                ms->toJson(w);
                w.endObject();
            }
            w.endArray();
            w.endObject();
        }
    }
    w.endArray();
    w.endObject();
}

std::string
FleetObserver::prometheusText() const
{
    PrometheusWriter pw;
    pw.help("ipim_fleet_obs_events", "Decision event log records");
    pw.type("ipim_fleet_obs_events", "counter");
    pw.metric("ipim_fleet_obs_events", f64(eventCount_));

    if (fleet_) {
        pw.help("ipim_fleet_trace_events",
                "Recorded trace events per process");
        pw.type("ipim_fleet_trace_events", "counter");
        pw.metric("ipim_fleet_trace_events", f64(fleet_->recorded()),
                  {{"process", "fleet"}});
        for (u32 d = 0; d < devs_.size(); ++d)
            pw.metric("ipim_fleet_trace_events",
                      f64(devs_[d]->recorded()),
                      {{"process", "dev" + std::to_string(d)}});
    }

    if (!samplers_.empty()) {
        pw.help("ipim_fleet_device_samples",
                "Metric samples taken per device (all slots)");
        pw.type("ipim_fleet_device_samples", "counter");
        for (u32 d = 0; d < devices_; ++d) {
            u64 n = 0;
            for (u32 s = 0; s < slotsPer_; ++s)
                n += samplers_[size_t(d) * slotsPer_ + s]->samplesTotal();
            pw.metric("ipim_fleet_device_samples", f64(n),
                      {{"device", std::to_string(d)}});
        }

        // Per-device and fleet-rollup totals of every tracked counter
        // over the retained windows.
        const auto &names = samplers_.front()->counterNames();
        pw.help("ipim_fleet_device_sampled",
                "Retained sampled-counter total per device");
        pw.type("ipim_fleet_device_sampled", "counter");
        std::vector<f64> rollup(names.size(), 0.0);
        for (u32 d = 0; d < devices_; ++d) {
            for (size_t c = 0; c < names.size(); ++c) {
                f64 sum = 0.0;
                for (u32 s = 0; s < slotsPer_; ++s)
                    for (f64 v :
                         samplers_[size_t(d) * slotsPer_ + s]
                             ->counterSeries(names[c]))
                        sum += v;
                rollup[c] += sum;
                pw.metric("ipim_fleet_device_sampled", sum,
                          {{"device", std::to_string(d)},
                           {"counter", names[c]}});
            }
        }
        pw.help("ipim_fleet_sampled",
                "Retained sampled-counter total over the fleet");
        pw.type("ipim_fleet_sampled", "counter");
        for (size_t c = 0; c < names.size(); ++c)
            pw.metric("ipim_fleet_sampled", rollup[c],
                      {{"counter", names[c]}});
    }
    return pw.str();
}

} // namespace ipim
