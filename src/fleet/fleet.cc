#include "fleet/fleet.h"

#include <algorithm>
#include <limits>
#include <map>
#include <sstream>
#include <utility>

#include <cmath>

#include "apps/benchmarks.h"
#include "common/logging.h"
#include "fleet/observer.h"
#include "metrics/prometheus.h"
#include "runtime/transfer.h"

namespace ipim {

namespace {

constexpr Cycle kNever = std::numeric_limits<Cycle>::max();

std::string
fmtMs(f64 cycles)
{
    std::ostringstream s;
    s.precision(3);
    s << std::fixed << cycles * 1e-6 << " ms";
    return s.str();
}

/** Scatter every input image exactly as the runtimes do, so the initial
 *  bank state is bit-identical to a standalone launch of the same
 *  request. */
template <typename Dev>
void
scatterInputs(Dev &dev, const CompiledPipeline &pipe,
              const std::map<std::string, Image> &inputs)
{
    for (const StageInfo &s : pipe.analysis->stages) {
        if (!s.func->isInput())
            continue;
        auto it = inputs.find(s.func->name());
        if (it == inputs.end())
            fatal("fleet: input '", s.func->name(), "' not bound");
        scatterImageTo(dev, pipe.layouts->of(s.func), it->second);
    }
}

template <typename Dev>
Image
gatherOutput(Dev &dev, const CompiledPipeline &pipe)
{
    const Layout &outL = pipe.layouts->of(pipe.def.output);
    int h = pipe.def.output->dims() == 2 ? pipe.def.height : 1;
    return gatherImageFrom(dev, outL, pipe.def.width, h);
}

void
latencyJson(JsonWriter &w, const std::string &key,
            const LatencyHistogram &h)
{
    w.key(key).beginObject();
    w.field("count", h.count());
    if (h.count() > 0) {
        w.field("mean", h.mean());
        w.field("min", h.min());
        w.field("max", h.max());
        w.field("p50", h.percentile(50));
        w.field("p95", h.percentile(95));
        w.field("p99", h.percentile(99));
    }
    w.endObject();
}

} // namespace

f64
FleetReport::throughputRps() const
{
    if (makespan == 0)
        return 0.0;
    return f64(completed) / (f64(makespan) * 1e-9);
}

std::string
FleetReport::summary() const
{
    std::ostringstream out;
    out << "fleet served " << completed << "/" << records.size()
        << " requests (" << shedTotal << " shed) in "
        << fmtMs(f64(makespan)) << " of virtual time ("
        << u64(throughputRps()) << " req/s)\n";
    auto line = [&](const char *what, const LatencyHistogram &h) {
        if (h.count() == 0)
            return;
        out << "  " << what << " latency: p50 " << fmtMs(h.percentile(50))
            << " | p95 " << fmtMs(h.percentile(95)) << " | p99 "
            << fmtMs(h.percentile(99)) << " | mean " << fmtMs(h.mean())
            << "\n";
    };
    line("total", totalLatency);
    line("queue", queueLatency);
    out << "  batches: " << batches << " (" << batchedRequests
        << " requests) | preemptions: " << preemptions << "\n";
    u64 hits = 0;
    u64 compiles = 0;
    u64 evictions = 0;
    for (const DeviceReport &d : devices) {
        hits += d.cacheHits;
        compiles += d.cacheCompiles;
        evictions += d.cacheEvictions;
    }
    out << "  program cache: " << compiles << " compiles, " << hits
        << " hits, " << evictions << " evictions over " << devices.size()
        << " devices\n";
    for (const TenantReport &t : tenants) {
        out << "  tenant " << t.name << ": " << t.completed
            << " done, " << t.shed << " shed";
        if (t.totalLatency.count() > 0)
            out << ", p99 " << fmtMs(t.totalLatency.percentile(99));
        out << "\n";
    }
    return out.str();
}

void
FleetReport::toJson(JsonWriter &w, const FleetConfig &cfg) const
{
    w.field("schema", "ipim-serve-fleet-v1");

    w.key("fleet").beginObject();
    w.field("devices", u64(devices.size()));
    w.field("slots_per_device",
            u64(cfg.hw.cubes / cfg.cubesPerRequest));
    w.field("backend", cfg.backend);
    w.field("router", cfg.router);
    w.field("policy", cfg.policy);
    w.field("batching", cfg.batching);
    w.field("max_batch", u64(cfg.maxBatch));
    w.field("batch_window_cycles", u64(cfg.batchWindowCycles));
    w.field("preempt", cfg.preempt);
    w.field("shed_p99_cycles", u64(cfg.shedP99Cycles));
    w.field("slo_window_cycles", u64(cfg.sloWindowCycles));
    w.field("launch_overhead_cycles", u64(cfg.launchOverheadCycles));
    w.field("compile_cycles_per_inst", u64(cfg.compileCyclesPerInst));
    w.field("cache_capacity", u64(cfg.cacheCapacity));
    w.field("threads", u64(cfg.threads));
    w.field("fast_forward", cfg.fastForward);
    w.endObject();

    w.field("requests_total", u64(records.size()));
    w.field("admitted", admitted);
    w.field("completed", completed);
    w.field("shed", shedTotal);
    w.field("batches", batches);
    w.field("batched_requests", batchedRequests);
    w.field("preemptions", preemptions);
    w.field("makespan_cycles", u64(makespan));
    w.field("throughput_rps", throughputRps());

    // Fast-forward telemetry summed over the fleet (satellite of the
    // single-device fast_forward block; all zero on the func backend).
    u64 ffwdJumps = 0;
    u64 ffwdSkipped = 0;
    for (const DeviceReport &d : devices) {
        ffwdJumps += d.ffwdJumps;
        ffwdSkipped += d.ffwdSkippedCycles;
    }
    w.key("fast_forward").beginObject();
    w.field("enabled", cfg.fastForward);
    w.field("jumps", ffwdJumps);
    w.field("skipped_cycles", ffwdSkipped);
    w.endObject();

    latencyJson(w, "total_latency", totalLatency);
    latencyJson(w, "queue_latency", queueLatency);
    latencyJson(w, "exec_latency", execLatency);

    w.key("slo");
    slo.toJson(w, makespan);

    w.key("per_device").beginArray();
    for (size_t d = 0; d < devices.size(); ++d) {
        const DeviceReport &dr = devices[d];
        w.beginObject();
        w.field("device", u64(d));
        w.field("requests", dr.requests);
        w.field("batches", dr.batches);
        w.field("preemptions", dr.preemptions);
        w.field("busy_cycles", u64(dr.busyCycles));
        w.field("ffwd_jumps", dr.ffwdJumps);
        w.field("ffwd_skipped_cycles", dr.ffwdSkippedCycles);
        w.key("cache").beginObject();
        w.field("hits", dr.cacheHits);
        w.field("compiles", dr.cacheCompiles);
        w.field("evictions", dr.cacheEvictions);
        w.field("entries", dr.cacheEntries);
        w.endObject();
        latencyJson(w, "total_latency", dr.totalLatency);
        w.endObject();
    }
    w.endArray();

    w.key("per_tenant").beginArray();
    for (const TenantReport &t : tenants) {
        w.beginObject();
        w.field("name", t.name);
        w.field("weight", t.weight);
        w.field("priority", u64(t.priority));
        w.field("admitted", t.admitted);
        w.field("completed", t.completed);
        w.field("shed", t.shed);
        w.field("shed_breach", t.shedBreach);
        w.field("shed_backlog", t.shedBacklog);
        w.field("served_cycles", u64(t.servedCycles));
        latencyJson(w, "total_latency", t.totalLatency);
        w.endObject();
    }
    w.endArray();

    w.key("requests").beginArray();
    for (const FleetRequestRecord &r : records) {
        w.beginObject();
        w.field("id", r.id);
        w.field("pipeline", r.pipeline);
        w.field("tenant", u64(r.tenant));
        w.field("priority", u64(r.priority));
        w.field("arrival", u64(r.arrival));
        w.field("shed", r.shed);
        if (r.shed) {
            w.field("shed_reason", r.shedReason);
        } else {
            w.field("device", u64(r.device));
            w.field("slot", u64(r.slot));
            w.field("batch", i64(r.batch));
            w.field("preemptions", u64(r.preemptions));
            w.field("start", u64(r.start));
            w.field("finish", u64(r.finish));
            w.field("exec_cycles", u64(r.execCycles));
            w.field("compile_cycles", u64(r.compileCycles));
            w.field("overhead_cycles", u64(r.overheadCycles));
            w.field("cache_hit", r.cacheHit);
            w.field("queue_cycles", u64(r.queueCycles()));
            w.field("total_cycles", u64(r.totalCycles()));
        }
        w.endObject();
    }
    w.endArray();

    w.statsObject("stats", stats);
}

std::string
FleetReport::prometheusText() const
{
    PrometheusWriter pw;
    auto counter = [&](const std::string &name, const std::string &help,
                       f64 v) {
        pw.help(name, help);
        pw.type(name, "counter");
        pw.metric(name, v);
    };
    auto gauge = [&](const std::string &name, const std::string &help,
                     f64 v) {
        pw.help(name, help);
        pw.type(name, "gauge");
        pw.metric(name, v);
    };

    gauge("ipim_fleet_devices", "Devices in the fleet",
          f64(devices.size()));
    counter("ipim_fleet_requests_total", "Requests offered to the fleet",
            f64(records.size()));
    counter("ipim_fleet_admitted_total", "Requests admitted",
            f64(admitted));
    counter("ipim_fleet_completed_total", "Requests completed",
            f64(completed));
    counter("ipim_fleet_shed_total", "Requests shed at admission",
            f64(shedTotal));
    counter("ipim_fleet_batches_total", "Coalesced multi-request launches",
            f64(batches));
    counter("ipim_fleet_batched_requests_total",
            "Requests launched as part of a batch", f64(batchedRequests));
    counter("ipim_fleet_preemptions_total",
            "Kernel-boundary preemptions", f64(preemptions));
    gauge("ipim_fleet_makespan_cycles", "Virtual-time makespan",
          f64(makespan));
    gauge("ipim_fleet_throughput_rps",
          "Completed requests per second of virtual time",
          throughputRps());

    pw.summary("ipim_fleet_latency_cycles", totalLatency,
               "Fleet-wide admitted-request latency (cycles)");
    pw.summary("ipim_fleet_queue_cycles", queueLatency,
               "Fleet-wide queue wait (cycles)");

    auto family = [&](const std::string &name, const std::string &help,
                      const std::string &type) {
        pw.help(name, help);
        pw.type(name, type);
    };
    family("ipim_fleet_device_requests_total",
           "Completions per device", "counter");
    for (size_t d = 0; d < devices.size(); ++d)
        pw.metric("ipim_fleet_device_requests_total",
                  f64(devices[d].requests),
                  {{"device", std::to_string(d)}});
    family("ipim_fleet_device_busy_cycles",
           "Executed device cycles per device", "gauge");
    for (size_t d = 0; d < devices.size(); ++d)
        pw.metric("ipim_fleet_device_busy_cycles",
                  f64(devices[d].busyCycles),
                  {{"device", std::to_string(d)}});
    family("ipim_fleet_cache_hits_total",
           "Program-cache hits per device", "counter");
    for (size_t d = 0; d < devices.size(); ++d)
        pw.metric("ipim_fleet_cache_hits_total", f64(devices[d].cacheHits),
                  {{"device", std::to_string(d)}});
    family("ipim_fleet_cache_compiles_total",
           "Program-cache compiles per device", "counter");
    for (size_t d = 0; d < devices.size(); ++d)
        pw.metric("ipim_fleet_cache_compiles_total",
                  f64(devices[d].cacheCompiles),
                  {{"device", std::to_string(d)}});
    family("ipim_fleet_cache_evictions_total",
           "Program-cache LRU evictions per device", "counter");
    for (size_t d = 0; d < devices.size(); ++d)
        pw.metric("ipim_fleet_cache_evictions_total",
                  f64(devices[d].cacheEvictions),
                  {{"device", std::to_string(d)}});
    family("ipim_fleet_cache_entries",
           "Resident program-cache entries per device", "gauge");
    for (size_t d = 0; d < devices.size(); ++d)
        pw.metric("ipim_fleet_cache_entries", f64(devices[d].cacheEntries),
                  {{"device", std::to_string(d)}});
    family("ipim_fleet_device_ffwd_jumps_total",
           "Fast-forward jumps per device", "counter");
    for (size_t d = 0; d < devices.size(); ++d)
        pw.metric("ipim_fleet_device_ffwd_jumps_total",
                  f64(devices[d].ffwdJumps),
                  {{"device", std::to_string(d)}});
    family("ipim_fleet_device_ffwd_skipped_cycles_total",
           "Fast-forwarded (skipped) cycles per device", "counter");
    for (size_t d = 0; d < devices.size(); ++d)
        pw.metric("ipim_fleet_device_ffwd_skipped_cycles_total",
                  f64(devices[d].ffwdSkippedCycles),
                  {{"device", std::to_string(d)}});

    family("ipim_fleet_tenant_admitted_total",
           "Admitted requests per tenant", "counter");
    for (const TenantReport &t : tenants)
        pw.metric("ipim_fleet_tenant_admitted_total", f64(t.admitted),
                  {{"tenant", t.name}});
    family("ipim_fleet_tenant_completed_total",
           "Completed requests per tenant", "counter");
    for (const TenantReport &t : tenants)
        pw.metric("ipim_fleet_tenant_completed_total", f64(t.completed),
                  {{"tenant", t.name}});
    family("ipim_fleet_tenant_shed_total",
           "Shed requests per tenant and reason", "counter");
    for (const TenantReport &t : tenants) {
        pw.metric("ipim_fleet_tenant_shed_total", f64(t.shedBreach),
                  {{"tenant", t.name}, {"reason", "p99_breach"}});
        pw.metric("ipim_fleet_tenant_shed_total", f64(t.shedBacklog),
                  {{"tenant", t.name}, {"reason", "backlog"}});
    }
    family("ipim_fleet_tenant_served_cycles",
           "Device cycles executed per tenant", "gauge");
    for (const TenantReport &t : tenants)
        pw.metric("ipim_fleet_tenant_served_cycles", f64(t.servedCycles),
                  {{"tenant", t.name}});

    // Fleet-level SLO windows (merged sample-exactly from the
    // per-device trackers) use their own ipim_serve_* families.
    return pw.str() + slo.prometheusText(makespan);
}

FleetServer::FleetServer(const FleetConfig &cfg) : cfg_(cfg)
{
    cfg_.hw.validate();
    if (cfg_.devices == 0)
        fatal("fleet needs at least one device");
    u32 per = cfg_.cubesPerRequest;
    if (per == 0 || per > cfg_.hw.cubes)
        fatal("cubesPerRequest ", per, " invalid for ", cfg_.hw.cubes,
              " cubes");
    if (cfg_.hw.cubes % per != 0)
        fatal("cubesPerRequest ", per, " must divide cube count ",
              cfg_.hw.cubes);
    if (cfg_.backend != "cycle" && cfg_.backend != "func")
        fatal("unknown backend '", cfg_.backend, "' (cycle | func)");

    tenants_ = cfg_.tenants;
    if (tenants_.empty())
        tenants_.push_back(TenantSpec{});
    for (const TenantSpec &t : tenants_) {
        if (t.weight <= 0.0)
            fatal("tenant '", t.name, "' needs a positive weight");
        maxPriority_ = std::max(maxPriority_, t.priority);
    }

    router_ = makeRouter(cfg_.router, cfg_.devices);
    intra_ = makeScheduler(cfg_.policy);

    HardwareConfig sc = slotConfig();
    u32 slotsPer = cfg_.hw.cubes / per;
    if (cfg_.observer)
        cfg_.observer->attach(cfg_.devices, slotsPer, cfg_.backend,
                              cfg_.router, cfg_.policy);
    // Size the vector once up front: DeviceState holds a StatsRegistry
    // that per-device ProgramCaches point into, so elements must never
    // relocate after the caches are wired up in run().
    devs_.resize(cfg_.devices);
    for (u32 d = 0; d < cfg_.devices; ++d) {
        DeviceState &ds = devs_[d];
        for (u32 s = 0; s < slotsPer; ++s) {
            Slot slot;
            if (cfg_.backend == "func") {
                slot.fdev = std::make_unique<FuncDevice>(sc);
            } else {
                // All slots of one device share that device's tracer
                // (its own trace pid), each under a "slot<s>/" track
                // prefix — same-named tracks on other devices live in
                // other pids, so nothing aliases.
                Tracer *tracer = cfg_.observer
                                     ? cfg_.observer->deviceTracer(d)
                                     : nullptr;
                slot.dev = std::make_unique<Device>(
                    sc, tracer, "slot" + std::to_string(s) + "/");
                slot.dev->setFastForward(cfg_.fastForward);
                slot.dev->setThreads(cfg_.threads);
                if (cfg_.observer)
                    slot.dev->setProbe(
                        cfg_.observer->slotSampler(d, s));
            }
            ds.slots.push_back(std::move(slot));
        }
        ds.running.resize(slotsPer);
    }
}

FleetServer::~FleetServer() = default;

u32
FleetServer::slotsPerDevice() const
{
    return cfg_.hw.cubes / cfg_.cubesPerRequest;
}

HardwareConfig
FleetServer::slotConfig() const
{
    HardwareConfig c = cfg_.hw;
    c.cubes = cfg_.cubesPerRequest;
    return c;
}

FleetReport
FleetServer::run(const std::vector<ServeRequest> &requests)
{
    FleetObserver *obs = cfg_.observer;
    if (obs)
        obs->beginRun();

    FleetReport rep;
    rep.slo = SloTracker(cfg_.sloWindowCycles);
    rep.devices.reserve(devs_.size());
    for (size_t d = 0; d < devs_.size(); ++d) {
        FleetReport::DeviceReport dr;
        dr.slo = SloTracker(cfg_.sloWindowCycles);
        rep.devices.push_back(std::move(dr));
    }
    rep.tenants.reserve(tenants_.size());
    for (const TenantSpec &t : tenants_) {
        FleetReport::TenantReport tr;
        tr.name = t.name;
        tr.weight = t.weight;
        tr.priority = t.priority;
        rep.tenants.push_back(std::move(tr));
    }

    // Per-run state: caches (so hit/miss counters land in this report),
    // queues, and the launch dispatcher clocks all start fresh.
    for (DeviceState &ds : devs_) {
        ds.pend.clear();
        for (std::unique_ptr<Running> &r : ds.running)
            r.reset();
        ds.launcherFreeAt = 0;
        ds.cacheStats.clear();
        ds.cache = std::make_unique<ProgramCache>(&ds.cacheStats);
        ds.cache->setCapacity(cfg_.cacheCapacity);
    }

    HardwareConfig slotCfg = slotConfig();
    u32 slotsPer = slotsPerDevice();

    std::vector<ServeRequest> sorted = requests;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const ServeRequest &a, const ServeRequest &b) {
                         return a.arrival != b.arrival
                                    ? a.arrival < b.arrival
                                    : a.id < b.id;
                     });

    u32 maxPrio = maxPriority_;
    for (const ServeRequest &r : sorted) {
        if (r.tenant >= tenants_.size())
            fatal("request ", r.id, ": tenant ", r.tenant,
                  " outside the tenant table (", tenants_.size(),
                  " entries)");
        maxPrio = std::max(maxPrio, r.priority);
    }

    std::vector<Cycle> served(tenants_.size(), 0);
    size_t next = 0;
    Cycle now = 0;
    u64 nextBatch = 0;

    // Adaptive shed level: requests with priority < shedLevel are
    // rejected at admission.  Raised one step per breached (or starved)
    // SLO window, lowered one step per healthy one — lowest-priority
    // traffic is always the first to go and the last to come back.
    u32 shedLevel = 0;
    u64 shedEval = 0; // next tumbling-window index to evaluate
    f64 lastWindowP99 = 0.0; // of the last evaluated non-empty window
    std::map<u64, LatencyHistogram> windowLat;

    auto estRemaining = [&](const Pending &p) -> Cycle {
        Cycle est = p.program->estimate();
        Cycle remExec = est > p.doneExec ? est - p.doneExec : Cycle(1);
        return p.compileCycles + remExec;
    };

    auto runRemaining = [&](const Running &r) -> Cycle {
        Cycle est = r.p.program->estimate();
        Cycle past = r.p.doneExec + r.curKernelCycles;
        Cycle tail = est > past ? est - past : Cycle(0);
        Cycle cur = r.boundaryAt > now ? r.boundaryAt - now : Cycle(0);
        return cur + tail;
    };

    auto loadViews = [&](const std::string &key) {
        std::vector<DeviceLoadView> views;
        views.reserve(devs_.size());
        for (size_t d = 0; d < devs_.size(); ++d) {
            const DeviceState &ds = devs_[d];
            DeviceLoadView v;
            v.device = u32(d);
            v.slots = slotsPer;
            Cycle backlog = 0;
            for (const std::unique_ptr<Running> &r : ds.running) {
                if (r)
                    backlog += runRemaining(*r);
                else
                    ++v.freeSlots;
            }
            for (const Pending &p : ds.pend)
                backlog += estRemaining(p);
            v.queueDepth = ds.pend.size();
            v.backlogCycles = backlog;
            v.cacheHot = ds.cache->contains(key);
            views.push_back(v);
        }
        return views;
    };

    auto anyWorkInFlight = [&]() {
        for (const DeviceState &ds : devs_) {
            if (!ds.pend.empty())
                return true;
            for (const std::unique_ptr<Running> &r : ds.running)
                if (r)
                    return true;
        }
        return false;
    };

    auto updateShedLevel = [&]() {
        if (cfg_.shedP99Cycles == 0)
            return;
        u64 cur = now / cfg_.sloWindowCycles;
        while (shedEval < cur) {
            auto it = windowLat.find(shedEval);
            bool breach = false;
            if (it != windowLat.end() && it->second.count() > 0) {
                lastWindowP99 = it->second.percentile(99);
                breach = lastWindowP99 > f64(cfg_.shedP99Cycles);
                windowLat.erase(it);
            } else {
                // A window in which nothing completed while work was in
                // flight means latencies have outgrown the window — at
                // least as alarming as a measured breach.
                breach = anyWorkInFlight();
            }
            if (breach)
                shedLevel = std::min(shedLevel + 1, maxPrio + 1);
            else if (shedLevel > 0)
                --shedLevel;
            ++shedEval;
        }
    };

    auto admit = [&](const ServeRequest &req) {
        size_t recIdx = rep.records.size();
        FleetRequestRecord rec;
        rec.id = req.id;
        rec.pipeline = req.pipeline;
        rec.tenant = req.tenant;
        rec.priority = req.priority;
        rec.arrival = req.arrival;
        rep.records.push_back(std::move(rec));
        FleetRequestRecord &r = rep.records.back();
        FleetReport::TenantReport &tr = rep.tenants[req.tenant];
        if (obs)
            obs->onOffered(req, tr.name);

        auto shed = [&](const char *reason) {
            r.shed = true;
            r.shedReason = reason;
            ++rep.shedTotal;
            ++tr.shed;
            if (r.shedReason == "p99_breach")
                ++tr.shedBreach;
            else
                ++tr.shedBacklog;
        };

        updateShedLevel();
        if (cfg_.shedP99Cycles != 0 && req.priority < shedLevel) {
            shed("p99_breach");
            if (obs)
                obs->onShed(now, req, tr.name, "p99_breach", shedLevel,
                            lastWindowP99, false, 0, 0, 0,
                            cfg_.shedP99Cycles);
            return;
        }

        std::string key = ProgramCache::makeKey(
            req.pipeline, cfg_.width, cfg_.height, slotCfg, cfg_.copts);
        std::vector<DeviceLoadView> views = loadViews(key);
        u32 d = router_->route(key, views);
        DeviceState &ds = devs_[d];

        Pending p;
        p.req = req;
        u64 missesBefore = ds.cache->compiles();
        int w = cfg_.width;
        int h = cfg_.height;
        p.program = ds.cache->getShared(
            req.pipeline, w, h, slotCfg, cfg_.copts,
            [&]() { return makeBenchmark(req.pipeline, w, h).def; });
        p.cacheHit = ds.cache->compiles() == missesBefore;
        p.compileCycles =
            p.cacheHit ? 0
                       : cfg_.compileCyclesPerInst *
                             p.program->compiled.totalInstructions();
        p.recIdx = recIdx;
        r.device = d;
        r.cacheHit = p.cacheHit;

        if (cfg_.shedP99Cycles != 0) {
            // Backlog admission guard: if even an optimistic wait
            // estimate (equal-or-higher-priority work ahead of it,
            // spread over all slots) blows the target, shedding now is
            // kinder than admitting a request doomed to breach.
            Cycle ahead = 0;
            for (const Pending &q : ds.pend)
                if (q.req.priority >= req.priority)
                    ahead += estRemaining(q) + cfg_.launchOverheadCycles;
            for (const std::unique_ptr<Running> &run : ds.running)
                if (run)
                    ahead += runRemaining(*run);
            Cycle waitEst = ahead / std::max<u32>(1, slotsPer);
            Cycle ownEst = p.compileCycles + p.program->estimate() +
                           cfg_.launchOverheadCycles;
            // Admit against HALF the target: the estimate can only see
            // work already queued, and during an overload onset an
            // equal amount of soon-to-arrive equal-or-higher-priority
            // work is typically still in flight toward this device.
            // The headroom keeps admitted requests inside the target
            // instead of exactly on (and in practice beyond) it.
            if (waitEst + ownEst > cfg_.shedP99Cycles / 2) {
                shed("backlog");
                if (obs)
                    obs->onShed(now, req, tr.name, "backlog", shedLevel,
                                lastWindowP99, true, d, waitEst, ownEst,
                                cfg_.shedP99Cycles);
                return;
            }
        }

        ++rep.admitted;
        ++tr.admitted;
        if (obs)
            obs->onRoute(now, req, tr.name, cfg_.router, d, p.cacheHit,
                         views);
        ds.pend.push_back(std::move(p));
    };

    // Strict priority class first, then weighted fair share across the
    // tenants of that class (smallest servedCycles/weight wins, ties to
    // the lowest tenant index), then the intra-tenant policy
    // (fifo | sjf) over that tenant's queue entries.
    auto pickNext = [&](DeviceState &ds) -> size_t {
        u32 top = 0;
        for (const Pending &p : ds.pend)
            top = std::max(top, p.req.priority);
        size_t bestT = SIZE_MAX;
        f64 bestRatio = 0.0;
        for (const Pending &p : ds.pend) {
            if (p.req.priority != top)
                continue;
            u32 t = p.req.tenant;
            f64 ratio = f64(served[t]) / tenants_[t].weight;
            if (bestT == SIZE_MAX || ratio < bestRatio ||
                (ratio == bestRatio && t < bestT)) {
                bestT = t;
                bestRatio = ratio;
            }
        }
        std::vector<size_t> subset;
        std::vector<PendingRequest> view;
        for (size_t i = 0; i < ds.pend.size(); ++i) {
            const Pending &p = ds.pend[i];
            if (p.req.priority != top || p.req.tenant != bestT)
                continue;
            subset.push_back(i);
            view.push_back(
                {p.req.id, p.req.arrival, estRemaining(p)});
        }
        return subset[intra_->pick(view)];
    };

    auto prepareSlot = [&](DeviceState &ds, u32 s, Pending &p) {
        Slot &slot = ds.slots[s];
        const CompiledPipeline &pipe = p.program->compiled;
        if (cfg_.backend == "func") {
            slot.fdev->reset();
            if (p.ckpt) {
                restoreCheckpoint(*slot.fdev, *p.ckpt);
                p.ckpt.reset();
            } else {
                BenchmarkApp app =
                    makeBenchmark(p.req.pipeline, cfg_.width,
                                  cfg_.height, p.req.inputSeed);
                scatterInputs(*slot.fdev, pipe, app.inputs);
            }
        } else {
            slot.dev->reset();
            if (p.ckpt) {
                restoreCheckpoint(*slot.dev, *p.ckpt);
                p.ckpt.reset();
            } else {
                BenchmarkApp app =
                    makeBenchmark(p.req.pipeline, cfg_.width,
                                  cfg_.height, p.req.inputSeed);
                scatterInputs(*slot.dev, pipe, app.inputs);
            }
        }
    };

    // Simulate one kernel of the running request and return its cycle
    // cost: measured on the cycle backend, the static cost model's
    // per-kernel estimate (scaled by any calibration) on the
    // functional one.  @p vstart is the kernel's start on the fleet
    // virtual timeline: observer tracers/samplers are offset by
    // (vstart - device-local clock) so everything recorded during the
    // run lands at fleet time.
    auto runKernel = [&](u32 d, u32 s, Running &r, Cycle vstart) -> Cycle {
        DeviceState &ds = devs_[d];
        Slot &slot = ds.slots[s];
        const CompiledPipeline &pipe = r.p.program->compiled;
        const CompiledKernel &k = pipe.kernels[r.p.nextKernel];
        if (cfg_.backend == "func") {
            slot.fdev->loadPrograms(k.perVault);
            slot.fdev->run();
            const std::vector<f64> &stat =
                estimator_.staticEstimates(pipe);
            f64 scaled =
                stat.at(r.p.nextKernel) * estimator_.scaleFor(pipe);
            return std::max<Cycle>(1, Cycle(std::llround(scaled)));
        }
        Device &dev = *slot.dev;
        Tracer *dt = obs ? obs->deviceTracer(d) : nullptr;
        MetricsSampler *ms = obs ? obs->slotSampler(d, s) : nullptr;
        Cycle off = vstart >= dev.now() ? vstart - dev.now() : 0;
        if (dt)
            dt->setTimeOffset(off);
        if (ms)
            ms->setTimeOffset(off);
        u64 sk0 = dev.ffwdSkippedCycles();
        u64 jp0 = dev.ffwdJumps();
        dev.loadPrograms(k.perVault);
        Cycle c = std::max<Cycle>(1, dev.run());
        rep.devices[d].ffwdSkippedCycles +=
            dev.ffwdSkippedCycles() - sk0;
        rep.devices[d].ffwdJumps += dev.ffwdJumps() - jp0;
        // Fleet-level spans are emitted at explicit virtual times;
        // leave the shared device tracer back at zero offset.
        if (dt)
            dt->setTimeOffset(0);
        return c;
    };

    auto dispatchDevice = [&](u32 d) {
        DeviceState &ds = devs_[d];
        while (!ds.pend.empty()) {
            std::vector<u32> free;
            for (u32 s = 0; s < slotsPer; ++s)
                if (!ds.running[s])
                    free.push_back(s);
            if (free.empty())
                break;

            size_t pi = pickNext(ds);
            std::vector<Pending> group;
            group.push_back(std::move(ds.pend[pi]));
            ds.pend.erase(ds.pend.begin() + ptrdiff_t(pi));

            // Opportunistic cross-request batching: same compiled
            // program (same cache entry), not yet started, coalesced
            // into one launch over this device's free slots.  Members
            // run on their own cube partitions and finish
            // independently — the shared cost is the single launch
            // overhead below.
            size_t cap = free.size();
            if (cfg_.maxBatch != 0)
                cap = std::min(cap, size_t(cfg_.maxBatch));
            if (cfg_.batching && group.front().nextKernel == 0 &&
                !group.front().ckpt) {
                for (size_t i = 0;
                     i < ds.pend.size() && group.size() < cap;) {
                    Pending &c = ds.pend[i];
                    if (c.program.get() == group.front().program.get() &&
                        c.nextKernel == 0 && !c.ckpt) {
                        group.push_back(std::move(c));
                        ds.pend.erase(ds.pend.begin() + ptrdiff_t(i));
                    } else {
                        ++i;
                    }
                }
            }

            // Launches on one device serialize through its host-link
            // dispatcher; a batch occupies it once for all members.
            Cycle compile = 0;
            for (const Pending &p : group)
                compile = std::max(compile, p.compileCycles);

            // Batch formation: a growable group waits for same-program
            // companions — up to batchWindowCycles from when its oldest
            // member first started waiting, or for free while the
            // launcher is busy anyway (launching then would start
            // execution at the same instant regardless).  "Growable"
            // means below the whole-device batch ceiling with evidence
            // of growth: either spare free slots (a new arrival could
            // join) or same-program companions already queued (a slot
            // freeing within the window lets them join).  Full groups
            // launch immediately; compile misses and resumed requests
            // never wait.
            size_t hardCap = size_t(slotsPer);
            if (cfg_.maxBatch != 0)
                hardCap = std::min(hardCap, size_t(cfg_.maxBatch));
            bool companions = false;
            for (const Pending &p : ds.pend)
                if (p.program.get() == group.front().program.get() &&
                    p.nextKernel == 0 && !p.ckpt)
                    companions = true;
            if (cfg_.batching && compile == 0 &&
                group.front().nextKernel == 0 &&
                group.size() < hardCap &&
                (companions || group.size() < cap)) {
                Cycle since = now;
                for (const Pending &p : group)
                    if (p.held)
                        since = std::min(since, p.heldSince);
                if (now < since + cfg_.batchWindowCycles ||
                    now < ds.launcherFreeAt) {
                    for (Pending &p : group) {
                        if (!p.held) {
                            p.held = true;
                            p.heldSince = now;
                        }
                    }
                    ds.pend.insert(ds.pend.begin(),
                                   std::make_move_iterator(group.begin()),
                                   std::make_move_iterator(group.end()));
                    break;
                }
            }

            Cycle launchStart = std::max(now + compile, ds.launcherFreeAt);
            Cycle execStart = launchStart + cfg_.launchOverheadCycles;
            ds.launcherFreeAt = execStart;

            i64 batchId = -1;
            if (group.size() > 1) {
                batchId = i64(nextBatch++);
                ++rep.batches;
                ++rep.devices[d].batches;
                rep.batchedRequests += group.size();
                if (obs) {
                    // Why did the batch stop growing?  Mirrors the
                    // hold-or-launch conditions above, in check order.
                    const char *fill = "window";
                    if (group.size() >= hardCap)
                        fill = "full";
                    else if (compile != 0)
                        fill = "compile";
                    else if (group.front().nextKernel != 0 ||
                             group.front().ckpt)
                        fill = "resume";
                    else if (!companions && group.size() >= cap)
                        fill = "slots";
                    Cycle since = now;
                    for (const Pending &p : group)
                        if (p.held)
                            since = std::min(since, p.heldSince);
                    std::vector<u64> members;
                    for (const Pending &p : group)
                        members.push_back(p.req.id);
                    obs->onBatch(now, d, batchId,
                                 group.front().req.pipeline, members,
                                 now - since, execStart, fill);
                }
            }

            for (size_t m = 0; m < group.size(); ++m) {
                u32 s = free[m];
                Pending p = std::move(group[m]);
                FleetRequestRecord &rec = rep.records[p.recIdx];
                bool resume = p.started;
                if (!p.started) {
                    p.started = true;
                    rec.start = now;
                }
                rec.device = d;
                rec.slot = s;
                if (batchId >= 0)
                    rec.batch = batchId;
                Cycle charged = p.compileCycles;
                p.compileCycles = 0;
                rec.compileCycles += charged;
                rec.overheadCycles += execStart - now - charged;
                if (obs)
                    obs->onDispatch(now, p.req.id, p.req.pipeline, d, s,
                                    p.nextKernel, resume, batchId,
                                    launchStart, execStart, charged,
                                    p.held ? now - p.heldSince : 0);

                prepareSlot(ds, s, p);
                auto r = std::make_unique<Running>();
                r->p = std::move(p);
                r->batchId = batchId;
                Cycle c = runKernel(d, s, *r, execStart);
                r->curKernelCycles = c;
                r->boundaryAt = execStart + c;
                ds.running[s] = std::move(r);
            }
        }
    };

    auto processBoundary = [&](u32 d, u32 s) {
        DeviceState &ds = devs_[d];
        Running &r = *ds.running[s];
        FleetRequestRecord &rec = rep.records[r.p.recIdx];
        const CompiledPipeline &pipe = r.p.program->compiled;

        r.p.doneExec += r.curKernelCycles;
        served[r.p.req.tenant] += r.curKernelCycles;
        rep.devices[d].busyCycles += r.curKernelCycles;
        ++r.p.nextKernel;

        if (r.p.nextKernel >= u32(pipe.kernels.size())) {
            Cycle finish = r.boundaryAt;
            rec.finish = finish;
            rec.execCycles = r.p.doneExec;
            rec.preemptions = r.p.preemptCount;
            if (cfg_.keepOutputs) {
                if (cfg_.backend == "func")
                    rec.output = gatherOutput(*ds.slots[s].fdev, pipe);
                else
                    rec.output = gatherOutput(*ds.slots[s].dev, pipe);
            }
            if (cfg_.backend == "cycle") {
                rep.stats.merge(ds.slots[s].dev->stats());
                r.p.program->recordMeasurement(r.p.doneExec);
                estimator_.recordMeasurement(pipe, f64(r.p.doneExec));
            }
            FleetReport::DeviceReport &dr = rep.devices[d];
            ++dr.requests;
            dr.slo.record(finish, rec.totalCycles(), rec.queueCycles(),
                          rec.cacheHit);
            dr.totalLatency.add(f64(rec.totalCycles()));
            FleetReport::TenantReport &tr = rep.tenants[r.p.req.tenant];
            ++tr.completed;
            tr.totalLatency.add(f64(rec.totalCycles()));
            ++rep.completed;
            if (cfg_.shedP99Cycles != 0)
                windowLat[finish / cfg_.sloWindowCycles].add(
                    f64(rec.totalCycles()));
            rep.makespan = std::max(rep.makespan, finish);
            if (obs)
                obs->onComplete(finish, rec.id, d, s, r.batchId,
                                rec.execCycles, rec.queueCycles(),
                                rec.totalCycles(), rec.preemptions);
            ds.running[s].reset();
            return;
        }

        // Preempt only when the higher-priority demand cannot be met by
        // the slots that are already free — otherwise a single urgent
        // arrival could evict every request whose boundary lands on
        // this instant.
        if (cfg_.preempt) {
            u32 freeCnt = 0;
            for (const std::unique_ptr<Running> &other : ds.running)
                if (!other)
                    ++freeCnt;
            u64 higher = 0;
            for (const Pending &q : ds.pend)
                if (q.req.priority > r.p.req.priority)
                    ++higher;
            if (higher > freeCnt) {
                if (cfg_.backend == "func") {
                    r.p.ckpt = std::make_unique<DeviceCheckpoint>(
                        captureCheckpoint(*ds.slots[s].fdev));
                } else {
                    rep.stats.merge(ds.slots[s].dev->stats());
                    r.p.ckpt = std::make_unique<DeviceCheckpoint>(
                        captureCheckpoint(*ds.slots[s].dev));
                }
                ++r.p.preemptCount;
                ++rep.preemptions;
                ++rep.devices[d].preemptions;
                rec.preemptions = r.p.preemptCount;
                if (obs)
                    obs->onPreempt(now, rec.id, d, s, r.p.nextKernel,
                                   r.p.doneExec,
                                   checkpointBytes(*r.p.ckpt), higher);
                ds.pend.push_back(std::move(r.p));
                ds.running[s].reset();
                return;
            }
        }

        // The next kernel starts right at this boundary.
        Cycle c = runKernel(d, s, r, r.boundaryAt);
        r.curKernelCycles = c;
        r.boundaryAt += c;
    };

    while (true) {
        // 1. Admit arrivals due now (routing, cache, shed decisions).
        while (next < sorted.size() && sorted[next].arrival <= now)
            admit(sorted[next++]);

        // 2. Kernel boundaries due now: complete, preempt, or continue.
        for (u32 d = 0; d < u32(devs_.size()); ++d)
            for (u32 s = 0; s < slotsPer; ++s)
                while (devs_[d].running[s] &&
                       devs_[d].running[s]->boundaryAt <= now)
                    processBoundary(d, s);

        // 3. Fill free slots everywhere (batching happens here).
        for (u32 d = 0; d < u32(devs_.size()); ++d)
            dispatchDevice(d);

        // 4. Advance virtual time to the next event.  A device holding
        //    a forming batch (step 3) wakes up when its launcher frees.
        Cycle tNext = next < sorted.size() ? sorted[next].arrival : kNever;
        for (const DeviceState &ds : devs_) {
            for (const std::unique_ptr<Running> &r : ds.running)
                if (r)
                    tNext = std::min(tNext, r->boundaryAt);
            if (cfg_.batching && !ds.pend.empty()) {
                bool hasFree = false;
                for (const std::unique_ptr<Running> &r : ds.running)
                    if (!r)
                        hasFree = true;
                if (hasFree) {
                    if (ds.launcherFreeAt > now)
                        tNext = std::min(tNext, ds.launcherFreeAt);
                    for (const Pending &p : ds.pend) {
                        if (!p.held)
                            continue;
                        Cycle dl = p.heldSince + cfg_.batchWindowCycles;
                        if (dl > now)
                            tNext = std::min(tNext, dl);
                    }
                }
            }
        }
        if (tNext == kNever)
            break;
        now = tNext;
    }

    for (const DeviceState &ds : devs_)
        if (!ds.pend.empty())
            fatal("fleet: ", ds.pend.size(),
                  " requests left queued at exit");
    if (rep.completed != rep.admitted ||
        rep.admitted + rep.shedTotal != rep.records.size())
        fatal("fleet: request accounting mismatch (admitted ",
              rep.admitted, ", completed ", rep.completed, ", shed ",
              rep.shedTotal, ", offered ", rep.records.size(), ")");

    std::sort(rep.records.begin(), rep.records.end(),
              [](const FleetRequestRecord &a, const FleetRequestRecord &b) {
                  return a.id < b.id;
              });
    for (const FleetRequestRecord &r : rep.records) {
        if (r.shed)
            continue;
        rep.queueLatency.add(f64(r.queueCycles()));
        rep.execLatency.add(
            f64(r.compileCycles + r.overheadCycles + r.execCycles));
        rep.totalLatency.add(f64(r.totalCycles()));
    }
    for (size_t d = 0; d < devs_.size(); ++d) {
        FleetReport::DeviceReport &dr = rep.devices[d];
        const DeviceState &ds = devs_[d];
        dr.cacheHits = ds.cache->hits();
        dr.cacheCompiles = ds.cache->compiles();
        dr.cacheEvictions = ds.cache->evictions();
        dr.cacheEntries = ds.cache->size();
        rep.slo.merge(dr.slo);
        rep.stats.merge(ds.cacheStats);
    }
    for (size_t t = 0; t < tenants_.size(); ++t)
        rep.tenants[t].servedCycles = served[t];

    rep.slo.exportTo(rep.stats);
    rep.queueLatency.exportTo(rep.stats, "fleet.latency.queue");
    rep.execLatency.exportTo(rep.stats, "fleet.latency.exec");
    rep.totalLatency.exportTo(rep.stats, "fleet.latency.total");
    rep.stats.set("fleet.devices", f64(devs_.size()));
    rep.stats.set("fleet.slotsPerDevice", f64(slotsPer));
    rep.stats.set("fleet.requests", f64(rep.records.size()));
    rep.stats.set("fleet.admitted", f64(rep.admitted));
    rep.stats.set("fleet.completed", f64(rep.completed));
    rep.stats.set("fleet.shed", f64(rep.shedTotal));
    rep.stats.set("fleet.batches", f64(rep.batches));
    rep.stats.set("fleet.batchedRequests", f64(rep.batchedRequests));
    rep.stats.set("fleet.preemptions", f64(rep.preemptions));
    rep.stats.set("fleet.makespanCycles", f64(rep.makespan));
    rep.stats.set("fleet.throughputRps", rep.throughputRps());
    return rep;
}

} // namespace ipim
