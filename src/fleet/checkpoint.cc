#include "fleet/checkpoint.h"

#include "func/func_device.h"
#include "sim/device.h"
#include "sim/process_group.h"
#include "sim/vault.h"

namespace ipim {

namespace {

// Accessor shims so one template serves both simulators: the cycle
// Device reaches scratchpads through the vault/process-group tree, the
// functional device exposes them directly.
Scratchpad &
vsmOf(Device &d, u32 chip, u32 v)
{
    return d.vault(chip, v).vsmMem();
}

Scratchpad &
pgsmOf(Device &d, u32 chip, u32 v, u32 g)
{
    return d.vault(chip, v).pg(g).pgsm();
}

Scratchpad &
vsmOf(FuncDevice &d, u32 chip, u32 v)
{
    return d.vsm(chip, v);
}

Scratchpad &
pgsmOf(FuncDevice &d, u32 chip, u32 v, u32 g)
{
    return d.pgsm(chip, v, g);
}

std::vector<u8>
readAll(const Scratchpad &sp)
{
    std::vector<u8> buf(sp.bytes());
    if (!buf.empty())
        sp.readBytes(0, buf.data(), u32(buf.size()));
    return buf;
}

template <typename Dev>
DeviceCheckpoint
captureImpl(Dev &dev)
{
    const HardwareConfig &cfg = dev.cfg();
    DeviceCheckpoint cp;
    cp.banks.reserve(size_t(cfg.cubes) * cfg.vaultsPerCube *
                     cfg.pgsPerVault * cfg.pesPerPg);
    for (u32 chip = 0; chip < cfg.cubes; ++chip) {
        for (u32 v = 0; v < cfg.vaultsPerCube; ++v) {
            cp.vsm.push_back(readAll(vsmOf(dev, chip, v)));
            for (u32 g = 0; g < cfg.pgsPerVault; ++g) {
                cp.pgsm.push_back(readAll(pgsmOf(dev, chip, v, g)));
                for (u32 p = 0; p < cfg.pesPerPg; ++p)
                    cp.banks.push_back(
                        dev.bank(chip, v, g, p).snapshotRows());
            }
        }
    }
    return cp;
}

template <typename Dev>
void
restoreImpl(Dev &dev, const DeviceCheckpoint &cp)
{
    const HardwareConfig &cfg = dev.cfg();
    size_t bi = 0;
    size_t vi = 0;
    size_t gi = 0;
    for (u32 chip = 0; chip < cfg.cubes; ++chip) {
        for (u32 v = 0; v < cfg.vaultsPerCube; ++v) {
            const std::vector<u8> &vbuf = cp.vsm.at(vi++);
            if (!vbuf.empty())
                vsmOf(dev, chip, v)
                    .writeBytes(0, vbuf.data(), u32(vbuf.size()));
            for (u32 g = 0; g < cfg.pgsPerVault; ++g) {
                const std::vector<u8> &gbuf = cp.pgsm.at(gi++);
                if (!gbuf.empty())
                    pgsmOf(dev, chip, v, g)
                        .writeBytes(0, gbuf.data(), u32(gbuf.size()));
                for (u32 p = 0; p < cfg.pesPerPg; ++p)
                    dev.bank(chip, v, g, p)
                        .restoreRows(cp.banks.at(bi++));
            }
        }
    }
}

} // namespace

DeviceCheckpoint
captureCheckpoint(Device &dev)
{
    return captureImpl(dev);
}

DeviceCheckpoint
captureCheckpoint(FuncDevice &dev)
{
    return captureImpl(dev);
}

void
restoreCheckpoint(Device &dev, const DeviceCheckpoint &cp)
{
    restoreImpl(dev, cp);
}

void
restoreCheckpoint(FuncDevice &dev, const DeviceCheckpoint &cp)
{
    restoreImpl(dev, cp);
}

u64
checkpointBytes(const DeviceCheckpoint &cp)
{
    u64 n = 0;
    for (const auto &bank : cp.banks)
        for (const auto &row : bank)
            n += row.second.size();
    for (const auto &img : cp.vsm)
        n += img.size();
    for (const auto &img : cp.pgsm)
        n += img.size();
    return n;
}

} // namespace ipim
