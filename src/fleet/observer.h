/**
 * @file
 * Fleet observability (DESIGN.md Sec. 19): distributed tracing,
 * decision event log, and per-device metrics sampling for FleetServer.
 *
 * One FleetObserver hangs off FleetConfig::observer and collects three
 * feeds, each individually switchable and all byte-deterministic for a
 * fixed (config, request trace):
 *
 *  - Tracing: a fleet-level Tracer (request lifetime spans, routing and
 *    shed instants) plus one Tracer per device (queue/compile/execute
 *    async spans, preempt/resume instants, batch-forming spans, and —
 *    on the cycle backend — the full device-internal component tracks,
 *    because each slot Device is constructed against its device's
 *    tracer with a "slot<i>/" prefix).  exportChromeJson() merges them
 *    into one multi-process Chrome trace: pid 0 is the fleet, pid 1+d
 *    is device d, and same-named slot tracks on different devices stay
 *    distinct because every pid names tracks from its own table.
 *
 *  - Decision events: one "ipim-fleet-events-v1" JSONL record per
 *    routing choice (with the candidate load snapshot), shed decision,
 *    batch formation, dispatch, preemption, and completion —
 *    everything `ipim explain --req ID` needs to replay a request.
 *
 *  - Metrics: one MetricsSampler per (device, slot) on the cycle
 *    backend, in retain-on-reset mode with per-occupancy time offsets,
 *    so the sampled series live on the fleet virtual timeline and
 *    survive the per-occupancy Device::reset().  metricsJson() nests
 *    the per-slot series; prometheusText() adds labelled per-device
 *    and fleet-rollup families.
 *
 * With a null observer (the default) the fleet hot path pays only a
 * pointer test per decision site — bench/micro_fleet_obs pins < 2%.
 */
#ifndef IPIM_FLEET_OBSERVER_H_
#define IPIM_FLEET_OBSERVER_H_

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/json.h"
#include "fleet/router.h"
#include "metrics/metrics.h"
#include "service/load_gen.h"
#include "trace/trace.h"

namespace ipim {

struct FleetObserverConfig
{
    bool tracing = false;  ///< record spans (fleet + per-device)
    bool events = false;   ///< record the decision event log
    bool sampling = false; ///< attach per-slot MetricsSamplers (cycle)
    size_t traceCapacity = 1u << 20; ///< per-tracer ring, in events
    Cycle sampleInterval = 1024;     ///< sampler cadence, in cycles
    u32 sampleCapacity = 4096;       ///< sampler ring, in rows
};

class FleetObserver
{
  public:
    explicit FleetObserver(FleetObserverConfig cfg = FleetObserverConfig());
    ~FleetObserver();

    /** @name Wiring (called by FleetServer) */
    ///@{
    /** Build the per-device tracers/samplers; FleetServer's ctor calls
     *  this once with its resolved geometry. */
    void attach(u32 devices, u32 slotsPerDevice,
                const std::string &backend, const std::string &router,
                const std::string &policy);
    bool attached() const { return devices_ > 0; }

    /** Drop all recorded state for a fresh FleetServer::run(). */
    void beginRun();

    /** Device d's tracer (null unless tracing is on) — also handed to
     *  that device's slot Devices at construction. */
    Tracer *deviceTracer(u32 d);
    /** The fleet-level tracer (null unless tracing is on). */
    Tracer *fleetTracer();
    /** Slot (d, s)'s sampler (null unless sampling, cycle backend). */
    MetricsSampler *slotSampler(u32 d, u32 s);
    ///@}

    /** @name Decision hooks (FleetServer::run decision sites) */
    ///@{
    void onOffered(const ServeRequest &req, const std::string &tenant);
    void onShed(Cycle now, const ServeRequest &req,
                const std::string &tenant, const char *reason,
                u32 shedLevel, f64 windowP99, bool routed, u32 device,
                Cycle waitEst, Cycle ownEst, Cycle target);
    void onRoute(Cycle now, const ServeRequest &req,
                 const std::string &tenant, const std::string &policy,
                 u32 device, bool cacheHit,
                 const std::vector<DeviceLoadView> &views);
    void onBatch(Cycle now, u32 device, i64 batchId,
                 const std::string &pipeline,
                 const std::vector<u64> &members, Cycle windowCycles,
                 Cycle execStart, const char *fill);
    void onDispatch(Cycle now, u64 req, const std::string &pipeline,
                    u32 device, u32 slot, u32 kernel, bool resume,
                    i64 batchId, Cycle launchStart, Cycle execStart,
                    Cycle compileCycles, Cycle heldCycles);
    void onPreempt(Cycle now, u64 req, u32 device, u32 slot,
                   u32 nextKernel, Cycle doneExec, u64 ckptBytes,
                   u64 higherPending);
    void onComplete(Cycle now, u64 req, u32 device, u32 slot,
                    i64 batchId, Cycle execCycles, Cycle queueCycles,
                    Cycle totalCycles, u32 preemptions);
    ///@}

    /** @name Exports (byte-deterministic) */
    ///@{
    /** Merged multi-process Chrome trace (pid 0 fleet, pid 1+d dev d). */
    void exportChromeJson(std::ostream &os) const;
    /** The decision event log (JSONL, header line first). */
    void writeEvents(std::ostream &os) const;
    u64 eventCount() const { return eventCount_; }
    /** Per-slot sampled time series as one JSON object value. */
    void metricsJson(JsonWriter &w) const;
    /** Labelled per-device + fleet-rollup sampling families. */
    std::string prometheusText() const;
    ///@}

    const FleetObserverConfig &config() const { return cfg_; }

  private:
    void appendEvent(JsonWriter &j);

    FleetObserverConfig cfg_;
    u32 devices_ = 0;
    u32 slotsPer_ = 0;
    std::string backend_;
    std::string router_;
    std::string policy_;

    std::unique_ptr<Tracer> fleet_;
    std::vector<std::unique_ptr<Tracer>> devs_;
    /// Samplers indexed [d * slotsPer_ + s]; empty unless sampling on
    /// the cycle backend.
    std::vector<std::unique_ptr<MetricsSampler>> samplers_;

    u32 fleetReqTrack_ = 0;
    u32 fleetRouterTrack_ = 0;
    std::vector<u32> devReqTrack_;
    std::vector<u32> devBatchTrack_;

    std::string events_;
    u64 eventCount_ = 0;
};

} // namespace ipim

#endif // IPIM_FLEET_OBSERVER_H_
