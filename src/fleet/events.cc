#include "fleet/events.h"

#include <cstdlib>
#include <istream>
#include <sstream>

#include "common/logging.h"

namespace ipim {

namespace {

/** Skip spaces (the writer emits none, but be tolerant). */
void
skipWs(const std::string &s, size_t &i)
{
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t'))
        ++i;
}

/** Parse a JSON string at s[i] == '"'; returns false on malformed. */
bool
parseString(const std::string &s, size_t &i, std::string &out)
{
    if (i >= s.size() || s[i] != '"')
        return false;
    ++i;
    out.clear();
    while (i < s.size() && s[i] != '"') {
        if (s[i] == '\\' && i + 1 < s.size()) {
            char c = s[i + 1];
            if (c == 'n')
                out += '\n';
            else if (c == 't')
                out += '\t';
            else
                out += c; // \" \\ \/ — keep the escaped char
            i += 2;
        } else {
            out += s[i++];
        }
    }
    if (i >= s.size())
        return false;
    ++i; // closing quote
    return true;
}

/** Capture a bracketed value ([...] or {...}) as raw text. */
bool
captureNested(const std::string &s, size_t &i, std::string &out)
{
    char open = s[i];
    char close = open == '[' ? ']' : '}';
    int depth = 0;
    size_t start = i;
    bool inStr = false;
    for (; i < s.size(); ++i) {
        char c = s[i];
        if (inStr) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                inStr = false;
            continue;
        }
        if (c == '"')
            inStr = true;
        else if (c == open)
            ++depth;
        else if (c == close && --depth == 0) {
            ++i;
            out = s.substr(start, i - start);
            return true;
        }
    }
    return false;
}

/** Capture a bare token (number, true/false/null) as raw text. */
bool
captureToken(const std::string &s, size_t &i, std::string &out)
{
    size_t start = i;
    while (i < s.size() && s[i] != ',' && s[i] != '}' && s[i] != ' ')
        ++i;
    out = s.substr(start, i - start);
    return !out.empty();
}

} // namespace

std::string
FleetEvent::str(const std::string &k) const
{
    auto it = fields.find(k);
    return it == fields.end() ? std::string() : it->second;
}

u64
FleetEvent::num(const std::string &k) const
{
    auto it = fields.find(k);
    if (it == fields.end())
        return 0;
    return std::strtoull(it->second.c_str(), nullptr, 10);
}

std::vector<u64>
FleetEvent::members() const
{
    std::vector<u64> ids;
    std::string raw = str("members");
    size_t i = 0;
    while (i < raw.size()) {
        if (raw[i] >= '0' && raw[i] <= '9') {
            char *end = nullptr;
            ids.push_back(std::strtoull(raw.c_str() + i, &end, 10));
            i = size_t(end - raw.c_str());
        } else {
            ++i;
        }
    }
    return ids;
}

bool
parseFleetEvent(const std::string &line, FleetEvent &out)
{
    out = FleetEvent();
    size_t i = 0;
    skipWs(line, i);
    if (i >= line.size() || line[i] != '{')
        return false;
    ++i;
    while (true) {
        skipWs(line, i);
        if (i < line.size() && line[i] == '}')
            break;
        std::string key;
        if (!parseString(line, i, key))
            return false;
        skipWs(line, i);
        if (i >= line.size() || line[i] != ':')
            return false;
        ++i;
        skipWs(line, i);
        if (i >= line.size())
            return false;
        std::string val;
        char c = line[i];
        bool ok = c == '"' ? parseString(line, i, val)
                  : (c == '[' || c == '{')
                      ? captureNested(line, i, val)
                      : captureToken(line, i, val);
        if (!ok)
            return false;
        out.fields[key] = val;
        skipWs(line, i);
        if (i < line.size() && line[i] == ',') {
            ++i;
            continue;
        }
        if (i < line.size() && line[i] == '}')
            break;
        return false;
    }
    out.type = out.str("type");
    out.ts = out.num("ts");
    out.hasReq = out.has("req");
    out.req = out.num("req");
    return !out.type.empty();
}

std::vector<FleetEvent>
loadFleetEvents(std::istream &is)
{
    std::vector<FleetEvent> evs;
    std::string line;
    size_t n = 0;
    while (std::getline(is, line)) {
        ++n;
        if (line.empty())
            continue;
        FleetEvent ev;
        if (!parseFleetEvent(line, ev))
            fatal("events log: malformed record on line ", n);
        evs.push_back(std::move(ev));
    }
    if (evs.empty())
        fatal("events log: empty");
    if (evs.front().type != "log" ||
        evs.front().str("schema") != kFleetEventsSchema)
        fatal("events log: missing '", kFleetEventsSchema,
              "' header line");
    return evs;
}

std::string
explainRequest(const std::vector<FleetEvent> &events, u64 id)
{
    std::ostringstream out;
    bool seen = false;
    for (const FleetEvent &ev : events) {
        bool mine = ev.hasReq && ev.req == id;
        if (ev.type == "batch") {
            for (u64 m : ev.members())
                if (m == id)
                    mine = true;
        }
        if (!mine)
            continue;
        if (!seen) {
            out << "request " << id << ":\n";
            seen = true;
        }
        out << "  [" << ev.ts << "] ";
        if (ev.type == "route") {
            out << "admitted: tenant " << ev.str("tenant") << " priority "
                << ev.num("priority") << " pipeline "
                << ev.str("pipeline") << " (arrived " << ev.num("arrival")
                << "); routed to device " << ev.num("device") << " by "
                << ev.str("policy") << " (cache "
                << (ev.str("cache_hit") == "true" ? "hit" : "miss")
                << ")";
        } else if (ev.type == "shed") {
            out << "shed at admission: reason " << ev.str("reason")
                << ", shed level " << ev.num("shed_level") << ", tenant "
                << ev.str("tenant");
            if (ev.has("device"))
                out << " (device " << ev.num("device") << ", wait est "
                    << ev.num("wait_est_cycles") << " + own est "
                    << ev.num("own_est_cycles") << " cycles vs target "
                    << ev.num("target_cycles") << ")";
        } else if (ev.type == "batch") {
            out << "joined batch " << ev.num("batch") << " on device "
                << ev.num("device") << ": members " << ev.str("members")
                << ", window " << ev.num("window_cycles")
                << " cycles, launched because " << ev.str("fill");
        } else if (ev.type == "dispatch") {
            out << (ev.str("resume") == "true" ? "resumed" : "dispatched")
                << " on device " << ev.num("device") << " slot "
                << ev.num("slot") << ": kernel " << ev.num("kernel")
                << ", launch at " << ev.num("launch_start")
                << ", exec at " << ev.num("exec_start");
            if (ev.num("compile_cycles") > 0)
                out << ", compile " << ev.num("compile_cycles")
                    << " cycles";
            if (ev.num("held_cycles") > 0)
                out << ", held " << ev.num("held_cycles") << " cycles";
        } else if (ev.type == "preempt") {
            out << "preempted on device " << ev.num("device") << " slot "
                << ev.num("slot") << " before kernel "
                << ev.num("kernel") << ": " << ev.num("done_exec_cycles")
                << " exec cycles done, checkpoint "
                << ev.num("ckpt_bytes") << " bytes, "
                << ev.num("higher_pending")
                << " higher-priority pending";
        } else if (ev.type == "complete") {
            out << "completed on device " << ev.num("device") << " slot "
                << ev.num("slot") << ": exec "
                << ev.num("exec_cycles") << ", queue "
                << ev.num("queue_cycles") << ", total "
                << ev.num("total_cycles") << " cycles, "
                << ev.num("preemptions") << " preemption(s)";
        } else {
            out << ev.type;
        }
        out << "\n";
    }
    if (!seen)
        fatal("events log has no record of request ", id);
    return out.str();
}

} // namespace ipim
