/**
 * @file
 * Fleet decision event log (DESIGN.md Sec. 19).
 *
 * The fleet records WHY it did what it did: one JSONL record per
 * routing choice, shed decision, batch formation, dispatch, preemption,
 * and completion, in decision order on the virtual timeline (schema
 * "ipim-fleet-events-v1", one JSON object per line, first line a
 * header).  FleetObserver writes the log; this module owns the line
 * parser and the `ipim explain --req ID` reconstruction, which replays
 * a request's full story — admission, routing, batching or shedding,
 * preemption, execution — from the log alone.
 *
 * The parser is deliberately minimal: it understands exactly the flat
 * objects this repo emits (string/number/bool scalars; one nesting
 * level of arrays/objects captured as raw text), keeping the CLI free
 * of a JSON dependency.
 */
#ifndef IPIM_FLEET_EVENTS_H_
#define IPIM_FLEET_EVENTS_H_

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"

namespace ipim {

/** Schema tag carried by the header line of every event log. */
inline const char *const kFleetEventsSchema = "ipim-fleet-events-v1";

/**
 * One parsed event-log record.  Scalar fields are kept as raw text in
 * @p fields (strings unquoted/unescaped, numbers and bools verbatim);
 * nested arrays/objects are captured as raw JSON text.
 */
struct FleetEvent
{
    std::string type; ///< "log" | "route" | "shed" | "batch" |
                      ///< "dispatch" | "preempt" | "complete"
    Cycle ts = 0;     ///< decision time on the fleet virtual timeline
    bool hasReq = false;
    u64 req = 0;      ///< request id (absent on "log"/"batch")

    std::map<std::string, std::string> fields;

    bool has(const std::string &k) const { return fields.count(k) != 0; }
    /** Raw text of field @p k ("" when absent). */
    std::string str(const std::string &k) const;
    /** Field @p k as an unsigned number (0 when absent/non-numeric). */
    u64 num(const std::string &k) const;
    /** Member request ids of a "batch" record (parsed from members). */
    std::vector<u64> members() const;
};

/** Parse one JSONL line; returns false on malformed input. */
bool parseFleetEvent(const std::string &line, FleetEvent &out);

/**
 * Load a whole event log, oldest first.  The first line must be the
 * "log" header carrying kFleetEventsSchema; malformed lines or a
 * wrong schema are fatal (the log is machine-written).
 */
std::vector<FleetEvent> loadFleetEvents(std::istream &is);

/**
 * Reconstruct the story of request @p id from @p events as
 * human-readable text (one step per line): routing -> (batch | shed)
 * -> dispatch/preemption/resume -> completion.  Fatal when the log
 * contains no record of @p id.
 */
std::string explainRequest(const std::vector<FleetEvent> &events, u64 id);

} // namespace ipim

#endif // IPIM_FLEET_EVENTS_H_
