#include "service/server.h"

#include <algorithm>
#include <limits>
#include <sstream>

#include <cmath>

#include "apps/benchmarks.h"
#include "common/logging.h"
#include "func/func_runtime.h"
#include "runtime/runtime.h"

namespace ipim {

namespace {

constexpr Cycle kNever = std::numeric_limits<Cycle>::max();

std::string
fmtMs(f64 cycles)
{
    std::ostringstream s;
    s.precision(3);
    s << std::fixed << cycles * 1e-6 << " ms";
    return s.str();
}

} // namespace

f64
ServeReport::throughputRps() const
{
    if (makespan == 0)
        return 0.0;
    return f64(records.size()) / (f64(makespan) * 1e-9);
}

std::string
ServeReport::summary() const
{
    std::ostringstream out;
    out << "served " << records.size() << " requests in "
        << fmtMs(f64(makespan)) << " of virtual time ("
        << u64(throughputRps()) << " req/s)\n";
    auto line = [&](const char *what, const LatencyHistogram &h) {
        out << "  " << what << " latency: p50 " << fmtMs(h.percentile(50))
            << " | p95 " << fmtMs(h.percentile(95)) << " | p99 "
            << fmtMs(h.percentile(99)) << " | mean " << fmtMs(h.mean())
            << "\n";
    };
    line("total", totalLatency);
    line("queue", queueLatency);
    line("exec ", execLatency);
    out << "  program cache: " << u64(stats.get("serve.cache.miss"))
        << " compiles, " << u64(stats.get("serve.cache.hit")) << " hits\n";
    if (estimatorSamples > 0) {
        out.precision(1);
        out << std::fixed << "  estimator error vs measured: mean "
            << estimatorMeanAbsRelErr * 100 << "% | max "
            << estimatorMaxAbsRelErr * 100 << "% over "
            << estimatorSamples << " requests\n";
    }
    return out.str();
}

Server::Server(const ServerConfig &cfg) : cfg_(cfg)
{
    cfg_.hw.validate();
    u32 per = cfg_.share == ShareMode::kWholeDevice ? cfg_.hw.cubes
                                                    : cfg_.cubesPerRequest;
    if (per == 0 || per > cfg_.hw.cubes)
        fatal("cubesPerRequest ", per, " invalid for ", cfg_.hw.cubes,
              " cubes");
    if (cfg_.hw.cubes % per != 0)
        fatal("cubesPerRequest ", per, " must divide cube count ",
              cfg_.hw.cubes);
    cfg_.cubesPerRequest = per;

    if (cfg_.backend != "cycle" && cfg_.backend != "func")
        fatal("unknown backend '", cfg_.backend, "' (cycle | func)");

    HardwareConfig slotCfg = slotConfig();
    for (u32 first = 0; first < cfg_.hw.cubes; first += per) {
        Slot s;
        s.firstCube = first;
        s.numCubes = per;
        if (cfg_.backend == "func") {
            s.fdev = std::make_unique<FuncDevice>(slotCfg);
        } else {
            s.dev = std::make_unique<Device>(
                slotCfg, cfg_.tracer,
                "slot" + std::to_string(slots_.size()) + "/");
            s.dev->setFastForward(cfg_.fastForward);
            s.dev->setThreads(cfg_.threads);
        }
        slots_.push_back(std::move(s));
    }
}

Server::~Server() = default;

HardwareConfig
Server::slotConfig() const
{
    HardwareConfig c = cfg_.hw;
    c.cubes = cfg_.share == ShareMode::kWholeDevice ? cfg_.hw.cubes
                                                    : cfg_.cubesPerRequest;
    return c;
}

std::string
ServeReport::prometheusText() const
{
    return slo.prometheusText(makespan);
}

ServeReport
Server::run(const std::vector<ServeRequest> &requests)
{
    ServeReport rep;
    rep.slo = SloTracker(cfg_.sloWindowCycles);

    // The cache lives for one serving run so its hit/miss counters land
    // in this report; each (pipeline, geometry, options) key compiles
    // exactly once across all 'requests'.
    ProgramCache cache(&rep.stats);
    std::unique_ptr<Scheduler> sched = makeScheduler(cfg_.policy);
    HardwareConfig slotCfg = slotConfig();

    // Request-lifecycle spans go on one shared async track; device-level
    // events are mapped onto the virtual timeline via setTimeOffset()
    // around each launch (the device clock restarts at 0 per launch).
    Tracer *tr = cfg_.tracer;
    u32 reqTrack = 0;
    if (Tracer::active(tr))
        reqTrack = tr->track("requests");

    std::vector<ServeRequest> sorted = requests;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const ServeRequest &a, const ServeRequest &b) {
                         return a.arrival != b.arrival
                                    ? a.arrival < b.arrival
                                    : a.id < b.id;
                     });

    struct Active
    {
        size_t slot;
        Cycle finishAt;
        size_t record;
    };

    std::vector<Queued> pending;
    std::vector<Active> active;
    size_t next = 0;
    Cycle now = 0;

    auto admit = [&](const ServeRequest &req) {
        Queued q;
        q.req = req;
        u64 missesBefore = cache.compiles();
        int w = cfg_.width;
        int h = cfg_.height;
        q.program =
            &cache.get(req.pipeline, w, h, slotCfg, cfg_.copts, [&]() {
                return makeBenchmark(req.pipeline, w, h).def;
            });
        q.cacheHit = cache.compiles() == missesBefore;
        if (Tracer::active(tr)) {
            tr->asyncBegin(reqTrack, TraceEv::kRequest, req.arrival,
                           req.id, tr->label(req.pipeline));
            tr->asyncBegin(reqTrack, TraceEv::kReqQueued, req.arrival,
                           req.id);
            tr->instantArg(reqTrack,
                           q.cacheHit ? TraceEv::kCacheHit
                                      : TraceEv::kCacheMiss,
                           req.arrival, req.id);
        }
        pending.push_back(std::move(q));
    };

    auto dispatch = [&](size_t slotIdx) {
        std::vector<PendingRequest> view;
        view.reserve(pending.size());
        for (const Queued &q : pending)
            view.push_back({q.req.id, q.req.arrival,
                            q.program->estimate() +
                                (q.cacheHit ? 0
                                            : cfg_.compileCyclesPerInst *
                                                  q.program->compiled
                                                      .totalInstructions())});
        size_t picked = sched->pick(view);
        Queued q = std::move(pending[picked]);
        pending.erase(pending.begin() + ptrdiff_t(picked));

        Slot &slot = slots_[slotIdx];
        slot.busy = true;

        Cycle compileCycles =
            q.cacheHit ? 0
                       : cfg_.compileCyclesPerInst *
                             q.program->compiled.totalInstructions();
        if (Tracer::active(tr)) {
            tr->asyncEnd(reqTrack, TraceEv::kReqQueued, now, q.req.id);
            if (compileCycles != 0) {
                tr->asyncBegin(reqTrack, TraceEv::kReqCompile, now,
                               q.req.id);
                tr->asyncEnd(reqTrack, TraceEv::kReqCompile,
                             now + compileCycles, q.req.id);
            }
            tr->asyncBegin(reqTrack, TraceEv::kReqExecute,
                           now + compileCycles, q.req.id);
            // Device-local cycle 0 corresponds to this virtual instant
            // (cycle backend only; the functional backend emits no
            // device events).
            if (cfg_.backend == "cycle")
                tr->setTimeOffset(now + compileCycles);
        }

        BenchmarkApp app = makeBenchmark(q.req.pipeline, cfg_.width,
                                         cfg_.height, q.req.inputSeed);
        Cycle execCycles = 0;
        if (cfg_.backend == "func") {
            // Functional execution: real pixels, estimated latency.
            // The estimate is the static cost model's prediction (the
            // same number CachedProgram::estimate() schedules by), so
            // scheduling, SLO windows, and latency percentiles stay
            // internally consistent; no measurement exists, so the
            // cache entry stays uncalibrated and no device stats merge.
            funcLaunchOnDevice(*slot.fdev, q.program->compiled,
                               app.inputs, &estimator_);
            execCycles = q.program->estimate();
        } else {
            // Real cycle-level execution on the partition's reused
            // device.
            LaunchResult res = launchOnDevice(
                *slot.dev, q.program->compiled, app.inputs);
            if (Tracer::active(tr))
                tr->setTimeOffset(0);
            execCycles = res.cycles;
            // Estimator-error telemetry: how far the static cost model
            // was from this request's measured cycles (DESIGN.md
            // Sec. 16 calibration data).
            if (q.program->staticCycles > 0 && res.cycles > 0) {
                f64 err = std::abs(f64(q.program->staticCycles) -
                                   f64(res.cycles)) /
                          f64(res.cycles);
                ++rep.estimatorSamples;
                rep.estimatorMeanAbsRelErr += err; // sum; mean at end
                rep.estimatorMaxAbsRelErr =
                    std::max(rep.estimatorMaxAbsRelErr, err);
            }
            q.program->recordMeasurement(res.cycles);
            rep.stats.merge(slot.dev->stats());
            rep.ffwdSkippedCycles += slot.dev->ffwdSkippedCycles();
            rep.ffwdJumps += slot.dev->ffwdJumps();
        }

        RequestRecord rec;
        rec.id = q.req.id;
        rec.pipeline = q.req.pipeline;
        rec.arrival = q.req.arrival;
        rec.start = now;
        rec.execCycles = execCycles;
        rec.compileCycles = compileCycles;
        rec.finish = now + rec.compileCycles + rec.execCycles;
        rec.firstCube = slot.firstCube;
        rec.numCubes = slot.numCubes;
        rec.cacheHit = q.cacheHit;

        if (Tracer::active(tr)) {
            tr->asyncEnd(reqTrack, TraceEv::kReqExecute, rec.finish,
                         q.req.id);
            tr->asyncEnd(reqTrack, TraceEv::kRequest, rec.finish,
                         q.req.id);
        }

        active.push_back({slotIdx, rec.finish, rep.records.size()});
        rep.records.push_back(std::move(rec));
    };

    while (true) {
        // 1. Admit arrivals due now.
        while (next < sorted.size() && sorted[next].arrival <= now)
            admit(sorted[next++]);

        // 2. Retire completions due now.
        for (size_t i = 0; i < active.size();) {
            if (active[i].finishAt <= now) {
                slots_[active[i].slot].busy = false;
                rep.makespan = std::max(rep.makespan, active[i].finishAt);
                active.erase(active.begin() + ptrdiff_t(i));
            } else {
                ++i;
            }
        }

        // 3. Dispatch onto every free slot while work is pending.
        for (size_t s = 0; s < slots_.size() && !pending.empty(); ++s)
            if (!slots_[s].busy)
                dispatch(s);

        // 4. Advance virtual time to the next event.
        Cycle tNext = next < sorted.size() ? sorted[next].arrival : kNever;
        for (const Active &a : active)
            tNext = std::min(tNext, a.finishAt);
        if (tNext == kNever)
            break;
        now = tNext;
    }

    for (const RequestRecord &r : rep.records) {
        rep.queueLatency.add(f64(r.queueCycles()));
        rep.execLatency.add(f64(r.compileCycles + r.execCycles));
        rep.totalLatency.add(f64(r.totalCycles()));
        rep.slo.record(r.finish, r.totalCycles(), r.queueCycles(),
                       r.cacheHit);
    }
    rep.slo.exportTo(rep.stats);
    rep.queueLatency.exportTo(rep.stats, "serve.latency.queue");
    rep.execLatency.exportTo(rep.stats, "serve.latency.exec");
    rep.totalLatency.exportTo(rep.stats, "serve.latency.total");
    rep.stats.set("serve.requests", f64(rep.records.size()));
    rep.stats.set("serve.makespanCycles", f64(rep.makespan));
    rep.stats.set("serve.throughputRps", rep.throughputRps());
    rep.stats.set("serve.slots", f64(slots_.size()));
    if (rep.estimatorSamples > 0)
        rep.estimatorMeanAbsRelErr /= f64(rep.estimatorSamples);
    rep.stats.set("serve.estimator.samples", f64(rep.estimatorSamples));
    rep.stats.set("serve.estimator.meanAbsRelErr",
                  rep.estimatorMeanAbsRelErr);
    rep.stats.set("serve.estimator.maxAbsRelErr",
                  rep.estimatorMaxAbsRelErr);
    return rep;
}

} // namespace ipim
