#include "service/scheduler.h"

#include "common/logging.h"

namespace ipim {

size_t
FifoScheduler::pick(const std::vector<PendingRequest> &queue) const
{
    if (queue.empty())
        panic("scheduler invoked on an empty queue");
    size_t best = 0;
    for (size_t i = 1; i < queue.size(); ++i) {
        if (queue[i].arrival < queue[best].arrival ||
            (queue[i].arrival == queue[best].arrival &&
             queue[i].id < queue[best].id)) {
            best = i;
        }
    }
    return best;
}

size_t
SjfScheduler::pick(const std::vector<PendingRequest> &queue) const
{
    if (queue.empty())
        panic("scheduler invoked on an empty queue");
    size_t best = 0;
    for (size_t i = 1; i < queue.size(); ++i) {
        const PendingRequest &a = queue[i];
        const PendingRequest &b = queue[best];
        if (a.estimate != b.estimate) {
            if (a.estimate < b.estimate)
                best = i;
        } else if (a.arrival != b.arrival) {
            if (a.arrival < b.arrival)
                best = i;
        } else if (a.id < b.id) {
            best = i;
        }
    }
    return best;
}

std::unique_ptr<Scheduler>
makeScheduler(const std::string &policy)
{
    if (policy == "fifo")
        return std::make_unique<FifoScheduler>();
    if (policy == "sjf")
        return std::make_unique<SjfScheduler>();
    fatal("unknown scheduler policy '", policy, "' (want fifo|sjf)");
}

} // namespace ipim
