#include "service/program_cache.h"

#include <sstream>

#include "analysis/cost.h"

namespace ipim {

namespace {

/**
 * Nominal cycles-per-instruction for uncalibrated estimates.  Measured
 * CPIs on the bench geometries range from ~4 (compute-dense kernels) to
 * ~20 (short programs dominated by fixed refresh/drain overhead); the
 * proxy only has to order pipelines of very different sizes correctly.
 */
constexpr Cycle kUncalibratedCpi = 4;

/** Geometry/policy fields that affect generated code or its timing. */
std::string
geometryKey(const HardwareConfig &cfg)
{
    std::ostringstream k;
    k << 'c' << cfg.cubes << 'v' << cfg.vaultsPerCube << 'g'
      << cfg.pgsPerVault << 'e' << cfg.pesPerPg << ";bank="
      << cfg.bankBytes << ";row=" << cfg.dramRowBytes << ";pgsm="
      << cfg.pgsmBytes << ";vsm=" << cfg.vsmBytes << ";drf="
      << cfg.dataRfBytes << ";arf=" << cfg.addrRfBytes << ";crf="
      << cfg.ctrlRfEntries << ";mesh=" << cfg.meshCols << ";ponb="
      << (cfg.processOnBaseDie ? 1 : 0) << ";page="
      << (cfg.pagePolicy == PagePolicy::kOpenPage ? "open" : "close")
      << ";sched="
      << (cfg.schedPolicy == SchedPolicy::kFrFcfs ? "frfcfs" : "fcfs");
    return k.str();
}

} // namespace

Cycle
CachedProgram::estimate() const
{
    if (calibrated)
        return measuredCycles;
    if (staticCycles > 0)
        return staticCycles;
    u64 vaults = u64(compiled.cfg.cubes) * compiled.cfg.vaultsPerCube;
    u64 perVault = compiled.totalInstructions() / std::max<u64>(1, vaults);
    return std::max<Cycle>(1, perVault * kUncalibratedCpi);
}

void
CachedProgram::recordMeasurement(Cycle cycles)
{
    if (!calibrated) {
        measuredCycles = cycles;
        calibrated = true;
    }
}

std::string
ProgramCache::makeKey(const std::string &pipeline, int width, int height,
                      const HardwareConfig &cfg,
                      const CompilerOptions &opts)
{
    std::ostringstream k;
    k << pipeline << '|' << width << 'x' << height << '|'
      << geometryKey(cfg) << '|' << opts.cacheKey();
    return k.str();
}

std::shared_ptr<CachedProgram>
ProgramCache::lookup(const std::string &pipeline, int width, int height,
                     const HardwareConfig &cfg,
                     const CompilerOptions &opts,
                     const DefFactory &makeDef)
{
    std::string key = makeKey(pipeline, width, height, cfg, opts);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
        ++hits_;
        ++it->second.prog->hits;
        it->second.lastUse = ++clock_;
        if (stats_)
            stats_->inc("serve.cache.hit");
        return it->second.prog;
    }
    auto entry = std::make_shared<CachedProgram>();
    entry->compiled = compilePipeline(makeDef(), cfg, opts);
    // Static cost-model prediction for SJF ordering before the first
    // measurement; kernels run back-to-back, so the pipeline estimate
    // is the sum of the per-kernel estimates.
    f64 predicted = 0;
    for (const CompiledKernel &k : entry->compiled.kernels)
        predicted += estimateKernelCycles(cfg, k.perVault);
    entry->staticCycles = Cycle(predicted);
    ++compiles_;
    if (stats_) {
        stats_->inc("serve.cache.miss");
        stats_->inc("serve.cache.compiledInstructions",
                    f64(entry->compiled.totalInstructions()));
    }
    entries_.emplace(key, Entry{entry, ++clock_});
    enforceCapacity();
    return entry;
}

CachedProgram &
ProgramCache::get(const std::string &pipeline, int width, int height,
                  const HardwareConfig &cfg, const CompilerOptions &opts,
                  const DefFactory &makeDef)
{
    return *lookup(pipeline, width, height, cfg, opts, makeDef);
}

std::shared_ptr<CachedProgram>
ProgramCache::getShared(const std::string &pipeline, int width,
                        int height, const HardwareConfig &cfg,
                        const CompilerOptions &opts,
                        const DefFactory &makeDef)
{
    return lookup(pipeline, width, height, cfg, opts, makeDef);
}

void
ProgramCache::setCapacity(size_t entries)
{
    capacity_ = entries;
    enforceCapacity();
}

void
ProgramCache::enforceCapacity()
{
    if (capacity_ == 0)
        return;
    while (entries_.size() > capacity_) {
        // Caches hold a handful of pipelines, so a linear minimum scan
        // beats maintaining an intrusive LRU list; lastUse stamps are
        // unique (one clock tick per touch), so the victim is
        // deterministic.
        auto victim = entries_.begin();
        for (auto it = entries_.begin(); it != entries_.end(); ++it)
            if (it->second.lastUse < victim->second.lastUse)
                victim = it;
        entries_.erase(victim);
        ++evictions_;
        if (stats_)
            stats_->inc("serve.cache.evict");
    }
}

} // namespace ipim
