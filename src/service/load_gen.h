/**
 * @file
 * Open-loop Poisson load generator for the serving layer.
 *
 * Requests arrive at exponentially distributed interarrival times (a
 * Poisson process) regardless of how fast the device drains them —
 * open-loop, as production front-ends see traffic.  Everything is
 * derived from one seed through the repo's SplitMix64 stream, so a
 * (workload, seed) pair fully determines the arrival trace: no
 * wall-clock anywhere.
 */
#ifndef IPIM_SERVICE_LOAD_GEN_H_
#define IPIM_SERVICE_LOAD_GEN_H_

#include <string>
#include <vector>

#include "common/types.h"

namespace ipim {

/** One image-processing request entering the serving layer. */
struct ServeRequest
{
    u64 id = 0;            ///< submission order, unique
    std::string pipeline;  ///< benchmark/pipeline name
    Cycle arrival = 0;     ///< virtual arrival time (1 cycle == 1 ns)
    u64 inputSeed = 1;     ///< per-request synthetic input seed
};

/** Workload description for the generator. */
struct WorkloadSpec
{
    std::vector<std::string> pipelines; ///< sampled uniformly per request
    f64 ratePerSec = 1e5; ///< mean arrival rate (1 cycle == 1 ns)
    u32 requests = 100;
    u64 seed = 1;
};

/**
 * Generate @p spec.requests arrivals sorted by time.  Pipeline choice,
 * interarrival gaps, and per-request input seeds all come from the same
 * seeded stream.
 */
std::vector<ServeRequest> generatePoissonWorkload(const WorkloadSpec &spec);

} // namespace ipim

#endif // IPIM_SERVICE_LOAD_GEN_H_
