/**
 * @file
 * Open-loop load generator for the serving layer.
 *
 * Requests arrive regardless of how fast the device drains them —
 * open-loop, as production front-ends see traffic.  Three arrival
 * shapes are supported (DESIGN.md Sec. 17):
 *
 *  - poisson: exponentially distributed interarrival gaps;
 *  - bursty:  an on/off MMPP — Poisson arrivals at rate/duty during
 *    exponentially distributed "on" bursts, silence during the
 *    exponentially distributed "off" gaps, so the long-run mean rate is
 *    still ratePerSec;
 *  - diurnal: a sinusoidally rate-modulated Poisson process (thinning),
 *    one "day" per diurnalPeriodSec of virtual time.
 *
 * Everything is derived from one seed through the repo's SplitMix64
 * stream, partitioned into one independent substream per tenant
 * (seeded splitMix64(seed ^ splitMix64(tenantIndex))), so a
 * (workload, seed) pair fully determines the trace — no wall-clock
 * anywhere — and adding or removing a tenant never perturbs another
 * tenant's arrivals.
 */
#ifndef IPIM_SERVICE_LOAD_GEN_H_
#define IPIM_SERVICE_LOAD_GEN_H_

#include <string>
#include <vector>

#include "common/types.h"

namespace ipim {

/** One image-processing request entering the serving layer. */
struct ServeRequest
{
    u64 id = 0;            ///< submission order, unique
    std::string pipeline;  ///< benchmark/pipeline name
    Cycle arrival = 0;     ///< virtual arrival time (1 cycle == 1 ns)
    u64 inputSeed = 1;     ///< per-request synthetic input seed
    u32 tenant = 0;        ///< index into the workload's tenant table
    u32 priority = 0;      ///< scheduling class; larger preempts smaller
};

/** One tenant of a multi-tenant workload (fleet layer, DESIGN.md
 *  Sec. 17).  A workload with no tenants behaves as one default
 *  tenant at priority 0 with the full rate. */
struct TenantSpec
{
    std::string name = "default";
    f64 weight = 1.0;    ///< weighted fair-share weight (> 0)
    u32 priority = 0;    ///< scheduling class of this tenant's requests
    f64 rateShare = 1.0; ///< relative share of requests and rate (> 0)
};

/** Arrival-process shape. */
enum class TraceShape { kPoisson, kBursty, kDiurnal };

/** Parse "poisson" | "bursty" | "diurnal" (fatal otherwise). */
TraceShape parseTraceShape(const std::string &name);

/** Workload description for the generator. */
struct WorkloadSpec
{
    std::vector<std::string> pipelines; ///< sampled uniformly per request
    f64 ratePerSec = 1e5; ///< mean arrival rate (1 cycle == 1 ns)
    u32 requests = 100;
    u64 seed = 1;

    /// Tenants; empty means one default tenant.  Request counts are
    /// apportioned by rateShare (largest remainder, so they sum to
    /// `requests` exactly).
    std::vector<TenantSpec> tenants;

    TraceShape shape = TraceShape::kPoisson;
    /// Bursty: fraction of time spent in the "on" state (0 < duty <= 1)
    /// and mean "on"-burst duration in seconds of virtual time.
    f64 burstDuty = 0.25;
    f64 burstOnSec = 500e-6;
    /// Diurnal: period of one rate cycle and the relative swing
    /// (rate(t) = mean * (1 + amplitude * sin(2*pi*t/period))).
    f64 diurnalPeriodSec = 10e-3;
    f64 diurnalAmplitude = 0.8;
};

/**
 * Generate @p spec.requests arrivals sorted by time (ids in sorted
 * order).  Pipeline choice, interarrival gaps, and per-request input
 * seeds all come from the tenant's substream.
 */
std::vector<ServeRequest> generateWorkload(const WorkloadSpec &spec);

/** Back-compat alias: generateWorkload with the Poisson shape. */
std::vector<ServeRequest> generatePoissonWorkload(const WorkloadSpec &spec);

} // namespace ipim

#endif // IPIM_SERVICE_LOAD_GEN_H_
