/**
 * @file
 * Compiled-program cache for the serving layer.
 *
 * Compilation is the expensive host-side step of serving a request, and
 * a production deployment sees the same few pipelines at the same few
 * geometries over and over.  The cache compiles each
 * (pipeline, image size, device geometry, CompilerOptions) key once and
 * reuses the CompiledPipeline for every later request, counting hits,
 * misses, and evictions into a StatsRegistry ("serve.cache.*").
 *
 * Each entry also carries the *calibrated* cycle estimate the
 * shortest-job-first scheduler consumes: before a program has ever
 * executed, the estimate is a static instruction-count proxy; after the
 * first execution it is the measured cycle count of that run.
 *
 * Capacity is optionally bounded (per-device caches in the fleet layer,
 * DESIGN.md Sec. 17): when an insert would exceed the capacity, the
 * least-recently-used entry is evicted.  Entries are shared_ptr-owned,
 * so a holder obtained via getShared() outlives eviction; the plain
 * get() reference is only guaranteed while the entry stays resident,
 * which is always the case for the default unbounded cache.
 */
#ifndef IPIM_SERVICE_PROGRAM_CACHE_H_
#define IPIM_SERVICE_PROGRAM_CACHE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "compiler/codegen.h"

namespace ipim {

/** One cached compilation with its calibration state. */
struct CachedProgram
{
    CompiledPipeline compiled;
    Cycle measuredCycles = 0; ///< first measured execution
    bool calibrated = false;
    u64 hits = 0;
    /// Static cost-model prediction (src/analysis/cost.h), summed over
    /// the pipeline's kernels; 0 when the model could not be run.
    /// Computed once at compile time by ProgramCache::get().
    Cycle staticCycles = 0;

    /**
     * Execution-cycle estimate for scheduling.  Uncalibrated entries
     * use the static cost model's prediction (falling back to
     * static-instructions-per-vault times a nominal CPI when the model
     * produced nothing); after the first execution the measured cycle
     * count replaces it.
     */
    Cycle estimate() const;

    /** Record a measured execution (first measurement calibrates). */
    void recordMeasurement(Cycle cycles);
};

class ProgramCache
{
  public:
    /** @p stats receives serve.cache.* counters; may be null. */
    explicit ProgramCache(StatsRegistry *stats) : stats_(stats) {}

    /** Builds the PipelineDef on a cache miss (never called on a hit). */
    using DefFactory = std::function<PipelineDef()>;

    /**
     * Look up (compiling on miss) the program for @p pipeline at
     * @p width x @p height on geometry @p cfg with options @p opts.
     * With the default unbounded capacity the returned reference stays
     * valid for the cache's lifetime; with a capacity set it is only
     * valid until the entry is evicted — holders that span evictions
     * use getShared().
     */
    CachedProgram &get(const std::string &pipeline, int width, int height,
                       const HardwareConfig &cfg,
                       const CompilerOptions &opts,
                       const DefFactory &makeDef);

    /** Like get(), but the returned owner keeps the entry alive past
     *  eviction (the fleet holds programs across its event loop). */
    std::shared_ptr<CachedProgram>
    getShared(const std::string &pipeline, int width, int height,
              const HardwareConfig &cfg, const CompilerOptions &opts,
              const DefFactory &makeDef);

    /** Cache key for the given coordinates (exposed for tests). */
    static std::string makeKey(const std::string &pipeline, int width,
                               int height, const HardwareConfig &cfg,
                               const CompilerOptions &opts);

    /** Residency probe for cache-affinity routing: true when @p key is
     *  cached here right now.  Does not touch recency. */
    bool contains(const std::string &key) const
    {
        return entries_.find(key) != entries_.end();
    }

    /**
     * Bound the cache to @p entries resident programs (0 = unbounded,
     * the default).  Shrinking below the current size evicts in LRU
     * order immediately.
     */
    void setCapacity(size_t entries);
    size_t capacity() const { return capacity_; }

    size_t size() const { return entries_.size(); }
    u64 compiles() const { return compiles_; }
    u64 hits() const { return hits_; }
    u64 evictions() const { return evictions_; }

  private:
    struct Entry
    {
        std::shared_ptr<CachedProgram> prog;
        u64 lastUse = 0; ///< logical clock stamp, unique per touch
    };

    std::shared_ptr<CachedProgram>
    lookup(const std::string &pipeline, int width, int height,
           const HardwareConfig &cfg, const CompilerOptions &opts,
           const DefFactory &makeDef);

    /** Evict LRU entries until size() <= capacity (capacity > 0). */
    void enforceCapacity();

    std::map<std::string, Entry> entries_;
    StatsRegistry *stats_;
    size_t capacity_ = 0; ///< 0 = unbounded
    u64 clock_ = 0;       ///< monotone use counter (LRU recency)
    u64 compiles_ = 0;
    u64 hits_ = 0;
    u64 evictions_ = 0;
};

} // namespace ipim

#endif // IPIM_SERVICE_PROGRAM_CACHE_H_
