/**
 * @file
 * Compiled-program cache for the serving layer.
 *
 * Compilation is the expensive host-side step of serving a request, and
 * a production deployment sees the same few pipelines at the same few
 * geometries over and over.  The cache compiles each
 * (pipeline, image size, device geometry, CompilerOptions) key once and
 * reuses the CompiledPipeline for every later request, counting hits and
 * misses into a StatsRegistry ("serve.cache.*").
 *
 * Each entry also carries the *calibrated* cycle estimate the
 * shortest-job-first scheduler consumes: before a program has ever
 * executed, the estimate is a static instruction-count proxy; after the
 * first execution it is the measured cycle count of that run.
 */
#ifndef IPIM_SERVICE_PROGRAM_CACHE_H_
#define IPIM_SERVICE_PROGRAM_CACHE_H_

#include <functional>
#include <map>
#include <string>

#include "compiler/codegen.h"

namespace ipim {

/** One cached compilation with its calibration state. */
struct CachedProgram
{
    CompiledPipeline compiled;
    Cycle measuredCycles = 0; ///< first measured execution
    bool calibrated = false;
    u64 hits = 0;
    /// Static cost-model prediction (src/analysis/cost.h), summed over
    /// the pipeline's kernels; 0 when the model could not be run.
    /// Computed once at compile time by ProgramCache::get().
    Cycle staticCycles = 0;

    /**
     * Execution-cycle estimate for scheduling.  Uncalibrated entries
     * use the static cost model's prediction (falling back to
     * static-instructions-per-vault times a nominal CPI when the model
     * produced nothing); after the first execution the measured cycle
     * count replaces it.
     */
    Cycle estimate() const;

    /** Record a measured execution (first measurement calibrates). */
    void recordMeasurement(Cycle cycles);
};

class ProgramCache
{
  public:
    /** @p stats receives serve.cache.* counters; may be null. */
    explicit ProgramCache(StatsRegistry *stats) : stats_(stats) {}

    /** Builds the PipelineDef on a cache miss (never called on a hit). */
    using DefFactory = std::function<PipelineDef()>;

    /**
     * Look up (compiling on miss) the program for @p pipeline at
     * @p width x @p height on geometry @p cfg with options @p opts.
     * The returned reference stays valid for the cache's lifetime.
     */
    CachedProgram &get(const std::string &pipeline, int width, int height,
                       const HardwareConfig &cfg,
                       const CompilerOptions &opts,
                       const DefFactory &makeDef);

    /** Cache key for the given coordinates (exposed for tests). */
    static std::string makeKey(const std::string &pipeline, int width,
                               int height, const HardwareConfig &cfg,
                               const CompilerOptions &opts);

    size_t size() const { return entries_.size(); }
    u64 compiles() const { return compiles_; }
    u64 hits() const { return hits_; }

  private:
    std::map<std::string, CachedProgram> entries_;
    StatsRegistry *stats_;
    u64 compiles_ = 0;
    u64 hits_ = 0;
};

} // namespace ipim

#endif // IPIM_SERVICE_PROGRAM_CACHE_H_
