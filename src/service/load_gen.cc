#include "service/load_gen.h"

#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace ipim {

std::vector<ServeRequest>
generatePoissonWorkload(const WorkloadSpec &spec)
{
    if (spec.pipelines.empty())
        fatal("workload needs at least one pipeline");
    if (!(spec.ratePerSec > 0.0))
        fatal("arrival rate must be positive, got ", spec.ratePerSec);

    // 1 cycle == 1 ns, so rate r req/s => mean gap of 1e9/r cycles.
    f64 meanGapCycles = 1e9 / spec.ratePerSec;

    SplitMix64 rng(spec.seed);
    std::vector<ServeRequest> reqs;
    reqs.reserve(spec.requests);
    f64 t = 0.0;
    for (u32 i = 0; i < spec.requests; ++i) {
        t += rng.nextExponential(meanGapCycles);
        ServeRequest r;
        r.id = i;
        r.pipeline = spec.pipelines[rng.next() % spec.pipelines.size()];
        r.arrival = Cycle(std::llround(t));
        r.inputSeed = rng.next() | 1; // never zero
        reqs.push_back(std::move(r));
    }
    return reqs;
}

} // namespace ipim
