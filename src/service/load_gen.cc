#include "service/load_gen.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace ipim {

namespace {

constexpr f64 kPi = 3.14159265358979323846;

/** Draw the next arrival time after @p t for one tenant's process.
 *  All randomness comes from @p rng in a fixed draw order, so the
 *  sequence is a pure function of the substream seed. */
struct ArrivalProcess
{
    const WorkloadSpec &spec;
    f64 meanGapCycles; ///< mean gap at this tenant's rate
    SplitMix64 &rng;
    /// Bursty state: cycles of "on" time left in the current burst.
    f64 onRemaining = 0.0;

    f64
    next(f64 t)
    {
        switch (spec.shape) {
          case TraceShape::kPoisson:
            return t + rng.nextExponential(meanGapCycles);
          case TraceShape::kBursty: {
            // On/off MMPP: arrivals at rate/duty while "on"; the mean
            // off gap is sized so the duty cycle (and long-run rate)
            // comes out right.
            f64 onGapMean = meanGapCycles * spec.burstDuty;
            f64 onMean = spec.burstOnSec * 1e9;
            f64 offMean = onMean * (1.0 - spec.burstDuty) /
                          spec.burstDuty;
            while (true) {
                f64 gap = rng.nextExponential(onGapMean);
                if (gap <= onRemaining) {
                    onRemaining -= gap;
                    return t + gap;
                }
                t += onRemaining;
                t += rng.nextExponential(offMean);
                onRemaining = rng.nextExponential(onMean);
            }
          }
          case TraceShape::kDiurnal: {
            // Lewis-Shedler thinning against the peak rate: candidate
            // gaps at rate*(1+A), each kept with probability
            // rate(t)/peak.
            f64 peakGapMean =
                meanGapCycles / (1.0 + spec.diurnalAmplitude);
            f64 period = spec.diurnalPeriodSec * 1e9;
            while (true) {
                t += rng.nextExponential(peakGapMean);
                f64 lambda = 1.0 + spec.diurnalAmplitude *
                                       std::sin(2.0 * kPi * t / period);
                if (rng.nextUnit() * (1.0 + spec.diurnalAmplitude) <=
                    lambda)
                    return t;
            }
          }
        }
        fatal("unreachable trace shape");
    }
};

void
validate(const WorkloadSpec &spec)
{
    if (spec.pipelines.empty())
        fatal("workload needs at least one pipeline");
    if (!(spec.ratePerSec > 0.0))
        fatal("arrival rate must be positive, got ", spec.ratePerSec);
    if (spec.shape == TraceShape::kBursty &&
        (!(spec.burstDuty > 0.0) || spec.burstDuty > 1.0))
        fatal("burst duty must be in (0, 1], got ", spec.burstDuty);
    if (spec.shape == TraceShape::kBursty && !(spec.burstOnSec > 0.0))
        fatal("burst on-duration must be positive");
    if (spec.shape == TraceShape::kDiurnal &&
        (spec.diurnalAmplitude < 0.0 || spec.diurnalAmplitude >= 1.0))
        fatal("diurnal amplitude must be in [0, 1), got ",
              spec.diurnalAmplitude);
    if (spec.shape == TraceShape::kDiurnal &&
        !(spec.diurnalPeriodSec > 0.0))
        fatal("diurnal period must be positive");
    for (const TenantSpec &t : spec.tenants) {
        if (!(t.weight > 0.0))
            fatal("tenant '", t.name, "' weight must be positive");
        if (!(t.rateShare > 0.0))
            fatal("tenant '", t.name, "' rate share must be positive");
    }
}

/** Apportion @p total requests by rateShare (largest remainder, ties
 *  to the lowest tenant index), so the counts sum to @p total. */
std::vector<u32>
apportion(const std::vector<TenantSpec> &tenants, u32 total)
{
    f64 shareSum = 0.0;
    for (const TenantSpec &t : tenants)
        shareSum += t.rateShare;
    std::vector<u32> counts(tenants.size(), 0);
    std::vector<std::pair<f64, size_t>> rem; // (-remainder, index)
    u32 assigned = 0;
    for (size_t i = 0; i < tenants.size(); ++i) {
        f64 exact = f64(total) * tenants[i].rateShare / shareSum;
        counts[i] = u32(exact);
        assigned += counts[i];
        rem.emplace_back(-(exact - f64(counts[i])), i);
    }
    std::sort(rem.begin(), rem.end());
    for (size_t i = 0; assigned < total; ++i, ++assigned)
        ++counts[rem[i % rem.size()].second];
    return counts;
}

} // namespace

TraceShape
parseTraceShape(const std::string &name)
{
    if (name == "poisson")
        return TraceShape::kPoisson;
    if (name == "bursty")
        return TraceShape::kBursty;
    if (name == "diurnal")
        return TraceShape::kDiurnal;
    fatal("unknown trace shape '", name,
          "' (poisson | bursty | diurnal)");
}

std::vector<ServeRequest>
generateWorkload(const WorkloadSpec &spec)
{
    validate(spec);

    std::vector<TenantSpec> tenants = spec.tenants;
    if (tenants.empty())
        tenants.push_back(TenantSpec{});

    f64 shareSum = 0.0;
    for (const TenantSpec &t : tenants)
        shareSum += t.rateShare;
    std::vector<u32> counts = apportion(tenants, spec.requests);

    std::vector<ServeRequest> reqs;
    reqs.reserve(spec.requests);
    for (size_t ti = 0; ti < tenants.size(); ++ti) {
        // Independent substream per tenant: tenant ti's arrivals are a
        // pure function of (seed, ti), so reconfiguring one tenant
        // never perturbs another's trace (pinned by test_service).
        SplitMix64 rng(splitMix64(spec.seed ^ splitMix64(u64(ti))));
        f64 rate = spec.ratePerSec * tenants[ti].rateShare / shareSum;
        // 1 cycle == 1 ns, so rate r req/s => mean gap of 1e9/r cycles.
        ArrivalProcess proc{spec, 1e9 / rate, rng};
        f64 t = 0.0;
        for (u32 i = 0; i < counts[ti]; ++i) {
            t = proc.next(t);
            ServeRequest r;
            r.pipeline =
                spec.pipelines[rng.next() % spec.pipelines.size()];
            r.arrival = Cycle(std::llround(t));
            r.inputSeed = rng.next() | 1; // never zero
            r.tenant = u32(ti);
            r.priority = tenants[ti].priority;
            reqs.push_back(std::move(r));
        }
    }

    // Deterministic merge: by arrival, then tenant; ids in merged order.
    std::stable_sort(reqs.begin(), reqs.end(),
                     [](const ServeRequest &a, const ServeRequest &b) {
                         return a.arrival != b.arrival
                                    ? a.arrival < b.arrival
                                    : a.tenant < b.tenant;
                     });
    for (size_t i = 0; i < reqs.size(); ++i)
        reqs[i].id = i;
    return reqs;
}

std::vector<ServeRequest>
generatePoissonWorkload(const WorkloadSpec &spec)
{
    WorkloadSpec s = spec;
    s.shape = TraceShape::kPoisson;
    return generateWorkload(s);
}

} // namespace ipim
