/**
 * @file
 * Multi-tenant serving layer: a virtual-time event loop that accepts a
 * stream of image-processing requests, compiles them through the program
 * cache, and schedules them onto the simulated device.
 *
 * Space sharing is cube-granular (iPIM's cubes only interact over
 * SERDES, and a request's working set never crosses its partition, so a
 * k-cube partition is modelled exactly by an isolated k-cube Device).
 * The server keeps one reusable Device per partition slot — power-cycled
 * with Device::reset() between launches — and advances a virtual clock
 * from arrival to completion events; request *execution* is the real
 * cycle-level simulation, so latency numbers inherit the simulator's
 * fidelity.
 */
#ifndef IPIM_SERVICE_SERVER_H_
#define IPIM_SERVICE_SERVER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "func/estimator.h"
#include "func/func_device.h"
#include "metrics/slo.h"
#include "service/load_gen.h"
#include "service/program_cache.h"
#include "service/scheduler.h"
#include "sim/device.h"

namespace ipim {

/** How the device is partitioned between concurrent requests. */
enum class ShareMode {
    kWholeDevice, ///< each request occupies every cube (no sharing)
    kPerCube,     ///< cube-granular: disjoint partitions run concurrently
};

struct ServerConfig
{
    /** Full device geometry; hw.cubes is the total cube count. */
    HardwareConfig hw;
    int width = 256;
    int height = 128;
    CompilerOptions copts;
    std::string policy = "fifo"; ///< scheduler name (fifo | sjf)

    /**
     * Execution backend (DESIGN.md Sec. 16).  "cycle" runs every
     * request on the cycle-accurate simulator; "func" runs the
     * functional interpreter (pixel-exact, orders of magnitude faster)
     * and drives scheduling, SLO accounting, and latency metrics off
     * the static cost model's cycle estimate instead of measured
     * cycles.
     */
    std::string backend = "cycle";
    ShareMode share = ShareMode::kPerCube;
    u32 cubesPerRequest = 1; ///< partition width in kPerCube mode

    /**
     * Host-side compilation latency model: cycles charged per static
     * instruction to the request that misses the program cache.  Keeps
     * compilation on the request's critical path (as in a real server)
     * while staying deterministic; 0 disables the charge.
     */
    Cycle compileCyclesPerInst = 10;

    /**
     * Optional tracer (not owned).  Slot devices register their tracks
     * under "slot<i>/" prefixes, and the server emits per-request async
     * spans (queued -> compile -> executing) on a "requests" track, all
     * stamped on the server's virtual timeline (DESIGN.md Sec. 12).
     */
    Tracer *tracer = nullptr;

    /**
     * Next-event fast-forward on the slot devices (DESIGN.md Sec. 13).
     * On by default; results are bit-exact either way.
     */
    bool fastForward = true;

    /**
     * Simulation worker threads per slot device (Device::setThreads,
     * DESIGN.md Sec. 18).  Purely a wall-clock knob: serve reports and
     * traces are bit-identical for every value.
     */
    u32 threads = 1;

    /**
     * SLO aggregation window in virtual-time cycles (1 ms at 1 GHz by
     * default); requests land in the tumbling window of their finish
     * time (DESIGN.md Sec. 14).
     */
    Cycle sloWindowCycles = 1'000'000;
};

/** Everything recorded about one served request. */
struct RequestRecord
{
    u64 id = 0;
    std::string pipeline;
    Cycle arrival = 0;
    Cycle start = 0;   ///< dispatch time (queueing ends)
    Cycle finish = 0;
    Cycle execCycles = 0;    ///< simulated device cycles
    Cycle compileCycles = 0; ///< charged on a program-cache miss
    u32 firstCube = 0;       ///< first cube of the assigned partition
    u32 numCubes = 0;
    bool cacheHit = false;

    Cycle queueCycles() const { return start - arrival; }
    Cycle totalCycles() const { return finish - arrival; }
};

/** Aggregate results of one serving run. */
struct ServeReport
{
    std::vector<RequestRecord> records;
    Cycle makespan = 0; ///< virtual time of the last completion
    LatencyHistogram queueLatency;
    LatencyHistogram execLatency;
    LatencyHistogram totalLatency;

    /**
     * serve.* counters (cache, scheduler, latency percentiles) plus the
     * merged per-request device stats.
     */
    StatsRegistry stats;

    /**
     * Fast-forward totals summed over all request executions.  Kept out
     * of `stats` so dense and fast-forward runs stay stat-for-stat
     * identical (DESIGN.md Sec. 13).
     */
    u64 ffwdSkippedCycles = 0;
    u64 ffwdJumps = 0;

    /** Rolling-window SLO metrics (latency percentiles, throughput,
     *  queue wait, cache hit rate), fed from `records` at end of run. */
    SloTracker slo;

    /**
     * Static-estimator error against measured cycles, sampled once per
     * executed request on the cycle backend (serve.estimator.* stats;
     * zero samples on the functional backend, where no measurement
     * exists to compare against).
     */
    u64 estimatorSamples = 0;
    f64 estimatorMeanAbsRelErr = 0;
    f64 estimatorMaxAbsRelErr = 0;

    /** Served requests per second of virtual time. */
    f64 throughputRps() const;

    /** Prometheus text-exposition snapshot of the serving SLOs. */
    std::string prometheusText() const;

    /** Human-readable multi-line summary. */
    std::string summary() const;
};

class Server
{
  public:
    explicit Server(const ServerConfig &cfg);
    ~Server();

    /** Serve @p requests (any order; sorted internally by arrival). */
    ServeReport run(const std::vector<ServeRequest> &requests);

    /** Partition slots the configuration yields (for tests). */
    u32 slots() const { return u32(slots_.size()); }

    const ServerConfig &config() const { return cfg_; }

  private:
    struct Slot
    {
        u32 firstCube = 0;
        u32 numCubes = 0;
        std::unique_ptr<Device> dev;      ///< cycle backend
        std::unique_ptr<FuncDevice> fdev; ///< functional backend
        bool busy = false;
    };

    struct Queued
    {
        ServeRequest req;
        CachedProgram *program = nullptr;
        bool cacheHit = false;
    };

    /** Geometry of one partition slot. */
    HardwareConfig slotConfig() const;

    ServerConfig cfg_;
    std::vector<Slot> slots_;
    /// Functional-backend estimator: memoizes the static cost-model
    /// walk across requests so repeated launches of a cached pipeline
    /// skip it (it would otherwise dominate functional dispatch time).
    LatencyEstimator estimator_;
};

} // namespace ipim

#endif // IPIM_SERVICE_SERVER_H_
