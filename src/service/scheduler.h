/**
 * @file
 * Pluggable request-scheduling policies for the serving layer.
 *
 * A scheduler sees the queue of pending requests whenever a device
 * partition frees up and picks which one to dispatch next.  Policies are
 * deliberately stateless: all the information they may use (arrival time,
 * calibrated cycle estimate) is in the queue snapshot, so runs are
 * reproducible and policies are trivially swappable.
 */
#ifndef IPIM_SERVICE_SCHEDULER_H_
#define IPIM_SERVICE_SCHEDULER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/types.h"

namespace ipim {

/** Scheduler-visible view of one queued request. */
struct PendingRequest
{
    u64 id = 0;          ///< submission order, unique
    Cycle arrival = 0;   ///< virtual arrival time
    Cycle estimate = 0;  ///< calibrated execution-cycle estimate
};

class Scheduler
{
  public:
    virtual ~Scheduler() = default;

    virtual const char *name() const = 0;

    /** Index into @p queue of the request to dispatch; queue non-empty. */
    virtual size_t pick(const std::vector<PendingRequest> &queue) const = 0;
};

/** First-in-first-out: earliest arrival wins (ties: lowest id). */
class FifoScheduler : public Scheduler
{
  public:
    const char *name() const override { return "fifo"; }
    size_t pick(const std::vector<PendingRequest> &queue) const override;
};

/**
 * Shortest-job-first over calibrated cycle estimates (ties: earliest
 * arrival, then lowest id, so runs stay deterministic).
 */
class SjfScheduler : public Scheduler
{
  public:
    const char *name() const override { return "sjf"; }
    size_t pick(const std::vector<PendingRequest> &queue) const override;
};

/** Factory by policy name ("fifo" | "sjf"); throws on unknown names. */
std::unique_ptr<Scheduler> makeScheduler(const std::string &policy);

} // namespace ipim

#endif // IPIM_SERVICE_SCHEDULER_H_
