/**
 * @file
 * Latency histogram for the serving layer: collects per-request samples
 * (in cycles) and reports tail percentiles into a StatsRegistry.
 */
#ifndef IPIM_COMMON_HISTOGRAM_H_
#define IPIM_COMMON_HISTOGRAM_H_

#include <string>
#include <vector>

#include "common/stats.h"

namespace ipim {

/**
 * Exact sample-keeping histogram.
 *
 * Serving runs are at most a few thousand requests, so keeping every
 * sample and sorting on demand is both exact and cheap; percentiles use
 * the nearest-rank definition (p50 of one sample is that sample).
 */
class LatencyHistogram
{
  public:
    void add(f64 sample);

    u64 count() const { return samples_.size(); }

    /**
     * @name Summary statistics
     * On an empty histogram these all return 0.0 — a sentinel, not a
     * measurement (there is no identity latency).  Callers that must
     * distinguish "no samples" from "zero-cycle latency" check count()
     * first; exportTo() does this and omits the summary keys entirely.
     */
    ///@{
    f64 min() const;
    f64 max() const;
    f64 mean() const;
    f64 sum() const;

    /** Nearest-rank percentile; @p p in [0, 100]. 0 when empty. */
    f64 percentile(f64 p) const;
    ///@}

    /**
     * Append every sample of @p other (fleet aggregation, DESIGN.md
     * Sec. 17).  Percentiles of the merged histogram are computed over
     * the pooled samples, which is exact — averaging per-shard
     * percentiles is not (a shard with 1 slow request and a shard with
     * 999 fast ones average to a p99 neither population has).
     */
    void merge(const LatencyHistogram &other);

    /**
     * Export "<prefix>.count" plus mean/min/max and p50/p95/p99 summary
     * keys into @p reg.  When the histogram is empty only the count key
     * is written: an absent "<prefix>.p99" means "no samples", which
     * downstream consumers can tell apart from a genuine 0.0.
     */
    void exportTo(StatsRegistry &reg, const std::string &prefix) const;

    /**
     * Times the sorted-order cache has actually been rebuilt.  The
     * cache makes repeated percentile queries O(1) after one O(n log n)
     * sort; this counter exists so tests can pin that behaviour
     * (tests/test_common.cc).
     */
    u64 sorts() const { return sorts_; }

  private:
    const std::vector<f64> &sorted() const;

    std::vector<f64> samples_;
    mutable std::vector<f64> sorted_; ///< lazily rebuilt cache
    mutable bool dirty_ = false;
    mutable u64 sorts_ = 0;
};

} // namespace ipim

#endif // IPIM_COMMON_HISTOGRAM_H_
