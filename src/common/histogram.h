/**
 * @file
 * Latency histogram for the serving layer: collects per-request samples
 * (in cycles) and reports tail percentiles into a StatsRegistry.
 */
#ifndef IPIM_COMMON_HISTOGRAM_H_
#define IPIM_COMMON_HISTOGRAM_H_

#include <string>
#include <vector>

#include "common/stats.h"

namespace ipim {

/**
 * Exact sample-keeping histogram.
 *
 * Serving runs are at most a few thousand requests, so keeping every
 * sample and sorting on demand is both exact and cheap; percentiles use
 * the nearest-rank definition (p50 of one sample is that sample).
 */
class LatencyHistogram
{
  public:
    void add(f64 sample);

    u64 count() const { return samples_.size(); }
    f64 min() const;
    f64 max() const;
    f64 mean() const;

    /** Nearest-rank percentile; @p p in [0, 100]. 0 when empty. */
    f64 percentile(f64 p) const;

    /**
     * Export count/mean/min/max and p50/p95/p99 as "<prefix>.count",
     * "<prefix>.p50", ... into @p reg.
     */
    void exportTo(StatsRegistry &reg, const std::string &prefix) const;

  private:
    const std::vector<f64> &sorted() const;

    std::vector<f64> samples_;
    mutable std::vector<f64> sorted_; ///< lazily rebuilt cache
    mutable bool dirty_ = false;
};

} // namespace ipim

#endif // IPIM_COMMON_HISTOGRAM_H_
