/**
 * @file
 * Closed integer intervals with the arithmetic needed by Halide-style
 * bounds inference (Sec. V-B): given the interval of a loop variable,
 * compute the interval of an affine/div/clamp index expression.
 */
#ifndef IPIM_COMMON_INTERVAL_H_
#define IPIM_COMMON_INTERVAL_H_

#include <algorithm>

#include "common/logging.h"
#include "common/types.h"

namespace ipim {

/** Closed interval [lo, hi] over i64; empty iff lo > hi. */
struct Interval
{
    i64 lo = 0;
    i64 hi = -1;

    Interval() = default;
    Interval(i64 l, i64 h) : lo(l), hi(h) {}

    static Interval point(i64 v) { return {v, v}; }

    bool empty() const { return lo > hi; }
    i64 extent() const { return empty() ? 0 : hi - lo + 1; }
    bool contains(i64 v) const { return v >= lo && v <= hi; }
    bool contains(const Interval &o) const
    {
        return o.empty() || (lo <= o.lo && o.hi <= hi);
    }

    bool operator==(const Interval &o) const = default;

    /** Smallest interval containing both. An empty side is ignored. */
    Interval
    hull(const Interval &o) const
    {
        if (empty())
            return o;
        if (o.empty())
            return *this;
        return {std::min(lo, o.lo), std::max(hi, o.hi)};
    }

    Interval
    intersect(const Interval &o) const
    {
        return {std::max(lo, o.lo), std::min(hi, o.hi)};
    }

    Interval
    shift(i64 d) const
    {
        return empty() ? *this : Interval{lo + d, hi + d};
    }

    /** Widen by @p m on both sides. */
    Interval
    grow(i64 m) const
    {
        return empty() ? *this : Interval{lo - m, hi + m};
    }
};

inline Interval
operator+(const Interval &a, const Interval &b)
{
    if (a.empty() || b.empty())
        return {};
    return {a.lo + b.lo, a.hi + b.hi};
}

inline Interval
operator-(const Interval &a, const Interval &b)
{
    if (a.empty() || b.empty())
        return {};
    return {a.lo - b.hi, a.hi - b.lo};
}

inline Interval
operator*(const Interval &a, const Interval &b)
{
    if (a.empty() || b.empty())
        return {};
    i64 c[4] = {a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi};
    return {*std::min_element(c, c + 4), *std::max_element(c, c + 4)};
}

/** Floor division, matching Halide's index semantics for x/2 etc. */
inline i64
floorDiv(i64 a, i64 b)
{
    if (b == 0)
        panic("floorDiv by zero");
    i64 q = a / b;
    if ((a % b != 0) && ((a < 0) != (b < 0)))
        --q;
    return q;
}

/** Positive modulo, matching floorDiv. */
inline i64
floorMod(i64 a, i64 b)
{
    return a - floorDiv(a, b) * b;
}

/** Interval of a/b for b a nonzero constant (floor division). */
inline Interval
divConst(const Interval &a, i64 b)
{
    if (a.empty())
        return {};
    if (b == 0)
        fatal("index expression divides by zero");
    i64 x = floorDiv(a.lo, b), y = floorDiv(a.hi, b);
    return {std::min(x, y), std::max(x, y)};
}

inline Interval
minInterval(const Interval &a, const Interval &b)
{
    if (a.empty() || b.empty())
        return {};
    return {std::min(a.lo, b.lo), std::min(a.hi, b.hi)};
}

inline Interval
maxInterval(const Interval &a, const Interval &b)
{
    if (a.empty() || b.empty())
        return {};
    return {std::max(a.lo, b.lo), std::max(a.hi, b.hi)};
}

} // namespace ipim

#endif // IPIM_COMMON_INTERVAL_H_
