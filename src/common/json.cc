#include "common/json.h"

#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace ipim {

void
JsonWriter::comma()
{
    if (afterKey_) {
        afterKey_ = false;
        return; // value directly after "key":
    }
    if (!needComma_.empty()) {
        if (needComma_.back() == '1')
            out_ += ',';
        else
            needComma_.back() = '1';
    }
}

JsonWriter &
JsonWriter::beginObject()
{
    comma();
    out_ += '{';
    needComma_ += '0';
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    if (needComma_.empty())
        fatal("JsonWriter: endObject with no open scope");
    out_ += '}';
    needComma_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    comma();
    out_ += '[';
    needComma_ += '0';
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    if (needComma_.empty())
        fatal("JsonWriter: endArray with no open scope");
    out_ += ']';
    needComma_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &k)
{
    comma();
    out_ += '"';
    out_ += escape(k);
    out_ += "\":";
    afterKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    comma();
    out_ += '"';
    out_ += escape(v);
    out_ += '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(f64 v)
{
    comma();
    if (!std::isfinite(v)) {
        out_ += "null";
        return *this;
    }
    // Integers below 2^53 print without a fractional part (counter
    // values); everything else uses enough digits to round-trip.
    if (v == std::floor(v) && std::fabs(v) < 9007199254740992.0) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.0f", v);
        out_ += buf;
    } else {
        char buf[40];
        std::snprintf(buf, sizeof buf, "%.17g", v);
        out_ += buf;
    }
    return *this;
}

JsonWriter &
JsonWriter::value(u64 v)
{
    comma();
    char buf[24];
    std::snprintf(buf, sizeof buf, "%llu", (unsigned long long)v);
    out_ += buf;
    return *this;
}

JsonWriter &
JsonWriter::value(i64 v)
{
    comma();
    char buf[24];
    std::snprintf(buf, sizeof buf, "%lld", (long long)v);
    out_ += buf;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    comma();
    out_ += v ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::statsObject(const std::string &k, const StatsRegistry &reg)
{
    key(k);
    beginObject();
    for (const auto &[name, val] : reg.all())
        field(name, val);
    return endObject();
}

std::string
JsonWriter::finish()
{
    endObject();
    if (!needComma_.empty())
        fatal("JsonWriter: finish with ", needComma_.size(),
              " unclosed scopes");
    return out_;
}

std::string
JsonWriter::escape(const std::string &s)
{
    std::string r;
    r.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            r += "\\\"";
            break;
          case '\\':
            r += "\\\\";
            break;
          case '\n':
            r += "\\n";
            break;
          case '\t':
            r += "\\t";
            break;
          case '\r':
            r += "\\r";
            break;
          default:
            if (u8(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                r += buf;
            } else {
                r += c;
            }
        }
    }
    return r;
}

} // namespace ipim
