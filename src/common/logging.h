/**
 * @file
 * Error and status reporting helpers, following the gem5 fatal/panic
 * convention:
 *
 *  - panic(): an internal simulator invariant was violated (a bug in this
 *    code base).  Aborts.
 *  - fatal(): the user supplied an invalid configuration or program.
 *    Exits with an error code.
 *  - warn()/inform(): non-fatal status messages.
 */
#ifndef IPIM_COMMON_LOGGING_H_
#define IPIM_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace ipim {

/** Thrown by fatal() so that user errors are testable and recoverable. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Thrown by panic() on internal invariant violations. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

namespace detail {

inline void
appendAll(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
appendAll(std::ostringstream &os, const T &first, const Rest &...rest)
{
    os << first;
    appendAll(os, rest...);
}

} // namespace detail

/** Report a user-caused error: invalid config, unschedulable program, ... */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    std::ostringstream os;
    os << "fatal: ";
    detail::appendAll(os, args...);
    throw FatalError(os.str());
}

/** Report an internal simulator bug. */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    std::ostringstream os;
    os << "panic: ";
    detail::appendAll(os, args...);
    throw PanicError(os.str());
}

/** Non-fatal warning to stderr. */
template <typename... Args>
void
warn(const Args &...args)
{
    std::ostringstream os;
    detail::appendAll(os, args...);
    std::fprintf(stderr, "warn: %s\n", os.str().c_str());
}

/** Informational message to stderr. */
template <typename... Args>
void
inform(const Args &...args)
{
    std::ostringstream os;
    detail::appendAll(os, args...);
    std::fprintf(stderr, "info: %s\n", os.str().c_str());
}

} // namespace ipim

#endif // IPIM_COMMON_LOGGING_H_
