#include "common/stats.h"

#include <sstream>

namespace ipim {

f64
StatsRegistry::sumPrefix(const std::string &prefix) const
{
    f64 total = 0.0;
    for (auto it = values_.lower_bound(prefix); it != values_.end(); ++it) {
        if (it->first.compare(0, prefix.size(), prefix) != 0)
            break;
        total += it->second;
    }
    return total;
}

std::string
StatsRegistry::toString() const
{
    std::ostringstream os;
    for (const auto &[k, v] : values_)
        os << k << " = " << v << "\n";
    return os.str();
}

} // namespace ipim
