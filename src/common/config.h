/**
 * @file
 * Hardware configuration of an iPIM device: the Table III parameters of the
 * paper plus a few modelling knobs (page policy, scheduler, PonB mode).
 *
 * All latencies are in core cycles at 1 GHz (1 cycle == 1 ns), matching the
 * paper's "iPIM is designed to run at a clock frequency of 1GHz".
 * All energies are in Joules per event (or per bit where noted).
 */
#ifndef IPIM_COMMON_CONFIG_H_
#define IPIM_COMMON_CONFIG_H_

#include <cstddef>

#include "common/types.h"

namespace ipim {

/** DRAM row-buffer management policy (Sec. IV-E). */
enum class PagePolicy { kOpenPage, kClosePage };

/** DRAM request scheduling policy (Sec. IV-E). */
enum class SchedPolicy { kFcfs, kFrFcfs };

/** DRAM core timing parameters, in cycles (Table III). */
struct DramTiming
{
    u32 tRCD = 14; ///< ACT to RD/WR
    u32 tCCD = 2;  ///< CAS to CAS
    u32 tRTP = 4;  ///< RD to PRE
    u32 tRP = 14;  ///< PRE to ACT
    u32 tRAS = 33; ///< ACT to PRE
    u32 tWR = 12;  ///< end of write to PRE (standard value; not in Table III)
    u32 tCL = 14;  ///< RD to first data (standard value; not in Table III)
    u32 tRRDS = 4; ///< ACT to ACT, different bank group (power limit)
    u32 tRRDL = 6; ///< ACT to ACT, same bank group (power limit)
    u32 tFAW = 16; ///< four-activation window (power limit)
    u32 tREFI = 3900; ///< refresh interval (HBM-class; Sec. IV-E)
    u32 tRFC = 260;   ///< refresh cycle time (HBM-class; Sec. IV-E)
};

/** Latency of PE-local units, in cycles (Table III). */
struct UnitLatency
{
    u32 addrRf = 1;
    u32 dataRf = 1;
    u32 pgsm = 1;
    u32 vsm = 1;
    u32 addSub = 4;  ///< FP/INT add or subtract on the SIMD unit
    u32 mul = 5;
    u32 mac = 8;
    u32 logic = 1;   ///< shift/and/or/xor/crop (also min/max)
    u32 peBus = 1;   ///< PE <-> PGSM bus hop
    u32 tsv = 1;     ///< one TSV beat (128b)
    u32 nocHop = 1;  ///< one on-chip mesh hop
    /// One inter-cube SERDES hop is 0.08 ns; we model it as cycles scaled
    /// by 100 requests batched, i.e., effectively free next to NoC hops.
    u32 serdesHop = 1;
    u32 intAlu = 1;  ///< PE integer ALU (index calculation)
    u32 branch = 2;  ///< control core bubble on taken jump/cjump
};

/** Energy constants, in Joules (Table III). */
struct EnergyParams
{
    f64 dramRdWr = 0.52e-9;   ///< per 128b CAS access
    f64 dramActPre = 0.22e-9; ///< per ACT/PRE pair
    f64 addrRf = 0.43e-12;    ///< per AddrRF access
    f64 dataRf = 2.66e-12;    ///< per DataRF access
    f64 simdUnit = 87.37e-12; ///< per SIMD operation
    f64 intAlu = 11.05e-12;   ///< per integer ALU operation
    f64 peBusBit = 0.017e-12; ///< per bit on the PE bus
    f64 tsvBit = 4.64e-12;    ///< per bit through TSV
    f64 serdesBit = 4.50e-12; ///< per bit through SERDES
    /// PGSM/VSM access energies: modelled as SRAM reads scaled by size
    /// relative to the DataRF (cacti-3DD in the paper; estimates here).
    f64 pgsm = 5.9e-12;       ///< per 128b PGSM access
    f64 vsm = 18.0e-12;       ///< per 128b VSM access
    /// Background: DRAM standby power per bank plus control core power
    /// (in-order ARM cortex-A5 class with clock gating while stalled;
    /// includes the instruction-broadcast distribution, Sec. VII-A).
    f64 bankStandbyWatts = 2.0e-3;
    f64 controlCoreWatts = 25.0e-3;
    f64 refresh = 1.6e-9;     ///< per per-bank REF command
};

/** Area constants, in mm^2 of DRAM-die silicon (Table IV inputs). */
struct AreaParams
{
    /// Per-instance logic areas before the 2x DRAM-process penalty.
    f64 simdUnit = 2.26 / 64 / 2;
    f64 intAlu = 0.32 / 64 / 2;
    f64 addrRf = 0.20 / 64 / 2;
    f64 dataRf = 1.79 / 64 / 2;
    f64 memCtrl = 1.84 / 16 / 2;
    f64 pgsm = 3.87 / 16 / 2;
    f64 dramProcessFactor = 2.0; ///< reduced metal layers in DRAM process
    f64 dramDie = 96.0;          ///< HBM die footprint (Sohn et al.)
    f64 controlCore = 0.92;      ///< cortex-A5 class core incl. VSM
    f64 vsm = 0.23;              ///< VSM part of the control core area
    f64 vaultBaseDieBudget = 3.5;///< spare base-die area per vault
    /// Per-core footprint used for the "naive per-bank core" counterfactual
    /// (calibrated so the naive design reproduces the paper's 122.36%).
    f64 naiveCore = 0.8375;
};

/**
 * Full device configuration.
 *
 * The defaults are the paper's Table III.  Tests use smaller presets via
 * the named constructors below.
 */
struct HardwareConfig
{
    // --- Hierarchy (Table III) ---
    u32 cubes = 8;
    u32 vaultsPerCube = 16;
    u32 pgsPerVault = 8;
    u32 pesPerPg = 4;
    u32 instQueueDepth = 64;   ///< Issued Inst Queue entries per core
    u32 dramReqQueueDepth = 16;///< per-PG memory controller queue

    // --- Memories (Table III, bytes) ---
    u64 bankBytes = 16ull << 20;
    u32 addrRfBytes = 256;   ///< 64 x 32b
    u32 dataRfBytes = 1024;  ///< 64 x 128b
    u32 pgsmBytes = 8 << 10;
    u32 vsmBytes = 256 << 10;
    u32 ctrlRfEntries = 64;  ///< CtrlRF size (not given in the paper)
    u32 dramRowBytes = 2048; ///< row buffer size per bank

    // --- Mesh geometry ---
    u32 meshCols = 4; ///< on-chip 2D mesh columns (4x4 for 16 vaults)

    // --- Policies ---
    PagePolicy pagePolicy = PagePolicy::kOpenPage;
    SchedPolicy schedPolicy = SchedPolicy::kFrFcfs;

    /**
     * Process-on-base-die baseline (Sec. VII-C1): compute logic moved to
     * the base logic die; every bank access crosses the shared per-vault
     * TSV bus and is serialized there.
     */
    bool processOnBaseDie = false;

    DramTiming timing;
    UnitLatency latency;
    EnergyParams energy;
    AreaParams area;

    // --- Derived helpers ---
    u32 pesPerVault() const { return pgsPerVault * pesPerPg; }
    u32 pesPerCube() const { return pesPerVault() * vaultsPerCube; }
    u32 dataRfEntries() const { return dataRfBytes / kVectorBytes; }
    u32 addrRfEntries() const { return addrRfBytes / 4; }
    u32 meshRows() const { return (vaultsPerCube + meshCols - 1) / meshCols; }
    u32 rowsPerBank() const { return u32(bankBytes / dramRowBytes); }

    /** Throw FatalError if the configuration is inconsistent. */
    void validate() const;

    /** The paper's Table III configuration. */
    static HardwareConfig paper();

    /**
     * A small configuration for fast unit/integration tests:
     * 1 cube, 4 vaults (2x2 mesh), 2 PGs/vault, 2 PEs/PG.
     */
    static HardwareConfig tiny();

    /** One paper-scale cube (the cycle-simulated unit for benches). */
    static HardwareConfig benchCube();
};

} // namespace ipim

#endif // IPIM_COMMON_CONFIG_H_
