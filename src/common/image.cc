#include "common/image.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace ipim {

Image::Image(int width, int height, f32 fill)
    : width_(width), height_(height),
      data_(u64(width) * u64(height), fill)
{
    if (width < 0 || height < 0)
        fatal("negative image dimensions: ", width, "x", height);
}

f32
Image::clampedAt(int x, int y) const
{
    x = std::clamp(x, 0, width_ - 1);
    y = std::clamp(y, 0, height_ - 1);
    return at(x, y);
}

f32
Image::maxAbsDiff(const Image &o) const
{
    if (width_ != o.width_ || height_ != o.height_)
        fatal("maxAbsDiff on images of different shapes");
    f32 m = 0.0f;
    for (u64 i = 0; i < data_.size(); ++i)
        m = std::max(m, std::fabs(data_[i] - o.data_[i]));
    return m;
}

Image
Image::synthetic(int width, int height, u64 seed)
{
    Image img(width, height);
    for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
            f32 gx = width > 1 ? f32(x) / f32(width - 1) : 0.0f;
            f32 gy = height > 1 ? f32(y) / f32(height - 1) : 0.0f;
            u64 h = splitMix64(seed * 0x100000001b3ull + u64(y) * width + x);
            f32 noise = f32(h >> 40) / f32(1 << 24);
            f32 v = 0.5f * gx + 0.3f * gy + 0.2f * noise;
            // Keep values exactly representable-ish and in [0, 1).
            img.at(x, y) = v;
        }
    }
    return img;
}

} // namespace ipim
