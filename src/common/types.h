/**
 * @file
 * Fundamental fixed-width types and the 32-bit lane/vector word model used
 * throughout the iPIM simulator.
 *
 * iPIM's datapath is built around 128-bit vectors of four 32-bit lanes
 * (Table III: SIMD length 4, CAS width 128b).  A lane is a raw 32-bit word
 * whose interpretation (FP32 vs INT32) is chosen per instruction, exactly
 * as in the SIMB ISA (Table I).
 */
#ifndef IPIM_COMMON_TYPES_H_
#define IPIM_COMMON_TYPES_H_

#include <array>
#include <cstdint>
#include <cstring>

namespace ipim {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;
using f32 = float;
using f64 = double;

/** Simulation time, in core clock cycles (1 GHz => 1 cycle == 1 ns). */
using Cycle = u64;

/**
 * "No scheduled event" sentinel for nextEventAt() (DESIGN.md Sec. 13):
 * a component that cannot change state on its own returns this, and the
 * fast-forward layer treats it as +infinity when taking the tree-wide
 * minimum.
 */
inline constexpr Cycle kNeverCycle = ~Cycle(0);

/** Number of 32-bit lanes in a SIMD vector (128b bank/TSV interface). */
inline constexpr int kSimdLanes = 4;

/** Bytes in one SIMD vector / one bank CAS access / one TSV beat. */
inline constexpr int kVectorBytes = kSimdLanes * 4;

/** Reinterpret a raw 32-bit lane as FP32. */
inline f32
laneAsF32(u32 bits)
{
    f32 v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

/** Reinterpret an FP32 value as a raw 32-bit lane. */
inline u32
f32AsLane(f32 v)
{
    u32 bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

/** Reinterpret a raw 32-bit lane as INT32. */
inline i32
laneAsI32(u32 bits)
{
    i32 v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

/** Reinterpret an INT32 value as a raw 32-bit lane. */
inline u32
i32AsLane(i32 v)
{
    u32 bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

/**
 * One 128-bit SIMD register value: four raw 32-bit lanes.
 *
 * This is the unit moved by every data-movement instruction in the SIMB
 * ISA and the width of one DRAM bank column access.
 */
struct VecWord
{
    std::array<u32, kSimdLanes> lanes{};

    static VecWord
    splatF32(f32 v)
    {
        VecWord w;
        w.lanes.fill(f32AsLane(v));
        return w;
    }

    static VecWord
    splatI32(i32 v)
    {
        VecWord w;
        w.lanes.fill(i32AsLane(v));
        return w;
    }

    bool operator==(const VecWord &other) const = default;
};

} // namespace ipim

#endif // IPIM_COMMON_TYPES_H_
