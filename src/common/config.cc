#include "common/config.h"

#include "common/logging.h"

namespace ipim {

void
HardwareConfig::validate() const
{
    if (cubes == 0 || vaultsPerCube == 0 || pgsPerVault == 0 || pesPerPg == 0)
        fatal("hierarchy sizes must all be nonzero");
    if (pesPerVault() > 32) {
        fatal("simb_mask is a 32b boolean vector; at most 32 PEs per vault "
              "are supported (got ", pesPerVault(), ")");
    }
    if (dataRfBytes % kVectorBytes != 0)
        fatal("DataRF size must be a multiple of the 128b vector width");
    if (addrRfBytes % 4 != 0)
        fatal("AddrRF size must be a multiple of 32b");
    if (addrRfEntries() < 8)
        fatal("AddrRF must have at least 8 entries (A0-A3 are reserved)");
    if (dramRowBytes % kVectorBytes != 0)
        fatal("DRAM row size must be a multiple of the 128b CAS width");
    if (bankBytes % dramRowBytes != 0)
        fatal("bank size must be a multiple of the row size");
    if (meshCols == 0 || meshCols > vaultsPerCube)
        fatal("mesh columns must be in [1, vaultsPerCube]");
    if (instQueueDepth == 0 || dramReqQueueDepth == 0)
        fatal("queue depths must be nonzero");
    if (pgsmBytes % kVectorBytes != 0 || vsmBytes % kVectorBytes != 0)
        fatal("scratchpad sizes must be multiples of the vector width");
    if (timing.tRAS < timing.tRCD)
        fatal("tRAS must cover at least tRCD");
}

HardwareConfig
HardwareConfig::paper()
{
    return HardwareConfig{};
}

HardwareConfig
HardwareConfig::tiny()
{
    HardwareConfig cfg;
    cfg.cubes = 1;
    cfg.vaultsPerCube = 4;
    cfg.pgsPerVault = 2;
    cfg.pesPerPg = 2;
    cfg.meshCols = 2;
    cfg.bankBytes = 1 << 20;
    return cfg;
}

HardwareConfig
HardwareConfig::benchCube()
{
    HardwareConfig cfg;
    cfg.cubes = 1;
    return cfg;
}

} // namespace ipim
