/**
 * @file
 * Minimal JSON emitter for machine-readable CLI/bench output.
 *
 * Hand-rolled on purpose: the repo has no third-party JSON dependency and
 * only ever *writes* JSON (the `ipim --json` / `ipim serve --json` output
 * consumed by scripts).  Keys are emitted in call order; numbers use
 * shortest-round-trip formatting; non-finite doubles become null.
 */
#ifndef IPIM_COMMON_JSON_H_
#define IPIM_COMMON_JSON_H_

#include <string>

#include "common/stats.h"

namespace ipim {

/** Streaming JSON writer with automatic comma placement. */
class JsonWriter
{
  public:
    /** Begin the top-level object. */
    JsonWriter() { beginObject(); }

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit "key": — must be inside an object, before a value. */
    JsonWriter &key(const std::string &k);

    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(f64 v);
    JsonWriter &value(u64 v);
    JsonWriter &value(i64 v);
    JsonWriter &value(int v) { return value(i64(v)); }
    JsonWriter &value(u32 v) { return value(u64(v)); }
    JsonWriter &value(bool v);

    /** key() + value() in one call. */
    template <typename T>
    JsonWriter &
    field(const std::string &k, const T &v)
    {
        key(k);
        return value(v);
    }

    /** Emit every counter of @p reg as fields of a nested object. */
    JsonWriter &statsObject(const std::string &k, const StatsRegistry &reg);

    /** Close the top-level object and return the document. */
    std::string finish();

  private:
    void comma();
    static std::string escape(const std::string &s);

    std::string out_;
    /// Whether a comma is needed before the next element, per open scope.
    std::string needComma_;
    bool afterKey_ = false;
};

} // namespace ipim

#endif // IPIM_COMMON_JSON_H_
