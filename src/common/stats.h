/**
 * @file
 * Lightweight named-counter statistics registry.
 *
 * Every simulated component contributes event counts (instructions issued,
 * DRAM activates, SIMD operations, ...) to a StatsRegistry.  The energy
 * model (src/energy) and the benchmark harnesses consume snapshots of it.
 */
#ifndef IPIM_COMMON_STATS_H_
#define IPIM_COMMON_STATS_H_

#include <map>
#include <string>

#include "common/types.h"

namespace ipim {

/**
 * A flat map of statistic name -> value.
 *
 * Counters are u64 event counts stored as doubles (exact below 2^53,
 * far beyond any simulation length here) so that derived ratios can live
 * in the same registry.
 */
class StatsRegistry
{
  public:
    /** Add @p delta to counter @p name, creating it at zero if missing. */
    void
    inc(const std::string &name, f64 delta = 1.0)
    {
        values_[name] += delta;
    }

    /** Overwrite counter @p name. */
    void
    set(const std::string &name, f64 value)
    {
        values_[name] = value;
    }

    /** Value of @p name, or 0 if never touched. */
    f64
    get(const std::string &name) const
    {
        auto it = values_.find(name);
        return it == values_.end() ? 0.0 : it->second;
    }

    bool
    has(const std::string &name) const
    {
        return values_.count(name) > 0;
    }

    /** Accumulate all counters of @p other into this registry. */
    void
    merge(const StatsRegistry &other)
    {
        for (const auto &[k, v] : other.values_)
            values_[k] += v;
    }

    /**
     * Fold every non-zero counter into @p dst and zero this registry
     * (per-cube stat-shard reconciliation at the parallel engine's
     * quantum barrier; DESIGN.md Sec. 18).  Counter sums are integral
     * and exact in f64 below 2^53, so the fold order cannot change the
     * result.  Keys are kept (zeroed, not erased) to avoid re-allocating
     * map nodes every quantum, and zero deltas are skipped so @p dst
     * never grows a key this shard did not actually increment.
     */
    void
    drainInto(StatsRegistry &dst)
    {
        for (auto &[k, v] : values_) {
            if (v != 0.0)
                dst.values_[k] += v;
            v = 0.0;
        }
    }

    /** Sum of all counters whose name starts with @p prefix. */
    f64 sumPrefix(const std::string &prefix) const;

    void clear() { values_.clear(); }

    const std::map<std::string, f64> &all() const { return values_; }

    /** Render as "name = value" lines, sorted by name. */
    std::string toString() const;

  private:
    std::map<std::string, f64> values_;
};

} // namespace ipim

#endif // IPIM_COMMON_STATS_H_
