/**
 * @file
 * A minimal FP32 image container plus deterministic synthetic generators
 * that stand in for the DIV8K dataset (see DESIGN.md, substitutions).
 */
#ifndef IPIM_COMMON_IMAGE_H_
#define IPIM_COMMON_IMAGE_H_

#include <vector>

#include "common/types.h"

namespace ipim {

/**
 * Row-major single-channel FP32 image.
 *
 * Out-of-bounds reads replicate the border (Halide-style clamp), which is
 * the boundary condition every pipeline in this repo uses.
 */
class Image
{
  public:
    Image() = default;
    Image(int width, int height, f32 fill = 0.0f);

    int width() const { return width_; }
    int height() const { return height_; }
    u64 pixels() const { return u64(width_) * height_; }

    /** Unchecked access; (x, y) must be in bounds. */
    f32 &at(int x, int y) { return data_[u64(y) * width_ + x]; }
    f32 at(int x, int y) const { return data_[u64(y) * width_ + x]; }

    /** Border-replicating access (clamp-to-edge). */
    f32 clampedAt(int x, int y) const;

    const std::vector<f32> &data() const { return data_; }
    std::vector<f32> &data() { return data_; }

    bool operator==(const Image &o) const = default;

    /** Max absolute difference; images must have identical shape. */
    f32 maxAbsDiff(const Image &o) const;

    /**
     * Deterministic synthetic test pattern: smooth gradients plus hashed
     * per-pixel noise, spanning roughly [0, 1].  Stands in for DIV8K.
     */
    static Image synthetic(int width, int height, u64 seed = 1);

  private:
    int width_ = 0;
    int height_ = 0;
    std::vector<f32> data_;
};

} // namespace ipim

#endif // IPIM_COMMON_IMAGE_H_
