/**
 * @file
 * Deterministic pseudo-random number generation shared by the synthetic
 * image generator and the serving-layer load generator.
 *
 * Everything in this repo that needs randomness goes through SplitMix64
 * so that a (seed) pair fully determines a run — no wall-clock, no
 * std::random_device, no platform-dependent distributions.
 */
#ifndef IPIM_COMMON_RNG_H_
#define IPIM_COMMON_RNG_H_

#include <cmath>

#include "common/types.h"

namespace ipim {

/** One SplitMix64 mixing step (also usable as a stateless hash). */
inline u64
splitMix64(u64 x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** A tiny sequential SplitMix64 stream. */
class SplitMix64
{
  public:
    explicit SplitMix64(u64 seed) : state_(seed) {}

    u64
    next()
    {
        state_ += 0x9e3779b97f4a7c15ull;
        u64 x = state_;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
        return x ^ (x >> 31);
    }

    /** Uniform double in [0, 1). */
    f64
    nextUnit()
    {
        return f64(next() >> 11) * 0x1.0p-53;
    }

    /** Exponential variate with the given mean (inverse-CDF method). */
    f64
    nextExponential(f64 mean)
    {
        // 1 - u is in (0, 1], so the log argument is never zero.
        return -std::log(1.0 - nextUnit()) * mean;
    }

  private:
    u64 state_;
};

} // namespace ipim

#endif // IPIM_COMMON_RNG_H_
