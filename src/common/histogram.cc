#include "common/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace ipim {

void
LatencyHistogram::add(f64 sample)
{
    samples_.push_back(sample);
    dirty_ = true;
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    if (other.samples_.empty())
        return;
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    dirty_ = true;
}

const std::vector<f64> &
LatencyHistogram::sorted() const
{
    if (dirty_ || sorted_.size() != samples_.size()) {
        sorted_ = samples_;
        std::sort(sorted_.begin(), sorted_.end());
        dirty_ = false;
        ++sorts_;
    }
    return sorted_;
}

f64
LatencyHistogram::min() const
{
    return samples_.empty() ? 0.0 : sorted().front();
}

f64
LatencyHistogram::max() const
{
    return samples_.empty() ? 0.0 : sorted().back();
}

f64
LatencyHistogram::mean() const
{
    if (samples_.empty())
        return 0.0;
    f64 sum = 0.0;
    for (f64 s : samples_)
        sum += s;
    return sum / f64(samples_.size());
}

f64
LatencyHistogram::sum() const
{
    f64 sum = 0.0;
    for (f64 s : samples_)
        sum += s;
    return sum;
}

f64
LatencyHistogram::percentile(f64 p) const
{
    if (samples_.empty())
        return 0.0;
    if (p < 0.0 || p > 100.0)
        fatal("percentile out of range: ", p);
    const std::vector<f64> &s = sorted();
    // Nearest-rank: the smallest sample with at least p% of the mass
    // at or below it.
    size_t rank = size_t(std::ceil(p / 100.0 * f64(s.size())));
    if (rank == 0)
        rank = 1;
    return s[rank - 1];
}

void
LatencyHistogram::exportTo(StatsRegistry &reg,
                           const std::string &prefix) const
{
    reg.set(prefix + ".count", f64(count()));
    if (samples_.empty())
        return; // no summary keys: 0.0 would read as a real latency
    reg.set(prefix + ".mean", mean());
    reg.set(prefix + ".min", min());
    reg.set(prefix + ".max", max());
    reg.set(prefix + ".p50", percentile(50));
    reg.set(prefix + ".p95", percentile(95));
    reg.set(prefix + ".p99", percentile(99));
}

} // namespace ipim
