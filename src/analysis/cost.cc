#include "analysis/cost.h"

#include <algorithm>

namespace ipim {

namespace {

// ---- Calibration constants ----
//
// Structural latencies come straight from UnitLatency/DramTiming; the
// constants here cover effects the abstract replay cannot see.  They
// were fitted against measured simulator cycles on the ten Table II
// benchmarks (tests/test_analysis.cc holds the ±30% bound).

/// Fraction of data-dependent (scatter/gather) bank accesses that miss
/// the open row.  Sequential streams derive their miss rate from the
/// geometry (one miss per row's worth of vectors); accesses whose
/// address register is tainted by a mov_drf_arf are data-dependent and
/// thrash the row buffer against the loop's other streams — measured
/// row-hit rates drop from ~99% to ~74% on the histogram scatter.
constexpr f64 kScatterMissRate = 1.0;

/// Fixed rendezvous cost of a sync barrier beyond the mesh round trip
/// (master bookkeeping, release broadcast fan-out).
constexpr f64 kSyncBase = 14.0;

/// Fixed per-request overhead of a req round trip beyond hop latency
/// and the remote CAS (packet marshalling, MC queueing at the owner).
constexpr f64 kReqBase = 8.0;

bool
validOp(const Instruction &inst)
{
    return u8(inst.op) < u8(Opcode::kNumOpcodes) &&
           u8(inst.aluOp) < u8(AluOp::kNumAluOps);
}

/** SIMD-unit latency of a comp, mirroring Pe::compLatency. */
f64
compLatency(const UnitLatency &lat, AluOp op)
{
    switch (op) {
      case AluOp::kAdd:
      case AluOp::kSub:
      case AluOp::kMin:
      case AluOp::kMax:
      case AluOp::kCvtF2I:
      case AluOp::kCvtI2F: return f64(lat.addSub);
      case AluOp::kMul: return f64(lat.mul);
      case AluOp::kMac: return f64(lat.mac);
      case AluOp::kDiv:
      case AluOp::kMod: return f64(2 * lat.mul);
      default: return f64(lat.logic);
    }
}

/**
 * Abstract pipeline timelines carried across basic blocks.  The hazard
 * discipline mirrors sim/hazards.h: only true dependences wait for
 * completion (RAW on registers, scratchpad read-after-write), WAR
 * waits for operand capture, register RAR / scratchpad WAW do not
 * conflict, and bank accesses never block issue — the per-PG memory
 * controller preserves order and pipelines CAS commands, so the bank
 * is a throughput resource (bankFree), not an issue scoreboard.
 */
struct PipeState
{
    f64 clock = 0; ///< earliest issue cycle of the next instruction
    std::vector<f64> drf, arf, crf; ///< per-register write completions
    std::vector<f64> drfCap, arfCap, crfCap; ///< per-register read
                          ///< captures (WAR: a writer waits until the
                          ///< in-flight reader has its operands)
    f64 bankFree = 0;         ///< memory-controller occupancy horizon
    f64 pgsmWrDone[2] = {0, 0}; ///< PGSM half A/B write completion
    f64 pgsmRdDone[2] = {0, 0}; ///< PGSM half A/B read capture
    f64 vsmWrDone = 0;   ///< VSM write completion (RAW for rd_vsm)
    f64 vsmRdDone = 0;   ///< VSM read capture (WAR for wr_vsm)
    f64 tsvFree = 0;     ///< next free TSV beat (instruction
                         ///< broadcasts share it with VSM data)
    f64 reqReady = 0;    ///< latest outstanding req response arrival
    f64 lastDone = 0;    ///< drain horizon (max completion so far)
    std::vector<f64> iiq; ///< in-order retirement ring of the last
                          ///< instQueueDepth queue entries (structural
                          ///< stall when the queue is full)
    size_t iiqPos = 0;
    f64 iiqPrefixDone = 0; ///< running max completion (in-order retire)
    std::vector<f64> mcq;  ///< per-PG MC request-queue admission ring
    size_t mcqPos = 0;

    void
    shift(f64 d)
    {
        clock += d;
        for (std::vector<f64> *v :
             {&drf, &arf, &crf, &drfCap, &arfCap, &crfCap, &iiq, &mcq})
            for (f64 &t : *v)
                t += d;
        bankFree += d;
        pgsmWrDone[0] += d;
        pgsmWrDone[1] += d;
        pgsmRdDone[0] += d;
        pgsmRdDone[1] += d;
        vsmWrDone += d;
        vsmRdDone += d;
        tsvFree += d;
        reqReady += d;
        lastDone += d;
        iiqPrefixDone += d;
    }
};

class CostSim
{
  public:
    CostSim(const HardwareConfig &hw, const ProgramAnalysis &pa)
        : hw_(hw), pa_(pa), cfg_(*pa.cfg)
    {
        st_.drf.assign(hw.dataRfEntries(), 0);
        st_.arf.assign(hw.addrRfEntries(), 0);
        st_.crf.assign(hw.ctrlRfEntries, 0);
        st_.drfCap.assign(st_.drf.size(), 0);
        st_.arfCap.assign(st_.arf.size(), 0);
        st_.crfCap.assign(st_.crf.size(), 0);
        st_.iiq.assign(std::max<u32>(1, hw.instQueueDepth), 0);
        // Per-PG MC request queue, expressed in SIMB-instruction slots
        // (each bank op contributes one request per PE of the PG).
        st_.mcq.assign(
            std::max<u32>(1, hw.dramReqQueueDepth /
                                 std::max<u32>(1, hw.pesPerPg)),
            0);
        est_.blockCycles.assign(size_t(cfg_.numBlocks()), 0);
        taintArf();
    }

    CostEstimate
    run()
    {
        if (!cfg_.targetsResolved())
            est_.complete = false;
        std::vector<int> order;
        for (int b = 0; b < cfg_.numBlocks(); ++b)
            if (cfg_.block(b).reachable)
                order.push_back(b);
        simulateSeq(order, -1);
        est_.cycles = std::max(st_.clock, st_.lastDone) *
                      refreshFactor();
        for (f64 &c : est_.blockCycles)
            c *= refreshFactor();
        for (f64 &c : est_.syncCycles)
            c *= refreshFactor();
        return est_;
    }

  private:
    const HardwareConfig &hw_;
    const ProgramAnalysis &pa_;
    const Cfg &cfg_;
    PipeState st_;
    CostEstimate est_;

    std::vector<bool> taintedArf_; ///< ARF regs holding data-derived
                                   ///< (scatter/gather) addresses

    /**
     * Flow-insensitive taint: an ARF register written by mov_drf_arf
     * holds a data-dependent value, and calc_arf propagates taint from
     * its sources.  Bank accesses through a tainted register are
     * scatter/gather traffic with data-dependent row behaviour.
     */
    void
    taintArf()
    {
        taintedArf_.assign(std::max<size_t>(1, st_.arf.size()), false);
        bool changed = true;
        for (int pass = 0; changed && pass < 8; ++pass) {
            changed = false;
            for (const Instruction &inst : cfg_.prog()) {
                u16 dst = inst.dst % u16(taintedArf_.size());
                if (inst.op == Opcode::kMovDrfToArf &&
                    !taintedArf_[dst]) {
                    taintedArf_[dst] = true;
                    changed = true;
                } else if (inst.op == Opcode::kCalcArf) {
                    bool src =
                        taintedArf_[inst.src1 %
                                    u16(taintedArf_.size())] ||
                        (!inst.srcImm &&
                         taintedArf_[inst.src2 %
                                     u16(taintedArf_.size())]);
                    if (src && !taintedArf_[dst]) {
                        taintedArf_[dst] = true;
                        changed = true;
                    }
                }
            }
        }
    }

    /** Is this bank access's address data-dependent (scatter)? */
    bool
    scatterAccess(const Instruction &inst) const
    {
        return inst.dramAddr.indirect &&
               taintedArf_[inst.dramAddr.value %
                           u32(taintedArf_.size())];
    }

    f64
    refreshFactor() const
    {
        // Per-bank refresh steals roughly tRFC out of every tREFI of
        // bank availability.
        return 1.0 + f64(hw_.timing.tRFC) / f64(hw_.timing.tREFI);
    }

    /** PEs executing a broadcast under @p mask. */
    f64
    activePes(u32 mask) const
    {
        u32 full = hw_.pesPerVault() >= 32
                       ? ~0u
                       : ((1u << hw_.pesPerVault()) - 1);
        u32 m = mask & full;
        f64 n = 0;
        while (m != 0) {
            m &= m - 1;
            n += 1;
        }
        return n;
    }

    /**
     * Simulate the blocks of one nesting context in program order,
     * recursing into child loops at their headers.  @p loopIdx is the
     * context (-1 = top level).  Returns per-block deltas.
     */
    void
    simulateSeq(const std::vector<int> &blocks, int loopIdx)
    {
        for (size_t k = 0; k < blocks.size(); ++k) {
            int b = blocks[k];
            int inner = cfg_.innermostLoop(b);
            if (inner != loopIdx) {
                // Entering a child loop: find the outermost loop below
                // this context whose header is b, simulate it whole,
                // and skip its member blocks.
                int child = inner;
                while (child >= 0 &&
                       cfg_.loops()[size_t(child)].parent != loopIdx)
                    child = cfg_.loops()[size_t(child)].parent;
                if (child < 0 ||
                    cfg_.loops()[size_t(child)].header != b) {
                    // Irregular structure (e.g. entering mid-loop):
                    // fall back to straight-line accounting.
                    simulateBlock(b, 1.0);
                    continue;
                }
                simulateLoop(child);
                const NaturalLoop &cl = cfg_.loops()[size_t(child)];
                while (k + 1 < blocks.size() &&
                       cl.contains(blocks[k + 1]))
                    ++k;
                continue;
            }
            simulateBlock(b, 1.0);
        }
    }

    void
    simulateLoop(int loopIdx)
    {
        const NaturalLoop &loop = cfg_.loops()[size_t(loopIdx)];
        i64 trips = loop.tripCount;
        if (trips < 1) {
            trips = 1;
            est_.complete = false;
        }
        std::vector<int> body;
        for (int b : loop.blocks)
            if (cfg_.block(b).reachable)
                body.push_back(b);

        // Cold iteration.
        simulateSeq(body, loopIdx);
        if (trips < 2)
            return;

        // Steady-state iteration, recorded per block so the remaining
        // trips can be charged to the same blocks.
        f64 before = st_.clock;
        std::vector<f64> snap = est_.blockCycles;
        u64 instsBefore = est_.dynamicInsts;
        simulateSeq(body, loopIdx);
        f64 iter = st_.clock - before;
        f64 remaining = f64(trips - 2);
        if (remaining <= 0)
            return;
        for (size_t i = 0; i < est_.blockCycles.size(); ++i)
            est_.blockCycles[i] +=
                (est_.blockCycles[i] - snap[i]) * remaining;
        est_.dynamicInsts +=
            u64(f64(est_.dynamicInsts - instsBefore) * remaining);
        st_.shift(iter * remaining);
    }

    void
    simulateBlock(int b, f64 scale)
    {
        const BasicBlock &bb = cfg_.block(b);
        f64 before = st_.clock;
        for (u32 i = bb.first; i <= bb.last; ++i)
            issueInst(i);
        est_.blockCycles[size_t(b)] += (st_.clock - before) * scale;
        est_.dynamicInsts += u64(scale * f64(bb.last - bb.first + 1));
    }

    f64 &
    regSlot(RegFile f, u16 idx)
    {
        static f64 scratch = 0;
        switch (f) {
          case RegFile::kDrf:
            return idx < st_.drf.size() ? st_.drf[idx] : scratch;
          case RegFile::kArf:
            return idx < st_.arf.size() ? st_.arf[idx] : scratch;
          default:
            return idx < st_.crf.size() ? st_.crf[idx] : scratch;
        }
    }

    f64 &
    regCap(RegFile f, u16 idx)
    {
        static f64 scratch = 0;
        switch (f) {
          case RegFile::kDrf:
            return idx < st_.drfCap.size() ? st_.drfCap[idx] : scratch;
          case RegFile::kArf:
            return idx < st_.arfCap.size() ? st_.arfCap[idx] : scratch;
          default:
            return idx < st_.crfCap.size() ? st_.crfCap[idx] : scratch;
        }
    }

    /**
     * Does @p op dispatch to the PEs as a SIMB broadcast?  Broadcast
     * instructions enter the Issued Inst Queue and consume one TSV beat
     * for instruction delivery (Vault::issueBroadcast); everything else
     * executes instantly on the control core.
     */
    static bool
    isBroadcast(Opcode op)
    {
        switch (op) {
          case Opcode::kComp:
          case Opcode::kCalcArf:
          case Opcode::kMovDrfToArf:
          case Opcode::kMovArfToDrf:
          case Opcode::kReset:
          case Opcode::kRdPgsm:
          case Opcode::kWrPgsm:
          case Opcode::kRdVsm:
          case Opcode::kWrVsm:
          case Opcode::kLdRf:
          case Opcode::kStRf:
          case Opcode::kLdPgsm:
          case Opcode::kStPgsm: return true;
          default: return false;
        }
    }

    void
    issueInst(u32 i)
    {
        const Instruction &inst = cfg_.prog()[i];
        const UnitLatency &lat = hw_.latency;
        const DramTiming &tim = hw_.timing;
        if (!validOp(inst)) {
            st_.clock += 1;
            return;
        }

        AccessSet acc = inst.accessSet();
        f64 issue = st_.clock;
        // Register scoreboard, mirroring sim/hazards.h: a read waits
        // for the last writer's completion (RAW), a write waits for the
        // last in-flight reader's operand capture (WAR) — capture
        // happens when the broadcast reaches the PEs, so a backed-up
        // TSV turns anti-dependences into real stalls.  Register
        // RAR / WAW never conflict.
        for (int r = 0; r < acc.numReads; ++r)
            issue = std::max(
                issue, regSlot(acc.reads[r].file, acc.reads[r].idx));
        for (int w = 0; w < acc.numWrites; ++w)
            issue = std::max(
                issue, regCap(acc.writes[w].file, acc.writes[w].idx));
        // Scratchpad ordering: read-after-write waits for the write's
        // completion, write-after-read for the read's capture;
        // write-after-write is unordered, and bank accesses are
        // excluded entirely (the MC preserves same-address order).
        if ((acc.pgsmReadMask & 1) != 0)
            issue = std::max(issue, st_.pgsmWrDone[0]);
        if ((acc.pgsmReadMask & 2) != 0)
            issue = std::max(issue, st_.pgsmWrDone[1]);
        if ((acc.pgsmWriteMask & 1) != 0)
            issue = std::max(issue, st_.pgsmRdDone[0]);
        if ((acc.pgsmWriteMask & 2) != 0)
            issue = std::max(issue, st_.pgsmRdDone[1]);
        if (acc.readsVsm)
            issue = std::max(issue,
                             std::max(st_.vsmWrDone, st_.reqReady));
        if (acc.writesVsm)
            issue = std::max(issue, st_.vsmRdDone);
        // Structural stall: the Issued Inst Queue holds at most
        // instQueueDepth entries and retires strictly in order, so
        // issue waits until the entry instQueueDepth back — and every
        // older one — has completed.
        issue = std::max(issue, st_.iiq[st_.iiqPos]);

        // Broadcast instructions take one TSV beat to reach the PEs;
        // the beat contends with VSM data transfers on the same TSV
        // bundle, so heavy VSM traffic delays delivery (and therefore
        // operand capture) of every instruction behind it.
        bool bcast = isBroadcast(inst.op);
        f64 peStart = issue;
        if (bcast) {
            f64 slot = std::max(issue, st_.tsvFree);
            st_.tsvFree = slot + 1;
            peStart = slot + f64(lat.tsv);
        }
        f64 capture = peStart; ///< when the PEs latch operands
        f64 done = peStart + 1;
        f64 pes = activePes(inst.simbMask);
        switch (inst.op) {
          case Opcode::kComp:
            // The SIMD unit retires straight into the DRF
            // (Pe::tryStart finishes at now + compLatency).
            done = peStart + compLatency(lat, inst.aluOp);
            break;
          case Opcode::kCalcArf:
            done = peStart + lat.intAlu + lat.addrRf;
            break;
          case Opcode::kRdPgsm:
          case Opcode::kWrPgsm:
            done = peStart + lat.peBus + lat.pgsm + lat.dataRf;
            break;
          case Opcode::kRdVsm:
          case Opcode::kWrVsm: {
            // One TSV data slot per executing PE, strictly serialized
            // behind the instruction's own broadcast beat.
            f64 beats = std::max(1.0, pes);
            f64 slot = std::max(peStart, st_.tsvFree);
            st_.tsvFree = slot + beats;
            done = slot + beats - 1 + lat.tsv + lat.vsm + lat.dataRf;
            break;
          }
          case Opcode::kMovDrfToArf:
          case Opcode::kMovArfToDrf:
            done = peStart + lat.dataRf + lat.addrRf;
            break;
          case Opcode::kReset:
            done = peStart + lat.dataRf;
            break;
          case Opcode::kStRf:
          case Opcode::kLdRf:
          case Opcode::kStPgsm:
          case Opcode::kLdPgsm: {
            // Bank accesses queue at the per-PG MC, which issues one
            // command per cycle on the PG bus to per-PE banks and
            // preserves order.  A PE retries until the 16-entry queue
            // admits its request (mcq ring), so operand capture — and
            // with it WAR clearance — waits for admission.  Streaming
            // occupancy is the larger of the bus slots (one per active
            // PE of the PG) and the per-bank tCCD; a row miss closes
            // the row and holds the bank through PRE, ACT and the CAS
            // data return.  Sequential streams miss once per row's
            // worth of vectors, data-dependent scatters on nearly
            // every access.
            bool isWrite = inst.op == Opcode::kStRf ||
                           inst.op == Opcode::kStPgsm;
            f64 perPg = std::max(
                1.0, std::min(pes, f64(hw_.pesPerPg)));
            f64 seqMiss = f64(kVectorBytes) / f64(hw_.dramRowBytes);
            f64 miss = scatterAccess(inst) ? kScatterMissRate : seqMiss;
            f64 occupancy =
                std::max(perPg, f64(tim.tCCD)) +
                miss * f64(tim.tRP + tim.tRCD + tim.tCL);
            f64 admit = std::max(peStart, st_.mcq[st_.mcqPos]);
            capture = admit;
            f64 start = std::max(admit, st_.bankFree);
            st_.bankFree = start + occupancy;
            st_.mcq[st_.mcqPos] = start + occupancy;
            st_.mcqPos = (st_.mcqPos + 1) % st_.mcq.size();
            done = start + occupancy +
                   (isWrite ? 1.0 : f64(tim.tCL)) +
                   (inst.op == Opcode::kStPgsm ||
                            inst.op == Opcode::kLdPgsm
                        ? f64(lat.pgsm)
                        : f64(lat.dataRf));
            break;
          }
          case Opcode::kReq: {
            // Round trip: mesh out, remote CAS, mesh back; SERDES hops
            // are modelled as free next to NoC hops (UnitLatency).
            f64 hops =
                f64(hw_.meshRows() + hw_.meshCols) * f64(lat.nocHop);
            f64 rt = 2 * hops + f64(tim.tRCD + tim.tCL) + kReqBase;
            st_.reqReady = std::max(st_.reqReady, issue + 1 + rt);
            done = issue + 1;
            break;
          }
          case Opcode::kSetiVsm:
            // Core-side immediate store into the VSM.
            done = issue + 1;
            break;
          case Opcode::kJump:
            done = issue;
            st_.clock = issue + 1 + lat.branch;
            break;
          case Opcode::kCjump:
            // Assume taken: right for every loop latch except the
            // final iteration.
            done = issue;
            st_.clock = issue + 1 + lat.branch;
            break;
          case Opcode::kSync: {
            // Drain fence plus the master/slave mesh rendezvous.
            f64 hops =
                f64(hw_.meshRows() + hw_.meshCols) * f64(lat.nocHop);
            f64 start = std::max(issue, st_.lastDone);
            start = std::max(start, st_.reqReady);
            done = start + 2 * hops + kSyncBase;
            st_.clock = done;
            est_.syncCycles.push_back(done);
            break;
          }
          case Opcode::kHalt:
            done = std::max(issue, st_.lastDone) + 1;
            done = std::max(done, st_.reqReady);
            st_.clock = done;
            break;
          default: // seti_crf, calc_crf, nop: instant on the core
            done = issue;
            break;
        }

        if (inst.op != Opcode::kJump && inst.op != Opcode::kCjump &&
            inst.op != Opcode::kSync && inst.op != Opcode::kHalt)
            st_.clock = issue + 1;

        for (int w = 0; w < acc.numWrites; ++w)
            regSlot(acc.writes[w].file, acc.writes[w].idx) = std::max(
                regSlot(acc.writes[w].file, acc.writes[w].idx), done);
        for (int r = 0; r < acc.numReads; ++r)
            regCap(acc.reads[r].file, acc.reads[r].idx) = std::max(
                regCap(acc.reads[r].file, acc.reads[r].idx), capture);
        if ((acc.pgsmWriteMask & 1) != 0)
            st_.pgsmWrDone[0] = std::max(st_.pgsmWrDone[0], done);
        if ((acc.pgsmWriteMask & 2) != 0)
            st_.pgsmWrDone[1] = std::max(st_.pgsmWrDone[1], done);
        if ((acc.pgsmReadMask & 1) != 0)
            st_.pgsmRdDone[0] = std::max(st_.pgsmRdDone[0], capture);
        if ((acc.pgsmReadMask & 2) != 0)
            st_.pgsmRdDone[1] = std::max(st_.pgsmRdDone[1], capture);
        if (acc.writesVsm)
            st_.vsmWrDone = std::max(st_.vsmWrDone, done);
        if (acc.readsVsm)
            st_.vsmRdDone = std::max(st_.vsmRdDone, capture);
        st_.lastDone = std::max(st_.lastDone, done);
        // In-order retirement: an entry frees its queue slot only once
        // everything older has also completed.
        if (bcast || inst.op == Opcode::kReq) {
            st_.iiqPrefixDone = std::max(st_.iiqPrefixDone, done);
            st_.iiq[st_.iiqPos] = st_.iiqPrefixDone;
            st_.iiqPos = (st_.iiqPos + 1) % st_.iiq.size();
        }
    }
};

} // namespace

CostEstimate
estimateProgramCost(const HardwareConfig &hw, const ProgramAnalysis &pa)
{
    return CostSim(hw, pa).run();
}

f64
estimateKernelCycles(
    const HardwareConfig &hw,
    const std::vector<std::vector<Instruction>> &perVault)
{
    std::vector<CostEstimate> ests;
    u32 vaultsPerCube = hw.vaultsPerCube;
    for (size_t v = 0; v < perVault.size(); ++v) {
        if (perVault[v].empty())
            continue;
        ProgramAnalysis pa =
            analyzeProgram(hw, perVault[v], int(v / vaultsPerCube),
                           int(v % vaultsPerCube));
        ests.push_back(estimateProgramCost(hw, pa));
    }
    if (ests.empty())
        return 0;
    f64 worst = 0;
    bool aligned = true;
    for (const CostEstimate &e : ests) {
        worst = std::max(worst, e.cycles);
        aligned = aligned &&
                  e.syncCycles.size() == ests[0].syncCycles.size();
    }
    if (!aligned || ests[0].syncCycles.empty())
        return worst;
    // Barrier skew: between consecutive syncs every vault waits for
    // the slowest one, so the kernel cost is the sum of the per-phase
    // maxima rather than the maximum of the per-vault totals.
    f64 total = 0;
    size_t phases = ests[0].syncCycles.size();
    for (size_t p = 0; p <= phases; ++p) {
        f64 phase = 0;
        for (const CostEstimate &e : ests) {
            f64 end = p < phases ? e.syncCycles[p] : e.cycles;
            f64 begin = p > 0 ? e.syncCycles[p - 1] : 0;
            phase = std::max(phase, end - begin);
        }
        total += phase;
    }
    return std::max(worst, total);
}

} // namespace ipim
