#include "analysis/dataflow.h"

#include <algorithm>

#include "isa/alu.h"

namespace ipim {

namespace {

/// AddrRF entries 0..3 are the reserved identity registers (PE/PG/
/// vault/chip id, see ReservedArf in sim/pe.h); the hardware writes
/// them at reset, so dataflow treats them as always-written.
constexpr u16 kIdentityArfs = 4;

bool
validOp(const Instruction &inst)
{
    return u8(inst.op) < u8(Opcode::kNumOpcodes) &&
           u8(inst.aluOp) < u8(AluOp::kNumAluOps);
}

u32
execMask(const Instruction &inst, u32 fullMask)
{
    return isBroadcast(inst.op) ? (inst.simbMask & fullMask) : 1u;
}

u32
vaultFullMask(const HardwareConfig &hw)
{
    u32 pes = hw.pesPerVault();
    return pes >= 32 ? 0xFFFFFFFFu : ((1u << pes) - 1);
}

} // namespace

// ===================== WrittenBeforeAnalysis =======================

WrittenBeforeAnalysis::WrittenBeforeAnalysis(const HardwareConfig &hw,
                                             const Cfg &c)
    : cfg(c), regs(hw), fullMask(vaultFullMask(hw))
{
}

WrittenBeforeAnalysis::State
WrittenBeforeAnalysis::boundary() const
{
    State s(regs.size(), 0u);
    for (u16 a = 0; a < kIdentityArfs && a < regs.arf; ++a)
        s[regs.index(RegFile::kArf, a)] = ~0u;
    return s;
}

void
WrittenBeforeAnalysis::transfer(State &s, u32 instIdx) const
{
    const Instruction &inst = cfg.prog()[instIdx];
    if (!validOp(inst))
        return;
    AccessSet acc = inst.accessSet();
    u32 mask = execMask(inst, fullMask);
    for (u8 w = 0; w < acc.numWrites; ++w) {
        size_t r = regs.index(acc.writes[w].file, acc.writes[w].idx);
        if (r >= regs.size())
            continue; // out-of-bounds register: V01's problem
        u32 writeMask = acc.writes[w].file == RegFile::kCrf ? ~0u : mask;
        s[r] |= writeMask;
    }
}

// ======================== MayReadAnalysis ==========================

MayReadAnalysis::MayReadAnalysis(const HardwareConfig &hw, const Cfg &c)
    : cfg(c), regs(hw), fullMask(vaultFullMask(hw))
{
}

void
MayReadAnalysis::transfer(State &s, u32 instIdx) const
{
    const Instruction &inst = cfg.prog()[instIdx];
    if (!validOp(inst))
        return;
    AccessSet acc = inst.accessSet();
    u32 mask = execMask(inst, fullMask);
    // Backward: kill the written PEs first, then gen the reads, so an
    // instruction reading and writing the same register (mac) keeps the
    // incoming value live.
    for (u8 w = 0; w < acc.numWrites; ++w) {
        size_t r = regs.index(acc.writes[w].file, acc.writes[w].idx);
        if (r >= regs.size())
            continue;
        u32 writeMask = acc.writes[w].file == RegFile::kCrf ? ~0u : mask;
        s[r] &= ~writeMask;
    }
    for (u8 rd = 0; rd < acc.numReads; ++rd) {
        size_t r = regs.index(acc.reads[rd].file, acc.reads[rd].idx);
        if (r >= regs.size())
            continue;
        u32 readMask = acc.reads[rd].file == RegFile::kCrf ? ~0u : mask;
        s[r] |= readMask;
    }
}

// ====================== CrfConstPropAnalysis =======================

void
CrfConstPropAnalysis::transfer(State &s, u32 instIdx) const
{
    const Instruction &inst = cfg.prog()[instIdx];
    if (!validOp(inst))
        return;
    if (inst.op == Opcode::kSetiCrf) {
        if (inst.dst < crfEntries)
            s[inst.dst] = ConstVal::cst(inst.imm);
        return;
    }
    if (inst.op != Opcode::kCalcCrf)
        return;
    if (inst.dst >= crfEntries)
        return;
    ConstVal a = inst.src1 < crfEntries ? s[inst.src1]
                                        : ConstVal::nonconst();
    ConstVal b = inst.srcImm ? ConstVal::cst(inst.imm)
                 : inst.src2 < crfEntries ? s[inst.src2]
                                          : ConstVal::nonconst();
    // Uninit registers hold the reset value 0 at runtime; folding them
    // as 0 would hide the V08/V11 diagnostics, so poison the result.
    bool known = a.isConst() && b.isConst();
    bool evaluable = known && inst.aluOp != AluOp::kMac &&
                     !((inst.aluOp == AluOp::kDiv ||
                        inst.aluOp == AluOp::kMod) &&
                       b.value == 0);
    s[inst.dst] = evaluable
                      ? ConstVal::cst(aluEvalI32(inst.aluOp, a.value,
                                                 b.value))
                      : ConstVal::nonconst();
}

// ===================== CrfReachingDefsAnalysis =====================

void
CrfReachingDefsAnalysis::meet(State &into, const State &other) const
{
    for (size_t r = 0; r < into.size(); ++r) {
        std::vector<i32> merged;
        std::set_union(into[r].begin(), into[r].end(),
                       other[r].begin(), other[r].end(),
                       std::back_inserter(merged));
        into[r] = std::move(merged);
    }
}

void
CrfReachingDefsAnalysis::transfer(State &s, u32 instIdx) const
{
    const Instruction &inst = cfg.prog()[instIdx];
    if (!validOp(inst))
        return;
    if ((inst.op == Opcode::kSetiCrf || inst.op == Opcode::kCalcCrf) &&
        inst.dst < crfEntries)
        s[inst.dst] = {i32(instIdx)};
}

// ========================= CrfConstProp ============================

std::vector<ConstVal>
CrfConstProp::atInst(u32 instIdx) const
{
    int b = analysis.cfg.blockOf(instIdx);
    const BasicBlock &bb = analysis.cfg.block(b);
    std::vector<ConstVal> s = blockIn[size_t(b)];
    for (u32 i = bb.first; i < instIdx; ++i)
        analysis.transfer(s, i);
    return s;
}

std::vector<ConstVal>
CrfConstProp::headerEntryOnly(const NaturalLoop &loop) const
{
    const Cfg &cfg = analysis.cfg;
    std::vector<ConstVal> s = analysis.top();
    bool any = false;
    for (int p : cfg.block(loop.header).preds) {
        if (loop.contains(p))
            continue; // latch / in-loop edge
        std::vector<ConstVal> out = blockIn[size_t(p)];
        const BasicBlock &pb = cfg.block(p);
        for (u32 i = pb.first; i <= pb.last; ++i)
            analysis.transfer(out, i);
        analysis.meet(s, out);
        any = true;
    }
    if (loop.header == 0 || !any)
        analysis.meet(s, analysis.boundary());
    return s;
}

CrfConstProp
runCrfConstProp(const HardwareConfig &hw, const Cfg &cfg)
{
    CrfConstProp cp{CrfConstPropAnalysis(hw, cfg), {}};
    cp.blockIn = solveDataflow(cfg, cp.analysis);
    return cp;
}

// ======================== trip-count idiom =========================

void
deriveTripCounts(const HardwareConfig &hw, Cfg &cfg,
                 const CrfConstProp &cp)
{
    const std::vector<Instruction> &prog = cfg.prog();
    for (NaturalLoop &loop : cfg.loops()) {
        // Latch terminator must be `cjump counter, target`.  Multiple
        // latches break the counted idiom.
        if (loop.latches.size() != 1)
            continue;
        const BasicBlock &latch = cfg.block(loop.latches[0]);
        const Instruction &term = prog[latch.last];
        if (!validOp(term) || term.op != Opcode::kCjump)
            continue;
        u16 counter = term.src1;
        if (counter >= hw.ctrlRfEntries)
            continue;

        // Exactly one in-loop def of the counter, and it must be the
        // immediate-increment form `calc_crf add/sub c, c, #k`.
        i64 step = 0;
        int defs = 0;
        for (int b : loop.blocks) {
            const BasicBlock &bb = cfg.block(b);
            for (u32 i = bb.first; i <= bb.last; ++i) {
                const Instruction &inst = prog[i];
                if (!validOp(inst))
                    continue;
                bool writes =
                    (inst.op == Opcode::kSetiCrf ||
                     inst.op == Opcode::kCalcCrf) &&
                    inst.dst == counter;
                if (!writes)
                    continue;
                ++defs;
                if (inst.op == Opcode::kCalcCrf && inst.srcImm &&
                    inst.src1 == counter &&
                    (inst.aluOp == AluOp::kAdd ||
                     inst.aluOp == AluOp::kSub))
                    step = inst.aluOp == AluOp::kAdd ? i64(inst.imm)
                                                     : -i64(inst.imm);
            }
        }
        if (defs != 1 || step == 0)
            continue;

        // Initial value: the counter constant on loop entry.
        std::vector<ConstVal> entry = cp.headerEntryOnly(loop);
        if (counter >= entry.size() || !entry[counter].isConst())
            continue;
        i64 init = entry[counter].value;

        // cjump re-enters while counter != 0 after the step: the body
        // runs init / -step times when that divides evenly (otherwise
        // the counter steps over zero and the loop is unbounded —
        // leave the count unknown).
        if (init == 0 || (init > 0) == (step > 0))
            continue;
        if (init % step != 0)
            continue;
        i64 trips = -(init / step);
        if (trips <= 0)
            continue;
        loop.tripCount = trips;
        loop.counterCrf = counter;
        loop.counterStep = step;
    }
}

} // namespace ipim
