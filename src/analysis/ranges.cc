#include "analysis/ranges.h"

#include <algorithm>

namespace ipim {

namespace {

bool
validOp(const Instruction &inst)
{
    return u8(inst.op) < u8(Opcode::kNumOpcodes) &&
           u8(inst.aluOp) < u8(AluOp::kNumAluOps);
}

/// Bounds beyond this magnitude widen to Unknown: address arithmetic
/// never legitimately leaves the device's few-GB address ranges, and
/// capping keeps the interval products inside i64.
constexpr i64 kMagnitudeCap = i64(1) << 40;

ValueInterval
capped(i64 lo, i64 hi)
{
    if (lo > hi)
        std::swap(lo, hi);
    if (lo < -kMagnitudeCap || hi > kMagnitudeCap)
        return ValueInterval::unknown();
    return ValueInterval::range(lo, hi);
}

} // namespace

void
ValueInterval::join(const ValueInterval &o)
{
    if (o.kind == kTop)
        return;
    if (kind == kTop) {
        *this = o;
        return;
    }
    if (kind == kUnknown || o.kind == kUnknown) {
        *this = unknown();
        return;
    }
    lo = std::min(lo, o.lo);
    hi = std::max(hi, o.hi);
}

ValueInterval
intervalEval(AluOp op, const ValueInterval &a, const ValueInterval &b)
{
    if (!a.known() || !b.known())
        return ValueInterval::unknown();
    switch (op) {
      case AluOp::kAdd:
        return capped(a.lo + b.lo, a.hi + b.hi);
      case AluOp::kSub:
        return capped(a.lo - b.hi, a.hi - b.lo);
      case AluOp::kMul: {
        i64 c[4] = {a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi};
        return capped(*std::min_element(c, c + 4),
                      *std::max_element(c, c + 4));
      }
      case AluOp::kDiv:
        // Floor division by a positive constant is monotonic.
        if (b.isConst() && b.lo > 0) {
            auto fdiv = [&](i64 x) {
                i64 q = x / b.lo;
                return (x % b.lo != 0 && x < 0) ? q - 1 : q;
            };
            return capped(fdiv(a.lo), fdiv(a.hi));
        }
        return ValueInterval::unknown();
      case AluOp::kMod:
        if (b.isConst() && b.lo > 0)
            return ValueInterval::range(0, b.lo - 1); // floor modulo
        return ValueInterval::unknown();
      case AluOp::kShl:
        if (b.isConst() && b.lo >= 0 && b.lo < 32)
            return capped(a.lo << b.lo, a.hi << b.lo);
        return ValueInterval::unknown();
      case AluOp::kShr:
        if (b.isConst() && b.lo >= 0 && b.lo < 32 && a.lo >= 0)
            return ValueInterval::range(a.lo >> b.lo, a.hi >> b.lo);
        return ValueInterval::unknown();
      case AluOp::kAnd:
        // Masking with a non-negative constant bounds the result.
        if (b.isConst() && b.lo >= 0)
            return ValueInterval::range(0, b.lo);
        if (a.isConst() && a.lo >= 0)
            return ValueInterval::range(0, a.lo);
        return ValueInterval::unknown();
      case AluOp::kCropMsb:
        // Keep only the low b bits: result in [0, 2^b).
        if (b.isConst() && b.lo >= 0 && b.lo < 32)
            return ValueInterval::range(0, (i64(1) << b.lo) - 1);
        return ValueInterval::unknown();
      case AluOp::kCropLsb:
        // Zeroing low bits only shrinks a non-negative value.
        if (a.lo >= 0)
            return ValueInterval::range(0, a.hi);
        return ValueInterval::unknown();
      case AluOp::kMin:
        return capped(std::min(a.lo, b.lo), std::min(a.hi, b.hi));
      case AluOp::kMax:
        return capped(std::max(a.lo, b.lo), std::max(a.hi, b.hi));
      default:
        return ValueInterval::unknown();
    }
}

// ========================== ValueRanges ============================

RangeState
ValueRanges::topState() const
{
    RangeState s;
    s.crf.resize(hw_->ctrlRfEntries);
    s.arf.resize(hw_->addrRfEntries());
    return s;
}

RangeState
ValueRanges::seedState(int chip, int vaultInCube) const
{
    RangeState s = topState();
    for (ValueInterval &iv : s.crf)
        iv = ValueInterval::cst(0); // CtrlRF resets to zero
    for (ValueInterval &iv : s.arf)
        iv = ValueInterval::cst(0);
    // Identity AddrRF registers (ReservedArf in sim/pe.h), merged over
    // the vault's PEs.
    if (s.arf.size() > 0)
        s.arf[0] = ValueInterval::range(0, i64(hw_->pesPerPg) - 1);
    if (s.arf.size() > 1)
        s.arf[1] = ValueInterval::range(0, i64(hw_->pgsPerVault) - 1);
    if (s.arf.size() > 2)
        s.arf[2] = vaultInCube >= 0
                       ? ValueInterval::cst(vaultInCube)
                       : ValueInterval::range(0, i64(hw_->vaultsPerCube) - 1);
    if (s.arf.size() > 3)
        s.arf[3] = chip >= 0 ? ValueInterval::cst(chip)
                             : ValueInterval::range(0, i64(hw_->cubes) - 1);
    return s;
}

void
ValueRanges::joinState(RangeState &into, const RangeState &o) const
{
    for (size_t i = 0; i < into.crf.size(); ++i)
        into.crf[i].join(o.crf[i]);
    for (size_t i = 0; i < into.arf.size(); ++i)
        into.arf[i].join(o.arf[i]);
}

void
ValueRanges::applyInst(RangeState &s, u32 instIdx) const
{
    const Instruction &inst = cfg_->prog()[instIdx];
    if (!validOp(inst))
        return;
    switch (inst.op) {
      case Opcode::kSetiCrf:
        if (inst.dst < s.crf.size())
            s.crf[inst.dst] = ValueInterval::cst(inst.imm);
        break;
      case Opcode::kCalcCrf: {
        if (inst.dst >= s.crf.size())
            break;
        ValueInterval a = inst.src1 < s.crf.size() ? s.crf[inst.src1]
                                              : ValueInterval::unknown();
        ValueInterval b = inst.srcImm ? ValueInterval::cst(inst.imm)
                     : inst.src2 < s.crf.size() ? s.crf[inst.src2]
                                                : ValueInterval::unknown();
        s.crf[inst.dst] = intervalEval(inst.aluOp, a, b);
        break;
      }
      case Opcode::kCalcArf: {
        if (inst.dst >= s.arf.size())
            break;
        ValueInterval a = inst.src1 < s.arf.size() ? s.arf[inst.src1]
                                              : ValueInterval::unknown();
        ValueInterval b = inst.srcImm ? ValueInterval::cst(inst.imm)
                     : inst.src2 < s.arf.size() ? s.arf[inst.src2]
                                                : ValueInterval::unknown();
        s.arf[inst.dst] = intervalEval(inst.aluOp, a, b);
        break;
      }
      case Opcode::kMovDrfToArf:
        // DataRF values are not tracked.
        if (inst.dst < s.arf.size())
            s.arf[inst.dst] = ValueInterval::unknown();
        break;
      default:
        break;
    }
}

ValueRanges
ValueRanges::run(const HardwareConfig &hw, const Cfg &cfg, int chip,
                 int vaultInCube)
{
    ValueRanges vr;
    vr.hw_ = &hw;
    vr.cfg_ = &cfg;

    // ---- induction registers per loop (step derivable statically) ----
    const std::vector<Instruction> &prog = cfg.prog();
    vr.induction_.resize(cfg.loops().size());
    for (size_t li = 0; li < cfg.loops().size(); ++li) {
        const NaturalLoop &loop = cfg.loops()[li];
        // Count in-loop defs per register; keep single-def increments.
        std::vector<std::pair<InductionVar, int>> defs; // var, count
        auto note = [&](RegFile f, u16 reg, i64 step) {
            for (auto &[v, n] : defs) {
                if (v.file == f && v.reg == reg) {
                    ++n;
                    return;
                }
            }
            defs.push_back({{f, reg, step}, 1});
        };
        for (int b : loop.blocks) {
            const BasicBlock &bb = cfg.block(b);
            for (u32 i = bb.first; i <= bb.last; ++i) {
                const Instruction &inst = prog[i];
                if (!validOp(inst))
                    continue;
                bool isCrf = inst.op == Opcode::kCalcCrf ||
                             inst.op == Opcode::kSetiCrf;
                bool isArf = inst.op == Opcode::kCalcArf ||
                             inst.op == Opcode::kMovDrfToArf;
                if (!isCrf && !isArf)
                    continue;
                RegFile f = isCrf ? RegFile::kCrf : RegFile::kArf;
                bool increment =
                    (inst.op == Opcode::kCalcCrf ||
                     inst.op == Opcode::kCalcArf) &&
                    inst.srcImm && inst.src1 == inst.dst &&
                    (inst.aluOp == AluOp::kAdd ||
                     inst.aluOp == AluOp::kSub);
                i64 step = !increment ? 0
                           : inst.aluOp == AluOp::kAdd ? i64(inst.imm)
                                                       : -i64(inst.imm);
                note(f, inst.dst, increment ? step : 0);
            }
        }
        for (const auto &[v, n] : defs)
            if (n == 1 && v.step != 0)
                vr.induction_[li].push_back(v);
    }

    // ---- widening fixpoint with induction summarization ----
    const int n = cfg.numBlocks();
    vr.blockIn_.assign(size_t(n), vr.topState());
    if (n == 0)
        return vr;
    std::vector<RangeState> blockOut(size_t(n), vr.topState());

    auto transferBlock = [&](const RangeState &in, int b) {
        RangeState out = in;
        const BasicBlock &bb = cfg.block(b);
        for (u32 i = bb.first; i <= bb.last; ++i)
            vr.applyInst(out, i);
        return out;
    };

    constexpr int kWidenPass = 8;
    for (int pass = 0; pass < 2 * kWidenPass; ++pass) {
        bool changed = false;
        for (int b : cfg.rpo()) {
            const BasicBlock &bb = cfg.block(b);
            RangeState in = vr.topState();
            int headerLoop = -1;
            for (size_t li = 0; li < cfg.loops().size(); ++li)
                if (cfg.loops()[li].header == b)
                    headerLoop = int(li);

            if (b == 0 || bb.preds.empty())
                vr.joinState(in, vr.seedState(chip, vaultInCube));
            for (int p : bb.preds) {
                bool backEdge =
                    headerLoop >= 0 &&
                    cfg.loops()[size_t(headerLoop)].contains(p);
                if (!backEdge) {
                    vr.joinState(in, blockOut[size_t(p)]);
                    continue;
                }
                // Back edge: replace the induction registers'
                // contribution with the trip-count summary
                //   entry + [min(0, (T-1)k), max(0, (T-1)k)]
                // so they converge without widening to Unknown.
                const NaturalLoop &loop =
                    cfg.loops()[size_t(headerLoop)];
                RangeState latchOut = blockOut[size_t(p)];
                if (loop.tripCount > 0) {
                    // Entry-only join (recomputed from current outs).
                    RangeState entry = vr.topState();
                    bool any = false;
                    for (int q : bb.preds) {
                        if (loop.contains(q))
                            continue;
                        vr.joinState(entry, blockOut[size_t(q)]);
                        any = true;
                    }
                    if (b == 0 || !any)
                        vr.joinState(entry,
                                     vr.seedState(chip, vaultInCube));
                    for (const InductionVar &ivr :
                         vr.induction_[size_t(headerLoop)]) {
                        i64 span = (loop.tripCount - 1) * ivr.step;
                        auto &reg = ivr.file == RegFile::kCrf
                                        ? latchOut.crf[ivr.reg]
                                        : latchOut.arf[ivr.reg];
                        const auto &ent = ivr.file == RegFile::kCrf
                                              ? entry.crf[ivr.reg]
                                              : entry.arf[ivr.reg];
                        if (ent.known())
                            reg = capped(ent.lo + std::min<i64>(0, span),
                                         ent.hi +
                                             std::max<i64>(0, span));
                        else
                            reg = ValueInterval::unknown();
                    }
                }
                vr.joinState(in, latchOut);
            }

            if (!(in == vr.blockIn_[size_t(b)])) {
                if (pass >= kWidenPass) {
                    // Still growing: widen every unstable register.
                    const RangeState &old = vr.blockIn_[size_t(b)];
                    for (size_t i = 0; i < in.crf.size(); ++i)
                        if (!(in.crf[i] == old.crf[i]) &&
                            old.crf[i].kind != ValueInterval::kTop)
                            in.crf[i] = ValueInterval::unknown();
                    for (size_t i = 0; i < in.arf.size(); ++i)
                        if (!(in.arf[i] == old.arf[i]) &&
                            old.arf[i].kind != ValueInterval::kTop)
                            in.arf[i] = ValueInterval::unknown();
                }
                if (!(in == vr.blockIn_[size_t(b)])) {
                    vr.blockIn_[size_t(b)] = in;
                    blockOut[size_t(b)] = transferBlock(in, b);
                    changed = true;
                }
            }
        }
        if (!changed)
            break;
    }
    return vr;
}

RangeState
ValueRanges::atInst(u32 instIdx) const
{
    int b = cfg_->blockOf(instIdx);
    const BasicBlock &bb = cfg_->block(b);
    RangeState s = blockIn_[size_t(b)];
    for (u32 i = bb.first; i < instIdx; ++i)
        applyInst(s, i);
    return s;
}

ValueInterval
ValueRanges::resolve(const RangeState &s, const MemOperand &m,
                     RegFile addrFile) const
{
    if (!m.indirect)
        return ValueInterval::cst(i64(m.value));
    const std::vector<ValueInterval> &file =
        addrFile == RegFile::kCrf ? s.crf : s.arf;
    ValueInterval base = m.value < file.size() ? file[m.value]
                                          : ValueInterval::unknown();
    return intervalEval(AluOp::kAdd, base, ValueInterval::cst(m.offset));
}

i64
ValueRanges::addressStep(u32 instIdx, const MemOperand &m,
                         RegFile addrFile) const
{
    if (!m.indirect)
        return 0;
    int li = cfg_->innermostLoop(cfg_->blockOf(instIdx));
    if (li < 0)
        return 0; // not in a loop: executes once
    return regStep(li, addrFile, m.value, /*depth=*/4);
}

/**
 * Per-iteration step of one register inside loop @p loopIdx: the
 * induction step, 0 when loop-invariant (or rewritten to the same
 * immediate each iteration), or — for the compiler's addressing idiom
 * `calc add tmp, ivar, #off` — the step of the register it is derived
 * from, chased through at most @p depth single-def affine hops.
 */
i64
ValueRanges::regStep(int loopIdx, RegFile file, u16 reg,
                     int depth) const
{
    for (const InductionVar &v : induction_[size_t(loopIdx)])
        if (v.file == file && v.reg == reg)
            return v.step;
    const NaturalLoop &loop = cfg_->loops()[size_t(loopIdx)];
    const Instruction *def = nullptr;
    for (int b : loop.blocks) {
        const BasicBlock &bb = cfg_->block(b);
        for (u32 i = bb.first; i <= bb.last; ++i) {
            const Instruction &inst = cfg_->prog()[i];
            if (!validOp(inst))
                continue;
            AccessSet acc = inst.accessSet();
            for (u8 w = 0; w < acc.numWrites; ++w) {
                if (acc.writes[w].file != file ||
                    acc.writes[w].idx != reg)
                    continue;
                if (def && def != &inst)
                    return kUnknownStep; // multiple in-loop defs
                def = &inst;
            }
        }
    }
    if (!def)
        return 0; // loop-invariant
    if (def->op == Opcode::kSetiCrf && file == RegFile::kCrf)
        return 0; // same constant every iteration
    bool affine =
        ((file == RegFile::kCrf && def->op == Opcode::kCalcCrf) ||
         (file == RegFile::kArf && def->op == Opcode::kCalcArf)) &&
        def->srcImm &&
        (def->aluOp == AluOp::kAdd || def->aluOp == AluOp::kSub);
    if (affine && depth > 0)
        return regStep(loopIdx, file, def->src1, depth - 1);
    return kUnknownStep;
}

// ======================== access extents ===========================

namespace {

Extent
toExtent(const ValueInterval &addr, u64 width)
{
    if (!addr.known())
        return Extent::unknown();
    if (addr.lo < 0)
        return Extent::unknown(); // negative address: V02's territory
    return Extent::bytes(u64(addr.lo), u64(addr.hi) + width);
}

} // namespace

std::vector<InstMemAccess>
computeAccessExtents(const HardwareConfig &hw, const ValueRanges &vr)
{
    const Cfg &cfg = vr.cfg();
    const std::vector<Instruction> &prog = cfg.prog();
    std::vector<InstMemAccess> out(prog.size());

    for (int b = 0; b < cfg.numBlocks(); ++b) {
        const BasicBlock &bb = cfg.block(b);
        if (!bb.reachable)
            continue;
        RangeState s = vr.blockIn(b);
        for (u32 i = bb.first; i <= bb.last; ++i) {
            const Instruction &inst = prog[i];
            InstMemAccess &acc = out[i];
            if (validOp(inst)) {
                auto addr = [&](const MemOperand &m, RegFile f) {
                    return vr.resolve(s, m, f);
                };
                switch (inst.op) {
                  case Opcode::kStRf:
                    acc.bankWrite = toExtent(
                        addr(inst.dramAddr, RegFile::kArf),
                        kVectorBytes);
                    break;
                  case Opcode::kLdRf:
                    acc.bankRead = toExtent(
                        addr(inst.dramAddr, RegFile::kArf),
                        kVectorBytes);
                    break;
                  case Opcode::kStPgsm:
                    acc.bankWrite = toExtent(
                        addr(inst.dramAddr, RegFile::kArf),
                        kVectorBytes);
                    acc.pgsmRead = toExtent(
                        addr(inst.pgsmAddr, RegFile::kArf),
                        kVectorBytes);
                    break;
                  case Opcode::kLdPgsm:
                    acc.bankRead = toExtent(
                        addr(inst.dramAddr, RegFile::kArf),
                        kVectorBytes);
                    acc.pgsmWrite = toExtent(
                        addr(inst.pgsmAddr, RegFile::kArf),
                        kVectorBytes);
                    break;
                  case Opcode::kRdPgsm:
                  case Opcode::kWrPgsm: {
                    u64 span = u64(kSimdLanes - 1) * inst.pgsmStride + 4;
                    Extent e = toExtent(
                        addr(inst.pgsmAddr, RegFile::kArf), span);
                    if (inst.op == Opcode::kRdPgsm)
                        acc.pgsmRead = e;
                    else
                        acc.pgsmWrite = e;
                    break;
                  }
                  case Opcode::kRdVsm:
                    acc.vsmRead = toExtent(
                        addr(inst.vsmAddr, RegFile::kArf),
                        kVectorBytes);
                    break;
                  case Opcode::kWrVsm:
                    acc.vsmWrite = toExtent(
                        addr(inst.vsmAddr, RegFile::kArf),
                        kVectorBytes);
                    acc.vsmWriteStep =
                        vr.addressStep(i, inst.vsmAddr, RegFile::kArf);
                    break;
                  case Opcode::kSetiVsm:
                    acc.vsmWrite =
                        toExtent(addr(inst.vsmAddr, RegFile::kCrf), 4);
                    acc.vsmWriteStep =
                        vr.addressStep(i, inst.vsmAddr, RegFile::kCrf);
                    break;
                  case Opcode::kReq:
                    // Core-side indirection resolves through the
                    // CtrlRF (see Vault::issueStep).
                    acc.isReq = true;
                    acc.dstChip = inst.dstChip;
                    acc.dstVault = inst.dstVault;
                    acc.dstPg = inst.dstPg;
                    acc.dstPe = inst.dstPe;
                    acc.remoteBank = toExtent(
                        addr(inst.dramAddr, RegFile::kCrf),
                        kVectorBytes);
                    acc.vsmWrite = toExtent(
                        addr(inst.vsmAddr, RegFile::kCrf),
                        kVectorBytes);
                    acc.vsmWriteStep =
                        vr.addressStep(i, inst.vsmAddr, RegFile::kCrf);
                    break;
                  default:
                    break;
                }
            }
            vr.applyInst(s, i);
        }
    }
    (void)hw;
    return out;
}

} // namespace ipim
