/**
 * @file
 * Generic worklist dataflow engine over the SIMB CFG, plus the concrete
 * analyses the verifier and the cost/conflict passes share:
 *
 *  - WrittenBefore (forward, must): per register, the PE mask that has
 *    definitely written it on every path — the path-sensitive basis of
 *    the V11 read-before-write lint.
 *  - MayReadLiveness (backward, may): per register, the PE mask that may
 *    still read the current value before it is overwritten — its
 *    complement is the "definitely killed" fact behind the V12 dead-
 *    write lint (classic liveness with PE-mask granularity).
 *  - CrfConstProp (forward): constant propagation over the control
 *    core's scalar CtrlRF — branch-target validation (V08), static loop
 *    trip counts, and the address seeds of the range analysis.
 *  - CrfReachingDefs (forward, may): per CRF register, the set of
 *    defining instruction indices reaching each point.
 *
 * An analysis is a struct the engine is instantiated with:
 *
 *   struct A {
 *     using State = ...;                       // copyable, ==-comparable
 *     static constexpr bool kForward = ...;
 *     State boundary() const;  // entry (fwd) / exit (bwd) state
 *     State top() const;       // optimistic initial in/out
 *     void meet(State &into, const State &other) const;
 *     void transfer(State &s, u32 instIdx) const;
 *   };
 *
 * solveDataflow() returns per-block entry states (forward) or per-block
 * exit states (backward); stepping the transfer through a block
 * reproduces every intermediate program point.  Unreachable blocks keep
 * the top state and must be skipped by reporting walks.
 */
#ifndef IPIM_ANALYSIS_DATAFLOW_H_
#define IPIM_ANALYSIS_DATAFLOW_H_

#include <algorithm>
#include <utility>
#include <vector>

#include "analysis/cfg.h"
#include "common/config.h"

namespace ipim {

template <typename A>
std::vector<typename A::State>
solveDataflow(const Cfg &cfg, const A &a)
{
    using State = typename A::State;
    const int n = cfg.numBlocks();
    std::vector<State> in(size_t(n), a.top());
    std::vector<State> out(size_t(n), a.top());
    if (n == 0)
        return in;

    // Iteration order: RPO for forward problems, reverse RPO for
    // backward ones; both visit a block after most of its inputs.
    std::vector<int> order = cfg.rpo();
    if (!A::kForward)
        std::reverse(order.begin(), order.end());

    bool changed = true;
    while (changed) {
        changed = false;
        for (int b : order) {
            const BasicBlock &bb = cfg.block(b);
            State entry = a.top();
            bool boundary;
            if (A::kForward) {
                // Block 0 is the program entry even when a back edge
                // also targets it (the whole program is a loop).
                boundary = b == 0 || bb.preds.empty();
                for (int p : bb.preds)
                    a.meet(entry, out[size_t(p)]);
            } else {
                // Blocks without successors (halt, program tail) take
                // the exit boundary; so do blocks whose terminator has
                // an unresolved target (their real successors are
                // unknown — stay conservative).
                boundary = bb.succs.empty() || bb.unresolvedTarget;
                for (int s : bb.succs)
                    a.meet(entry, in[size_t(s)]);
            }
            if (boundary)
                a.meet(entry, a.boundary());

            State exit = entry;
            if (A::kForward) {
                for (u32 i = bb.first; i <= bb.last; ++i)
                    a.transfer(exit, i);
            } else {
                for (u32 i = bb.last + 1; i-- > bb.first;)
                    a.transfer(exit, i);
            }

            State &storedIn = A::kForward ? in[size_t(b)] : out[size_t(b)];
            State &storedOut = A::kForward ? out[size_t(b)] : in[size_t(b)];
            if (!(storedIn == entry) || !(storedOut == exit)) {
                storedIn = std::move(entry);
                storedOut = std::move(exit);
                changed = true;
            }
        }
    }
    return A::kForward ? in : out;
}

/** Flattened DRF/ARF/CRF register indexing shared by the analyses. */
struct RegSpace
{
    u32 drf = 0, arf = 0, crf = 0;

    explicit RegSpace(const HardwareConfig &cfg)
        : drf(cfg.dataRfEntries()), arf(cfg.addrRfEntries()),
          crf(cfg.ctrlRfEntries)
    {
    }

    size_t size() const { return size_t(drf) + arf + crf; }

    /** Compact index, or size() when the reference is out of bounds. */
    size_t
    index(RegFile f, u16 i) const
    {
        switch (f) {
          case RegFile::kDrf: return i < drf ? i : size();
          case RegFile::kArf: return i < arf ? drf + i : size();
          case RegFile::kCrf:
          default: return i < crf ? size_t(drf) + arf + i : size();
        }
    }
};

// ===================== PE-mask write analyses ======================

/**
 * Forward must-analysis: state[r] is the PE mask that has written
 * register r on *every* path from entry.  CRF registers (core-scalar)
 * use bit 0.  The boundary seeds the four hardware-initialized identity
 * AddrRF registers (see sim/pe.h) with the full mask.
 */
struct WrittenBeforeAnalysis
{
    using State = std::vector<u32>;
    static constexpr bool kForward = true;

    const Cfg &cfg;
    RegSpace regs;
    u32 fullMask;

    WrittenBeforeAnalysis(const HardwareConfig &hw, const Cfg &c);

    State top() const { return State(regs.size(), ~0u); }
    State boundary() const;
    void
    meet(State &into, const State &other) const
    {
        for (size_t i = 0; i < into.size(); ++i)
            into[i] &= other[i];
    }
    void transfer(State &s, u32 instIdx) const;
};

/**
 * Backward may-analysis: state[r] is the PE mask that may read register
 * r (its value at this point) before overwriting it.  The exit boundary
 * is all-live, so values still held at program end are never considered
 * killed — V12 flags only writes that are provably overwritten.
 */
struct MayReadAnalysis
{
    using State = std::vector<u32>;
    static constexpr bool kForward = false;

    const Cfg &cfg;
    RegSpace regs;
    u32 fullMask;

    MayReadAnalysis(const HardwareConfig &hw, const Cfg &c);

    State top() const { return State(regs.size(), 0u); }
    State boundary() const { return State(regs.size(), ~0u); }
    void
    meet(State &into, const State &other) const
    {
        for (size_t i = 0; i < into.size(); ++i)
            into[i] |= other[i];
    }
    void transfer(State &s, u32 instIdx) const;
};

// ====================== CRF constant lattice =======================

/** Flat constant lattice: Top > {Uninit, Const(v)} > NonConst. */
struct ConstVal
{
    enum Kind : u8 { kTop, kUninit, kConst, kNonConst };
    Kind kind = kTop;
    i32 value = 0;

    static ConstVal cst(i32 v) { return {kConst, v}; }
    static ConstVal uninit() { return {kUninit, 0}; }
    static ConstVal nonconst() { return {kNonConst, 0}; }

    bool isConst() const { return kind == kConst; }
    bool operator==(const ConstVal &o) const = default;

    void
    meet(const ConstVal &o)
    {
        if (o.kind == kTop || *this == o)
            return;
        if (kind == kTop)
            *this = o;
        else
            *this = nonconst();
    }
};

/**
 * Forward constant propagation over the CtrlRF.  The boundary marks all
 * registers Uninit: the hardware resets them to 0, but a branch through
 * an Uninit target is a V08 error, not a jump to instruction 0.
 */
struct CrfConstPropAnalysis
{
    using State = std::vector<ConstVal>;
    static constexpr bool kForward = true;

    const Cfg &cfg;
    u32 crfEntries;

    CrfConstPropAnalysis(const HardwareConfig &hw, const Cfg &c)
        : cfg(c), crfEntries(hw.ctrlRfEntries)
    {
    }

    State top() const { return State(crfEntries); }
    State boundary() const { return State(crfEntries, ConstVal::uninit()); }
    void
    meet(State &into, const State &other) const
    {
        for (size_t i = 0; i < into.size(); ++i)
            into[i].meet(other[i]);
    }
    void transfer(State &s, u32 instIdx) const;
};

// ======================= CRF reaching defs =========================

/**
 * Forward may-analysis: per CRF register, the sorted set of instruction
 * indices whose definition may reach this point (-1 encodes "the reset
 * value reaches here").
 */
struct CrfReachingDefsAnalysis
{
    using State = std::vector<std::vector<i32>>;
    static constexpr bool kForward = true;

    const Cfg &cfg;
    u32 crfEntries;

    CrfReachingDefsAnalysis(const HardwareConfig &hw, const Cfg &c)
        : cfg(c), crfEntries(hw.ctrlRfEntries)
    {
    }

    State top() const { return State(crfEntries); }
    State
    boundary() const
    {
        return State(crfEntries, std::vector<i32>{-1});
    }
    void meet(State &into, const State &other) const;
    void transfer(State &s, u32 instIdx) const;
};

// ========================= derived facts ===========================

/** Solved const-prop facts with per-instruction stepping helpers. */
struct CrfConstProp
{
    CrfConstPropAnalysis analysis;
    /// Per block, the state at block entry.
    std::vector<std::vector<ConstVal>> blockIn;

    /** State just before instruction @p instIdx executes. */
    std::vector<ConstVal> atInst(u32 instIdx) const;

    /**
     * Meet of the predecessors' out-states over non-latch edges only:
     * the value a loop header sees on entry, before any iteration.
     */
    std::vector<ConstVal> headerEntryOnly(const NaturalLoop &loop) const;
};

CrfConstProp runCrfConstProp(const HardwareConfig &hw, const Cfg &cfg);

/**
 * Derive static trip counts for the builder's counted-loop idiom and
 * store them on cfg.loops():  the latch ends with `cjump c, t`, the
 * loop body holds exactly one def of c — `calc_crf add/sub c, c, #k`
 * (srcImm) — and the header-entry value of c is a known constant N with
 * N and k of opposite effective sign and k | N.  The loop then executes
 * exactly N / |k| iterations (the cjump re-enters while c != 0).
 */
void deriveTripCounts(const HardwareConfig &hw, Cfg &cfg,
                      const CrfConstProp &cp);

} // namespace ipim

#endif // IPIM_ANALYSIS_DATAFLOW_H_
