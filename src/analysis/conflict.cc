#include "analysis/conflict.h"

#include <algorithm>
#include <sstream>

namespace ipim {

namespace {

bool
validOp(const Instruction &inst)
{
    return u8(inst.op) < u8(Opcode::kNumOpcodes);
}

std::string
extentStr(const Extent &e)
{
    if (e.kind == Extent::kUnknown)
        return "[?]";
    std::ostringstream os;
    os << "[" << e.lo << ", " << e.hi << ")";
    return os.str();
}

/// Per-vault, per-segment instruction lists the checks iterate.
struct VaultIndex
{
    std::vector<std::vector<u32>> reqs;        ///< per segment
    std::vector<std::vector<u32>> bankWriters; ///< per segment
    std::vector<std::vector<u32>> vsmWriters;  ///< per segment
    std::vector<u32> vsmReaders;               ///< sorted, whole program
};

VaultIndex
indexVault(const ProgramAnalysis &pa)
{
    VaultIndex vi;
    int segs = pa.numSegments();
    vi.reqs.resize(size_t(segs));
    vi.bankWriters.resize(size_t(segs));
    vi.vsmWriters.resize(size_t(segs));
    const Cfg &cfg = *pa.cfg;
    for (int b = 0; b < cfg.numBlocks(); ++b) {
        const BasicBlock &bb = cfg.block(b);
        if (!bb.reachable)
            continue;
        for (u32 i = bb.first; i <= bb.last; ++i) {
            const Instruction &inst = cfg.prog()[i];
            if (!validOp(inst))
                continue;
            size_t s = size_t(pa.segmentOf(i));
            const InstMemAccess &acc = pa.extents[i];
            if (acc.isReq)
                vi.reqs[s].push_back(i);
            if (acc.bankWrite.exists())
                vi.bankWriters[s].push_back(i);
            if (acc.vsmWrite.exists())
                vi.vsmWriters[s].push_back(i);
            if (inst.op == Opcode::kRdVsm)
                vi.vsmReaders.push_back(i);
        }
    }
    std::sort(vi.vsmReaders.begin(), vi.vsmReaders.end());
    return vi;
}

bool
readerBetween(const VaultIndex &vi, u32 lo, u32 hi)
{
    // Any rd_vsm with index in (lo, hi): the boolean VSM scoreboard
    // rules (W->R waits completion, R->W waits capture) then order the
    // two writers transitively through it, whatever its address.
    auto it = std::upper_bound(vi.vsmReaders.begin(),
                               vi.vsmReaders.end(), lo);
    return it != vi.vsmReaders.end() && *it < hi;
}

/** Instruction index span [min, max] of a natural loop. */
std::pair<u32, u32>
loopSpan(const Cfg &cfg, const NaturalLoop &loop)
{
    u32 lo = ~0u, hi = 0;
    for (int b : loop.blocks) {
        lo = std::min(lo, cfg.block(b).first);
        hi = std::max(hi, cfg.block(b).last);
    }
    return {lo, hi};
}

/**
 * Writers on a common address lattice of stride s: their slots
 * interleave without touching iff the start-offset residue keeps them
 * at least a vector width apart (the loop-lattice disjointness test).
 */
bool
strideLatticeDisjoint(i64 loA, i64 loB, i64 step, i64 width)
{
    i64 s = step < 0 ? -step : step;
    if (s < width)
        return false;
    i64 m = ((loA - loB) % s + s) % s;
    return m >= width && s - m >= width;
}

/**
 * True when writer @p i's VSM footprint is provably the exact address
 * lattice {lo + k*s : 0 <= k < trips} + [0, width): the per-iteration
 * step is known and the extent span equals width + (trips-1)*s, so no
 * other variation (outer loop, identity range) contributes.  s = 0
 * means a single slot.
 */
bool
latticeFootprint(const ProgramAnalysis &pa, u32 i, i64 width, i64 &lo,
                 i64 &s)
{
    const InstMemAccess &acc = pa.extents[i];
    if (acc.vsmWrite.kind != Extent::kKnown)
        return false;
    lo = i64(acc.vsmWrite.lo);
    i64 span = i64(acc.vsmWrite.hi) - lo;
    const Cfg &cfg = *pa.cfg;
    int li = cfg.innermostLoop(cfg.blockOf(i));
    if (li < 0) {
        s = 0;
        return span == width;
    }
    if (acc.vsmWriteStep == ValueRanges::kUnknownStep)
        return false;
    s = acc.vsmWriteStep < 0 ? -acc.vsmWriteStep : acc.vsmWriteStep;
    if (s == 0)
        return span == width;
    i64 trips = cfg.loops()[size_t(li)].tripCount;
    return trips > 0 && span == width + (trips - 1) * s;
}

/** V16: unordered VSM staging-write overlap within one vault. */
void
checkStagingConflicts(const ProgramAnalysis &pa, const VaultIndex &vi,
                      int vault, ConflictReport &rep)
{
    const Cfg &cfg = *pa.cfg;
    auto innermost = [&](u32 i) {
        return cfg.innermostLoop(cfg.blockOf(i));
    };

    for (size_t seg = 0; seg < vi.vsmWriters.size(); ++seg) {
        const std::vector<u32> &ws = vi.vsmWriters[seg];

        // Self-overlap: a req re-staging into the same (or an
        // overlapping) VSM slot on every loop iteration, with no
        // ordering read inside the loop.  Responses land on arrival,
        // so the last arrival wins nondeterministically.
        for (u32 i : ws) {
            const InstMemAccess &acc = pa.extents[i];
            if (!acc.isReq)
                continue;
            int li = innermost(i);
            if (li < 0)
                continue;
            const NaturalLoop &loop = cfg.loops()[size_t(li)];
            if (loop.tripCount == 1)
                continue;
            ++rep.stats.pairsChecked;
            if (acc.vsmWriteStep == ValueRanges::kUnknownStep ||
                acc.vsmWrite.kind == Extent::kUnknown ||
                loop.tripCount < 0) {
                ++rep.stats.unproved;
                continue;
            }
            i64 step = acc.vsmWriteStep;
            if (step >= i64(kVectorBytes) ||
                step <= -i64(kVectorBytes)) {
                ++rep.stats.provenDisjoint;
                continue;
            }
            auto [slo, shi] = loopSpan(cfg, loop);
            if (readerBetween(vi, slo == 0 ? 0 : slo - 1, shi + 1)) {
                ++rep.stats.provenDisjoint; // ordered, not racy
                continue;
            }
            std::ostringstream os;
            os << "req staging write " << extentStr(acc.vsmWrite)
               << " advances only " << step
               << " bytes per loop iteration (" << loop.tripCount
               << " iterations, 16-byte responses) with no ordering "
                  "rd_vsm in the loop; response arrival order decides "
                  "the final value";
            rep.findings.push_back(
                {ConflictFinding::Kind::kStagingOverlap, vault, int(i),
                 vault, int(i), int(seg), os.str()});
        }

        // Pairwise: req-involved VSM writer pairs.
        for (size_t a = 0; a < ws.size(); ++a) {
            for (size_t b = a + 1; b < ws.size(); ++b) {
                u32 i = ws[a], j = ws[b];
                const InstMemAccess &ai = pa.extents[i];
                const InstMemAccess &aj = pa.extents[j];
                if (!ai.isReq && !aj.isReq)
                    continue; // synchronous writers stay ordered
                ++rep.stats.pairsChecked;
                if (ai.vsmWrite.kind == Extent::kUnknown ||
                    aj.vsmWrite.kind == Extent::kUnknown) {
                    ++rep.stats.unproved;
                    continue;
                }
                int li = innermost(i), lj = innermost(j);
                bool sameLoop = li >= 0 && li == lj;
                // Equal-stride lattice footprints (same loop or not)
                // may interleave disjointly even though their
                // whole-extent hulls overlap.
                i64 loA, sA, loB, sB;
                const i64 w = i64(kVectorBytes);
                if (latticeFootprint(pa, i, w, loA, sA) &&
                    latticeFootprint(pa, j, w, loB, sB) &&
                    (sA == sB || sA == 0 || sB == 0) &&
                    strideLatticeDisjoint(loA, loB,
                                          sA ? sA : sB, w)) {
                    ++rep.stats.provenDisjoint;
                    continue;
                }
                if (!Extent::provenOverlap(ai.vsmWrite, aj.vsmWrite)) {
                    ++rep.stats.provenDisjoint;
                    continue;
                }
                bool ordered = readerBetween(vi, i, j);
                if (ordered && sameLoop) {
                    // Iterations wrap: writer j of one iteration still
                    // races writer i of the next unless a reader also
                    // sits on the wrap-around path.
                    auto [slo, shi] =
                        loopSpan(cfg, cfg.loops()[size_t(li)]);
                    ordered = readerBetween(vi, j, shi + 1) ||
                              readerBetween(vi, slo == 0 ? 0 : slo - 1,
                                            i);
                }
                if (ordered) {
                    ++rep.stats.provenDisjoint;
                    continue;
                }
                std::ostringstream os;
                os << "VSM write " << extentStr(ai.vsmWrite)
                   << " (inst " << i << ") overlaps VSM write "
                   << extentStr(aj.vsmWrite) << " (inst " << j
                   << ") in sync segment " << seg
                   << " with no ordering rd_vsm in between, and at "
                      "least one side is an asynchronously arriving "
                      "req response";
                rep.findings.push_back(
                    {ConflictFinding::Kind::kStagingOverlap, vault,
                     int(i), vault, int(j), int(seg), os.str()});
            }
        }
    }
}

} // namespace

const char *
conflictKindName(ConflictFinding::Kind k)
{
    switch (k) {
      case ConflictFinding::Kind::kBankOverlap: return "bank-overlap";
      case ConflictFinding::Kind::kSerdesOverlap:
        return "serdes-overlap";
      case ConflictFinding::Kind::kStagingOverlap:
        return "staging-overlap";
      case ConflictFinding::Kind::kSyncStructure:
        return "sync-structure";
      case ConflictFinding::Kind::kReqSelf: return "req-self";
      default: return "?";
    }
}

std::vector<ConflictFinding>
checkSyncStructure(const ProgramAnalysis &pa, int vault)
{
    std::vector<ConflictFinding> out;
    // V17: adjacent reachable syncs must carry distinct phase ids.
    // The master counts arrivals per phase id (Vault::deliver);
    // non-adjacent reuse is fine because every slave blocks until its
    // proceed, but two back-to-back barriers sharing an id become a
    // single conflatable counter key the moment vaults are simulated
    // (or built) out of lockstep.
    for (size_t k = 1; k < pa.syncs.size(); ++k) {
        auto [prevIdx, prevPhase] = pa.syncs[k - 1];
        auto [idx, phase] = pa.syncs[k];
        if (phase == prevPhase) {
            std::ostringstream os;
            os << "sync phase " << phase << " at inst " << idx
               << " repeats the id of the immediately preceding sync "
                  "at inst "
               << prevIdx
               << "; barrier arrival counting keys on the phase id";
            out.push_back({ConflictFinding::Kind::kSyncStructure,
                           vault, int(idx), -1, int(prevIdx), -1,
                           os.str()});
        }
    }
    return out;
}

ConflictReport
analyzeDeviceConflicts(const HardwareConfig &hw,
                       const std::vector<const ProgramAnalysis *>
                           &analyses)
{
    ConflictReport rep;
    const u32 vaultsPerCube = hw.vaultsPerCube;

    std::vector<VaultIndex> index(analyses.size());
    int maxSegs = 0;
    for (size_t v = 0; v < analyses.size(); ++v) {
        const ProgramAnalysis *pa = analyses[v];
        if (pa == nullptr)
            continue;
        auto structural = checkSyncStructure(*pa, int(v));
        rep.findings.insert(rep.findings.end(), structural.begin(),
                            structural.end());
        if (!pa->segmentable)
            rep.complete = false;
        index[v] = indexVault(*pa);
        maxSegs = std::max(maxSegs, pa->numSegments());
    }
    rep.stats.segments = u64(maxSegs);

    // V18: a req routed to the issuing vault bypasses the issuer's own
    // scoreboard (the read is serviced straight at the memory
    // controller), so local bank hazards around it are invisible.
    for (size_t v = 0; v < analyses.size(); ++v) {
        const ProgramAnalysis *pa = analyses[v];
        if (pa == nullptr)
            continue;
        for (const auto &segReqs : index[v].reqs) {
            for (u32 i : segReqs) {
                const InstMemAccess &acc = pa->extents[i];
                if (acc.dstChip >= hw.cubes ||
                    acc.dstVault >= vaultsPerCube)
                    continue; // V02 reports the bad route
                size_t owner =
                    size_t(acc.dstChip) * vaultsPerCube + acc.dstVault;
                if (owner != v)
                    continue;
                std::ostringstream os;
                os << "req targets the issuing vault itself (chip "
                   << acc.dstChip << " vault " << acc.dstVault
                   << "); the remote-read path bypasses the local "
                      "scoreboard - use ld_rf/ld_pgsm instead";
                rep.findings.push_back(
                    {ConflictFinding::Kind::kReqSelf, int(v), int(i),
                     int(v), -1, pa->segmentOf(i), os.str()});
            }
        }
    }

    if (!rep.complete)
        return rep; // segmentation failed somewhere: stop here

    // ---- V14/V15: remote bank reads vs owner bank writes ----
    for (size_t v = 0; v < analyses.size(); ++v) {
        const ProgramAnalysis *pa = analyses[v];
        if (pa == nullptr)
            continue;
        for (size_t seg = 0; seg < index[v].reqs.size(); ++seg) {
            for (u32 r : index[v].reqs[seg]) {
                const InstMemAccess &racc = pa->extents[r];
                if (racc.dstChip >= hw.cubes ||
                    racc.dstVault >= vaultsPerCube)
                    continue;
                size_t owner = size_t(racc.dstChip) * vaultsPerCube +
                               racc.dstVault;
                if (owner == v || owner >= analyses.size() ||
                    analyses[owner] == nullptr)
                    continue;
                const ProgramAnalysis &po = *analyses[owner];
                u32 peIdx =
                    racc.dstPg * hw.pesPerPg + racc.dstPe;
                if (seg >= index[owner].bankWriters.size())
                    continue;
                for (u32 w : index[owner].bankWriters[seg]) {
                    const Instruction &winst = po.cfg->prog()[w];
                    if (peIdx < 32 &&
                        (winst.simbMask & (1u << peIdx)) == 0)
                        continue; // write never lands on that bank
                    ++rep.stats.pairsChecked;
                    const Extent &re = racc.remoteBank;
                    const Extent &we = po.extents[w].bankWrite;
                    if (re.kind == Extent::kUnknown ||
                        we.kind == Extent::kUnknown) {
                        ++rep.stats.unproved;
                        continue;
                    }
                    if (!Extent::provenOverlap(re, we)) {
                        ++rep.stats.provenDisjoint;
                        continue;
                    }
                    bool sameCube =
                        racc.dstChip == u16(v / vaultsPerCube);
                    std::ostringstream os;
                    os << "req remote bank read " << extentStr(re)
                       << " at chip " << racc.dstChip << " vault "
                       << racc.dstVault << " pg " << racc.dstPg
                       << " pe " << racc.dstPe
                       << " overlaps that vault's bank write "
                       << extentStr(we) << " (inst " << w
                       << ") in the same sync segment " << seg
                       << "; the owner's scoreboard never sees "
                          "remote reads";
                    rep.findings.push_back(
                        {sameCube
                             ? ConflictFinding::Kind::kBankOverlap
                             : ConflictFinding::Kind::kSerdesOverlap,
                         int(v), int(r), int(owner), int(w),
                         int(seg), os.str()});
                }
            }
        }
    }

    // ---- V16: unordered VSM staging-write overlap, per vault ----
    for (size_t v = 0; v < analyses.size(); ++v) {
        if (analyses[v] != nullptr)
            checkStagingConflicts(*analyses[v], index[v], int(v), rep);
    }
    return rep;
}

ConflictReport
checkProgramConflicts(const ProgramAnalysis &pa, int vault)
{
    ConflictReport rep;
    auto structural = checkSyncStructure(pa, vault);
    rep.findings.insert(rep.findings.end(), structural.begin(),
                        structural.end());
    if (!pa.segmentable) {
        rep.complete = false;
        return rep;
    }
    rep.stats.segments = u64(pa.numSegments());
    VaultIndex vi = indexVault(pa);
    checkStagingConflicts(pa, vi, vault, rep);
    return rep;
}

} // namespace ipim
