/**
 * @file
 * Static per-basic-block cost model for SIMB vault programs.
 *
 * The model replays the control core's issue discipline abstractly: one
 * instruction per cycle, a boolean scoreboard over registers and
 * scratchpad spaces (an accessor waits for the previous conflicting
 * in-flight instruction to complete), TSV-slot serialization for VSM
 * traffic, memory-controller serialization for bank traffic, branch
 * bubbles on taken transfers, and drain fences at sync/halt.  Loop
 * bodies are simulated twice — a cold first iteration plus one
 * steady-state iteration — and the steady iteration is scaled by the
 * remaining trip count derived from CRF constant propagation
 * (deriveTripCounts), so register/unit timelines stay consistent
 * without unrolling.
 *
 * Cross-validated against measured simulator cycles in
 * tests/test_analysis.cc (the ±30% acceptance bound) and consumed by
 * the serving layer's shortest-job-first scheduler as the uncalibrated
 * estimate (CachedProgram::estimate).
 */
#ifndef IPIM_ANALYSIS_COST_H_
#define IPIM_ANALYSIS_COST_H_

#include <vector>

#include "analysis/analysis.h"

namespace ipim {

/** Static cost estimate for one vault program. */
struct CostEstimate
{
    /// Estimated execution cycles of the whole program.
    f64 cycles = 0;
    /// Estimated dynamic instruction count (loop-scaled).
    u64 dynamicInsts = 0;
    /// False when an unknown loop trip count (or unresolved branch
    /// target) forced a one-iteration assumption: the estimate is then
    /// a lower bound, not a prediction.
    bool complete = true;
    /// Total cycle contribution per basic block (indexed by block id;
    /// loop blocks already include their trip-count scaling).
    std::vector<f64> blockCycles;
    /// Cumulative cycle stamp at each simulated sync barrier, in issue
    /// order.  Lets the kernel-level estimate align barrier phases
    /// across vaults and sum the per-phase maxima (barrier skew: a
    /// vault that finishes a phase early waits for the slowest one).
    std::vector<f64> syncCycles;
};

/**
 * Estimate execution cycles of the analyzed program @p pa on geometry
 * @p hw.
 */
CostEstimate estimateProgramCost(const HardwareConfig &hw,
                                 const ProgramAnalysis &pa);

/**
 * Kernel-level estimate: vaults run concurrently between barriers (V10
 * guarantees aligned barrier sequences), so the kernel cost is the sum
 * over barrier phases of the slowest vault's phase cost.  Falls back to
 * the slowest whole-vault program when the per-vault sync counts do not
 * line up.  Runs the per-program analysis pipeline internally.
 */
f64 estimateKernelCycles(
    const HardwareConfig &hw,
    const std::vector<std::vector<Instruction>> &perVault);

} // namespace ipim

#endif // IPIM_ANALYSIS_COST_H_
