#include "analysis/cfg.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/logging.h"

namespace ipim {

namespace {

bool
validOp(const Instruction &inst)
{
    return u8(inst.op) < u8(Opcode::kNumOpcodes);
}

bool
isBranch(const Instruction &inst)
{
    return validOp(inst) &&
           (inst.op == Opcode::kJump || inst.op == Opcode::kCjump);
}

/**
 * The reaching definition of branch-target register @p reg at @p branch:
 * the last seti_crf/calc_crf writing it in program order.  Returns the
 * resolved instruction index, or -1 when the target is dynamic
 * (calc_crf), missing, or out of range.  Mirrors the verifier's V08
 * reaching-definition convention: physical CRF registers are reused
 * after coloring, so only the last write may be judged.
 */
int
resolveTarget(const std::vector<Instruction> &prog, size_t branch,
              u16 reg)
{
    for (size_t j = branch; j-- > 0;) {
        const Instruction &inst = prog[j];
        if (!validOp(inst))
            continue;
        if (inst.op == Opcode::kSetiCrf && inst.dst == reg) {
            if (inst.imm < 0 || u64(inst.imm) >= prog.size())
                return -1;
            return int(inst.imm);
        }
        if (inst.op == Opcode::kCalcCrf && inst.dst == reg)
            return -1;
    }
    return -1;
}

} // namespace

bool
NaturalLoop::contains(int blockId) const
{
    return std::binary_search(blocks.begin(), blocks.end(), blockId);
}

Cfg
Cfg::build(const std::vector<Instruction> &prog)
{
    Cfg g;
    g.prog_ = prog;
    if (prog.empty())
        return g;

    // ---- leaders ----
    std::set<u32> leaders{0};
    for (size_t i = 0; i < prog.size(); ++i) {
        const Instruction &inst = prog[i];
        if (!validOp(inst))
            continue;
        if (isBranch(inst)) {
            int tgt = resolveTarget(prog, i, inst.dst);
            if (tgt >= 0)
                leaders.insert(u32(tgt));
            if (i + 1 < prog.size())
                leaders.insert(u32(i + 1));
        } else if (inst.op == Opcode::kHalt ||
                   inst.op == Opcode::kSync) {
            // halt ends control flow; sync is kept a block terminator so
            // sync-phase segments align with block boundaries.
            if (i + 1 < prog.size())
                leaders.insert(u32(i + 1));
        }
    }

    // ---- blocks ----
    g.blockOf_.assign(prog.size(), -1);
    for (auto it = leaders.begin(); it != leaders.end(); ++it) {
        auto next = std::next(it);
        BasicBlock bb;
        bb.id = int(g.blocks_.size());
        bb.first = *it;
        bb.last = next == leaders.end() ? u32(prog.size() - 1)
                                        : u32(*next - 1);
        for (u32 i = bb.first; i <= bb.last; ++i)
            g.blockOf_[i] = bb.id;
        g.blocks_.push_back(std::move(bb));
    }

    // ---- edges ----
    auto addEdge = [&](int from, int to) {
        g.blocks_[size_t(from)].succs.push_back(to);
        g.blocks_[size_t(to)].preds.push_back(from);
    };
    for (BasicBlock &bb : g.blocks_) {
        const Instruction &term = prog[bb.last];
        bool fallsThrough = true;
        if (isBranch(term)) {
            fallsThrough = term.op == Opcode::kCjump;
            int tgt = resolveTarget(prog, bb.last, term.dst);
            if (tgt >= 0) {
                addEdge(bb.id, g.blockOf_[size_t(tgt)]);
            } else {
                bb.unresolvedTarget = true;
                g.targetsResolved_ = false;
            }
        } else if (validOp(term) && term.op == Opcode::kHalt) {
            fallsThrough = false;
        }
        if (fallsThrough && bb.id + 1 < int(g.blocks_.size()))
            addEdge(bb.id, bb.id + 1);
    }

    g.computeRpo();
    g.computeDominators();
    g.findLoops();
    return g;
}

void
Cfg::computeRpo()
{
    std::vector<int> post;
    std::vector<u8> state(blocks_.size(), 0); // 0 new, 1 open, 2 done
    std::vector<int> stack{0};
    while (!stack.empty()) {
        int b = stack.back();
        if (state[size_t(b)] == 0) {
            state[size_t(b)] = 1;
            blocks_[size_t(b)].reachable = true;
            for (int s : blocks_[size_t(b)].succs)
                if (state[size_t(s)] == 0)
                    stack.push_back(s);
        } else {
            stack.pop_back();
            if (state[size_t(b)] == 1) {
                state[size_t(b)] = 2;
                post.push_back(b);
            }
        }
    }
    rpo_.assign(post.rbegin(), post.rend());
}

void
Cfg::computeDominators()
{
    if (rpo_.empty())
        return;
    // Cooper/Harvey/Kennedy iterative dominators over RPO numbers.
    std::vector<int> rpoNum(blocks_.size(), -1);
    for (size_t k = 0; k < rpo_.size(); ++k)
        rpoNum[size_t(rpo_[k])] = int(k);

    std::vector<int> idom(blocks_.size(), -1);
    int entry = rpo_[0];
    idom[size_t(entry)] = entry;

    auto intersect = [&](int a, int b) {
        while (a != b) {
            while (rpoNum[size_t(a)] > rpoNum[size_t(b)])
                a = idom[size_t(a)];
            while (rpoNum[size_t(b)] > rpoNum[size_t(a)])
                b = idom[size_t(b)];
        }
        return a;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t k = 1; k < rpo_.size(); ++k) {
            int b = rpo_[k];
            int newIdom = -1;
            for (int p : blocks_[size_t(b)].preds) {
                if (idom[size_t(p)] < 0)
                    continue; // unprocessed or unreachable
                newIdom = newIdom < 0 ? p : intersect(p, newIdom);
            }
            if (newIdom >= 0 && idom[size_t(b)] != newIdom) {
                idom[size_t(b)] = newIdom;
                changed = true;
            }
        }
    }
    for (BasicBlock &bb : blocks_)
        bb.idom = bb.id == entry ? -1 : idom[size_t(bb.id)];
}

bool
Cfg::dominates(int a, int b) const
{
    if (!blocks_[size_t(a)].reachable || !blocks_[size_t(b)].reachable)
        return false;
    int x = b;
    while (x >= 0) {
        if (x == a)
            return true;
        x = blocks_[size_t(x)].idom;
    }
    return false;
}

void
Cfg::findLoops()
{
    // Back edges u->h with h dominating u; loops sharing a header merge.
    std::vector<std::pair<int, int>> backEdges;
    for (const BasicBlock &bb : blocks_) {
        if (!bb.reachable)
            continue;
        for (int s : bb.succs)
            if (dominates(s, bb.id))
                backEdges.push_back({bb.id, s});
    }

    std::vector<int> headerLoop(blocks_.size(), -1);
    for (auto [latch, header] : backEdges) {
        int li = headerLoop[size_t(header)];
        if (li < 0) {
            li = int(loops_.size());
            headerLoop[size_t(header)] = li;
            loops_.push_back({});
            loops_[size_t(li)].header = header;
            loops_[size_t(li)].blocks.push_back(header);
        }
        NaturalLoop &loop = loops_[size_t(li)];
        loop.latches.push_back(latch);
        // Body: blocks reaching the latch backwards without crossing
        // the header (which is already in `body`, stopping the walk).
        std::vector<int> stack{latch};
        std::set<int> body(loop.blocks.begin(), loop.blocks.end());
        while (!stack.empty()) {
            int b = stack.back();
            stack.pop_back();
            if (!body.insert(b).second)
                continue;
            for (int p : blocks_[size_t(b)].preds)
                stack.push_back(p);
        }
        loop.blocks.assign(body.begin(), body.end());
    }

    // Nesting: the parent of L is the smallest other loop containing
    // L's header.
    for (size_t i = 0; i < loops_.size(); ++i) {
        size_t best = loops_.size();
        for (size_t j = 0; j < loops_.size(); ++j) {
            if (j == i || !loops_[j].contains(loops_[i].header))
                continue;
            if (loops_[j].blocks.size() <= loops_[i].blocks.size())
                continue; // equal-size would be the loop itself
            if (best == loops_.size() ||
                loops_[j].blocks.size() < loops_[best].blocks.size())
                best = j;
        }
        loops_[i].parent = best == loops_.size() ? -1 : int(best);
    }
    for (NaturalLoop &loop : loops_) {
        loop.depth = 1;
        for (int p = loop.parent; p >= 0; p = loops_[size_t(p)].parent)
            ++loop.depth;
    }
}

int
Cfg::innermostLoop(int blockId) const
{
    int best = -1;
    for (size_t i = 0; i < loops_.size(); ++i) {
        if (!loops_[i].contains(blockId))
            continue;
        if (best < 0 ||
            loops_[i].blocks.size() < loops_[size_t(best)].blocks.size())
            best = int(i);
    }
    return best;
}

int
Cfg::loopDepth(int blockId) const
{
    int depth = 0;
    for (const NaturalLoop &loop : loops_)
        if (loop.contains(blockId))
            ++depth;
    return depth;
}

f64
Cfg::frequency(int blockId) const
{
    f64 freq = 1.0;
    for (const NaturalLoop &loop : loops_)
        if (loop.contains(blockId) && loop.tripCount > 0)
            freq *= f64(loop.tripCount);
    return freq;
}

std::string
Cfg::toDot(const std::string &name) const
{
    std::ostringstream os;
    os << "digraph \"" << name << "\" {\n"
       << "  node [shape=box, fontname=\"monospace\"];\n";
    for (const BasicBlock &bb : blocks_) {
        os << "  b" << bb.id << " [label=\"B" << bb.id << " ["
           << bb.first << ".." << bb.last << "]";
        int li = innermostLoop(bb.id);
        if (li >= 0 && loops_[size_t(li)].header == bb.id) {
            os << "\\nloop";
            if (loops_[size_t(li)].tripCount > 0)
                os << " x" << loops_[size_t(li)].tripCount;
        }
        const Instruction &term = prog_[bb.last];
        if (u8(term.op) < u8(Opcode::kNumOpcodes))
            os << "\\n" << opcodeName(term.op);
        os << "\"";
        if (!bb.reachable)
            os << ", style=dashed";
        os << "];\n";
    }
    for (const BasicBlock &bb : blocks_) {
        for (int s : bb.succs) {
            os << "  b" << bb.id << " -> b" << s;
            if (dominates(s, bb.id) && bb.reachable)
                os << " [style=bold, color=firebrick]"; // back edge
            os << ";\n";
        }
        if (bb.unresolvedTarget)
            os << "  b" << bb.id
               << " -> unresolved [style=dotted];\n";
    }
    os << "}\n";
    return os.str();
}

} // namespace ipim
