/**
 * @file
 * Cross-vault / cross-cube memory conflict analysis.
 *
 * Vaults synchronize only at sync barriers (Sec. IV-D master/slave
 * rendezvous); between two consecutive barriers every vault executes
 * one "phase segment" concurrently with every other vault's
 * same-numbered segment.  Two access paths escape the issue-time
 * hazard scoreboard entirely:
 *
 *  - a req's remote bank read is serviced at the owner vault's memory
 *    controller without consulting the owner core's scoreboard, so it
 *    races any owner bank write in the same segment (V14 same cube,
 *    V15 across the SERDES link);
 *  - a req's response is written into the issuer's VSM directly on
 *    arrival (Vault::deliver), and the scoreboard has no VSM
 *    write-write rule, so overlapping staging writes with no ordering
 *    VSM read in between are last-arrival-wins nondeterminism (V16).
 *
 * The analysis partitions each vault program into segments,
 * symbolically intersects the access extents (ranges.h) across vaults
 * per segment, and reports provable overlaps plus two structural
 * preconditions: monotone sync phase ids (V17) and no self-targeted
 * req (V18, which bypasses the issuer's own scoreboard).  Extents it
 * cannot resolve are counted as unproved coverage, never reported —
 * the output doubles as the static independence proof gating the
 * parallel-PDES roadmap item.
 */
#ifndef IPIM_ANALYSIS_CONFLICT_H_
#define IPIM_ANALYSIS_CONFLICT_H_

#include <string>
#include <vector>

#include "analysis/analysis.h"

namespace ipim {

/** One conflict-analysis finding (mapped to rules V14-V18). */
struct ConflictFinding
{
    enum class Kind : u8 {
        kBankOverlap,    ///< V14 req remote read vs owner bank write
        kSerdesOverlap,  ///< V15 same, across cubes
        kStagingOverlap, ///< V16 unordered VSM staging write overlap
        kSyncStructure,  ///< V17 non-monotone sync phase ids
        kReqSelf,        ///< V18 req routed to the issuing vault
    };

    Kind kind;
    int vault = -1;      ///< global vault of the anchoring instruction
    int index = -1;      ///< instruction index in that vault program
    int otherVault = -1; ///< peer vault for cross-vault findings
    int otherIndex = -1; ///< peer instruction index
    int segment = -1;    ///< sync-phase segment
    std::string message;
};

/** Proof coverage counters for the independence summary. */
struct IndependenceStats
{
    u64 pairsChecked = 0;   ///< access pairs examined
    u64 provenDisjoint = 0; ///< pairs with disjoint known extents
    u64 unproved = 0;       ///< pairs with an unknown extent
    u64 segments = 0;       ///< sync-phase segments compared
};

/** Findings plus coverage for one device program. */
struct ConflictReport
{
    std::vector<ConflictFinding> findings;
    IndependenceStats stats;
    /// False when segmentation failed somewhere (sync inside a loop or
    /// unresolved branch targets); cross-vault checks were skipped.
    bool complete = true;

    bool
    independent() const
    {
        return complete && findings.empty() && stats.unproved == 0;
    }
};

/**
 * Per-program structural check: V17 phase monotonicity over the
 * reachable syncs.  @p vault only tags the findings.
 */
std::vector<ConflictFinding>
checkSyncStructure(const ProgramAnalysis &pa, int vault = -1);

/**
 * All conflict checks that need no device context: V17 sync structure
 * plus V16 staging-write overlap within the program.  Used by
 * verifyProgram; verifyDevice uses analyzeDeviceConflicts instead
 * (which subsumes these per vault).
 */
ConflictReport checkProgramConflicts(const ProgramAnalysis &pa,
                                     int vault = -1);

/**
 * Full cross-vault analysis.  @p analyses is indexed by global vault
 * (chip-major) and must come from analyzeProgram() with the matching
 * chip/vault context; @p analyses[v] entries may be null for empty
 * programs.  Assumes V10 (equal sync sequences) already holds — call
 * only when it does.
 */
ConflictReport
analyzeDeviceConflicts(const HardwareConfig &hw,
                       const std::vector<const ProgramAnalysis *>
                           &analyses);

const char *conflictKindName(ConflictFinding::Kind k);

} // namespace ipim

#endif // IPIM_ANALYSIS_CONFLICT_H_
