#include "analysis/analysis.h"

#include <algorithm>

namespace ipim {

int
ProgramAnalysis::segmentOf(u32 instIdx) const
{
    int seg = 0;
    for (const auto &[idx, phase] : syncs) {
        if (idx < instIdx)
            ++seg;
        else
            break;
    }
    return seg;
}

ProgramAnalysis
analyzeProgram(const HardwareConfig &hw,
               const std::vector<Instruction> &prog, int chip,
               int vaultInCube)
{
    ProgramAnalysis pa;
    pa.cfg = std::make_unique<Cfg>(Cfg::build(prog));

    CrfConstProp cp = runCrfConstProp(hw, *pa.cfg);
    deriveTripCounts(hw, *pa.cfg, cp);

    pa.ranges = ValueRanges::run(hw, *pa.cfg, chip, vaultInCube);
    pa.extents = computeAccessExtents(hw, pa.ranges);

    pa.segmentable = pa.cfg->targetsResolved();
    for (int b = 0; b < pa.cfg->numBlocks(); ++b) {
        const BasicBlock &bb = pa.cfg->block(b);
        if (!bb.reachable)
            continue;
        for (u32 i = bb.first; i <= bb.last; ++i) {
            const Instruction &inst = prog[i];
            if (u8(inst.op) >= u8(Opcode::kNumOpcodes) ||
                inst.op != Opcode::kSync)
                continue;
            pa.syncs.push_back({i, inst.phaseId});
            if (pa.cfg->loopDepth(b) > 0)
                pa.segmentable = false;
        }
    }
    std::sort(pa.syncs.begin(), pa.syncs.end());
    return pa;
}

} // namespace ipim
