/**
 * @file
 * Interval value-range analysis over the CtrlRF (core-scalar) and the
 * AddrRF (per-PE, merged over the vault's PEs), and the per-instruction
 * memory access extents derived from it.
 *
 * Indirect addressing resolves through registers whose values the
 * compiler derives from the hardware-initialized identity registers
 * (PE/PG/vault/chip id) and counted-loop induction variables, so a
 * small abstract domain — intervals seeded with the identity ranges,
 * stepped by interval arithmetic, and summarized over loops with
 * statically known trip counts — recovers a byte-precise
 * over-approximation of every bank/PGSM/VSM address an instruction can
 * touch.  Those extents are the raw material of the cross-vault
 * conflict proofs (conflict.h): "provably disjoint" extents license
 * parallel simulation, overlapping ones are reported, unknown ones are
 * counted as unproved coverage.
 */
#ifndef IPIM_ANALYSIS_RANGES_H_
#define IPIM_ANALYSIS_RANGES_H_

#include <vector>

#include "analysis/cfg.h"
#include "common/config.h"

namespace ipim {

/** Inclusive integer interval with Top (unvisited) and Unknown. */
struct ValueInterval
{
    enum Kind : u8 { kTop, kKnown, kUnknown };
    Kind kind = kTop;
    i64 lo = 0;
    i64 hi = 0;

    static ValueInterval cst(i64 v) { return {kKnown, v, v}; }
    static ValueInterval range(i64 l, i64 h) { return {kKnown, l, h}; }
    static ValueInterval unknown() { return {kUnknown, 0, 0}; }

    bool known() const { return kind == kKnown; }
    bool isConst() const { return kind == kKnown && lo == hi; }
    bool operator==(const ValueInterval &o) const = default;

    /** Lattice join (union hull). */
    void join(const ValueInterval &o);
};

/** Interval transfer for one ALU op; unknown when not representable. */
ValueInterval intervalEval(AluOp op, const ValueInterval &a, const ValueInterval &b);

/** A loop induction register: one in-loop `calc add/sub r, r, #k`. */
struct InductionVar
{
    RegFile file = RegFile::kCrf; ///< kCrf or kArf
    u16 reg = 0;
    i64 step = 0;
};

/** Register interval state at one program point. */
struct RangeState
{
    std::vector<ValueInterval> crf;
    std::vector<ValueInterval> arf;

    bool operator==(const RangeState &o) const = default;
};

/**
 * Solved value ranges for one vault program.  @p vaultInCube / @p chip
 * pin the identity-register seeds when the caller has device context
 * (verifyDevice, conflict analysis); pass -1 to widen them to the full
 * geometry range.
 */
class ValueRanges
{
  public:
    static ValueRanges run(const HardwareConfig &hw, const Cfg &cfg,
                           int chip = -1, int vaultInCube = -1);

    const Cfg &cfg() const { return *cfg_; }
    const RangeState &blockIn(int b) const { return blockIn_[size_t(b)]; }

    /** State just before instruction @p instIdx executes. */
    RangeState atInst(u32 instIdx) const;

    /** Induction registers of loop @p loopIdx (see cfg().loops()). */
    const std::vector<InductionVar> &
    induction(int loopIdx) const
    {
        return induction_[size_t(loopIdx)];
    }

    /**
     * Per-iteration address step of @p m at instruction @p instIdx
     * inside its innermost loop: 0 when the address is loop-invariant,
     * the induction step when the addressing register is an induction
     * variable, or nullopt-like kUnknownStep otherwise.
     */
    static constexpr i64 kUnknownStep = i64(1) << 62;
    i64 addressStep(u32 instIdx, const MemOperand &m,
                    RegFile addrFile) const;

    /** Resolved byte-address interval of @p m in state @p s. */
    ValueInterval resolve(const RangeState &s, const MemOperand &m,
                     RegFile addrFile) const;

    void applyInst(RangeState &s, u32 instIdx) const;

  private:
    const HardwareConfig *hw_ = nullptr;
    const Cfg *cfg_ = nullptr;
    std::vector<RangeState> blockIn_;
    std::vector<std::vector<InductionVar>> induction_;

    RangeState seedState(int chip, int vaultInCube) const;
    RangeState topState() const;
    void joinState(RangeState &into, const RangeState &o) const;
    i64 regStep(int loopIdx, RegFile file, u16 reg, int depth) const;
};

// ======================== access extents ===========================

/** A byte range [lo, hi) an instruction may access, or none/unknown. */
struct Extent
{
    enum Kind : u8 { kNone, kKnown, kUnknown };
    Kind kind = kNone;
    u64 lo = 0;
    u64 hi = 0;

    static Extent none() { return {}; }
    static Extent unknown() { return {kUnknown, 0, 0}; }
    static Extent bytes(u64 l, u64 h) { return {kKnown, l, h}; }

    bool exists() const { return kind != kNone; }

    /** Both known and the byte ranges intersect. */
    static bool
    provenOverlap(const Extent &a, const Extent &b)
    {
        return a.kind == kKnown && b.kind == kKnown && a.lo < b.hi &&
               b.lo < a.hi;
    }

    /** Provably no byte in common: both known and disjoint. */
    static bool
    provenDisjoint(const Extent &a, const Extent &b)
    {
        if (!a.exists() || !b.exists())
            return true;
        return a.kind == kKnown && b.kind == kKnown &&
               (a.hi <= b.lo || b.hi <= a.lo);
    }
};

/** Memory footprint of one instruction over all its executions. */
struct InstMemAccess
{
    Extent bankRead, bankWrite;
    Extent pgsmRead, pgsmWrite;
    Extent vsmRead, vsmWrite;

    // req-only fields
    bool isReq = false;
    u16 dstChip = 0, dstVault = 0, dstPg = 0, dstPe = 0;
    Extent remoteBank; ///< remote bank bytes read at the owner vault
    /// Per-loop-iteration step of the VSM staging (or wr_vsm) address;
    /// ValueRanges::kUnknownStep when not derivable.
    i64 vsmWriteStep = 0;
};

/**
 * Compute the full-program access extent of every instruction: the
 * union over loop iterations and executing PEs of each resolved
 * address range.  Indexed by instruction.
 */
std::vector<InstMemAccess> computeAccessExtents(const HardwareConfig &hw,
                                                const ValueRanges &vr);

} // namespace ipim

#endif // IPIM_ANALYSIS_RANGES_H_
