/**
 * @file
 * Control-flow graph over a finalized SIMB vault program.
 *
 * The control core is a single-issue in-order machine whose only
 * control transfers are jump/cjump through CRF-held targets
 * (Sec. IV-B).  Compiler-emitted programs materialize every target with
 * a seti_crf whose definition dominates the branch, so targets resolve
 * with a linear reaching-definition scan; a target defined by calc_crf
 * (or not at all) leaves the branch "unresolved" and downstream
 * path-sensitive analyses must refuse the program (V08 reports it).
 *
 * The graph carries the structure every analysis in this directory
 * shares: basic blocks, edges, reverse postorder, dominators, natural
 * loops, and — once dataflow has run (see dataflow.h) — static loop
 * trip counts and block execution frequencies.
 */
#ifndef IPIM_ANALYSIS_CFG_H_
#define IPIM_ANALYSIS_CFG_H_

#include <string>
#include <vector>

#include "common/types.h"
#include "isa/instruction.h"

namespace ipim {

/** One maximal straight-line instruction range [first, last]. */
struct BasicBlock
{
    int id = -1;
    u32 first = 0; ///< index of the leader instruction
    u32 last = 0;  ///< index of the terminator (inclusive)
    std::vector<int> succs;
    std::vector<int> preds;
    /// Immediate dominator block id; -1 for the entry block and for
    /// unreachable blocks.
    int idom = -1;
    bool reachable = false;
    /// Terminator is a jump/cjump whose target could not be resolved to
    /// a static instruction index (its edge is missing from succs).
    bool unresolvedTarget = false;
};

/** One natural loop (back edge whose target dominates its source). */
struct NaturalLoop
{
    int header = -1;          ///< header block id
    std::vector<int> latches; ///< back-edge source blocks
    std::vector<int> blocks;  ///< member block ids, sorted ascending
    int parent = -1;          ///< index of the enclosing loop, -1 if top
    int depth = 1;            ///< nesting depth (1 = outermost)

    /// Static iteration count derived from the builder's counted-loop
    /// idiom (seti_crf N / calc_crf add c,c,step / cjump c): -1 when
    /// not derivable.  Filled by deriveTripCounts() in dataflow.h.
    i64 tripCount = -1;
    u16 counterCrf = 0xFFFF; ///< loop-counter CRF register when derived
    i64 counterStep = 0;     ///< per-iteration counter increment

    bool contains(int blockId) const;
};

/** CFG plus derived structure for one finalized vault program. */
class Cfg
{
  public:
    /**
     * Partition @p prog into blocks and build edges/dominators/loops.
     * The graph owns a copy of @p prog, so callers may pass a
     * temporary.  Instructions with out-of-ISA opcode bytes terminate
     * analysis value-wise but still belong to a block, mirroring the
     * verifier's "report once, then skip" convention.
     */
    static Cfg build(const std::vector<Instruction> &prog);

    const std::vector<Instruction> &prog() const { return prog_; }
    int numBlocks() const { return int(blocks_.size()); }
    const BasicBlock &block(int id) const { return blocks_[size_t(id)]; }
    BasicBlock &block(int id) { return blocks_[size_t(id)]; }
    const std::vector<BasicBlock> &blocks() const { return blocks_; }

    /** Block containing instruction @p instIdx. */
    int blockOf(u32 instIdx) const { return blockOf_[instIdx]; }

    /** Reverse postorder over reachable blocks (entry first). */
    const std::vector<int> &rpo() const { return rpo_; }

    /** True when every branch target resolved to a static index. */
    bool targetsResolved() const { return targetsResolved_; }

    /** True when @p a dominates @p b (both reachable, reflexive). */
    bool dominates(int a, int b) const;

    const std::vector<NaturalLoop> &loops() const { return loops_; }
    std::vector<NaturalLoop> &loops() { return loops_; }

    /** Innermost loop containing @p blockId, -1 when outside loops. */
    int innermostLoop(int blockId) const;

    /** Loop nesting depth of a block (0 = not in any loop). */
    int loopDepth(int blockId) const;

    /**
     * Static execution count of a block: the product of the trip
     * counts of every enclosing loop, with unknown trip counts
     * contributing a factor of 1 (a deliberate lower bound; see
     * CostEstimate::complete).
     */
    f64 frequency(int blockId) const;

    /** Graphviz rendering (one node per block, edge per transfer). */
    std::string toDot(const std::string &name) const;

  private:
    std::vector<Instruction> prog_;
    std::vector<BasicBlock> blocks_;
    std::vector<int> blockOf_;
    std::vector<int> rpo_;
    std::vector<NaturalLoop> loops_;
    bool targetsResolved_ = true;

    void computeRpo();
    void computeDominators();
    void findLoops();
};

} // namespace ipim

#endif // IPIM_ANALYSIS_CFG_H_
