/**
 * @file
 * One-call bundle of the per-program analyses: CFG, CRF constant
 * propagation, loop trip counts, value ranges, and per-instruction
 * access extents.  The Cfg is heap-allocated so the bundle can be
 * moved while ValueRanges and the dataflow results keep pointing at a
 * stable graph.
 */
#ifndef IPIM_ANALYSIS_ANALYSIS_H_
#define IPIM_ANALYSIS_ANALYSIS_H_

#include <memory>
#include <vector>

#include "analysis/cfg.h"
#include "analysis/dataflow.h"
#include "analysis/ranges.h"

namespace ipim {

/** All per-program analysis artifacts for one vault program. */
struct ProgramAnalysis
{
    std::unique_ptr<Cfg> cfg;
    ValueRanges ranges;
    std::vector<InstMemAccess> extents;

    /// Reachable sync instructions in program order (index, phaseId);
    /// the boundaries of the conflict analysis' phase segments.
    std::vector<std::pair<u32, u32>> syncs;
    /// False when a reachable sync sits inside a loop or a branch
    /// target is unresolved: phase segmentation (and with it the
    /// conflict analysis) is then impossible.
    bool segmentable = true;

    /**
     * Sync-phase segment of instruction @p instIdx: the number of
     * reachable syncs strictly before it in program order.  Segment k
     * of every vault executes inside the same pair of barriers, so
     * only same-segment accesses can overlap in time (Sec. IV-D).
     */
    int segmentOf(u32 instIdx) const;

    /** Number of segments (sync count + 1). */
    int numSegments() const { return int(syncs.size()) + 1; }
};

/**
 * Run the full per-program analysis pipeline.  @p chip / @p vaultInCube
 * pin the identity-register seeds when device context is known; pass
 * -1 to cover the whole geometry.
 */
ProgramAnalysis analyzeProgram(const HardwareConfig &hw,
                               const std::vector<Instruction> &prog,
                               int chip = -1, int vaultInCube = -1);

} // namespace ipim

#endif // IPIM_ANALYSIS_ANALYSIS_H_
