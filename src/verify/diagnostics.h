/**
 * @file
 * Structured diagnostics for the SIMB static verifier.
 *
 * Every finding carries a stable rule id (documented in DESIGN.md Sec. 10
 * with its paper justification), a severity, and the instruction it
 * anchors to, so that callers — the `ipim verify` subcommand, the
 * compile-time hook, tests — can filter, count, and render findings
 * uniformly instead of parsing free-form fatal() strings.
 */
#ifndef IPIM_VERIFY_DIAGNOSTICS_H_
#define IPIM_VERIFY_DIAGNOSTICS_H_

#include <string>
#include <vector>

#include "common/types.h"

namespace ipim {

/** Severity of one verifier finding. */
enum class Severity : u8 {
    kNote,    ///< explanatory follow-up to another diagnostic
    kWarning, ///< suspicious but executable (lints)
    kError,   ///< the program is malformed; simulation is refused
};

/**
 * Stable verifier rule identifiers.  The numeric part of the printed id
 * ("V01".."V18") is the enum value + 1 and must never be reordered —
 * suppressions and docs reference it.
 */
enum class Rule : u8 {
    kRegBounds,       ///< V01 register-file index out of range
    kMemBounds,       ///< V02 direct bank/PGSM/VSM address out of range
    kPgsmStride,      ///< V03 rd/wr_pgsm lane stride zero or misaligned
    kScratchBank,     ///< V04 scratchBank hint contradicts address range
    kSimbMask,        ///< V05 empty or out-of-range simb_mask
    kVecMask,         ///< V06 bad vec_mask / mov lane selector
    kUnresolvedLabel, ///< V07 label survived program finalization
    kBranchTarget,    ///< V08 jump/cjump target bad or uninitialized
    kHalt,            ///< V09 missing/unreachable halt, unreachable code
    kSyncPhase,       ///< V10 cross-vault sync phase mismatch
    kReadBeforeWrite, ///< V11 DRF/ARF/CRF read with no prior write
    kDeadWrite,       ///< V12 register write overwritten before any read
    kEncoding,        ///< V13 encode/decode round-trip mismatch
    kConflictBank,    ///< V14 req remote read overlaps owner bank write
    kConflictSerdes,  ///< V15 same overlap across the SERDES link
    kConflictStaging, ///< V16 unordered VSM staging-write overlap
    kSyncStructure,   ///< V17 adjacent syncs share a phase id
    kReqSelf,         ///< V18 req routed to the issuing vault itself

    kNumRules,
};

/** "V01-reg-bounds" style stable identifier. */
std::string ruleId(Rule r);

/** Short kebab-case rule name without the number. */
const char *ruleName(Rule r);

const char *severityName(Severity s);

/** One verifier finding. */
struct Diagnostic
{
    Severity severity = Severity::kError;
    Rule rule = Rule::kRegBounds;
    /// Global vault index the program belongs to; -1 when the caller
    /// verified a single program without device context.
    int vault = -1;
    /// Instruction index inside the vault program; -1 for program-level
    /// findings (e.g. "program must end with halt").
    int index = -1;
    std::string message;

    /** "error[V01-reg-bounds] vault 3 inst 17: ..." rendering. */
    std::string toString() const;
};

/** An ordered collection of findings plus counting helpers. */
class VerifyReport
{
  public:
    void add(Diagnostic d) { diags_.push_back(std::move(d)); }

    /** Append every finding of @p other (device-level aggregation). */
    void merge(const VerifyReport &other);

    const std::vector<Diagnostic> &diagnostics() const { return diags_; }
    bool empty() const { return diags_.empty(); }

    size_t errorCount() const;
    size_t warningCount() const;

    /** True when the program may be simulated. */
    bool
    pass(bool warningsAsErrors = false) const
    {
        return errorCount() == 0 &&
               (!warningsAsErrors || warningCount() == 0);
    }

    /** All findings, one per line. */
    std::string toString() const;

  private:
    std::vector<Diagnostic> diags_;
};

} // namespace ipim

#endif // IPIM_VERIFY_DIAGNOSTICS_H_
