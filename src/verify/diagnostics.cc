#include "verify/diagnostics.h"

#include <cstdio>
#include <sstream>

#include "common/logging.h"

namespace ipim {

const char *
ruleName(Rule r)
{
    switch (r) {
      case Rule::kRegBounds: return "reg-bounds";
      case Rule::kMemBounds: return "mem-bounds";
      case Rule::kPgsmStride: return "pgsm-stride";
      case Rule::kScratchBank: return "scratch-bank";
      case Rule::kSimbMask: return "simb-mask";
      case Rule::kVecMask: return "vec-mask";
      case Rule::kUnresolvedLabel: return "unresolved-label";
      case Rule::kBranchTarget: return "branch-target";
      case Rule::kHalt: return "halt";
      case Rule::kSyncPhase: return "sync-phase";
      case Rule::kReadBeforeWrite: return "read-before-write";
      case Rule::kDeadWrite: return "dead-write";
      case Rule::kEncoding: return "encoding";
      case Rule::kConflictBank: return "conflict-bank";
      case Rule::kConflictSerdes: return "conflict-serdes";
      case Rule::kConflictStaging: return "conflict-staging";
      case Rule::kSyncStructure: return "sync-structure";
      case Rule::kReqSelf: return "req-self";
      default: panic("ruleName: bad rule ", int(r));
    }
}

std::string
ruleId(Rule r)
{
    char buf[8];
    std::snprintf(buf, sizeof(buf), "V%02d", int(r) + 1);
    return std::string(buf) + "-" + ruleName(r);
}

const char *
severityName(Severity s)
{
    switch (s) {
      case Severity::kNote: return "note";
      case Severity::kWarning: return "warning";
      case Severity::kError: return "error";
      default: panic("severityName: bad severity ", int(s));
    }
}

std::string
Diagnostic::toString() const
{
    std::ostringstream os;
    os << severityName(severity) << "[" << ruleId(rule) << "]";
    if (vault >= 0)
        os << " vault " << vault;
    if (index >= 0)
        os << " inst " << index;
    os << ": " << message;
    return os.str();
}

void
VerifyReport::merge(const VerifyReport &other)
{
    diags_.insert(diags_.end(), other.diags_.begin(), other.diags_.end());
}

size_t
VerifyReport::errorCount() const
{
    size_t n = 0;
    for (const Diagnostic &d : diags_)
        if (d.severity == Severity::kError)
            ++n;
    return n;
}

size_t
VerifyReport::warningCount() const
{
    size_t n = 0;
    for (const Diagnostic &d : diags_)
        if (d.severity == Severity::kWarning)
            ++n;
    return n;
}

std::string
VerifyReport::toString() const
{
    std::ostringstream os;
    for (const Diagnostic &d : diags_)
        os << d.toString() << "\n";
    return os.str();
}

} // namespace ipim
