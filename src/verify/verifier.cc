#include "verify/verifier.h"

#include <algorithm>
#include <bit>
#include <set>
#include <sstream>

#include "analysis/analysis.h"
#include "analysis/conflict.h"
#include "analysis/dataflow.h"
#include "common/logging.h"
#include "isa/encoding.h"

namespace ipim {

namespace {

/** Shared state of one program's verification run. */
struct Ctx
{
    const HardwareConfig &cfg;
    const std::vector<Instruction> &prog;
    const VerifierOptions &opts;
    int vault;
    VerifyReport &rep;

    /// valid[i]: opcode/aluOp bytes are inside the ISA; instructions
    /// failing this are reported once and skipped by every other pass.
    std::vector<bool> valid;
    std::vector<AccessSet> access; ///< access sets of valid instructions

    /// [begin, end] index ranges covered by a statically known backward
    /// branch; the sync-placement check is conservative inside them.
    std::vector<std::pair<size_t, size_t>> loopSpans;

    /// CFG over the program; built after checkOpcodes, shared by the
    /// control-flow, dataflow, and conflict passes.
    const Cfg *graph = nullptr;

    u32
    validSimbMask() const
    {
        u32 pes = cfg.pesPerVault();
        return pes >= 32 ? 0xFFFFFFFFu : ((1u << pes) - 1);
    }

    void
    diag(Severity sev, Rule rule, int index, std::string msg)
    {
        if (!opts.isEnabled(rule))
            return;
        rep.add({sev, rule, vault, index, std::move(msg)});
    }

    void
    error(Rule rule, int index, const std::string &msg)
    {
        diag(Severity::kError, rule, index, msg);
    }

    void
    warning(Rule rule, int index, const std::string &msg)
    {
        diag(Severity::kWarning, rule, index, msg);
    }

    bool
    inLoop(size_t idx) const
    {
        for (const auto &[b, e] : loopSpans)
            if (idx >= b && idx <= e)
                return true;
        return false;
    }
};

std::string
str(const char *fmtless)
{
    return fmtless;
}

template <typename... Args>
std::string
cat(const Args &...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

// ======================= opcode validity ==========================

void
checkOpcodes(Ctx &c)
{
    c.valid.assign(c.prog.size(), true);
    c.access.resize(c.prog.size());
    for (size_t i = 0; i < c.prog.size(); ++i) {
        const Instruction &inst = c.prog[i];
        if (u8(inst.op) >= u8(Opcode::kNumOpcodes)) {
            c.error(Rule::kEncoding, int(i),
                    cat("opcode byte ", int(u8(inst.op)),
                        " is outside the ISA"));
            c.valid[i] = false;
            continue;
        }
        if (u8(inst.aluOp) >= u8(AluOp::kNumAluOps)) {
            c.error(Rule::kEncoding, int(i),
                    cat("alu-op byte ", int(u8(inst.aluOp)),
                        " is outside the ISA: ", opcodeName(inst.op)));
            c.valid[i] = false;
            continue;
        }
        // ALU-op/unit validity, mirroring the dispatch in isa/alu.cc:
        // the f32 SIMD path has no modulo, and the scalar index units
        // (calc_arf/calc_crf) have neither mac nor the conversions.
        // The simulator panics/faults on these, so acceptance must
        // reject them statically.
        if (inst.op == Opcode::kComp && inst.dtype == DType::kF32 &&
            inst.aluOp == AluOp::kMod) {
            c.error(Rule::kEncoding, int(i),
                    "mod has no f32 SIMD implementation; use dtype i32");
            c.valid[i] = false;
            continue;
        }
        if ((inst.op == Opcode::kCalcArf ||
             inst.op == Opcode::kCalcCrf) &&
            (inst.aluOp == AluOp::kMac ||
             inst.aluOp == AluOp::kCvtF2I ||
             inst.aluOp == AluOp::kCvtI2F)) {
            c.error(Rule::kEncoding, int(i),
                    cat(aluOpName(inst.aluOp),
                        " is only valid as a comp (SIMD) operation"));
            c.valid[i] = false;
            continue;
        }
        c.access[i] = inst.accessSet();
    }
}

// ===================== V01 register bounds ========================

u32
regFileLimit(const HardwareConfig &cfg, RegFile f)
{
    switch (f) {
      case RegFile::kDrf: return cfg.dataRfEntries();
      case RegFile::kArf: return cfg.addrRfEntries();
      case RegFile::kCrf: return cfg.ctrlRfEntries;
      default: panic("regFileLimit: bad file ", int(f));
    }
}

const char *
regFileName(RegFile f)
{
    switch (f) {
      case RegFile::kDrf: return "DRF";
      case RegFile::kArf: return "ARF";
      case RegFile::kCrf: return "CRF";
      default: panic("regFileName: bad file ", int(f));
    }
}

void
checkRegisterBounds(Ctx &c)
{
    for (size_t i = 0; i < c.prog.size(); ++i) {
        if (!c.valid[i])
            continue;
        const AccessSet &acc = c.access[i];
        auto check = [&](const RegRef &ref, const char *dir) {
            u32 limit = regFileLimit(c.cfg, ref.file);
            if (ref.idx >= limit)
                c.error(Rule::kRegBounds, int(i),
                        cat(dir, " ", regFileName(ref.file), " index ",
                            ref.idx, " >= file size ", limit, ": ",
                            c.prog[i].toString()));
        };
        for (u8 r = 0; r < acc.numReads; ++r)
            check(acc.reads[r], "read of");
        for (u8 w = 0; w < acc.numWrites; ++w)
            check(acc.writes[w], "write of");
    }
}

// ====================== V02 memory bounds =========================

void
checkDirectRange(Ctx &c, size_t i, const MemOperand &m, u64 span,
                 u64 capacity, const char *what)
{
    if (m.indirect)
        return; // per-PE AddrRF value; checkable only at issue time
    if (u64(m.value) + span > capacity)
        c.error(Rule::kMemBounds, int(i),
                cat(what, " byte offset ", m.value, " + ", span,
                    " exceeds capacity ", capacity, ": ",
                    c.prog[i].toString()));
    else if (m.value % 4 != 0)
        c.warning(Rule::kMemBounds, int(i),
                  cat(what, " byte offset ", m.value,
                      " is not 32b-lane aligned: ",
                      c.prog[i].toString()));
}

void
checkMemoryBounds(Ctx &c)
{
    const HardwareConfig &cfg = c.cfg;
    for (size_t i = 0; i < c.prog.size(); ++i) {
        if (!c.valid[i])
            continue;
        const Instruction &inst = c.prog[i];
        u64 pgsmSpan = u64(kSimdLanes - 1) * inst.pgsmStride + 4;
        switch (inst.op) {
          case Opcode::kStRf:
          case Opcode::kLdRf:
            checkDirectRange(c, i, inst.dramAddr, kVectorBytes,
                             cfg.bankBytes, "bank");
            break;
          case Opcode::kStPgsm:
          case Opcode::kLdPgsm:
            checkDirectRange(c, i, inst.dramAddr, kVectorBytes,
                             cfg.bankBytes, "bank");
            checkDirectRange(c, i, inst.pgsmAddr, kVectorBytes,
                             cfg.pgsmBytes, "PGSM");
            break;
          case Opcode::kRdPgsm:
          case Opcode::kWrPgsm:
            checkDirectRange(c, i, inst.pgsmAddr, pgsmSpan,
                             cfg.pgsmBytes, "PGSM");
            break;
          case Opcode::kRdVsm:
          case Opcode::kWrVsm:
            checkDirectRange(c, i, inst.vsmAddr, kVectorBytes,
                             cfg.vsmBytes, "VSM");
            break;
          case Opcode::kSetiVsm:
            if (inst.vsmAddr.indirect)
                c.error(Rule::kMemBounds, int(i),
                        cat("seti_vsm requires a direct VSM address: ",
                            inst.toString()));
            else
                checkDirectRange(c, i, inst.vsmAddr, 4, cfg.vsmBytes,
                                 "VSM");
            break;
          case Opcode::kReq: {
            checkDirectRange(c, i, inst.dramAddr, kVectorBytes,
                             cfg.bankBytes, "remote bank");
            checkDirectRange(c, i, inst.vsmAddr, kVectorBytes,
                             cfg.vsmBytes, "VSM staging");
            auto route = [&](u32 v, u32 limit, const char *unit) {
                if (v >= limit)
                    c.error(Rule::kMemBounds, int(i),
                            cat("req routes to ", unit, " ", v,
                                " but the device has ", limit, ": ",
                                inst.toString()));
            };
            route(inst.dstChip, cfg.cubes, "chip");
            route(inst.dstVault, cfg.vaultsPerCube, "vault");
            route(inst.dstPg, cfg.pgsPerVault, "PG");
            route(inst.dstPe, cfg.pesPerPg, "PE");
            break;
          }
          default:
            break;
        }
    }
}

// =================== V03 PGSM stride, V04 hints ===================

void
checkPgsmStride(Ctx &c)
{
    for (size_t i = 0; i < c.prog.size(); ++i) {
        if (!c.valid[i])
            continue;
        const Instruction &inst = c.prog[i];
        if (inst.op != Opcode::kRdPgsm && inst.op != Opcode::kWrPgsm)
            continue;
        if (inst.pgsmStride == 0) {
            // rd_pgsm with stride 0 is the compiler's splat-read idiom
            // (broadcast one 32b word to all lanes) and is fine; the
            // write direction would make four lanes race on one word.
            if (inst.op == Opcode::kWrPgsm)
                c.error(Rule::kPgsmStride, int(i),
                        cat("wr_pgsm with stride 0 writes all four "
                            "lanes to the same bytes: ",
                            inst.toString()));
        } else if (inst.pgsmStride % 4 != 0) {
            c.warning(Rule::kPgsmStride, int(i),
                      cat("PGSM lane stride ", inst.pgsmStride,
                          " is not a multiple of the 4-byte lane: ",
                          inst.toString()));
        }
    }
}

/**
 * The scratchBank hint tells the issue-time interlock that accesses
 * tagged with different non-zero hints touch disjoint PGSM regions
 * (compiler-managed double buffering).  If the statically known address
 * ranges of hint 1 and hint 2 overlap, the interlock would let a real
 * read-write hazard through — report the lie, not the race.
 */
void
checkScratchBankHints(Ctx &c)
{
    using Range = std::pair<u64, u64>; // [lo, hi)
    std::set<Range> ranges[2];
    for (size_t i = 0; i < c.prog.size(); ++i) {
        if (!c.valid[i])
            continue;
        const Instruction &inst = c.prog[i];
        if (!accessesPgsm(inst.op))
            continue;
        if (inst.scratchBank > 2) {
            c.error(Rule::kScratchBank, int(i),
                    cat("scratchBank hint ", int(inst.scratchBank),
                        " is not in {0,1,2}: ", inst.toString()));
            continue;
        }
        if (inst.scratchBank == 0 || inst.pgsmAddr.indirect)
            continue;
        u64 span = inst.op == Opcode::kRdPgsm ||
                           inst.op == Opcode::kWrPgsm
                       ? u64(kSimdLanes - 1) * inst.pgsmStride + 4
                       : u64(kVectorBytes);
        Range r{inst.pgsmAddr.value, u64(inst.pgsmAddr.value) + span};
        int side = inst.scratchBank - 1;
        ranges[side].insert(r);
        for (const Range &other : ranges[1 - side]) {
            if (r.first < other.second && other.first < r.second) {
                c.error(Rule::kScratchBank, int(i),
                        cat("scratchBank hint ", int(inst.scratchBank),
                            " touches PGSM bytes [", r.first, ", ",
                            r.second, ") which overlap hint ",
                            2 - side, " bytes [", other.first, ", ",
                            other.second, "): ", inst.toString()));
                break;
            }
        }
    }
}

// ==================== V05/V06 execution masks =====================

void
checkMasks(Ctx &c)
{
    for (size_t i = 0; i < c.prog.size(); ++i) {
        if (!c.valid[i])
            continue;
        const Instruction &inst = c.prog[i];
        if (isBroadcast(inst.op)) {
            if (inst.simbMask == 0)
                c.error(Rule::kSimbMask, int(i),
                        cat("broadcast with empty simb_mask is a no-op "
                            "the hardware refuses: ",
                            inst.toString()));
            else if (inst.simbMask & ~c.validSimbMask())
                c.error(Rule::kSimbMask, int(i),
                        cat("simb_mask 0x", std::hex, inst.simbMask,
                            std::dec, " names PEs beyond the ",
                            c.cfg.pesPerVault(), " configured: ",
                            inst.toString()));
        }
        bool laneSelect = inst.op == Opcode::kMovDrfToArf ||
                          inst.op == Opcode::kMovArfToDrf;
        if (laneSelect) {
            if (std::popcount(u32(inst.vecMask & kFullVecMask)) != 1 ||
                (inst.vecMask & ~kFullVecMask))
                c.error(Rule::kVecMask, int(i),
                        cat("mov lane selector must have exactly one of "
                            "the ", kSimdLanes, " lane bits set: ",
                            inst.toString()));
        } else if (inst.op == Opcode::kComp) {
            if (inst.vecMask & ~kFullVecMask)
                c.error(Rule::kVecMask, int(i),
                        cat("vec_mask has bits beyond the ", kSimdLanes,
                            " SIMD lanes: ", inst.toString()));
            else if (inst.vecMask == 0)
                c.warning(Rule::kVecMask, int(i),
                          cat("comp with empty vec_mask is a no-op: ",
                              inst.toString()));
        }
    }
}

// ================ V07/V08/V09 control-flow checks =================

/**
 * The defining write a branch-target CRF register holds at a branch:
 * the last seti_crf/calc_crf to it in program order before the branch.
 * Physical CRF registers are reused after coloring (a register can hold
 * a branch target in one live range and a data constant in another), so
 * only the reaching definition may be judged, not every write.
 */
struct ReachingDef
{
    int index = -1;       ///< defining instruction, -1 = none
    bool dynamic = false; ///< calc_crf: value not statically known
    i32 value = 0;        ///< seti_crf immediate
};

ReachingDef
reachingCrfDef(const Ctx &c, size_t branch, u16 reg)
{
    for (size_t j = branch; j-- > 0;) {
        if (!c.valid[j])
            continue;
        const Instruction &inst = c.prog[j];
        if (inst.op == Opcode::kSetiCrf && inst.dst == reg)
            return {int(j), false, inst.imm};
        if (inst.op == Opcode::kCalcCrf && inst.dst == reg)
            return {int(j), true, 0};
    }
    return {};
}

void
checkControlFlow(Ctx &c)
{
    if (c.prog.empty()) {
        c.error(Rule::kHalt, -1, str("program is empty"));
        return;
    }
    if (c.prog.back().op != Opcode::kHalt)
        c.error(Rule::kHalt, int(c.prog.size()) - 1,
                str("program must end with halt"));

    // V07: finalization must have resolved every label into an
    // instruction-index immediate (passes.cc clears `label` doing so).
    for (size_t i = 0; i < c.prog.size(); ++i) {
        if (c.valid[i] && c.prog[i].label >= 0)
            c.error(Rule::kUnresolvedLabel, int(i),
                    cat("branch label L", c.prog[i].label,
                        " was never resolved to an instruction index: ",
                        c.prog[i].toString()));
    }

    // V08: every branch-target register must have a reaching definition,
    // and a statically known one must land inside the program.  The CFG
    // (Cfg::build) resolves the same reaching definitions to construct
    // its edges; this pass only attributes the error cases.
    bool dynamicJump = false;
    for (size_t i = 0; i < c.prog.size(); ++i) {
        if (!c.valid[i])
            continue;
        const Instruction &inst = c.prog[i];
        if (inst.op != Opcode::kJump && inst.op != Opcode::kCjump)
            continue;
        ReachingDef def = reachingCrfDef(c, i, inst.dst);
        if (def.index < 0) {
            c.error(Rule::kBranchTarget, int(i),
                    cat("branch target register c", inst.dst,
                        " has no seti_crf/calc_crf before it (the "
                        "core would jump to the reset value 0): ",
                        inst.toString()));
        } else if (def.dynamic) {
            dynamicJump = true;
        } else if (def.value < 0 || u32(def.value) >= c.prog.size()) {
            c.error(Rule::kBranchTarget, int(i),
                    cat("branch target ", def.value, " (set at inst ",
                        def.index, ") lands outside the ",
                        c.prog.size(), "-instruction program: ",
                        inst.toString()));
        } else if (u32(def.value) <= i) {
            c.loopSpans.push_back({size_t(def.value), i});
        }
    }

    // V09: some halt must be reachable from entry; with a dynamic jump
    // target reachability is unknowable statically, so stay quiet.
    // Block reachability comes straight from the CFG.
    if (dynamicJump || c.graph == nullptr)
        return;
    const Cfg &g = *c.graph;
    auto reachable = [&](size_t i) {
        return g.block(g.blockOf(u32(i))).reachable;
    };
    bool haltReachable = false;
    for (size_t i = 0; i < c.prog.size(); ++i)
        if (c.valid[i] && c.prog[i].op == Opcode::kHalt &&
            reachable(i))
            haltReachable = true;
    if (!haltReachable)
        c.error(Rule::kHalt, -1,
                str("no halt is reachable from the program entry"));
    int unreachable = 0;
    for (size_t i = 0; i < c.prog.size(); ++i) {
        if (reachable(i) || !c.valid[i])
            continue;
        if (++unreachable <= 3)
            c.warning(Rule::kHalt, int(i),
                      cat("instruction is unreachable from entry: ",
                          c.prog[i].toString()));
    }
    if (unreachable > 3)
        c.warning(Rule::kHalt, -1,
                  cat(unreachable - 3,
                      " further unreachable instructions"));
}

// ================== V11/V12 dataflow lints ========================

/**
 * calc_arf/calc_crf `xor r, s, s` / `sub r, s, s` produce zero whatever
 * s holds — the compiler's zero-register idiom.  Their source reads are
 * not value-carrying and must not trip the read-before-write lint.
 */
bool
isZeroIdiom(const Instruction &inst)
{
    return (inst.op == Opcode::kCalcArf ||
            inst.op == Opcode::kCalcCrf) &&
           (inst.aluOp == AluOp::kXor || inst.aluOp == AluOp::kSub) &&
           !inst.srcImm && inst.src1 == inst.src2;
}

/**
 * V11 via the forward must-written dataflow (WrittenBeforeAnalysis):
 * a read warns when some executing PE has no write of the register on
 * *some* path from entry — which catches hazards that exist on only
 * one branch arm, where the old linear scan saw the other arm's write.
 * V12 via backward may-read liveness (MayReadAnalysis): a write is dead
 * when no PE can read it before it is overwritten on every path; the
 * all-live exit boundary keeps final writes unflagged, and the loop
 * fixpoint makes loop-carried reads count (so no blanket loop
 * exemption is needed any more).
 */
void
checkDataflow(Ctx &c)
{
    if (c.graph == nullptr)
        return;
    const Cfg &g = *c.graph;

    // The register allocator re-issues identical spill reloads before
    // every use cluster, so one redundant-reload pattern can repeat
    // thousands of times in a big kernel.  Report the first few sites
    // and aggregate the rest to keep the report readable.
    constexpr int kDeadWriteCap = 5;
    int deadWrites = 0;

    WrittenBeforeAnalysis wb(c.cfg, g);
    std::vector<std::vector<u32>> wbIn = solveDataflow(g, wb);
    MayReadAnalysis mr(c.cfg, g);
    std::vector<std::vector<u32>> mrOut = solveDataflow(g, mr);

    // One V11 report per (register, PE) — a first-read is diagnosed
    // once even when later blocks read the register again.
    std::vector<u32> reported(wb.regs.size(), 0);

    for (int b = 0; b < g.numBlocks(); ++b) {
        const BasicBlock &bb = g.block(b);
        if (!bb.reachable)
            continue;

        // Per-instruction liveness-after, from the block's exit state.
        std::vector<std::vector<u32>> liveAfter(bb.last - bb.first + 1);
        {
            std::vector<u32> st = mrOut[size_t(b)];
            for (u32 i = bb.last + 1; i-- > bb.first;) {
                liveAfter[i - bb.first] = st;
                mr.transfer(st, i);
            }
        }

        std::vector<u32> written = wbIn[size_t(b)];
        for (u32 i = bb.first; i <= bb.last; ++i) {
            if (!c.valid[i]) {
                continue;
            }
            const Instruction &inst = c.prog[i];
            const AccessSet &acc = c.access[i];
            u32 execMask = isBroadcast(inst.op)
                               ? (inst.simbMask & c.validSimbMask())
                               : 1u;

            for (u8 r = 0; r < acc.numReads; ++r) {
                const RegRef &ref = acc.reads[r];
                // Branch-target reads are V08's job and the
                // zero-idiom's sources carry no value, so neither
                // trips the read-before-write lint.
                bool lintable = true;
                if (inst.op == Opcode::kJump)
                    lintable = false;
                if (inst.op == Opcode::kCjump && ref.idx == inst.dst &&
                    inst.dst != inst.src1)
                    lintable = false;
                if (isZeroIdiom(inst) && ref.idx == inst.src1)
                    lintable = false;
                size_t k = wb.regs.index(ref.file, ref.idx);
                if (k >= wb.regs.size())
                    continue; // out-of-bounds register: V01's problem
                u32 readMask =
                    ref.file == RegFile::kCrf ? 1u : execMask;
                u32 missing = readMask & ~written[k] & ~reported[k];
                if (lintable && missing != 0)
                    c.warning(Rule::kReadBeforeWrite, int(i),
                              cat("reads ", regFileName(ref.file), " ",
                                  ref.idx, " before any write",
                                  ref.file == RegFile::kCrf
                                      ? std::string()
                                      : cat(" on PE mask 0x", std::hex,
                                            missing, std::dec),
                                  " (holds the reset value 0): ",
                                  inst.toString()));
                reported[k] |= readMask;
            }

            for (u8 w = 0; w < acc.numWrites; ++w) {
                const RegRef &ref = acc.writes[w];
                size_t k = mr.regs.index(ref.file, ref.idx);
                if (k >= mr.regs.size())
                    continue;
                u32 writeMask =
                    ref.file == RegFile::kCrf ? 1u : execMask;
                if (writeMask == 0)
                    continue; // empty simb_mask: V05's problem
                if ((liveAfter[i - bb.first][k] & writeMask) != 0)
                    continue;
                if (++deadWrites <= kDeadWriteCap)
                    c.warning(Rule::kDeadWrite, int(i),
                              cat("write to ", regFileName(ref.file),
                                  " ", ref.idx,
                                  " is overwritten on every path "
                                  "before any read: ",
                                  inst.toString()));
            }

            wb.transfer(written, i);
        }
    }
    if (deadWrites > kDeadWriteCap)
        c.warning(Rule::kDeadWrite, -1,
                  cat(deadWrites - kDeadWriteCap,
                      " further dead writes (typically spill reloads "
                      "re-issued before any read of the previous one)"));
}

// =================== V13 encoding round-trip ======================

void
checkEncoding(Ctx &c)
{
    for (size_t i = 0; i < c.prog.size(); ++i) {
        if (!c.valid[i])
            continue;
        const Instruction &inst = c.prog[i];
        Instruction back;
        try {
            back = decode(encode(inst));
        } catch (const FatalError &e) {
            c.error(Rule::kEncoding, int(i),
                    cat("instruction does not survive its own wire "
                        "form: ", e.what()));
            continue;
        }
        Instruction expect = inst;
        expect.label = -1; // labels are compiler-only, never encoded
        if (!(back == expect))
            c.error(Rule::kEncoding, int(i),
                    cat("encode/decode round-trip changed the "
                        "instruction (a field is missing from the ",
                        kInstBytes, "-byte encoding): ",
                        inst.toString(), " != ", back.toString()));
    }
}

// ==================== V10 sync placement ==========================

void
checkSyncPlacement(Ctx &c)
{
    for (size_t i = 0; i < c.prog.size(); ++i) {
        if (c.valid[i] && c.prog[i].op == Opcode::kSync && c.inLoop(i))
            c.warning(Rule::kSyncPhase, int(i),
                      cat("sync inside a loop body executes once per "
                          "iteration; the static cross-vault phase "
                          "check cannot model it: ",
                          c.prog[i].toString()));
    }
}

/** Map a conflict-analysis finding kind to its verifier rule. */
Rule
conflictRule(ConflictFinding::Kind k)
{
    switch (k) {
      case ConflictFinding::Kind::kBankOverlap:
        return Rule::kConflictBank;
      case ConflictFinding::Kind::kSerdesOverlap:
        return Rule::kConflictSerdes;
      case ConflictFinding::Kind::kStagingOverlap:
        return Rule::kConflictStaging;
      case ConflictFinding::Kind::kSyncStructure:
        return Rule::kSyncStructure;
      case ConflictFinding::Kind::kReqSelf:
      default: return Rule::kReqSelf;
    }
}

bool
anyConflictRuleEnabled(const VerifierOptions &opts)
{
    return opts.isEnabled(Rule::kConflictBank) ||
           opts.isEnabled(Rule::kConflictSerdes) ||
           opts.isEnabled(Rule::kConflictStaging) ||
           opts.isEnabled(Rule::kSyncStructure) ||
           opts.isEnabled(Rule::kReqSelf);
}

void
addConflictFindings(VerifyReport &rep, const VerifierOptions &opts,
                    const std::vector<ConflictFinding> &findings)
{
    for (const ConflictFinding &f : findings) {
        Rule r = conflictRule(f.kind);
        if (!opts.isEnabled(r))
            continue;
        rep.add({Severity::kError, r, f.vault, f.index, f.message});
    }
}

/**
 * The per-program pass pipeline.  @p programConflicts runs the
 * device-context-free conflict checks (V16/V17); verifyDevice passes
 * false and runs the full cross-vault analysis itself instead.
 */
VerifyReport
verifyProgramImpl(const HardwareConfig &cfg,
                  const std::vector<Instruction> &prog,
                  const VerifierOptions &opts, int vault,
                  bool programConflicts)
{
    VerifyReport rep;
    Ctx c{cfg, prog, opts, vault, rep, {}, {}, {}, nullptr};
    checkOpcodes(c);
    Cfg graph = Cfg::build(prog);
    if (!prog.empty())
        c.graph = &graph;
    checkRegisterBounds(c);
    checkMemoryBounds(c);
    checkPgsmStride(c);
    checkScratchBankHints(c);
    checkMasks(c);
    checkControlFlow(c); // also computes c.loopSpans
    checkSyncPlacement(c);
    checkDataflow(c);
    checkEncoding(c);
    if (programConflicts && !prog.empty() &&
        anyConflictRuleEnabled(opts)) {
        ProgramAnalysis pa = analyzeProgram(cfg, prog);
        addConflictFindings(rep, opts,
                            checkProgramConflicts(pa, vault).findings);
    }
    return rep;
}

} // namespace

VerifyReport
verifyProgram(const HardwareConfig &cfg,
              const std::vector<Instruction> &prog,
              const VerifierOptions &opts, int vault)
{
    return verifyProgramImpl(cfg, prog, opts, vault,
                             /*programConflicts=*/true);
}

VerifyReport
verifyDevice(const HardwareConfig &cfg,
             const std::vector<std::vector<Instruction>> &perVault,
             const VerifierOptions &opts)
{
    VerifyReport rep;
    if (opts.isEnabled(Rule::kSyncPhase) &&
        perVault.size() != u64(cfg.cubes) * cfg.vaultsPerCube)
        rep.add({Severity::kError, Rule::kSyncPhase, -1, -1,
                 cat("device program has ", perVault.size(),
                     " vault programs but the device has ",
                     u64(cfg.cubes) * cfg.vaultsPerCube, " vaults")});

    for (size_t v = 0; v < perVault.size(); ++v)
        rep.merge(verifyProgramImpl(cfg, perVault[v], opts, int(v),
                                    /*programConflicts=*/false));

    if (!opts.isEnabled(Rule::kSyncPhase) || perVault.empty())
        return rep;

    // V10: the master/slave barrier (Sec. IV-D) completes only when
    // every vault reaches the same phase; the static per-vault sync
    // sequences must therefore agree in order and count.
    auto syncSeq = [](const std::vector<Instruction> &prog) {
        std::vector<std::pair<size_t, u32>> seq;
        for (size_t i = 0; i < prog.size(); ++i)
            if (u8(prog[i].op) < u8(Opcode::kNumOpcodes) &&
                prog[i].op == Opcode::kSync)
                seq.push_back({i, prog[i].phaseId});
        return seq;
    };
    auto ref = syncSeq(perVault[0]);
    for (size_t v = 1; v < perVault.size(); ++v) {
        auto seq = syncSeq(perVault[v]);
        size_t common = std::min(ref.size(), seq.size());
        for (size_t k = 0; k < common; ++k) {
            if (seq[k].second != ref[k].second) {
                rep.add({Severity::kError, Rule::kSyncPhase, int(v),
                         int(seq[k].first),
                         cat("sync #", k, " uses phase ",
                             seq[k].second, " but vault 0 inst ",
                             ref[k].first, " uses phase ",
                             ref[k].second,
                             "; the barrier would deadlock")});
                break;
            }
        }
        if (seq.size() != ref.size())
            rep.add({Severity::kError, Rule::kSyncPhase, int(v), -1,
                     cat("program has ", seq.size(),
                         " syncs but vault 0 has ", ref.size(),
                         "; the barrier would deadlock")});
    }

    // V14-V18: the cross-vault conflict analysis assumes well-formed
    // programs with matching barrier sequences, so it only runs once
    // everything above is clean.
    if (rep.errorCount() == 0 && anyConflictRuleEnabled(opts)) {
        std::vector<ProgramAnalysis> analyses;
        analyses.reserve(perVault.size());
        std::vector<const ProgramAnalysis *> ptrs;
        ptrs.reserve(perVault.size());
        for (size_t v = 0; v < perVault.size(); ++v) {
            analyses.push_back(analyzeProgram(
                cfg, perVault[v], int(v / cfg.vaultsPerCube),
                int(v % cfg.vaultsPerCube)));
            ptrs.push_back(&analyses.back());
        }
        ConflictReport cr = analyzeDeviceConflicts(cfg, ptrs);
        addConflictFindings(rep, opts, cr.findings);
    }
    return rep;
}

} // namespace ipim
