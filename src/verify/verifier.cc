#include "verify/verifier.h"

#include <algorithm>
#include <bit>
#include <map>
#include <set>
#include <sstream>

#include "common/logging.h"
#include "isa/encoding.h"

namespace ipim {

namespace {

/// AddrRF entries 0..3 are the reserved identity registers (PE/PG/vault/
/// chip id, see IdentityArf in sim/pe.h); the hardware initializes them
/// at reset, so dataflow passes treat them as always-written.
constexpr u16 kIdentityArfs = 4;

/** Shared state of one program's verification run. */
struct Ctx
{
    const HardwareConfig &cfg;
    const std::vector<Instruction> &prog;
    const VerifierOptions &opts;
    int vault;
    VerifyReport &rep;

    /// valid[i]: opcode/aluOp bytes are inside the ISA; instructions
    /// failing this are reported once and skipped by every other pass.
    std::vector<bool> valid;
    std::vector<AccessSet> access; ///< access sets of valid instructions

    /// [begin, end] index ranges covered by a statically known backward
    /// branch; dataflow lints are conservative inside them.
    std::vector<std::pair<size_t, size_t>> loopSpans;

    u32
    validSimbMask() const
    {
        u32 pes = cfg.pesPerVault();
        return pes >= 32 ? 0xFFFFFFFFu : ((1u << pes) - 1);
    }

    void
    diag(Severity sev, Rule rule, int index, std::string msg)
    {
        if (!opts.isEnabled(rule))
            return;
        rep.add({sev, rule, vault, index, std::move(msg)});
    }

    void
    error(Rule rule, int index, const std::string &msg)
    {
        diag(Severity::kError, rule, index, msg);
    }

    void
    warning(Rule rule, int index, const std::string &msg)
    {
        diag(Severity::kWarning, rule, index, msg);
    }

    bool
    inLoop(size_t idx) const
    {
        for (const auto &[b, e] : loopSpans)
            if (idx >= b && idx <= e)
                return true;
        return false;
    }
};

std::string
str(const char *fmtless)
{
    return fmtless;
}

template <typename... Args>
std::string
cat(const Args &...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

// ======================= opcode validity ==========================

void
checkOpcodes(Ctx &c)
{
    c.valid.assign(c.prog.size(), true);
    c.access.resize(c.prog.size());
    for (size_t i = 0; i < c.prog.size(); ++i) {
        const Instruction &inst = c.prog[i];
        if (u8(inst.op) >= u8(Opcode::kNumOpcodes)) {
            c.error(Rule::kEncoding, int(i),
                    cat("opcode byte ", int(u8(inst.op)),
                        " is outside the ISA"));
            c.valid[i] = false;
            continue;
        }
        if (u8(inst.aluOp) >= u8(AluOp::kNumAluOps)) {
            c.error(Rule::kEncoding, int(i),
                    cat("alu-op byte ", int(u8(inst.aluOp)),
                        " is outside the ISA: ", opcodeName(inst.op)));
            c.valid[i] = false;
            continue;
        }
        c.access[i] = inst.accessSet();
    }
}

// ===================== V01 register bounds ========================

u32
regFileLimit(const HardwareConfig &cfg, RegFile f)
{
    switch (f) {
      case RegFile::kDrf: return cfg.dataRfEntries();
      case RegFile::kArf: return cfg.addrRfEntries();
      case RegFile::kCrf: return cfg.ctrlRfEntries;
      default: panic("regFileLimit: bad file ", int(f));
    }
}

const char *
regFileName(RegFile f)
{
    switch (f) {
      case RegFile::kDrf: return "DRF";
      case RegFile::kArf: return "ARF";
      case RegFile::kCrf: return "CRF";
      default: panic("regFileName: bad file ", int(f));
    }
}

void
checkRegisterBounds(Ctx &c)
{
    for (size_t i = 0; i < c.prog.size(); ++i) {
        if (!c.valid[i])
            continue;
        const AccessSet &acc = c.access[i];
        auto check = [&](const RegRef &ref, const char *dir) {
            u32 limit = regFileLimit(c.cfg, ref.file);
            if (ref.idx >= limit)
                c.error(Rule::kRegBounds, int(i),
                        cat(dir, " ", regFileName(ref.file), " index ",
                            ref.idx, " >= file size ", limit, ": ",
                            c.prog[i].toString()));
        };
        for (u8 r = 0; r < acc.numReads; ++r)
            check(acc.reads[r], "read of");
        for (u8 w = 0; w < acc.numWrites; ++w)
            check(acc.writes[w], "write of");
    }
}

// ====================== V02 memory bounds =========================

void
checkDirectRange(Ctx &c, size_t i, const MemOperand &m, u64 span,
                 u64 capacity, const char *what)
{
    if (m.indirect)
        return; // per-PE AddrRF value; checkable only at issue time
    if (u64(m.value) + span > capacity)
        c.error(Rule::kMemBounds, int(i),
                cat(what, " byte offset ", m.value, " + ", span,
                    " exceeds capacity ", capacity, ": ",
                    c.prog[i].toString()));
    else if (m.value % 4 != 0)
        c.warning(Rule::kMemBounds, int(i),
                  cat(what, " byte offset ", m.value,
                      " is not 32b-lane aligned: ",
                      c.prog[i].toString()));
}

void
checkMemoryBounds(Ctx &c)
{
    const HardwareConfig &cfg = c.cfg;
    for (size_t i = 0; i < c.prog.size(); ++i) {
        if (!c.valid[i])
            continue;
        const Instruction &inst = c.prog[i];
        u64 pgsmSpan = u64(kSimdLanes - 1) * inst.pgsmStride + 4;
        switch (inst.op) {
          case Opcode::kStRf:
          case Opcode::kLdRf:
            checkDirectRange(c, i, inst.dramAddr, kVectorBytes,
                             cfg.bankBytes, "bank");
            break;
          case Opcode::kStPgsm:
          case Opcode::kLdPgsm:
            checkDirectRange(c, i, inst.dramAddr, kVectorBytes,
                             cfg.bankBytes, "bank");
            checkDirectRange(c, i, inst.pgsmAddr, kVectorBytes,
                             cfg.pgsmBytes, "PGSM");
            break;
          case Opcode::kRdPgsm:
          case Opcode::kWrPgsm:
            checkDirectRange(c, i, inst.pgsmAddr, pgsmSpan,
                             cfg.pgsmBytes, "PGSM");
            break;
          case Opcode::kRdVsm:
          case Opcode::kWrVsm:
            checkDirectRange(c, i, inst.vsmAddr, kVectorBytes,
                             cfg.vsmBytes, "VSM");
            break;
          case Opcode::kSetiVsm:
            if (inst.vsmAddr.indirect)
                c.error(Rule::kMemBounds, int(i),
                        cat("seti_vsm requires a direct VSM address: ",
                            inst.toString()));
            else
                checkDirectRange(c, i, inst.vsmAddr, 4, cfg.vsmBytes,
                                 "VSM");
            break;
          case Opcode::kReq: {
            checkDirectRange(c, i, inst.dramAddr, kVectorBytes,
                             cfg.bankBytes, "remote bank");
            checkDirectRange(c, i, inst.vsmAddr, kVectorBytes,
                             cfg.vsmBytes, "VSM staging");
            auto route = [&](u32 v, u32 limit, const char *unit) {
                if (v >= limit)
                    c.error(Rule::kMemBounds, int(i),
                            cat("req routes to ", unit, " ", v,
                                " but the device has ", limit, ": ",
                                inst.toString()));
            };
            route(inst.dstChip, cfg.cubes, "chip");
            route(inst.dstVault, cfg.vaultsPerCube, "vault");
            route(inst.dstPg, cfg.pgsPerVault, "PG");
            route(inst.dstPe, cfg.pesPerPg, "PE");
            break;
          }
          default:
            break;
        }
    }
}

// =================== V03 PGSM stride, V04 hints ===================

void
checkPgsmStride(Ctx &c)
{
    for (size_t i = 0; i < c.prog.size(); ++i) {
        if (!c.valid[i])
            continue;
        const Instruction &inst = c.prog[i];
        if (inst.op != Opcode::kRdPgsm && inst.op != Opcode::kWrPgsm)
            continue;
        if (inst.pgsmStride == 0) {
            // rd_pgsm with stride 0 is the compiler's splat-read idiom
            // (broadcast one 32b word to all lanes) and is fine; the
            // write direction would make four lanes race on one word.
            if (inst.op == Opcode::kWrPgsm)
                c.error(Rule::kPgsmStride, int(i),
                        cat("wr_pgsm with stride 0 writes all four "
                            "lanes to the same bytes: ",
                            inst.toString()));
        } else if (inst.pgsmStride % 4 != 0) {
            c.warning(Rule::kPgsmStride, int(i),
                      cat("PGSM lane stride ", inst.pgsmStride,
                          " is not a multiple of the 4-byte lane: ",
                          inst.toString()));
        }
    }
}

/**
 * The scratchBank hint tells the issue-time interlock that accesses
 * tagged with different non-zero hints touch disjoint PGSM regions
 * (compiler-managed double buffering).  If the statically known address
 * ranges of hint 1 and hint 2 overlap, the interlock would let a real
 * read-write hazard through — report the lie, not the race.
 */
void
checkScratchBankHints(Ctx &c)
{
    using Range = std::pair<u64, u64>; // [lo, hi)
    std::set<Range> ranges[2];
    for (size_t i = 0; i < c.prog.size(); ++i) {
        if (!c.valid[i])
            continue;
        const Instruction &inst = c.prog[i];
        if (!accessesPgsm(inst.op))
            continue;
        if (inst.scratchBank > 2) {
            c.error(Rule::kScratchBank, int(i),
                    cat("scratchBank hint ", int(inst.scratchBank),
                        " is not in {0,1,2}: ", inst.toString()));
            continue;
        }
        if (inst.scratchBank == 0 || inst.pgsmAddr.indirect)
            continue;
        u64 span = inst.op == Opcode::kRdPgsm ||
                           inst.op == Opcode::kWrPgsm
                       ? u64(kSimdLanes - 1) * inst.pgsmStride + 4
                       : u64(kVectorBytes);
        Range r{inst.pgsmAddr.value, u64(inst.pgsmAddr.value) + span};
        int side = inst.scratchBank - 1;
        ranges[side].insert(r);
        for (const Range &other : ranges[1 - side]) {
            if (r.first < other.second && other.first < r.second) {
                c.error(Rule::kScratchBank, int(i),
                        cat("scratchBank hint ", int(inst.scratchBank),
                            " touches PGSM bytes [", r.first, ", ",
                            r.second, ") which overlap hint ",
                            2 - side, " bytes [", other.first, ", ",
                            other.second, "): ", inst.toString()));
                break;
            }
        }
    }
}

// ==================== V05/V06 execution masks =====================

void
checkMasks(Ctx &c)
{
    for (size_t i = 0; i < c.prog.size(); ++i) {
        if (!c.valid[i])
            continue;
        const Instruction &inst = c.prog[i];
        if (isBroadcast(inst.op)) {
            if (inst.simbMask == 0)
                c.error(Rule::kSimbMask, int(i),
                        cat("broadcast with empty simb_mask is a no-op "
                            "the hardware refuses: ",
                            inst.toString()));
            else if (inst.simbMask & ~c.validSimbMask())
                c.error(Rule::kSimbMask, int(i),
                        cat("simb_mask 0x", std::hex, inst.simbMask,
                            std::dec, " names PEs beyond the ",
                            c.cfg.pesPerVault(), " configured: ",
                            inst.toString()));
        }
        bool laneSelect = inst.op == Opcode::kMovDrfToArf ||
                          inst.op == Opcode::kMovArfToDrf;
        if (laneSelect) {
            if (std::popcount(u32(inst.vecMask & kFullVecMask)) != 1 ||
                (inst.vecMask & ~kFullVecMask))
                c.error(Rule::kVecMask, int(i),
                        cat("mov lane selector must have exactly one of "
                            "the ", kSimdLanes, " lane bits set: ",
                            inst.toString()));
        } else if (inst.op == Opcode::kComp) {
            if (inst.vecMask & ~kFullVecMask)
                c.error(Rule::kVecMask, int(i),
                        cat("vec_mask has bits beyond the ", kSimdLanes,
                            " SIMD lanes: ", inst.toString()));
            else if (inst.vecMask == 0)
                c.warning(Rule::kVecMask, int(i),
                          cat("comp with empty vec_mask is a no-op: ",
                              inst.toString()));
        }
    }
}

// ================ V07/V08/V09 control-flow checks =================

/**
 * The defining write a branch-target CRF register holds at a branch:
 * the last seti_crf/calc_crf to it in program order before the branch.
 * Physical CRF registers are reused after coloring (a register can hold
 * a branch target in one live range and a data constant in another), so
 * only the reaching definition may be judged, not every write.
 */
struct ReachingDef
{
    int index = -1;       ///< defining instruction, -1 = none
    bool dynamic = false; ///< calc_crf: value not statically known
    i32 value = 0;        ///< seti_crf immediate
};

ReachingDef
reachingCrfDef(const Ctx &c, size_t branch, u16 reg)
{
    for (size_t j = branch; j-- > 0;) {
        if (!c.valid[j])
            continue;
        const Instruction &inst = c.prog[j];
        if (inst.op == Opcode::kSetiCrf && inst.dst == reg)
            return {int(j), false, inst.imm};
        if (inst.op == Opcode::kCalcCrf && inst.dst == reg)
            return {int(j), true, 0};
    }
    return {};
}

void
checkControlFlow(Ctx &c)
{
    if (c.prog.empty()) {
        c.error(Rule::kHalt, -1, str("program is empty"));
        return;
    }
    if (c.prog.back().op != Opcode::kHalt)
        c.error(Rule::kHalt, int(c.prog.size()) - 1,
                str("program must end with halt"));

    // V07: finalization must have resolved every label into an
    // instruction-index immediate (passes.cc clears `label` doing so).
    for (size_t i = 0; i < c.prog.size(); ++i) {
        if (c.valid[i] && c.prog[i].label >= 0)
            c.error(Rule::kUnresolvedLabel, int(i),
                    cat("branch label L", c.prog[i].label,
                        " was never resolved to an instruction index: ",
                        c.prog[i].toString()));
    }

    // V08: every branch-target register must have a reaching definition,
    // and a statically known one must land inside the program.  The
    // known edges also feed loop-span detection (for the dataflow
    // lints) and the halt-reachability walk below.
    bool dynamicJump = false;
    std::vector<std::vector<size_t>> succs(c.prog.size());
    for (size_t i = 0; i < c.prog.size(); ++i) {
        if (!c.valid[i])
            continue;
        const Instruction &inst = c.prog[i];
        bool fallsThrough = true;
        if (inst.op == Opcode::kJump || inst.op == Opcode::kCjump) {
            fallsThrough = inst.op == Opcode::kCjump;
            ReachingDef def = reachingCrfDef(c, i, inst.dst);
            if (def.index < 0) {
                c.error(Rule::kBranchTarget, int(i),
                        cat("branch target register c", inst.dst,
                            " has no seti_crf/calc_crf before it (the "
                            "core would jump to the reset value 0): ",
                            inst.toString()));
            } else if (def.dynamic) {
                dynamicJump = true;
            } else if (def.value < 0 ||
                       u32(def.value) >= c.prog.size()) {
                c.error(Rule::kBranchTarget, int(i),
                        cat("branch target ", def.value, " (set at inst ",
                            def.index, ") lands outside the ",
                            c.prog.size(), "-instruction program: ",
                            inst.toString()));
            } else {
                size_t tgt = size_t(def.value);
                succs[i].push_back(tgt);
                if (tgt <= i)
                    c.loopSpans.push_back({tgt, i});
            }
        } else if (inst.op == Opcode::kHalt) {
            fallsThrough = false;
        }
        if (fallsThrough && i + 1 < c.prog.size())
            succs[i].push_back(i + 1);
    }

    // V09: some halt must be reachable from entry; with a dynamic jump
    // target reachability is unknowable statically, so stay quiet.
    if (dynamicJump)
        return;
    std::vector<bool> seen(c.prog.size(), false);
    std::vector<size_t> stack{0};
    bool haltReachable = false;
    while (!stack.empty()) {
        size_t i = stack.back();
        stack.pop_back();
        if (seen[i])
            continue;
        seen[i] = true;
        if (c.valid[i] && c.prog[i].op == Opcode::kHalt)
            haltReachable = true;
        for (size_t s : succs[i])
            stack.push_back(s);
    }
    if (!haltReachable)
        c.error(Rule::kHalt, -1,
                str("no halt is reachable from the program entry"));
    int unreachable = 0;
    for (size_t i = 0; i < c.prog.size(); ++i) {
        if (seen[i] || !c.valid[i])
            continue;
        if (++unreachable <= 3)
            c.warning(Rule::kHalt, int(i),
                      cat("instruction is unreachable from entry: ",
                          c.prog[i].toString()));
    }
    if (unreachable > 3)
        c.warning(Rule::kHalt, -1,
                  cat(unreachable - 3,
                      " further unreachable instructions"));
}

// ================== V11/V12 dataflow lints ========================

/**
 * calc_arf/calc_crf `xor r, s, s` / `sub r, s, s` produce zero whatever
 * s holds — the compiler's zero-register idiom.  Their source reads are
 * not value-carrying and must not trip the read-before-write lint.
 */
bool
isZeroIdiom(const Instruction &inst)
{
    return (inst.op == Opcode::kCalcArf ||
            inst.op == Opcode::kCalcCrf) &&
           (inst.aluOp == AluOp::kXor || inst.aluOp == AluOp::kSub) &&
           !inst.srcImm && inst.src1 == inst.src2;
}

void
checkDataflow(Ctx &c)
{
    struct RegState
    {
        u32 writtenPes = 0; ///< PEs that have written (CRF: bit 0)
        int lastWrite = -1;
        u32 lastWriteMask = 0;
        bool readSinceWrite = false;
    };
    std::map<std::pair<u8, u16>, RegState> regs;
    auto key = [](const RegRef &r) {
        return std::pair<u8, u16>(u8(r.file), r.idx);
    };
    // The register allocator re-issues identical spill reloads before
    // every use cluster, so one redundant-reload pattern can repeat
    // thousands of times in a big kernel.  Report the first few sites
    // and aggregate the rest to keep the report readable.
    constexpr int kDeadWriteCap = 5;
    int deadWrites = 0;

    // Identity AddrRF registers are hardware-initialized at reset.
    for (u16 a = 0; a < kIdentityArfs; ++a) {
        RegState &s = regs[{u8(RegFile::kArf), a}];
        s.writtenPes = c.validSimbMask();
        s.readSinceWrite = true; // never report them as dead
    }

    for (size_t i = 0; i < c.prog.size(); ++i) {
        if (!c.valid[i])
            continue;
        const Instruction &inst = c.prog[i];
        const AccessSet &acc = c.access[i];
        u32 execMask = isBroadcast(inst.op)
                           ? (inst.simbMask & c.validSimbMask())
                           : 1u;

        for (u8 r = 0; r < acc.numReads; ++r) {
            const RegRef &ref = acc.reads[r];
            // Branch-target reads are V08's job and the zero-idiom's
            // sources carry no value, so neither should trip the
            // read-before-write lint — but both are still *reads*, and
            // must mark the defining write live or V12 misreports it.
            bool lintable = true;
            if (inst.op == Opcode::kJump)
                lintable = false;
            if (inst.op == Opcode::kCjump && ref.idx == inst.dst &&
                inst.dst != inst.src1)
                lintable = false;
            if (isZeroIdiom(inst) && ref.idx == inst.src1)
                lintable = false;
            RegState &s = regs[key(ref)];
            u32 readMask = ref.file == RegFile::kCrf ? 1u : execMask;
            u32 missing = readMask & ~s.writtenPes;
            if (lintable && missing != 0 &&
                c.opts.isEnabled(Rule::kReadBeforeWrite))
                c.warning(Rule::kReadBeforeWrite, int(i),
                          cat("reads ", regFileName(ref.file), " ",
                              ref.idx, " before any write",
                              ref.file == RegFile::kCrf
                                  ? std::string()
                                  : cat(" on PE mask 0x", std::hex,
                                        missing, std::dec),
                              " (holds the reset value 0): ",
                              inst.toString()));
            s.writtenPes |= readMask; // report each first-read once
            s.readSinceWrite = true;
        }

        for (u8 w = 0; w < acc.numWrites; ++w) {
            const RegRef &ref = acc.writes[w];
            RegState &s = regs[key(ref)];
            u32 writeMask = ref.file == RegFile::kCrf ? 1u : execMask;
            if (s.lastWrite >= 0 && !s.readSinceWrite &&
                (s.lastWriteMask & ~writeMask) == 0 &&
                !c.inLoop(size_t(s.lastWrite)) && !c.inLoop(i) &&
                ++deadWrites <= kDeadWriteCap)
                c.warning(Rule::kDeadWrite, s.lastWrite,
                          cat("write to ", regFileName(ref.file), " ",
                              ref.idx, " is overwritten at inst ", i,
                              " with no read in between: ",
                              c.prog[s.lastWrite].toString()));
            s.lastWrite = int(i);
            s.lastWriteMask = writeMask;
            s.writtenPes |= writeMask;
            s.readSinceWrite = false;
        }
    }
    if (deadWrites > kDeadWriteCap)
        c.warning(Rule::kDeadWrite, -1,
                  cat(deadWrites - kDeadWriteCap,
                      " further dead writes (typically spill reloads "
                      "re-issued before any read of the previous one)"));
}

// =================== V13 encoding round-trip ======================

void
checkEncoding(Ctx &c)
{
    for (size_t i = 0; i < c.prog.size(); ++i) {
        if (!c.valid[i])
            continue;
        const Instruction &inst = c.prog[i];
        Instruction back;
        try {
            back = decode(encode(inst));
        } catch (const FatalError &e) {
            c.error(Rule::kEncoding, int(i),
                    cat("instruction does not survive its own wire "
                        "form: ", e.what()));
            continue;
        }
        Instruction expect = inst;
        expect.label = -1; // labels are compiler-only, never encoded
        if (!(back == expect))
            c.error(Rule::kEncoding, int(i),
                    cat("encode/decode round-trip changed the "
                        "instruction (a field is missing from the ",
                        kInstBytes, "-byte encoding): ",
                        inst.toString(), " != ", back.toString()));
    }
}

// ==================== V10 sync placement ==========================

void
checkSyncPlacement(Ctx &c)
{
    for (size_t i = 0; i < c.prog.size(); ++i) {
        if (c.valid[i] && c.prog[i].op == Opcode::kSync && c.inLoop(i))
            c.warning(Rule::kSyncPhase, int(i),
                      cat("sync inside a loop body executes once per "
                          "iteration; the static cross-vault phase "
                          "check cannot model it: ",
                          c.prog[i].toString()));
    }
}

} // namespace

VerifyReport
verifyProgram(const HardwareConfig &cfg,
              const std::vector<Instruction> &prog,
              const VerifierOptions &opts, int vault)
{
    VerifyReport rep;
    Ctx c{cfg, prog, opts, vault, rep, {}, {}, {}};
    checkOpcodes(c);
    checkRegisterBounds(c);
    checkMemoryBounds(c);
    checkPgsmStride(c);
    checkScratchBankHints(c);
    checkMasks(c);
    checkControlFlow(c); // also computes c.loopSpans
    checkSyncPlacement(c);
    checkDataflow(c);
    checkEncoding(c);
    return rep;
}

VerifyReport
verifyDevice(const HardwareConfig &cfg,
             const std::vector<std::vector<Instruction>> &perVault,
             const VerifierOptions &opts)
{
    VerifyReport rep;
    if (opts.isEnabled(Rule::kSyncPhase) &&
        perVault.size() != u64(cfg.cubes) * cfg.vaultsPerCube)
        rep.add({Severity::kError, Rule::kSyncPhase, -1, -1,
                 cat("device program has ", perVault.size(),
                     " vault programs but the device has ",
                     u64(cfg.cubes) * cfg.vaultsPerCube, " vaults")});

    for (size_t v = 0; v < perVault.size(); ++v)
        rep.merge(verifyProgram(cfg, perVault[v], opts, int(v)));

    if (!opts.isEnabled(Rule::kSyncPhase) || perVault.empty())
        return rep;

    // V10: the master/slave barrier (Sec. IV-D) completes only when
    // every vault reaches the same phase; the static per-vault sync
    // sequences must therefore agree in order and count.
    auto syncSeq = [](const std::vector<Instruction> &prog) {
        std::vector<std::pair<size_t, u32>> seq;
        for (size_t i = 0; i < prog.size(); ++i)
            if (u8(prog[i].op) < u8(Opcode::kNumOpcodes) &&
                prog[i].op == Opcode::kSync)
                seq.push_back({i, prog[i].phaseId});
        return seq;
    };
    auto ref = syncSeq(perVault[0]);
    for (size_t v = 1; v < perVault.size(); ++v) {
        auto seq = syncSeq(perVault[v]);
        size_t common = std::min(ref.size(), seq.size());
        for (size_t k = 0; k < common; ++k) {
            if (seq[k].second != ref[k].second) {
                rep.add({Severity::kError, Rule::kSyncPhase, int(v),
                         int(seq[k].first),
                         cat("sync #", k, " uses phase ",
                             seq[k].second, " but vault 0 inst ",
                             ref[k].first, " uses phase ",
                             ref[k].second,
                             "; the barrier would deadlock")});
                break;
            }
        }
        if (seq.size() != ref.size())
            rep.add({Severity::kError, Rule::kSyncPhase, int(v), -1,
                     cat("program has ", seq.size(),
                         " syncs but vault 0 has ", ref.size(),
                         "; the barrier would deadlock")});
    }
    return rep;
}

} // namespace ipim
