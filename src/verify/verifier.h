/**
 * @file
 * Static verifier for finalized SIMB programs.
 *
 * The compiler backend hands the vault simulator a flat
 * std::vector<Instruction>; any malformed program — an out-of-range DRF
 * index, an unresolved branch label, mismatched sync phases across
 * vaults — otherwise surfaces only as a silent wrong result or a hung
 * simulation.  The verifier runs a pass pipeline over one program (or a
 * whole per-vault device program) against a HardwareConfig and returns
 * structured diagnostics (see diagnostics.h).  Rule ids and their paper
 * justification are catalogued in DESIGN.md Sec. 14.
 *
 * Per-program passes:
 *  - V01 register-file bounds (DRF/ARF/CRF, incl. indirect MemOperand
 *    AddrRF/CtrlRF indices, via AccessSet)
 *  - V02 direct bank/PGSM/VSM byte offsets vs. configured capacities,
 *    req routing coordinates vs. device geometry
 *  - V03 rd/wr_pgsm lane stride (zero or non-lane-aligned)
 *  - V04 scratchBank double-buffer hints whose direct address ranges
 *    overlap (the issue-time interlock would skip a real hazard)
 *  - V05/V06 simb_mask / vec_mask validity
 *  - V07/V08/V09 control flow: labels resolved, branch-target CRF
 *    registers initialized and in range, halt present and reachable
 *  - V11/V12 dataflow lints on the CFG (src/analysis/): path-sensitive
 *    read-before-write (simb-mask aware; catches hazards that exist on
 *    only one branch arm) and dead writes via backward liveness
 *  - V13 encode/decode round-trip on every instruction
 *  - V16/V17 per-program conflict structure: unordered VSM
 *    staging-write overlap, non-monotone sync phase ids
 *
 * Device-level passes:
 *  - V10 the per-vault static sync sequences must agree in phase order
 *    and count (the master/slave barrier of Sec. IV-D deadlocks
 *    otherwise)
 *  - V14/V15/V18 cross-vault conflict analysis (analysis/conflict.h):
 *    req remote bank reads racing owner bank writes in the same sync
 *    segment (same cube / across SERDES), and self-targeted reqs that
 *    bypass the issuing core's scoreboard
 */
#ifndef IPIM_VERIFY_VERIFIER_H_
#define IPIM_VERIFY_VERIFIER_H_

#include <array>
#include <vector>

#include "common/config.h"
#include "isa/instruction.h"
#include "verify/diagnostics.h"

namespace ipim {

/** Verifier knobs: rule suppression and warning promotion. */
struct VerifierOptions
{
    /** Treat warnings as errors in VerifyReport::pass(). */
    bool warningsAsErrors = false;

    /** Suppress one rule (its diagnostics are not emitted). */
    void disable(Rule r) { enabled_[size_t(r)] = false; }
    void enable(Rule r) { enabled_[size_t(r)] = true; }
    bool isEnabled(Rule r) const { return enabled_[size_t(r)]; }

  private:
    std::array<bool, size_t(Rule::kNumRules)> enabled_{[] {
        std::array<bool, size_t(Rule::kNumRules)> a{};
        a.fill(true);
        return a;
    }()};
};

/**
 * Verify one vault program.  @p vault is only used to tag diagnostics
 * (pass -1 when there is no device context).
 */
VerifyReport verifyProgram(const HardwareConfig &cfg,
                           const std::vector<Instruction> &prog,
                           const VerifierOptions &opts = {},
                           int vault = -1);

/**
 * Verify a whole device program: every vault program individually plus
 * the cross-vault sync-phase check.  @p perVault is indexed by global
 * vault (chip-major), exactly as Device::loadPrograms() expects.
 */
VerifyReport verifyDevice(const HardwareConfig &cfg,
                          const std::vector<std::vector<Instruction>>
                              &perVault,
                          const VerifierOptions &opts = {});

} // namespace ipim

#endif // IPIM_VERIFY_VERIFIER_H_
