#include "func/estimator.h"

#include <sstream>

#include "analysis/cost.h"

namespace ipim {

std::string
estimatorKey(const CompiledPipeline &pipe)
{
    std::ostringstream k;
    k << pipe.def.name << '|' << pipe.def.width << 'x' << pipe.def.height
      << '|' << pipe.cfg.cubes << '.' << pipe.cfg.vaultsPerCube << '.'
      << pipe.cfg.pgsPerVault << '.' << pipe.cfg.pesPerPg << '|'
      << pipe.options.cacheKey();
    return k.str();
}

std::vector<f64>
staticKernelEstimates(const CompiledPipeline &pipe)
{
    std::vector<f64> est;
    est.reserve(pipe.kernels.size());
    for (const CompiledKernel &k : pipe.kernels)
        est.push_back(estimateKernelCycles(pipe.cfg, k.perVault));
    return est;
}

const std::vector<f64> &
LatencyEstimator::staticEstimates(const CompiledPipeline &pipe)
{
    std::string key = estimatorKey(pipe);
    auto it = static_.find(key);
    if (it == static_.end())
        it = static_.emplace(key, staticKernelEstimates(pipe)).first;
    return it->second;
}

void
LatencyEstimator::recordMeasurement(const CompiledPipeline &pipe,
                                    f64 measured)
{
    std::string key = estimatorKey(pipe);
    if (scale_.count(key))
        return; // first measurement calibrates, like CachedProgram
    f64 stat = 0;
    for (f64 c : staticEstimates(pipe))
        stat += c;
    scale_[key] = stat > 0 ? measured / stat : 1.0;
}

f64
LatencyEstimator::scaleFor(const CompiledPipeline &pipe) const
{
    auto it = scale_.find(estimatorKey(pipe));
    return it == scale_.end() ? 1.0 : it->second;
}

bool
LatencyEstimator::calibrated(const CompiledPipeline &pipe) const
{
    return scale_.count(estimatorKey(pipe)) != 0;
}

} // namespace ipim
