#include "func/func_device.h"

#include <bit>

#include "common/logging.h"
#include "isa/alu.h"
#include "sim/program_validate.h"

namespace ipim {

FuncDevice::FuncDevice(const HardwareConfig &cfg) : cfg_(cfg)
{
    cfg_.validate();
    for (u32 c = 0; c < cfg_.cubes; ++c)
        for (u32 v = 0; v < cfg_.vaultsPerCube; ++v) {
            vaults_.emplace_back(cfg_);
            resetVaultRegs(vaults_.back(), c, v);
        }
    for (VaultState &vs : vaults_)
        for (PgState &pg : vs.pgs)
            for (PeState &pe : pg.pes)
                vs.peTable.emplace_back(&pg, &pe);
}

FuncDevice::VaultState &
FuncDevice::vaultAt(u32 chip, u32 v)
{
    return vaults_.at(u64(chip) * cfg_.vaultsPerCube + v);
}

const FuncDevice::VaultState &
FuncDevice::vaultAt(u32 chip, u32 v) const
{
    return vaults_.at(u64(chip) * cfg_.vaultsPerCube + v);
}

BankStorage &
FuncDevice::bank(u32 chip, u32 v, u32 pg, u32 pe)
{
    return vaultAt(chip, v).pgs.at(pg).pes.at(pe).bank;
}

Scratchpad &
FuncDevice::vsm(u32 chip, u32 v)
{
    return vaultAt(chip, v).vsm;
}

Scratchpad &
FuncDevice::pgsm(u32 chip, u32 v, u32 pg)
{
    return vaultAt(chip, v).pgs.at(pg).pgsm;
}

u32
FuncDevice::crf(u32 chip, u32 v, u16 idx) const
{
    return vaultAt(chip, v).crf.at(idx);
}

const VecWord &
FuncDevice::drf(u32 chip, u32 v, u32 pg, u32 pe, u16 idx) const
{
    return vaultAt(chip, v).pgs.at(pg).pes.at(pe).drf.at(idx);
}

u32
FuncDevice::arf(u32 chip, u32 v, u32 pg, u32 pe, u16 idx) const
{
    return vaultAt(chip, v).pgs.at(pg).pes.at(pe).arf.at(idx);
}

void
FuncDevice::resetVaultRegs(VaultState &vs, u32 chip, u32 vaultInCube)
{
    std::fill(vs.crf.begin(), vs.crf.end(), 0u);
    for (u32 g = 0; g < cfg_.pgsPerVault; ++g) {
        PgState &pg = vs.pgs[g];
        for (u32 p = 0; p < cfg_.pesPerPg; ++p) {
            PeState &pe = pg.pes[p];
            std::fill(pe.drf.begin(), pe.drf.end(), VecWord{});
            std::fill(pe.arf.begin(), pe.arf.end(), 0u);
            // Identity registers A0-A3 (Sec. IV-E; sim/pe.h ReservedArf).
            pe.arf[0] = p;
            pe.arf[1] = g;
            pe.arf[2] = vaultInCube;
            pe.arf[3] = chip;
        }
    }
}

void
FuncDevice::loadProgramAll(const std::vector<Instruction> &prog)
{
    // Overwriting ownedProg_ can reuse its allocation, so its previous
    // validation entry must not vouch for the new content.
    validated_.erase(ownedProg_.data());
    ownedProg_ = prog;
    loadProgramPtrs(std::vector<const std::vector<Instruction> *>(
        totalVaults(), &ownedProg_));
}

void
FuncDevice::loadPrograms(
    const std::vector<std::vector<Instruction>> &progs)
{
    if (progs.size() != totalVaults())
        fatal("loadPrograms: got ", progs.size(), " programs for ",
              totalVaults(), " vaults");
    std::vector<const std::vector<Instruction> *> ptrs;
    ptrs.reserve(progs.size());
    for (const auto &p : progs)
        ptrs.push_back(&p);
    loadProgramPtrs(ptrs);
}

void
FuncDevice::loadProgramPtrs(
    const std::vector<const std::vector<Instruction> *> &ptrs)
{
    for (const auto *p : ptrs) {
        auto it = validated_.find(p->data());
        if (it == validated_.end() || it->second != p->size()) {
            validateVaultProgram(cfg_, *p);
            validated_[p->data()] = p->size();
        }
    }
    for (u32 c = 0; c < cfg_.cubes; ++c) {
        for (u32 v = 0; v < cfg_.vaultsPerCube; ++v) {
            VaultState &vs = vaultAt(c, v);
            vs.prog = ptrs[u64(c) * cfg_.vaultsPerCube + v];
            vs.pc = 0;
            vs.halted = vs.prog->empty();
            vs.atSync = false;
            vs.syncPhase = 0;
            resetVaultRegs(vs, c, v);
        }
    }
}

void
FuncDevice::reset()
{
    executed_ = 0;
    for (u32 c = 0; c < cfg_.cubes; ++c) {
        for (u32 v = 0; v < cfg_.vaultsPerCube; ++v) {
            VaultState &vs = vaultAt(c, v);
            vs.prog = nullptr;
            vs.pc = 0;
            vs.halted = true;
            vs.atSync = false;
            vs.syncPhase = 0;
            vs.vsm.clear();
            for (PgState &pg : vs.pgs) {
                pg.pgsm.clear();
                for (PeState &pe : pg.pes)
                    pe.bank.clear();
            }
            resetVaultRegs(vs, c, v);
        }
    }
}

u64
FuncDevice::resolveMem(const PeState &pe, const MemOperand &m)
{
    if (!m.indirect)
        return u64(m.value);
    return u64(i64(i32(pe.arf.at(m.value))) + m.offset);
}

void
FuncDevice::execPe(VaultState &vs, PgState &pg, PeState &pe,
                   const Instruction &inst)
{
    switch (inst.op) {
      case Opcode::kComp: {
        const VecWord &s1 = pe.drf.at(inst.src1);
        const VecWord &s2 = pe.drf.at(inst.src2);
        VecWord &d = pe.drf.at(inst.dst);
        for (int l = 0; l < kSimdLanes; ++l) {
            if (!(inst.vecMask & (1u << l)))
                continue;
            u32 a = inst.mode == CompMode::kScalarVec ? s1.lanes[0]
                                                      : s1.lanes[l];
            u32 b = s2.lanes[l];
            u32 acc = d.lanes[l];
            d.lanes[l] = inst.dtype == DType::kF32
                             ? aluEvalLaneF32(inst.aluOp, a, b, acc)
                             : aluEvalLaneI32(inst.aluOp, a, b, acc);
        }
        return;
      }
      case Opcode::kCalcArf: {
        i32 a = i32(pe.arf.at(inst.src1));
        i32 b = inst.srcImm ? inst.imm : i32(pe.arf.at(inst.src2));
        pe.arf.at(inst.dst) = u32(aluEvalI32(inst.aluOp, a, b));
        return;
      }
      case Opcode::kLdRf:
        pe.drf.at(inst.dst) =
            pe.bank.readVec(resolveMem(pe, inst.dramAddr));
        return;
      case Opcode::kStRf:
        pe.bank.writeVec(resolveMem(pe, inst.dramAddr),
                         pe.drf.at(inst.dst));
        return;
      case Opcode::kLdPgsm:
        pg.pgsm.writeVec(u32(resolveMem(pe, inst.pgsmAddr)),
                         pe.bank.readVec(resolveMem(pe, inst.dramAddr)));
        return;
      case Opcode::kStPgsm:
        pe.bank.writeVec(resolveMem(pe, inst.dramAddr),
                         pg.pgsm.readVec(u32(resolveMem(pe,
                                                        inst.pgsmAddr))));
        return;
      case Opcode::kRdPgsm: {
        VecWord loaded = pg.pgsm.readVec(
            u32(resolveMem(pe, inst.pgsmAddr)), inst.pgsmStride);
        VecWord &dst = pe.drf.at(inst.dst);
        for (int l = 0; l < kSimdLanes; ++l)
            if (inst.vecMask & (1u << l))
                dst.lanes[l] = loaded.lanes[l];
        return;
      }
      case Opcode::kWrPgsm:
        pg.pgsm.writeVec(u32(resolveMem(pe, inst.pgsmAddr)),
                         pe.drf.at(inst.dst), inst.pgsmStride,
                         inst.vecMask);
        return;
      case Opcode::kRdVsm: {
        VecWord loaded =
            vs.vsm.readVec(u32(resolveMem(pe, inst.vsmAddr)));
        VecWord &dst = pe.drf.at(inst.dst);
        for (int l = 0; l < kSimdLanes; ++l)
            if (inst.vecMask & (1u << l))
                dst.lanes[l] = loaded.lanes[l];
        return;
      }
      case Opcode::kWrVsm:
        vs.vsm.writeVec(u32(resolveMem(pe, inst.vsmAddr)),
                        pe.drf.at(inst.dst));
        return;
      case Opcode::kMovDrfToArf: {
        int lane =
            std::countr_zero(u32(inst.vecMask ? inst.vecMask : 1));
        pe.arf.at(inst.dst) = pe.drf.at(inst.src1).lanes[lane];
        return;
      }
      case Opcode::kMovArfToDrf: {
        int lane =
            std::countr_zero(u32(inst.vecMask ? inst.vecMask : 1));
        pe.drf.at(inst.dst).lanes[lane] = pe.arf.at(inst.src1);
        return;
      }
      case Opcode::kReset:
        pe.drf.at(inst.dst) = VecWord{};
        return;
      default:
        panic("PE asked to execute non-broadcast opcode ",
              opcodeName(inst.op));
    }
}

void
FuncDevice::execBroadcast(VaultState &vs, const Instruction &inst)
{
    // Ascending PE order matches the cycle simulator's same-cycle start
    // order (PGs and PEs tick in ascending index order): set-bit
    // iteration visits mask bits lowest-first, skipping inactive PEs
    // (compiled masks are often sparse).  The dispatch switch runs once
    // per broadcast, not once per PE, so each case's body is a tight
    // loop over the active PEs with the instruction fields already
    // decoded.  simbMask was validated against the PE count at load.
    auto forEachPe = [&](auto &&body) {
        for (u32 m = inst.simbMask; m != 0; m &= m - 1) {
            auto &ent = vs.peTable[u32(std::countr_zero(m))];
            body(*ent.first, *ent.second);
        }
    };
    switch (inst.op) {
      case Opcode::kComp: {
        const u8 vecMask = inst.vecMask;
        const bool scalarVec = inst.mode == CompMode::kScalarVec;
        const bool isF32 = inst.dtype == DType::kF32;
        const AluOp aluOp = inst.aluOp;
        // Specialized all-lane loops for the common ops: with the ALU
        // op, dtype, and mode fixed per broadcast (compilers emit
        // full-mask comps almost exclusively), the 4-lane body has no
        // per-lane dispatch and vectorizes.  Each lambda's semantics
        // are copied verbatim from aluEvalLaneF32/I32.
        auto compAll = [&](auto evalLane) {
            forEachPe([&](PgState &, PeState &pe) {
                const VecWord &s1 = pe.drf.at(inst.src1);
                const VecWord &s2 = pe.drf.at(inst.src2);
                VecWord &d = pe.drf.at(inst.dst);
                if (scalarVec) {
                    u32 a = s1.lanes[0];
                    for (int l = 0; l < kSimdLanes; ++l)
                        d.lanes[l] =
                            evalLane(a, s2.lanes[l], d.lanes[l]);
                } else {
                    for (int l = 0; l < kSimdLanes; ++l)
                        d.lanes[l] = evalLane(s1.lanes[l], s2.lanes[l],
                                              d.lanes[l]);
                }
            });
        };
        if (vecMask == 0xF && isF32) {
            switch (aluOp) {
              case AluOp::kAdd:
                compAll([](u32 a, u32 b, u32) {
                    return f32AsLane(laneAsF32(a) + laneAsF32(b));
                });
                return;
              case AluOp::kSub:
                compAll([](u32 a, u32 b, u32) {
                    return f32AsLane(laneAsF32(a) - laneAsF32(b));
                });
                return;
              case AluOp::kMul:
                compAll([](u32 a, u32 b, u32) {
                    return f32AsLane(laneAsF32(a) * laneAsF32(b));
                });
                return;
              case AluOp::kDiv:
                compAll([](u32 a, u32 b, u32) {
                    return f32AsLane(laneAsF32(a) / laneAsF32(b));
                });
                return;
              case AluOp::kMac:
                compAll([](u32 a, u32 b, u32 acc) {
                    return f32AsLane(laneAsF32(acc) +
                                     laneAsF32(a) * laneAsF32(b));
                });
                return;
              case AluOp::kMin:
                compAll([](u32 a, u32 b, u32) {
                    return f32AsLane(
                        std::min(laneAsF32(a), laneAsF32(b)));
                });
                return;
              case AluOp::kMax:
                compAll([](u32 a, u32 b, u32) {
                    return f32AsLane(
                        std::max(laneAsF32(a), laneAsF32(b)));
                });
                return;
              case AluOp::kCvtI2F:
                compAll([](u32 a, u32, u32) {
                    return f32AsLane(f32(laneAsI32(a)));
                });
                return;
              case AluOp::kCvtF2I:
                compAll([](u32 a, u32, u32) {
                    return u32(i32(std::floor(laneAsF32(a))));
                });
                return;
              default:
                break; // uncommon op: generic loop below
            }
        } else if (vecMask == 0xF) {
            switch (aluOp) {
              case AluOp::kAdd:
                compAll([](u32 a, u32 b, u32) { return a + b; });
                return;
              case AluOp::kSub:
                compAll([](u32 a, u32 b, u32) { return a - b; });
                return;
              case AluOp::kMul:
                compAll([](u32 a, u32 b, u32) { return a * b; });
                return;
              case AluOp::kDiv:
                compAll([](u32 a, u32 b, u32) {
                    if (i32(b) == 0)
                        fatal("integer division by zero in index "
                              "calculation");
                    return u32(floorDiv(i32(a), i32(b)));
                });
                return;
              case AluOp::kMac:
                compAll([](u32 a, u32 b, u32 acc) {
                    return u32(laneAsI32(acc) +
                               laneAsI32(a) * laneAsI32(b));
                });
                return;
              case AluOp::kMin:
                compAll([](u32 a, u32 b, u32) {
                    return u32(std::min(i32(a), i32(b)));
                });
                return;
              case AluOp::kMax:
                compAll([](u32 a, u32 b, u32) {
                    return u32(std::max(i32(a), i32(b)));
                });
                return;
              default:
                break; // uncommon op: generic loop below
            }
        }
        forEachPe([&](PgState &, PeState &pe) {
            const VecWord &s1 = pe.drf.at(inst.src1);
            const VecWord &s2 = pe.drf.at(inst.src2);
            VecWord &d = pe.drf.at(inst.dst);
            for (int l = 0; l < kSimdLanes; ++l) {
                if (!(vecMask & (1u << l)))
                    continue;
                u32 a = scalarVec ? s1.lanes[0] : s1.lanes[l];
                u32 b = s2.lanes[l];
                u32 acc = d.lanes[l];
                d.lanes[l] = isF32 ? aluEvalLaneF32(aluOp, a, b, acc)
                                   : aluEvalLaneI32(aluOp, a, b, acc);
            }
        });
        return;
      }
      case Opcode::kCalcArf:
        forEachPe([&](PgState &, PeState &pe) {
            i32 a = i32(pe.arf.at(inst.src1));
            i32 b = inst.srcImm ? inst.imm : i32(pe.arf.at(inst.src2));
            pe.arf.at(inst.dst) = u32(aluEvalI32(inst.aluOp, a, b));
        });
        return;
      case Opcode::kLdRf:
        forEachPe([&](PgState &, PeState &pe) {
            pe.drf.at(inst.dst) =
                pe.bank.readVec(resolveMem(pe, inst.dramAddr));
        });
        return;
      case Opcode::kStRf:
        forEachPe([&](PgState &, PeState &pe) {
            pe.bank.writeVec(resolveMem(pe, inst.dramAddr),
                             pe.drf.at(inst.dst));
        });
        return;
      case Opcode::kLdPgsm:
        forEachPe([&](PgState &pg, PeState &pe) {
            pg.pgsm.writeVec(
                u32(resolveMem(pe, inst.pgsmAddr)),
                pe.bank.readVec(resolveMem(pe, inst.dramAddr)));
        });
        return;
      case Opcode::kStPgsm:
        forEachPe([&](PgState &pg, PeState &pe) {
            pe.bank.writeVec(
                resolveMem(pe, inst.dramAddr),
                pg.pgsm.readVec(u32(resolveMem(pe, inst.pgsmAddr))));
        });
        return;
      case Opcode::kRdPgsm:
        forEachPe([&](PgState &pg, PeState &pe) {
            VecWord loaded = pg.pgsm.readVec(
                u32(resolveMem(pe, inst.pgsmAddr)), inst.pgsmStride);
            VecWord &dst = pe.drf.at(inst.dst);
            for (int l = 0; l < kSimdLanes; ++l)
                if (inst.vecMask & (1u << l))
                    dst.lanes[l] = loaded.lanes[l];
        });
        return;
      case Opcode::kWrPgsm:
        forEachPe([&](PgState &pg, PeState &pe) {
            pg.pgsm.writeVec(u32(resolveMem(pe, inst.pgsmAddr)),
                             pe.drf.at(inst.dst), inst.pgsmStride,
                             inst.vecMask);
        });
        return;
      case Opcode::kRdVsm:
        forEachPe([&](PgState &, PeState &pe) {
            VecWord loaded =
                vs.vsm.readVec(u32(resolveMem(pe, inst.vsmAddr)));
            VecWord &dst = pe.drf.at(inst.dst);
            for (int l = 0; l < kSimdLanes; ++l)
                if (inst.vecMask & (1u << l))
                    dst.lanes[l] = loaded.lanes[l];
        });
        return;
      case Opcode::kWrVsm:
        forEachPe([&](PgState &, PeState &pe) {
            vs.vsm.writeVec(u32(resolveMem(pe, inst.vsmAddr)),
                            pe.drf.at(inst.dst));
        });
        return;
      case Opcode::kMovDrfToArf: {
        const int lane =
            std::countr_zero(u32(inst.vecMask ? inst.vecMask : 1));
        forEachPe([&](PgState &, PeState &pe) {
            pe.arf.at(inst.dst) = pe.drf.at(inst.src1).lanes[lane];
        });
        return;
      }
      case Opcode::kMovArfToDrf: {
        const int lane =
            std::countr_zero(u32(inst.vecMask ? inst.vecMask : 1));
        forEachPe([&](PgState &, PeState &pe) {
            pe.drf.at(inst.dst).lanes[lane] = pe.arf.at(inst.src1);
        });
        return;
      }
      case Opcode::kReset:
        forEachPe([&](PgState &, PeState &pe) {
            pe.drf.at(inst.dst) = VecWord{};
        });
        return;
      default:
        forEachPe(
            [&](PgState &pg, PeState &pe) { execPe(vs, pg, pe, inst); });
    }
}

void
FuncDevice::execReq(VaultState &vs, const Instruction &inst)
{
    if (inst.dstChip >= cfg_.cubes || inst.dstVault >= cfg_.vaultsPerCube)
        panic("req addresses a nonexistent vault");
    if (inst.dstPg >= cfg_.pgsPerVault || inst.dstPe >= cfg_.pesPerPg)
        panic("remote request addresses a nonexistent PE");
    // Core-side indirection resolves through the CtrlRF (sim/vault.cc).
    u64 dramAddr =
        inst.dramAddr.indirect
            ? u64(i64(i32(vs.crf.at(u16(inst.dramAddr.value)))) +
                  inst.dramAddr.offset)
            : u64(inst.dramAddr.value);
    u32 vsmAddr = inst.vsmAddr.indirect
                      ? u32(i64(i32(vs.crf.at(u16(inst.vsmAddr.value)))) +
                            inst.vsmAddr.offset)
                      : inst.vsmAddr.value;
    // Immediate resolution is sound under barrier-phase lockstep: the
    // conflict analysis (V14-V18) proves accepted programs never race a
    // req against a same-segment write of the remote bank.
    VecWord data = bank(inst.dstChip, inst.dstVault, inst.dstPg,
                        inst.dstPe)
                       .readVec(dramAddr);
    vs.vsm.writeVec(vsmAddr, data);
}

void
FuncDevice::runVault(VaultState &vs, u64 &budget, u64 maxInsts)
{
    const std::vector<Instruction> &prog = *vs.prog;
    while (!vs.halted) {
        if (vs.pc >= prog.size())
            panic("pc ran off the end of the program");
        if (budget == 0)
            fatal("functional execution exceeded ", maxInsts,
                  " instructions without halting (deadlock or runaway "
                  "loop)");
        --budget;
        ++executed_;
        const Instruction &inst = prog[vs.pc];
        switch (inst.op) {
          case Opcode::kNop:
            ++vs.pc;
            break;
          case Opcode::kJump:
          case Opcode::kCjump: {
            bool taken = inst.op == Opcode::kJump ||
                         vs.crf.at(inst.src1) != 0;
            if (taken) {
                u32 target = vs.crf.at(inst.dst);
                if (target >= prog.size())
                    fatal("jump to pc ", target, " outside program");
                vs.pc = target;
            } else {
                ++vs.pc;
            }
            break;
          }
          case Opcode::kCalcCrf: {
            i32 a = i32(vs.crf.at(inst.src1));
            i32 b = inst.srcImm ? inst.imm : i32(vs.crf.at(inst.src2));
            vs.crf.at(inst.dst) = u32(aluEvalI32(inst.aluOp, a, b));
            ++vs.pc;
            break;
          }
          case Opcode::kSetiCrf:
            vs.crf.at(inst.dst) = u32(inst.imm);
            ++vs.pc;
            break;
          case Opcode::kSetiVsm:
            vs.vsm.write32(inst.vsmAddr.value, u32(inst.imm));
            ++vs.pc;
            break;
          case Opcode::kReq:
            execReq(vs, inst);
            ++vs.pc;
            break;
          case Opcode::kSync:
            vs.atSync = true;
            vs.syncPhase = inst.phaseId;
            ++vs.pc;
            return;
          case Opcode::kHalt:
            vs.halted = true;
            ++vs.pc;
            return;
          default:
            execBroadcast(vs, inst);
            ++vs.pc;
            break;
        }
    }
}

u64
FuncDevice::run(u64 maxInsts)
{
    u64 budget = maxInsts;
    while (true) {
        bool anyRunning = false;
        for (const VaultState &vs : vaults_)
            if (!vs.halted) {
                anyRunning = true;
                break;
            }
        if (!anyRunning)
            break;

        // Run every live vault to its next barrier (or halt).  Vault
        // order within a phase is unobservable for accepted programs:
        // cross-vault communication happens only via req, and V14-V18
        // prove reqs never race same-segment remote writes.
        for (VaultState &vs : vaults_)
            if (!vs.halted)
                runVault(vs, budget, maxInsts);

        // Barrier release: every non-halted vault must be parked at the
        // same phase.  The cycle simulator would deadlock into its
        // watchdog on any mismatch; mirror that as a fatal.
        bool first = true;
        bool anySync = false;
        bool anyHalt = false;
        u32 phase = 0;
        for (const VaultState &vs : vaults_) {
            if (vs.halted) {
                anyHalt = true;
                continue;
            }
            anySync = true;
            if (first) {
                phase = vs.syncPhase;
                first = false;
            } else if (vs.syncPhase != phase) {
                fatal("sync barrier deadlock: vaults wait at phases ",
                      phase, " and ", vs.syncPhase);
            }
        }
        if (anySync && anyHalt)
            fatal("sync barrier deadlock: a vault halted while others "
                  "wait at phase ",
                  phase);
        for (VaultState &vs : vaults_)
            vs.atSync = false;
    }
    return maxInsts - budget;
}

} // namespace ipim
