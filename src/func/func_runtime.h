/**
 * @file
 * Host-side launch path for the functional backend: scatter inputs,
 * interpret every kernel, gather the output — the FuncDevice analogue
 * of runtime/runtime.h, sharing its scatter/gather implementation
 * (runtime/transfer.h) so output placement is identical by
 * construction.
 */
#ifndef IPIM_FUNC_FUNC_RUNTIME_H_
#define IPIM_FUNC_FUNC_RUNTIME_H_

#include <map>
#include <string>

#include "common/image.h"
#include "compiler/codegen.h"
#include "func/estimator.h"
#include "func/func_device.h"

namespace ipim {

/** Result of functionally executing a compiled pipeline. */
struct FuncLaunchResult
{
    Image output;
    /// Estimated execution cycles: static cost model summed over
    /// kernels, scaled by the estimator's calibration factor when one
    /// was recorded for this pipeline x geometry.
    f64 estimatedCycles = 0;
    /// Per-kernel static estimates (unscaled), in stage order.
    std::vector<f64> kernelEstimates;
    /// Dynamic instructions interpreted across all kernels and vaults.
    u64 executedInsts = 0;
    /// True when estimatedCycles was refined from a measured run.
    bool calibrated = false;
    /// measured/static scale applied (1.0 when uncalibrated).
    f64 scale = 1.0;
};

/**
 * Execute @p pipeline functionally on a (possibly reused) FuncDevice.
 * The device is power-cycled first, mirroring launchOnDevice.
 * @p estimator, when given, supplies the calibration scale and memoizes
 * the static cost-model walk, so repeated launches of one pipeline pay
 * for estimation once — without one, every launch re-runs the model.
 */
FuncLaunchResult
funcLaunchOnDevice(FuncDevice &dev, const CompiledPipeline &pipeline,
                   const std::map<std::string, Image> &inputs,
                   LatencyEstimator *estimator = nullptr);

/** Compile + interpret in one call on a fresh FuncDevice. */
FuncLaunchResult
runPipelineFunc(const PipelineDef &def, const HardwareConfig &cfg,
                const std::map<std::string, Image> &inputs,
                const CompilerOptions &opts = {});

} // namespace ipim

#endif // IPIM_FUNC_FUNC_RUNTIME_H_
