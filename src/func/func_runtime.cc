#include "func/func_runtime.h"

#include "common/logging.h"
#include "runtime/transfer.h"
#include "verify/verifier.h"

namespace ipim {

FuncLaunchResult
funcLaunchOnDevice(FuncDevice &dev, const CompiledPipeline &pipeline,
                   const std::map<std::string, Image> &inputs,
                   LatencyEstimator *estimator)
{
    dev.reset();

    // Scatter every input over its inferred (grown) region, exactly as
    // Runtime::run does — same transfer templates, same layouts, so the
    // initial bank state is bit-identical to the cycle backend's.
    for (const StageInfo &s : pipeline.analysis->stages) {
        if (!s.func->isInput())
            continue;
        auto it = inputs.find(s.func->name());
        if (it == inputs.end())
            fatal("input '", s.func->name(), "' not bound");
        scatterImageTo(dev, pipeline.layouts->of(s.func), it->second);
    }

    FuncLaunchResult res;
    for (const CompiledKernel &k : pipeline.kernels) {
        // Same launch-time gate as the cycle runtime: a CompiledPipeline
        // can be assembled or patched by hand.
        if (pipeline.options.verify) {
            VerifyReport rep = verifyDevice(dev.cfg(), k.perVault);
            if (!rep.pass())
                fatal("kernel '", k.stage,
                      "' rejected before execution (", rep.errorCount(),
                      " errors):\n", rep.toString());
        }
        dev.loadPrograms(k.perVault);
        res.executedInsts += dev.run();
    }

    res.kernelEstimates = estimator ? estimator->staticEstimates(pipeline)
                                    : staticKernelEstimates(pipeline);
    f64 stat = 0;
    for (f64 c : res.kernelEstimates)
        stat += c;
    if (estimator) {
        res.scale = estimator->scaleFor(pipeline);
        res.calibrated = estimator->calibrated(pipeline);
    }
    res.estimatedCycles = stat * res.scale;

    const Layout &outL = pipeline.layouts->of(pipeline.def.output);
    int h = pipeline.def.output->dims() == 2 ? pipeline.def.height : 1;
    res.output = gatherImageFrom(dev, outL, pipeline.def.width, h);
    return res;
}

FuncLaunchResult
runPipelineFunc(const PipelineDef &def, const HardwareConfig &cfg,
                const std::map<std::string, Image> &inputs,
                const CompilerOptions &opts)
{
    CompiledPipeline cp = compilePipeline(def, cfg, opts);
    FuncDevice dev(cfg);
    return funcLaunchOnDevice(dev, cp, inputs);
}

} // namespace ipim
