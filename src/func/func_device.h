/**
 * @file
 * Functional execution backend: an un-clocked interpreter for compiled
 * SIMB vault programs over the same DRAM-bank backing store the cycle
 * simulator uses (ROADMAP item 2; DESIGN.md Sec. 16).
 *
 * Architectural state per vault mirrors the hardware exactly — CtrlRF +
 * VSM at the vault, PGSM per process group, DataRF/AddrRF/bank per PE —
 * but there is no pipeline, queue, memory controller, or NoC: every
 * instruction's effects apply immediately, in program order per vault,
 * ascending PE order per broadcast.
 *
 * Why that is pixel-exact with the cycle simulator (DESIGN.md Sec. 16):
 * the control core issues strictly in order and the issue-time
 * scoreboard orders every register RAW/WAR/WAW and every scratchpad
 * RAW/WAR; per-PE bank accesses flow through a same-address-order-
 * preserving MC; so the only reorderings the hardware permits are ones
 * no dependence (as the hardware defines it) observes.  The known gap
 * is scratchpad write-after-write, which the hardware leaves unordered
 * and the compiler never emits overlapping (sim/hazards.h).
 *
 * Inter-vault interaction uses the sync-barrier structure: vaults run
 * sequentially to their next sync, the barrier releases only when every
 * non-halted vault arrived at the same phase, and req transfers resolve
 * immediately against the remote bank — sound because the V14-V18
 * conflict analysis proves accepted programs have no same-segment
 * cross-vault races (src/analysis/conflict.cc).
 */
#ifndef IPIM_FUNC_FUNC_DEVICE_H_
#define IPIM_FUNC_FUNC_DEVICE_H_

#include <unordered_map>
#include <vector>

#include "common/config.h"
#include "dram/bank.h"
#include "isa/instruction.h"
#include "sim/scratchpad.h"

namespace ipim {

class FuncDevice
{
  public:
    /** Instruction budget mirroring the cycle watchdog's role. */
    static constexpr u64 kDefaultInstBudget = 500'000'000ull;

    explicit FuncDevice(const HardwareConfig &cfg);

    const HardwareConfig &cfg() const { return cfg_; }
    u32 totalVaults() const { return cfg_.cubes * cfg_.vaultsPerCube; }

    /** Functional access to one PE's bank (runtime scatter/gather);
     *  same signature as Device::bank so runtime/transfer.h templates
     *  over both. */
    BankStorage &bank(u32 chip, u32 v, u32 pg, u32 pe);

    /** Upload the same program to every vault (copied into the
     *  device, so the argument may be a temporary). */
    void loadProgramAll(const std::vector<Instruction> &prog);

    /** Upload a per-vault program (chip-major order).  Like the cycle
     *  device, this soft-resets register files (re-seeding the AddrRF
     *  identity registers) but preserves scratchpad and bank contents
     *  across kernels.  The programs are borrowed, not copied: @p progs
     *  must outlive the subsequent run() (a CompiledPipeline's kernels
     *  naturally do). */
    void loadPrograms(const std::vector<std::vector<Instruction>> &progs);

    /**
     * Interpret every loaded program to completion.  @return dynamic
     * instructions executed.  Throws FatalError on the same conditions
     * the cycle simulator would (out-of-range accesses, division by
     * zero, barrier deadlock) or once @p maxInsts execute without all
     * vaults halting (runaway-loop watchdog).
     */
    u64 run(u64 maxInsts = kDefaultInstBudget);

    /** Power-cycle: erase programs, registers, scratchpads, banks. */
    void reset();

    /** Dynamic instructions executed since construction or reset(). */
    u64 totalExecuted() const { return executed_; }

    // Architectural state access (tests / differential fuzzing).
    Scratchpad &vsm(u32 chip, u32 v);
    Scratchpad &pgsm(u32 chip, u32 v, u32 pg);
    u32 crf(u32 chip, u32 v, u16 idx) const;
    const VecWord &drf(u32 chip, u32 v, u32 pg, u32 pe, u16 idx) const;
    u32 arf(u32 chip, u32 v, u32 pg, u32 pe, u16 idx) const;

  private:
    struct PeState
    {
        std::vector<VecWord> drf;
        std::vector<u32> arf;
        BankStorage bank;

        PeState(const HardwareConfig &cfg)
            : drf(cfg.dataRfEntries()), arf(cfg.addrRfEntries(), 0),
              bank(cfg.bankBytes, cfg.dramRowBytes)
        {
        }
    };

    struct PgState
    {
        Scratchpad pgsm;
        std::vector<PeState> pes;

        PgState(const HardwareConfig &cfg) : pgsm(cfg.pgsmBytes)
        {
            for (u32 p = 0; p < cfg.pesPerPg; ++p)
                pes.emplace_back(cfg);
        }
    };

    struct VaultState
    {
        std::vector<u32> crf;
        Scratchpad vsm;
        std::vector<PgState> pgs;
        /// peTable[i] = (owning PG, PE) of vault-wide PE index i, so a
        /// broadcast iterates set mask bits directly instead of
        /// scanning every PE slot (masks are often sparse).  Built
        /// once at construction; the pointees live on pgs' and pes'
        /// heap buffers, which never reallocate after that.
        std::vector<std::pair<PgState *, PeState *>> peTable;

        const std::vector<Instruction> *prog = nullptr; ///< borrowed
        u32 pc = 0;
        bool halted = true;
        bool atSync = false;
        u32 syncPhase = 0;

        VaultState(const HardwareConfig &cfg)
            : crf(cfg.ctrlRfEntries, 0), vsm(cfg.vsmBytes)
        {
            for (u32 g = 0; g < cfg.pgsPerVault; ++g)
                pgs.emplace_back(cfg);
        }
    };

    VaultState &vaultAt(u32 chip, u32 v);
    const VaultState &vaultAt(u32 chip, u32 v) const;

    /** Shared tail of loadPrograms/loadProgramAll: validate (memoized)
     *  and point every vault at its borrowed program. */
    void
    loadProgramPtrs(const std::vector<const std::vector<Instruction> *> &);

    /** Zero register files and re-seed AddrRF identities (soft reset). */
    void resetVaultRegs(VaultState &vs, u32 chip, u32 vaultInCube);

    /** Execute @p vs up to its next sync (sets atSync) or halt. */
    void runVault(VaultState &vs, u64 &budget, u64 maxInsts);

    void execBroadcast(VaultState &vs, const Instruction &inst);
    void execPe(VaultState &vs, PgState &pg, PeState &pe,
                const Instruction &inst);
    void execReq(VaultState &vs, const Instruction &inst);

    static u64 resolveMem(const PeState &pe, const MemOperand &m);

    HardwareConfig cfg_;
    std::vector<VaultState> vaults_; ///< chip-major
    u64 executed_ = 0;

    /** Backing store for loadProgramAll's broadcast program. */
    std::vector<Instruction> ownedProg_;

    /**
     * Programs already validated on this device, keyed by storage
     * identity (data pointer -> length).  Validity is a property of the
     * program text and the fixed config, not of device state, so the
     * memo survives reset() and repeated launches of a cached pipeline
     * skip the linear re-validation pass.  Caveat: if a program vector
     * is freed and a different program lands at the same address with
     * the same length, its validation is skipped — the interpreter's
     * own range checks still bound every access, so the failure mode is
     * a later (or missing) diagnostic, never an unchecked access.
     */
    std::unordered_map<const Instruction *, size_t> validated_;
};

} // namespace ipim

#endif // IPIM_FUNC_FUNC_DEVICE_H_
