/**
 * @file
 * Latency estimation for the functional backend (DESIGN.md Sec. 16).
 *
 * The functional interpreter produces pixels but no cycle count, so the
 * serving layer needs an estimate it can trust for SJF scheduling and
 * SLO accounting.  The base estimate is the PR 6 static cost model
 * (src/analysis/cost.cc, within ±30% of measured cycles on all ten
 * benchmarks), summed over the pipeline's kernels.  A LatencyEstimator
 * optionally refines it: record one measured cycle-mode run per
 * pipeline x geometry key and later estimates for that key are the
 * static prediction scaled by measured/static — calibration transfers
 * the cycle simulator's fidelity to functional-only runs of the same
 * program.
 */
#ifndef IPIM_FUNC_ESTIMATOR_H_
#define IPIM_FUNC_ESTIMATOR_H_

#include <map>
#include <string>
#include <vector>

#include "compiler/codegen.h"

namespace ipim {

/** Calibration key: pipeline x image size x geometry x options. */
std::string estimatorKey(const CompiledPipeline &pipe);

/** Static per-kernel cycle estimates (analysis/cost.h), in stage
 *  order.  A kernel the model cannot cost contributes 0. */
std::vector<f64> staticKernelEstimates(const CompiledPipeline &pipe);

class LatencyEstimator
{
  public:
    /**
     * Static per-kernel estimates for @p pipe, memoized by key.  The
     * cost model re-walks every kernel's program (CFG + dataflow), so
     * recomputing it per launch would dominate functional-mode wall
     * time; repeated launches of one pipeline pay it once.
     */
    const std::vector<f64> &staticEstimates(const CompiledPipeline &pipe);

    /** Record a measured cycle-mode run of @p pipe (first wins). */
    void recordMeasurement(const CompiledPipeline &pipe, f64 measured);

    /** measured/static for @p pipe's key; 1.0 when uncalibrated or the
     *  static model produced nothing to scale. */
    f64 scaleFor(const CompiledPipeline &pipe) const;

    bool calibrated(const CompiledPipeline &pipe) const;

    size_t size() const { return scale_.size(); }

  private:
    std::map<std::string, f64> scale_;
    std::map<std::string, std::vector<f64>> static_;
};

} // namespace ipim

#endif // IPIM_FUNC_ESTIMATOR_H_
