#include "dram/memory_controller.h"

#include <algorithm>

#include "common/logging.h"

namespace ipim {

MemoryController::MemoryController(const HardwareConfig &cfg, u32 pgIdx,
                                   ActivationLimiter *limiter,
                                   StatsRegistry *stats, Tracer *trace,
                                   const std::string &traceTrack)
    : cfg_(cfg), pgIdx_(pgIdx), limiter_(limiter), stats_(stats),
      trace_(trace)
{
    if (trace_ != nullptr)
        traceTrack_ = trace_->track(traceTrack);
    for (u32 pe = 0; pe < cfg.pesPerPg; ++pe) {
        storages_.push_back(
            std::make_unique<BankStorage>(cfg.bankBytes, cfg.dramRowBytes));
        banks_.emplace_back(cfg.timing);
        autoPrePending_.push_back(false);
        // Stagger per-bank refresh so banks do not refresh in lockstep.
        nextRefreshAt_.push_back(cfg.timing.tREFI +
                                 pe * (cfg.timing.tREFI / cfg.pesPerPg));
    }
}

void
MemoryController::reset()
{
    queue_.clear();
    inflight_.clear();
    inflightSeq_ = 0;
    completions_.clear();
    for (u32 pe = 0; pe < cfg_.pesPerPg; ++pe) {
        storages_[pe]->clear();
        banks_[pe].reset();
        autoPrePending_[pe] = false;
        nextRefreshAt_[pe] = cfg_.timing.tREFI +
                             pe * (cfg_.timing.tREFI / cfg_.pesPerPg);
    }
}

void
MemoryController::enqueue(const MemRequest &req)
{
    if (!canAccept())
        panic("memory controller queue overflow");
    if (req.peInPg >= cfg_.pesPerPg)
        panic("request for PE ", req.peInPg, " outside this PG");
    if (req.addr % kVectorBytes != 0)
        fatal("bank access not 128b aligned: addr=", req.addr);
    if (req.addr + kVectorBytes > cfg_.bankBytes)
        fatal("bank access out of range: addr=", req.addr);
    queue_.push_back({req, false});
}

bool
MemoryController::conflictsWithOlder(size_t idx) const
{
    const MemRequest &r = queue_[idx].req;
    for (size_t i = 0; i < idx; ++i) {
        const MemRequest &q = queue_[i].req;
        if (q.peInPg == r.peInPg && q.addr == r.addr &&
            (q.write || r.write)) {
            return true;
        }
    }
    return false;
}

int
MemoryController::pickRequest(Cycle now) const
{
    if (queue_.empty())
        return -1;
    if (cfg_.schedPolicy == SchedPolicy::kFrFcfs) {
        // Oldest row-hit first; fall back to oldest.
        for (size_t i = 0; i < queue_.size(); ++i) {
            const MemRequest &r = queue_[i].req;
            const BankTimingState &bank = banks_[r.peInPg];
            if (bank.isOpen() &&
                bank.openRow() ==
                    i64(storages_[r.peInPg]->rowOf(r.addr)) &&
                bank.earliestCas(now) <= now && !conflictsWithOlder(i)) {
                return int(i);
            }
        }
    }
    return 0;
}

bool
MemoryController::serviceRefresh(Cycle now)
{
    for (u32 pe = 0; pe < cfg_.pesPerPg; ++pe) {
        if (now < nextRefreshAt_[pe])
            continue;
        BankTimingState &bank = banks_[pe];
        if (bank.isOpen()) {
            if (bank.earliestPre(now) <= now) {
                bank.pre(now);
                stats_->inc("dram.pre");
                if (Tracer::active(trace_))
                    trace_->instant(traceTrack_, TraceEv::kDramPre, now);
                return true;
            }
            continue; // must wait until a precharge is legal
        }
        if (bank.earliestAct(now) <= now) {
            bank.refresh(now);
            nextRefreshAt_[pe] += cfg_.timing.tREFI;
            stats_->inc("dram.ref");
            if (Tracer::active(trace_))
                trace_->span(traceTrack_, TraceEv::kDramRefresh, now,
                             now + cfg_.timing.tRFC);
            return true;
        }
    }
    return false;
}

bool
MemoryController::issueForRequest(Cycle now, size_t idx)
{
    MemRequest &r = queue_[idx].req;
    BankTimingState &bank = banks_[r.peInPg];
    i64 row = i64(storages_[r.peInPg]->rowOf(r.addr));

    if (bank.isOpen() && bank.openRow() != row) {
        queue_[idx].sawMiss = true;
        if (bank.earliestPre(now) > now)
            return false;
        bank.pre(now);
        stats_->inc("dram.pre");
        if (Tracer::active(trace_))
            trace_->instant(traceTrack_, TraceEv::kDramPre, now);
        return true;
    }
    if (!bank.isOpen()) {
        queue_[idx].sawMiss = true;
        Cycle ok = std::max(bank.earliestAct(now),
                            limiter_->earliestAct(now, pgIdx_));
        if (ok > now)
            return false;
        bank.act(now, row);
        limiter_->recordAct(now, pgIdx_);
        stats_->inc("dram.act");
        if (Tracer::active(trace_))
            trace_->instant(traceTrack_, TraceEv::kDramAct, now);
        return true;
    }
    // Open on the right row: issue CAS.
    if (bank.earliestCas(now) > now)
        return false;
    Cycle done = bank.cas(now, r.write);
    stats_->inc(r.write ? "dram.wr" : "dram.rd");
    stats_->inc(queue_[idx].sawMiss ? "dram.rowMiss" : "dram.rowHit");
    if (Tracer::active(trace_)) {
        TraceEv ev = r.write ? (queue_[idx].sawMiss
                                    ? TraceEv::kDramWriteMiss
                                    : TraceEv::kDramWriteHit)
                             : (queue_[idx].sawMiss
                                    ? TraceEv::kDramReadMiss
                                    : TraceEv::kDramReadHit);
        trace_->instantArg(traceTrack_, ev, now, r.peInPg);
    }
    if (r.write)
        storages_[r.peInPg]->writeVec(r.addr, r.data);
    inflight_.emplace(std::make_pair(done, inflightSeq_++), r);
    if (cfg_.pagePolicy == PagePolicy::kClosePage)
        autoPrePending_[r.peInPg] = true;
    queue_.erase(queue_.begin() + idx);
    return true;
}

void
MemoryController::tick(Cycle now)
{
    if (Tracer::sampleDue(trace_, now))
        trace_->counter(traceTrack_, TraceEv::kDramQueue, now,
                        f64(queue_.size()));

    // Retire finished accesses, in (doneAt, issue-order) order.
    while (!inflight_.empty() && inflight_.begin()->first.first <= now) {
        const MemRequest &r = inflight_.begin()->second;
        MemCompletion c;
        c.id = r.id;
        c.peInPg = r.peInPg;
        c.write = r.write;
        if (!r.write)
            c.data = storages_[r.peInPg]->readVec(r.addr);
        completions_.push_back(c);
        inflight_.erase(inflight_.begin());
    }

    // One command per cycle: refresh first, then auto-precharge, then the
    // scheduled request.
    if (serviceRefresh(now))
        return;

    for (u32 pe = 0; pe < cfg_.pesPerPg; ++pe) {
        if (autoPrePending_[pe] && banks_[pe].isOpen() &&
            banks_[pe].earliestPre(now) <= now) {
            banks_[pe].pre(now);
            autoPrePending_[pe] = false;
            stats_->inc("dram.pre");
            if (Tracer::active(trace_))
                trace_->instant(traceTrack_, TraceEv::kDramPre, now);
            return;
        }
    }

    // pickRequest never selects a younger request that conflicts with an
    // older one, so same-address order is preserved.
    int idx = pickRequest(now);
    if (idx >= 0)
        issueForRequest(now, size_t(idx));
}

Cycle
MemoryController::nextEventAt(Cycle now) const
{
    // Undrained completions can unblock a PE this very cycle.
    if (!completions_.empty())
        return now;

    Cycle e = kNeverCycle;
    if (!inflight_.empty())
        e = std::min(e, inflight_.begin()->first.first);

    for (u32 pe = 0; pe < cfg_.pesPerPg; ++pe) {
        const BankTimingState &bank = banks_[pe];
        if (now >= nextRefreshAt_[pe]) {
            // Refresh already due: the blocker is PRE (open bank) or
            // ACT (closed bank, refresh reuses the ACT slot) legality.
            e = std::min(e, std::max(now, bank.isOpen()
                                              ? bank.preAllowedAt()
                                              : bank.actAllowedAt()));
        } else {
            e = std::min(e, nextRefreshAt_[pe]);
        }
        if (autoPrePending_[pe] && bank.isOpen())
            e = std::min(e, std::max(now, bank.preAllowedAt()));
    }

    // A queued request becomes actionable when its next command (PRE,
    // ACT, or CAS against its target bank) becomes legal.  This may be
    // conservative — another bank may hold the command bus that cycle —
    // which only costs a no-op dense tick, never a missed event.
    for (const Queued &q : queue_) {
        const BankTimingState &bank = banks_[q.req.peInPg];
        i64 row = i64(storages_[q.req.peInPg]->rowOf(q.req.addr));
        Cycle at;
        if (bank.isOpen() && bank.openRow() != row)
            at = bank.preAllowedAt();
        else if (!bank.isOpen())
            at = std::max(bank.actAllowedAt(),
                          limiter_->earliestActAbs(pgIdx_));
        else
            at = bank.casAllowedAt();
        e = std::min(e, std::max(now, at));
    }
    return e;
}

} // namespace ipim
