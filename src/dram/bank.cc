#include "dram/bank.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace ipim {

BankStorage::BankStorage(u64 bankBytes, u32 rowBytes)
    : bankBytes_(bankBytes), rowBytes_(rowBytes)
{
    if (rowBytes == 0 || bankBytes % rowBytes != 0)
        fatal("bank size must be a multiple of the row size");
}

std::vector<u8> &
BankStorage::rowData(u32 row)
{
    auto it = rows_.find(row);
    if (it == rows_.end())
        it = rows_.emplace(row, std::vector<u8>(rowBytes_, 0)).first;
    cachedRow_ = row;
    cachedData_ = it->second.data();
    return it->second;
}

const std::vector<u8> *
BankStorage::rowDataIfPresent(u32 row) const
{
    auto it = rows_.find(row);
    if (it == rows_.end())
        return nullptr;
    cachedRow_ = row;
    cachedData_ = it->second.data();
    return &it->second;
}

void
BankStorage::readSlow(u64 addr, u8 *out, u32 len) const
{
    if (addr + len > bankBytes_)
        fatal("bank read out of range: addr=", addr, " len=", len,
              " bank=", bankBytes_);
    while (len > 0) {
        u32 row = rowOf(addr);
        u32 off = u32(addr % rowBytes_);
        u32 chunk = std::min(len, rowBytes_ - off);
        if (const auto *data = rowDataIfPresent(row))
            std::memcpy(out, data->data() + off, chunk);
        else
            std::memset(out, 0, chunk);
        addr += chunk;
        out += chunk;
        len -= chunk;
    }
}

void
BankStorage::writeSlow(u64 addr, const u8 *in, u32 len)
{
    if (addr + len > bankBytes_)
        fatal("bank write out of range: addr=", addr, " len=", len,
              " bank=", bankBytes_);
    while (len > 0) {
        u32 row = rowOf(addr);
        u32 off = u32(addr % rowBytes_);
        u32 chunk = std::min(len, rowBytes_ - off);
        std::memcpy(rowData(row).data() + off, in, chunk);
        addr += chunk;
        in += chunk;
        len -= chunk;
    }
}

Cycle
BankTimingState::earliestAct(Cycle now) const
{
    return std::max(now, actAllowedAt_);
}

Cycle
BankTimingState::earliestCas(Cycle now) const
{
    return std::max(now, casAllowedAt_);
}

Cycle
BankTimingState::earliestPre(Cycle now) const
{
    return std::max(now, preAllowedAt_);
}

void
BankTimingState::act(Cycle at, i64 row)
{
    if (openRow_ != kNoRow)
        panic("ACT on a bank with an open row");
    if (at < actAllowedAt_)
        panic("ACT issued before tRP expired");
    openRow_ = row;
    casAllowedAt_ = std::max(casAllowedAt_, at + t_.tRCD);
    preAllowedAt_ = std::max(preAllowedAt_, at + t_.tRAS);
}

Cycle
BankTimingState::cas(Cycle at, bool write)
{
    if (openRow_ == kNoRow)
        panic("CAS on a closed bank");
    if (at < casAllowedAt_)
        panic("CAS issued before it was legal");
    casAllowedAt_ = at + t_.tCCD;
    if (write) {
        // Write data is on the bus with the command; the bank needs
        // tWR before a precharge.
        preAllowedAt_ = std::max(preAllowedAt_, at + t_.tWR);
        return at + 1;
    }
    preAllowedAt_ = std::max(preAllowedAt_, at + t_.tRTP);
    return at + t_.tCL;
}

void
BankTimingState::pre(Cycle at)
{
    if (openRow_ == kNoRow)
        panic("PRE on a closed bank");
    if (at < preAllowedAt_)
        panic("PRE issued before it was legal");
    openRow_ = kNoRow;
    actAllowedAt_ = std::max(actAllowedAt_, at + t_.tRP);
}

void
BankTimingState::refresh(Cycle at)
{
    if (openRow_ != kNoRow)
        panic("REF on a bank with an open row");
    actAllowedAt_ = std::max(actAllowedAt_, at + t_.tRFC);
}

Cycle
ActivationLimiter::earliestAct(Cycle now, u32 pgIdx) const
{
    return std::max(now, earliestActAbs(pgIdx));
}

Cycle
ActivationLimiter::earliestActAbs(u32 pgIdx) const
{
    Cycle t = 0;
    if (anyAct_)
        t = std::max(t, lastActAny_ + t_.tRRDS);
    if (auto it = lastActPerPg_.find(pgIdx); it != lastActPerPg_.end())
        t = std::max(t, it->second + t_.tRRDL);
    if (actWindow_.size() >= 4)
        t = std::max(t, actWindow_[actWindow_.size() - 4] + t_.tFAW);
    return t;
}

void
ActivationLimiter::recordAct(Cycle at, u32 pgIdx)
{
    lastActAny_ = at;
    anyAct_ = true;
    lastActPerPg_[pgIdx] = at;
    actWindow_.push_back(at);
    if (actWindow_.size() > 8)
        actWindow_.erase(actWindow_.begin(), actWindow_.end() - 4);
}

} // namespace ipim
