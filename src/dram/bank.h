/**
 * @file
 * One DRAM bank: sparse data storage plus the row-buffer timing state
 * machine (ACT/RD/WR/PRE/REF) with the Table III core timing parameters.
 *
 * iPIM attaches one process engine to each bank without changing the bank
 * circuitry (Sec. II-A), so this model is shared by the near-bank and the
 * process-on-base-die configurations.
 */
#ifndef IPIM_DRAM_BANK_H_
#define IPIM_DRAM_BANK_H_

#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/config.h"
#include "common/stats.h"
#include "common/types.h"

namespace ipim {

/**
 * Byte-addressable sparse backing store for one 16 MiB bank.
 *
 * Rows are allocated lazily so that a full 8-cube device (32k banks)
 * stays cheap to instantiate.
 */
class BankStorage
{
  public:
    BankStorage(u64 bankBytes, u32 rowBytes);

    /** Read @p len bytes at @p addr; unwritten bytes read as zero. */
    void
    read(u64 addr, u8 *out, u32 len) const
    {
        u32 off = u32(addr % rowBytes_);
        if (cachedData_ && off + len <= rowBytes_ &&
            rowOf(addr) == cachedRow_) {
            std::memcpy(out, cachedData_ + off, len);
            return;
        }
        readSlow(addr, out, len);
    }

    /** Write @p len bytes at @p addr. */
    void
    write(u64 addr, const u8 *in, u32 len)
    {
        u32 off = u32(addr % rowBytes_);
        if (cachedData_ && off + len <= rowBytes_ &&
            rowOf(addr) == cachedRow_) {
            std::memcpy(cachedData_ + off, in, len);
            return;
        }
        writeSlow(addr, in, len);
    }

    VecWord
    readVec(u64 addr) const
    {
        VecWord v;
        read(addr, reinterpret_cast<u8 *>(v.lanes.data()), kVectorBytes);
        return v;
    }

    void
    writeVec(u64 addr, const VecWord &v)
    {
        write(addr, reinterpret_cast<const u8 *>(v.lanes.data()),
              kVectorBytes);
    }

    u64 bankBytes() const { return bankBytes_; }
    u32 rowBytes() const { return rowBytes_; }
    u32 rowOf(u64 addr) const { return u32(addr / rowBytes_); }

    /** Number of lazily materialized rows (for tests). */
    size_t allocatedRows() const { return rows_.size(); }

    /** Drop all contents; unwritten bytes read as zero again. */
    void
    clear()
    {
        rows_.clear();
        cachedData_ = nullptr;
    }

    /** Deep copy of every materialized row — the bank half of a
     *  preemption checkpoint (src/fleet/checkpoint.h, DESIGN.md
     *  Sec. 17).  Rows absent from the snapshot read as zero. */
    std::unordered_map<u32, std::vector<u8>> snapshotRows() const
    {
        return rows_;
    }

    /** Replace the backing contents with @p rows (checkpoint restore).
     *  The row cache is invalidated: its pointee may not exist in the
     *  restored map. */
    void
    restoreRows(std::unordered_map<u32, std::vector<u8>> rows)
    {
        rows_ = std::move(rows);
        cachedData_ = nullptr;
    }

  private:
    std::vector<u8> &rowData(u32 row);
    const std::vector<u8> *rowDataIfPresent(u32 row) const;

    /** Out-of-line paths: row-spanning, unmaterialized, or uncached. */
    void readSlow(u64 addr, u8 *out, u32 len) const;
    void writeSlow(u64 addr, const u8 *in, u32 len);

    u64 bankBytes_;
    u32 rowBytes_;
    mutable std::unordered_map<u32, std::vector<u8>> rows_;
    /**
     * One-entry row cache backing the inline fast path above: kernels
     * have high row locality by construction (the paper's premise), so
     * most accesses hit the row touched last and skip the hash-map
     * lookup.  The pointer stays valid across rehashes because
     * unordered_map never moves mapped values; clear() invalidates it.
     * A cached row is always materialized and in range, so a fast-path
     * hit needs no further bounds check.
     */
    mutable u32 cachedRow_ = 0;
    mutable u8 *cachedData_ = nullptr;
};

/**
 * Row-buffer timing state of one bank.
 *
 * The owning memory controller issues commands; this class answers
 * "when is command X legal?" and tracks the open row.
 */
class BankTimingState
{
  public:
    explicit BankTimingState(const DramTiming &t) : t_(t) {}

    static constexpr i64 kNoRow = -1;

    i64 openRow() const { return openRow_; }
    bool isOpen() const { return openRow_ != kNoRow; }

    Cycle earliestAct(Cycle now) const;
    Cycle earliestCas(Cycle now) const;
    Cycle earliestPre(Cycle now) const;

    /**
     * Raw allowed-at registers, for next-event computation (DESIGN.md
     * Sec. 13): the absolute cycle at which the command becomes legal
     * for this bank, ignoring the vault-level activation limiter.
     */
    Cycle actAllowedAt() const { return actAllowedAt_; }
    Cycle casAllowedAt() const { return casAllowedAt_; }
    Cycle preAllowedAt() const { return preAllowedAt_; }

    /** Issue ACT of @p row at time @p at (must be legal). */
    void act(Cycle at, i64 row);

    /** Issue RD or WR at time @p at; returns data-ready/done time. */
    Cycle cas(Cycle at, bool write);

    void pre(Cycle at);

    /** Refresh: bank busy until at + tRFC; row closed. */
    void refresh(Cycle at);

    /** Back to power-on state: row closed, all commands legal at 0. */
    void
    reset()
    {
        openRow_ = kNoRow;
        actAllowedAt_ = 0;
        casAllowedAt_ = 0;
        preAllowedAt_ = 0;
    }

  private:
    const DramTiming &t_;
    i64 openRow_ = kNoRow;
    Cycle actAllowedAt_ = 0;
    Cycle casAllowedAt_ = 0;
    Cycle preAllowedAt_ = 0;
};

/**
 * Vault-level activate-rate limiter: tRRDS between any two ACTs in the
 * vault, tRRDL between ACTs in the same process group, and tFAW over any
 * four consecutive ACTs (Sec. VII-A "timing parameters to limit power").
 */
class ActivationLimiter
{
  public:
    explicit ActivationLimiter(const DramTiming &t) : t_(t) {}

    Cycle earliestAct(Cycle now, u32 pgIdx) const;

    /**
     * Absolute earliest ACT cycle for @p pgIdx from the recorded
     * history alone (0 when unconstrained).  earliestAct(now, pg) ==
     * max(now, earliestActAbs(pg)); the absolute form feeds
     * MemoryController::nextEventAt (DESIGN.md Sec. 13).
     */
    Cycle earliestActAbs(u32 pgIdx) const;

    void recordAct(Cycle at, u32 pgIdx);

    /** Forget all activation history (device power-cycle). */
    void
    reset()
    {
        lastActAny_ = 0;
        anyAct_ = false;
        lastActPerPg_.clear();
        actWindow_.clear();
    }

  private:
    const DramTiming &t_;
    Cycle lastActAny_ = 0;
    bool anyAct_ = false;
    std::unordered_map<u32, Cycle> lastActPerPg_;
    std::vector<Cycle> actWindow_; ///< most recent ACT times (<= 4 kept)
};

} // namespace ipim

#endif // IPIM_DRAM_BANK_H_
