/**
 * @file
 * The lightweight in-DRAM memory controller serving the banks inside one
 * process group (Sec. IV-E): a 16-entry request queue, FCFS / FR-FCFS
 * scheduling, open/close page policies, and tREFI/tRFC refresh.
 */
#ifndef IPIM_DRAM_MEMORY_CONTROLLER_H_
#define IPIM_DRAM_MEMORY_CONTROLLER_H_

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dram/bank.h"
#include "trace/trace.h"

namespace ipim {

/** One 128b bank access request. */
struct MemRequest
{
    u64 id = 0;       ///< caller-chosen tag, echoed in the completion
    u32 peInPg = 0;   ///< which bank (PE) of this PG
    bool write = false;
    u64 addr = 0;     ///< bank-local byte address, 16B aligned
    VecWord data;     ///< payload for writes
};

/** Completion of a MemRequest. */
struct MemCompletion
{
    u64 id = 0;
    u32 peInPg = 0;
    bool write = false;
    VecWord data; ///< loaded payload for reads
};

/**
 * Per-process-group memory controller.
 *
 * tick() issues at most one DRAM command per cycle on the PG's shared
 * command bus, and retires finished requests into completions().
 */
class MemoryController
{
  public:
    /**
     * @param limiter Vault-level activation limiter (may be shared by
     * several controllers); must outlive this object.
     * @param trace optional tracer (DESIGN.md Sec. 12); when given,
     * ACT/PRE instants, refresh spans, row hit/miss instants, and queue
     * depth samples land on the @p traceTrack track.
     */
    MemoryController(const HardwareConfig &cfg, u32 pgIdx,
                     ActivationLimiter *limiter, StatsRegistry *stats,
                     Tracer *trace = nullptr,
                     const std::string &traceTrack = "");

    bool canAccept() const { return queue_.size() < cfg_.dramReqQueueDepth; }
    u32 queueDepth() const { return u32(queue_.size()); }

    /** Enqueue a request; caller must have checked canAccept(). */
    void enqueue(const MemRequest &req);

    /** Advance one cycle. */
    void tick(Cycle now);

    /** Finished requests since the last drain; caller clears it. */
    std::vector<MemCompletion> &completions() { return completions_; }

    /** Direct functional access for runtime image scatter/gather. */
    BankStorage &storage(u32 peInPg) { return *storages_[peInPg]; }
    const BankStorage &storage(u32 peInPg) const
    {
        return *storages_[peInPg];
    }

    /** True when no request is queued or in flight. */
    bool idle() const { return queue_.empty() && inflight_.empty(); }

    /**
     * Earliest future cycle at which this controller can change state
     * (DESIGN.md Sec. 13): the nearest inflight doneAt, refresh
     * deadline, auto-precharge or queued-command legality threshold.
     * Returns @p now when it could act this very cycle, kNeverCycle
     * when it is fully drained and no refresh is pending.  May be
     * conservative (early) but never late.
     */
    Cycle nextEventAt(Cycle now) const;

    /**
     * Power-cycle: drop queued/in-flight requests, close all rows,
     * restart the staggered refresh schedule, and erase bank contents.
     */
    void reset();

  private:
    struct Queued
    {
        MemRequest req;
        bool sawMiss = false; ///< needed a PRE/ACT before its CAS
    };

    bool conflictsWithOlder(size_t idx) const;
    int pickRequest(Cycle now) const;
    bool serviceRefresh(Cycle now);
    bool issueForRequest(Cycle now, size_t idx);

    const HardwareConfig &cfg_;
    u32 pgIdx_;
    ActivationLimiter *limiter_;
    StatsRegistry *stats_;
    Tracer *trace_;
    u32 traceTrack_ = 0;

    std::vector<std::unique_ptr<BankStorage>> storages_;
    std::vector<BankTimingState> banks_;
    std::vector<bool> autoPrePending_;
    std::vector<Cycle> nextRefreshAt_;

    std::deque<Queued> queue_;
    /**
     * CAS accesses awaiting their data-ready cycle, ordered by
     * (doneAt, issue sequence).  The issue counter — not the caller's
     * req.id — breaks doneAt ties, because FR-FCFS may issue requests
     * out of arrival order; retiring in this order is exactly the
     * order the dense per-cycle scan produced.
     */
    std::map<std::pair<Cycle, u64>, MemRequest> inflight_;
    u64 inflightSeq_ = 0;
    std::vector<MemCompletion> completions_;
};

} // namespace ipim

#endif // IPIM_DRAM_MEMORY_CONTROLLER_H_
