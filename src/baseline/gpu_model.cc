#include "baseline/gpu_model.h"

#include <functional>
#include <set>

#include "common/logging.h"

namespace ipim {

namespace {

/** Count FP and INT arithmetic nodes in an expression tree. */
void
countOps(const Expr &e, f64 &flops, f64 &indexOps)
{
    const ExprNode &n = e.node();
    switch (n.kind) {
      case ExprKind::kConstF:
      case ExprKind::kConstI:
      case ExprKind::kVar:
        return;
      case ExprKind::kCall:
        // 2D -> 1D address translation (Sec. III); GPU compilers hoist
        // most of it, so charge one INT op per access.
        indexOps += 1;
        for (const Expr &a : n.args)
            countOps(a, flops, indexOps);
        return;
      case ExprKind::kCastI:
      case ExprKind::kCastF:
        flops += 1;
        countOps(n.kids[0], flops, indexOps);
        return;
      default: {
        // Arithmetic node: int subtrees are index math, float are FLOPs.
        bool isInt = true;
        std::function<bool(const Expr &)> anyFloat =
            [&](const Expr &x) -> bool {
            const ExprNode &m = x.node();
            if (m.kind == ExprKind::kConstF || m.kind == ExprKind::kCall ||
                m.kind == ExprKind::kCastF)
                return true;
            for (const Expr &k : m.kids)
                if (anyFloat(k))
                    return true;
            return false;
        };
        isInt = !anyFloat(e);
        (isInt ? indexOps : flops) += n.kind == ExprKind::kClamp ? 2 : 1;
        for (const Expr &k : n.kids)
            countOps(k, flops, indexOps);
        return;
      }
    }
}

} // namespace

GpuRunEstimate
estimateGpu(const PipelineAnalysis &pa, const GpuModelParams &p)
{
    GpuRunEstimate est;
    f64 effBw = p.peakBwBytesPerSec * p.memUtilization;
    f64 effAlu = p.peakFp32PerSec * p.sustainedAluFrac;

    for (const StageInfo &s : pa.stages) {
        if (s.func->isInput())
            continue;
        GpuStageCost c;
        c.name = s.func->name();
        f64 outPixels = f64(s.region.x.extent()) *
                        f64(s.region.y.extent());

        // DRAM traffic: write the output once, read each distinct
        // producer's required footprint once (caches capture stencil
        // reuse within a kernel).
        c.bytes = outPixels * 4.0;
        std::set<const Func *> seen;
        for (const CallSite &cs : s.calls) {
            if (!seen.insert(cs.callee.get()).second)
                continue;
            const StageInfo &prod = pa.stageOf(cs.callee);
            c.bytes += f64(prod.region.x.extent()) *
                       f64(prod.region.y.extent()) * 4.0;
        }

        f64 flopsPerPx = 0, idxPerPx = 0;
        if (s.isReduction) {
            const UpdateDef &u = s.updates[0];
            f64 domain = f64(u.dom.extentX) *
                         f64(std::max<i64>(u.dom.extentY, 1));
            countOps(u.value, flopsPerPx, idxPerPx);
            countOps(u.idxX, flopsPerPx, idxPerPx);
            c.flops = flopsPerPx * domain;
            c.indexOps = idxPerPx * domain + 2 * domain;
            c.atomics = domain;
            c.bytes += domain * 4.0;
        } else {
            countOps(s.rhs, flopsPerPx, idxPerPx);
            c.flops = flopsPerPx * outPixels;
            c.indexOps = idxPerPx * outPixels;
        }

        f64 tMem = c.bytes / effBw;
        f64 tAlu = (c.flops + c.indexOps) / effAlu;
        f64 tAtomic = c.atomics / p.atomicOpsPerSec;
        c.seconds = std::max({tMem, tAlu, tAtomic}) + p.kernelLaunchSec;

        est.bytes += c.bytes;
        est.flops += c.flops;
        est.indexOps += c.indexOps;
        est.seconds += c.seconds;
        est.stages.push_back(c);
    }

    est.joules = est.seconds * p.boardPowerWatts;
    est.dramBandwidthBytesPerSec =
        est.seconds > 0 ? est.bytes / est.seconds : 0;
    est.dramUtilization =
        est.dramBandwidthBytesPerSec / p.peakBwBytesPerSec;
    est.aluUtilization =
        est.seconds > 0
            ? (est.flops + est.indexOps) / est.seconds / p.peakFp32PerSec
            : 0;
    f64 allOps = est.flops + est.indexOps;
    est.indexAluShare = allOps > 0 ? est.indexOps / allOps : 0;
    return est;
}

} // namespace ipim
