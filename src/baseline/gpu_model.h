/**
 * @file
 * Analytical NVIDIA Tesla V100 baseline (see DESIGN.md, substitutions).
 *
 * The paper profiles image pipelines on a real V100 (Sec. III, Fig. 1)
 * and finds them DRAM-bandwidth-bound (57.55% DRAM utilization ==
 * 518 GB/s effective, 3.43% ALU utilization).  This model reproduces
 * that regime with a roofline driven by per-stage byte/FLOP/index-op
 * counts extracted from the same pipeline IR the iPIM compiler consumes,
 * so both sides of every Fig. 6/7 comparison share one workload
 * definition.
 */
#ifndef IPIM_BASELINE_GPU_MODEL_H_
#define IPIM_BASELINE_GPU_MODEL_H_

#include "compiler/analysis.h"

namespace ipim {

/** Calibration constants for the V100 card (paper Sec. III / VII-A). */
struct GpuModelParams
{
    f64 peakBwBytesPerSec = 900e9; ///< 4 HBM2 stacks
    f64 memUtilization = 0.5755;   ///< measured average (Fig. 1)
    f64 peakFp32PerSec = 15.7e12;
    f64 sustainedAluFrac = 0.6;    ///< achievable fraction on FP32
    f64 kernelLaunchSec = 1e-6;
    f64 boardPowerWatts = 300.0;
    /// Value-dependent scatter (Histogram) throughput under Halide's
    /// default GPU schedule: global-atomic bound with heavy same-bin
    /// contention on 256 bins (Sec. VII-B explains the GPU's inferior
    /// Histogram performance).
    f64 atomicOpsPerSec = 0.2e9;
};

/** Per-stage workload characterization extracted from the pipeline IR. */
struct GpuStageCost
{
    std::string name;
    f64 bytes = 0;    ///< DRAM traffic (unique in + out bytes)
    f64 flops = 0;    ///< FP32 arithmetic
    f64 indexOps = 0; ///< INT32 index arithmetic
    f64 atomics = 0;  ///< value-dependent scatter updates
    f64 seconds = 0;  ///< roofline time
};

/** Whole-pipeline estimate; the Fig. 1 columns derive from this. */
struct GpuRunEstimate
{
    std::vector<GpuStageCost> stages;
    f64 seconds = 0;
    f64 joules = 0;
    f64 bytes = 0;
    f64 flops = 0;
    f64 indexOps = 0;
    f64 dramBandwidthBytesPerSec = 0; ///< achieved
    f64 dramUtilization = 0;          ///< achieved / peak
    f64 aluUtilization = 0;           ///< (flops+index) / peak
    f64 indexAluShare = 0;            ///< index ops / all ALU ops
};

/** Estimate a pipeline's GPU execution (Halide-style fused schedule). */
GpuRunEstimate estimateGpu(const PipelineAnalysis &pa,
                           const GpuModelParams &params = {});

} // namespace ipim

#endif // IPIM_BASELINE_GPU_MODEL_H_
