/**
 * @file
 * The SIMB instruction record plus its register/memory access metadata.
 *
 * One Instruction value is used in three places: as the compiler backend's
 * IR node (with virtual register indices), as the program stored in a
 * vault's VSM, and as the in-flight entry in the control core's Issued
 * Inst Queue.  The access-set helpers drive both the compiler's dependency
 * graph and the hardware's issue-time hazard check (Sec. IV-B step 2).
 */
#ifndef IPIM_ISA_INSTRUCTION_H_
#define IPIM_ISA_INSTRUCTION_H_

#include <string>

#include "common/logging.h"
#include "isa/opcodes.h"

namespace ipim {

/**
 * A bank/PGSM/VSM address operand.
 *
 * Direct: @c value is a byte offset, identical on every PE executing the
 * instruction.  Indirect: @c value names an AddrRF entry; each PE reads
 * its own AddrRF to obtain a per-PE byte offset (Sec. IV-C, "indirect
 * addressing is supported for the bank, PGSM, and VSM addresses").
 */
struct MemOperand
{
    bool indirect = false;
    u32 value = 0;
    /// Displacement added to the register value in indirect mode
    /// (base+offset addressing; an ISA extension documented in
    /// DESIGN.md that removes most address-temporary calc_arf ops).
    i32 offset = 0;

    static MemOperand direct(u32 addr) { return {false, addr, 0}; }
    static MemOperand viaArf(u32 arfIdx) { return {true, arfIdx, 0}; }

    static MemOperand
    basePlus(u32 arfIdx, i64 disp)
    {
        return {true, arfIdx, i32(disp)};
    }

    bool operator==(const MemOperand &o) const = default;
};

/** Which register file a register reference points into. */
enum class RegFile : u8 { kDrf, kArf, kCrf };

/** A (file, index) register reference used by access sets. */
struct RegRef
{
    RegFile file;
    u16 idx;

    bool operator==(const RegRef &o) const = default;
};

/** Register/memory reads and writes of one instruction. */
struct AccessSet
{
    static constexpr int kMaxReads = 5;
    static constexpr int kMaxWrites = 2;

    RegRef reads[kMaxReads];
    RegRef writes[kMaxWrites];
    u8 numReads = 0;
    u8 numWrites = 0;
    bool readsBank = false;
    bool writesBank = false;
    bool readsPgsm = false;
    bool writesPgsm = false;
    bool readsVsm = false;
    bool writesVsm = false;
    /// PGSM partition masks (bit0 = half A, bit1 = half B); 0b11 when
    /// the instruction carries no scratchBank hint.
    u8 pgsmReadMask = 0;
    u8 pgsmWriteMask = 0;

    void
    addRead(RegFile f, u16 i)
    {
        if (numReads >= kMaxReads)
            panic("AccessSet: more than ", kMaxReads, " register reads");
        reads[numReads++] = {f, i};
    }

    void
    addWrite(RegFile f, u16 i)
    {
        if (numWrites >= kMaxWrites)
            panic("AccessSet: more than ", kMaxWrites,
                  " register writes");
        writes[numWrites++] = {f, i};
    }
};

/** Full-lane vector mask (all four SIMD lanes enabled). */
inline constexpr u8 kFullVecMask = 0xF;

/**
 * One SIMB instruction.
 *
 * The struct is a flat union of the operand fields of Table I; unused
 * fields are zero for a given opcode.  Register index fields are u16 so
 * the same type can carry the compiler's virtual registers before
 * allocation (virtual indices may exceed 255).
 */
struct Instruction
{
    Opcode op = Opcode::kNop;
    AluOp aluOp = AluOp::kAdd;
    DType dtype = DType::kF32;
    CompMode mode = CompMode::kVecVec;

    u16 dst = 0;  ///< DRF (comp/ld/rd/mov/reset), ARF (calc_arf), CRF (ctrl)
    u16 src1 = 0; ///< first source register
    u16 src2 = 0; ///< second source register (ignored if srcImm)

    /// vec_mask: valid lanes of a comp; reused as the lane selector of
    /// mov_drf_arf / mov_arf_drf (exactly one bit set there).
    u8 vecMask = kFullVecMask;

    /// simb_mask bit b: PE b of the vault executes this instruction.
    u32 simbMask = 0;

    MemOperand dramAddr; ///< st/ld_rf, st/ld_pgsm, req (remote bank)
    MemOperand pgsmAddr; ///< st/ld/rd/wr_pgsm
    MemOperand vsmAddr;  ///< rd/wr_vsm, seti_vsm, req (local staging)

    /// Lane stride in bytes for rd_pgsm/wr_pgsm (PGSM 2D abstraction);
    /// 4 = contiguous 128b access.
    u16 pgsmStride = 4;

    /// Scratchpad partition hint for PGSM accesses: 0 = unknown (may
    /// touch the whole PGSM), 1/2 = compiler-managed half A/B.  Lets the
    /// issue-time interlock overlap double-buffered fill and compute
    /// (an ISA extension documented in DESIGN.md).
    u8 scratchBank = 0;

    bool srcImm = false; ///< calc_arf/calc_crf: src2 replaced by imm
    i32 imm = 0;         ///< seti_vsm/seti_crf/immediate-calc payload

    // req routing (Table I operand list)
    u16 dstChip = 0;
    u16 dstVault = 0;
    u16 dstPg = 0;
    u16 dstPe = 0;

    u32 phaseId = 0; ///< sync

    /**
     * Compiler-only: unresolved branch-target label carried by seti_crf.
     * Resolved to an instruction index (into imm) when the program is
     * finalized; -1 for ordinary instructions.
     */
    i32 label = -1;

    InstCategory category() const { return categoryOf(op); }

    /** Registers and memories this instruction reads/writes. */
    AccessSet accessSet() const;

    /** Human-readable one-line form (see assembler.h for the grammar). */
    std::string toString() const;

    bool operator==(const Instruction &o) const = default;

    // ---- Named constructors for common forms ----

    static Instruction
    comp(AluOp aop, DType dt, CompMode m, u16 d, u16 s1, u16 s2,
         u8 vmask, u32 smask)
    {
        Instruction i;
        i.op = Opcode::kComp;
        i.aluOp = aop;
        i.dtype = dt;
        i.mode = m;
        i.dst = d;
        i.src1 = s1;
        i.src2 = s2;
        i.vecMask = vmask;
        i.simbMask = smask;
        return i;
    }

    static Instruction
    calcArf(AluOp aop, u16 d, u16 s1, u16 s2, u32 smask)
    {
        Instruction i;
        i.op = Opcode::kCalcArf;
        i.aluOp = aop;
        i.dtype = DType::kI32;
        i.dst = d;
        i.src1 = s1;
        i.src2 = s2;
        i.simbMask = smask;
        return i;
    }

    static Instruction
    calcArfImm(AluOp aop, u16 d, u16 s1, i32 immVal, u32 smask)
    {
        Instruction i = calcArf(aop, d, s1, 0, smask);
        i.srcImm = true;
        i.imm = immVal;
        return i;
    }

    static Instruction
    memRf(bool store, MemOperand dram, u16 drf, u32 smask)
    {
        Instruction i;
        i.op = store ? Opcode::kStRf : Opcode::kLdRf;
        i.dramAddr = dram;
        i.dst = drf;
        i.simbMask = smask;
        return i;
    }

    static Instruction
    memPgsmBank(bool toBank, MemOperand dram, MemOperand pgsm, u32 smask)
    {
        Instruction i;
        i.op = toBank ? Opcode::kStPgsm : Opcode::kLdPgsm;
        i.dramAddr = dram;
        i.pgsmAddr = pgsm;
        i.simbMask = smask;
        return i;
    }

    static Instruction
    pgsmRf(bool read, MemOperand pgsm, u16 drf, u32 smask, u16 stride = 4)
    {
        Instruction i;
        i.op = read ? Opcode::kRdPgsm : Opcode::kWrPgsm;
        i.pgsmAddr = pgsm;
        i.dst = drf;
        i.simbMask = smask;
        i.pgsmStride = stride;
        return i;
    }

    static Instruction
    vsmRf(bool read, MemOperand vsm, u16 drf, u32 smask)
    {
        Instruction i;
        i.op = read ? Opcode::kRdVsm : Opcode::kWrVsm;
        i.vsmAddr = vsm;
        i.dst = drf;
        i.simbMask = smask;
        return i;
    }

    static Instruction
    movDrfArf(bool toArf, u16 arf, u16 drf, u8 lane, u32 smask)
    {
        Instruction i;
        i.op = toArf ? Opcode::kMovDrfToArf : Opcode::kMovArfToDrf;
        i.dst = toArf ? arf : drf;
        i.src1 = toArf ? drf : arf;
        i.vecMask = u8(1u << lane);
        i.simbMask = smask;
        return i;
    }

    static Instruction
    setiVsm(u32 vsmAddrByte, i32 value)
    {
        Instruction i;
        i.op = Opcode::kSetiVsm;
        i.vsmAddr = MemOperand::direct(vsmAddrByte);
        i.imm = value;
        return i;
    }

    static Instruction
    reset(u16 drf, u32 smask)
    {
        Instruction i;
        i.op = Opcode::kReset;
        i.dst = drf;
        i.simbMask = smask;
        return i;
    }

    static Instruction
    req(u16 chip, u16 vault, u16 pg, u16 pe, MemOperand remoteDram,
        u32 localVsmByte)
    {
        Instruction i;
        i.op = Opcode::kReq;
        i.dstChip = chip;
        i.dstVault = vault;
        i.dstPg = pg;
        i.dstPe = pe;
        i.dramAddr = remoteDram;
        i.vsmAddr = MemOperand::direct(localVsmByte);
        return i;
    }

    static Instruction
    jump(u16 targetCrf)
    {
        Instruction i;
        i.op = Opcode::kJump;
        i.dst = targetCrf;
        return i;
    }

    static Instruction
    cjump(u16 condCrf, u16 targetCrf)
    {
        Instruction i;
        i.op = Opcode::kCjump;
        i.src1 = condCrf;
        i.dst = targetCrf;
        return i;
    }

    static Instruction
    calcCrf(AluOp aop, u16 d, u16 s1, u16 s2)
    {
        Instruction i;
        i.op = Opcode::kCalcCrf;
        i.aluOp = aop;
        i.dtype = DType::kI32;
        i.dst = d;
        i.src1 = s1;
        i.src2 = s2;
        return i;
    }

    static Instruction
    calcCrfImm(AluOp aop, u16 d, u16 s1, i32 immVal)
    {
        Instruction i = calcCrf(aop, d, s1, 0);
        i.srcImm = true;
        i.imm = immVal;
        return i;
    }

    static Instruction
    setiCrf(u16 d, i32 value)
    {
        Instruction i;
        i.op = Opcode::kSetiCrf;
        i.dst = d;
        i.imm = value;
        return i;
    }

    static Instruction
    sync(u32 phase)
    {
        Instruction i;
        i.op = Opcode::kSync;
        i.phaseId = phase;
        return i;
    }

    static Instruction
    halt()
    {
        Instruction i;
        i.op = Opcode::kHalt;
        return i;
    }
};

} // namespace ipim

#endif // IPIM_ISA_INSTRUCTION_H_
