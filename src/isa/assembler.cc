#include "isa/assembler.h"

#include <cctype>
#include <sstream>

#include "common/logging.h"

namespace ipim {

namespace {

/** Splits a line into tokens; separators are spaces and commas. */
class Lexer
{
  public:
    explicit Lexer(const std::string &line) : s_(line) {}

    /** Next token or empty string at end. */
    std::string
    next()
    {
        while (pos_ < s_.size() &&
               (std::isspace(u8(s_[pos_])) || s_[pos_] == ','))
            ++pos_;
        size_t start = pos_;
        while (pos_ < s_.size() && !std::isspace(u8(s_[pos_])) &&
               s_[pos_] != ',')
            ++pos_;
        return s_.substr(start, pos_ - start);
    }

    std::string
    expect(const char *what)
    {
        std::string t = next();
        if (t.empty())
            fatal("asm: expected ", what, " in: ", s_);
        return t;
    }

    const std::string &line() const { return s_; }

  private:
    std::string s_;
    size_t pos_ = 0;
};

i64
parseInt(const std::string &t, const std::string &line)
{
    try {
        size_t used = 0;
        i64 v = std::stoll(t, &used, 0);
        if (used != t.size())
            fatal("asm: bad integer '", t, "' in: ", line);
        return v;
    } catch (const FatalError &) {
        throw;
    } catch (...) {
        fatal("asm: bad integer '", t, "' in: ", line);
    }
}

/** Parse "d12"/"a3"/"c7" register tokens. */
u16
parseReg(const std::string &t, char prefix, const std::string &line)
{
    if (t.size() < 2 || t[0] != prefix)
        fatal("asm: expected '", std::string(1, prefix),
              "' register, got '", t, "' in: ", line);
    return u16(parseInt(t.substr(1), line));
}

/** Parse "name=value" suffix tokens like sm=15, vm=0xf, stride=8. */
bool
parseKeyVal(const std::string &t, const std::string &key, i64 &out,
            const std::string &line)
{
    std::string prefix = key + "=";
    if (t.compare(0, prefix.size(), prefix) != 0)
        return false;
    out = parseInt(t.substr(prefix.size()), line);
    return true;
}

/** Parse "dram[123]" or "pgsm[a4]" style memory operands. */
MemOperand
parseMem(const std::string &t, const char *kind, const std::string &line)
{
    std::string prefix = std::string(kind) + "[";
    if (t.compare(0, prefix.size(), prefix) != 0 || t.back() != ']')
        fatal("asm: expected ", kind, "[...] operand, got '", t,
              "' in: ", line);
    std::string inner = t.substr(prefix.size(),
                                 t.size() - prefix.size() - 1);
    if (!inner.empty() && inner[0] == 'a') {
        size_t sep = inner.find_first_of("+-", 1);
        if (sep == std::string::npos)
            return MemOperand::viaArf(
                u32(parseInt(inner.substr(1), line)));
        MemOperand m = MemOperand::viaArf(
            u32(parseInt(inner.substr(1, sep - 1), line)));
        m.offset = i32(parseInt(inner.substr(sep), line));
        return m;
    }
    return MemOperand::direct(u32(parseInt(inner, line)));
}

/** Parse trailing vm=/sm=/stride=/lane= tokens in any order. */
void
parseSuffixes(Lexer &lex, Instruction &inst)
{
    for (std::string t = lex.next(); !t.empty(); t = lex.next()) {
        i64 v = 0;
        if (parseKeyVal(t, "vm", v, lex.line()))
            inst.vecMask = u8(v);
        else if (parseKeyVal(t, "sm", v, lex.line()))
            inst.simbMask = u32(v);
        else if (parseKeyVal(t, "stride", v, lex.line()))
            inst.pgsmStride = u16(v);
        else if (parseKeyVal(t, "lane", v, lex.line()))
            inst.vecMask = u8(v);
        else
            fatal("asm: unexpected token '", t, "' in: ", lex.line());
    }
}

AluOp
parseAluToken(const std::string &t, DType &dtype, const std::string &line)
{
    std::string opname = t;
    dtype = DType::kF32;
    if (auto dot = t.find('.'); dot != std::string::npos) {
        opname = t.substr(0, dot);
        std::string suffix = t.substr(dot + 1);
        if (suffix == "f32")
            dtype = DType::kF32;
        else if (suffix == "i32")
            dtype = DType::kI32;
        else
            fatal("asm: bad dtype suffix '", suffix, "' in: ", line);
    }
    AluOp op;
    if (!aluOpFromName(opname, op))
        fatal("asm: unknown alu op '", opname, "' in: ", line);
    return op;
}

} // namespace

Instruction
parseInstruction(const std::string &line)
{
    Lexer lex(line);
    std::string opTok = lex.expect("opcode");
    Opcode op;
    if (!opcodeFromName(opTok, op))
        fatal("asm: unknown opcode '", opTok, "' in: ", line);

    Instruction inst;
    inst.op = op;
    inst.simbMask = 0;

    switch (op) {
      case Opcode::kComp: {
        DType dt;
        inst.aluOp = parseAluToken(lex.expect("alu op"), dt, line);
        inst.dtype = dt;
        std::string m = lex.expect("mode");
        if (m == "vv")
            inst.mode = CompMode::kVecVec;
        else if (m == "sv")
            inst.mode = CompMode::kScalarVec;
        else
            fatal("asm: bad comp mode '", m, "' in: ", line);
        inst.dst = parseReg(lex.expect("dst"), 'd', line);
        inst.src1 = parseReg(lex.expect("src1"), 'd', line);
        inst.src2 = parseReg(lex.expect("src2"), 'd', line);
        parseSuffixes(lex, inst);
        break;
      }
      case Opcode::kCalcArf:
      case Opcode::kCalcCrf: {
        DType dt;
        inst.aluOp = parseAluToken(lex.expect("alu op"), dt, line);
        inst.dtype = DType::kI32;
        char pfx = op == Opcode::kCalcArf ? 'a' : 'c';
        inst.dst = parseReg(lex.expect("dst"), pfx, line);
        inst.src1 = parseReg(lex.expect("src1"), pfx, line);
        std::string s2 = lex.expect("src2");
        if (!s2.empty() && s2[0] == '#') {
            inst.srcImm = true;
            inst.imm = i32(parseInt(s2.substr(1), line));
        } else {
            inst.src2 = parseReg(s2, pfx, line);
        }
        parseSuffixes(lex, inst);
        break;
      }
      case Opcode::kStRf:
      case Opcode::kLdRf:
        inst.dramAddr = parseMem(lex.expect("dram"), "dram", line);
        inst.dst = parseReg(lex.expect("drf"), 'd', line);
        parseSuffixes(lex, inst);
        break;
      case Opcode::kStPgsm:
      case Opcode::kLdPgsm:
        inst.dramAddr = parseMem(lex.expect("dram"), "dram", line);
        inst.pgsmAddr = parseMem(lex.expect("pgsm"), "pgsm", line);
        parseSuffixes(lex, inst);
        break;
      case Opcode::kRdPgsm:
      case Opcode::kWrPgsm:
        inst.pgsmAddr = parseMem(lex.expect("pgsm"), "pgsm", line);
        inst.dst = parseReg(lex.expect("drf"), 'd', line);
        parseSuffixes(lex, inst);
        break;
      case Opcode::kRdVsm:
      case Opcode::kWrVsm:
        inst.vsmAddr = parseMem(lex.expect("vsm"), "vsm", line);
        inst.dst = parseReg(lex.expect("drf"), 'd', line);
        parseSuffixes(lex, inst);
        break;
      case Opcode::kMovDrfToArf:
        inst.dst = parseReg(lex.expect("arf"), 'a', line);
        inst.src1 = parseReg(lex.expect("drf"), 'd', line);
        parseSuffixes(lex, inst);
        break;
      case Opcode::kMovArfToDrf:
        inst.dst = parseReg(lex.expect("drf"), 'd', line);
        inst.src1 = parseReg(lex.expect("arf"), 'a', line);
        parseSuffixes(lex, inst);
        break;
      case Opcode::kSetiVsm: {
        inst.vsmAddr = parseMem(lex.expect("vsm"), "vsm", line);
        std::string v = lex.expect("imm");
        if (v.empty() || v[0] != '#')
            fatal("asm: seti_vsm needs #imm in: ", line);
        inst.imm = i32(parseInt(v.substr(1), line));
        break;
      }
      case Opcode::kReset:
        inst.dst = parseReg(lex.expect("drf"), 'd', line);
        parseSuffixes(lex, inst);
        break;
      case Opcode::kReq: {
        // chipC.vaultV.pgP.peE dram[..] -> vsm[..]
        std::string route = lex.expect("route");
        unsigned c = 0, v = 0, p = 0, e = 0;
        if (std::sscanf(route.c_str(), "chip%u.vault%u.pg%u.pe%u",
                        &c, &v, &p, &e) != 4)
            fatal("asm: bad req route '", route, "' in: ", line);
        inst.dstChip = u16(c);
        inst.dstVault = u16(v);
        inst.dstPg = u16(p);
        inst.dstPe = u16(e);
        inst.dramAddr = parseMem(lex.expect("dram"), "dram", line);
        std::string arrow = lex.expect("->");
        if (arrow != "->")
            fatal("asm: expected '->' in req: ", line);
        inst.vsmAddr = parseMem(lex.expect("vsm"), "vsm", line);
        break;
      }
      case Opcode::kJump:
        inst.dst = parseReg(lex.expect("target crf"), 'c', line);
        break;
      case Opcode::kCjump:
        inst.src1 = parseReg(lex.expect("cond crf"), 'c', line);
        inst.dst = parseReg(lex.expect("target crf"), 'c', line);
        break;
      case Opcode::kSetiCrf: {
        inst.dst = parseReg(lex.expect("crf"), 'c', line);
        std::string v = lex.expect("imm");
        if (v.empty() || v[0] != '#')
            fatal("asm: seti_crf needs #imm in: ", line);
        inst.imm = i32(parseInt(v.substr(1), line));
        break;
      }
      case Opcode::kSync: {
        std::string t = lex.expect("phase");
        i64 v = 0;
        if (!parseKeyVal(t, "phase", v, line))
            fatal("asm: sync needs phase=N in: ", line);
        inst.phaseId = u32(v);
        break;
      }
      case Opcode::kHalt:
      case Opcode::kNop:
        break;
      default:
        fatal("asm: unsupported opcode '", opTok, "'");
    }
    return inst;
}

std::vector<Instruction>
assemble(const std::string &text)
{
    std::vector<Instruction> prog;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        if (auto hash = line.find(';'); hash != std::string::npos)
            line = line.substr(0, hash);
        bool blank = true;
        for (char ch : line)
            if (!std::isspace(u8(ch)))
                blank = false;
        if (blank)
            continue;
        prog.push_back(parseInstruction(line));
    }
    return prog;
}

std::string
disassemble(const std::vector<Instruction> &prog)
{
    std::ostringstream os;
    for (const auto &inst : prog)
        os << inst.toString() << "\n";
    return os.str();
}

} // namespace ipim
