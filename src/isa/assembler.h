/**
 * @file
 * Text assembler/disassembler for SIMB programs.
 *
 * The textual grammar is exactly what Instruction::toString() prints, one
 * instruction per line; blank lines and ';' comments are ignored.  Used by
 * tests, the isa_explorer example, and for debugging compiled kernels.
 */
#ifndef IPIM_ISA_ASSEMBLER_H_
#define IPIM_ISA_ASSEMBLER_H_

#include <string>
#include <vector>

#include "isa/instruction.h"

namespace ipim {

/** Parse one instruction line; throws FatalError on syntax errors. */
Instruction parseInstruction(const std::string &line);

/** Parse a multi-line program. */
std::vector<Instruction> assemble(const std::string &text);

/** Render a program, one instruction per line. */
std::string disassemble(const std::vector<Instruction> &prog);

} // namespace ipim

#endif // IPIM_ISA_ASSEMBLER_H_
