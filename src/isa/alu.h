/**
 * @file
 * Functional semantics of the SIMB arithmetic operations.
 *
 * Shared by the PE SIMD-unit/INT-ALU models (src/sim) and by the control
 * core's CtrlRF calculator, so a single definition fixes the semantics of
 * every comp/calc_arf/calc_crf instruction.
 */
#ifndef IPIM_ISA_ALU_H_
#define IPIM_ISA_ALU_H_

#include <algorithm>
#include <cmath>

#include "common/interval.h"
#include "common/logging.h"
#include "common/types.h"
#include "isa/opcodes.h"

namespace ipim {

/**
 * Evaluate one INT32 ALU operation (calc_arf/calc_crf and comp.i32).
 *
 * Division and modulo use floor semantics to match the index arithmetic
 * of the compiler's bounds inference.  mac is not valid here.
 *
 * Inline: these evaluators sit on the per-lane hot path of both the
 * cycle simulator and the functional interpreter.
 */
inline i32
aluEvalI32(AluOp op, i32 a, i32 b)
{
    switch (op) {
      case AluOp::kAdd: return i32(u32(a) + u32(b));
      case AluOp::kSub: return i32(u32(a) - u32(b));
      case AluOp::kMul: return i32(u32(a) * u32(b));
      case AluOp::kDiv:
        if (b == 0)
            fatal("integer division by zero in index calculation");
        return i32(floorDiv(a, b));
      case AluOp::kMod:
        if (b == 0)
            fatal("integer modulo by zero in index calculation");
        return i32(floorMod(a, b));
      case AluOp::kShl: return i32(u32(a) << (u32(b) & 31));
      case AluOp::kShr: return i32(u32(a) >> (u32(b) & 31));
      case AluOp::kAnd: return a & b;
      case AluOp::kOr: return a | b;
      case AluOp::kXor: return a ^ b;
      case AluOp::kCropLsb:
        return i32(u32(a) & ~((1u << (u32(b) & 31)) - 1u));
      case AluOp::kCropMsb:
        return i32(u32(a) & ((1u << (u32(b) & 31)) - 1u));
      case AluOp::kMin: return std::min(a, b);
      case AluOp::kMax: return std::max(a, b);
      case AluOp::kMac:
        fatal("mac is only valid as a comp (SIMD) operation");
      case AluOp::kCvtF2I:
      case AluOp::kCvtI2F:
        fatal("conversions are only valid as comp (SIMD) operations");
      default:
        panic("aluEvalI32: bad op ", int(op));
    }
}

/**
 * Evaluate one FP32 SIMD lane operation.
 *
 * @param acc The previous destination lane value (used only by mac).
 * Bitwise ops (shift/and/or/xor/crop) operate on the raw lane bits.
 */
inline u32
aluEvalLaneF32(AluOp op, u32 a, u32 b, u32 acc)
{
    switch (op) {
      case AluOp::kAdd: return f32AsLane(laneAsF32(a) + laneAsF32(b));
      case AluOp::kSub: return f32AsLane(laneAsF32(a) - laneAsF32(b));
      case AluOp::kMul: return f32AsLane(laneAsF32(a) * laneAsF32(b));
      case AluOp::kDiv: return f32AsLane(laneAsF32(a) / laneAsF32(b));
      case AluOp::kMac:
        return f32AsLane(laneAsF32(acc) + laneAsF32(a) * laneAsF32(b));
      case AluOp::kMin:
        return f32AsLane(std::min(laneAsF32(a), laneAsF32(b)));
      case AluOp::kMax:
        return f32AsLane(std::max(laneAsF32(a), laneAsF32(b)));
      case AluOp::kCvtF2I:
        return u32(i32(std::floor(laneAsF32(a))));
      case AluOp::kCvtI2F:
        return f32AsLane(f32(laneAsI32(a)));
      // Bitwise ops apply to the raw lane regardless of dtype.
      case AluOp::kShl:
      case AluOp::kShr:
      case AluOp::kAnd:
      case AluOp::kOr:
      case AluOp::kXor:
      case AluOp::kCropLsb:
      case AluOp::kCropMsb:
        return u32(aluEvalI32(op, i32(a), i32(b)));
      default:
        panic("aluEvalLaneF32: bad op ", int(op));
    }
}

/** Evaluate one INT32 SIMD lane operation (comp.i32, incl. mac). */
inline u32
aluEvalLaneI32(AluOp op, u32 a, u32 b, u32 acc)
{
    if (op == AluOp::kMac)
        return u32(laneAsI32(acc) + laneAsI32(a) * laneAsI32(b));
    if (op == AluOp::kCvtF2I || op == AluOp::kCvtI2F)
        return aluEvalLaneF32(op, a, b, acc);
    return u32(aluEvalI32(op, i32(a), i32(b)));
}

/** Latency class: true if @p op runs at the logic-unit latency. */
bool isLogicOp(AluOp op);

} // namespace ipim

#endif // IPIM_ISA_ALU_H_
