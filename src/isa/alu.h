/**
 * @file
 * Functional semantics of the SIMB arithmetic operations.
 *
 * Shared by the PE SIMD-unit/INT-ALU models (src/sim) and by the control
 * core's CtrlRF calculator, so a single definition fixes the semantics of
 * every comp/calc_arf/calc_crf instruction.
 */
#ifndef IPIM_ISA_ALU_H_
#define IPIM_ISA_ALU_H_

#include "isa/opcodes.h"

namespace ipim {

/**
 * Evaluate one INT32 ALU operation (calc_arf/calc_crf and comp.i32).
 *
 * Division and modulo use floor semantics to match the index arithmetic
 * of the compiler's bounds inference.  mac is not valid here.
 */
i32 aluEvalI32(AluOp op, i32 a, i32 b);

/**
 * Evaluate one FP32 SIMD lane operation.
 *
 * @param acc The previous destination lane value (used only by mac).
 * Bitwise ops (shift/and/or/xor/crop) operate on the raw lane bits.
 */
u32 aluEvalLaneF32(AluOp op, u32 a, u32 b, u32 acc);

/** Evaluate one INT32 SIMD lane operation (comp.i32, incl. mac). */
u32 aluEvalLaneI32(AluOp op, u32 a, u32 b, u32 acc);

/** Latency class: true if @p op runs at the logic-unit latency. */
bool isLogicOp(AluOp op);

} // namespace ipim

#endif // IPIM_ISA_ALU_H_
