#include "isa/instruction.h"

#include <sstream>

#include "common/logging.h"

namespace ipim {

namespace {

void
addMemOperandRead(AccessSet &s, const MemOperand &m)
{
    if (m.indirect)
        s.addRead(RegFile::kArf, u16(m.value));
}

} // namespace

AccessSet
Instruction::accessSet() const
{
    AccessSet s;
    u8 bankMask = scratchBank == 0 ? 0x3 : u8(1u << (scratchBank - 1));
    switch (op) {
      case Opcode::kComp:
        s.addRead(RegFile::kDrf, src1);
        if (src2 != src1)
            s.addRead(RegFile::kDrf, src2);
        if (aluOp == AluOp::kMac)
            s.addRead(RegFile::kDrf, dst);
        s.addWrite(RegFile::kDrf, dst);
        break;
      case Opcode::kCalcArf:
        s.addRead(RegFile::kArf, src1);
        if (!srcImm && src2 != src1)
            s.addRead(RegFile::kArf, src2);
        s.addWrite(RegFile::kArf, dst);
        break;
      case Opcode::kStRf:
        s.addRead(RegFile::kDrf, dst);
        addMemOperandRead(s, dramAddr);
        s.writesBank = true;
        break;
      case Opcode::kLdRf:
        addMemOperandRead(s, dramAddr);
        s.addWrite(RegFile::kDrf, dst);
        s.readsBank = true;
        break;
      case Opcode::kStPgsm:
        addMemOperandRead(s, dramAddr);
        addMemOperandRead(s, pgsmAddr);
        s.readsPgsm = true;
        s.pgsmReadMask = bankMask;
        s.writesBank = true;
        break;
      case Opcode::kLdPgsm:
        addMemOperandRead(s, dramAddr);
        addMemOperandRead(s, pgsmAddr);
        s.readsBank = true;
        s.writesPgsm = true;
        s.pgsmWriteMask = bankMask;
        break;
      case Opcode::kRdPgsm:
        addMemOperandRead(s, pgsmAddr);
        s.addWrite(RegFile::kDrf, dst);
        s.readsPgsm = true;
        s.pgsmReadMask = bankMask;
        break;
      case Opcode::kWrPgsm:
        addMemOperandRead(s, pgsmAddr);
        s.addRead(RegFile::kDrf, dst);
        s.writesPgsm = true;
        s.pgsmWriteMask = bankMask;
        break;
      case Opcode::kRdVsm:
        addMemOperandRead(s, vsmAddr);
        s.addWrite(RegFile::kDrf, dst);
        s.readsVsm = true;
        break;
      case Opcode::kWrVsm:
        addMemOperandRead(s, vsmAddr);
        s.addRead(RegFile::kDrf, dst);
        s.writesVsm = true;
        break;
      case Opcode::kMovDrfToArf:
        s.addRead(RegFile::kDrf, src1);
        s.addWrite(RegFile::kArf, dst);
        break;
      case Opcode::kMovArfToDrf:
        s.addRead(RegFile::kArf, src1);
        s.addWrite(RegFile::kDrf, dst);
        break;
      case Opcode::kSetiVsm:
        s.writesVsm = true;
        break;
      case Opcode::kReset:
        s.addWrite(RegFile::kDrf, dst);
        break;
      case Opcode::kReq:
        // Reads a remote bank, writes the local VSM staging area.
        // Core-side indirection goes through the CtrlRF.
        if (dramAddr.indirect)
            s.addRead(RegFile::kCrf, u16(dramAddr.value));
        if (vsmAddr.indirect)
            s.addRead(RegFile::kCrf, u16(vsmAddr.value));
        s.readsBank = true;
        s.writesVsm = true;
        break;
      case Opcode::kJump:
        s.addRead(RegFile::kCrf, dst);
        break;
      case Opcode::kCjump:
        s.addRead(RegFile::kCrf, src1);
        if (dst != src1)
            s.addRead(RegFile::kCrf, dst);
        break;
      case Opcode::kCalcCrf:
        s.addRead(RegFile::kCrf, src1);
        if (!srcImm && src2 != src1)
            s.addRead(RegFile::kCrf, src2);
        s.addWrite(RegFile::kCrf, dst);
        break;
      case Opcode::kSetiCrf:
        s.addWrite(RegFile::kCrf, dst);
        break;
      case Opcode::kSync:
      case Opcode::kHalt:
      case Opcode::kNop:
        break;
      default:
        panic("accessSet: bad opcode ", int(op));
    }
    return s;
}

namespace {

const char *
filePrefix(RegFile f)
{
    switch (f) {
      case RegFile::kDrf: return "d";
      case RegFile::kArf: return "a";
      case RegFile::kCrf: return "c";
      default: panic("bad reg file");
    }
}

std::string
memStr(const MemOperand &m)
{
    std::ostringstream os;
    if (m.indirect) {
        os << "[a" << m.value;
        if (m.offset != 0)
            os << (m.offset > 0 ? "+" : "") << m.offset;
        os << "]";
    } else {
        os << "[" << m.value << "]";
    }
    return os.str();
}

} // namespace

std::string
Instruction::toString() const
{
    std::ostringstream os;
    os << opcodeName(op);
    switch (op) {
      case Opcode::kComp:
        os << " " << aluOpName(aluOp)
           << (dtype == DType::kF32 ? ".f32" : ".i32")
           << (mode == CompMode::kVecVec ? " vv" : " sv")
           << " d" << dst << ", d" << src1 << ", d" << src2
           << " vm=" << int(vecMask) << " sm=" << simbMask;
        break;
      case Opcode::kCalcArf:
        os << " " << aluOpName(aluOp) << " a" << dst << ", a" << src1;
        if (srcImm)
            os << ", #" << imm;
        else
            os << ", a" << src2;
        os << " sm=" << simbMask;
        break;
      case Opcode::kStRf:
      case Opcode::kLdRf:
        os << " dram" << memStr(dramAddr) << ", d" << dst
           << " sm=" << simbMask;
        break;
      case Opcode::kStPgsm:
      case Opcode::kLdPgsm:
        os << " dram" << memStr(dramAddr) << ", pgsm" << memStr(pgsmAddr)
           << " sm=" << simbMask;
        break;
      case Opcode::kRdPgsm:
      case Opcode::kWrPgsm:
        os << " pgsm" << memStr(pgsmAddr) << ", d" << dst
           << " stride=" << pgsmStride << " sm=" << simbMask;
        break;
      case Opcode::kRdVsm:
      case Opcode::kWrVsm:
        os << " vsm" << memStr(vsmAddr) << ", d" << dst
           << " sm=" << simbMask;
        break;
      case Opcode::kMovDrfToArf:
        os << " a" << dst << ", d" << src1 << " lane=" << int(vecMask)
           << " sm=" << simbMask;
        break;
      case Opcode::kMovArfToDrf:
        os << " d" << dst << ", a" << src1 << " lane=" << int(vecMask)
           << " sm=" << simbMask;
        break;
      case Opcode::kSetiVsm:
        os << " vsm" << memStr(vsmAddr) << ", #" << imm;
        break;
      case Opcode::kReset:
        os << " d" << dst << " sm=" << simbMask;
        break;
      case Opcode::kReq:
        os << " chip" << dstChip << ".vault" << dstVault << ".pg" << dstPg
           << ".pe" << dstPe << " dram" << memStr(dramAddr) << " -> vsm"
           << memStr(vsmAddr);
        break;
      case Opcode::kJump:
        os << " c" << dst;
        break;
      case Opcode::kCjump:
        os << " c" << src1 << ", c" << dst;
        break;
      case Opcode::kCalcCrf:
        os << " " << aluOpName(aluOp) << " c" << dst << ", c" << src1;
        if (srcImm)
            os << ", #" << imm;
        else
            os << ", c" << src2;
        break;
      case Opcode::kSetiCrf:
        os << " c" << dst << ", #" << imm;
        if (label >= 0)
            os << " (label L" << label << ")";
        break;
      case Opcode::kSync:
        os << " phase=" << phaseId;
        break;
      case Opcode::kHalt:
      case Opcode::kNop:
        break;
      default:
        panic("toString: bad opcode");
    }
    (void)filePrefix; // referenced for potential future operand printing
    return os.str();
}

} // namespace ipim
