#include "isa/alu.h"

namespace ipim {

bool
isLogicOp(AluOp op)
{
    switch (op) {
      case AluOp::kShl:
      case AluOp::kShr:
      case AluOp::kAnd:
      case AluOp::kOr:
      case AluOp::kXor:
      case AluOp::kCropLsb:
      case AluOp::kCropMsb:
      case AluOp::kMin:
      case AluOp::kMax:
        return true;
      default:
        return false;
    }
}

} // namespace ipim
