#include "isa/encoding.h"

#include "common/logging.h"

namespace ipim {

namespace {

class Writer
{
  public:
    explicit Writer(EncodedInst &buf) : buf_(buf) {}

    void
    u8v(u8 v)
    {
        buf_[pos_++] = v;
    }

    void
    u16v(u16 v)
    {
        u8v(u8(v & 0xFF));
        u8v(u8(v >> 8));
    }

    void
    u32v(u32 v)
    {
        u16v(u16(v & 0xFFFF));
        u16v(u16(v >> 16));
    }

    void
    mem(const MemOperand &m)
    {
        u8v(m.indirect ? 1 : 0);
        u32v(m.value);
        u32v(u32(m.offset));
    }

    int pos() const { return pos_; }

  private:
    EncodedInst &buf_;
    int pos_ = 0;
};

class Reader
{
  public:
    explicit Reader(const EncodedInst &buf) : buf_(buf) {}

    u8
    u8v()
    {
        return buf_[pos_++];
    }

    u16
    u16v()
    {
        u16 lo = u8v();
        return u16(lo | (u16(u8v()) << 8));
    }

    u32
    u32v()
    {
        u32 lo = u16v();
        return lo | (u32(u16v()) << 16);
    }

    MemOperand
    mem()
    {
        MemOperand m;
        m.indirect = u8v() != 0;
        m.value = u32v();
        m.offset = i32(u32v());
        return m;
    }

  private:
    const EncodedInst &buf_;
    int pos_ = 0;
};

} // namespace

EncodedInst
encode(const Instruction &inst)
{
    EncodedInst out{};
    Writer w(out);
    w.u8v(u8(inst.op));
    w.u8v(u8(inst.aluOp));
    w.u8v(u8(inst.dtype));
    w.u8v(u8(inst.mode));
    w.u16v(inst.dst);
    w.u16v(inst.src1);
    w.u16v(inst.src2);
    w.u8v(inst.vecMask);
    w.u8v(inst.srcImm ? 1 : 0);
    w.u32v(inst.simbMask);
    w.mem(inst.dramAddr);
    w.mem(inst.pgsmAddr);
    w.mem(inst.vsmAddr);
    w.u16v(inst.pgsmStride);
    w.u8v(inst.scratchBank);
    w.u32v(u32(inst.imm));
    w.u16v(inst.dstChip);
    w.u16v(inst.dstVault);
    w.u16v(inst.dstPg);
    w.u16v(inst.dstPe);
    w.u32v(inst.phaseId);
    if (w.pos() > kInstBytes)
        panic("instruction encoding overflows ", kInstBytes, " bytes");
    return out;
}

Instruction
decode(const EncodedInst &bytes)
{
    Reader r(bytes);
    Instruction inst;
    u8 op = r.u8v();
    if (op >= u8(Opcode::kNumOpcodes))
        fatal("decode: bad opcode byte ", int(op));
    inst.op = Opcode(op);
    u8 aluOp = r.u8v();
    if (aluOp >= u8(AluOp::kNumAluOps))
        fatal("decode: bad alu-op byte ", int(aluOp));
    inst.aluOp = AluOp(aluOp);
    inst.dtype = DType(r.u8v() & 1);
    inst.mode = CompMode(r.u8v() & 1);
    inst.dst = r.u16v();
    inst.src1 = r.u16v();
    inst.src2 = r.u16v();
    inst.vecMask = r.u8v();
    inst.srcImm = r.u8v() != 0;
    inst.simbMask = r.u32v();
    inst.dramAddr = r.mem();
    inst.pgsmAddr = r.mem();
    inst.vsmAddr = r.mem();
    inst.pgsmStride = r.u16v();
    inst.scratchBank = r.u8v();
    inst.imm = i32(r.u32v());
    inst.dstChip = r.u16v();
    inst.dstVault = r.u16v();
    inst.dstPg = r.u16v();
    inst.dstPe = r.u16v();
    inst.phaseId = r.u32v();
    return inst;
}

std::vector<u8>
encodeProgram(const std::vector<Instruction> &prog)
{
    std::vector<u8> out;
    out.reserve(prog.size() * kInstBytes);
    for (const auto &inst : prog) {
        EncodedInst e = encode(inst);
        out.insert(out.end(), e.begin(), e.end());
    }
    return out;
}

std::vector<Instruction>
decodeProgram(const std::vector<u8> &bytes)
{
    if (bytes.size() % kInstBytes != 0)
        fatal("program byte size ", bytes.size(),
              " is not a multiple of ", kInstBytes);
    std::vector<Instruction> prog;
    prog.reserve(bytes.size() / kInstBytes);
    for (size_t i = 0; i < bytes.size(); i += kInstBytes) {
        EncodedInst e;
        std::copy(bytes.begin() + i, bytes.begin() + i + kInstBytes,
                  e.begin());
        prog.push_back(decode(e));
    }
    return prog;
}

} // namespace ipim
