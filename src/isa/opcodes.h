/**
 * @file
 * Opcode and operation enumerations of the SIMB (Single-Instruction-
 * Multiple-Bank) ISA, following Table I of the iPIM paper.
 *
 * Extensions relative to the table (each documented in DESIGN.md):
 *  - comp ops min/max/div (needed by Local Laplacian / Interpolate);
 *  - an immediate src2 variant of calc_arf (constants would otherwise have
 *    to round-trip through VSM and the DataRF);
 *  - a lane-stride field on rd/wr_pgsm realizing the paper's "2D memory
 *    abstraction" of the PGSM (strided gathers for up/downsampling);
 *  - halt/nop pseudo-instructions to terminate and pad programs.
 */
#ifndef IPIM_ISA_OPCODES_H_
#define IPIM_ISA_OPCODES_H_

#include <string>

#include "common/types.h"

namespace ipim {

/** All SIMB instructions (Table I). */
enum class Opcode : u8 {
    // computation
    kComp,
    // index calculation
    kCalcArf,
    // intra-vault data movement
    kStRf,      ///< DataRF -> local DRAM bank
    kLdRf,      ///< local DRAM bank -> DataRF
    kStPgsm,    ///< PGSM -> local DRAM bank
    kLdPgsm,    ///< local DRAM bank -> PGSM
    kRdPgsm,    ///< PGSM -> DataRF
    kWrPgsm,    ///< DataRF -> PGSM
    kRdVsm,     ///< VSM -> DataRF (via TSV)
    kWrVsm,     ///< DataRF -> VSM (via TSV)
    kMovDrfToArf, ///< DataRF lane -> AddrRF entry
    kMovArfToDrf, ///< AddrRF entry -> DataRF lane
    kSetiVsm,   ///< immediate -> VSM location (control core side)
    kReset,     ///< zero a DataRF entry
    // inter-vault data movement
    kReq,       ///< fetch 128b from a remote vault's bank into local VSM
    // control flow
    kJump,
    kCjump,
    kCalcCrf,
    kSetiCrf,
    // synchronization
    kSync,
    // pseudo
    kHalt,
    kNop,

    kNumOpcodes,
};

/** Arithmetic/logic operations shared by comp / calc_arf / calc_crf. */
enum class AluOp : u8 {
    kAdd,
    kSub,
    kMul,
    kMac,     ///< dst += src1 * src2 (comp only)
    kDiv,     ///< extension (see file comment)
    kMod,     ///< integer remainder (index calculation)
    kShl,
    kShr,
    kAnd,
    kOr,
    kXor,
    kCropLsb, ///< zero the low src2 bits of src1
    kCropMsb, ///< keep only the low src2 bits of src1
    kMin,     ///< extension
    kMax,     ///< extension
    kCvtF2I,  ///< extension: FP32 -> INT32 (floor)
    kCvtI2F,  ///< extension: INT32 -> FP32

    kNumAluOps,
};

/** Lane data type of a comp instruction. */
enum class DType : u8 { kF32, kI32 };

/** comp operand mode (Table I: vector-vector / scalar-vector). */
enum class CompMode : u8 {
    kVecVec,    ///< lanewise op(src1, src2)
    kScalarVec, ///< op(broadcast(src1.lane0), src2)
};

/** Instruction category, used for the Fig. 11 breakdown. */
enum class InstCategory : u8 {
    kComputation,
    kIndexCalc,
    kIntraVaultMove,
    kInterVaultMove,
    kControlFlow,
    kSync,
    kPseudo,
};

/** Category of @p op per Table I's grouping. */
InstCategory categoryOf(Opcode op);

/** True if the instruction is broadcast to PEs (vs. executed core-side). */
bool isBroadcast(Opcode op);

/** True for instructions that read or write the local DRAM bank. */
bool accessesBank(Opcode op);

/** True for instructions that read or write the PGSM. */
bool accessesPgsm(Opcode op);

/** True for instructions that read or write the VSM. */
bool accessesVsm(Opcode op);

const char *opcodeName(Opcode op);
const char *aluOpName(AluOp op);
const char *categoryName(InstCategory c);

/** Parse helpers used by the assembler; return false on unknown names. */
bool opcodeFromName(const std::string &name, Opcode &out);
bool aluOpFromName(const std::string &name, AluOp &out);

} // namespace ipim

#endif // IPIM_ISA_OPCODES_H_
