/**
 * @file
 * Fixed-width binary encoding of SIMB instructions.
 *
 * Each instruction occupies 64 bytes (four 128b beats), which is what a
 * vault program costs in VSM-resident instruction memory (Sec. IV-E: the
 * VSM "acts as the instruction memory that accepts computation offloading
 * from a host").
 */
#ifndef IPIM_ISA_ENCODING_H_
#define IPIM_ISA_ENCODING_H_

#include <array>
#include <vector>

#include "isa/instruction.h"

namespace ipim {

/** Bytes per encoded instruction. */
inline constexpr int kInstBytes = 64;

using EncodedInst = std::array<u8, kInstBytes>;

/** Serialize @p inst into its 48-byte wire form. */
EncodedInst encode(const Instruction &inst);

/** Deserialize; throws FatalError on a malformed word. */
Instruction decode(const EncodedInst &bytes);

/** Encode a whole program back-to-back. */
std::vector<u8> encodeProgram(const std::vector<Instruction> &prog);

/** Decode a whole program; size must be a multiple of kInstBytes. */
std::vector<Instruction> decodeProgram(const std::vector<u8> &bytes);

} // namespace ipim

#endif // IPIM_ISA_ENCODING_H_
