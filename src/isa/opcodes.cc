#include "isa/opcodes.h"

#include "common/logging.h"

namespace ipim {

InstCategory
categoryOf(Opcode op)
{
    switch (op) {
      case Opcode::kComp:
        return InstCategory::kComputation;
      case Opcode::kCalcArf:
        return InstCategory::kIndexCalc;
      case Opcode::kStRf:
      case Opcode::kLdRf:
      case Opcode::kStPgsm:
      case Opcode::kLdPgsm:
      case Opcode::kRdPgsm:
      case Opcode::kWrPgsm:
      case Opcode::kRdVsm:
      case Opcode::kWrVsm:
      case Opcode::kMovDrfToArf:
      case Opcode::kMovArfToDrf:
      case Opcode::kSetiVsm:
      case Opcode::kReset:
        return InstCategory::kIntraVaultMove;
      case Opcode::kReq:
        return InstCategory::kInterVaultMove;
      case Opcode::kJump:
      case Opcode::kCjump:
      case Opcode::kCalcCrf:
      case Opcode::kSetiCrf:
        return InstCategory::kControlFlow;
      case Opcode::kSync:
        return InstCategory::kSync;
      case Opcode::kHalt:
      case Opcode::kNop:
        return InstCategory::kPseudo;
      default:
        panic("categoryOf: bad opcode ", int(op));
    }
}

bool
isBroadcast(Opcode op)
{
    switch (op) {
      case Opcode::kComp:
      case Opcode::kCalcArf:
      case Opcode::kStRf:
      case Opcode::kLdRf:
      case Opcode::kStPgsm:
      case Opcode::kLdPgsm:
      case Opcode::kRdPgsm:
      case Opcode::kWrPgsm:
      case Opcode::kRdVsm:
      case Opcode::kWrVsm:
      case Opcode::kMovDrfToArf:
      case Opcode::kMovArfToDrf:
      case Opcode::kReset:
        return true;
      default:
        return false;
    }
}

bool
accessesBank(Opcode op)
{
    switch (op) {
      case Opcode::kStRf:
      case Opcode::kLdRf:
      case Opcode::kStPgsm:
      case Opcode::kLdPgsm:
        return true;
      default:
        return false;
    }
}

bool
accessesPgsm(Opcode op)
{
    switch (op) {
      case Opcode::kStPgsm:
      case Opcode::kLdPgsm:
      case Opcode::kRdPgsm:
      case Opcode::kWrPgsm:
        return true;
      default:
        return false;
    }
}

bool
accessesVsm(Opcode op)
{
    switch (op) {
      case Opcode::kRdVsm:
      case Opcode::kWrVsm:
      case Opcode::kSetiVsm:
      case Opcode::kReq:
        return true;
      default:
        return false;
    }
}

namespace {

struct OpName
{
    Opcode op;
    const char *name;
};

constexpr OpName kOpNames[] = {
    {Opcode::kComp, "comp"},
    {Opcode::kCalcArf, "calc_arf"},
    {Opcode::kStRf, "st_rf"},
    {Opcode::kLdRf, "ld_rf"},
    {Opcode::kStPgsm, "st_pgsm"},
    {Opcode::kLdPgsm, "ld_pgsm"},
    {Opcode::kRdPgsm, "rd_pgsm"},
    {Opcode::kWrPgsm, "wr_pgsm"},
    {Opcode::kRdVsm, "rd_vsm"},
    {Opcode::kWrVsm, "wr_vsm"},
    {Opcode::kMovDrfToArf, "mov_drf_arf"},
    {Opcode::kMovArfToDrf, "mov_arf_drf"},
    {Opcode::kSetiVsm, "seti_vsm"},
    {Opcode::kReset, "reset"},
    {Opcode::kReq, "req"},
    {Opcode::kJump, "jump"},
    {Opcode::kCjump, "cjump"},
    {Opcode::kCalcCrf, "calc_crf"},
    {Opcode::kSetiCrf, "seti_crf"},
    {Opcode::kSync, "sync"},
    {Opcode::kHalt, "halt"},
    {Opcode::kNop, "nop"},
};

struct AluName
{
    AluOp op;
    const char *name;
};

constexpr AluName kAluNames[] = {
    {AluOp::kAdd, "add"},
    {AluOp::kSub, "sub"},
    {AluOp::kMul, "mul"},
    {AluOp::kMac, "mac"},
    {AluOp::kDiv, "div"},
    {AluOp::kMod, "mod"},
    {AluOp::kShl, "shl"},
    {AluOp::kShr, "shr"},
    {AluOp::kAnd, "and"},
    {AluOp::kOr, "or"},
    {AluOp::kXor, "xor"},
    {AluOp::kCropLsb, "crop_lsb"},
    {AluOp::kCropMsb, "crop_msb"},
    {AluOp::kMin, "min"},
    {AluOp::kMax, "max"},
    {AluOp::kCvtF2I, "cvt_f2i"},
    {AluOp::kCvtI2F, "cvt_i2f"},
};

} // namespace

const char *
opcodeName(Opcode op)
{
    for (const auto &e : kOpNames)
        if (e.op == op)
            return e.name;
    panic("opcodeName: bad opcode ", int(op));
}

const char *
aluOpName(AluOp op)
{
    for (const auto &e : kAluNames)
        if (e.op == op)
            return e.name;
    panic("aluOpName: bad alu op ", int(op));
}

const char *
categoryName(InstCategory c)
{
    switch (c) {
      case InstCategory::kComputation: return "computation";
      case InstCategory::kIndexCalc: return "index_calc";
      case InstCategory::kIntraVaultMove: return "intra_vault";
      case InstCategory::kInterVaultMove: return "inter_vault";
      case InstCategory::kControlFlow: return "control_flow";
      case InstCategory::kSync: return "sync";
      case InstCategory::kPseudo: return "pseudo";
      default: panic("categoryName: bad category");
    }
}

bool
opcodeFromName(const std::string &name, Opcode &out)
{
    for (const auto &e : kOpNames) {
        if (name == e.name) {
            out = e.op;
            return true;
        }
    }
    return false;
}

bool
aluOpFromName(const std::string &name, AluOp &out)
{
    for (const auto &e : kAluNames) {
        if (name == e.name) {
            out = e.op;
            return true;
        }
    }
    return false;
}

} // namespace ipim
