/**
 * @file
 * The Issued-Inst-Queue entry shared between the control core and the
 * process engines (Sec. IV-B: an issued instruction stays in the queue
 * until every PE named in its simb_mask has cleared its execution bit).
 */
#ifndef IPIM_SIM_INFLIGHT_H_
#define IPIM_SIM_INFLIGHT_H_

#include "isa/instruction.h"

namespace ipim {

/** One in-flight instruction owned by a control core's IIQ. */
struct InFlightInst
{
    Instruction inst;
    AccessSet access;      ///< cached register/memory access sets
    u64 seq = 0;           ///< issue order, unique per core
    u32 pendingPes = 0;    ///< PEs that have not yet finished
    u32 unstartedPes = 0;  ///< PEs that have not yet read their operands
    bool coreDone = true;  ///< core-side portion finished (req/sync)
    bool isBarrier = false;///< sync: blocks all younger issues

    bool done() const { return pendingPes == 0 && coreDone; }

    /** Operands captured on every PE: anti/output deps are cleared. */
    bool started() const { return unstartedPes == 0; }
};

} // namespace ipim

#endif // IPIM_SIM_INFLIGHT_H_
