/**
 * @file
 * One iPIM vault (Fig. 2(a2)): eight process groups on the PIM dies, and
 * on the base logic die the decoupled control core (I-cache/pc, CtrlRF,
 * Issued Inst Queue, SIMB controller), the vault scratchpad memory (VSM),
 * the TSV arbiter, and the network interface controller (NIC).
 *
 * The control core is pipelined, single-issue, in-order; data hazards are
 * eliminated at issue time by scoreboarding against the Issued Inst Queue
 * (Sec. IV-B).  SIMB instructions broadcast over the shared TSVs and
 * retire in order once every masked PE has finished.
 */
#ifndef IPIM_SIM_VAULT_H_
#define IPIM_SIM_VAULT_H_

#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "noc/mesh.h"
#include "sim/process_group.h"

namespace ipim {

/**
 * Per-vault cycle accounting of the control core's issue slot: every
 * ticked cycle lands in exactly one category — an issue, one of the five
 * stall reasons, or (implicitly) halted — so the categories always sum
 * to `cycles`.  Maintained identically by dense ticking and fast-forward
 * crediting; restarts at every program (re)load like issuedCount(), and
 * the runtime accumulates it across kernels (LaunchResult).
 */
struct IssueAccounting
{
    u64 cycles = 0; ///< core cycles ticked, including halted ones
    u64 issued = 0;
    u64 bubble = 0;      ///< taken-branch bubbles
    u64 barrier = 0;     ///< in-flight barrier blocks younger issues
    u64 drain = 0;       ///< sync/halt fence draining the IIQ
    u64 structStall = 0; ///< Issued Inst Queue full
    u64 hazard = 0;      ///< data-hazard scoreboard block

    /** Cycles on which the core attempted to issue (not halted). */
    u64
    active() const
    {
        return issued + bubble + barrier + drain + structStall + hazard;
    }

    /** Cycles spent halted (before start or after the final halt). */
    u64 halted() const { return cycles - active(); }

    void
    accumulate(const IssueAccounting &o)
    {
        cycles += o.cycles;
        issued += o.issued;
        bubble += o.bubble;
        barrier += o.barrier;
        drain += o.drain;
        structStall += o.structStall;
        hazard += o.hazard;
    }
};

class Vault
{
  public:
    /**
     * @p trace (optional) receives per-vault core telemetry: a run span
     * per program execution, stall-episode spans by reason, IIQ/issued
     * counter samples, and PE busy counters (DESIGN.md Sec. 12).
     * @p tracePrefix prefixes this vault's track names (serving slots).
     */
    Vault(const HardwareConfig &cfg, u32 chipId, u32 vaultId,
          StatsRegistry *stats, Tracer *trace = nullptr,
          const std::string &tracePrefix = "");

    /** Upload a program; validates every instruction. Resets the core. */
    void loadProgram(const std::vector<Instruction> &prog);

    /** Reset architectural and micro-architectural state (keeps banks). */
    void reset();

    /**
     * Power-cycle the vault: reset() plus unloaded program, erased
     * VSM/PGSM/bank contents, closed DRAM rows, restarted refresh
     * timers, released TSV reservations, and rewound seq/tag counters.
     * Afterwards the vault is indistinguishable from a fresh one.
     */
    void hardReset();

    /** Deliver an incoming network packet to the NIC. */
    void deliver(const Packet &p);

    /** Advance one cycle. */
    void tick(Cycle now);

    /**
     * Earliest future cycle this vault can change state (DESIGN.md
     * Sec. 13): @p now when NIC traffic is undrained, the IIQ head is
     * retirable, or the core can issue; the branch-bubble expiry
     * `stallUntil_` while a taken branch is in flight; otherwise the
     * min over the process groups.  Conservative (early) is allowed,
     * late is not.
     */
    Cycle nextEventAt(Cycle now) const;

    /**
     * Account for @p skipped cycles elided by fast-forward starting at
     * cycle @p from: dense ticking charges `core.cycles` and exactly
     * one stall counter per non-halted cycle, so the same charges are
     * applied in bulk here.  The issue classification cannot change
     * inside a skip window (every state transition happens on a dense
     * tick and bubble expiry bounds the window), which is what makes
     * the bulk charge bit-exact; an issuable vault inside a window is
     * therefore a fast-forward invariant violation and panics.
     */
    void creditSkipped(Cycle from, u64 skipped);

    /** Close any open trace span at end of run (Device::run). */
    void flushTrace(Cycle now);

    /** Packets the NIC wants to send; drained by the owning cube. */
    std::deque<Packet> &outbox() { return outbox_; }

    bool halted() const { return halted_; }

    /** True when halted with no in-flight work anywhere in the vault. */
    bool fullyIdle() const;

    ProcessGroup &pg(u32 i) { return *pgs_.at(i); }
    Scratchpad &vsmMem() { return vsm_; }
    TsvBus &tsv() { return tsv_; }
    u32 chipId() const { return chipId_; }
    u32 vaultId() const { return vaultId_; }
    u32 &crf(u16 idx) { return crf_.at(idx); }

    /** Number of SIMB-addressable PEs in this vault. */
    u32 numPes() const { return cfg_.pesPerVault(); }

    /** Instructions issued since the last program (re)load. */
    u64 issuedCount() const { return acct_.issued; }

    /** Issue-slot cycle accounting since the last program (re)load. */
    const IssueAccounting &accounting() const { return acct_; }

    /** @name Live gauges (metrics sampling; cheap, side-effect free). */
    ///@{
    /** Issued Inst Queue occupancy right now. */
    u32 iiqDepth() const { return u32(iiq_.size()); }
    /** PEs with work in flight right now. */
    u32 busyPes() const;
    /** Bank requests queued across this vault's memory controllers. */
    u32 mcQueueDepth() const;
    ///@}

  private:
    /** Why issueStep could not issue this cycle (trace taxonomy). */
    enum class StallReason : u8 {
        kNone,
        kBranch,
        kBarrier,
        kDrain,
        kStruct,
        kHazard,
    };

    /**
     * What issueStep would do this cycle, in its exact gate order.
     * Shared by issueStep (which adds the per-reason side effects),
     * nextEventAt, and creditSkipped so the three can never disagree.
     */
    enum class IssueOutcome : u8 {
        kHalted,
        kBubble,
        kBarrier,
        kDrain,
        kStruct,
        kHazard,
        kIssue,
    };

    IssueOutcome classifyIssue(Cycle now) const;
    void validateProgram(const std::vector<Instruction> &prog) const;
    void noteStall(Cycle now, StallReason reason);
    void sampleTrace(Cycle now);
    void processIncoming(Cycle now);
    void serviceRemoteInbox();
    void collectRemoteCompletions();
    void retireStep();
    void issueStep(Cycle now);
    void issueBroadcast(Cycle now, const Instruction &inst,
                        const AccessSet &acc);
    void masterSyncCheck();
    bool isMaster() const { return chipId_ == 0 && vaultId_ == 0; }
    u32 totalVaults() const { return cfg_.cubes * cfg_.vaultsPerCube; }

    const HardwareConfig &cfg_;
    u32 chipId_;
    u32 vaultId_;
    StatsRegistry *stats_;

    // Tracing (no-ops unless trace_ is set and enabled).
    Tracer *trace_;
    u32 trackCore_ = 0;
    u32 trackPe_ = 0;
    StallReason stallReason_ = StallReason::kNone;
    Cycle stallSince_ = 0;
    Cycle activeSince_ = 0;
    bool traceActive_ = false; ///< inside a kVaultRun span
    IssueAccounting acct_;     ///< per-vault issue-slot accounting

    std::unique_ptr<ActivationLimiter> actLimiter_;
    std::vector<std::unique_ptr<ProcessGroup>> pgs_;
    Scratchpad vsm_;
    TsvBus tsv_;

    // Control core state.
    std::vector<Instruction> prog_;
    std::vector<AccessSet> progAccess_;
    u32 pc_ = 0;
    bool halted_ = true;
    Cycle stallUntil_ = 0;
    std::vector<u32> crf_;
    std::deque<std::unique_ptr<InFlightInst>> iiq_;
    u64 nextSeq_ = 1;

    // Synchronization (master-slave barrier, Sec. IV-D).
    InFlightInst *activeSync_ = nullptr;
    std::map<u32, u32> syncArrivals_; ///< master: phase -> arrived count

    // NIC state.
    std::deque<Packet> outbox_;
    std::deque<Packet> remoteInbox_; ///< kReqRead to be serviced here
    std::map<u64, InFlightInst *> pendingReqs_;
    u64 nextReqTag_ = 1;
};

} // namespace ipim

#endif // IPIM_SIM_VAULT_H_
