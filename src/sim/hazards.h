/**
 * @file
 * Issue-time hazard detection of the decoupled control core (Sec. IV-B,
 * step 2): true/anti/output register dependences plus conservative
 * scratchpad ordering.  Shared by the hardware model and (via the same
 * rules) the compiler's dependency-graph construction.
 */
#ifndef IPIM_SIM_HAZARDS_H_
#define IPIM_SIM_HAZARDS_H_

#include "isa/instruction.h"

namespace ipim {

/** True if @p a writes (or reads) a register that @p b writes/reads in a
 *  conflicting way: RAW, WAR, or WAW on any register file. */
bool registerConflict(const AccessSet &older, const AccessSet &younger);

/**
 * Scratchpad (PGSM/VSM) ordering conflict: read-after-write and
 * write-after-read are ordered; write-after-write is not (different PEs
 * fill disjoint locations, and the compiler never emits overlapping
 * scratchpad writes).  Bank accesses are excluded: the per-PG memory
 * controller already preserves same-address order.
 */
bool scratchpadConflict(const AccessSet &older, const AccessSet &younger);

/** registerConflict || scratchpadConflict: must @p younger wait? */
bool issueHazard(const AccessSet &older, const AccessSet &younger);

/**
 * True when the conflict requires the older instruction to fully
 * complete (a true dependence: its result is produced at completion).
 * Anti/output conflicts only require the older instruction to have
 * captured its operands on every PE (InFlightInst::started()) — except
 * output conflicts with bank loads, whose destination register is
 * written at completion time.
 */
bool hazardNeedsCompletion(const Instruction &olderInst,
                           const AccessSet &older,
                           const AccessSet &younger);

} // namespace ipim

#endif // IPIM_SIM_HAZARDS_H_
