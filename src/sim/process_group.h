/**
 * @file
 * The Process Group (PG): four near-bank PEs, the shared PG scratchpad
 * memory (PGSM), and the lightweight in-DRAM memory controller that
 * serves the PG's banks (Fig. 2(a3), Sec. IV-E).
 */
#ifndef IPIM_SIM_PROCESS_GROUP_H_
#define IPIM_SIM_PROCESS_GROUP_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "dram/memory_controller.h"
#include "sim/pe.h"
#include "sim/scratchpad.h"

namespace ipim {

class Vault;

/** Completion of a remote-access (req) bank read serviced by this PG. */
struct RemoteReadDone
{
    u64 tag = 0;       ///< requester's bookkeeping tag
    u32 srcChip = 0;   ///< requester chip
    u32 srcVault = 0;  ///< requester vault
    u32 vsmAddr = 0;   ///< requester VSM staging offset
    VecWord data;
};

class ProcessGroup
{
  public:
    /**
     * @p trace/@p tracePrefix (optional) give the PG's memory controller
     * a "<prefix>pg<N>/dram" trace track (DESIGN.md Sec. 12).
     */
    ProcessGroup(const HardwareConfig &cfg, Vault *vault, u32 pgIdx,
                 ActivationLimiter *limiter, StatsRegistry *stats,
                 Tracer *trace = nullptr,
                 const std::string &tracePrefix = "");

    void reset(u32 chipId, u32 vaultId);

    /**
     * Power-cycle the PG: soft reset plus erased PGSM/bank contents,
     * closed DRAM rows, restarted refresh timers, and rewound tags.
     */
    void hardReset(u32 chipId, u32 vaultId);

    /** Advance one cycle: MC, completion routing, then the PEs. */
    void tick(Cycle now);

    /**
     * Submit a bank access on behalf of PE @p peInPg's instruction
     * @p fi.  Returns false when the MC queue is full (caller retries).
     * For kLdPgsm/kStPgsm, @p pgsmAddr is the already-resolved PGSM byte
     * offset on this PE's behalf.
     */
    bool submitBankAccess(Cycle now, InFlightInst *fi, u32 peInPg,
                          Opcode op, u64 bankAddr, u16 drfIdx,
                          u32 pgsmAddr, const VecWord &storeData);

    /**
     * Submit a remote read (arrived via the NIC).  Returns false when
     * the MC queue is full.
     */
    bool submitRemoteRead(u32 peInPg, u64 bankAddr,
                          const RemoteReadDone &doneInfo);

    /** Remote reads completed since last drain; the vault sends these. */
    std::vector<RemoteReadDone> &remoteDone() { return remoteDone_; }

    ProcessEngine &pe(u32 i) { return *pes_.at(i); }
    Scratchpad &pgsm() { return pgsm_; }
    MemoryController &mc() { return mc_; }
    Vault &vault() { return *vault_; }
    u32 pgIdx() const { return pgIdx_; }
    const HardwareConfig &cfg() const { return cfg_; }
    StatsRegistry &stats() { return *stats_; }

    bool idle() const;

    /**
     * Earliest future cycle this PG can change state (DESIGN.md
     * Sec. 13): min over the memory controller, PonB deferred
     * completions, undrained remote-read results (the vault collects
     * them next tick), and the PEs.
     */
    Cycle nextEventAt(Cycle now) const;

  private:
    struct MemAction
    {
        InFlightInst *fi = nullptr; ///< null for remote reads
        u32 peInPg = 0;
        Opcode op = Opcode::kNop;
        u16 drfIdx = 0;
        u32 pgsmAddr = 0;
        bool remote = false;
        RemoteReadDone remoteInfo;
    };

    const HardwareConfig &cfg_;
    Vault *vault_;
    u32 pgIdx_;
    StatsRegistry *stats_;

    MemoryController mc_;
    Scratchpad pgsm_;
    std::vector<std::unique_ptr<ProcessEngine>> pes_;

    std::unordered_map<u64, MemAction> actions_;
    u64 nextMemId_ = 1;

    /// PonB: bank data crossing the TSV before the op can finish.
    struct Deferred
    {
        Cycle at;
        InFlightInst *fi;
    };
    std::vector<Deferred> deferred_;

    std::vector<RemoteReadDone> remoteDone_;
};

} // namespace ipim

#endif // IPIM_SIM_PROCESS_GROUP_H_
