/**
 * @file
 * The Process Engine (PE): near-bank compute logic attached to one DRAM
 * bank (Fig. 2(c)) — a 64-entry 128b DataRF, a 64-entry 32b AddrRF whose
 * A0-A3 hold peID/pgID/vaultID/chipID, a 4-lane SIMD unit, and an integer
 * ALU for index calculation.
 *
 * PEs receive broadcast SIMB instructions from the control core, start
 * them strictly in order (at most one per cycle), and may complete them
 * out of order; each completion clears this PE's bit in the instruction's
 * pending set (Sec. IV-B, step 5).
 */
#ifndef IPIM_SIM_PE_H_
#define IPIM_SIM_PE_H_

#include <deque>
#include <vector>

#include "common/config.h"
#include "common/stats.h"
#include "sim/inflight.h"
#include "sim/scratchpad.h"

namespace ipim {

class ProcessGroup;

/** Reserved AddrRF identity registers (Sec. IV-E). */
enum ReservedArf : u16 {
    kArfPeId = 0,
    kArfPgId = 1,
    kArfVaultId = 2,
    kArfChipId = 3,
    kNumReservedArf = 4,
};

class ProcessEngine
{
  public:
    ProcessEngine(const HardwareConfig &cfg, ProcessGroup *pg, u32 peInPg,
                  StatsRegistry *stats);

    /** Reset architectural state and re-seed the identity registers. */
    void reset(u32 chipId, u32 vaultId, u32 pgId);

    /** Receive a broadcast instruction; it may start at @p arrivesAt. */
    void
    push(InFlightInst *fi, Cycle arrivesAt)
    {
        queue_.push_back({fi, arrivesAt});
    }

    /** Advance one cycle: retire fixed-latency ops, start the head. */
    void tick(Cycle now);

    /** Called by the PG when one of this PE's bank accesses finishes. */
    void applyLoadData(u16 drfIdx, const VecWord &data);

    bool idle() const { return queue_.empty() && pendingDone_.empty(); }

    /**
     * Earliest future cycle this PE can change state (DESIGN.md
     * Sec. 13): the nearest pending completion, or the broadcast
     * queue head's arrival time (@p now when it already arrived —
     * a start attempt, even one that fails on MC backpressure, must
     * happen on a dense tick).  kNeverCycle when fully idle.
     */
    Cycle nextEventAt(Cycle now) const;

    // Architectural state access (runtime/tests).
    VecWord &drf(u16 idx) { return drf_.at(idx); }
    u32 &arf(u16 idx) { return arf_.at(idx); }
    const VecWord &drf(u16 idx) const { return drf_.at(idx); }
    u32 arf(u16 idx) const { return arf_.at(idx); }

    u32 peInPg() const { return peInPg_; }

    /** Cycles during which the SIMD unit / int ALU were busy. */
    u64 simdBusyCycles() const { return simdBusy_; }
    u64 intAluBusyCycles() const { return intAluBusy_; }

  private:
    struct Pending
    {
        InFlightInst *fi;
        Cycle arrivesAt;
    };

    struct Done
    {
        Cycle at;
        InFlightInst *fi;
    };

    bool tryStart(Cycle now, InFlightInst *fi);
    void finishAt(Cycle at, InFlightInst *fi);
    u64 resolveMem(const MemOperand &m) const;
    void execComp(const Instruction &inst);
    u32 compLatency(AluOp op) const;

    const HardwareConfig &cfg_;
    ProcessGroup *pg_;
    u32 peInPg_;
    StatsRegistry *stats_;

    std::vector<VecWord> drf_;
    std::vector<u32> arf_;

    std::deque<Pending> queue_;
    std::vector<Done> pendingDone_;

    u64 simdBusy_ = 0;
    u64 intAluBusy_ = 0;
};

} // namespace ipim

#endif // IPIM_SIM_PE_H_
