/**
 * @file
 * A small persistent fork-join worker pool for the parallel simulation
 * engine (DESIGN.md Sec. 18).
 *
 * Device::run() dispatches one job per cube at every quantum and joins
 * them at the barrier, thousands of times per run, so the pool keeps its
 * threads alive across run() calls and uses a short spin before parking
 * on a condition variable to keep the per-quantum overhead small.
 */
#ifndef IPIM_SIM_PARALLEL_H_
#define IPIM_SIM_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.h"

namespace ipim {

class ParallelPool
{
  public:
    /** @p workers extra threads; the caller participates too, so the
     *  effective parallelism of run() is workers + 1. */
    explicit ParallelPool(u32 workers);
    ~ParallelPool();

    ParallelPool(const ParallelPool &) = delete;
    ParallelPool &operator=(const ParallelPool &) = delete;

    /**
     * Run @p fn(i) for every i in [0, @p jobs), distributing jobs over
     * the workers and the calling thread; returns once all jobs have
     * finished.  If jobs threw, the exception of the lowest job index
     * is rethrown (deterministic regardless of scheduling).
     */
    void run(u32 jobs, const std::function<void(u32)> &fn);

    u32 workers() const { return u32(threads_.size()); }

  private:
    void workerMain();
    /** Claim-and-run loop shared by workers and the caller. */
    void drainJobs();

    std::vector<std::thread> threads_;

    std::mutex m_;
    std::condition_variable wake_;  ///< workers wait for a new generation
    std::condition_variable done_;  ///< caller waits for running_ == 0
    u64 generation_ = 0;
    u32 jobs_ = 0;
    u32 running_ = 0; ///< workers still active in the current generation
    bool stop_ = false;
    const std::function<void(u32)> *fn_ = nullptr;

    std::atomic<u32> nextJob_{0};
    /** Per-job exception slot; each written by exactly one job owner
     *  before the pool's join, read by the caller after it. */
    std::vector<std::exception_ptr> errs_;
};

} // namespace ipim

#endif // IPIM_SIM_PARALLEL_H_
