#include "sim/parallel.h"

namespace ipim {

namespace {
/** Spin budget before a worker parks on the condition variable.  The
 *  quantum cadence is microsecond-scale, so a short spin usually
 *  catches the next generation without a futex round trip. */
constexpr int kSpinIters = 2048;
} // namespace

ParallelPool::ParallelPool(u32 workers)
{
    threads_.reserve(workers);
    for (u32 i = 0; i < workers; ++i)
        threads_.emplace_back([this] { workerMain(); });
}

ParallelPool::~ParallelPool()
{
    {
        std::lock_guard<std::mutex> lk(m_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto &t : threads_)
        t.join();
}

void
ParallelPool::drainJobs()
{
    const std::function<void(u32)> &fn = *fn_;
    u32 jobs = jobs_;
    while (true) {
        u32 i = nextJob_.fetch_add(1, std::memory_order_relaxed);
        if (i >= jobs)
            break;
        try {
            fn(i);
        } catch (...) {
            errs_[i] = std::current_exception();
        }
    }
}

void
ParallelPool::workerMain()
{
    u64 seen = 0;
    while (true) {
        {
            std::unique_lock<std::mutex> lk(m_);
            // Short unlock-spin first: quanta arrive back to back.
            for (int s = 0; s < kSpinIters && generation_ == seen && !stop_;
                 ++s) {
                lk.unlock();
                std::this_thread::yield();
                lk.lock();
            }
            wake_.wait(lk, [&] { return generation_ != seen || stop_; });
            if (stop_)
                return;
            seen = generation_;
        }
        drainJobs();
        {
            std::lock_guard<std::mutex> lk(m_);
            if (--running_ == 0)
                done_.notify_one();
        }
    }
}

void
ParallelPool::run(u32 jobs, const std::function<void(u32)> &fn)
{
    if (jobs == 0)
        return;
    errs_.assign(jobs, nullptr);
    if (threads_.empty()) {
        // Inline fallback (threads == 1): same claim loop, no handoff.
        fn_ = &fn;
        jobs_ = jobs;
        nextJob_.store(0, std::memory_order_relaxed);
        drainJobs();
    } else {
        {
            std::lock_guard<std::mutex> lk(m_);
            fn_ = &fn;
            jobs_ = jobs;
            nextJob_.store(0, std::memory_order_relaxed);
            running_ = u32(threads_.size());
            ++generation_;
        }
        wake_.notify_all();
        drainJobs();
        std::unique_lock<std::mutex> lk(m_);
        done_.wait(lk, [&] { return running_ == 0; });
    }
    fn_ = nullptr;
    // Deterministic error propagation: lowest job index wins.
    for (u32 i = 0; i < jobs; ++i)
        if (errs_[i])
            std::rethrow_exception(errs_[i]);
}

} // namespace ipim
