#include "sim/process_group.h"

#include <algorithm>

#include "common/logging.h"
#include "sim/vault.h"

namespace ipim {

ProcessGroup::ProcessGroup(const HardwareConfig &cfg, Vault *vault,
                           u32 pgIdx, ActivationLimiter *limiter,
                           StatsRegistry *stats, Tracer *trace,
                           const std::string &tracePrefix)
    : cfg_(cfg), vault_(vault), pgIdx_(pgIdx), stats_(stats),
      mc_(cfg, pgIdx, limiter, stats, trace,
          tracePrefix + "pg" + std::to_string(pgIdx) + "/dram"),
      pgsm_(cfg.pgsmBytes)
{
    for (u32 pe = 0; pe < cfg.pesPerPg; ++pe)
        pes_.push_back(
            std::make_unique<ProcessEngine>(cfg, this, pe, stats));
}

void
ProcessGroup::reset(u32 chipId, u32 vaultId)
{
    for (auto &pe : pes_)
        pe->reset(chipId, vaultId, pgIdx_);
    actions_.clear();
    deferred_.clear();
    remoteDone_.clear();
}

void
ProcessGroup::hardReset(u32 chipId, u32 vaultId)
{
    reset(chipId, vaultId);
    mc_.reset();
    pgsm_.clear();
    nextMemId_ = 1;
}

bool
ProcessGroup::submitBankAccess(Cycle now, InFlightInst *fi, u32 peInPg,
                               Opcode op, u64 bankAddr, u16 drfIdx,
                               u32 pgsmAddr, const VecWord &storeData)
{
    (void)now;
    if (!mc_.canAccept()) {
        stats_->inc("pg.mcQueueFull");
        return false;
    }
    MemRequest req;
    req.id = nextMemId_++;
    req.peInPg = peInPg;
    req.write = op == Opcode::kStRf || op == Opcode::kStPgsm;
    req.addr = bankAddr;
    req.data = storeData;
    mc_.enqueue(req);

    MemAction act;
    act.fi = fi;
    act.peInPg = peInPg;
    act.op = op;
    act.drfIdx = drfIdx;
    act.pgsmAddr = pgsmAddr;
    actions_.emplace(req.id, act);
    return true;
}

bool
ProcessGroup::submitRemoteRead(u32 peInPg, u64 bankAddr,
                               const RemoteReadDone &doneInfo)
{
    if (!mc_.canAccept())
        return false;
    MemRequest req;
    req.id = nextMemId_++;
    req.peInPg = peInPg;
    req.write = false;
    req.addr = bankAddr;
    mc_.enqueue(req);

    MemAction act;
    act.peInPg = peInPg;
    act.remote = true;
    act.remoteInfo = doneInfo;
    actions_.emplace(req.id, act);
    return true;
}

void
ProcessGroup::tick(Cycle now)
{
    mc_.tick(now);

    for (const MemCompletion &c : mc_.completions()) {
        auto it = actions_.find(c.id);
        if (it == actions_.end())
            panic("memory completion with no registered action");
        MemAction act = it->second;
        actions_.erase(it);

        if (act.remote) {
            act.remoteInfo.data = c.data;
            remoteDone_.push_back(act.remoteInfo);
            continue;
        }

        switch (act.op) {
          case Opcode::kLdRf:
            pes_[act.peInPg]->applyLoadData(act.drfIdx, c.data);
            break;
          case Opcode::kLdPgsm:
            pgsm_.writeVec(act.pgsmAddr, c.data);
            stats_->inc("pgsm.access");
            break;
          case Opcode::kStRf:
          case Opcode::kStPgsm:
            break;
          default:
            panic("bank completion for unexpected opcode");
        }

        if (cfg_.processOnBaseDie) {
            // All bank traffic crosses the shared vault TSV bus before
            // the instruction can finish (Sec. VII-C1).
            Cycle slot = vault_->tsv().acquire(now);
            stats_->inc("ponb.tsvBeats");
            deferred_.push_back({slot + cfg_.latency.tsv, act.fi});
        } else {
            if (act.fi->pendingPes == 0)
                panic("bank completion underflow");
            --act.fi->pendingPes;
        }
    }
    mc_.completions().clear();

    for (size_t i = 0; i < deferred_.size();) {
        if (deferred_[i].at <= now) {
            if (deferred_[i].fi->pendingPes == 0)
                panic("deferred completion underflow");
            --deferred_[i].fi->pendingPes;
            deferred_.erase(deferred_.begin() + i);
        } else {
            ++i;
        }
    }

    for (auto &pe : pes_)
        pe->tick(now);
}

Cycle
ProcessGroup::nextEventAt(Cycle now) const
{
    if (!remoteDone_.empty())
        return now;
    Cycle e = mc_.nextEventAt(now);
    for (const Deferred &d : deferred_)
        e = std::min(e, std::max(now, d.at));
    for (const auto &pe : pes_)
        e = std::min(e, pe->nextEventAt(now));
    return e;
}

bool
ProcessGroup::idle() const
{
    if (!mc_.idle() || !actions_.empty() || !deferred_.empty() ||
        !remoteDone_.empty())
        return false;
    for (const auto &pe : pes_)
        if (!pe->idle())
            return false;
    return true;
}

} // namespace ipim
