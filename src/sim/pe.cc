#include "sim/pe.h"

#include <algorithm>
#include <bit>

#include "common/logging.h"
#include "isa/alu.h"
#include "sim/process_group.h"
#include "sim/vault.h"

namespace ipim {

ProcessEngine::ProcessEngine(const HardwareConfig &cfg, ProcessGroup *pg,
                             u32 peInPg, StatsRegistry *stats)
    : cfg_(cfg), pg_(pg), peInPg_(peInPg), stats_(stats),
      drf_(cfg.dataRfEntries()), arf_(cfg.addrRfEntries(), 0)
{
}

void
ProcessEngine::reset(u32 chipId, u32 vaultId, u32 pgId)
{
    std::fill(drf_.begin(), drf_.end(), VecWord{});
    std::fill(arf_.begin(), arf_.end(), 0u);
    arf_[kArfPeId] = peInPg_;
    arf_[kArfPgId] = pgId;
    arf_[kArfVaultId] = vaultId;
    arf_[kArfChipId] = chipId;
    queue_.clear();
    pendingDone_.clear();
}

void
ProcessEngine::finishAt(Cycle at, InFlightInst *fi)
{
    pendingDone_.push_back({at, fi});
}

u64
ProcessEngine::resolveMem(const MemOperand &m) const
{
    if (!m.indirect)
        return u64(m.value);
    return u64(i64(i32(arf_.at(m.value))) + m.offset);
}

u32
ProcessEngine::compLatency(AluOp op) const
{
    switch (op) {
      case AluOp::kAdd:
      case AluOp::kSub:
        return cfg_.latency.addSub;
      case AluOp::kMul:
        return cfg_.latency.mul;
      case AluOp::kMac:
        return cfg_.latency.mac;
      case AluOp::kDiv:
        // Not in Table III; modelled as two multiply passes.
        return 2 * cfg_.latency.mul;
      default:
        return cfg_.latency.logic;
    }
}

void
ProcessEngine::execComp(const Instruction &inst)
{
    const VecWord &s1 = drf_.at(inst.src1);
    const VecWord &s2 = drf_.at(inst.src2);
    VecWord &d = drf_.at(inst.dst);
    for (int l = 0; l < kSimdLanes; ++l) {
        if (!(inst.vecMask & (1u << l)))
            continue;
        u32 a = inst.mode == CompMode::kScalarVec ? s1.lanes[0]
                                                  : s1.lanes[l];
        u32 b = s2.lanes[l];
        u32 acc = d.lanes[l];
        d.lanes[l] = inst.dtype == DType::kF32
                         ? aluEvalLaneF32(inst.aluOp, a, b, acc)
                         : aluEvalLaneI32(inst.aluOp, a, b, acc);
    }
}

void
ProcessEngine::applyLoadData(u16 drfIdx, const VecWord &data)
{
    drf_.at(drfIdx) = data;
    stats_->inc("pe.drfAccess");
}

bool
ProcessEngine::tryStart(Cycle now, InFlightInst *fi)
{
    const Instruction &inst = fi->inst;
    const UnitLatency &lat = cfg_.latency;

    switch (inst.op) {
      case Opcode::kComp: {
        execComp(inst);
        u32 l = compLatency(inst.aluOp);
        simdBusy_ += l;
        stats_->inc("pe.simdOp");
        stats_->inc("pe.drfAccess", 3);
        finishAt(now + l, fi);
        return true;
      }
      case Opcode::kCalcArf: {
        i32 a = i32(arf_.at(inst.src1));
        i32 b = inst.srcImm ? inst.imm : i32(arf_.at(inst.src2));
        arf_.at(inst.dst) = u32(aluEvalI32(inst.aluOp, a, b));
        intAluBusy_ += lat.intAlu;
        stats_->inc("pe.intAluOp");
        stats_->inc("pe.arfAccess", 3);
        finishAt(now + lat.intAlu + lat.addrRf, fi);
        return true;
      }
      case Opcode::kLdRf:
      case Opcode::kStRf: {
        u64 addr = resolveMem(inst.dramAddr);
        VecWord data;
        if (inst.op == Opcode::kStRf) {
            data = drf_.at(inst.dst);
            stats_->inc("pe.drfAccess");
        }
        if (inst.dramAddr.indirect)
            stats_->inc("pe.arfAccess");
        return pg_->submitBankAccess(now, fi, peInPg_, inst.op, addr,
                                     inst.dst, 0, data);
      }
      case Opcode::kLdPgsm:
      case Opcode::kStPgsm: {
        u64 addr = resolveMem(inst.dramAddr);
        u32 pgsmAddr = u32(resolveMem(inst.pgsmAddr));
        VecWord data;
        if (inst.op == Opcode::kStPgsm) {
            data = pg_->pgsm().readVec(pgsmAddr);
            stats_->inc("pgsm.access");
        }
        if (inst.dramAddr.indirect || inst.pgsmAddr.indirect)
            stats_->inc("pe.arfAccess");
        return pg_->submitBankAccess(now, fi, peInPg_, inst.op, addr,
                                     inst.dst, pgsmAddr, data);
      }
      case Opcode::kRdPgsm: {
        u32 addr = u32(resolveMem(inst.pgsmAddr));
        VecWord loaded = pg_->pgsm().readVec(addr, inst.pgsmStride);
        VecWord &dst = drf_.at(inst.dst);
        for (int l = 0; l < kSimdLanes; ++l)
            if (inst.vecMask & (1u << l))
                dst.lanes[l] = loaded.lanes[l];
        stats_->inc("pgsm.access");
        stats_->inc("pe.drfAccess");
        finishAt(now + lat.peBus + lat.pgsm + lat.dataRf, fi);
        return true;
      }
      case Opcode::kWrPgsm: {
        u32 addr = u32(resolveMem(inst.pgsmAddr));
        pg_->pgsm().writeVec(addr, drf_.at(inst.dst), inst.pgsmStride,
                             inst.vecMask);
        stats_->inc("pgsm.access");
        stats_->inc("pe.drfAccess");
        finishAt(now + lat.peBus + lat.pgsm + lat.dataRf, fi);
        return true;
      }
      case Opcode::kRdVsm: {
        u32 addr = u32(resolveMem(inst.vsmAddr));
        Cycle slot = pg_->vault().tsv().acquire(now);
        VecWord loadedV = pg_->vault().vsmMem().readVec(addr);
        VecWord &dstV = drf_.at(inst.dst);
        for (int l = 0; l < kSimdLanes; ++l)
            if (inst.vecMask & (1u << l))
                dstV.lanes[l] = loadedV.lanes[l];
        stats_->inc("vsm.access");
        stats_->inc("tsv.beats");
        stats_->inc("pe.drfAccess");
        finishAt(slot + lat.tsv + lat.vsm + lat.dataRf, fi);
        return true;
      }
      case Opcode::kWrVsm: {
        u32 addr = u32(resolveMem(inst.vsmAddr));
        Cycle slot = pg_->vault().tsv().acquire(now);
        pg_->vault().vsmMem().writeVec(addr, drf_.at(inst.dst));
        stats_->inc("vsm.access");
        stats_->inc("tsv.beats");
        stats_->inc("pe.drfAccess");
        finishAt(slot + lat.tsv + lat.vsm + lat.dataRf, fi);
        return true;
      }
      case Opcode::kMovDrfToArf: {
        int lane = std::countr_zero(u32(inst.vecMask ? inst.vecMask : 1));
        arf_.at(inst.dst) = drf_.at(inst.src1).lanes[lane];
        stats_->inc("pe.arfAccess");
        stats_->inc("pe.drfAccess");
        finishAt(now + lat.dataRf + lat.addrRf, fi);
        return true;
      }
      case Opcode::kMovArfToDrf: {
        int lane = std::countr_zero(u32(inst.vecMask ? inst.vecMask : 1));
        drf_.at(inst.dst).lanes[lane] = arf_.at(inst.src1);
        stats_->inc("pe.arfAccess");
        stats_->inc("pe.drfAccess");
        finishAt(now + lat.dataRf + lat.addrRf, fi);
        return true;
      }
      case Opcode::kReset: {
        drf_.at(inst.dst) = VecWord{};
        stats_->inc("pe.drfAccess");
        finishAt(now + lat.dataRf, fi);
        return true;
      }
      default:
        panic("PE asked to execute non-broadcast opcode ",
              opcodeName(inst.op));
    }
}

void
ProcessEngine::tick(Cycle now)
{
    // Retire fixed-latency operations that are done.
    for (size_t i = 0; i < pendingDone_.size();) {
        if (pendingDone_[i].at <= now) {
            if (pendingDone_[i].fi->pendingPes == 0)
                panic("PE completion underflow");
            --pendingDone_[i].fi->pendingPes;
            pendingDone_.erase(pendingDone_.begin() + i);
        } else {
            ++i;
        }
    }

    // In-order start: at most one new instruction per cycle.
    if (queue_.empty())
        return;
    Pending &head = queue_.front();
    if (head.arrivesAt > now)
        return;
    if (tryStart(now, head.fi)) {
        if (head.fi->unstartedPes == 0)
            panic("PE start underflow");
        --head.fi->unstartedPes;
        queue_.pop_front();
    }
}

Cycle
ProcessEngine::nextEventAt(Cycle now) const
{
    Cycle e = kNeverCycle;
    for (const Done &d : pendingDone_)
        e = std::min(e, std::max(now, d.at));
    if (!queue_.empty())
        e = std::min(e, std::max(now, queue_.front().arrivesAt));
    return e;
}

} // namespace ipim
