#include "sim/program_validate.h"

#include "common/logging.h"

namespace ipim {

void
validateVaultProgram(const HardwareConfig &cfg,
                     const std::vector<Instruction> &prog)
{
    u32 numPes = cfg.pesPerVault();
    u32 validMask = numPes >= 32 ? 0xFFFFFFFFu : ((1u << numPes) - 1);
    for (size_t i = 0; i < prog.size(); ++i) {
        const Instruction &inst = prog[i];
        AccessSet acc = inst.accessSet();
        for (u8 r = 0; r < acc.numReads; ++r) {
            const RegRef &ref = acc.reads[r];
            u32 limit = ref.file == RegFile::kDrf ? cfg.dataRfEntries()
                        : ref.file == RegFile::kArf ? cfg.addrRfEntries()
                                                    : cfg.ctrlRfEntries;
            if (ref.idx >= limit)
                fatal("program[", i, "] reads register ", ref.idx,
                      " beyond file size ", limit, ": ", inst.toString());
        }
        for (u8 w = 0; w < acc.numWrites; ++w) {
            const RegRef &ref = acc.writes[w];
            u32 limit = ref.file == RegFile::kDrf ? cfg.dataRfEntries()
                        : ref.file == RegFile::kArf ? cfg.addrRfEntries()
                                                    : cfg.ctrlRfEntries;
            if (ref.idx >= limit)
                fatal("program[", i, "] writes register ", ref.idx,
                      " beyond file size ", limit, ": ", inst.toString());
        }
        if (isBroadcast(inst.op)) {
            if (inst.simbMask == 0)
                fatal("program[", i, "] broadcasts to an empty simb_mask: ",
                      inst.toString());
            if (inst.simbMask & ~validMask)
                fatal("program[", i, "] simb_mask names PEs beyond ",
                      numPes, ": ", inst.toString());
        }
        if (inst.op == Opcode::kSetiVsm && inst.vsmAddr.indirect)
            fatal("seti_vsm requires a direct VSM address");
        if (inst.op == Opcode::kSetiCrf && inst.label >= 0 &&
            u32(inst.imm) >= prog.size())
            fatal("program[", i, "] branch label resolves outside program");
    }
    if (prog.empty() || prog.back().op != Opcode::kHalt)
        fatal("program must end with halt");
}

} // namespace ipim
