/**
 * @file
 * Byte-addressable scratchpad memories: the per-PG PGSM (8 KiB, multi-bank
 * with per-PE ports and a 2D abstraction realized as lane-strided access)
 * and the per-vault VSM (256 KiB, single TSV data port) of Sec. IV-E.
 */
#ifndef IPIM_SIM_SCRATCHPAD_H_
#define IPIM_SIM_SCRATCHPAD_H_

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/logging.h"
#include "common/types.h"

namespace ipim {

/** A simple byte-array scratchpad with 32b-lane vector access. */
class Scratchpad
{
  public:
    explicit Scratchpad(u32 bytes) : data_(bytes, 0) {}

    u32 bytes() const { return u32(data_.size()); }

    /**
     * Read four 32b lanes starting at @p addr with @p strideBytes between
     * lanes (stride 4 == one contiguous 128b access).
     */
    VecWord
    readVec(u32 addr, u32 strideBytes = 4) const
    {
        VecWord v;
        for (int l = 0; l < kSimdLanes; ++l) {
            u32 a = addr + u32(l) * strideBytes;
            checkLane(a);
            std::memcpy(&v.lanes[l], data_.data() + a, 4);
        }
        return v;
    }

    /** Write lanes of @p v whose bit in @p laneMask is set. */
    void
    writeVec(u32 addr, const VecWord &v, u32 strideBytes = 4,
             u8 laneMask = 0xF)
    {
        for (int l = 0; l < kSimdLanes; ++l) {
            if (!(laneMask & (1u << l)))
                continue;
            u32 a = addr + u32(l) * strideBytes;
            checkLane(a);
            std::memcpy(data_.data() + a, &v.lanes[l], 4);
            hwm_ = std::max(hwm_, a + 4);
        }
    }

    u32
    read32(u32 addr) const
    {
        checkLane(addr);
        u32 v;
        std::memcpy(&v, data_.data() + addr, 4);
        return v;
    }

    void
    write32(u32 addr, u32 v)
    {
        checkLane(addr);
        std::memcpy(data_.data() + addr, &v, 4);
        hwm_ = std::max(hwm_, addr + 4);
    }

    /** Bulk access for the runtime (program upload, result gather). */
    void
    writeBytes(u32 addr, const u8 *src, u32 len)
    {
        if (u64(addr) + len > data_.size())
            fatal("scratchpad bulk write out of range");
        std::memcpy(data_.data() + addr, src, len);
        hwm_ = std::max(hwm_, addr + len);
    }

    void
    readBytes(u32 addr, u8 *dst, u32 len) const
    {
        if (u64(addr) + len > data_.size())
            fatal("scratchpad bulk read out of range");
        std::memcpy(dst, data_.data() + addr, len);
    }

    /** Zero the scratchpad (device power-cycle).  Only the written
     *  prefix [0, high-water mark) can be nonzero, so only it is
     *  wiped — kernels touch a small fraction of the scratchpad and
     *  clearing runs once per launch. */
    void
    clear()
    {
        std::fill(data_.begin(), data_.begin() + hwm_, u8(0));
        hwm_ = 0;
    }

  private:
    void
    checkLane(u32 addr) const
    {
        if (u64(addr) + 4 > data_.size())
            fatal("scratchpad access out of range: addr=", addr,
                  " size=", data_.size());
    }

    std::vector<u8> data_;
    u32 hwm_ = 0; ///< one past the highest byte ever written
};

/**
 * The per-vault TSV bus: one 128b beat per cycle, time-multiplexed
 * between instruction broadcast and VSM/bank data (Sec. IV-C: "control
 * signals and data signals share the same physical TSVs").
 *
 * Modeled as a slot allocator: callers ask for the earliest free beat at
 * or after "now" and get its cycle.
 */
class TsvBus
{
  public:
    /** Reserve the earliest beat at or after @p now. */
    Cycle
    acquire(Cycle now)
    {
        Cycle slot = std::max(now, nextFree_);
        nextFree_ = slot + 1;
        ++beats_;
        return slot;
    }

    u64 beats() const { return beats_; }

    /** True if no reservation extends beyond @p now. */
    bool quiescentAt(Cycle now) const { return nextFree_ <= now; }

    /**
     * Next-event contract (DESIGN.md Sec. 13): the TSV arbiter never
     * originates events — every slot is handed out eagerly at
     * acquire() time and is already baked into the requester's
     * scheduled completion cycle — so it is never the earliest state
     * change in the tree.
     */
    Cycle nextEventAt(Cycle /*now*/) const { return kNeverCycle; }

    /** Release all reservations and zero the beat counter. */
    void
    reset()
    {
        nextFree_ = 0;
        beats_ = 0;
    }

  private:
    Cycle nextFree_ = 0;
    u64 beats_ = 0;
};

} // namespace ipim

#endif // IPIM_SIM_SCRATCHPAD_H_
