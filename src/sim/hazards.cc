#include "sim/hazards.h"

namespace ipim {

namespace {

bool
refIn(const RegRef &r, const RegRef *list, u8 n)
{
    for (u8 i = 0; i < n; ++i)
        if (list[i] == r)
            return true;
    return false;
}

} // namespace

bool
registerConflict(const AccessSet &older, const AccessSet &younger)
{
    // RAW: younger reads what older writes.
    for (u8 i = 0; i < older.numWrites; ++i)
        if (refIn(older.writes[i], younger.reads, younger.numReads))
            return true;
    // WAR: younger writes what older reads.
    for (u8 i = 0; i < older.numReads; ++i)
        if (refIn(older.reads[i], younger.writes, younger.numWrites))
            return true;
    // WAW: both write the same register.
    for (u8 i = 0; i < older.numWrites; ++i)
        if (refIn(older.writes[i], younger.writes, younger.numWrites))
            return true;
    return false;
}

bool
scratchpadConflict(const AccessSet &older, const AccessSet &younger)
{
    if (older.pgsmWriteMask & younger.pgsmReadMask)
        return true;
    if (older.pgsmReadMask & younger.pgsmWriteMask)
        return true;
    if (older.writesVsm && younger.readsVsm)
        return true;
    if (older.readsVsm && younger.writesVsm)
        return true;
    return false;
}

bool
issueHazard(const AccessSet &older, const AccessSet &younger)
{
    return registerConflict(older, younger) ||
           scratchpadConflict(older, younger);
}

bool
hazardNeedsCompletion(const Instruction &olderInst,
                      const AccessSet &older, const AccessSet &younger)
{
    // RAW on registers: the younger instruction consumes the result.
    for (u8 i = 0; i < older.numWrites; ++i)
        if (refIn(older.writes[i], younger.reads, younger.numReads))
            return true;
    // WAW where the older write lands at completion time (bank loads).
    if (olderInst.op == Opcode::kLdRf)
        for (u8 i = 0; i < older.numWrites; ++i)
            if (refIn(older.writes[i], younger.writes,
                      younger.numWrites))
                return true;
    // Scratchpad RAW: data must be present before the read.
    if ((older.pgsmWriteMask & younger.pgsmReadMask) ||
        (older.writesVsm && younger.readsVsm))
        return true;
    return false;
}

} // namespace ipim
