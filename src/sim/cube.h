/**
 * @file
 * One iPIM cube (Fig. 2(a1)): 16 vaults interconnected by the on-chip
 * 2D-mesh network, with SERDES egress for inter-cube traffic.
 */
#ifndef IPIM_SIM_CUBE_H_
#define IPIM_SIM_CUBE_H_

#include <deque>
#include <memory>
#include <vector>

#include "sim/vault.h"

namespace ipim {

class Cube
{
  public:
    /**
     * @p trace/@p tracePrefix (optional) wire the cube's mesh and vaults
     * into the tracing subsystem; vault tracks are named
     * "<prefix>v<N>/..." and the mesh track "<prefix>noc"
     * (DESIGN.md Sec. 12).
     */
    Cube(const HardwareConfig &cfg, u32 chipId, StatsRegistry *stats,
         Tracer *trace = nullptr, const std::string &tracePrefix = "");

    Vault &vault(u32 v) { return *vaults_.at(v); }
    const Vault &vault(u32 v) const { return *vaults_.at(v); }
    u32 numVaults() const { return u32(vaults_.size()); }
    u32 chipId() const { return chipId_; }

    /** Packets buffered in the on-chip mesh right now (metrics gauge). */
    u32 nocQueuedPackets() const { return mesh_.queuedPackets(); }

    /** Advance one cycle: deliver, tick vaults, drain NICs, tick mesh. */
    void tick(Cycle now);

    /**
     * Deliver a packet arriving from another cube (via SERDES).
     *
     * Off-chip arrivals enter the mesh at the gateway router in strict
     * arrival order: while earlier arrivals are still waiting in the
     * ingress-retry queue a new packet lines up behind them instead of
     * overtaking into the mesh (per-link FIFO; DESIGN.md Sec. 18).
     */
    void deliverFromSerdes(const Packet &p);

    /** Packets leaving this cube; the device drains them. */
    std::vector<Packet> &serdesEgress() { return serdesEgress_; }

    /** Off-chip arrivals still waiting for gateway-router space. */
    size_t serdesIngressBacklog() const { return serdesIngressRetry_.size(); }

    bool fullyIdle() const;

    /**
     * Earliest future cycle this cube can change state (DESIGN.md
     * Sec. 13): @p now while the SERDES egress buffer holds packets
     * (the device must drain it), else the min over the mesh and the
     * vaults.  A non-empty ingress-retry queue needs no clause of its
     * own: retries wait on gateway-router space, and a full gateway
     * queue means the mesh holds packets, so the mesh already reports
     * the real next-injection opportunity.
     */
    Cycle nextEventAt(Cycle now) const;

    /**
     * Propagate fast-forward crediting for @p skipped cycles starting
     * at @p from to the vaults (stall/cycle counters) and the mesh
     * (round-robin arbiter rotation).
     */
    void creditSkipped(Cycle from, u64 skipped);

    /** Close any open vault trace spans at end of run (Device::run). */
    void flushTrace(Cycle now);

    /** Power-cycle the cube: all vaults, the mesh, and SERDES buffers. */
    void reset();

  private:
    const HardwareConfig &cfg_;
    u32 chipId_;
    StatsRegistry *stats_;
    std::vector<std::unique_ptr<Vault>> vaults_;
    Mesh mesh_;
    std::vector<Packet> serdesEgress_;
    /**
     * Off-chip arrivals that found the gateway router full, in arrival
     * order.  Drained strictly from the front (new arrivals append), so
     * cross-cube delivery order is preserved and the drain is O(moved)
     * instead of the old O(n^2) vector::erase scan.
     */
    std::deque<Packet> serdesIngressRetry_;
};

} // namespace ipim

#endif // IPIM_SIM_CUBE_H_
