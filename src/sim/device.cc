#include "sim/device.h"

#include <algorithm>

#include "common/logging.h"

namespace ipim {

DeviceProbe::~DeviceProbe() = default;

void
DeviceProbe::onDeviceReset(Device &)
{
}

Device::Device(const HardwareConfig &cfg, Tracer *tracer,
               const std::string &trackPrefix)
    : cfg_(cfg), tracer_(tracer), trackPrefix_(trackPrefix)
{
    cfg_.validate();
    for (u32 c = 0; c < cfg_.cubes; ++c)
        cubes_.push_back(std::make_unique<Cube>(
            cfg_, c, &stats_, tracer_,
            trackPrefix_ + "cube" + std::to_string(c) + "/"));
}

void
Device::reset()
{
    for (auto &cube : cubes_)
        cube->reset();
    serdes_.clear();
    serdesSeq_ = 0;
    now_ = 0;
    lastRunCycles_ = 0;
    ffwdSkipped_ = 0;
    ffwdJumps_ = 0;
    stats_.clear();
    if (probe_ != nullptr)
        probe_->onDeviceReset(*this);
}

BankStorage &
Device::bank(u32 chip, u32 v, u32 pg, u32 pe)
{
    return vault(chip, v).pg(pg).mc().storage(pe);
}

void
Device::loadProgramAll(const std::vector<Instruction> &prog)
{
    for (auto &cube : cubes_)
        for (u32 v = 0; v < cube->numVaults(); ++v)
            cube->vault(v).loadProgram(prog);
}

void
Device::loadPrograms(const std::vector<std::vector<Instruction>> &progs)
{
    if (progs.size() != u64(cfg_.cubes) * cfg_.vaultsPerCube)
        fatal("expected ", u64(cfg_.cubes) * cfg_.vaultsPerCube,
              " programs, got ", progs.size());
    size_t i = 0;
    for (auto &cube : cubes_)
        for (u32 v = 0; v < cube->numVaults(); ++v)
            cube->vault(v).loadProgram(progs[i++]);
}

void
Device::tick(Cycle now)
{
    for (auto &cube : cubes_)
        cube->tick(now);

    // SERDES transfer: cube egress -> delayed delivery at the target cube.
    for (auto &cube : cubes_) {
        for (const Packet &p : cube->serdesEgress()) {
            u32 src = cube->chipId();
            u32 dst = p.dstChip;
            u32 hops = src > dst ? src - dst : dst - src;
            Cycle lat = 4 + Cycle(cfg_.latency.serdesHop) * hops;
            serdes_.emplace(std::make_pair(now + lat, serdesSeq_++), p);
            stats_.inc("serdes.bits", f64(p.sizeBits()));
        }
        cube->serdesEgress().clear();
    }
    while (!serdes_.empty() && serdes_.begin()->first.first <= now) {
        const Packet &p = serdes_.begin()->second;
        cubes_.at(p.dstChip)->deliverFromSerdes(p);
        serdes_.erase(serdes_.begin());
    }
}

bool
Device::fullyIdle() const
{
    if (!serdes_.empty())
        return false;
    for (const auto &cube : cubes_)
        if (!cube->fullyIdle())
            return false;
    return true;
}

Cycle
Device::nextEventAt(Cycle now) const
{
    Cycle e = kNeverCycle;
    if (!serdes_.empty())
        e = std::min(e, std::max(now, serdes_.begin()->first.first));
    for (const auto &cube : cubes_)
        e = std::min(e, cube->nextEventAt(now));
    return e;
}

Cycle
Device::run(u64 maxCycles)
{
    Cycle start = now_;
    // First cycle at which the watchdog trips (saturating: the default
    // budget must not wrap the 64-bit clock on long-lived devices).
    Cycle limit =
        maxCycles > kNeverCycle - start ? kNeverCycle : start + maxCycles;
    probeNextAt_ = probe_ != nullptr ? probe_->nextSampleAt(now_)
                                     : kNeverCycle;
    while (true) {
        // A sample at cycle t sees the state after cycles [0, t); the
        // probe cadence is cached so the disabled path is one compare.
        if (now_ >= probeNextAt_) {
            probe_->sample(*this, now_);
            probeNextAt_ = probe_->nextSampleAt(now_ + 1);
        }
        tick(now_);
        ++now_;
        stats_.inc("sim.cycles");
        if (fullyIdle())
            break;
        if (now_ >= limit)
            fatal("deadlock watchdog: device did not quiesce within ",
                  maxCycles, " cycles");
        if (!fastForward_)
            continue;

        Cycle e = nextEventAt(now_);
        // Never jump past the watchdog limit (the device is known to be
        // non-idle through the whole window, so dense ticking would
        // reach the limit and trip), nor past a counter-sample boundary
        // (samples must land on the same cycles as dense ticking).
        e = std::min(e, limit);
        if (Tracer::active(tracer_)) {
            Cycle interval = tracer_->sampleInterval();
            Cycle rem = now_ % interval;
            e = std::min(e, rem == 0 ? now_ : now_ + (interval - rem));
        }
        if (e <= now_)
            continue;

        u64 skipped = e - now_;
        // Metrics probes are NOT a jump cap: the probe snapshots the
        // pre-credit state here and back-fills the elided sample
        // boundaries after the credit (DESIGN.md Sec. 14).
        bool probeJump = probeNextAt_ < e;
        if (probeJump)
            probe_->beforeJump(*this, now_, e);
        for (auto &cube : cubes_)
            cube->creditSkipped(now_, skipped);
        stats_.inc("sim.cycles", f64(skipped));
        Cycle from = now_;
        now_ = e;
        ffwdSkipped_ += skipped;
        ++ffwdJumps_;
        if (probeJump) {
            probe_->afterJump(*this, from, e);
            probeNextAt_ = probe_->nextSampleAt(now_);
        }
        if (now_ >= limit)
            fatal("deadlock watchdog: device did not quiesce within ",
                  maxCycles, " cycles");
    }
    lastRunCycles_ = now_ - start;
    if (Tracer::active(tracer_))
        for (auto &cube : cubes_)
            cube->flushTrace(now_);
    return lastRunCycles_;
}

u64
Device::totalIssued() const
{
    u64 n = 0;
    for (const auto &cube : cubes_)
        for (u32 v = 0; v < cube->numVaults(); ++v)
            n += cube->vault(v).issuedCount();
    return n;
}

} // namespace ipim
